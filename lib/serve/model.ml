(** Which switch model the daemon runs, with its configuration. *)

type t =
  | Proc of Smbm_core.Proc_config.t
  | Value_uniform of Smbm_core.Value_config.t
  | Value_port of Smbm_core.Value_config.t

let to_string = function
  | Proc _ -> "proc"
  | Value_uniform _ -> "value-uniform"
  | Value_port _ -> "value-port"
