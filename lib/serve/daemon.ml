open Smbm_core
open Smbm_sim
open Smbm_traffic
module Registry = Smbm_obs.Registry
module Recorder = Smbm_obs.Recorder
module Sink = Smbm_obs.Sink
module Event = Smbm_obs.Event

type backpressure = Block | Shed
type control = Set_policy of string | Resize_buffer of int | Stop

type controller = { mu : Mutex.t; mutable queue : control list (* newest first *) }

let controller () = { mu = Mutex.create (); queue = [] }

let push t c =
  Mutex.lock t.mu;
  t.queue <- c :: t.queue;
  Mutex.unlock t.mu

let drain t =
  Mutex.lock t.mu;
  let q = List.rev t.queue in
  t.queue <- [];
  Mutex.unlock t.mu;
  q

type ingest =
  | Trace of Trace.Compact.t
  | Bank of Mmpp_bank.t
  | Workload of Workload.t

type report = {
  slots : int;
  wall : float;
  slots_per_sec : float;
  arrivals : int;
  accepted : int;
  transmitted : int;
  dropped : int;
  flushed : int;
  shed_slots : int;
  shed_packets : int;
  ring_capacity : int;
  ring_max : int;
  reconfigs : int;
  reconfigs_rejected : int;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  conservation_ok : bool;
  conservation_error : string option;
  stopped : bool;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>slots %d in %.3f s (%.0f slots/s), engine slot time p50 %.1f / p95 \
     %.1f / p99 %.1f us@,\
     arrivals %d = accepted %d + dropped %d; transmitted %d, flushed %d@,\
     ring max %d/%d; shed %d slots (%d packets)@,\
     reconfigs %d applied, %d rejected%s@,\
     conservation %s@]"
    r.slots r.wall r.slots_per_sec r.p50_us r.p95_us r.p99_us r.arrivals
    r.accepted r.dropped r.transmitted r.flushed r.ring_max r.ring_capacity
    r.shed_slots r.shed_packets r.reconfigs r.reconfigs_rejected
    (if r.stopped then "; stopped by control" else "")
    (match r.conservation_error with
    | None -> "ok"
    | Some m -> "VIOLATED: " ^ m)

(* One live engine behind a model-agnostic face: the consumer loop and the
   control plane never branch on the model. *)
type engine = {
  inst : Instance.t;
  set_policy : string -> bool;  (* false: unknown name, nothing changed *)
  set_buffer : int -> int;  (* clamped to occupancy; returns applied B *)
}

let make_engine ?recorder model policy_name =
  match model with
  | Model.Proc config ->
    let find cfg name = Policies.proc_find cfg name in
    let policy =
      match find config policy_name with
      | Some p -> p
      | None ->
        invalid_arg
          ("Daemon.run: unknown processing policy \"" ^ policy_name ^ "\"")
    in
    let policy_ref = ref policy in
    let inst, sw =
      Proc_engine.create_controlled ~name:"serve" ?recorder config policy_ref
    in
    let current = ref policy_name in
    (* Threshold policies capture B at construction: always rebuild against
       the switch's live buffer, never the boot-time config. *)
    let live_config () =
      Proc_config.make
        ~works:(Array.copy config.Proc_config.works)
        ~buffer:(Proc_switch.buffer sw) ~speedup:config.Proc_config.speedup ()
    in
    let set_policy name =
      match find (live_config ()) name with
      | Some p ->
        policy_ref := p;
        current := name;
        true
      | None -> false
    in
    let set_buffer b =
      let applied = max b (Proc_switch.occupancy sw) in
      Proc_switch.set_buffer sw applied;
      (match find (live_config ()) !current with
      | Some p -> policy_ref := p
      | None -> ());
      applied
    in
    { inst; set_policy; set_buffer }
  | Model.Value_uniform config | Model.Value_port config ->
    let port_value =
      match model with
      | Model.Value_port _ -> Some (Scenario.port_values config)
      | _ -> None
    in
    let find cfg name = Policies.value_find ?port_value cfg name in
    let policy =
      match find config policy_name with
      | Some p -> p
      | None ->
        invalid_arg
          ("Daemon.run: unknown value policy \"" ^ policy_name ^ "\"")
    in
    let policy_ref = ref policy in
    let inst, sw =
      Value_engine.create_controlled ~name:"serve" ?recorder config policy_ref
    in
    let current = ref policy_name in
    let live_config () =
      Value_config.make ~ports:config.Value_config.ports
        ~max_value:config.Value_config.max_value
        ~buffer:(Value_switch.buffer sw) ~speedup:config.Value_config.speedup
        ()
    in
    let set_policy name =
      match find (live_config ()) name with
      | Some p ->
        policy_ref := p;
        current := name;
        true
      | None -> false
    in
    let set_buffer b =
      let applied = max b (Value_switch.occupancy sw) in
      Value_switch.set_buffer sw applied;
      (match find (live_config ()) !current with
      | Some p -> policy_ref := p
      | None -> ());
      applied
    in
    { inst; set_policy; set_buffer }

let run ?(ring_capacity = 64) ?(backpressure = Block) ?flush_every
    ?(metrics_every = 0) ?metrics_sink ?recorder ?event_sink ?(controls = [])
    ?controller ?slots:max_slots ?duration ?rate ~model ~policy ~ingest () =
  let ring = Spsc_ring.create ~capacity:ring_capacity () in
  let bp = match backpressure with Block -> `Block | Shed -> `Shed in
  let max_slots =
    let trace_slots =
      match ingest with Trace c -> Some (Trace.Compact.slots c) | _ -> None
    in
    match (max_slots, trace_slots) with
    | Some a, Some b -> Some (min a b)
    | Some a, None -> Some a
    | None, t -> t
  in
  let fill =
    match ingest with
    | Trace c ->
      let w = Trace.Compact.replay c in
      fun b -> Workload.next_into w b
    | Bank bank -> fun b -> Mmpp_bank.fill bank b
    | Workload w -> fun b -> Workload.next_into w b
  in
  (* ----- ingest domain ----- *)
  let producer () =
    let t0 = Unix.gettimeofday () in
    let deadline = Option.map (fun d -> t0 +. d) duration in
    let continue i =
      (match max_slots with Some m -> i < m | None -> true)
      && match deadline with Some d -> Unix.gettimeofday () < d | None -> true
    in
    let pace i =
      match rate with
      | None -> ()
      | Some r ->
        let due = t0 +. (float_of_int (i + 1) /. r) in
        let now = Unix.gettimeofday () in
        if due > now then Unix.sleepf (due -. now)
    in
    let rec loop i =
      if continue i then
        match Spsc_ring.produce ring ~policy:bp ~fill with
        | Spsc_ring.Aborted -> ()
        | Spsc_ring.Pushed | Spsc_ring.Shed ->
          pace i;
          loop (i + 1)
    in
    loop 0;
    Spsc_ring.close ring
  in
  let ingest_domain = Domain.spawn producer in
  (* ----- engine domain (the caller) ----- *)
  let engine = make_engine ?recorder model policy in
  let inst = engine.inst in
  let server = Registry.create () in
  let slot_hist = Registry.histogram server ~max_value:1e7 "slot_time_us" in
  let ring_gauge = Registry.gauge server "ring_occupancy" in
  let slots_ctr = Registry.counter server "slots" in
  let reconfig_ctr = Registry.counter server "reconfigs" in
  let rejected_ctr = Registry.counter server "reconfigs_rejected" in
  let slot = ref 0 in
  let stopped = ref false in
  let reconfigs = ref 0 in
  let rejected = ref 0 in
  let record_reconfig what target =
    incr reconfigs;
    Registry.incr reconfig_ctr;
    match recorder with
    | Some r ->
      Recorder.record r ~slot:!slot ~who:inst.Instance.name
        (Event.Reconfig { what; target })
    | None -> ()
  in
  let reject () =
    incr rejected;
    Registry.incr rejected_ctr
  in
  let apply = function
    | Set_policy name ->
      if engine.set_policy name then record_reconfig "policy" name
      else reject ()
    | Resize_buffer b ->
      if b < 1 then reject ()
      else record_reconfig "buffer" (string_of_int (engine.set_buffer b))
    | Stop ->
      stopped := true;
      Spsc_ring.abort ring
  in
  let pending =
    ref (List.stable_sort (fun (a, _) (b, _) -> compare a b) controls)
  in
  let drain_controls () =
    let rec scripted () =
      match !pending with
      | (s, c) :: rest when s <= !slot ->
        pending := rest;
        apply c;
        scripted ()
      | _ -> ()
    in
    scripted ();
    match controller with
    | None -> ()
    | Some ctl -> List.iter apply (drain ctl)
  in
  let flush_metrics () =
    (match metrics_sink with
    | None -> ()
    | Some sink ->
      let labels =
        [ ("src", inst.Instance.name); ("slot", string_of_int !slot) ]
      in
      List.iter (Sink.line sink)
        (Metrics.to_jsonl ~labels inst.Instance.metrics);
      List.iter (Sink.line sink) (Registry.to_jsonl ~labels server));
    match (recorder, event_sink) with
    | Some r, Some sink ->
      Recorder.iter (Sink.event sink) r;
      Recorder.clear r
    | _ -> ()
  in
  let step batch =
    let t0 = Unix.gettimeofday () in
    Instance.step_batch inst ~batch;
    incr slot;
    Registry.incr slots_ctr;
    (match flush_every with
    | Some f when f > 0 && !slot mod f = 0 -> inst.Instance.flush ()
    | _ -> ());
    (* Slot boundary: bookkeeping done, next slot's arrivals not yet
       offered — the only point where reconfiguration is legal. *)
    drain_controls ();
    Registry.observe slot_hist ((Unix.gettimeofday () -. t0) *. 1e6);
    Registry.set ring_gauge (float_of_int (Spsc_ring.length ring));
    if metrics_every > 0 && !slot mod metrics_every = 0 then flush_metrics ()
  in
  let t_start = Unix.gettimeofday () in
  let rec consume () =
    if not !stopped then
      match Spsc_ring.consume ring ~stop:(fun () -> !stopped) ~f:step with
      | Spsc_ring.Consumed -> consume ()
      | Spsc_ring.Drained | Spsc_ring.Stopped -> ()
  in
  consume ();
  Domain.join ingest_domain;
  let wall = Unix.gettimeofday () -. t_start in
  flush_metrics ();
  let conservation_ok, conservation_error =
    try
      inst.Instance.check ();
      (true, None)
    with Invalid_argument m -> (false, Some m)
  in
  let q =
    let h = Registry.histogram_values slot_hist in
    fun p -> Smbm_prelude.Histogram.quantile h p
  in
  let m = inst.Instance.metrics in
  {
    slots = !slot;
    wall;
    slots_per_sec = (if wall > 0. then float_of_int !slot /. wall else 0.);
    arrivals = Metrics.arrivals m;
    accepted = Metrics.accepted m;
    transmitted = Metrics.transmitted m;
    dropped = Metrics.dropped m;
    flushed = Metrics.flushed m;
    shed_slots = Spsc_ring.shed_slots ring;
    shed_packets = Spsc_ring.shed_packets ring;
    ring_capacity;
    ring_max = Spsc_ring.max_occupancy ring;
    reconfigs = !reconfigs;
    reconfigs_rejected = !rejected;
    p50_us = q 0.5;
    p95_us = q 0.95;
    p99_us = q 0.99;
    conservation_ok;
    conservation_error;
    stopped = !stopped;
  }
