open Smbm_core
open Smbm_sim
open Smbm_traffic
module Registry = Smbm_obs.Registry
module Recorder = Smbm_obs.Recorder
module Sink = Smbm_obs.Sink
module Event = Smbm_obs.Event
module Rolling = Smbm_obs.Rolling
module Health = Smbm_obs.Health
module Flight = Smbm_obs.Flight
module Postmortem = Smbm_forensics.Postmortem

type backpressure = Block | Shed
type control = Set_policy of string | Resize_buffer of int | Stop

type controller = { mu : Mutex.t; mutable queue : control list (* newest first *) }

let controller () = { mu = Mutex.create (); queue = [] }

let push t c =
  Mutex.lock t.mu;
  t.queue <- c :: t.queue;
  Mutex.unlock t.mu

let drain t =
  Mutex.lock t.mu;
  let q = List.rev t.queue in
  t.queue <- [];
  Mutex.unlock t.mu;
  q

type ingest =
  | Trace of Trace.Compact.t
  | Bank of Mmpp_bank.t
  | Workload of Workload.t

type report = {
  slots : int;
  wall : float;
  slots_per_sec : float;
  arrivals : int;
  accepted : int;
  transmitted : int;
  dropped : int;
  flushed : int;
  shed_slots : int;
  shed_packets : int;
  ring_capacity : int;
  ring_max : int;
  reconfigs : int;
  reconfigs_rejected : int;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  conservation_ok : bool;
  conservation_error : string option;
  stopped : bool;
  degraded : bool;
  health : (string * bool) list;
  postmortem : string option;
}

let pp_report ppf r =
  let pp_postmortem ppf = function
    | None -> ()
    | Some base ->
      Format.fprintf ppf "@,postmortem dumped: %s.{trace.bin,meta.jsonl}" base
  in
  let pp_health ppf = function
    | [] -> ()
    | rules ->
      Format.fprintf ppf "@,health %s:"
        (if r.degraded then "DEGRADED" else "ok");
      List.iter
        (fun (name, tripped) ->
          Format.fprintf ppf " %s=%s" name
            (if tripped then "TRIPPED" else "ok"))
        rules
  in
  Format.fprintf ppf
    "@[<v>slots %d in %.3f s (%.0f slots/s), engine slot time p50 %.1f / p95 \
     %.1f / p99 %.1f us@,\
     arrivals %d = accepted %d + dropped %d; transmitted %d, flushed %d@,\
     ring max %d/%d; shed %d slots (%d packets)@,\
     reconfigs %d applied, %d rejected%s@,\
     conservation %s%a%a@]"
    r.slots r.wall r.slots_per_sec r.p50_us r.p95_us r.p99_us r.arrivals
    r.accepted r.dropped r.transmitted r.flushed r.ring_max r.ring_capacity
    r.shed_slots r.shed_packets r.reconfigs r.reconfigs_rejected
    (if r.stopped then "; stopped by control" else "")
    (match r.conservation_error with
    | None -> "ok"
    | Some m -> "VIOLATED: " ^ m)
    pp_health r.health pp_postmortem r.postmortem

(* One live engine behind a model-agnostic face: the consumer loop and the
   control plane never branch on the model. *)
type engine = {
  inst : Instance.t;
  set_policy : string -> bool;  (* false: unknown name, nothing changed *)
  set_buffer : int -> int;  (* clamped to occupancy; returns applied B *)
  policy_name : unit -> string;  (* current (post-reconfiguration) name *)
  buffer_size : unit -> int;  (* current live B *)
  model_name : string;  (* "proc" or "value", for postmortem meta *)
  n_ports : int;
  queue_length : int -> int;  (* live per-port occupancy *)
}

let make_engine ?recorder ?flight model policy_name =
  match model with
  | Model.Proc config ->
    let find cfg name = Policies.proc_find cfg name in
    let policy =
      match find config policy_name with
      | Some p -> p
      | None ->
        invalid_arg
          ("Daemon.run: unknown processing policy \"" ^ policy_name ^ "\"")
    in
    let policy_ref = ref policy in
    let inst, sw =
      Proc_engine.create_controlled ~name:"serve" ?recorder ?flight config
        policy_ref
    in
    let current = ref policy_name in
    (* Threshold policies capture B at construction: always rebuild against
       the switch's live buffer, never the boot-time config. *)
    let live_config () =
      Proc_config.make
        ~works:(Array.copy config.Proc_config.works)
        ~buffer:(Proc_switch.buffer sw) ~speedup:config.Proc_config.speedup ()
    in
    let set_policy name =
      match find (live_config ()) name with
      | Some p ->
        policy_ref := p;
        current := name;
        true
      | None -> false
    in
    let set_buffer b =
      let applied = max b (Proc_switch.occupancy sw) in
      Proc_switch.set_buffer sw applied;
      (match find (live_config ()) !current with
      | Some p -> policy_ref := p
      | None -> ());
      applied
    in
    {
      inst;
      set_policy;
      set_buffer;
      policy_name = (fun () -> !current);
      buffer_size = (fun () -> Proc_switch.buffer sw);
      model_name = "proc";
      n_ports = Proc_config.n config;
      queue_length = Proc_switch.queue_length sw;
    }
  | Model.Value_uniform config | Model.Value_port config ->
    let port_value =
      match model with
      | Model.Value_port _ -> Some (Scenario.port_values config)
      | _ -> None
    in
    let find cfg name = Policies.value_find ?port_value cfg name in
    let policy =
      match find config policy_name with
      | Some p -> p
      | None ->
        invalid_arg
          ("Daemon.run: unknown value policy \"" ^ policy_name ^ "\"")
    in
    let policy_ref = ref policy in
    let inst, sw =
      Value_engine.create_controlled ~name:"serve" ?recorder ?flight config
        policy_ref
    in
    let current = ref policy_name in
    let live_config () =
      Value_config.make ~ports:config.Value_config.ports
        ~max_value:config.Value_config.max_value
        ~buffer:(Value_switch.buffer sw) ~speedup:config.Value_config.speedup
        ()
    in
    let set_policy name =
      match find (live_config ()) name with
      | Some p ->
        policy_ref := p;
        current := name;
        true
      | None -> false
    in
    let set_buffer b =
      let applied = max b (Value_switch.occupancy sw) in
      Value_switch.set_buffer sw applied;
      (match find (live_config ()) !current with
      | Some p -> policy_ref := p
      | None -> ());
      applied
    in
    {
      inst;
      set_policy;
      set_buffer;
      policy_name = (fun () -> !current);
      buffer_size = (fun () -> Value_switch.buffer sw);
      model_name = "value";
      n_ports = Value_config.n config;
      queue_length = Value_switch.queue_length sw;
    }

(* Instruments that exist only when telemetry is on: their absence keeps a
   plain run's server registry (and its JSONL) identical to before. *)
type stage_instruments = {
  engine_hist : Registry.histogram;
  flush_hist : Registry.histogram;
  (* The next two are written by the producer domain while the engine
     domain snapshots them — unsynchronized single-writer reads whose
     transient inconsistency only blurs a telemetry answer, never engine
     state; the end-of-run report reads them after [Domain.join]. *)
  ingest_hist : Registry.histogram;
  ring_wait_hist : Registry.histogram;
  shed_slots_ctr : Registry.counter;
  shed_packets_ctr : Registry.counter;
}

let run ?(ring_capacity = 64) ?(backpressure = Block) ?flush_every
    ?(metrics_every = 0) ?metrics_sink ?recorder ?event_sink ?(controls = [])
    ?controller ?slots:max_slots ?duration ?rate ?stats_sock
    ?(stats_every = 500) ?(stats_window = 10.0) ?(telemetry = false)
    ?(p99_budget_us = 0.0) ?flight ?(flight_cap = 65536) ?postmortem ~model
    ~policy ~ingest () =
  let ring = Spsc_ring.create ~capacity:ring_capacity () in
  (* The black box is on unless explicitly disabled: a caller-supplied ring
     wins, otherwise [flight_cap] sizes a fresh one (0 turns it off). *)
  let flight =
    match flight with
    | Some _ -> flight
    | None -> if flight_cap > 0 then Some (Flight.create ~cap:flight_cap ()) else None
  in
  let bp = match backpressure with Block -> `Block | Shed -> `Shed in
  let telemetry_on = telemetry || stats_sock <> None in
  let stats_every = max 1 stats_every in
  let max_slots =
    let trace_slots =
      match ingest with Trace c -> Some (Trace.Compact.slots c) | _ -> None
    in
    match (max_slots, trace_slots) with
    | Some a, Some b -> Some (min a b)
    | Some a, None -> Some a
    | None, t -> t
  in
  let fill =
    match ingest with
    | Trace c ->
      let w = Trace.Compact.replay c in
      fun b -> Workload.next_into w b
    | Bank bank -> fun b -> Mmpp_bank.fill bank b
    | Workload w -> fun b -> Workload.next_into w b
  in
  let server = Registry.create () in
  let stages =
    if not telemetry_on then None
    else
      Some
        {
          engine_hist =
            Registry.histogram server ~max_value:1e7 "stage/engine_us";
          flush_hist = Registry.histogram server ~max_value:1e7 "stage/flush_us";
          ingest_hist =
            Registry.histogram server ~max_value:1e7 "stage/ingest_us";
          ring_wait_hist =
            Registry.histogram server ~max_value:1e7 "stage/ring_wait_us";
          shed_slots_ctr = Registry.counter server "shed_slots";
          shed_packets_ctr = Registry.counter server "shed_packets";
        }
  in
  (* ----- ingest domain ----- *)
  let producer () =
    let t0 = Unix.gettimeofday () in
    let deadline = Option.map (fun d -> t0 +. d) duration in
    let continue i =
      (match max_slots with Some m -> i < m | None -> true)
      && match deadline with Some d -> Unix.gettimeofday () < d | None -> true
    in
    let pace i =
      match rate with
      | None -> ()
      | Some r ->
        let due = t0 +. (float_of_int (i + 1) /. r) in
        let now = Unix.gettimeofday () in
        if due > now then Unix.sleepf (due -. now)
    in
    let produce_once =
      match stages with
      | None -> fun () -> Spsc_ring.produce ring ~policy:bp ~fill ()
      | Some st ->
        (* Split the producer's slot into its two stages: ring-wait is the
           blocked stall alone (always zero under Shed, which never
           blocks), ingest is the work of generating the slot. *)
        let blocked = ref 0.0 in
        let on_block s = blocked := s in
        fun () ->
          blocked := 0.0;
          let p0 = Unix.gettimeofday () in
          let r = Spsc_ring.produce ring ~on_block ~policy:bp ~fill () in
          let dt = Unix.gettimeofday () -. p0 in
          Registry.observe st.ring_wait_hist (!blocked *. 1e6);
          Registry.observe st.ingest_hist
            (Float.max 0.0 (dt -. !blocked) *. 1e6);
          r
    in
    let rec loop i =
      if continue i then
        match produce_once () with
        | Spsc_ring.Aborted -> ()
        | Spsc_ring.Pushed | Spsc_ring.Shed ->
          pace i;
          loop (i + 1)
    in
    loop 0;
    Spsc_ring.close ring
  in
  let ingest_domain = Domain.spawn producer in
  (* ----- engine domain (the caller) ----- *)
  let engine = make_engine ?recorder ?flight model policy in
  let inst = engine.inst in
  let fsrc =
    match flight with
    | Some f -> Flight.intern f inst.Instance.name
    | None -> 0
  in
  let slot_hist = Registry.histogram server ~max_value:1e7 "slot_time_us" in
  let ring_gauge = Registry.gauge server "ring_occupancy" in
  let slots_ctr = Registry.counter server "slots" in
  let reconfig_ctr = Registry.counter server "reconfigs" in
  let rejected_ctr = Registry.counter server "reconfigs_rejected" in
  let slot = ref 0 in
  let stopped = ref false in
  let reconfigs = ref 0 in
  let rejected = ref 0 in
  let record_reconfig what target =
    incr reconfigs;
    Registry.incr reconfig_ctr;
    (match flight with
    | Some f -> Flight.reconfig f ~slot:!slot ~src:fsrc ~what ~target
    | None -> ());
    match recorder with
    | Some r ->
      Recorder.record r ~slot:!slot ~who:inst.Instance.name
        (Event.Reconfig { what; target })
    | None -> ()
  in
  let reject () =
    incr rejected;
    Registry.incr rejected_ctr
  in
  (* ----- black box -----
     On the first health trip, latched sink error or engine exception,
     dump the flight window plus a state snapshot.  Only the first trigger
     writes (the earliest evidence is the least contaminated), and a
     failing dump never kills the daemon. *)
  let health_states_now = ref (fun () -> []) in
  let postmortem_written = ref None in
  let dump_postmortem ~reason ~detail =
    match (postmortem, flight) with
    | Some base, Some f when !postmortem_written = None ->
      let m = inst.Instance.metrics in
      let events = Flight.dump f in
      let meta =
        {
          Postmortem.reason;
          detail;
          slot = !slot;
          model = engine.model_name;
          src = inst.Instance.name;
          policy = engine.policy_name ();
          buffer = engine.buffer_size ();
          evicted = Flight.dropped f;
          events = List.length events;
          counters =
            [
              ("arrivals", Metrics.arrivals m);
              ("accepted", Metrics.accepted m);
              ("dropped", Metrics.dropped m);
              ("pushed_out", Metrics.pushed_out m);
              ("transmitted", Metrics.transmitted m);
              ("transmitted_value", Metrics.transmitted_value m);
              ("flushed", Metrics.flushed m);
              ("in_buffer", Metrics.in_buffer m);
              ("slots", !slot);
              ("shed_slots", Spsc_ring.shed_slots ring);
              ("shed_packets", Spsc_ring.shed_packets ring);
              ("reconfigs", !reconfigs);
              ("reconfigs_rejected", !rejected);
            ];
          ports = Array.init engine.n_ports engine.queue_length;
          health = !health_states_now ();
        }
      in
      (match Postmortem.write ~base meta events with
      | Ok () -> postmortem_written := Some base
      | Error _ -> ())
    | _ -> ()
  in
  let sink_checked = ref false in
  let check_sinks () =
    if not !sink_checked then
      let latched sink =
        match sink with Some s -> Sink.failure s | None -> None
      in
      match (latched metrics_sink, latched event_sink) with
      | None, None -> ()
      | Some e, _ | None, Some e ->
        sink_checked := true;
        dump_postmortem ~reason:"sink" ~detail:(Sink.error_to_string e)
  in
  let apply = function
    | Set_policy name ->
      if engine.set_policy name then record_reconfig "policy" name
      else reject ()
    | Resize_buffer b ->
      if b < 1 then reject ()
      else record_reconfig "buffer" (string_of_int (engine.set_buffer b))
    | Stop ->
      stopped := true;
      Spsc_ring.abort ring
  in
  let pending =
    ref (List.stable_sort (fun (a, _) (b, _) -> compare a b) controls)
  in
  let drain_controls () =
    let rec scripted () =
      match !pending with
      | (s, c) :: rest when s <= !slot ->
        pending := rest;
        apply c;
        scripted ()
      | _ -> ()
    in
    scripted ();
    match controller with
    | None -> ()
    | Some ctl -> List.iter apply (drain ctl)
  in
  let flush_metrics () =
    (match metrics_sink with
    | None -> ()
    | Some sink ->
      let labels =
        [ ("src", inst.Instance.name); ("slot", string_of_int !slot) ]
      in
      List.iter (Sink.line sink)
        (Metrics.to_jsonl ~labels inst.Instance.metrics);
      List.iter (Sink.line sink) (Registry.to_jsonl ~labels server));
    match (recorder, event_sink) with
    | Some r, Some sink ->
      Recorder.iter (Sink.event sink) r;
      Recorder.clear r
    | _ -> ()
  in
  let t_start = Unix.gettimeofday () in
  (* ----- telemetry plane (created always, fed only when on) ----- *)
  let m = inst.Instance.metrics in
  let rolling = Rolling.create ~window:stats_window () in
  let r_slots = Rolling.counter rolling "slots" in
  let r_arr = Rolling.counter rolling "arrivals" in
  let r_acc = Rolling.counter rolling "accepted" in
  let r_drop = Rolling.counter rolling "dropped" in
  let r_shed = Rolling.counter rolling "shed_slots" in
  let r_slot_us = Rolling.histogram rolling "slot_time_us" in
  let prev_arr = ref 0 and prev_acc = ref 0 and prev_drop = ref 0 in
  let prev_shed = ref 0 and prev_shed_p = ref 0 in
  (* Rules are evaluated at publication instants; [eval_now] carries that
     instant into the window reads so rules never touch the wall clock. *)
  let eval_now = ref 0.0 in
  let health =
    let on_transition (e : Health.event) =
      (match flight with
      | Some f ->
        Flight.health f ~slot:!slot ~src:fsrc ~rule:e.Health.rule
          ~tripped:e.Health.tripped ~reason:e.Health.reason
      | None -> ());
      (match recorder with
      | Some r ->
        Recorder.record r ~slot:!slot ~who:inst.Instance.name
          (Event.Health
             {
               rule = e.Health.rule;
               tripped = e.Health.tripped;
               reason = e.Health.reason;
             })
      | None -> ());
      if e.Health.tripped then
        dump_postmortem ~reason:"health"
          ~detail:(e.Health.rule ^ ": " ^ e.Health.reason)
    in
    let conservation =
      Health.rule ~name:"conservation" ~trip_after:1 ~clear_after:1 (fun () ->
          match Metrics.check_conservation m with
          | () -> Health.Pass
          | exception Invalid_argument msg -> Health.Fail msg)
    in
    let p99_rule =
      if p99_budget_us <= 0.0 then []
      else
        [
          Health.rule ~name:"p99_slot_time" (fun () ->
              let p99 = Rolling.quantile r_slot_us ~now:!eval_now 0.99 in
              if p99 > p99_budget_us then
                Health.Fail
                  (Printf.sprintf "windowed p99 %.1f us over budget %.1f us"
                     p99 p99_budget_us)
              else Health.Pass);
        ]
    in
    let ring_high_water =
      Health.rule ~name:"ring_high_water" (fun () ->
          let occ = Spsc_ring.length ring in
          if float_of_int occ >= 0.9 *. float_of_int ring_capacity then
            Health.Fail (Printf.sprintf "ring occupancy %d/%d" occ ring_capacity)
          else Health.Pass)
    in
    let shed_rate =
      Health.rule ~name:"shed_rate" (fun () ->
          match Rolling.total r_shed ~now:!eval_now with
          | 0 -> Health.Pass
          | s -> Health.Fail (Printf.sprintf "%d slots shed in window" s))
    in
    Health.create ~on_transition
      ((conservation :: p99_rule) @ [ ring_high_water; shed_rate ])
  in
  health_states_now :=
    (fun () ->
      List.map (fun (n, s) -> (n, s.Health.v_tripped)) (Health.states health));
  let feed_rolling st now slot_us =
    Rolling.incr r_slots ~now;
    let a = Metrics.arrivals m in
    Rolling.add r_arr ~now (a - !prev_arr);
    prev_arr := a;
    let ac = Metrics.accepted m in
    Rolling.add r_acc ~now (ac - !prev_acc);
    prev_acc := ac;
    let d = Metrics.dropped m in
    Rolling.add r_drop ~now (d - !prev_drop);
    prev_drop := d;
    (* Shed accounting lives in the ring's producer-side atomics; mirror
       the deltas into window and cumulative server counters here so every
       published rate flows from one snapshot mechanism. *)
    let s = Spsc_ring.shed_slots ring in
    let ds = max 0 (s - !prev_shed) in
    Rolling.add r_shed ~now ds;
    Registry.add st.shed_slots_ctr ds;
    prev_shed := s;
    let p = Spsc_ring.shed_packets ring in
    Registry.add st.shed_packets_ctr (max 0 (p - !prev_shed_p));
    prev_shed_p := p;
    Rolling.observe r_slot_us ~now slot_us
  in
  let published : Telemetry.view option Atomic.t = Atomic.make None in
  let publish now =
    eval_now := now;
    Health.evaluate health;
    let server_snap = Registry.snapshot server in
    let window =
      {
        Telemetry.w_span = Rolling.span rolling ~now;
        slots_per_sec = Rolling.rate r_slots ~now;
        arrivals_per_sec = Rolling.rate r_arr ~now;
        accepted_per_sec = Rolling.rate r_acc ~now;
        drops_per_sec = Rolling.rate r_drop ~now;
        shed_slots_per_sec = Rolling.rate r_shed ~now;
        p50_us = Rolling.quantile r_slot_us ~now 0.5;
        p95_us = Rolling.quantile r_slot_us ~now 0.95;
        p99_us = Rolling.quantile r_slot_us ~now 0.99;
      }
    in
    (* One atomic store publishes an immutable view; the stats server only
       ever [Atomic.get]s it — no lock is shared with this loop. *)
    Atomic.set published
      (Some
         {
           Telemetry.at = now;
           slot = !slot;
           uptime = now -. t_start;
           policy = engine.policy_name ();
           buffer = engine.buffer_size ();
           ring_occupancy = Spsc_ring.length ring;
           ring_capacity;
           ring_max = Spsc_ring.max_occupancy ring;
           shed_slots = Spsc_ring.shed_slots ring;
           shed_packets = Spsc_ring.shed_packets ring;
           window;
           engine = Registry.snapshot (Metrics.registry m);
           server = server_snap;
           spans = Telemetry.stage_aggregates server_snap;
           health = Health.states health;
           degraded = Health.degraded health;
         })
  in
  let stats_server =
    match stats_sock with
    | None -> None
    | Some path -> (
      match
        Telemetry.start ~path ~latest:(fun () -> Atomic.get published)
      with
      | Ok s -> Some s
      | Error msg -> invalid_arg ("Daemon.run: " ^ msg))
  in
  let step batch =
    let t0 = Unix.gettimeofday () in
    Instance.step_batch inst ~batch;
    let t1 = match stages with None -> t0 | Some _ -> Unix.gettimeofday () in
    incr slot;
    Registry.incr slots_ctr;
    (match flush_every with
    | Some f when f > 0 && !slot mod f = 0 ->
      inst.Instance.flush ();
      (match stages with
      | Some st ->
        Registry.observe st.flush_hist ((Unix.gettimeofday () -. t1) *. 1e6)
      | None -> ())
    | _ -> ());
    (* Slot boundary: bookkeeping done, next slot's arrivals not yet
       offered — the only point where reconfiguration is legal. *)
    drain_controls ();
    let t_end = Unix.gettimeofday () in
    Registry.observe slot_hist ((t_end -. t0) *. 1e6);
    Registry.set ring_gauge (float_of_int (Spsc_ring.length ring));
    (match stages with
    | Some st ->
      Registry.observe st.engine_hist ((t1 -. t0) *. 1e6);
      feed_rolling st t_end ((t_end -. t0) *. 1e6);
      if !slot mod stats_every = 0 then publish t_end
    | None -> ());
    if metrics_every > 0 && !slot mod metrics_every = 0 then begin
      flush_metrics ();
      check_sinks ()
    end
  in
  let rec consume () =
    if not !stopped then
      match Spsc_ring.consume ring ~stop:(fun () -> !stopped) ~f:step with
      | Spsc_ring.Consumed -> consume ()
      | Spsc_ring.Drained | Spsc_ring.Stopped -> ()
  in
  (try consume ()
   with exn ->
     (* The engine died mid-run: that is exactly what the black box is
        for.  Dump, unblock and reap the producer, then re-raise. *)
     dump_postmortem ~reason:"exception" ~detail:(Printexc.to_string exn);
     Spsc_ring.abort ring;
     (try Domain.join ingest_domain with _ -> ());
     raise exn);
  Domain.join ingest_domain;
  let wall = Unix.gettimeofday () -. t_start in
  flush_metrics ();
  check_sinks ();
  (* Final publication (one last health evaluation included), then take the
     socket down before reporting. *)
  if telemetry_on then publish (Unix.gettimeofday ());
  (match stats_server with Some s -> Telemetry.stop s | None -> ());
  let conservation_ok, conservation_error =
    try
      inst.Instance.check ();
      (true, None)
    with Invalid_argument m -> (false, Some m)
  in
  let q =
    let h = Registry.histogram_values slot_hist in
    fun p -> Smbm_prelude.Histogram.quantile h p
  in
  let degraded, health_states =
    if telemetry_on then
      ( Health.degraded health,
        List.map
          (fun (n, s) -> (n, s.Health.v_tripped))
          (Health.states health) )
    else (false, [])
  in
  {
    slots = !slot;
    wall;
    slots_per_sec = (if wall > 0. then float_of_int !slot /. wall else 0.);
    arrivals = Metrics.arrivals m;
    accepted = Metrics.accepted m;
    transmitted = Metrics.transmitted m;
    dropped = Metrics.dropped m;
    flushed = Metrics.flushed m;
    shed_slots = Spsc_ring.shed_slots ring;
    shed_packets = Spsc_ring.shed_packets ring;
    ring_capacity;
    ring_max = Spsc_ring.max_occupancy ring;
    reconfigs = !reconfigs;
    reconfigs_rejected = !rejected;
    p50_us = q 0.5;
    p95_us = q 0.95;
    p99_us = q 0.99;
    conservation_ok;
    conservation_error;
    stopped = !stopped;
    degraded;
    health = health_states;
    postmortem = !postmortem_written;
  }
