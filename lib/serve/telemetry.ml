module Registry = Smbm_obs.Registry
module Health = Smbm_obs.Health
module Span = Smbm_obs.Span
module Json = Smbm_obs.Json

type window_stats = {
  w_span : float;
  slots_per_sec : float;
  arrivals_per_sec : float;
  accepted_per_sec : float;
  drops_per_sec : float;
  shed_slots_per_sec : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
}

type view = {
  at : float;
  slot : int;
  uptime : float;
  policy : string;
  buffer : int;
  ring_occupancy : int;
  ring_capacity : int;
  ring_max : int;
  shed_slots : int;
  shed_packets : int;
  window : window_stats;
  engine : (string * Registry.sample) list;
  server : (string * Registry.sample) list;
  spans : (string * Span.agg) list;
  health : (string * Health.view_state) list;
  degraded : bool;
}

(* ----- stage aggregates ----- *)

(* The slot loop times its stages into server-registry histograms named
   [stage/<name>_us]; this lifts them into {!Span.agg} values (seconds, cpu
   unattributed) so the [spans] answer and any other consumer share the
   span report's shape. *)
let stage_aggregates server =
  List.filter_map
    (fun (name, sample) ->
      match sample with
      | Registry.Summary { n; mean; max; _ }
        when String.length name > 6 && String.sub name 0 6 = "stage/" ->
        let stage = String.sub name 6 (String.length name - 6) in
        let stage =
          match String.rindex_opt stage '_' with
          | Some i when String.sub stage i (String.length stage - i) = "_us"
            ->
            String.sub stage 0 i
          | _ -> stage
        in
        Some
          ( stage,
            {
              Span.count = n;
              wall = float_of_int n *. mean /. 1e6;
              wall_mean = mean /. 1e6;
              wall_max = max /. 1e6;
              cpu = 0.0;
            } )
      | _ -> None)
    server

(* ----- renderers ----- *)

let render_health v =
  (if v.degraded then "degraded" else "ok")
  :: List.map
       (fun (name, (s : Health.view_state)) ->
         Printf.sprintf "%s: %s (trips %d%s)" name
           (if s.Health.v_tripped then "TRIPPED" else "ok")
           s.Health.v_trips
           (match s.Health.v_last_reason with
           | Some r -> ", last: " ^ r
           | None -> ""))
       v.health

let render_spans v =
  match v.spans with
  | [] -> [ "no stage profile yet" ]
  | spans ->
    List.map
      (fun (name, (a : Span.agg)) ->
        Printf.sprintf "%s: count %d, wall %.3fs (mean %.1fus, max %.1fus)"
          name a.Span.count a.Span.wall
          (a.Span.wall_mean *. 1e6)
          (a.Span.wall_max *. 1e6))
      spans

let render_stats v =
  let w = v.window in
  [
    Printf.sprintf "slot %d, uptime %.1fs, policy %s, buffer %d" v.slot
      v.uptime v.policy v.buffer;
    Printf.sprintf "ring %d/%d (max %d), shed %d slots (%d packets)"
      v.ring_occupancy v.ring_capacity v.ring_max v.shed_slots v.shed_packets;
    Printf.sprintf
      "window %.1fs: %.0f slots/s, %.0f arrivals/s, %.0f accepted/s, %.1f \
       drops/s, %.1f shed/s"
      w.w_span w.slots_per_sec w.arrivals_per_sec w.accepted_per_sec
      w.drops_per_sec w.shed_slots_per_sec;
    Printf.sprintf "slot time p50 %.1f / p95 %.1f / p99 %.1f us" w.p50_us
      w.p95_us w.p99_us;
    Printf.sprintf "health %s" (if v.degraded then "degraded" else "ok");
  ]

let sample_fields prefix samples =
  List.concat_map
    (fun (name, sample) ->
      let key = prefix ^ "/" ^ name in
      match sample with
      | Registry.Count c -> [ (key, Json.Int c) ]
      | Registry.Level l -> [ (key, Json.Float l) ]
      | Registry.Summary
          { n; mean; p50; p95; p99; max; buckets_per_decade; buckets } ->
        let bucket_str =
          buckets
          |> List.map (fun (i, c) -> Printf.sprintf "%d:%d" i c)
          |> String.concat " "
        in
        [
          (key ^ ".count", Json.Int n);
          (key ^ ".mean", Json.Float mean);
          (key ^ ".p50", Json.Float p50);
          (key ^ ".p95", Json.Float p95);
          (key ^ ".p99", Json.Float p99);
          (key ^ ".max", Json.Float max);
          (key ^ ".bpd", Json.Int buckets_per_decade);
          (key ^ ".buckets", Json.Str bucket_str);
        ])
    samples

let render_json v =
  let w = v.window in
  let fields =
    [
      ("at", Json.Float v.at);
      ("slot", Json.Int v.slot);
      ("uptime", Json.Float v.uptime);
      ("policy", Json.Str v.policy);
      ("buffer", Json.Int v.buffer);
      ("ring_occupancy", Json.Int v.ring_occupancy);
      ("ring_capacity", Json.Int v.ring_capacity);
      ("ring_max", Json.Int v.ring_max);
      ("shed_slots", Json.Int v.shed_slots);
      ("shed_packets", Json.Int v.shed_packets);
      ("degraded", Json.Bool v.degraded);
      ("window.span", Json.Float w.w_span);
      ("window.slots_per_sec", Json.Float w.slots_per_sec);
      ("window.arrivals_per_sec", Json.Float w.arrivals_per_sec);
      ("window.accepted_per_sec", Json.Float w.accepted_per_sec);
      ("window.drops_per_sec", Json.Float w.drops_per_sec);
      ("window.shed_slots_per_sec", Json.Float w.shed_slots_per_sec);
      ("window.p50_us", Json.Float w.p50_us);
      ("window.p95_us", Json.Float w.p95_us);
      ("window.p99_us", Json.Float w.p99_us);
    ]
    @ sample_fields "engine" v.engine
    @ sample_fields "server" v.server
    @ List.map
        (fun (name, (s : Health.view_state)) ->
          ( "health/" ^ name,
            Json.Str (if s.Health.v_tripped then "tripped" else "ok") ))
        v.health
  in
  [ Json.obj fields ]

(* Inverse of {!sample_fields}: reconstruct registry samples from a parsed
   [stats json] line, so a remote client (smbm_cli watch) can run
   {!Smbm_obs.Rolling.Delta} over two polls exactly as if it held the
   registry.  Scalar Int fields under the prefix are counters; dotted
   groups with a [.count] become summaries. *)
let samples_of_json ~prefix fields =
  let plen = String.length prefix + 1 in
  let under = prefix ^ "/" in
  let is_under k =
    String.length k >= plen && String.sub k 0 plen = under
  in
  let base k =
    let rest = String.sub k plen (String.length k - plen) in
    match String.rindex_opt rest '.' with
    | Some i -> (String.sub rest 0 i, Some (String.sub rest (i + 1) (String.length rest - i - 1)))
    | None -> (rest, None)
  in
  let lookup name suffix =
    List.assoc_opt (under ^ name ^ "." ^ suffix) fields
  in
  let flt name suffix =
    match lookup name suffix with
    | Some (Json.Float f) -> f
    | Some (Json.Int i) -> float_of_int i
    | _ -> 0.0
  in
  let int name suffix =
    match lookup name suffix with Some (Json.Int i) -> i | _ -> 0
  in
  let parse_buckets s =
    if s = "" then []
    else
      String.split_on_char ' ' s
      |> List.filter_map (fun pair ->
             match String.index_opt pair ':' with
             | Some i -> (
               try
                 Some
                   ( int_of_string (String.sub pair 0 i),
                     int_of_string
                       (String.sub pair (i + 1) (String.length pair - i - 1))
                   )
               with Failure _ -> None)
             | None -> None)
  in
  List.filter_map
    (fun (k, v) ->
      if not (is_under k) then None
      else
        match (base k, v) with
        | (name, None), Json.Int c -> Some (name, Registry.Count c)
        | (name, None), Json.Float l -> Some (name, Registry.Level l)
        | (name, Some "count"), Json.Int n ->
          let buckets =
            match lookup name "buckets" with
            | Some (Json.Str s) -> parse_buckets s
            | _ -> []
          in
          Some
            ( name,
              Registry.Summary
                {
                  n;
                  mean = flt name "mean";
                  p50 = flt name "p50";
                  p95 = flt name "p95";
                  p99 = flt name "p99";
                  max = flt name "max";
                  buckets_per_decade = (match int name "bpd" with 0 -> 10 | b -> b);
                  buckets;
                } )
        | _ -> None)
    fields

(* ----- protocol ----- *)

let handle latest line =
  let cmd = String.trim line in
  match latest with
  | None -> [ "err no snapshot published yet" ]
  | Some v -> (
    match cmd with
    | "stats" -> render_stats v
    | "stats json" -> render_json v
    | "health" -> render_health v
    | "spans" -> render_spans v
    | "" -> [ "err empty command" ]
    | other ->
      [
        Printf.sprintf
          "err unknown command %S (try: stats | stats json | health | spans)"
          other;
      ])

(* ----- server ----- *)

type server = {
  path : string;
  listen_fd : Unix.file_descr;
  stop_flag : bool Atomic.t;
  domain : unit Domain.t;
}

let serve_client fd latest =
  (* One client at a time, synchronously: a stats socket has no concurrency
     needs, and the receive timeout below evicts an idle client so it
     cannot wedge the server. *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0 with Unix.Unix_error _ -> ());
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let rec loop () =
       let line = input_line ic in
       let lines = handle (latest ()) line in
       List.iter
         (fun l ->
           output_string oc l;
           output_char oc '\n')
         lines;
       output_char oc '\n';
       flush oc;
       loop ()
     in
     loop ()
   with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
  try close_in_noerr ic with _ -> ()

let rec accept_loop ~listen_fd ~stop_flag latest =
  if not (Atomic.get stop_flag) then begin
    (match Unix.select [ listen_fd ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept listen_fd with
      | fd, _ -> serve_client fd latest
      | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    accept_loop ~listen_fd ~stop_flag latest
  end

let start ~path ~latest =
  (* Writes to a client that vanished mid-response must surface as EPIPE,
     not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match
    (try if Sys.file_exists path then Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 8;
       fd
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e)
  with
  | fd ->
    let stop_flag = Atomic.make false in
    let domain =
      Domain.spawn (fun () -> accept_loop ~listen_fd:fd ~stop_flag latest)
    in
    Ok { path; listen_fd = fd; stop_flag; domain }
  | exception Unix.Unix_error (err, fn, _) ->
    Error
      (Printf.sprintf "stats socket %s: %s (%s)" path (Unix.error_message err)
         fn)

let stop s =
  Atomic.set s.stop_flag true;
  Domain.join s.domain;
  (try Unix.close s.listen_fd with Unix.Unix_error _ -> ());
  try if Sys.file_exists s.path then Unix.unlink s.path
  with Unix.Unix_error _ -> ()

(* ----- client ----- *)

let query ~path cmd =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (err, _, _) ->
    Error (Unix.error_message err)
  | fd -> (
    try
      Unix.connect fd (Unix.ADDR_UNIX path);
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0
       with Unix.Unix_error _ -> ());
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      output_string oc cmd;
      output_char oc '\n';
      flush oc;
      let rec read acc =
        match input_line ic with
        | "" -> List.rev acc
        | line -> read (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      let lines = read [] in
      (try close_in_noerr ic with _ -> ());
      match lines with
      | err :: _
        when String.length err >= 4 && String.sub err 0 4 = "err " ->
        Error (String.sub err 4 (String.length err - 4))
      | lines -> Ok lines
    with
    | Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with _ -> ());
      Error (Unix.error_message err)
    | Sys_error m ->
      (try Unix.close fd with _ -> ());
      Error m)
