(** Stats socket for a running daemon: a Unix-domain-socket server on its
    own domain, answering a small line protocol from lock-free snapshots.

    {2 Why the slot loop never notices}

    The engine publishes an immutable {!view} record through one
    [Atomic.set] every [stats_every] slots; the server domain reads the
    latest view with [Atomic.get] when a query arrives.  No lock is shared
    with the slot loop, no query can make the engine wait, and a view is
    built from data the loop already maintains — telemetry is
    observer-effect-free on engine {e output} by construction (wall-clock
    timings excepted, which never enter traces).

    {2 Protocol}

    Line-oriented over [AF_UNIX]/[SOCK_STREAM].  The client sends one
    command per line; the server answers with one or more lines followed by
    a blank line.  Commands:

    {v
    stats        human-readable one-screen summary
    stats json   one flat JSON object (see Smbm_obs.Json)
    health       "ok" | "degraded", then one line per watchdog rule
    spans        slot-stage wall-time profile (ingest/ring_wait/engine/flush)
    v}

    Errors are a single line starting with ["err "]. *)

module Registry = Smbm_obs.Registry
module Health = Smbm_obs.Health
module Span = Smbm_obs.Span
module Json = Smbm_obs.Json

type window_stats = {
  w_span : float;  (** seconds the rolling window currently covers *)
  slots_per_sec : float;
  arrivals_per_sec : float;
  accepted_per_sec : float;
  drops_per_sec : float;
  shed_slots_per_sec : float;
  p50_us : float;  (** windowed engine slot-time quantiles *)
  p95_us : float;
  p99_us : float;
}

type view = {
  at : float;  (** publication wall instant *)
  slot : int;
  uptime : float;
  policy : string;  (** current (possibly reconfigured) policy name *)
  buffer : int;  (** current B *)
  ring_occupancy : int;
  ring_capacity : int;
  ring_max : int;
  shed_slots : int;
  shed_packets : int;
  window : window_stats;
  engine : (string * Registry.sample) list;
      (** cumulative engine metrics snapshot *)
  server : (string * Registry.sample) list;
      (** daemon-side instruments (slot_time_us, stage/*, ...) *)
  spans : (string * Span.agg) list;  (** slot-stage profile *)
  health : (string * Health.view_state) list;
  degraded : bool;
}

val stage_aggregates :
  (string * Registry.sample) list -> (string * Span.agg) list
(** Lift [stage/<name>_us] histograms from a server-registry snapshot into
    named {!Smbm_obs.Span.agg} values (seconds; [cpu] unattributed). *)

val handle : view option -> string -> string list
(** Pure protocol step: answer one command line against the latest view
    ([None] before the first publication).  Exposed for tests. *)

val render_json : view -> string list
(** The [stats json] answer: a single flat JSON line. *)

val samples_of_json :
  prefix:string -> (string * Json.value) list -> (string * Registry.sample) list
(** Reconstruct registry samples from a parsed [stats json] line
    ([prefix] is ["engine"] or ["server"]) — the inverse of the JSON
    rendering, so a remote client can diff two polls with
    {!Smbm_obs.Rolling.Delta}. *)

(* ----- server ----- *)

type server

val start :
  path:string -> latest:(unit -> view option) -> (server, string) result
(** Bind [path] (an existing file at the path is unlinked first), start
    the accept loop on a fresh domain, and ignore [SIGPIPE] process-wide
    (a vanished client must not kill the daemon). *)

val stop : server -> unit
(** Signal the accept loop, join its domain, close and unlink the
    socket. *)

(* ----- client ----- *)

val query : path:string -> string -> (string list, string) result
(** One-shot client: connect, send one command, read lines until the blank
    terminator.  An ["err ..."] answer returns as [Error]. *)
