(** The online switch daemon: one engine instance run as a long-lived
    service behind a bounded SPSC ring.

    An ingest domain fills {!Spsc_ring} slots (one per simulated time slot)
    from a synthetic {!Mmpp_bank}, a recorded trace, or any workload; the
    calling domain consumes them, stepping a {!Smbm_sim.Proc_engine} /
    {!Smbm_sim.Value_engine} instance slot by slot.  The ring's capacity
    bounds both memory and the ingest lead: when the engine falls behind,
    the chosen {!backpressure} either paces the producer ([Block]) or sheds
    whole slots with explicit accounting ([Shed]).

    {2 Live reconfiguration}

    Controls — scripted [(slot, control)] pairs or pushed through a
    {!controller} from another domain — are applied at slot boundaries
    only, between one slot's bookkeeping and the next slot's arrivals:

    - [Set_policy name] rebuilds the victim policy by registry lookup
      against a config carrying the switch's {e live} buffer size (so
      threshold policies derive thresholds from the current B, not the
      boot-time one) and swaps it into the engine's policy ref.
    - [Resize_buffer b] grows or shrinks B in place.  Shrinking is clamped
      to the current occupancy — a reconfiguration never drops a buffered
      packet (the conservation audit would catch it if it did).  The
      current policy is then rebuilt against the new B.
    - [Stop] aborts the ingest and ends the run after the current slot.

    Every applied reconfiguration is recorded as an
    {!Smbm_obs.Event.kind.Reconfig} event and counted in the report; a
    control that cannot be applied (unknown policy name, b < 1) is counted
    as rejected and otherwise ignored — a bad control must not kill a
    daemon. *)

type backpressure = Block | Shed

type control = Set_policy of string | Resize_buffer of int | Stop

type controller
(** A thread-safe typed control channel into a running daemon. *)

val controller : unit -> controller

val push : controller -> control -> unit
(** Enqueue a control; it is applied at the next slot boundary. *)

type ingest =
  | Trace of Smbm_traffic.Trace.Compact.t
      (** replay a recorded trace; ingest ends when the trace does *)
  | Bank of Mmpp_bank.t  (** synthetic MMPP traffic, unbounded *)
  | Workload of Smbm_traffic.Workload.t
      (** any workload; the producer domain owns it exclusively *)

type report = {
  slots : int;  (** slots fully processed by the engine *)
  wall : float;  (** consumer wall-clock seconds *)
  slots_per_sec : float;
  arrivals : int;
  accepted : int;
  transmitted : int;
  dropped : int;  (** dropped by admission control (measured traffic) *)
  flushed : int;
  shed_slots : int;  (** whole slots shed by ring backpressure *)
  shed_packets : int;  (** packets inside those slots (never offered) *)
  ring_capacity : int;
  ring_max : int;  (** ring occupancy high-water mark *)
  reconfigs : int;  (** controls applied *)
  reconfigs_rejected : int;
  p50_us : float;  (** per-slot engine service time quantiles *)
  p95_us : float;
  p99_us : float;
  conservation_ok : bool;
      (** final audit: metrics conservation + switch invariants +
          in-buffer sync, after the whole run including reconfigurations *)
  conservation_error : string option;
  stopped : bool;  (** ended by [Stop] rather than ingest exhaustion *)
  degraded : bool;
      (** any health watchdog tripped at the end of the run (always false
          with telemetry off); callers surface it in the exit status *)
  health : (string * bool) list;
      (** final per-rule tripped state; empty with telemetry off *)
  postmortem : string option;
      (** base path of the black-box dump written this run, if any
          triggered (see {!run}'s [postmortem]) *)
}

val pp_report : Format.formatter -> report -> unit

val run :
  ?ring_capacity:int ->
  ?backpressure:backpressure ->
  ?flush_every:int ->
  ?metrics_every:int ->
  ?metrics_sink:Smbm_obs.Sink.t ->
  ?recorder:Smbm_obs.Recorder.t ->
  ?event_sink:Smbm_obs.Sink.t ->
  ?controls:(int * control) list ->
  ?controller:controller ->
  ?slots:int ->
  ?duration:float ->
  ?rate:float ->
  ?stats_sock:string ->
  ?stats_every:int ->
  ?stats_window:float ->
  ?telemetry:bool ->
  ?p99_budget_us:float ->
  ?flight:Smbm_obs.Flight.t ->
  ?flight_cap:int ->
  ?postmortem:string ->
  model:Model.t ->
  policy:string ->
  ingest:ingest ->
  unit ->
  report
(** Run the daemon to completion on the calling domain (the ingest runs on
    a spawned domain) and return the final report.

    [ring_capacity] (default 64) sizes the ring; [backpressure] (default
    [Block]) picks the full-ring behaviour.  [flush_every] is the
    simulator's periodic flushout period (no flushouts when absent);
    [metrics_every] (default 0 = final only) emits a labeled JSONL metrics
    snapshot to [metrics_sink] every that many slots and drains [recorder]
    to [event_sink].  [controls] are scripted reconfigurations, applied
    once their slot boundary is reached (sorted internally).  [slots],
    [duration] (wall seconds) and [rate] (slots per second pacing) bound
    the ingest; with none of them, a [Trace] ingest ends with the trace and
    a [Bank]/[Workload] ingest runs until a [Stop] control.

    {2 Telemetry}

    [stats_sock] serves the {!Telemetry} protocol on a Unix socket at that
    path (from its own domain); [telemetry:true] turns the telemetry plane
    on without a socket (test hook).  With telemetry on, the slot loop
    additionally feeds an {!Smbm_obs.Rolling} window of [stats_window]
    seconds (default 10), times its stages into [stage/*] histograms,
    evaluates {!Smbm_obs.Health} watchdogs (conservation; ring high-water;
    shed rate; and, when [p99_budget_us > 0], windowed p99 slot time over
    budget) and publishes a fresh view every [stats_every] slots (default
    500).  Health transitions are recorded as {!Smbm_obs.Event.kind.Health}
    events when a [recorder] is present.  With telemetry off, none of this
    runs — no extra clock reads, no extra instruments — so output is
    byte-identical to earlier versions.  Telemetry never alters engine
    behaviour either way: deterministic engine metrics are bit-identical
    with and without a stats socket.

    {2 Black box}

    The daemon always records into an {!Smbm_obs.Flight} ring — the
    allocation-free struct-of-arrays event recorder — holding the last
    [flight_cap] events (default 65536; 0 disables, and a caller-supplied
    [flight] ring overrides the cap).  Unlike [recorder], which is opt-in
    tracing, the flight ring is cheap enough to leave on: recording writes
    six int columns per event and allocates nothing.

    When [postmortem] is set, the first of (a) a health watchdog tripping,
    (b) a sink latching an I/O error, or (c) the engine raising, dumps the
    ring and a state snapshot to [<postmortem>.trace.bin] (binary trace)
    and [<postmortem>.meta.jsonl] — the {!Smbm_forensics.Postmortem}
    format, replayable and certifiable offline.  Only the first trigger
    dumps (the earliest evidence is the least contaminated); the report's
    [postmortem] field carries the base path when a dump was written.  A
    dump failure never kills the run.

    @raise Invalid_argument if the initial [policy] is unknown for
    [model], [ring_capacity < 1], or the stats socket cannot be bound. *)
