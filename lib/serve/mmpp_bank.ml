open Smbm_core
open Smbm_traffic

type shard = { workload : Workload.t; batch : Arrival_batch.t }
type t = { shards : shard array; pool : Smbm_par.Pool.t option }

(* Distinct per-shard seeds, spread far apart so the per-source RNG streams
   derived from them do not collide across shards. *)
let shard_seed seed i = seed + (1000003 * (i + 1))

let create ?(mmpp = Scenario.default_mmpp) ?pool ?(shards = 1) model ~load
    ~seed () =
  if shards < 1 then invalid_arg "Mmpp_bank.create: shards must be >= 1";
  if shards > mmpp.Scenario.sources then
    invalid_arg "Mmpp_bank.create: more shards than sources";
  let base = mmpp.Scenario.sources / shards in
  let extra = mmpp.Scenario.sources mod shards in
  let total = float_of_int mmpp.Scenario.sources in
  let make i =
    let sources = base + if i < extra then 1 else 0 in
    let shard_mmpp = { mmpp with Scenario.sources } in
    (* Scale the normalized load by the shard's source share: the derived
       per-source on-state rate then matches the unsharded bank exactly. *)
    let shard_load = load *. float_of_int sources /. total in
    let seed = shard_seed seed i in
    let workload =
      match model with
      | Model.Proc config ->
        Scenario.proc_workload ~mmpp:shard_mmpp ~config ~load:shard_load ~seed
          ()
      | Model.Value_uniform config ->
        Scenario.value_uniform_workload ~mmpp:shard_mmpp ~config
          ~load:shard_load ~seed ()
      | Model.Value_port config ->
        Scenario.value_port_workload ~mmpp:shard_mmpp ~config ~load:shard_load
          ~seed ()
    in
    { workload; batch = Arrival_batch.create () }
  in
  { shards = Array.init shards make; pool }

let shards t = Array.length t.shards

let step_shard s = Workload.next_into s.workload s.batch

let fill t batch =
  Arrival_batch.clear batch;
  (match t.pool with
  | Some pool when Array.length t.shards > 1 ->
    ignore
      (Smbm_par.Pool.map pool step_shard (Array.to_list t.shards)
        : unit list)
  | _ -> Array.iter step_shard t.shards);
  (* Append in shard order: the interleaving is a pure function of
     (seed, shards), never of the pool's schedule. *)
  Array.iter
    (fun s ->
      Arrival_batch.iter s.batch ~f:(fun ~dest ~value ->
          Arrival_batch.push batch ~dest ~value))
    t.shards

let mean_rate t =
  Array.fold_left
    (fun acc s ->
      match (acc, Workload.mean_rate s.workload) with
      | Some a, Some r -> Some (a +. r)
      | _ -> None)
    (Some 0.) t.shards
