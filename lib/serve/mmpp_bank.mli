(** A sharded bank of MMPP on-off sources — the daemon's synthetic ingest.

    The paper's workload interleaves hundreds of independent on-off sources;
    stepping them all on the ingest domain caps the arrival rate the daemon
    can offer.  The bank splits the sources into [shards] independent
    {!Smbm_traffic.Workload.t}s (each a {!Smbm_traffic.Scenario} preset over
    its share of the sources, with its own derived seed) and steps the
    shards in parallel on an optional {!Smbm_par.Pool}.

    Sharding preserves the traffic model: each shard's normalized load is
    scaled by its source share, so the per-source on-state emission rate is
    identical to the unsharded bank's, and the superposition has the same
    aggregate rate and burstiness structure.  Each shard owns a private
    {!Smbm_core.Arrival_batch.t}; {!fill} steps every shard (in parallel if
    a pool is given) and appends the shard batches in shard order — the
    output is a deterministic function of [(seed, shards)], independent of
    the pool's job count. *)

open Smbm_core

type t

val create :
  ?mmpp:Smbm_traffic.Scenario.mmpp_params ->
  ?pool:Smbm_par.Pool.t ->
  ?shards:int ->
  Model.t ->
  load:float ->
  seed:int ->
  unit ->
  t
(** [shards] defaults to 1 (plain single-workload bank).  Sources are
    split as evenly as possible (the first [sources mod shards] shards get
    one extra).  A [pool] only helps when [shards > 1].
    @raise Invalid_argument if [shards < 1] or [shards > sources]. *)

val fill : t -> Arrival_batch.t -> unit
(** Clear [batch], then fill it with the next slot's arrivals (shard 0's
    packets first).  One call consumes one slot from every shard. *)

val shards : t -> int

val mean_rate : t -> float option
(** Aggregate long-run packets per slot (sum over shards). *)
