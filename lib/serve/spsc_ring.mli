(** Single-producer / single-consumer ring of reusable
    {!Smbm_core.Arrival_batch.t} slots.

    The ring is the bounded hand-off between the ingest domain (which
    generates or reads one slot's arrivals per batch) and the engine domain
    (which steps the switch).  Capacity is fixed at creation: ring occupancy
    can never grow without bound, which makes the daemon's memory footprint
    a constant.  Every slot of the ring owns one [Arrival_batch] that is
    reused forever — steady-state production and consumption allocate
    nothing.

    Exactly one domain may call the producer operations ({!produce},
    {!close}) and exactly one the consumer operations ({!consume},
    {!abort}); publication is through two monotone atomic counters, so the
    batches themselves need no locks (the producer's writes to a slot
    happen-before the consumer's reads via the tail publication, and
    vice-versa for reuse via the head publication).

    {2 Backpressure}

    When the ring is full, {!produce} applies the chosen policy:
    - [`Block]: spin (with [Domain.cpu_relax], degrading to short sleeps)
      until the consumer frees a slot — ingest is paced by the engine;
    - [`Shed]: generate the slot into a private scratch batch and discard
      it, accounting the shed slot and its packets — the engine never sees
      the traffic, but the loss is measured, not silent.  The workload's
      RNG advances identically either way, so a shed stream is a strict
      subsequence of the blocked one. *)

open Smbm_core

type t

val create : capacity:int -> unit -> t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : t -> int

val length : t -> int
(** Snapshot of the current occupancy (racy but monotonic per endpoint). *)

(* ----- producer side ----- *)

type push_result =
  | Pushed  (** the batch is in the ring *)
  | Shed  (** ring full under [`Shed]: generated, accounted, discarded *)
  | Aborted  (** the consumer called {!abort}; stop producing *)

val produce :
  t ->
  ?on_block:(float -> unit) ->
  policy:[ `Block | `Shed ] ->
  fill:(Arrival_batch.t -> unit) ->
  unit ->
  push_result
(** Claim the next slot, [fill] its (cleared) batch, publish it.  [fill]
    runs on the producer domain; it must not touch the ring.

    [on_block] is called (on the producer domain) with the seconds the
    call spent waiting for space, only when it actually waited — i.e. only
    under [`Block] with a full ring; shed mode never blocks and reports
    nothing.  The stall clock is read only when [on_block] is supplied, so
    the default path stays free of [gettimeofday] calls. *)

val close : t -> unit
(** Producer is done: after the ring drains, {!consume} returns [Drained].
    Idempotent. *)

(* ----- consumer side ----- *)

type pop_result =
  | Consumed  (** [f] ran on one batch *)
  | Drained  (** producer closed and every published batch was consumed *)
  | Stopped  (** the [stop] predicate fired while waiting *)

val consume :
  t -> stop:(unit -> bool) -> f:(Arrival_batch.t -> unit) -> pop_result
(** Wait for a published batch, run [f] on it, release the slot for reuse.
    [stop] is polled while waiting (not between [f] and the release), so a
    control plane can interrupt an idle consumer. *)

val abort : t -> unit
(** Consumer gives up: a blocked producer unblocks and {!produce} returns
    [Aborted] from then on.  Idempotent. *)

(* ----- accounting ----- *)

val shed_slots : t -> int
val shed_packets : t -> int

val max_occupancy : t -> int
(** High-water mark of ring occupancy observed at publication time. *)
