open Smbm_core

type t = {
  slots : Arrival_batch.t array;
  capacity : int;
  head : int Atomic.t;  (* consumer position: next slot to read *)
  tail : int Atomic.t;  (* producer position: next slot to write *)
  closed : bool Atomic.t;
  aborted : bool Atomic.t;
  shed_slots : int Atomic.t;
  shed_packets : int Atomic.t;
  scratch : Arrival_batch.t;  (* producer-only: shed generation target *)
  mutable max_occupancy : int;  (* producer-only *)
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Spsc_ring.create: capacity must be >= 1";
  {
    slots = Array.init capacity (fun _ -> Arrival_batch.create ());
    capacity;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    closed = Atomic.make false;
    aborted = Atomic.make false;
    shed_slots = Atomic.make 0;
    shed_packets = Atomic.make 0;
    scratch = Arrival_batch.create ();
    max_occupancy = 0;
  }

let capacity t = t.capacity
let length t = Atomic.get t.tail - Atomic.get t.head
let shed_slots t = Atomic.get t.shed_slots
let shed_packets t = Atomic.get t.shed_packets
let max_occupancy t = t.max_occupancy

type push_result = Pushed | Shed | Aborted

(* Back off while a full/empty condition persists: spin briefly to catch
   the common fast hand-off, then yield the core so a pinned pair of
   domains cannot starve the rest of the process. *)
let backoff spins =
  if spins < 64 then Domain.cpu_relax () else Unix.sleepf 0.0002

let produce t ?on_block ~policy ~fill () =
  if Atomic.get t.closed then
    invalid_arg "Spsc_ring.produce: ring already closed";
  let publish tail =
    let batch = t.slots.(tail mod t.capacity) in
    Arrival_batch.clear batch;
    fill batch;
    (* The atomic store publishes the batch contents to the consumer. *)
    Atomic.set t.tail (tail + 1);
    let occ = tail + 1 - Atomic.get t.head in
    if occ > t.max_occupancy then t.max_occupancy <- occ;
    Pushed
  in
  (* [blocked_since]: wall instant the producer first found the ring full
     under [`Block], so the total stall is reported once on unblocking. *)
  let rec wait_for_space spins blocked_since =
    let settle result =
      (match (blocked_since, on_block) with
      | Some t0, Some f -> f (Unix.gettimeofday () -. t0)
      | _ -> ());
      result
    in
    if Atomic.get t.aborted then settle Aborted
    else
      let tail = Atomic.get t.tail in
      if tail - Atomic.get t.head < t.capacity then settle (publish tail)
      else
        match policy with
        | `Block ->
          let blocked_since =
            match blocked_since with
            | Some _ as s -> s
            | None ->
              if on_block = None then None else Some (Unix.gettimeofday ())
          in
          backoff spins;
          wait_for_space (spins + 1) blocked_since
        | `Shed ->
          (* The workload still advances: fill a private batch, count it,
             drop it.  Loss is accounted, never silent. *)
          Arrival_batch.clear t.scratch;
          fill t.scratch;
          Atomic.incr t.shed_slots;
          Atomic.set t.shed_packets
            (Atomic.get t.shed_packets + Arrival_batch.length t.scratch);
          Shed
  in
  wait_for_space 0 None

let close t = Atomic.set t.closed true
let abort t = Atomic.set t.aborted true

type pop_result = Consumed | Drained | Stopped

let consume t ~stop ~f =
  let rec wait spins =
    let head = Atomic.get t.head in
    if Atomic.get t.tail > head then begin
      let batch = t.slots.(head mod t.capacity) in
      f batch;
      (* The atomic store returns the slot to the producer for reuse. *)
      Atomic.set t.head (head + 1);
      Consumed
    end
    else if Atomic.get t.closed && Atomic.get t.tail = head then Drained
    else if stop () then Stopped
    else begin
      backoff spins;
      wait (spins + 1)
    end
  in
  wait 0
