open Smbm_prelude
open Smbm_core

(* The reference has no per-port structure, so its recorder hook speaks the
   bag's language: push-out victims are bag keys (residual work / value) and
   transmissions are per-slot [Transmit_bulk] events with dest = -1.  That is
   enough for Smbm_forensics to reconstruct and certify every aggregate
   counter, and for trace diffs against a policy trace of the same arrival
   instance. *)
let make_recorder ~name recorder =
  match recorder with
  | None -> ((fun (_ : Smbm_obs.Event.kind) -> ()), fun () -> ())
  | Some r ->
    let slot = ref 0 in
    ( (fun kind -> Smbm_obs.Recorder.record r ~slot:!slot ~who:name kind),
      fun () -> incr slot )

let proc_instance ?(name = "OPT") ?cores ?recorder config =
  let cores =
    match cores with
    | Some c -> c
    | None -> Proc_config.n config * config.Proc_config.speedup
  in
  if cores < 1 then invalid_arg "Opt_ref.proc_instance: cores must be >= 1";
  let buffer = config.Proc_config.buffer in
  let bag = Count_multiset.create ~k:(Proc_config.k config) in
  let metrics = Metrics.create () in
  let record, advance_slot = make_recorder ~name recorder in
  (* guard event construction: untraced runs must not allocate per arrival *)
  let recording = Option.is_some recorder in
  let arrive_dv ~dest ~value:_ =
    Metrics.record_arrival metrics;
    if recording then record (Smbm_obs.Event.Arrival { dest });
    let work = Proc_config.work config dest in
    if Count_multiset.size bag < buffer then begin
      Count_multiset.add bag work;
      Metrics.record_accept metrics;
      if recording then record (Smbm_obs.Event.Accept { dest })
    end
    else begin
      match Count_multiset.max_key bag with
      | Some worst when worst > work ->
        Count_multiset.remove bag worst;
        Count_multiset.add bag work;
        Metrics.record_push_out metrics;
        record
          (Smbm_obs.Event.Push_out { victim = worst; dest; lost = 1 });
        Metrics.record_accept metrics;
        if recording then record (Smbm_obs.Event.Accept { dest })
      | Some _ | None ->
        Metrics.record_drop metrics;
        if recording then record (Smbm_obs.Event.Drop { dest; value = 1 })
    end
  in
  let arrive (a : Arrival.t) = arrive_dv ~dest:a.dest ~value:a.value in
  let transmit () =
    (* SRPT with the full per-slot cycle budget: cycles may stack on one
       packet within a slot, so the reference dominates real queues at any
       speedup (a queue can burn C cycles into successive packets). *)
    let sent = Count_multiset.serve_srpt bag ~budget:cores in
    Metrics.record_transmissions metrics ~count:sent ~value:sent;
    if sent > 0 then
      if recording then
        record
          (Smbm_obs.Event.Transmit_bulk { dest = -1; count = sent; value = sent })
  in
  let end_slot () =
    let occupancy = Count_multiset.size bag in
    Metrics.record_occupancy metrics occupancy;
    if recording then record (Smbm_obs.Event.Slot_end { occupancy });
    advance_slot ()
  in
  let flush () =
    let count = Count_multiset.size bag in
    Metrics.record_flush metrics count;
    if recording then record (Smbm_obs.Event.Flush { count });
    Count_multiset.clear bag;
    Metrics.check_conservation metrics
  in
  let check () =
    Metrics.check_conservation metrics;
    if Metrics.in_buffer metrics <> Count_multiset.size bag then
      invalid_arg (name ^ ": metrics out of sync with buffer");
    if Count_multiset.size bag > buffer then
      invalid_arg (name ^ ": buffer overflow")
  in
  {
    Instance.name;
    arrive;
    arrive_dv;
    arrive_batch = None;
    transmit;
    end_slot;
    flush;
    occupancy = (fun () -> Count_multiset.size bag);
    metrics;
    ports = None;
    check;
  }

let value_instance ?(name = "OPT") ?cores ?recorder config =
  let cores =
    match cores with
    | Some c -> c
    | None -> Value_config.n config * config.Value_config.speedup
  in
  if cores < 1 then invalid_arg "Opt_ref.value_instance: cores must be >= 1";
  let buffer = config.Value_config.buffer in
  let bag = Count_multiset.create ~k:(Value_config.k config) in
  let metrics = Metrics.create () in
  let record, advance_slot = make_recorder ~name recorder in
  (* guard event construction: untraced runs must not allocate per arrival *)
  let recording = Option.is_some recorder in
  let arrive_dv ~dest ~value =
    Metrics.record_arrival metrics;
    if recording then record (Smbm_obs.Event.Arrival { dest });
    if Count_multiset.size bag < buffer then begin
      Count_multiset.add bag value;
      Metrics.record_accept metrics;
      if recording then record (Smbm_obs.Event.Accept { dest })
    end
    else begin
      match Count_multiset.min_key bag with
      | Some worst when worst < value ->
        Count_multiset.remove bag worst;
        Count_multiset.add bag value;
        Metrics.record_push_out metrics;
        record
          (Smbm_obs.Event.Push_out { victim = worst; dest; lost = worst });
        Metrics.record_accept metrics;
        if recording then record (Smbm_obs.Event.Accept { dest })
      | Some _ | None ->
        Metrics.record_drop metrics;
        if recording then record (Smbm_obs.Event.Drop { dest; value })
    end
  in
  let arrive (a : Arrival.t) = arrive_dv ~dest:a.dest ~value:a.value in
  let transmit () =
    let count = min cores (Count_multiset.size bag) in
    let value = Count_multiset.remove_largest bag ~budget:cores in
    Metrics.record_transmissions metrics ~count ~value;
    if count > 0 then
      if recording then record (Smbm_obs.Event.Transmit_bulk { dest = -1; count; value })
  in
  let end_slot () =
    let occupancy = Count_multiset.size bag in
    Metrics.record_occupancy metrics occupancy;
    if recording then record (Smbm_obs.Event.Slot_end { occupancy });
    advance_slot ()
  in
  let flush () =
    let count = Count_multiset.size bag in
    Metrics.record_flush metrics count;
    if recording then record (Smbm_obs.Event.Flush { count });
    Count_multiset.clear bag;
    Metrics.check_conservation metrics
  in
  let check () =
    Metrics.check_conservation metrics;
    if Metrics.in_buffer metrics <> Count_multiset.size bag then
      invalid_arg (name ^ ": metrics out of sync with buffer");
    if Count_multiset.size bag > buffer then
      invalid_arg (name ^ ": buffer overflow")
  in
  {
    Instance.name;
    arrive;
    arrive_dv;
    arrive_batch = None;
    transmit;
    end_slot;
    flush;
    occupancy = (fun () -> Count_multiset.size bag);
    metrics;
    ports = None;
    check;
  }
