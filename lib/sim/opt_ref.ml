open Smbm_prelude
open Smbm_core

let proc_instance ?(name = "OPT") ?cores config =
  let cores =
    match cores with
    | Some c -> c
    | None -> Proc_config.n config * config.Proc_config.speedup
  in
  if cores < 1 then invalid_arg "Opt_ref.proc_instance: cores must be >= 1";
  let buffer = config.Proc_config.buffer in
  let bag = Count_multiset.create ~k:(Proc_config.k config) in
  let metrics = Metrics.create () in
  let arrive (a : Arrival.t) =
    Metrics.record_arrival metrics;
    let work = Proc_config.work config a.dest in
    if Count_multiset.size bag < buffer then begin
      Count_multiset.add bag work;
      Metrics.record_accept metrics
    end
    else begin
      match Count_multiset.max_key bag with
      | Some worst when worst > work ->
        Count_multiset.remove bag worst;
        Count_multiset.add bag work;
        Metrics.record_push_out metrics;
        Metrics.record_accept metrics
      | Some _ | None -> Metrics.record_drop metrics
    end
  in
  let transmit () =
    (* SRPT with the full per-slot cycle budget: cycles may stack on one
       packet within a slot, so the reference dominates real queues at any
       speedup (a queue can burn C cycles into successive packets). *)
    let sent = Count_multiset.serve_srpt bag ~budget:cores in
    Metrics.record_transmissions metrics ~count:sent ~value:sent
  in
  let end_slot () = Metrics.record_occupancy metrics (Count_multiset.size bag) in
  let flush () =
    Metrics.record_flush metrics (Count_multiset.size bag);
    Count_multiset.clear bag;
    Metrics.check_conservation metrics
  in
  let check () =
    Metrics.check_conservation metrics;
    if Metrics.in_buffer metrics <> Count_multiset.size bag then
      invalid_arg (name ^ ": metrics out of sync with buffer");
    if Count_multiset.size bag > buffer then
      invalid_arg (name ^ ": buffer overflow")
  in
  {
    Instance.name;
    arrive;
    transmit;
    end_slot;
    flush;
    occupancy = (fun () -> Count_multiset.size bag);
    metrics;
    ports = None;
    check;
  }

let value_instance ?(name = "OPT") ?cores config =
  let cores =
    match cores with
    | Some c -> c
    | None -> Value_config.n config * config.Value_config.speedup
  in
  if cores < 1 then invalid_arg "Opt_ref.value_instance: cores must be >= 1";
  let buffer = config.Value_config.buffer in
  let bag = Count_multiset.create ~k:(Value_config.k config) in
  let metrics = Metrics.create () in
  let arrive (a : Arrival.t) =
    Metrics.record_arrival metrics;
    if Count_multiset.size bag < buffer then begin
      Count_multiset.add bag a.value;
      Metrics.record_accept metrics
    end
    else begin
      match Count_multiset.min_key bag with
      | Some worst when worst < a.value ->
        Count_multiset.remove bag worst;
        Count_multiset.add bag a.value;
        Metrics.record_push_out metrics;
        Metrics.record_accept metrics
      | Some _ | None -> Metrics.record_drop metrics
    end
  in
  let transmit () =
    let count = min cores (Count_multiset.size bag) in
    let value = Count_multiset.remove_largest bag ~budget:cores in
    Metrics.record_transmissions metrics ~count ~value
  in
  let end_slot () = Metrics.record_occupancy metrics (Count_multiset.size bag) in
  let flush () =
    Metrics.record_flush metrics (Count_multiset.size bag);
    Count_multiset.clear bag;
    Metrics.check_conservation metrics
  in
  let check () =
    Metrics.check_conservation metrics;
    if Metrics.in_buffer metrics <> Count_multiset.size bag then
      invalid_arg (name ^ ": metrics out of sync with buffer");
    if Count_multiset.size bag > buffer then
      invalid_arg (name ^ ": buffer overflow")
  in
  {
    Instance.name;
    arrive;
    transmit;
    end_slot;
    flush;
    occupancy = (fun () -> Count_multiset.size bag);
    metrics;
    ports = None;
    check;
  }
