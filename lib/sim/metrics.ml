open Smbm_prelude
module Registry = Smbm_obs.Registry

type t = {
  registry : Registry.t;
  arrivals : Registry.counter;
  accepted : Registry.counter;
  dropped : Registry.counter;
  pushed_out : Registry.counter;
  transmitted : Registry.counter;
  transmitted_value : Registry.counter;
  flushed : Registry.counter;
  latency : Registry.histogram;
  occupancy : Registry.histogram;
}

let create ?(latency_cap = 1e7) () =
  let registry = Registry.create () in
  {
    registry;
    arrivals = Registry.counter registry "arrivals";
    accepted = Registry.counter registry "accepted";
    dropped = Registry.counter registry "dropped";
    pushed_out = Registry.counter registry "pushed_out";
    transmitted = Registry.counter registry "transmitted";
    transmitted_value = Registry.counter registry "transmitted_value";
    flushed = Registry.counter registry "flushed";
    latency = Registry.histogram registry ~max_value:latency_cap "latency";
    occupancy = Registry.histogram registry "occupancy";
  }

let registry t = t.registry
let clear t = Registry.clear t.registry

let record_arrival t = Registry.incr t.arrivals
let record_accept t = Registry.incr t.accepted
let record_drop t = Registry.incr t.dropped
let record_push_out t = Registry.incr t.pushed_out

let record_transmit t ~value ~latency =
  Registry.incr t.transmitted;
  Registry.add t.transmitted_value value;
  Registry.observe t.latency latency

let record_transmissions t ~count ~value =
  Registry.add t.transmitted count;
  Registry.add t.transmitted_value value

let record_admissions t ~arrivals ~accepted ~pushed_out ~dropped =
  Registry.add t.arrivals arrivals;
  Registry.add t.accepted accepted;
  Registry.add t.pushed_out pushed_out;
  Registry.add t.dropped dropped

let record_flush t n = Registry.add t.flushed n
let record_occupancy t occ = Registry.observe t.occupancy (float_of_int occ)

let arrivals t = Registry.counter_value t.arrivals
let accepted t = Registry.counter_value t.accepted
let dropped t = Registry.counter_value t.dropped
let pushed_out t = Registry.counter_value t.pushed_out
let transmitted t = Registry.counter_value t.transmitted
let transmitted_value t = Registry.counter_value t.transmitted_value
let flushed t = Registry.counter_value t.flushed
let latency_stats t = Registry.histogram_stats t.latency
let latency_hist t = Registry.histogram_values t.latency
let occupancy_stats t = Registry.histogram_stats t.occupancy

let in_buffer t = accepted t - transmitted t - pushed_out t - flushed t

let check_conservation t =
  if arrivals t <> accepted t + dropped t then
    invalid_arg "Metrics: arrivals <> accepted + dropped";
  if in_buffer t < 0 then
    invalid_arg "Metrics: negative in-buffer population"

let throughput_of objective t =
  match objective with
  | `Packets -> transmitted t
  | `Value -> transmitted_value t

let to_jsonl ?labels t = Registry.to_jsonl ?labels t.registry

let pp ppf t =
  Format.fprintf ppf
    "arrivals=%d accepted=%d dropped=%d pushed_out=%d transmitted=%d \
     value=%d flushed=%d buffered=%d"
    (arrivals t) (accepted t) (dropped t) (pushed_out t) (transmitted t)
    (transmitted_value t) (flushed t) (in_buffer t);
  let hist = latency_hist t in
  if Histogram.count hist > 0 then
    Format.fprintf ppf " latency[p50=%.1f p95=%.1f p99=%.1f]"
      (Histogram.quantile hist 0.5)
      (Histogram.quantile hist 0.95)
      (Histogram.quantile hist 0.99)
