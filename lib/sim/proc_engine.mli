(** Drives a {!Smbm_core.Proc_policy} over a {!Smbm_core.Proc_switch} as a
    steppable {!Instance}.

    The engine enforces decision legality: [Accept] requires free space (the
    switch checks), [Push_out] is only legal when the buffer is full (and the
    switch checks the victim queue is non-empty).  An illegal decision raises
    [Invalid_argument] — a policy bug fails fast instead of skewing an
    experiment.

    Metrics conservation is checked at every flushout, so a policy that
    double-counts fails during the run, not at the final report. *)

open Smbm_core

val create :
  ?name:string ->
  ?observe:(Packet.Proc.t -> unit) ->
  ?recorder:Smbm_obs.Recorder.t ->
  ?flight:Smbm_obs.Flight.t ->
  Proc_config.t ->
  Proc_policy.t ->
  Instance.t * Proc_switch.t
(** Fresh instance plus its underlying switch (exposed for inspection in
    tests and examples).  [name] defaults to the policy's name; [observe] is
    called on every transmitted packet (per-port tallies, latency
    histograms, ...).  [recorder] receives every per-slot event (arrival,
    accept, push-out, drop, transmit, slot-end) with this instance's name
    as [who]; [flight] receives the same events into its allocation-free
    ring (the instance name is interned once at creation).  Neither form of
    recording changes any decision or counter. *)

val instance :
  ?name:string ->
  ?observe:(Packet.Proc.t -> unit) ->
  ?recorder:Smbm_obs.Recorder.t ->
  ?flight:Smbm_obs.Flight.t ->
  Proc_config.t ->
  Proc_policy.t ->
  Instance.t
(** [fst (create ...)]. *)

val create_controlled :
  ?name:string ->
  ?observe:(Packet.Proc.t -> unit) ->
  ?recorder:Smbm_obs.Recorder.t ->
  ?flight:Smbm_obs.Flight.t ->
  Proc_config.t ->
  Proc_policy.t ref ->
  Instance.t * Proc_switch.t
(** Like {!create}, but the victim policy is read through the given ref on
    {e every} admission, so the caller may swap it mid-run (the
    {!Smbm_serve} daemon does this at slot boundaries).  [name] defaults to
    the initial policy's name and does not change on swap — event [src]
    fields stay stable across reconfigurations. *)
