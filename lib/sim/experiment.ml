type t = {
  slots : int;
  flush_every : int option;
  check_every : int option;
}

let default = { slots = 200_000; flush_every = Some 10_000; check_every = None }

let run ?(params = default) ?(pipeline = `Batched) ~workload instances =
  if params.slots < 0 then invalid_arg "Experiment.run: negative slot count";
  let due every slot =
    match every with
    | Some n when n > 0 -> (slot + 1) mod n = 0
    | Some _ | None -> false
  in
  (match pipeline with
  | `Batched ->
    (* Hot path: one reusable struct-of-arrays batch per run, instances in
       an array — the slot loop allocates nothing in steady state. *)
    let insts = Array.of_list instances in
    let batch = Smbm_core.Arrival_batch.create () in
    for slot = 0 to params.slots - 1 do
      Smbm_traffic.Workload.next_into workload batch;
      for i = 0 to Array.length insts - 1 do
        Instance.step_batch (Array.unsafe_get insts i) ~batch
      done;
      if due params.flush_every slot then
        Array.iter (fun (i : Instance.t) -> i.flush ()) insts;
      if due params.check_every slot then
        Array.iter (fun (i : Instance.t) -> i.check ()) insts
    done
  | `List ->
    (* Reference pipeline: the historical per-slot list loop, kept for
       allocation/throughput comparison (bench/e2e.exe) and as a behavioural
       oracle for the batched loop. *)
    for slot = 0 to params.slots - 1 do
      let arrivals = Smbm_traffic.Workload.next workload in
      List.iter
        (fun (i : Instance.t) -> Instance.step_slot i ~arrivals)
        instances;
      if due params.flush_every slot then
        List.iter (fun (i : Instance.t) -> i.flush ()) instances;
      if due params.check_every slot then
        List.iter (fun (i : Instance.t) -> i.check ()) instances
    done);
  (* End-of-run conservation audit: every instance's counters must balance
     even when no flush or check interval was configured. *)
  List.iter
    (fun (i : Instance.t) -> Metrics.check_conservation i.metrics)
    instances

let ratio ~objective ~opt ~alg =
  let top = Metrics.throughput_of objective (opt : Instance.t).metrics in
  let bottom = Metrics.throughput_of objective (alg : Instance.t).metrics in
  if bottom = 0 then if top = 0 then 1.0 else infinity
  else float_of_int top /. float_of_int bottom

let ratios ~objective ~opt ~algs =
  List.map
    (fun (alg : Instance.t) -> (alg.name, ratio ~objective ~opt ~alg))
    algs
