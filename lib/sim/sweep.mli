(** Parameter sweeps reproducing the nine panels of the paper's Fig. 5.

    Each panel plots the empirical competitive ratio (OPT-reference
    throughput divided by policy throughput) of every policy against one
    swept parameter: the maximum work / value [k], the buffer size [B], or
    the per-queue speedup [C].  Panels 1-3 are the processing model, 4-6 the
    value model with independently uniform port and value, 7-9 the value
    model with value = port label.

    As in the paper, the number of output ports [n] equals [k]: the
    processing model uses the contiguous configuration (port [i] requires
    [i+1] cycles) and the value-per-port case assigns value [i+1] to port
    [i]. *)

type model = Proc | Value_uniform | Value_port
type axis = K | B | C

type base = {
  k : int;
  buffer : int;
  speedup : int;
  load : float;  (** normalized offered load; see {!Smbm_traffic.Scenario} *)
  mmpp : Smbm_traffic.Scenario.mmpp_params;
  slots : int;
  flush_every : int option;
  seed : int;
}

val default_base : base
(** k = 16, B = 64, C = 1, load = 2.0, 500 MMPP sources, 50_000 slots,
    flushouts every 2_500 slots, seed 42. *)

type panel = { number : int; model : model; axis : axis; xs : int list }

val panel : int -> panel
(** Panel definition for numbers 1-9 with the default sweep values.
    @raise Invalid_argument outside 1-9. *)

type point = { x : int; ratios : (string * float) list }
(** Policy name -> empirical competitive ratio at one sweep value. *)

type outcome = { panel : panel; points : point list }

val policy_names : model -> base -> string list
(** The series (policy names) a panel of this model produces, in order. *)

val setup :
  ?reference:base ->
  ?recorder:Smbm_obs.Recorder.t ->
  model ->
  base ->
  Smbm_traffic.Workload.t * Instance.t list
(** The workload and instance list (OPT reference first, then every policy)
    of one point: [base] holds the point's effective parameters, [reference]
    (default [base]) the sweep's base the traffic intensity derives from.
    Exposed for benchmarks ({e bench/e2e.exe} times
    {!Experiment.run} over exactly these instances) and custom drivers;
    {!run_point} is this plus the run and the ratio extraction. *)

val trace_key : base:base -> model:model -> axis:axis -> x:int -> string
(** Cache key of the point's traffic: a deterministic rendering of exactly
    the parameters the generator consumes — model, slots, seed, load, MMPP
    shape, the reference [(k, speedup)] the intensity is derived from, and
    the effective [k] (labelling).  The swept [buffer]/[speedup] do not feed
    the generator, so every point of a B or C axis maps to the same key and
    may share one materialized trace; K-axis points all differ. *)

val materialize_trace :
  base:base ->
  model:model ->
  axis:axis ->
  x:int ->
  Smbm_traffic.Trace.Compact.t
(** Generate the point's full traffic once into a compact trace (flat
    arrays), consuming the workload exactly as a live run would — replaying
    it through {!run_point}'s [?trace] is bit-identical to live generation. *)

val default_max_cached_arrivals : int
(** Default budget (4M arrivals, ~100 MB of trace) above which panel runs
    fall back to live generation instead of materializing. *)

val trace_worth_caching :
  ?max_arrivals:int ->
  base:base ->
  model:model ->
  axis:axis ->
  x:int ->
  unit ->
  bool
(** Whether the point's estimated arrival count (mean workload rate times
    slots) fits the materialization budget.  [max_arrivals <= 0] disables
    caching outright. *)

val run_point :
  ?recorder:Smbm_obs.Recorder.t ->
  ?spans:Smbm_obs.Span.t ->
  ?trace:Smbm_traffic.Trace.Compact.t ->
  base:base ->
  model:model ->
  axis:axis ->
  x:int ->
  unit ->
  (string * float) list
(** One sweep point: build configuration and workload, run all policies plus
    the OPT reference in lockstep, return ratios.  The workload intensity is
    derived from [base] (not the swept value), so traffic stays constant
    along an axis, as in the paper.

    [trace] replays a pre-materialized traffic stream (see
    {!materialize_trace}) instead of generating live — the caller is
    responsible for the trace matching the point's {!trace_key}.
    @raise Invalid_argument if the trace covers fewer slots than the run.

    [recorder] is handed to every policy instance (OPT is a bag reference
    with no per-packet identity and stays untraced); [spans] gets one
    [point/x=<x>] span covering the run. *)

type detail = {
  ratio : float;
  jain : float;  (** Jain fairness index over per-port transmissions *)
  starved : int;  (** ports that transmitted nothing *)
  mean_latency : float;
  p99_latency : float;
  drop_rate : float;  (** dropped / arrivals *)
}

val run_point_detailed :
  base:base -> model:model -> axis:axis -> x:int -> (string * detail) list
(** Like {!run_point} but also reporting fairness, latency and loss — the
    dimensions the paper's introduction motivates (complete sharing can
    hamper fairness; starvation of expensive traffic). *)

type replicated = {
  mean : float;
  stddev : float;
  runs : int;
  dropped_non_finite : int;
      (** replicates whose ratio was NaN or infinite and therefore excluded
          from [mean]/[stddev]; [runs + dropped_non_finite] = seeds that
          produced this series.  Previously such drops were silent. *)
}

val aggregate_replicates :
  (string * float) list list -> (string * replicated) list
(** Per-policy mean and sample standard deviation over per-seed ratio lists.
    Non-finite ratios are excluded from the statistics and surfaced in
    [dropped_non_finite] rather than silently discarded.  The series and
    their order come from the first list.  Exposed so that parallel runners
    ({!Smbm_par.Par_sweep}) aggregate replicate results with the exact same
    arithmetic as {!run_point_replicated}. *)

val run_point_replicated :
  base:base ->
  model:model ->
  axis:axis ->
  x:int ->
  seeds:int list ->
  (string * replicated) list
(** {!run_point} repeated over independent seeds, with per-policy mean and
    sample standard deviation of the ratio. *)

val run_panel :
  ?base:base ->
  ?recorder:Smbm_obs.Recorder.t ->
  ?spans:Smbm_obs.Span.t ->
  ?xs:int list ->
  ?max_cached_arrivals:int ->
  int ->
  outcome
(** Run panel [number] (1-9), overriding the sweep values with [xs] when
    given.  [recorder]/[spans] as in {!run_point}, plus one [panel/<n>]
    span over the whole panel.

    Points sharing a {!trace_key} (every B- or C-axis panel) materialize
    their traffic once and replay it — a 7-point B panel generates once
    instead of seven times, with bit-identical results.
    [max_cached_arrivals] bounds the materialization (default
    {!default_max_cached_arrivals}; [0] disables the cache). *)

val objective : model -> [ `Packets | `Value ]
