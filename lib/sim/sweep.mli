(** Parameter sweeps reproducing the nine panels of the paper's Fig. 5.

    Each panel plots the empirical competitive ratio (OPT-reference
    throughput divided by policy throughput) of every policy against one
    swept parameter: the maximum work / value [k], the buffer size [B], or
    the per-queue speedup [C].  Panels 1-3 are the processing model, 4-6 the
    value model with independently uniform port and value, 7-9 the value
    model with value = port label.

    As in the paper, the number of output ports [n] equals [k]: the
    processing model uses the contiguous configuration (port [i] requires
    [i+1] cycles) and the value-per-port case assigns value [i+1] to port
    [i]. *)

type model = Proc | Value_uniform | Value_port
type axis = K | B | C

type base = {
  k : int;
  buffer : int;
  speedup : int;
  load : float;  (** normalized offered load; see {!Smbm_traffic.Scenario} *)
  mmpp : Smbm_traffic.Scenario.mmpp_params;
  slots : int;
  flush_every : int option;
  seed : int;
}

val default_base : base
(** k = 16, B = 64, C = 1, load = 2.0, 500 MMPP sources, 50_000 slots,
    flushouts every 2_500 slots, seed 42. *)

type panel = { number : int; model : model; axis : axis; xs : int list }

val panel : int -> panel
(** Panel definition for numbers 1-9 with the default sweep values.
    @raise Invalid_argument outside 1-9. *)

type point = { x : int; ratios : (string * float) list }
(** Policy name -> empirical competitive ratio at one sweep value. *)

type outcome = { panel : panel; points : point list }

val policy_names : model -> base -> string list
(** The series (policy names) a panel of this model produces, in order. *)

val run_point :
  ?recorder:Smbm_obs.Recorder.t ->
  ?spans:Smbm_obs.Span.t ->
  base:base ->
  model:model ->
  axis:axis ->
  x:int ->
  unit ->
  (string * float) list
(** One sweep point: build configuration and workload, run all policies plus
    the OPT reference in lockstep, return ratios.  The workload intensity is
    derived from [base] (not the swept value), so traffic stays constant
    along an axis, as in the paper.

    [recorder] is handed to every policy instance (OPT is a bag reference
    with no per-packet identity and stays untraced); [spans] gets one
    [point/x=<x>] span covering the run. *)

type detail = {
  ratio : float;
  jain : float;  (** Jain fairness index over per-port transmissions *)
  starved : int;  (** ports that transmitted nothing *)
  mean_latency : float;
  p99_latency : float;
  drop_rate : float;  (** dropped / arrivals *)
}

val run_point_detailed :
  base:base -> model:model -> axis:axis -> x:int -> (string * detail) list
(** Like {!run_point} but also reporting fairness, latency and loss — the
    dimensions the paper's introduction motivates (complete sharing can
    hamper fairness; starvation of expensive traffic). *)

type replicated = { mean : float; stddev : float; runs : int }

val aggregate_replicates :
  (string * float) list list -> (string * replicated) list
(** Per-policy mean and sample standard deviation over per-seed ratio lists
    (non-finite ratios are skipped).  The series and their order come from
    the first list.  Exposed so that parallel runners ({!Smbm_par.Par_sweep})
    aggregate replicate results with the exact same arithmetic as
    {!run_point_replicated}. *)

val run_point_replicated :
  base:base ->
  model:model ->
  axis:axis ->
  x:int ->
  seeds:int list ->
  (string * replicated) list
(** {!run_point} repeated over independent seeds, with per-policy mean and
    sample standard deviation of the ratio. *)

val run_panel :
  ?base:base ->
  ?recorder:Smbm_obs.Recorder.t ->
  ?spans:Smbm_obs.Span.t ->
  ?xs:int list ->
  int ->
  outcome
(** Run panel [number] (1-9), overriding the sweep values with [xs] when
    given.  [recorder]/[spans] as in {!run_point}, plus one [panel/<n>]
    span over the whole panel. *)

val objective : model -> [ `Packets | `Value ]
