open Smbm_core

let create_controlled ?name ?observe ?recorder ?flight config
    (policy_ref : Value_policy.t ref) =
  let name = Option.value name ~default:!policy_ref.name in
  (* The policy carries the backend choice (set by [make ~impl], defaulted
     from SMBM_BACKEND by the Policies registry), so every caller of the
     engines picks up the flat representation with zero call-site
     changes. *)
  let sw = Value_switch.create ~backend:!policy_ref.backend config in
  let metrics = Metrics.create () in
  let ports = Port_stats.create ~n:(Value_config.n config) in
  let record =
    match recorder with
    | None -> fun (_ : Smbm_obs.Event.kind) -> ()
    | Some r ->
      fun kind ->
        Smbm_obs.Recorder.record r ~slot:(Value_switch.now sw) ~who:name kind
  in
  (* Events are records: guard construction, not just delivery — an
     untraced run must not allocate an event per arrival. *)
  let recording = Option.is_some recorder in
  (* The flight ring takes only immediate ints (source interned once
     here), so leaving it on costs column writes, not allocation. *)
  let fsrc =
    match flight with Some f -> Smbm_obs.Flight.intern f name | None -> 0
  in
  let arrive_dv ~dest ~value =
    Metrics.record_arrival metrics;
    if recording then record (Smbm_obs.Event.Arrival { dest });
    (match flight with
    | None -> ()
    | Some f ->
      Smbm_obs.Flight.arrival f ~slot:(Value_switch.now sw) ~src:fsrc ~dest);
    match Value_policy.admit !policy_ref sw ~dest ~value with
    | Decision.Accept ->
      Value_switch.accept_unit sw ~dest ~value;
      Metrics.record_accept metrics;
      if recording then record (Smbm_obs.Event.Accept { dest });
      (match flight with
      | None -> ()
      | Some f ->
        Smbm_obs.Flight.accept f ~slot:(Value_switch.now sw) ~src:fsrc ~dest)
    | Decision.Push_out { victim } ->
      if not (Value_switch.is_full sw) then
        invalid_arg
          (name ^ ": push-out decision while the buffer has free space");
      let lost = Value_switch.push_out_lost sw ~victim in
      Metrics.record_push_out metrics;
      if recording then
        record (Smbm_obs.Event.Push_out { victim; dest; lost });
      (match flight with
      | None -> ()
      | Some f ->
        Smbm_obs.Flight.push_out f ~slot:(Value_switch.now sw) ~src:fsrc
          ~victim ~dest ~lost);
      Value_switch.accept_unit sw ~dest ~value;
      Metrics.record_accept metrics;
      if recording then record (Smbm_obs.Event.Accept { dest });
      (match flight with
      | None -> ()
      | Some f ->
        Smbm_obs.Flight.accept f ~slot:(Value_switch.now sw) ~src:fsrc ~dest)
    | Decision.Drop ->
      Metrics.record_drop metrics;
      if recording then record (Smbm_obs.Event.Drop { dest; value });
      (match flight with
      | None -> ()
      | Some f ->
        Smbm_obs.Flight.drop f ~slot:(Value_switch.now sw) ~src:fsrc ~dest
          ~value)
  in
  let arrive (a : Arrival.t) = arrive_dv ~dest:a.dest ~value:a.value in
  (* Fused arrival phase; see Proc_engine for the gating rationale. *)
  let arrive_batch =
    if recording || Option.is_some flight then None
    else begin
      let counters = Admission.counters () in
      Some
        (fun batch ->
          match Value_policy.admit_batch !policy_ref with
          | None -> Arrival_batch.iter batch ~f:arrive_dv
          | Some kernel ->
            Admission.reset counters;
            kernel sw batch counters;
            Metrics.record_admissions metrics
              ~arrivals:(Arrival_batch.length batch)
              ~accepted:counters.Admission.accepted
              ~pushed_out:counters.Admission.pushed_out
              ~dropped:counters.Admission.dropped)
    end
  in
  let transmit =
    match observe with
    | None ->
      (* Fields-based transmission: no packet record per transmit, which is
         what keeps the flat backend's hot path allocation-free. *)
      let on_transmit ~dest ~value ~arrival =
        let latency = Value_switch.now sw - arrival in
        Metrics.record_transmit metrics ~value
          ~latency:(float_of_int latency);
        Port_stats.record ports ~port:dest ~value;
        if recording then
          record (Smbm_obs.Event.Transmit { dest; value; latency });
        match flight with
        | None -> ()
        | Some f ->
          Smbm_obs.Flight.transmit f ~slot:(Value_switch.now sw) ~src:fsrc
            ~dest ~value ~latency
      in
      fun () -> ignore (Value_switch.transmit_phase_fields sw ~on_transmit)
    | Some observe ->
      (* An observer wants the packets; take the materializing path (on the
         flat backend each is a per-transmit snapshot record). *)
      let on_transmit (p : Packet.Value.t) =
        let latency = Value_switch.now sw - p.arrival in
        Metrics.record_transmit metrics ~value:p.value
          ~latency:(float_of_int latency);
        Port_stats.record ports ~port:p.dest ~value:p.value;
        if recording then
          record
            (Smbm_obs.Event.Transmit { dest = p.dest; value = p.value; latency });
        (match flight with
        | None -> ()
        | Some f ->
          Smbm_obs.Flight.transmit f ~slot:(Value_switch.now sw) ~src:fsrc
            ~dest:p.dest ~value:p.value ~latency);
        observe p
      in
      fun () -> ignore (Value_switch.transmit_phase sw ~on_transmit)
  in
  let end_slot () =
    let occupancy = Value_switch.occupancy sw in
    Metrics.record_occupancy metrics occupancy;
    if recording then record (Smbm_obs.Event.Slot_end { occupancy });
    (match flight with
    | None -> ()
    | Some f ->
      Smbm_obs.Flight.slot_end f ~slot:(Value_switch.now sw) ~src:fsrc
        ~occupancy);
    Value_switch.advance_slot sw
  in
  let flush () =
    let count = Value_switch.flush sw in
    Metrics.record_flush metrics count;
    if recording then record (Smbm_obs.Event.Flush { count });
    (match flight with
    | None -> ()
    | Some f ->
      Smbm_obs.Flight.flush f ~slot:(Value_switch.now sw) ~src:fsrc ~count);
    Metrics.check_conservation metrics
  in
  let check () =
    Value_switch.check_invariants sw;
    Metrics.check_conservation metrics;
    if Metrics.in_buffer metrics <> Value_switch.occupancy sw then
      invalid_arg (name ^ ": metrics in-buffer count out of sync with switch")
  in
  let inst : Instance.t =
    {
      name;
      arrive;
      arrive_dv;
      arrive_batch;
      transmit;
      end_slot;
      flush;
      occupancy = (fun () -> Value_switch.occupancy sw);
      metrics;
      ports = Some ports;
      check;
    }
  in
  (inst, sw)

let create ?name ?observe ?recorder ?flight config (policy : Value_policy.t) =
  create_controlled ?name ?observe ?recorder ?flight config (ref policy)

let instance ?name ?observe ?recorder ?flight config policy =
  fst (create ?name ?observe ?recorder ?flight config policy)
