(** Exact offline optimum for tiny instances, by exhaustive search.

    Since an offline optimum never needs to push out (any eviction can be
    replaced by not accepting the evicted packet), the search branches only
    on accept/drop per arriving packet; transmission is deterministic.
    Memoization is on (time position, buffer state), which stays small for
    toy parameters (B up to ~6, a handful of slots).

    Purpose: ground truth.  Tests use it to certify per trace that
    [policy <= exact <= single-PQ reference], and to check LWD's
    2-competitive guarantee (Theorem 7) against the *true* optimum rather
    than the relaxed reference. *)

open Smbm_core

val proc :
  ?recorder:Smbm_obs.Recorder.t ->
  ?name:string ->
  Proc_config.t ->
  Arrival.t list array ->
  drain:int ->
  int
(** Maximum number of packets any (offline, clairvoyant) algorithm can
    transmit when the given arrivals are followed by [drain] empty slots.
    Intended for tiny instances; cost is exponential in the number of
    arrivals before memoization.

    When [recorder] is given, the argmax path is replayed through the memo
    table and emitted as an event trace under source [name] (default
    ["EXACT"]): [Arrival]/[Accept]/[Drop] per arrival, per-port
    [Transmit_bulk] and [Slot_end] per slot.  The optimum never pushes out,
    so the trace contains no [Push_out] events.  Ties between accepting and
    skipping resolve to skip, matching the scored recursion.  Zero cost when
    absent. *)

val value :
  ?recorder:Smbm_obs.Recorder.t ->
  ?name:string ->
  Value_config.t ->
  Arrival.t list array ->
  drain:int ->
  int
(** Maximum total transmitted value, same conventions (including the
    [recorder] trace semantics of {!proc}). *)

val proc_compact :
  ?recorder:Smbm_obs.Recorder.t ->
  ?name:string ->
  Proc_config.t ->
  Smbm_traffic.Trace.Compact.t ->
  drain:int ->
  int
(** {!proc} on a {!Smbm_traffic.Trace.Compact} trace (e.g. one shared by
    the sweep trace cache), expanded once to per-slot lists before the
    search. *)

val value_compact :
  ?recorder:Smbm_obs.Recorder.t ->
  ?name:string ->
  Value_config.t ->
  Smbm_traffic.Trace.Compact.t ->
  drain:int ->
  int
(** {!value} on a compact trace, same conventions. *)
