(** The paper's stand-in for the optimal clairvoyant algorithm (Section V-A).

    "Since it is computationally prohibitive to compute the true optimal
    policy, we used a single priority queue that first processes the
    smallest packets (resp., packets with largest value) and has kC cores."

    Both variants hold the whole buffer as one priority queue over a bounded
    key universe and receive [cores] processing cycles per slot.  The
    processing variant spends them SRPT-style, shortest-remaining-first and
    run-to-completion (cycles may stack on one packet within a slot, as a
    real queue's speedup allows); the value variant transmits the [cores]
    most valuable unit-work packets.  Admission is greedy push-out: when
    full, the worst packet (largest residual work / smallest value) is
    evicted in favour of a better arrival.  This relaxes the real switch
    (no per-port FIFO constraint, cycles freely distributable), so its
    throughput upper-bounds OPT's; measured "competitive ratios" are
    therefore upper bounds, exactly as in the paper's figures. *)

open Smbm_core

val proc_instance :
  ?name:string ->
  ?cores:int ->
  ?recorder:Smbm_obs.Recorder.t ->
  Proc_config.t ->
  Instance.t
(** Processing model: smallest-residual-first.  [cores] defaults to
    [n * speedup] ("kC cores" in the paper's contiguous configuration).

    [recorder], when given, traces the reference's admission decisions and
    per-slot aggregates so {!Smbm_forensics.Diff} can align a policy trace
    against the reference on the same arrival instance.  The reference has
    no ports, so push-out victims are recorded as bag keys and transmissions
    as per-slot [Transmit_bulk] events (dest = -1); recording costs nothing
    when absent and never changes a decision. *)

val value_instance :
  ?name:string ->
  ?cores:int ->
  ?recorder:Smbm_obs.Recorder.t ->
  Value_config.t ->
  Instance.t
(** Value model: largest-value-first, unit work.  [cores] defaults to
    [n * speedup].  [recorder] as in {!proc_instance}. *)
