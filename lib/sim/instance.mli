(** A uniform handle on one running switch (a policy over a switch model, or
    the single-priority-queue OPT reference), so that an experiment can step
    heterogeneous instances in lockstep over one arrival stream. *)

open Smbm_core

type t = {
  name : string;
  arrive : Arrival.t -> unit;  (** offer one arriving packet *)
  arrive_dv : dest:int -> value:int -> unit;
      (** same as [arrive], unpacked: the batched slot loop's entry point
          (no [Arrival.t] record needs to exist).  Engines implement this as
          the primitive and derive [arrive] from it; the two are
          behaviourally identical. *)
  arrive_batch : (Arrival_batch.t -> unit) option;
      (** whole-slot arrival phase: behaviourally identical to folding
          [arrive_dv] over the batch in order, but free to take a fused
          per-batch path (the policy's [admit_batch] kernel) when one
          exists.  Engines set it only when no per-decision observer
          (recorder, flight recorder) is attached; [None] means "no faster
          path than the per-packet fold". *)
  transmit : unit -> unit;  (** run one transmission phase *)
  end_slot : unit -> unit;  (** per-slot bookkeeping (occupancy sample, clock) *)
  flush : unit -> unit;  (** discard all buffered packets *)
  occupancy : unit -> int;
  metrics : Metrics.t;
  ports : Port_stats.t option;
      (** per-port transmission counters; [None] for references without
          per-port structure (the single-PQ OPT) *)
  check : unit -> unit;  (** assert internal invariants (test hook) *)
}

val step_slot : t -> arrivals:Arrival.t list -> unit
(** One full slot: arrival phase, transmission phase, bookkeeping. *)

val step_batch : t -> batch:Arrival_batch.t -> unit
(** {!step_slot} over a struct-of-arrays batch; offers arrivals in batch
    order through [arrive_dv].  Allocation-free. *)
