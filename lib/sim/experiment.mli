(** Lockstep execution of several switch instances over one arrival stream,
    and empirical competitive ratios against a reference instance. *)

type t = {
  slots : int;
  flush_every : int option;
      (** clear all buffers every this many slots (the paper's periodic
          flushouts); [None] disables *)
  check_every : int option;
      (** run every instance's invariant checks every this many slots;
          [None] disables (default in production runs) *)
}

val default : t
(** [slots = 200_000], flushouts every 10_000 slots, no checking. *)

val run :
  ?params:t ->
  ?pipeline:[ `Batched | `List ] ->
  workload:Smbm_traffic.Workload.t ->
  Instance.t list ->
  unit
(** Step all instances through [params.slots] slots of the workload.
    Arrivals of a slot are offered to every instance, then every instance
    runs its transmission phase; flushouts apply at the end of a slot.

    [pipeline] selects the slot-loop implementation: [`Batched] (default)
    fills one reusable {!Smbm_core.Arrival_batch.t} per slot and steps
    instances through {!Instance.step_batch} — allocation-free in steady
    state; [`List] is the historical per-slot list loop, kept as the
    reference for bench/e2e.exe.  Both consume the workload's RNG streams
    identically and produce bit-identical metrics, traces and ratios. *)

val ratio :
  objective:[ `Packets | `Value ] -> opt:Instance.t -> alg:Instance.t -> float
(** Empirical competitive ratio [opt / alg] on the chosen objective.
    Infinite when the algorithm transmitted nothing but OPT did; 1 when both
    transmitted nothing. *)

val ratios :
  objective:[ `Packets | `Value ] ->
  opt:Instance.t ->
  algs:Instance.t list ->
  (string * float) list
