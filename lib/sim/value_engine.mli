(** Drives a {!Smbm_core.Value_policy} over a {!Smbm_core.Value_switch} as a
    steppable {!Instance}.  Decision legality is enforced as in
    {!Proc_engine}. *)

open Smbm_core

val create :
  ?name:string ->
  ?observe:(Packet.Value.t -> unit) ->
  ?recorder:Smbm_obs.Recorder.t ->
  ?flight:Smbm_obs.Flight.t ->
  Value_config.t ->
  Value_policy.t ->
  Instance.t * Value_switch.t
(** [observe] is called on every transmitted packet; [recorder] and
    [flight] receive every per-slot event (see {!Proc_engine.create}). *)

val instance :
  ?name:string ->
  ?observe:(Packet.Value.t -> unit) ->
  ?recorder:Smbm_obs.Recorder.t ->
  ?flight:Smbm_obs.Flight.t ->
  Value_config.t ->
  Value_policy.t ->
  Instance.t

val create_controlled :
  ?name:string ->
  ?observe:(Packet.Value.t -> unit) ->
  ?recorder:Smbm_obs.Recorder.t ->
  ?flight:Smbm_obs.Flight.t ->
  Value_config.t ->
  Value_policy.t ref ->
  Instance.t * Value_switch.t
(** The policy is read through the ref on every admission, so it can be
    swapped mid-run; see {!Proc_engine.create_controlled}. *)
