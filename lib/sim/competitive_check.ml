type outcome = {
  slots : int;
  violations : int;
  first_violation : int option;
  max_prefix_ratio : float;
  final_policy : int;
  final_opponent : int;
}

let run ~factor ?(objective = `Packets) ~workload ~slots ?flush_every ~policy
    ~opponent () =
  if factor <= 0.0 then invalid_arg "Competitive_check.run: factor <= 0";
  let violations = ref 0 in
  let first_violation = ref None in
  let max_ratio = ref 1.0 in
  let due slot =
    match flush_every with
    | Some n when n > 0 -> (slot + 1) mod n = 0
    | Some _ | None -> false
  in
  let batch = Smbm_core.Arrival_batch.create () in
  for slot = 0 to slots - 1 do
    Smbm_traffic.Workload.next_into workload batch;
    Instance.step_batch policy ~batch;
    Instance.step_batch opponent ~batch;
    let p = Metrics.throughput_of objective (policy : Instance.t).metrics in
    let o = Metrics.throughput_of objective (opponent : Instance.t).metrics in
    let ratio =
      if p = 0 then if o = 0 then 1.0 else infinity
      else float_of_int o /. float_of_int p
    in
    if ratio > !max_ratio then max_ratio := ratio;
    if float_of_int o > factor *. float_of_int p then begin
      incr violations;
      if !first_violation = None then first_violation := Some slot
    end;
    if due slot then begin
      policy.flush ();
      opponent.flush ()
    end
  done;
  {
    slots;
    violations = !violations;
    first_violation = !first_violation;
    max_prefix_ratio = !max_ratio;
    final_policy = Metrics.throughput_of objective (policy : Instance.t).metrics;
    final_opponent =
      Metrics.throughput_of objective (opponent : Instance.t).metrics;
  }

let certify_lwd ?(factor = 2.0) ~config ~workload ~slots ?flush_every
    ~opponent () =
  let policy = Proc_engine.instance config (Smbm_core.P_lwd.make config) in
  let opponent = Proc_engine.instance ~name:"opponent" config opponent in
  run ~factor ~workload ~slots ?flush_every ~policy ~opponent ()
