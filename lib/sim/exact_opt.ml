open Smbm_core

(* ----- processing model -----

   Packets within a queue are identical (same required work), so a queue is
   fully described by (length, head-of-line residual); the whole buffer by
   the array of those pairs. *)

module Proc_state = struct
  type t = { slot : int; idx : int; queues : (int * int) array }

  let equal a b = a.slot = b.slot && a.idx = b.idx && a.queues = b.queues

  let hash t = Hashtbl.hash (t.slot, t.idx, t.queues)
end

module Proc_tbl = Hashtbl.Make (Proc_state)

let proc ?recorder ?(name = "EXACT") config trace ~drain =
  if drain < 0 then invalid_arg "Exact_opt.proc: negative drain";
  let n = Proc_config.n config in
  let buffer = config.Proc_config.buffer in
  let cycles = config.Proc_config.speedup in
  let total_slots = Array.length trace + drain in
  let arrivals_at slot =
    if slot < Array.length trace then Array.of_list trace.(slot) else [||]
  in
  let memo = Proc_tbl.create 4096 in
  let occupancy queues =
    Array.fold_left (fun acc (len, _) -> acc + len) 0 queues
  in
  (* Deterministic transmission phase on a queue-state copy; returns the
     packets transmitted. *)
  let serve_queue i (len, hol) =
    let work = Proc_config.work config i in
    let len = ref len and hol = ref hol and budget = ref cycles in
    let sent = ref 0 in
    while !budget > 0 && !len > 0 do
      let served = min !budget !hol in
      hol := !hol - served;
      budget := !budget - served;
      if !hol = 0 then begin
        incr sent;
        decr len;
        hol := work
      end
    done;
    ((!len, if !len = 0 then 0 else !hol), !sent)
  in
  let transmit queues =
    let queues = Array.copy queues in
    let sent = ref 0 in
    Array.iteri
      (fun i q ->
        let q', sent_i = serve_queue i q in
        queues.(i) <- q';
        sent := !sent + sent_i)
      queues;
    (queues, !sent)
  in
  let rec best (st : Proc_state.t) =
    if st.slot >= total_slots then 0
    else
      match Proc_tbl.find_opt memo st with
      | Some v -> v
      | None ->
        let arrivals = arrivals_at st.slot in
        let v =
          if st.idx < Array.length arrivals then begin
            let a = arrivals.(st.idx) in
            let skip = best { st with idx = st.idx + 1 } in
            if occupancy st.queues < buffer then begin
              let queues = Array.copy st.queues in
              let len, hol = queues.(a.Arrival.dest) in
              let work = Proc_config.work config a.Arrival.dest in
              queues.(a.Arrival.dest) <-
                (len + 1, if len = 0 then work else hol);
              max skip (best { st with idx = st.idx + 1; queues })
            end
            else skip
          end
          else begin
            let queues, sent = transmit st.queues in
            sent + best { slot = st.slot + 1; idx = 0; queues }
          end
        in
        Proc_tbl.add memo st v;
        v
  in
  let initial = { Proc_state.slot = 0; idx = 0; queues = Array.make n (0, 0) } in
  let result = best initial in
  (* Replay the argmax path through the memo table as an event trace: the
     same accept/drop choices [best] scored, with deterministic per-port
     transmissions.  Ties between skipping and accepting resolve to skip,
     exactly as [max skip accept] does above. *)
  (match recorder with
  | None -> ()
  | Some r ->
    let record slot kind = Smbm_obs.Recorder.record r ~slot ~who:name kind in
    let st = ref initial in
    while !st.Proc_state.slot < total_slots do
      let s = !st in
      let arrivals = arrivals_at s.Proc_state.slot in
      if s.Proc_state.idx < Array.length arrivals then begin
        let a = arrivals.(s.Proc_state.idx) in
        record s.Proc_state.slot
          (Smbm_obs.Event.Arrival { dest = a.Arrival.dest });
        let skip_state = { s with Proc_state.idx = s.Proc_state.idx + 1 } in
        let accept_state =
          if occupancy s.Proc_state.queues < buffer then begin
            let queues = Array.copy s.Proc_state.queues in
            let len, hol = queues.(a.Arrival.dest) in
            let work = Proc_config.work config a.Arrival.dest in
            queues.(a.Arrival.dest) <- (len + 1, if len = 0 then work else hol);
            Some { skip_state with Proc_state.queues }
          end
          else None
        in
        match accept_state with
        | Some acc_st when best acc_st > best skip_state ->
          record s.Proc_state.slot
            (Smbm_obs.Event.Accept { dest = a.Arrival.dest });
          st := acc_st
        | Some _ | None ->
          record s.Proc_state.slot
            (Smbm_obs.Event.Drop { dest = a.Arrival.dest; value = 1 });
          st := skip_state
      end
      else begin
        let queues = Array.copy s.Proc_state.queues in
        Array.iteri
          (fun i q ->
            let q', sent_i = serve_queue i q in
            queues.(i) <- q';
            if sent_i > 0 then
              record s.Proc_state.slot
                (Smbm_obs.Event.Transmit_bulk
                   { dest = i; count = sent_i; value = sent_i }))
          queues;
        record s.Proc_state.slot
          (Smbm_obs.Event.Slot_end { occupancy = occupancy queues });
        st := { Proc_state.slot = s.Proc_state.slot + 1; idx = 0; queues }
      end
    done);
  result

(* ----- value model -----

   A queue is a descending-sorted list of values; transmission pops the
   head of every non-empty queue [speedup] times. *)

module Value_state = struct
  type t = { slot : int; idx : int; queues : int list array }

  let equal a b = a.slot = b.slot && a.idx = b.idx && a.queues = b.queues
  let hash t = Hashtbl.hash (t.slot, t.idx, t.queues)
end

module Value_tbl = Hashtbl.Make (Value_state)

let value ?recorder ?(name = "EXACT") config trace ~drain =
  if drain < 0 then invalid_arg "Exact_opt.value: negative drain";
  let n = Value_config.n config in
  let buffer = config.Value_config.buffer in
  let per_slot = config.Value_config.speedup in
  let total_slots = Array.length trace + drain in
  let arrivals_at slot =
    if slot < Array.length trace then Array.of_list trace.(slot) else [||]
  in
  let memo = Value_tbl.create 4096 in
  let occupancy queues =
    Array.fold_left (fun acc q -> acc + List.length q) 0 queues
  in
  let rec insert_desc v = function
    | [] -> [ v ]
    | x :: rest when x >= v -> x :: insert_desc v rest
    | rest -> v :: rest
  in
  (* Pop up to [per_slot] head values; returns (rest, count, value sum). *)
  let serve_queue q =
    let rec take budget count value = function
      | v :: rest when budget > 0 -> take (budget - 1) (count + 1) (value + v) rest
      | rest -> (rest, count, value)
    in
    take per_slot 0 0 q
  in
  let transmit queues =
    let queues = Array.copy queues in
    let value = ref 0 in
    Array.iteri
      (fun i q ->
        let rest, _, v = serve_queue q in
        value := !value + v;
        queues.(i) <- rest)
      queues;
    (queues, !value)
  in
  let rec best (st : Value_state.t) =
    if st.slot >= total_slots then 0
    else
      match Value_tbl.find_opt memo st with
      | Some v -> v
      | None ->
        let arrivals = arrivals_at st.slot in
        let v =
          if st.idx < Array.length arrivals then begin
            let a = arrivals.(st.idx) in
            let skip = best { st with idx = st.idx + 1 } in
            if occupancy st.queues < buffer then begin
              let queues = Array.copy st.queues in
              queues.(a.Arrival.dest) <-
                insert_desc a.Arrival.value queues.(a.Arrival.dest);
              max skip (best { st with idx = st.idx + 1; queues })
            end
            else skip
          end
          else begin
            let queues, sent = transmit st.queues in
            sent + best { slot = st.slot + 1; idx = 0; queues }
          end
        in
        Value_tbl.add memo st v;
        v
  in
  let initial = { Value_state.slot = 0; idx = 0; queues = Array.make n [] } in
  let result = best initial in
  (match recorder with
  | None -> ()
  | Some r ->
    let record slot kind = Smbm_obs.Recorder.record r ~slot ~who:name kind in
    let st = ref initial in
    while !st.Value_state.slot < total_slots do
      let s = !st in
      let arrivals = arrivals_at s.Value_state.slot in
      if s.Value_state.idx < Array.length arrivals then begin
        let a = arrivals.(s.Value_state.idx) in
        record s.Value_state.slot
          (Smbm_obs.Event.Arrival { dest = a.Arrival.dest });
        let skip_state = { s with Value_state.idx = s.Value_state.idx + 1 } in
        let accept_state =
          if occupancy s.Value_state.queues < buffer then begin
            let queues = Array.copy s.Value_state.queues in
            queues.(a.Arrival.dest) <-
              insert_desc a.Arrival.value queues.(a.Arrival.dest);
            Some { skip_state with Value_state.queues }
          end
          else None
        in
        match accept_state with
        | Some acc_st when best acc_st > best skip_state ->
          record s.Value_state.slot
            (Smbm_obs.Event.Accept { dest = a.Arrival.dest });
          st := acc_st
        | Some _ | None ->
          record s.Value_state.slot
            (Smbm_obs.Event.Drop
               { dest = a.Arrival.dest; value = a.Arrival.value });
          st := skip_state
      end
      else begin
        let queues = Array.copy s.Value_state.queues in
        Array.iteri
          (fun i q ->
            let rest, count, value = serve_queue q in
            queues.(i) <- rest;
            if count > 0 then
              record s.Value_state.slot
                (Smbm_obs.Event.Transmit_bulk { dest = i; count; value }))
          queues;
        record s.Value_state.slot
          (Smbm_obs.Event.Slot_end { occupancy = occupancy queues });
        st := { Value_state.slot = s.Value_state.slot + 1; idx = 0; queues }
      end
    done);
  result

(* ----- compact-trace entry points -----

   The searches key their memo tables on per-slot arrival lists, so a
   compact trace is expanded once up front; the expansion cost is nothing
   next to the exponential search it feeds. *)

let arrivals_of_compact trace =
  Array.init (Smbm_traffic.Trace.Compact.slots trace) (fun i ->
      let acc = ref [] in
      Smbm_traffic.Trace.Compact.iter_slot trace i ~f:(fun ~dest ~value ->
          acc := { Arrival.dest; value } :: !acc);
      List.rev !acc)

let proc_compact ?recorder ?name config trace ~drain =
  proc ?recorder ?name config (arrivals_of_compact trace) ~drain

let value_compact ?recorder ?name config trace ~drain =
  value ?recorder ?name config (arrivals_of_compact trace) ~drain
