open Smbm_core
open Smbm_traffic

type model = Proc | Value_uniform | Value_port
type axis = K | B | C

type base = {
  k : int;
  buffer : int;
  speedup : int;
  load : float;
  mmpp : Scenario.mmpp_params;
  slots : int;
  flush_every : int option;
  seed : int;
}

let default_base =
  {
    k = 16;
    buffer = 64;
    speedup = 1;
    load = 2.0;
    mmpp = Scenario.default_mmpp;
    slots = 50_000;
    flush_every = Some 2_500;
    seed = 42;
  }

type panel = { number : int; model : model; axis : axis; xs : int list }

let default_xs = function
  | K -> [ 2; 4; 8; 16; 32; 64 ]
  | B -> [ 16; 32; 64; 128; 256; 512; 1024 ]
  | C -> [ 1; 2; 3; 4; 6; 8; 12; 16 ]

let panel number =
  if number < 1 || number > 9 then invalid_arg "Sweep.panel: expected 1..9";
  let model =
    match (number - 1) / 3 with
    | 0 -> Proc
    | 1 -> Value_uniform
    | _ -> Value_port
  in
  let axis = match (number - 1) mod 3 with 0 -> K | 1 -> B | _ -> C in
  { number; model; axis; xs = default_xs axis }

type point = { x : int; ratios : (string * float) list }
type outcome = { panel : panel; points : point list }

let objective = function
  | Proc -> `Packets
  | Value_uniform | Value_port -> `Value

(* Effective parameters at sweep value [x]. *)
let apply_axis base axis x =
  match axis with
  | K -> { base with k = x }
  | B -> { base with buffer = x }
  | C -> { base with speedup = x }

let proc_setup ?recorder ~reference base =
  let config =
    Proc_config.contiguous ~k:base.k ~buffer:base.buffer ~speedup:base.speedup
      ()
  in
  let workload =
    Scenario.proc_workload ~mmpp:base.mmpp
      ~reference:
        (Proc_config.contiguous ~k:reference.k ~buffer:reference.buffer
           ~speedup:reference.speedup ())
      ~config ~load:base.load ~seed:base.seed ()
  in
  let instances =
    Opt_ref.proc_instance ?recorder config
    :: List.map (Proc_engine.instance ?recorder config) (Policies.proc config)
  in
  (workload, instances)

let value_setup ?recorder ~reference ~port_tied base =
  let config =
    Value_config.make ~ports:base.k ~max_value:base.k ~buffer:base.buffer
      ~speedup:base.speedup ()
  in
  let ref_config =
    Value_config.make ~ports:reference.k ~max_value:reference.k
      ~buffer:reference.buffer ~speedup:reference.speedup ()
  in
  let workload =
    if port_tied then
      Scenario.value_port_workload ~mmpp:base.mmpp ~reference:ref_config
        ~config ~load:base.load ~seed:base.seed ()
    else
      Scenario.value_uniform_workload ~mmpp:base.mmpp ~reference:ref_config
        ~config ~load:base.load ~seed:base.seed ()
  in
  let policies =
    if port_tied then
      Policies.value_port ~port_value:(Scenario.port_values config) config
    else Policies.value_uniform config
  in
  let instances =
    Opt_ref.value_instance ?recorder config
    :: List.map (Value_engine.instance ?recorder config) policies
  in
  (workload, instances)

(* [reference] carries the sweep's base parameters: the workload intensity is
   derived from it, not from the swept configuration, so the absolute traffic
   stays constant along the sweep (the paper's setup: growing k or C means
   growing capacity under the same offered traffic). *)
let setup ?reference ?recorder model base =
  let reference = Option.value reference ~default:base in
  match model with
  | Proc -> proc_setup ?recorder ~reference base
  | Value_uniform -> value_setup ?recorder ~reference ~port_tied:false base
  | Value_port -> value_setup ?recorder ~reference ~port_tied:true base

(* ----- trace cache -----

   The generated traffic of a sweep point depends on strictly fewer
   parameters than the point itself: the RNG streams are seeded by [seed]
   and consumed by the MMPP processes ([mmpp], per-source rate — a function
   of [load] and the *reference* capacity) and the labelling rule (a
   function of the swept config's port/value count, i.e. the effective [k]).
   The swept [buffer] and [speedup] never reach the generator, so every
   point of a B or C axis replays byte-identical traffic.  [trace_key]
   spells out exactly those inputs — a point's traffic is a pure function of
   its key, so sharing one materialized trace per key is correct by
   construction (and pinned by tests against live generation). *)

let effective base axis x = apply_axis base axis x

let trace_key ~base ~model ~axis ~x =
  let reference = base in
  let e = effective base axis x in
  let tag =
    match model with
    | Proc -> "proc"
    | Value_uniform -> "value_uniform"
    | Value_port -> "value_port"
  in
  Printf.sprintf "%s|slots=%d|seed=%d|load=%h|mmpp=%d,%h,%h|ref=%d,%d|k=%d" tag
    e.slots e.seed e.load e.mmpp.Scenario.sources e.mmpp.Scenario.p_on_to_off
    e.mmpp.Scenario.p_off_to_on reference.k reference.speedup e.k

let point_workload ~base ~model ~axis ~x =
  let reference = base in
  let e = effective base axis x in
  fst (setup ~reference model e)

let materialize_trace ~base ~model ~axis ~x =
  let workload = point_workload ~base ~model ~axis ~x in
  Trace.Compact.of_workload workload ~slots:(effective base axis x).slots

(* Budget guard: a materialized trace costs ~3 words per arrival plus one
   per slot; past a few million arrivals (paper-scale runs) the cache would
   dominate memory for a marginal win, so callers fall back to live
   generation. *)
let default_max_cached_arrivals = 4_000_000

let trace_worth_caching ?(max_arrivals = default_max_cached_arrivals) ~base
    ~model ~axis ~x () =
  max_arrivals > 0
  &&
  let e = effective base axis x in
  match Workload.mean_rate (point_workload ~base ~model ~axis ~x) with
  | Some rate -> rate *. float_of_int e.slots <= float_of_int max_arrivals
  | None -> false

let policy_names model base =
  let _, instances = setup model base in
  match instances with
  | _opt :: algs -> List.map (fun (i : Instance.t) -> i.Instance.name) algs
  | [] -> []

let run_point ?recorder ?spans ?trace ~base ~model ~axis ~x () =
  let reference = base in
  let base = apply_axis base axis x in
  let live_workload, instances = setup ?recorder ~reference model base in
  let workload =
    match trace with
    | None -> live_workload
    | Some trace ->
      if Trace.Compact.slots trace < base.slots then
        invalid_arg "Sweep.run_point: trace shorter than the run";
      Trace.Compact.replay trace
  in
  let params =
    {
      Experiment.slots = base.slots;
      flush_every = base.flush_every;
      check_every = None;
    }
  in
  let run () = Experiment.run ~params ~workload instances in
  (match spans with
  | None -> run ()
  | Some spans ->
    Smbm_obs.Span.with_span spans (Printf.sprintf "point/x=%d" x) run);
  match instances with
  | opt :: algs -> Experiment.ratios ~objective:(objective model) ~opt ~algs
  | [] -> []

type detail = {
  ratio : float;
  jain : float;
  starved : int;
  mean_latency : float;
  p99_latency : float;
  drop_rate : float;
}

let run_point_detailed ~base ~model ~axis ~x =
  let reference = base in
  let base = apply_axis base axis x in
  let workload, instances = setup ~reference model base in
  let params =
    {
      Experiment.slots = base.slots;
      flush_every = base.flush_every;
      check_every = None;
    }
  in
  Experiment.run ~params ~workload instances;
  match instances with
  | opt :: algs ->
    List.map
      (fun (alg : Instance.t) ->
        let m = alg.metrics in
        let jain, starved =
          match alg.ports with
          | Some ports ->
            ( Port_stats.jain_index ports ~objective:(objective model),
              Port_stats.starved_ports ports )
          | None -> (1.0, 0)
        in
        let drop_rate =
          if Metrics.arrivals m = 0 then 0.0
          else float_of_int (Metrics.dropped m) /. float_of_int (Metrics.arrivals m)
        in
        ( alg.name,
          {
            ratio = Experiment.ratio ~objective:(objective model) ~opt ~alg;
            jain;
            starved;
            mean_latency =
              Smbm_prelude.Running_stats.mean (Metrics.latency_stats m);
            p99_latency =
              Smbm_prelude.Histogram.quantile (Metrics.latency_hist m) 0.99;
            drop_rate;
          } ))
      algs
  | [] -> []

type replicated = {
  mean : float;
  stddev : float;
  runs : int;
  dropped_non_finite : int;
}

let aggregate_replicates per_seed =
  match per_seed with
  | [] -> []
  | first :: _ ->
    List.map
      (fun (name, _) ->
        let stats = Smbm_prelude.Running_stats.create () in
        let dropped = ref 0 in
        List.iter
          (fun ratios ->
            match List.assoc_opt name ratios with
            | Some r when Float.is_finite r ->
              Smbm_prelude.Running_stats.add stats r
            | Some _ -> incr dropped
            | None -> ())
          per_seed;
        ( name,
          {
            mean = Smbm_prelude.Running_stats.mean stats;
            stddev = Smbm_prelude.Running_stats.stddev stats;
            runs = Smbm_prelude.Running_stats.count stats;
            dropped_non_finite = !dropped;
          } ))
      first

let run_point_replicated ~base ~model ~axis ~x ~seeds =
  if seeds = [] then invalid_arg "Sweep.run_point_replicated: no seeds";
  aggregate_replicates
    (List.map
       (fun seed -> run_point ~base:{ base with seed } ~model ~axis ~x ())
       seeds)

(* Panel-level trace cache: a key is materialized once and replayed by
   every later point with the same key (all of a B or C axis).  Keys used
   once — every K-axis point — are never materialized: generating into a
   trace first would only add a copy. *)
let run_panel ?(base = default_base) ?recorder ?spans ?xs
    ?(max_cached_arrivals = default_max_cached_arrivals) number =
  let panel = panel number in
  let panel = match xs with Some xs -> { panel with xs } | None -> panel in
  let model = panel.model and axis = panel.axis in
  let key x = trace_key ~base ~model ~axis ~x in
  let uses = Hashtbl.create 8 in
  List.iter
    (fun x ->
      let k = key x in
      Hashtbl.replace uses k (1 + Option.value ~default:0 (Hashtbl.find_opt uses k)))
    panel.xs;
  let cache = Hashtbl.create 8 in
  let trace_for x =
    let k = key x in
    match Hashtbl.find_opt cache k with
    | Some trace -> Some trace
    | None ->
      if
        Option.value ~default:0 (Hashtbl.find_opt uses k) >= 2
        && trace_worth_caching ~max_arrivals:max_cached_arrivals ~base ~model
             ~axis ~x ()
      then begin
        let trace = materialize_trace ~base ~model ~axis ~x in
        Hashtbl.replace cache k trace;
        Some trace
      end
      else None
  in
  let run_points () =
    List.map
      (fun x ->
        {
          x;
          ratios =
            run_point ?recorder ?spans ?trace:(trace_for x) ~base ~model ~axis
              ~x ();
        })
      panel.xs
  in
  let points =
    match spans with
    | None -> run_points ()
    | Some spans ->
      Smbm_obs.Span.with_span spans
        (Printf.sprintf "panel/%d" panel.number)
        run_points
  in
  { panel; points }
