(** Counters accumulated by one switch instance over a run — a thin view
    over an {!Smbm_obs.Registry}: every counter and histogram lives in the
    instance's registry under a stable name ([arrivals], [accepted], ...,
    [latency], [occupancy]), so a run's aggregates can be snapshotted as
    labeled JSONL without any parallel bookkeeping.  Updates go through the
    [record_*] functions — the engines own the semantics of each count, and
    direct field-poking is no longer possible.

    Conservation invariant (checked by {!check_conservation}, and enforced
    by the engines at every flush and at the end of every
    {!Experiment.run}): [arrivals = accepted + dropped] and
    [accepted = transmitted + pushed_out + flushed + in_buffer]. *)

open Smbm_prelude

type t

val create : ?latency_cap:float -> unit -> t
(** [latency_cap] bounds the latency histogram's bucketed range in slots
    (default [1e7]); samples above it are clamped into the last bucket. *)

val registry : t -> Smbm_obs.Registry.t
(** The backing registry (for snapshots; the instruments themselves are
    reachable through it by name). *)

val clear : t -> unit

(* ----- recording (engine-facing) ----- *)

val record_arrival : t -> unit
(** A packet was offered to the instance. *)

val record_accept : t -> unit
(** The arrival was admitted to the buffer. *)

val record_drop : t -> unit
(** The arrival was rejected. *)

val record_push_out : t -> unit
(** An admitted packet was evicted in favour of an arrival. *)

val record_transmit : t -> value:int -> latency:float -> unit
(** One packet fully processed and sent: counts it, adds [value] to the
    value objective and [latency] (slots since arrival) to the latency
    histogram. *)

val record_transmissions : t -> count:int -> value:int -> unit
(** Batch form without latency samples — for references (OPT) that
    transmit from a bag with no per-packet identity. *)

val record_admissions :
  t -> arrivals:int -> accepted:int -> pushed_out:int -> dropped:int -> unit
(** Batch form of the four admission counters — the fused [admit_batch]
    kernels fold a whole slot's decisions in at once.  Equivalent to the
    matching sequence of per-packet [record_*] calls. *)

val record_flush : t -> int -> unit
(** [n] packets discarded by a periodic flushout. *)

val record_occupancy : t -> int -> unit
(** Buffer occupancy sampled once per slot. *)

(* ----- reads ----- *)

val arrivals : t -> int
val accepted : t -> int
val dropped : t -> int
val pushed_out : t -> int
val transmitted : t -> int
val transmitted_value : t -> int
val flushed : t -> int

val in_buffer : t -> int
(** Packets still buffered, derived from the counters. *)

val latency_stats : t -> Running_stats.t
(** Admission-to-transmission delay in slots, over transmitted packets. *)

val latency_hist : t -> Histogram.t
(** Same samples, log-bucketed for quantiles. *)

val occupancy_stats : t -> Running_stats.t
(** Occupancy samples, one per slot. *)

val check_conservation : t -> unit
(** @raise Invalid_argument when the counters are inconsistent. *)

val throughput_of : [ `Packets | `Value ] -> t -> int

val to_jsonl : ?labels:(string * string) list -> t -> string list
(** The registry snapshot as JSONL metric lines, [labels] (e.g.
    [("policy", name)]) appended to every line. *)

val pp : Format.formatter -> t -> unit
(** One line: the seven counters, the derived buffered count, and — when
    any packet was transmitted — latency p50/p95/p99. *)
