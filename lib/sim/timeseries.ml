type sample = {
  slot : int;
  occupancy : int;
  throughput : float;
  drop_rate : float;
}

type t = {
  every : int;
  name : string;
  mutable slot : int;
  mutable last_transmitted : int;
  mutable last_dropped : int;
  mutable last_arrivals : int;
  mutable samples : sample list; (* newest first *)
}

let attach ~every (inst : Instance.t) =
  if every <= 0 then invalid_arg "Timeseries.attach: every must be positive";
  let t =
    {
      every;
      name = inst.name;
      slot = 0;
      last_transmitted = 0;
      last_dropped = 0;
      last_arrivals = 0;
      samples = [];
    }
  in
  let end_slot () =
    inst.end_slot ();
    t.slot <- t.slot + 1;
    if t.slot mod t.every = 0 then begin
      let m = inst.metrics in
      let sent = Metrics.transmitted m - t.last_transmitted in
      let dropped = Metrics.dropped m - t.last_dropped in
      let arrivals = Metrics.arrivals m - t.last_arrivals in
      t.last_transmitted <- Metrics.transmitted m;
      t.last_dropped <- Metrics.dropped m;
      t.last_arrivals <- Metrics.arrivals m;
      t.samples <-
        {
          slot = t.slot;
          occupancy = inst.occupancy ();
          throughput = float_of_int sent /. float_of_int t.every;
          drop_rate =
            (if arrivals = 0 then 0.0
             else float_of_int dropped /. float_of_int arrivals);
        }
        :: t.samples
    end
  in
  ({ inst with end_slot }, t)

let samples t = List.length t.samples

let series t ~suffix select =
  Smbm_report.Series.make
    ~name:(t.name ^ suffix)
    ~points:
      (List.rev_map
         (fun (s : sample) -> (float_of_int s.slot, select s))
         t.samples)

let occupancy t = series t ~suffix:"/occupancy" (fun s -> float_of_int s.occupancy)
let throughput t = series t ~suffix:"/throughput" (fun s -> s.throughput)
let drop_rate t = series t ~suffix:"/drop-rate" (fun s -> s.drop_rate)

let to_csv t =
  let rows =
    List.rev_map
      (fun (s : sample) ->
        [
          string_of_int s.slot;
          string_of_int s.occupancy;
          Printf.sprintf "%.6f" s.throughput;
          Printf.sprintf "%.6f" s.drop_rate;
        ])
      t.samples
  in
  Smbm_report.Csv.of_table
    ~headers:[ "slot"; "occupancy"; "throughput"; "drop_rate" ]
    ~rows
