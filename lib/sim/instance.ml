open Smbm_core

type t = {
  name : string;
  arrive : Arrival.t -> unit;
  arrive_dv : dest:int -> value:int -> unit;
  arrive_batch : (Arrival_batch.t -> unit) option;
  transmit : unit -> unit;
  end_slot : unit -> unit;
  flush : unit -> unit;
  occupancy : unit -> int;
  metrics : Metrics.t;
  ports : Port_stats.t option;
  check : unit -> unit;
}

let step_slot t ~arrivals =
  List.iter t.arrive arrivals;
  t.transmit ();
  t.end_slot ()

let step_batch t ~batch =
  (match t.arrive_batch with
  | Some f -> f batch
  | None -> Arrival_batch.iter batch ~f:t.arrive_dv);
  t.transmit ();
  t.end_slot ()
