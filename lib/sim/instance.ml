open Smbm_core

type t = {
  name : string;
  arrive : Arrival.t -> unit;
  arrive_dv : dest:int -> value:int -> unit;
  transmit : unit -> unit;
  end_slot : unit -> unit;
  flush : unit -> unit;
  occupancy : unit -> int;
  metrics : Metrics.t;
  ports : Port_stats.t option;
  check : unit -> unit;
}

let step_slot t ~arrivals =
  List.iter t.arrive arrivals;
  t.transmit ();
  t.end_slot ()

let step_batch t ~batch =
  Arrival_batch.iter batch ~f:t.arrive_dv;
  t.transmit ();
  t.end_slot ()
