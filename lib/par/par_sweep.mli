(** Parallel mirrors of {!Smbm_sim.Sweep}, bit-identical to the sequential
    path.

    Every entry point shards work at the granularity of one independent
    simulation (a sweep point, or one replicate seed of a point).  Each task
    is a pure function of its parameters — the per-task RNG is constructed
    inside the task from a seed fixed at submission time (the point's [base]
    seed, or a replicate seed derived by deterministic {!Smbm_prelude.Rng}
    splitting) — and {!Pool} returns results in submission order.  Outputs
    are therefore identical to the sequential functions for every value of
    [jobs] and any scheduling of the workers.

    [jobs] defaults to {!Pool.default_jobs} ([SMBM_JOBS] or
    [Domain.recommended_domain_count ()]); [jobs:0] runs inline on the
    caller.  [on_tick] reports completed tasks (simulations), e.g. for a
    progress line on stderr.  [on_timing] receives the pool's aggregate
    {!Pool.timing} once the batch is done — wall-clock derived, so route it
    to stderr or a strippable [[time]] line, never into deterministic
    output.  [spans] collects per-point spans across worker domains (the
    collector is mutex-guarded); span {e record order} is
    schedule-dependent even though traces are not. *)

open Smbm_sim

val split_seeds : seed:int -> int -> int list
(** [split_seeds ~seed n]: [n] independent replicate seeds derived from
    [seed] by {!Smbm_prelude.Rng.split} — one split child per task, its
    first 64-bit output truncated to [int].  Deterministic in [seed] and
    [n]; a prefix is stable as [n] grows. *)

val run_points :
  ?jobs:int ->
  ?on_tick:(int -> unit) ->
  ?on_timing:(Pool.timing -> unit) ->
  ?spans:Smbm_obs.Span.t ->
  ?max_cached_arrivals:int ->
  base:Sweep.base ->
  model:Sweep.model ->
  axis:Sweep.axis ->
  xs:int list ->
  unit ->
  (int * (string * float) list) list
(** [Sweep.run_point] at every [x] of [xs], points sharded across the pool;
    equals the sequential list of [(x, Sweep.run_point ... ~x)].

    Points sharing a {!Sweep.trace_key} replay one compact trace,
    materialized on the caller before the pool starts and shared read-only
    across domains (immutable once built).  [max_cached_arrivals] bounds
    materialization as in {!Sweep.run_panel}; replays are bit-identical to
    live generation, so outcomes are unchanged. *)

val run_panel :
  ?jobs:int ->
  ?on_tick:(int -> unit) ->
  ?on_timing:(Pool.timing -> unit) ->
  ?spans:Smbm_obs.Span.t ->
  ?max_cached_arrivals:int ->
  ?base:Sweep.base ->
  ?xs:int list ->
  int ->
  Sweep.outcome
(** Parallel {!Sweep.run_panel}: same outcome, points sharded across the
    pool (trace sharing as in {!run_points}). *)

type traced = {
  outcome : Sweep.outcome;
  events : Smbm_obs.Event.t list;
      (** every policy instance's per-slot events, points in sweep order;
          each point whose ring buffer evicted anything is preceded by its
          [Truncated] marker ({!Smbm_obs.Recorder.dump}) *)
  dropped_events : int;
      (** events evicted by per-point ring buffers at [trace_cap] *)
}

val default_trace_cap : int
(** Per-point recorder capacity used when [trace_cap] is omitted
    ([65_536] events). *)

val run_panel_traced :
  ?jobs:int ->
  ?on_tick:(int -> unit) ->
  ?on_timing:(Pool.timing -> unit) ->
  ?spans:Smbm_obs.Span.t ->
  ?trace_cap:int ->
  ?max_cached_arrivals:int ->
  ?base:Sweep.base ->
  ?xs:int list ->
  int ->
  traced
(** {!run_panel} with event tracing: every task creates a private
    {!Smbm_obs.Recorder} (scope [x=<x>], capacity [trace_cap]) handed to
    each policy instance, and the per-point event lists are concatenated in
    submission order — so the event stream is byte-identical for every
    [jobs] value.  The outcome equals the untraced {!run_panel} exactly
    (recording touches no decision and no counter). *)

val run_panels :
  ?jobs:int ->
  ?on_tick:(int -> unit) ->
  ?on_timing:(Pool.timing -> unit) ->
  ?max_cached_arrivals:int ->
  ?base:Sweep.base ->
  int list ->
  Sweep.outcome list
(** [run_panels numbers] runs several Fig. 5 panels with {e all} their
    points sharded across one pool — e.g. [run_panels [1;2;...;9]] spreads
    the full figure's 60-odd simulations over the domains instead of
    parallelizing only within a panel.  Equals
    [List.map (Sweep.run_panel ?base) numbers].

    Trace sharing is cross-panel: within one model, the B panel, the C
    panel and the K panel's base point all carry the same
    {!Sweep.trace_key}, so the full figure materializes one trace per model
    and replays it sixteen times. *)

val run_point_replicated :
  ?jobs:int ->
  ?on_tick:(int -> unit) ->
  ?on_timing:(Pool.timing -> unit) ->
  base:Sweep.base ->
  model:Sweep.model ->
  axis:Sweep.axis ->
  x:int ->
  seeds:int list ->
  unit ->
  (string * Sweep.replicated) list
(** Parallel {!Sweep.run_point_replicated}: one task per seed, aggregated
    with {!Sweep.aggregate_replicates} (identical arithmetic and order).
    @raise Invalid_argument on an empty [seeds]. *)
