open Smbm_sim

let split_seeds ~seed n =
  let module Rng = Smbm_prelude.Rng in
  let parent = Rng.create ~seed in
  List.init n (fun _ -> Int64.to_int (Rng.bits64 (Rng.split parent)))

let with_pool ?jobs ?on_tick ?on_timing f =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  Pool.with_pool ?on_tick ~jobs (fun pool ->
      let result = f pool in
      (match on_timing with
      | None -> ()
      | Some g -> g (Pool.timing pool));
      result)

(* Trace prematerialization: before sharding the points, every trace key
   used by >= 2 tasks (and within the size budget) is materialized once on
   the caller, and the resulting immutable compact traces are shared
   read-only by all point tasks across domains.  Keys are deterministic
   functions of the task parameters, so the set of materialized traces (and
   every replayed stream) is independent of [jobs] and of worker
   scheduling.  Materializing outside the pool keeps [on_tick] counting
   simulations only. *)
let prematerialize ?(max_cached_arrivals = Sweep.default_max_cached_arrivals)
    ~base tasks =
  let counts = Hashtbl.create 16 in
  let reps = ref [] in
  List.iter
    (fun ((model : Sweep.model), (axis : Sweep.axis), x) ->
      let key = Sweep.trace_key ~base ~model ~axis ~x in
      match Hashtbl.find_opt counts key with
      | None ->
        Hashtbl.replace counts key 1;
        reps := (key, (model, axis, x)) :: !reps
      | Some n -> Hashtbl.replace counts key (n + 1))
    tasks;
  let cached =
    List.filter_map
      (fun (key, (model, axis, x)) ->
        if
          Hashtbl.find counts key >= 2
          && Sweep.trace_worth_caching ~max_arrivals:max_cached_arrivals ~base
               ~model ~axis ~x ()
        then Some (key, Sweep.materialize_trace ~base ~model ~axis ~x)
        else None)
      (List.rev !reps)
  in
  (* Pack the cached traces into one shared off-heap slab per column: every
     domain replays through zero-copy windows of three allocations instead
     of one column triple per trace.  Content (and hence every replayed
     stream) is unchanged. *)
  let keys = List.map fst cached in
  List.combine keys
    (Smbm_traffic.Trace.Compact.pack (List.map snd cached))

let find_trace traces ~base ~model ~axis ~x =
  List.assoc_opt (Sweep.trace_key ~base ~model ~axis ~x) traces

let run_points ?jobs ?on_tick ?on_timing ?spans ?max_cached_arrivals ~base
    ~model ~axis ~xs () =
  let traces =
    prematerialize ?max_cached_arrivals ~base
      (List.map (fun x -> (model, axis, x)) xs)
  in
  with_pool ?jobs ?on_tick ?on_timing (fun pool ->
      Pool.map pool
        (fun x ->
          ( x,
            Sweep.run_point ?spans
              ?trace:(find_trace traces ~base ~model ~axis ~x)
              ~base ~model ~axis ~x () ))
        xs)

let panel_of ?base ?xs number =
  let base = Option.value base ~default:Sweep.default_base in
  let panel = Sweep.panel number in
  let panel = match xs with Some xs -> { panel with Sweep.xs } | None -> panel in
  (base, panel)

let run_panel ?jobs ?on_tick ?on_timing ?spans ?max_cached_arrivals ?base ?xs
    number =
  let base, panel = panel_of ?base ?xs number in
  let points =
    run_points ?jobs ?on_tick ?on_timing ?spans ?max_cached_arrivals ~base
      ~model:panel.Sweep.model ~axis:panel.Sweep.axis ~xs:panel.Sweep.xs ()
    |> List.map (fun (x, ratios) -> { Sweep.x; ratios })
  in
  { Sweep.panel; points }

type traced = {
  outcome : Sweep.outcome;
  events : Smbm_obs.Event.t list;
  dropped_events : int;
}

let default_trace_cap = 65_536

(* Trace determinism: each task owns a private recorder created inside the
   task, so recording never crosses domains; [Pool.map] returns task results
   in submission order, so concatenating the per-point event lists yields the
   same stream for every [jobs] value and any worker schedule. *)
let run_panel_traced ?jobs ?on_tick ?on_timing ?spans
    ?(trace_cap = default_trace_cap) ?max_cached_arrivals ?base ?xs number =
  let base, panel = panel_of ?base ?xs number in
  let model = panel.Sweep.model and axis = panel.Sweep.axis in
  let traces =
    prematerialize ?max_cached_arrivals ~base
      (List.map (fun x -> (model, axis, x)) panel.Sweep.xs)
  in
  let results =
    with_pool ?jobs ?on_tick ?on_timing (fun pool ->
        Pool.map pool
          (fun x ->
            let recorder =
              Smbm_obs.Recorder.create
                ~scope:(Printf.sprintf "x=%d" x)
                ~cap:trace_cap ()
            in
            let ratios =
              Sweep.run_point ~recorder ?spans
                ?trace:(find_trace traces ~base ~model ~axis ~x)
                ~base ~model ~axis ~x ()
            in
            ( { Sweep.x; ratios },
              Smbm_obs.Recorder.dump recorder,
              Smbm_obs.Recorder.dropped recorder ))
          panel.Sweep.xs)
  in
  {
    outcome =
      { Sweep.panel; points = List.map (fun (p, _, _) -> p) results };
    events = List.concat_map (fun (_, es, _) -> es) results;
    dropped_events = List.fold_left (fun acc (_, _, d) -> acc + d) 0 results;
  }

let run_panels ?jobs ?on_tick ?on_timing ?max_cached_arrivals ?base numbers =
  let panels = List.map (fun n -> snd (panel_of ?base n)) numbers in
  let base = Option.value base ~default:Sweep.default_base in
  let tasks =
    List.concat_map
      (fun (p : Sweep.panel) -> List.map (fun x -> (p, x)) p.Sweep.xs)
      panels
  in
  (* Sharing is cross-panel: a model's B and C panels (and its K panel at
     the base point) all carry the same key, so a full Fig. 5 materializes
     one trace per model instead of generating 60-odd times. *)
  let traces =
    prematerialize ?max_cached_arrivals ~base
      (List.map
         (fun ((p : Sweep.panel), x) -> (p.Sweep.model, p.Sweep.axis, x))
         tasks)
  in
  let points =
    with_pool ?jobs ?on_tick ?on_timing (fun pool ->
        Pool.map pool
          (fun ((p : Sweep.panel), x) ->
            {
              Sweep.x;
              ratios =
                Sweep.run_point
                  ?trace:
                    (find_trace traces ~base ~model:p.Sweep.model
                       ~axis:p.Sweep.axis ~x)
                  ~base ~model:p.Sweep.model ~axis:p.Sweep.axis ~x ();
            })
          tasks)
  in
  (* Results come back in submission order: peel each panel's slice off the
     front. *)
  let rec reassemble panels points =
    match panels with
    | [] -> []
    | (p : Sweep.panel) :: rest ->
      let n = List.length p.Sweep.xs in
      let mine = List.filteri (fun i _ -> i < n) points in
      let others = List.filteri (fun i _ -> i >= n) points in
      { Sweep.panel = p; points = mine } :: reassemble rest others
  in
  reassemble panels points

let run_point_replicated ?jobs ?on_tick ?on_timing ~base ~model ~axis ~x ~seeds
    () =
  if seeds = [] then invalid_arg "Par_sweep.run_point_replicated: no seeds";
  let per_seed =
    with_pool ?jobs ?on_tick ?on_timing (fun pool ->
        Pool.map pool
          (fun seed ->
            Sweep.run_point ~base:{ base with Sweep.seed } ~model ~axis ~x ())
          seeds)
  in
  Sweep.aggregate_replicates per_seed
