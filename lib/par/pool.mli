(** A fixed-size pool of OCaml 5 domains with an ordered fork-join API.

    The pool owns [jobs] worker domains that drain a shared work queue.  The
    combinators ([map], [mapi], [map_reduce]) submit one task per input
    element, block the caller until the whole batch has completed, and return
    the results in submission order — so a parallel map is observationally
    identical to [List.map] whenever the tasks are independent, regardless of
    how the scheduler interleaves them.

    Exceptions raised by tasks never kill a worker: they are captured with
    their backtrace and re-raised on the caller once the batch has drained
    (the exception of the earliest-submitted failing task wins, so failure
    attribution is deterministic too).

    Tasks must not themselves call a combinator of the same pool: all workers
    could then be blocked waiting on batches only they could execute.  Create
    a separate pool (or use an inline [jobs:0] pool) for nested parallelism.
*)

type t

type timing = {
  tasks : int;  (** tasks completed *)
  busy_wall : float;  (** summed task run time, seconds *)
  max_task_wall : float;
  total_wait : float;
      (** summed queue wait (submission to start); 0 for the inline pool *)
  max_wait : float;
  domain_busy : float array;
      (** per-worker busy time, one slot per domain (slot 0 for the inline
          pool) — an imbalance diagnostic *)
}
(** Aggregate task timing over the pool's lifetime.  Wall-clock derived and
    schedule-dependent by nature: report it on stderr or behind strippable
    [[time]] prefixes, never inside deterministic outputs. *)

val timing : t -> timing
(** Snapshot of the timing accumulators (thread-safe). *)

val pp_timing : Format.formatter -> timing -> unit
(** One line: task count, busy/wait totals with mean and max, per-domain
    busy seconds. *)

val create : ?on_tick:(int -> unit) -> jobs:int -> unit -> t
(** A pool with [jobs] worker domains.

    [jobs = 0] is the inline pool: no domains are spawned and the
    combinators run every task sequentially on the caller — useful as a
    zero-overhead fallback and for deterministic debugging.

    [on_tick] is invoked after every completed task with the pool-lifetime
    completion count (see {!completed}); with worker domains it may be called
    concurrently from any of them, so it must be thread-safe (an atomic
    progress bar update, a write to stderr).

    @raise Invalid_argument if [jobs < 0]. *)

val jobs : t -> int
(** Number of worker domains (0 for the inline pool). *)

val completed : t -> int
(** Total tasks completed over the pool's lifetime (atomic counter). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element of [xs] on the pool and
    returns the results in the order of [xs].  Blocks until done.
    @raise Invalid_argument if the pool has been shut down. *)

val mapi : t -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** Like {!map} with the submission index (position in [xs]) passed first. *)

val map_reduce :
  t -> map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> init:'c -> 'a list -> 'c
(** [map_reduce pool ~map ~reduce ~init xs] maps on the pool, then folds the
    results left-to-right in submission order on the caller: the result
    equals [List.fold_left reduce init (List.map map xs)] exactly, even for
    non-commutative [reduce]. *)

val shutdown : t -> unit
(** Graceful shutdown: lets workers drain any queued tasks, then joins every
    domain.  Idempotent.  Subsequent combinator calls raise
    [Invalid_argument]. *)

val with_pool : ?on_tick:(int -> unit) -> jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down on all
    exits. *)

val default_jobs : unit -> int
(** The [SMBM_JOBS] environment variable if set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)
