type timing = {
  tasks : int;
  busy_wall : float;
  max_task_wall : float;
  total_wait : float;
  max_wait : float;
  domain_busy : float array;
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  queue : (float * (unit -> unit)) Queue.t; (* enqueue time, task *)
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  progress : int Atomic.t;
  on_tick : (int -> unit) option;
  (* Timing accumulators, guarded by [stats_mutex] (never held together with
     [mutex]); [domain_busy] has one slot per worker, slot 0 for the inline
     pool. *)
  stats_mutex : Mutex.t;
  mutable t_tasks : int;
  mutable t_busy : float;
  mutable t_max_wall : float;
  mutable t_wait : float;
  mutable t_max_wait : float;
  domain_busy : float array;
}

let note t ~idx ~wait ~wall =
  Mutex.lock t.stats_mutex;
  t.t_tasks <- t.t_tasks + 1;
  t.t_busy <- t.t_busy +. wall;
  if wall > t.t_max_wall then t.t_max_wall <- wall;
  t.t_wait <- t.t_wait +. wait;
  if wait > t.t_max_wait then t.t_max_wait <- wait;
  t.domain_busy.(idx) <- t.domain_busy.(idx) +. wall;
  Mutex.unlock t.stats_mutex

let timing t =
  Mutex.lock t.stats_mutex;
  let snap =
    {
      tasks = t.t_tasks;
      busy_wall = t.t_busy;
      max_task_wall = t.t_max_wall;
      total_wait = t.t_wait;
      max_wait = t.t_max_wait;
      domain_busy = Array.copy t.domain_busy;
    }
  in
  Mutex.unlock t.stats_mutex;
  snap

let pp_timing ppf tm =
  if tm.tasks = 0 then Format.fprintf ppf "no tasks"
  else begin
    let n = float_of_int tm.tasks in
    Format.fprintf ppf
      "tasks %d, busy %.3fs (mean %.3fs, max %.3fs), wait %.3fs (mean %.3fs, \
       max %.3fs), domains ["
      tm.tasks tm.busy_wall (tm.busy_wall /. n) tm.max_task_wall tm.total_wait
      (tm.total_wait /. n) tm.max_wait;
    Array.iteri
      (fun i b ->
        if i > 0 then Format.fprintf ppf " ";
        Format.fprintf ppf "%.3fs" b)
      tm.domain_busy;
    Format.fprintf ppf "]"
  end

(* Workers drain the queue even while stopping, so shutdown is graceful:
   every task submitted before [shutdown] runs to completion. *)
let rec worker t idx =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.work_available t.mutex
  done;
  match Queue.take_opt t.queue with
  | None ->
    (* stopping and drained *)
    Mutex.unlock t.mutex
  | Some (enqueued, task) ->
    Mutex.unlock t.mutex;
    let t0 = Unix.gettimeofday () in
    task ();
    note t ~idx ~wait:(t0 -. enqueued) ~wall:(Unix.gettimeofday () -. t0);
    worker t idx

let create ?on_tick ~jobs () =
  if jobs < 0 then invalid_arg "Pool.create: jobs must be non-negative";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      domains = [];
      progress = Atomic.make 0;
      on_tick;
      stats_mutex = Mutex.create ();
      t_tasks = 0;
      t_busy = 0.0;
      t_max_wall = 0.0;
      t_wait = 0.0;
      t_max_wait = 0.0;
      domain_busy = Array.make (max jobs 1) 0.0;
    }
  in
  t.domains <- List.init jobs (fun i -> Domain.spawn (fun () -> worker t i));
  t

let jobs t = t.jobs
let completed t = Atomic.get t.progress

let tick t =
  let n = Atomic.fetch_and_add t.progress 1 + 1 in
  match t.on_tick with None -> () | Some f -> f n

let mapi t f items =
  let items = Array.of_list items in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    (* Per-batch completion latch; [results] and [errors] are published to
       the caller through it (task writes happen-before the decrement, the
       caller reads after observing zero under the same mutex). *)
    let remaining = ref n in
    let batch_mutex = Mutex.create () in
    let batch_done = Condition.create () in
    let task i () =
      (match f i items.(i) with
      | v -> results.(i) <- Some v
      | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
      tick t;
      Mutex.lock batch_mutex;
      decr remaining;
      if !remaining = 0 then Condition.signal batch_done;
      Mutex.unlock batch_mutex
    in
    if t.jobs = 0 then begin
      if t.stopping then invalid_arg "Pool: pool has been shut down";
      for i = 0 to n - 1 do
        let t0 = Unix.gettimeofday () in
        task i ();
        note t ~idx:0 ~wait:0.0 ~wall:(Unix.gettimeofday () -. t0)
      done
    end
    else begin
      Mutex.lock t.mutex;
      if t.stopping then begin
        Mutex.unlock t.mutex;
        invalid_arg "Pool: pool has been shut down"
      end;
      let now = Unix.gettimeofday () in
      for i = 0 to n - 1 do
        Queue.add (now, task i) t.queue
      done;
      Condition.broadcast t.work_available;
      Mutex.unlock t.mutex;
      Mutex.lock batch_mutex;
      while !remaining > 0 do
        Condition.wait batch_done batch_mutex
      done;
      Mutex.unlock batch_mutex
    end;
    (* Deterministic failure attribution: earliest submitted task wins. *)
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.to_list
      (Array.map
         (function
           | Some v -> v
           | None -> assert false (* no error => every slot was filled *))
         results)
  end

let map t f items = mapi t (fun _ x -> f x) items

let map_reduce t ~map:f ~reduce ~init items =
  List.fold_left reduce init (map t f items)

let shutdown t =
  Mutex.lock t.mutex;
  if t.stopping then Mutex.unlock t.mutex
  else begin
    t.stopping <- true;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_pool ?on_tick ~jobs f =
  let t = create ?on_tick ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let default_jobs () =
  match Sys.getenv_opt "SMBM_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j > 0 -> j
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()
