let make ?(out = stderr) ~label ~total () completed =
  Printf.fprintf out "\r%s: %d/%d%s%!" label completed total
    (if completed >= total then "\n" else "")
