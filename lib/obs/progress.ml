let make ?(out = stderr) ~label ~total () completed =
  Printf.fprintf out "\r%s: %d/%d%s%!" label completed total
    (if completed >= total then "\n" else "")

(* ----- TTY dashboard primitives (smbm_cli watch) ----- *)

let bar ?(width = 24) frac =
  let frac = Float.max 0.0 (Float.min 1.0 frac) in
  let filled = int_of_float (Float.round (frac *. float_of_int width)) in
  let b = Buffer.create (width + 2) in
  Buffer.add_char b '[';
  for i = 0 to width - 1 do
    Buffer.add_char b (if i < filled then '#' else '.')
  done;
  Buffer.add_char b ']';
  Buffer.contents b

let clear_screen = "\027[2J\027[H"
let erase_below = "\027[J"
let home = "\027[H"
