(** Declarative watchdog rules with hysteresis.

    A health monitor holds a list of named rules, each a thunk returning
    {!Pass} or [Fail reason].  {!evaluate} is called once per observation
    window; a rule {e trips} only after [trip_after] consecutive failing
    windows and {e clears} only after [clear_after] consecutive passing
    ones, so one bad window never flaps the state.  Trip/clear transitions
    (and only transitions) are reported through [on_transition], which the
    serve daemon forwards as typed {!Event.Health} trace events; {!degraded}
    is the exit-status-visible summary bit. *)

type verdict = Pass | Fail of string

type rule

val rule :
  name:string -> ?trip_after:int -> ?clear_after:int -> (unit -> verdict) -> rule
(** Defaults: [trip_after = 2], [clear_after = 2].  Use [trip_after:1]
    for conditions that are exact rather than noisy (e.g. conservation).
    @raise Invalid_argument if either threshold is < 1. *)

type event = { rule : string; tripped : bool; reason : string }
(** [tripped = true] carries the failing reason; [tripped = false] means
    the rule recovered. *)

type t

val create : ?on_transition:(event -> unit) -> rule list -> t

val evaluate : t -> unit
(** Run every rule once against the current window. *)

val degraded : t -> bool
(** True while any rule is tripped. *)

type view_state = {
  v_tripped : bool;
  v_consecutive_bad : int;
  v_trips : int;  (** lifetime trip transitions *)
  v_last_reason : string option;
}

val states : t -> (string * view_state) list
(** Per-rule state in rule-list order, for dashboards. *)
