type t = {
  scope : string;
  cap : int;
  buf : Event.t option array;
  mutable next : int; (* write position *)
  mutable len : int;
  mutable total : int;
}

let create ?(scope = "") ~cap () =
  if cap <= 0 then invalid_arg "Recorder.create: cap must be positive";
  { scope; cap; buf = Array.make cap None; next = 0; len = 0; total = 0 }

let record t ~slot ~who kind =
  let src = if t.scope = "" then who else t.scope ^ "/" ^ who in
  t.buf.(t.next) <- Some (Event.make ~src ~slot kind);
  t.next <- (t.next + 1) mod t.cap;
  if t.len < t.cap then t.len <- t.len + 1;
  t.total <- t.total + 1

let length t = t.len
let total t = t.total
let dropped t = t.total - t.len
let capacity t = t.cap

let oldest t = ((t.next - t.len) mod t.cap + t.cap) mod t.cap

let iter f t =
  let start = oldest t in
  for i = 0 to t.len - 1 do
    match t.buf.((start + i) mod t.cap) with
    | Some e -> f e
    | None -> assert false (* len counts filled slots *)
  done

let events t =
  let acc = ref [] in
  iter (fun e -> acc := e :: !acc) t;
  List.rev !acc

let dump t =
  let held = events t in
  let evicted = dropped t in
  if evicted = 0 then held
  else
    let slot =
      match held with e :: _ -> e.Event.slot | [] -> 0
    in
    Event.make ~src:t.scope ~slot (Event.Truncated { evicted }) :: held

let clear t =
  Array.fill t.buf 0 t.cap None;
  t.next <- 0;
  t.len <- 0;
  t.total <- 0
