(** The always-on flight recorder: a fixed-capacity struct-of-arrays event
    ring with an allocation-free record fast path.

    {!Recorder} keeps boxed {!Event.t}s and is meant for runs that asked
    for tracing; [Flight] is its black-box counterpart, cheap enough to
    leave on everywhere.  Events live in six unboxed int columns (kind
    tag, slot, source id, three payload words); the strings an event can
    carry — sources, reconfig knobs, health rules and reasons — go through
    an interning table once, so the steady-state [record] path allocates
    nothing.  When the ring is full, the oldest events are overwritten and
    counted; {!dump} prepends the same [Truncated] metadata marker the
    boxed recorder emits, so the forensics layer treats both identically.

    A ring is single-domain, like {!Recorder}: the engine that records
    into it must be the one that dumps it (the serve daemon dumps from the
    consumer domain only). *)

type t

val create : ?scope:string -> cap:int -> unit -> t
(** A ring holding the last [cap] events (rounded up to a power of two;
    {!capacity} reports the real size).  [scope] qualifies interned
    sources, as in {!Recorder.create}.
    @raise Invalid_argument when [cap <= 0]. *)

val scope : t -> string
val capacity : t -> int

val length : t -> int
(** Events currently held (≤ capacity). *)

val total : t -> int
(** Events ever recorded. *)

val dropped : t -> int
(** Events overwritten by ring wrap-around ([total - length]). *)

(** {2 Interning}

    Ids are dense, stable for the life of the ring ({!clear} keeps them),
    and private to it.  Engines intern their source name once at creation;
    the rare string-carrying events ([reconfig], [health]) intern their
    payloads on the slow path. *)

val intern : t -> string -> int
(** The id for source [who], scope-qualified like {!Recorder.record}
    (ring scope ["x=8"] + [who] ["LWD"] intern as ["x=8/LWD"]). *)

val name_of : t -> int -> string
(** @raise Invalid_argument on an id this ring never issued. *)

(** {2 Recording}

    One function per {!Event.kind}; every argument is an immediate int, so
    a call allocates nothing.  [src] is an id from {!intern}. *)

val arrival : t -> slot:int -> src:int -> dest:int -> unit
val accept : t -> slot:int -> src:int -> dest:int -> unit
val push_out : t -> slot:int -> src:int -> victim:int -> dest:int -> lost:int -> unit
val drop : t -> slot:int -> src:int -> dest:int -> value:int -> unit
val transmit : t -> slot:int -> src:int -> dest:int -> value:int -> latency:int -> unit
val transmit_bulk : t -> slot:int -> src:int -> dest:int -> count:int -> value:int -> unit
val flush : t -> slot:int -> src:int -> count:int -> unit
val slot_end : t -> slot:int -> src:int -> occupancy:int -> unit

val reconfig : t -> slot:int -> src:int -> what:string -> target:string -> unit
(** Interns [what]/[target]; allocation-free once both are known. *)

val health :
  t -> slot:int -> src:int -> rule:string -> tripped:bool -> reason:string -> unit

(** {2 Draining} *)

val iter : (Event.t -> unit) -> t -> unit
(** Oldest surviving event first, boxing each on the way out. *)

val events : t -> Event.t list

val dump : t -> Event.t list
(** Like {!events}, but when the ring has evicted events the list starts
    with a [Truncated {evicted}] marker whose [slot] is the oldest
    surviving slot and whose [src] is the ring's scope — the same contract
    as {!Recorder.dump}, so replay knows which slots are unverifiable. *)

val clear : t -> unit
(** Empty the ring and its eviction accounting, like {!Recorder.clear}
    (interned ids are kept — they stay valid across clears). *)
