(* A fixed-capacity struct-of-arrays event ring: the always-on flight
   recorder.  Six unboxed int columns (kind tag, slot, source id, three
   payload words) plus an interning table mapping the few strings an event
   can carry (sources, reconfig knobs, health rules) to dense ids.  The
   record fast path writes six ints and bumps three counters — no event
   record, no option, no closure — so engines can leave it on at full
   speed; events are boxed back into {!Event.t} only at dump time. *)

type t = {
  scope : string;
  cap : int; (* power of two *)
  mask : int;
  kind : int array;
  slot : int array;
  src : int array;
  a : int array;
  b : int array;
  c : int array;
  mutable next : int;
  mutable len : int;
  mutable total : int;
  (* interning: id -> string and string -> id.  Ids are stable for the
     life of the ring ([clear] keeps them), so engines intern once. *)
  mutable names : string array;
  mutable n_names : int;
  ids : (string, int) Hashtbl.t;
}

(* Kind tags, fixed by the binary trace format (doc/trace-format.md). *)
let tag_arrival = 0
let tag_accept = 1
let tag_push_out = 2
let tag_drop = 3
let tag_transmit = 4
let tag_transmit_bulk = 5
let tag_flush = 6
let tag_slot_end = 7
let tag_reconfig = 8
let tag_health = 9

(* tag 10 is [Truncated] — never recorded (it is synthesized by [dump]),
   but reserved here and in the binary trace format. *)

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(scope = "") ~cap () =
  if cap <= 0 then invalid_arg "Flight.create: cap must be positive";
  let cap = next_pow2 cap in
  {
    scope;
    cap;
    mask = cap - 1;
    kind = Array.make cap 0;
    slot = Array.make cap 0;
    src = Array.make cap 0;
    a = Array.make cap 0;
    b = Array.make cap 0;
    c = Array.make cap 0;
    next = 0;
    len = 0;
    total = 0;
    names = Array.make 8 "";
    n_names = 0;
    ids = Hashtbl.create 8;
  }

let scope t = t.scope
let capacity t = t.cap
let length t = t.len
let total t = t.total
let dropped t = t.total - t.len

(* [Hashtbl.find], not [find_opt]: the hit path must not allocate (an
   option cell per [reconfig]/[health] would belie the mli's claim). *)
let intern_raw t s =
  match Hashtbl.find t.ids s with
  | id -> id
  | exception Not_found ->
    let id = t.n_names in
    if id = Array.length t.names then begin
      let bigger = Array.make (2 * id) "" in
      Array.blit t.names 0 bigger 0 id;
      t.names <- bigger
    end;
    t.names.(id) <- s;
    t.n_names <- id + 1;
    Hashtbl.add t.ids s id;
    id

let intern t who =
  intern_raw t (if t.scope = "" then who else t.scope ^ "/" ^ who)

let name_of t id =
  if id < 0 || id >= t.n_names then
    invalid_arg (Printf.sprintf "Flight.name_of: unknown id %d" id)
  else t.names.(id)

let[@inline] record t ~slot ~src ~kind ~a ~b ~c =
  let i = t.next in
  Array.unsafe_set t.kind i kind;
  Array.unsafe_set t.slot i slot;
  Array.unsafe_set t.src i src;
  Array.unsafe_set t.a i a;
  Array.unsafe_set t.b i b;
  Array.unsafe_set t.c i c;
  t.next <- (i + 1) land t.mask;
  if t.len < t.cap then t.len <- t.len + 1;
  t.total <- t.total + 1

let[@inline] arrival t ~slot ~src ~dest =
  record t ~slot ~src ~kind:tag_arrival ~a:dest ~b:0 ~c:0

let[@inline] accept t ~slot ~src ~dest =
  record t ~slot ~src ~kind:tag_accept ~a:dest ~b:0 ~c:0

let[@inline] push_out t ~slot ~src ~victim ~dest ~lost =
  record t ~slot ~src ~kind:tag_push_out ~a:victim ~b:dest ~c:lost

let[@inline] drop t ~slot ~src ~dest ~value =
  record t ~slot ~src ~kind:tag_drop ~a:dest ~b:value ~c:0

let[@inline] transmit t ~slot ~src ~dest ~value ~latency =
  record t ~slot ~src ~kind:tag_transmit ~a:dest ~b:value ~c:latency

let[@inline] transmit_bulk t ~slot ~src ~dest ~count ~value =
  record t ~slot ~src ~kind:tag_transmit_bulk ~a:dest ~b:count ~c:value

let[@inline] flush t ~slot ~src ~count =
  record t ~slot ~src ~kind:tag_flush ~a:count ~b:0 ~c:0

let[@inline] slot_end t ~slot ~src ~occupancy =
  record t ~slot ~src ~kind:tag_slot_end ~a:occupancy ~b:0 ~c:0

let reconfig t ~slot ~src ~what ~target =
  record t ~slot ~src ~kind:tag_reconfig ~a:(intern_raw t what)
    ~b:(intern_raw t target) ~c:0

let health t ~slot ~src ~rule ~tripped ~reason =
  record t ~slot ~src ~kind:tag_health ~a:(intern_raw t rule)
    ~b:(if tripped then 1 else 0)
    ~c:(intern_raw t reason)

let kind_at t i =
  let a = t.a.(i) and b = t.b.(i) and c = t.c.(i) in
  match t.kind.(i) with
  | 0 -> Event.Arrival { dest = a }
  | 1 -> Event.Accept { dest = a }
  | 2 -> Event.Push_out { victim = a; dest = b; lost = c }
  | 3 -> Event.Drop { dest = a; value = b }
  | 4 -> Event.Transmit { dest = a; value = b; latency = c }
  | 5 -> Event.Transmit_bulk { dest = a; count = b; value = c }
  | 6 -> Event.Flush { count = a }
  | 7 -> Event.Slot_end { occupancy = a }
  | 8 -> Event.Reconfig { what = name_of t a; target = name_of t b }
  | 9 ->
    Event.Health { rule = name_of t a; tripped = b = 1; reason = name_of t c }
  | 10 -> Event.Truncated { evicted = a }
  | k -> invalid_arg (Printf.sprintf "Flight: corrupt kind tag %d" k)

let oldest t = (t.next - t.len) land t.mask

let iter f t =
  let start = oldest t in
  for i = 0 to t.len - 1 do
    let j = (start + i) land t.mask in
    f (Event.make ~src:(name_of t t.src.(j)) ~slot:t.slot.(j) (kind_at t j))
  done

let events t =
  let acc = ref [] in
  iter (fun e -> acc := e :: !acc) t;
  List.rev !acc

let dump t =
  let held = events t in
  let evicted = dropped t in
  if evicted = 0 then held
  else
    let slot = match held with e :: _ -> e.Event.slot | [] -> 0 in
    Event.make ~src:t.scope ~slot (Event.Truncated { evicted }) :: held

let clear t =
  t.next <- 0;
  t.len <- 0;
  t.total <- 0
