type kind =
  | Arrival of { dest : int }
  | Accept of { dest : int }
  | Push_out of { victim : int; dest : int; lost : int }
  | Drop of { dest : int; value : int }
  | Transmit of { dest : int; value : int; latency : int }
  | Transmit_bulk of { dest : int; count : int; value : int }
  | Flush of { count : int }
  | Slot_end of { occupancy : int }
  | Reconfig of { what : string; target : string }
  | Health of { rule : string; tripped : bool; reason : string }
  | Truncated of { evicted : int }

type t = { src : string; slot : int; kind : kind }

let make ~src ~slot kind = { src; slot; kind }

let kind_name = function
  | Arrival _ -> "arrival"
  | Accept _ -> "accept"
  | Push_out _ -> "push_out"
  | Drop _ -> "drop"
  | Transmit _ -> "transmit"
  | Transmit_bulk _ -> "transmit_bulk"
  | Flush _ -> "flush"
  | Slot_end _ -> "slot_end"
  | Reconfig _ -> "reconfig"
  | Health _ -> "health"
  | Truncated _ -> "truncated"

let payload = function
  | Arrival { dest } | Accept { dest } -> [ ("dest", Json.Int dest) ]
  | Push_out { victim; dest; lost } ->
    [
      ("victim", Json.Int victim);
      ("dest", Json.Int dest);
      ("lost", Json.Int lost);
    ]
  | Drop { dest; value } ->
    [ ("dest", Json.Int dest); ("value", Json.Int value) ]
  | Transmit { dest; value; latency } ->
    [
      ("dest", Json.Int dest);
      ("value", Json.Int value);
      ("latency", Json.Int latency);
    ]
  | Transmit_bulk { dest; count; value } ->
    [
      ("dest", Json.Int dest);
      ("count", Json.Int count);
      ("value", Json.Int value);
    ]
  | Flush { count } -> [ ("count", Json.Int count) ]
  | Slot_end { occupancy } -> [ ("occupancy", Json.Int occupancy) ]
  | Reconfig { what; target } ->
    [ ("what", Json.Str what); ("to", Json.Str target) ]
  | Health { rule; tripped; reason } ->
    [
      ("rule", Json.Str rule);
      ("state", Json.Str (if tripped then "tripped" else "ok"));
      ("reason", Json.Str reason);
    ]
  | Truncated { evicted } -> [ ("evicted", Json.Int evicted) ]

let to_json t =
  Json.obj
    (("ev", Json.Str (kind_name t.kind))
    :: ("slot", Json.Int t.slot)
    :: ("src", Json.Str t.src)
    :: payload t.kind)

(* Field sets per kind, for strict validation. *)
let fields_of_ev = function
  | "arrival" | "accept" -> Some [ "dest" ]
  | "push_out" -> Some [ "victim"; "dest"; "lost" ]
  | "drop" -> Some [ "dest"; "value" ]
  | "transmit" -> Some [ "dest"; "value"; "latency" ]
  | "transmit_bulk" -> Some [ "dest"; "count"; "value" ]
  | "flush" -> Some [ "count" ]
  | "slot_end" -> Some [ "occupancy" ]
  | "reconfig" -> Some [ "what"; "to" ]
  | "health" -> Some [ "rule"; "state"; "reason" ]
  | "truncated" -> Some [ "evicted" ]
  | _ -> None

let of_json line =
  let ( let* ) = Result.bind in
  let* fields = Json.parse_flat line in
  let int k =
    match List.assoc_opt k fields with
    | Some (Json.Int i) -> Ok i
    | Some _ -> Error (Printf.sprintf "field %S: expected an integer" k)
    | None -> Error (Printf.sprintf "missing field %S" k)
  in
  let str k =
    match List.assoc_opt k fields with
    | Some (Json.Str s) -> Ok s
    | Some _ -> Error (Printf.sprintf "field %S: expected a string" k)
    | None -> Error (Printf.sprintf "missing field %S" k)
  in
  let* ev = str "ev" in
  let* expected_payload =
    match fields_of_ev ev with
    | Some fs -> Ok fs
    | None -> Error (Printf.sprintf "unknown event kind %S" ev)
  in
  let allowed = "ev" :: "slot" :: "src" :: expected_payload in
  let* () =
    List.fold_left
      (fun acc (k, _) ->
        let* () = acc in
        if List.mem k allowed then Ok ()
        else Error (Printf.sprintf "unexpected field %S for event %S" k ev))
      (Ok ()) fields
  in
  let* slot = int "slot" in
  let* () = if slot < 0 then Error "negative slot" else Ok () in
  let* src = str "src" in
  let* kind =
    match ev with
    | "arrival" ->
      let* dest = int "dest" in
      Ok (Arrival { dest })
    | "accept" ->
      let* dest = int "dest" in
      Ok (Accept { dest })
    | "push_out" ->
      let* victim = int "victim" in
      let* dest = int "dest" in
      let* lost = int "lost" in
      Ok (Push_out { victim; dest; lost })
    | "drop" ->
      let* dest = int "dest" in
      let* value = int "value" in
      Ok (Drop { dest; value })
    | "transmit" ->
      let* dest = int "dest" in
      let* value = int "value" in
      let* latency = int "latency" in
      Ok (Transmit { dest; value; latency })
    | "transmit_bulk" ->
      let* dest = int "dest" in
      let* count = int "count" in
      let* value = int "value" in
      Ok (Transmit_bulk { dest; count; value })
    | "flush" ->
      let* count = int "count" in
      Ok (Flush { count })
    | "slot_end" ->
      let* occupancy = int "occupancy" in
      Ok (Slot_end { occupancy })
    | "reconfig" ->
      let* what = str "what" in
      let* target = str "to" in
      Ok (Reconfig { what; target })
    | "health" ->
      let* rule = str "rule" in
      let* state = str "state" in
      let* reason = str "reason" in
      let* tripped =
        match state with
        | "tripped" -> Ok true
        | "ok" -> Ok false
        | s -> Error (Printf.sprintf "field \"state\": unknown value %S" s)
      in
      Ok (Health { rule; tripped; reason })
    | "truncated" ->
      let* evicted = int "evicted" in
      Ok (Truncated { evicted })
    | _ -> assert false (* fields_of_ev already rejected it *)
  in
  Ok { src; slot; kind }

let pp ppf t = Format.pp_print_string ppf (to_json t)
