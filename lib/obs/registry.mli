(** Named counters, gauges and histograms with labeled JSONL snapshots.

    A registry is the single home for a run's aggregate statistics:
    instruments are registered by name, updated through their handles (an
    increment is one field write — cheap enough for per-packet hot paths),
    and read out as a deterministic name-sorted snapshot.  {!Smbm_sim}'s
    [Metrics] is a thin view over one registry per instance. *)

type t
type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Register (or retrieve) the counter [name].
    @raise Invalid_argument if [name] is registered with another kind. *)

val gauge : t -> string -> gauge

val histogram :
  t -> ?max_value:float -> ?buckets_per_decade:int -> string -> histogram
(** Log-bucketed histogram (see {!Smbm_prelude.Histogram}) paired with
    running moments; the optional arguments apply only on first
    registration. *)

(* ----- updates and reads ----- *)

val incr : counter -> unit
val add : counter -> int -> unit
(** @raise Invalid_argument on negative increments. *)

val counter_value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float
val observe : histogram -> float -> unit
val histogram_stats : histogram -> Smbm_prelude.Running_stats.t
val histogram_values : histogram -> Smbm_prelude.Histogram.t

(* ----- snapshots ----- *)

type sample =
  | Count of int
  | Level of float
  | Summary of {
      n : int;
      mean : float;
      p50 : float;
      p95 : float;
      p99 : float;
      max : float;
      buckets_per_decade : int;
      buckets : (int * int) list;
          (** Non-empty log buckets as [(index, count)], sorted by index —
              the full shape, so two cumulative snapshots can be diffed
              into a windowed distribution (see {!Rolling.Delta}). *)
    }

val snapshot : t -> (string * sample) list
(** All instruments, sorted by name. *)

val to_jsonl : ?labels:(string * string) list -> t -> string list
(** One flat JSON object per instrument
    ([{"metric":...,"type":...,...}]), with [labels] appended to every
    line; sorted by metric name.  Histogram lines carry the quantile
    summary plus ["buckets_per_decade"] and a compact ["buckets"] string
    ("index:count ..."). *)

val clear : t -> unit
(** Reset every instrument to its initial state (registrations survive). *)
