type error = {
  path : string;
  op : [ `Open | `Write | `Close ];
  message : string;
}

let error_to_string e =
  Printf.sprintf "%s: %s failed: %s" e.path
    (match e.op with `Open -> "open" | `Write -> "write" | `Close -> "close")
    e.message

type target =
  | Null
  | Channel of { oc : out_channel; owned : bool }

type t = {
  target : target;
  path : string;
  mutable closed : bool;
  mutable failed : error option;
}

let null = { target = Null; path = "<null>"; closed = false; failed = None }

let of_channel oc =
  {
    target = Channel { oc; owned = false };
    path = "<channel>";
    closed = false;
    failed = None;
  }

let open_file path =
  match open_out path with
  | oc ->
    Ok { target = Channel { oc; owned = true }; path; closed = false; failed = None }
  | exception Sys_error message -> Error { path; op = `Open; message }

let file path =
  match open_file path with
  | Ok t -> t
  | Error e -> raise (Sys_error e.message)

let is_null t = t.target = Null
let failure t = t.failed

(* Latch the first failure; later ones add no information. *)
let latch t op message =
  if t.failed = None then t.failed <- Some { path = t.path; op; message }

let line t s =
  match t.target with
  | Null -> ()
  | Channel { oc; _ } ->
    if t.closed then invalid_arg "Sink: write after close";
    if t.failed = None then (
      try
        output_string oc s;
        output_char oc '\n'
      with Sys_error message -> latch t `Write message)

let event t e = if not (is_null t) then line t (Event.to_json e)

let close t =
  match t.target with
  | Null -> ()
  | Channel { oc; owned } ->
    if not t.closed then begin
      t.closed <- true;
      try if owned then close_out oc else flush oc
      with Sys_error message -> latch t `Close message
    end

let close_result t =
  close t;
  match t.failed with None -> Ok () | Some e -> Error e

let trace_path_from_env () =
  match Sys.getenv_opt "SMBM_TRACE" with
  | Some "" | None -> None
  | Some path -> Some path
