type target =
  | Null
  | Channel of { oc : out_channel; owned : bool }

type t = { target : target; mutable closed : bool }

let null = { target = Null; closed = false }
let of_channel oc = { target = Channel { oc; owned = false }; closed = false }
let file path = { target = Channel { oc = open_out path; owned = true }; closed = false }
let is_null t = t.target = Null

let line t s =
  match t.target with
  | Null -> ()
  | Channel { oc; _ } ->
    if t.closed then invalid_arg "Sink: write after close";
    output_string oc s;
    output_char oc '\n'

let event t e = if not (is_null t) then line t (Event.to_json e)

let close t =
  match t.target with
  | Null -> ()
  | Channel { oc; owned } ->
    if not t.closed then begin
      t.closed <- true;
      if owned then close_out oc else flush oc
    end

let trace_path_from_env () =
  match Sys.getenv_opt "SMBM_TRACE" with
  | Some "" | None -> None
  | Some path -> Some path
