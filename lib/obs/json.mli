(** Minimal JSON support for the observability layer: enough to emit and
    parse the flat (non-nested) objects used by the JSONL trace and metrics
    schemas, with no external dependencies.

    Emission is deterministic: field order is the caller's, integers print
    as integers, strings with the standard escapes, and floats so that
    {!parse_flat} reads back exactly the same float (17 significant
    digits, always marked as a float — [2.] prints as ["2.0"], [-0.] as
    ["-0.0"] — with infinities as overflowing exponents [±1e999] and nan
    as the literal ["nan"]). *)

type value = Int of int | Float of float | Str of string | Bool of bool

val escape : string -> string
(** JSON string-escape the contents (without surrounding quotes). *)

val value_to_string : value -> string

val obj : (string * value) list -> string
(** One flat JSON object on a single line, fields in the given order. *)

val parse_flat : string -> ((string * value) list, string) result
(** Parse a single flat JSON object.  Rejects nested objects and arrays,
    duplicate keys, and trailing garbage; errors carry a byte position. *)
