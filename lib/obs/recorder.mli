(** Bounded ring-buffer event recorder.

    A recorder keeps the last [cap] events in O(cap) memory, so tracing a
    million-slot run costs the same as tracing a thousand-slot one; the
    total and evicted counts are retained so a truncated trace is
    detectable.  Recording is purely in-memory and allocation per event is
    one block — with no recorder attached, engines skip the call entirely,
    so the observer effect on results is zero either way (events never feed
    back into decisions). *)

type t

val create : ?scope:string -> cap:int -> unit -> t
(** [scope], when non-empty, prefixes every event's [src] as
    ["scope/who"] — used to qualify instance names with their sweep-point
    context.  @raise Invalid_argument if [cap <= 0]. *)

val record : t -> slot:int -> who:string -> Event.kind -> unit
(** Append an event, evicting the oldest when full. *)

val length : t -> int
(** Events currently held (≤ capacity). *)

val total : t -> int
(** Events ever recorded. *)

val dropped : t -> int
(** [total - length]: events evicted by the capacity bound. *)

val capacity : t -> int

val events : t -> Event.t list
(** Held events, oldest first. *)

val dump : t -> Event.t list
(** {!events}, preceded — iff the capacity bound evicted anything — by a
    [Truncated] metadata event declaring the eviction count, stamped with
    the recorder's scope and the oldest surviving slot.  Downstream
    consumers ({!Smbm_forensics}, [trace-validate]) use the marker to tell
    a deliberately bounded trace from a corrupted one. *)

val iter : (Event.t -> unit) -> t -> unit
(** [iter f t] applies [f] oldest-first without building a list. *)

val clear : t -> unit
