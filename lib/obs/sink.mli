(** Pluggable observability output: where JSONL lines go.

    A sink is a line-oriented output — a file the sink owns, a borrowed
    channel, or nothing.  The null sink makes instrumented code paths free
    to leave in place.

    {2 Failure handling}

    I/O failures are surfaced as typed values, never as exceptions thrown
    from the middle of a run: {!open_file} returns a [result], and a write
    or close failure (disk full, closed descriptor, ...) latches the first
    {!error} on the sink — subsequent writes become silent no-ops and the
    caller inspects {!failure} (or {!close_result}) when convenient.  A
    long-running daemon therefore cannot be killed mid-slot by its metrics
    file.  [Invalid_argument] is still raised for programmer errors
    (writing after {!close}). *)

type t

type error = {
  path : string;  (** the sink's file path, or ["<channel>"] *)
  op : [ `Open | `Write | `Close ];
  message : string;  (** the underlying [Sys_error] message *)
}

val error_to_string : error -> string

val null : t
(** Discards everything. *)

val of_channel : out_channel -> t
(** Borrow a channel ({!close} flushes but does not close it). *)

val open_file : string -> (t, error) result
(** Open (truncate) a file the sink will own; never raises. *)

val file : string -> t
(** Legacy raising form of {!open_file}.
    @raise Sys_error as [open_out] does. *)

val is_null : t -> bool

val line : t -> string -> unit
(** Write one line (a trailing newline is appended).  A [Sys_error] from
    the underlying channel is latched as the sink's {!failure} instead of
    raised; once failed, further writes are dropped.
    @raise Invalid_argument when the sink was {!close}d. *)

val event : t -> Event.t -> unit
(** [line t (Event.to_json e)]. *)

val failure : t -> error option
(** The first write/close error latched so far, if any. *)

val close : t -> unit
(** Flush, and close owned files.  Idempotent; writing after [close]
    raises [Invalid_argument].  I/O errors are latched, not raised. *)

val close_result : t -> (unit, error) result
(** {!close}, then report the sink's overall fate: [Error] if any write or
    the close itself failed. *)

val trace_path_from_env : unit -> string option
(** The [SMBM_TRACE] environment variable, when set and non-empty. *)
