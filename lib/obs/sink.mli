(** Pluggable observability output: where JSONL lines go.

    A sink is a line-oriented output — a file the sink owns, a borrowed
    channel, or nothing.  The null sink makes instrumented code paths free
    to leave in place. *)

type t

val null : t
(** Discards everything. *)

val of_channel : out_channel -> t
(** Borrow a channel ({!close} flushes but does not close it). *)

val file : string -> t
(** Open (truncate) a file; {!close} closes it.
    @raise Sys_error as [open_out] does. *)

val is_null : t -> bool

val line : t -> string -> unit
(** Write one line (a trailing newline is appended). *)

val event : t -> Event.t -> unit
(** [line t (Event.to_json e)]. *)

val close : t -> unit
(** Flush, and close owned files.  Idempotent; writing after [close]
    raises [Invalid_argument]. *)

val trace_path_from_env : unit -> string option
(** The [SMBM_TRACE] environment variable, when set and non-empty. *)
