(** Terminal progress and dashboard primitives.

    {!make} is the stderr progress line shaped for {!Smbm_par.Pool}'s
    [on_tick]: call the returned function with the completed count and it
    redraws ["label: n/total"] in place, ending the line at [total].
    Thread-safe in the sense that each call is a single atomic-enough
    write; ticks go to stderr so stdout stays diffable.

    The rest are the building blocks of `smbm_cli watch`'s refreshing
    dashboard: a textual gauge bar and the ANSI control strings it uses to
    redraw in place. *)

val make : ?out:out_channel -> label:string -> total:int -> unit -> int -> unit

val bar : ?width:int -> float -> string
(** [bar frac] renders a [\[###...\]] gauge, [frac] clamped to [0, 1]
    (default [width] 24 cells). *)

val clear_screen : string
(** ANSI: clear the whole screen and move the cursor home. *)

val home : string
(** ANSI: move the cursor home without clearing (redraw-in-place). *)

val erase_below : string
(** ANSI: erase from the cursor to the end of the screen (clears stale
    tail lines after a shorter redraw). *)
