(** Stderr progress line, shaped for {!Smbm_par.Pool}'s [on_tick]: call the
    returned function with the completed count and it redraws
    ["label: n/total"] in place, ending the line at [total].  Thread-safe
    in the sense that each call is a single atomic-enough write; ticks go
    to stderr so stdout stays diffable. *)

val make : ?out:out_channel -> label:string -> total:int -> unit -> int -> unit
