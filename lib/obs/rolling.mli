(** Sliding-window counters and histograms over a fixed ring of time
    buckets.

    A window of [w] seconds is split into [buckets] equal cells; every
    write lands in the cell of its instant and {e advancing} the window —
    done implicitly by every operation — clears at most [buckets] stale
    cells no matter how far the clock jumped, so keeping the window
    current is amortized O(1).

    Every operation takes the caller's clock as [~now]: the module never
    reads wall time, which makes window arithmetic deterministic under an
    injected clock (tests) and free under the timestamp the caller already
    took (the serve daemon's slot loop).

    {!Delta} is the companion for {e cumulative} instruments: it diffs two
    {!Registry.snapshot}s taken [dt] seconds apart into per-counter rates
    and windowed histogram quantiles (via the bucket counts snapshots now
    carry), which is how `smbm_cli watch` computes live rates client-side
    from nothing but the stats socket. *)

type t

val create : window:float -> ?buckets:int -> unit -> t
(** [create ~window ()] covers the trailing [window] seconds with
    [buckets] cells (default 10; resolution = [window /. buckets]).
    @raise Invalid_argument if [window <= 0] or [buckets < 1]. *)

type counter
type histogram

val counter : t -> string -> counter
(** Register (or retrieve) the window counter [name]. *)

val histogram : t -> ?buckets_per_decade:int -> string -> histogram
(** Register (or retrieve) a log-bucketed window histogram
    ([buckets_per_decade] applies on first registration only). *)

val advance : t -> now:float -> unit
(** Expire cells older than the window as of [now].  Implicit in every
    other operation; exposed for tests.  A clock that runs backwards is
    benign: writes keep landing in the freshest cell. *)

val incr : counter -> now:float -> unit
val add : counter -> now:float -> int -> unit

val total : counter -> now:float -> int
(** Sum over the live window. *)

val rate : counter -> now:float -> float
(** [total /. covered] where [covered] is the window seconds actually
    observed so far (clamped to one cell width at startup so early rates
    are finite, and to the window once it has filled). *)

val span : t -> now:float -> float
(** The covered-seconds denominator used by {!rate}. *)

val observe : histogram -> now:float -> float -> unit

val hist_count : histogram -> now:float -> int
(** Observations in the live window. *)

val quantile : histogram -> now:float -> float -> float
(** Windowed quantile, interpolated over the merged live-cell buckets
    (see {!Smbm_prelude.Histogram.quantile_of_buckets}); 0 when the
    window is empty.
    @raise Invalid_argument for [q] outside [0, 1]. *)

(** Rates from two cumulative {!Registry} snapshots taken [dt] apart. *)
module Delta : sig
  type t

  val diff :
    dt:float ->
    earlier:(string * Registry.sample) list ->
    later:(string * Registry.sample) list ->
    t
  (** Instruments present only in [later] diff against zero; gauges are
      skipped (levels are not diffable); counter and bucket regressions
      (a racy snapshot pair) clamp to zero.
      @raise Invalid_argument if [dt <= 0]. *)

  val names : t -> string list

  val delta : t -> string -> int option
  (** Counter increase over the interval; [None] for non-counters. *)

  val rate : t -> string -> float option
  (** [delta /. dt]. *)

  val hist_count : t -> string -> int option
  (** Histogram observations during the interval. *)

  val quantile : t -> string -> float -> float option
  (** Quantile of the interval's observations, reconstructed from bucket
      count differences. *)
end
