(** Nested wall + CPU timers.

    A span collector accumulates completed spans; {!with_span} times a
    scope and records it with its nesting depth (inner spans complete, and
    therefore appear, before their parents).  Collectors are mutex-guarded,
    so worker domains can record into a shared collector — the nesting
    depth is then the collector-global one, which is what a pool's
    flat task spans use (depth 0).

    Wall time comes from [Unix.gettimeofday]; CPU time from [Sys.time],
    which on OCaml 5 sums over every domain of the process — a parallel
    phase's [cpu] can legitimately exceed its [wall].  Span timings are
    wall-clock-dependent by nature and therefore never enter event traces;
    they are reported on stderr or behind strippable [[time]] prefixes. *)

type record = { name : string; depth : int; wall : float; cpu : float }

type t

val create : unit -> t

val with_span : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk, recording a span even when it raises. *)

val add : t -> name:string -> ?depth:int -> wall:float -> cpu:float -> unit -> unit
(** Record an externally measured span (e.g. a pool task's run time, which
    has no meaningful per-domain CPU reading — pass [cpu:0.]). *)

val records : t -> record list
(** Completion order. *)

val clear : t -> unit

type agg = {
  count : int;
  wall : float;  (** total *)
  wall_mean : float;
  wall_max : float;
  cpu : float;  (** total *)
}

val aggregate : t -> (string * agg) list
(** Per-name aggregates, sorted by name — the data behind {!report}, in a
    machine-readable form (the serve daemon's [spans] stats answer). *)

val report : Format.formatter -> t -> unit
(** Aggregate by name (count, wall total/mean/max, cpu total), one line per
    name, sorted by name. *)

val timed : string -> (unit -> 'a) -> 'a * record
(** Standalone measurement without a collector. *)
