(** Typed per-slot switch events and their JSONL codec.

    One event is one line of a trace file: a flat JSON object with fixed
    field order ([ev], [slot], [src], then the kind's payload), so traces
    are diffable and bit-stable.  Everything in an event is derived from
    simulation state (slot indices, ports, occupancies, latencies measured
    in slots) — never from wall-clock time — so a trace is deterministic in
    the run's seed and parameters, independent of scheduling. *)

type kind =
  | Arrival of { dest : int }  (** a packet was offered to the switch *)
  | Accept of { dest : int }  (** the arrival was admitted *)
  | Push_out of { victim : int; dest : int }
      (** queue [victim] lost a packet to make room for an arrival to
          [dest]; always followed by the corresponding [Accept] *)
  | Drop of { dest : int }  (** the arrival was rejected *)
  | Transmit of { dest : int; value : int; latency : int }
      (** a packet completed; [latency] in slots since its arrival *)
  | Slot_end of { occupancy : int }
      (** end of the slot's transmission phase, buffer population *)

type t = { src : string; slot : int; kind : kind }
(** [src] identifies the emitting instance, optionally qualified by the
    recorder's scope (e.g. ["x=8/LWD"]). *)

val make : src:string -> slot:int -> kind -> t
val kind_name : kind -> string

val to_json : t -> string
(** One line of JSONL, no trailing newline. *)

val of_json : string -> (t, string) result
(** Strict inverse of {!to_json}: unknown [ev] values, missing or
    ill-typed fields, extra fields, and malformed JSON are all errors. *)

val pp : Format.formatter -> t -> unit
