(** Typed per-slot switch events and their JSONL codec.

    One event is one line of a trace file: a flat JSON object with fixed
    field order ([ev], [slot], [src], then the kind's payload), so traces
    are diffable and bit-stable.  Everything in an event is derived from
    simulation state (slot indices, ports, occupancies, latencies measured
    in slots) — never from wall-clock time — so a trace is deterministic in
    the run's seed and parameters, independent of scheduling.

    The schema carries enough state to make traces {e replayable}: from a
    complete stream, {!Smbm_forensics.Replay} reconstructs per-port
    occupancy, buffer fill and every aggregate counter, and certifies them
    against the recorded [slot_end] occupancies. *)

type kind =
  | Arrival of { dest : int }  (** a packet was offered to the switch *)
  | Accept of { dest : int }  (** the arrival was admitted *)
  | Push_out of { victim : int; dest : int; lost : int }
      (** queue [victim] lost a packet to make room for an arrival to
          [dest]; always followed by the corresponding [Accept].  [lost] is
          the objective lost with the evicted packet: 1 in the processing
          model (one transmission), the packet's value in the value model.
          In single-priority-queue reference traces ({!Smbm_sim.Opt_ref})
          [victim] is the evicted {e bag key} (residual work, resp. value),
          not a port index. *)
  | Drop of { dest : int; value : int }
      (** the arrival was rejected; [value] is the objective lost with it
          (1 in the processing model, the arrival's value otherwise) *)
  | Transmit of { dest : int; value : int; latency : int }
      (** a packet completed; [latency] in slots since its arrival *)
  | Transmit_bulk of { dest : int; count : int; value : int }
      (** [count] packets of total objective [value] completed in one
          transmission phase without per-packet latency attribution —
          emitted by reference solvers ({!Smbm_sim.Opt_ref},
          {!Smbm_sim.Exact_opt}).  [dest] is the serving port, or [-1] when
          the reference holds one aggregate queue. *)
  | Flush of { count : int }
      (** the simulator's periodic flushout discarded all [count] buffered
          packets *)
  | Slot_end of { occupancy : int }
      (** end of the slot's transmission phase, buffer population *)
  | Reconfig of { what : string; target : string }
      (** a live reconfiguration was applied at a slot boundary by the
          {!Smbm_serve} daemon: [what] names the knob (["policy"],
          ["buffer"]) and [target] the new setting (a policy name, the new B
          as a decimal string).  Carries no switch state: buffered packets
          survive a reconfiguration by contract, so counters are unaffected
          and replay treats it as an annotation. *)
  | Health of { rule : string; tripped : bool; reason : string }
      (** a {!Smbm_obs.Health} watchdog transition observed by the
          {!Smbm_serve} daemon: [rule] names the watchdog, [tripped] its new
          state, [reason] the failing condition (or ["recovered"]).  Like
          [Reconfig], an annotation: carries no switch state and is
          counter-neutral in replay. *)
  | Truncated of { evicted : int }
      (** trace metadata, not a switch event: the recording ring evicted
          [evicted] older events before this line.  Emitted as the first
          line of a scope's dump; [slot] is the oldest surviving slot, so
          slots before it are unverifiable; [src] is the recorder's scope. *)

type t = { src : string; slot : int; kind : kind }
(** [src] identifies the emitting instance, optionally qualified by the
    recorder's scope (e.g. ["x=8/LWD"]). *)

val make : src:string -> slot:int -> kind -> t
val kind_name : kind -> string

val to_json : t -> string
(** One line of JSONL, no trailing newline. *)

val of_json : string -> (t, string) result
(** Strict inverse of {!to_json}: unknown [ev] values, missing or
    ill-typed fields, extra fields, and malformed JSON are all errors. *)

val pp : Format.formatter -> t -> unit
