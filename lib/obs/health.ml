type verdict = Pass | Fail of string

type rule = {
  name : string;
  trip_after : int;
  clear_after : int;
  check : unit -> verdict;
}

type state = {
  srule : rule;
  mutable tripped : bool;
  mutable bad : int; (* consecutive failing evaluations *)
  mutable good : int; (* consecutive passing evaluations *)
  mutable trips : int; (* lifetime trip transitions *)
  mutable last_reason : string option;
}

type event = { rule : string; tripped : bool; reason : string }

type t = { on_transition : event -> unit; states : state list }

let rule ~name ?(trip_after = 2) ?(clear_after = 2) check =
  if trip_after < 1 then invalid_arg "Health.rule: trip_after < 1";
  if clear_after < 1 then invalid_arg "Health.rule: clear_after < 1";
  { name; trip_after; clear_after; check }

let create ?(on_transition = fun _ -> ()) rules =
  {
    on_transition;
    states =
      List.map
        (fun r ->
          {
            srule = r;
            tripped = false;
            bad = 0;
            good = 0;
            trips = 0;
            last_reason = None;
          })
        rules;
  }

(* One evaluation per window: a rule trips only after [trip_after]
   consecutive failing windows and clears only after [clear_after]
   consecutive passing ones, so a single bad (or good) window never flaps
   the state.  Transitions — and only transitions — reach
   [on_transition]. *)
let evaluate t =
  List.iter
    (fun s ->
      match s.srule.check () with
      | Fail reason ->
        s.bad <- s.bad + 1;
        s.good <- 0;
        s.last_reason <- Some reason;
        if (not s.tripped) && s.bad >= s.srule.trip_after then begin
          s.tripped <- true;
          s.trips <- s.trips + 1;
          t.on_transition { rule = s.srule.name; tripped = true; reason }
        end
      | Pass ->
        s.good <- s.good + 1;
        s.bad <- 0;
        if s.tripped && s.good >= s.srule.clear_after then begin
          s.tripped <- false;
          t.on_transition
            { rule = s.srule.name; tripped = false; reason = "recovered" }
        end)
    t.states

let degraded t = List.exists (fun (s : state) -> s.tripped) t.states

type view_state = {
  v_tripped : bool;
  v_consecutive_bad : int;
  v_trips : int;
  v_last_reason : string option;
}

let states t =
  List.map
    (fun (s : state) ->
      ( s.srule.name,
        {
          v_tripped = s.tripped;
          v_consecutive_bad = s.bad;
          v_trips = s.trips;
          v_last_reason = s.last_reason;
        } ))
    t.states
