module H = Smbm_prelude.Histogram
module Rs = Smbm_prelude.Running_stats

type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable level : float }
type histogram = { h_name : string; hist : H.t; stats : Rs.t }

type instrument = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { mutable instruments : (string * instrument) list (* newest first *) }

let create () = { instruments = [] }

let register t name make =
  match List.assoc_opt name t.instruments with
  | Some existing -> existing
  | None ->
    let i = make () in
    t.instruments <- (name, i) :: t.instruments;
    i

let kind_error name =
  invalid_arg
    (Printf.sprintf "Registry: %S is already registered with another kind" name)

let counter t name =
  match register t name (fun () -> Counter { c_name = name; count = 0 }) with
  | Counter c -> c
  | Gauge _ | Histogram _ -> kind_error name

let gauge t name =
  match register t name (fun () -> Gauge { g_name = name; level = 0.0 }) with
  | Gauge g -> g
  | Counter _ | Histogram _ -> kind_error name

let histogram t ?max_value ?buckets_per_decade name =
  match
    register t name (fun () ->
        Histogram
          {
            h_name = name;
            hist = H.create ?max_value ?buckets_per_decade ();
            stats = Rs.create ();
          })
  with
  | Histogram h -> h
  | Counter _ | Gauge _ -> kind_error name

let incr c = c.count <- c.count + 1

let add c n =
  if n < 0 then invalid_arg ("Registry: negative increment on " ^ c.c_name);
  c.count <- c.count + n

let counter_value c = c.count
let set g x = g.level <- x
let gauge_value g = g.level

let observe h x =
  H.add h.hist x;
  Rs.add h.stats x

let histogram_stats h = h.stats
let histogram_values h = h.hist

type sample =
  | Count of int
  | Level of float
  | Summary of {
      n : int;
      mean : float;
      p50 : float;
      p95 : float;
      p99 : float;
      max : float;
      buckets_per_decade : int;
      buckets : (int * int) list;
    }

let sample_of = function
  | Counter c -> Count c.count
  | Gauge g -> Level g.level
  | Histogram h ->
    Summary
      {
        n = H.count h.hist;
        mean = Rs.mean h.stats;
        p50 = H.quantile h.hist 0.5;
        p95 = H.quantile h.hist 0.95;
        p99 = H.quantile h.hist 0.99;
        max = H.max_seen h.hist;
        buckets_per_decade = H.buckets_per_decade h.hist;
        buckets = H.buckets h.hist;
      }

let snapshot t =
  t.instruments
  |> List.map (fun (name, i) -> (name, sample_of i))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_jsonl ?(labels = []) t =
  let label_fields = List.map (fun (k, v) -> (k, Json.Str v)) labels in
  List.map
    (fun (name, sample) ->
      let fields =
        match sample with
        | Count v -> [ ("type", Json.Str "counter"); ("value", Json.Int v) ]
        | Level v -> [ ("type", Json.Str "gauge"); ("value", Json.Float v) ]
        | Summary { n; mean; p50; p95; p99; max; buckets_per_decade; buckets }
          ->
          (* The JSONL codec is flat (no arrays), so the bucket counts ride
             along as a compact "index:count ..." string — enough to
             reconstruct windowed distributions by diffing two snapshots. *)
          let bucket_str =
            buckets
            |> List.map (fun (i, c) -> Printf.sprintf "%d:%d" i c)
            |> String.concat " "
          in
          [
            ("type", Json.Str "histogram");
            ("count", Json.Int n);
            ("mean", Json.Float mean);
            ("p50", Json.Float p50);
            ("p95", Json.Float p95);
            ("p99", Json.Float p99);
            ("max", Json.Float max);
            ("buckets_per_decade", Json.Int buckets_per_decade);
            ("buckets", Json.Str bucket_str);
          ]
      in
      Json.obj ((("metric", Json.Str name) :: fields) @ label_fields))
    (snapshot t)

let clear t =
  List.iter
    (fun (_, i) ->
      match i with
      | Counter c -> c.count <- 0
      | Gauge g -> g.level <- 0.0
      | Histogram h ->
        H.clear h.hist;
        Rs.clear h.stats)
    t.instruments
