type value = Int of int | Float of float | Str of string | Bool of bool

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Floats must parse back as floats: "%.17g" alone prints 2.0 as "2"
   (re-read as Int) and infinities as "inf" (not JSON at all).  Integral
   values keep a ".0" suffix, infinities ride on an overflowing exponent
   (float_of_string "1e999" = infinity), and nan gets a literal the parser
   knows — so [Float f |> value_to_string |> parse] is the identity on
   every float, including [-0.]. *)
let float_to_string f =
  if f <> f then "nan"
  else if f = infinity then "1e999"
  else if f = neg_infinity then "-1e999"
  else
    let s = Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let value_to_string = function
  | Int i -> string_of_int i
  | Float f -> float_to_string f
  | Str s -> "\"" ^ escape s ^ "\""
  | Bool b -> if b then "true" else "false"

let obj fields =
  let field (k, v) = "\"" ^ escape k ^ "\":" ^ value_to_string v in
  "{" ^ String.concat "," (List.map field fields) ^ "}"

(* ----- parser ----- *)

exception Bad of int * string

let parse_flat line =
  let n = String.length line in
  let pos = ref 0 in
  let error msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match line.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> error (Printf.sprintf "expected %C, found %C" c c')
    | None -> error (Printf.sprintf "expected %C, found end of input" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | None -> error "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            if !pos + 4 > n then error "truncated \\u escape";
            let hex = String.sub line !pos 4 in
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> error ("invalid \\u escape: " ^ hex)
            in
            pos := !pos + 4;
            (* UTF-8 encode the code point (BMP only, which covers
               everything this layer ever emits). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
          | c -> error (Printf.sprintf "invalid escape \\%c" c));
          loop ())
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char line.[!pos] do
      advance ()
    done;
    let s = String.sub line start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s
    in
    if is_float then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> error ("invalid number: " ^ s)
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> error ("invalid number: " ^ s)
  in
  let parse_value () =
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some 't' ->
      if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
        pos := !pos + 4;
        Bool true
      end
      else error "invalid literal"
    | Some 'f' ->
      if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
        pos := !pos + 5;
        Bool false
      end
      else error "invalid literal"
    | Some 'n' ->
      if !pos + 3 <= n && String.sub line !pos 3 = "nan" then begin
        pos := !pos + 3;
        Float nan
      end
      else error "invalid literal"
    | Some ('{' | '[') -> error "nested values are not part of the schema"
    | Some c -> error (Printf.sprintf "unexpected %C" c)
    | None -> error "unexpected end of input"
  in
  match
    skip_ws ();
    expect '{';
    skip_ws ();
    let fields = ref [] in
    (match peek () with
    | Some '}' -> advance ()
    | _ ->
      let rec members () =
        skip_ws ();
        let key = parse_string () in
        if List.mem_assoc key !fields then error ("duplicate key " ^ key);
        skip_ws ();
        expect ':';
        skip_ws ();
        let v = parse_value () in
        fields := (key, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          members ()
        | Some '}' -> advance ()
        | Some c -> error (Printf.sprintf "expected ',' or '}', found %C" c)
        | None -> error "unterminated object"
      in
      members ());
    skip_ws ();
    if !pos <> n then error "trailing garbage after object";
    List.rev !fields
  with
  | fields -> Ok fields
  | exception Bad (at, msg) ->
    Error (Printf.sprintf "byte %d: %s" at msg)
