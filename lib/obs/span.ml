type record = { name : string; depth : int; wall : float; cpu : float }

type t = {
  mutex : Mutex.t;
  mutable depth : int;
  mutable recorded : record list; (* newest first *)
}

let create () = { mutex = Mutex.create (); depth = 0; recorded = [] }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let add t ~name ?(depth = 0) ~wall ~cpu () =
  locked t (fun () -> t.recorded <- { name; depth; wall; cpu } :: t.recorded)

let with_span t name f =
  let depth =
    locked t (fun () ->
        let d = t.depth in
        t.depth <- d + 1;
        d)
  in
  let w0 = Unix.gettimeofday () and c0 = Sys.time () in
  Fun.protect
    ~finally:(fun () ->
      let wall = Unix.gettimeofday () -. w0 and cpu = Sys.time () -. c0 in
      locked t (fun () ->
          t.depth <- t.depth - 1;
          t.recorded <- { name; depth; wall; cpu } :: t.recorded))
    f

let records t = locked t (fun () -> List.rev t.recorded)
let clear t = locked t (fun () -> t.recorded <- [])

type agg = {
  count : int;
  wall : float;
  wall_mean : float;
  wall_max : float;
  cpu : float;
}

let aggregate t =
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let count, wall, wall_max, cpu =
        Option.value (Hashtbl.find_opt by_name r.name) ~default:(0, 0.0, 0.0, 0.0)
      in
      Hashtbl.replace by_name r.name
        (count + 1, wall +. r.wall, Float.max wall_max r.wall, cpu +. r.cpu))
    (records t);
  Hashtbl.fold
    (fun name (count, wall, wall_max, cpu) acc ->
      ( name,
        {
          count;
          wall;
          wall_mean = wall /. float_of_int count;
          wall_max;
          cpu;
        } )
      :: acc)
    by_name []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let report ppf t =
  List.iter
    (fun (name, a) ->
      Format.fprintf ppf
        "%s: count %d, wall %.3fs (mean %.3fs, max %.3fs), cpu %.3fs@." name
        a.count a.wall a.wall_mean a.wall_max a.cpu)
    (aggregate t)

let timed name f =
  let w0 = Unix.gettimeofday () and c0 = Sys.time () in
  let r = f () in
  let wall = Unix.gettimeofday () -. w0 and cpu = Sys.time () -. c0 in
  (r, { name; depth = 0; wall; cpu })
