module H = Smbm_prelude.Histogram

(* A rolling window is a fixed ring of time buckets of equal width.  Every
   operation takes the caller's clock as [~now] — the module never reads
   wall time itself, so tests drive it with injected instants and the
   daemon passes the timestamp it already took for the slot.  Advancing
   clears at most [nbuckets] cells regardless of how far the clock jumped,
   so the amortized cost of keeping the window current is O(1). *)

type hdata = { bpd : int; hcells : H.t array }

type t = {
  window : float; (* seconds covered by the whole ring *)
  width : float; (* seconds per bucket *)
  n : int;
  mutable epoch : int; (* floor (now / width) of the freshest bucket *)
  mutable started : bool;
  mutable start : float; (* first instant ever seen *)
  mutable counters : (string * int array) list;
  mutable histograms : (string * hdata) list;
}

type counter = { c_roll : t; c_cells : int array }
type histogram = { h_roll : t; h_data : hdata }

let create ~window ?(buckets = 10) () =
  if window <= 0.0 then invalid_arg "Rolling.create: window <= 0";
  if buckets < 1 then invalid_arg "Rolling.create: buckets < 1";
  {
    window;
    width = window /. float_of_int buckets;
    n = buckets;
    epoch = 0;
    started = false;
    start = 0.0;
    counters = [];
    histograms = [];
  }

let counter t name =
  match List.assoc_opt name t.counters with
  | Some cells -> { c_roll = t; c_cells = cells }
  | None ->
    let cells = Array.make t.n 0 in
    t.counters <- (name, cells) :: t.counters;
    { c_roll = t; c_cells = cells }

let histogram t ?(buckets_per_decade = 10) name =
  match List.assoc_opt name t.histograms with
  | Some hd -> { h_roll = t; h_data = hd }
  | None ->
    let hd =
      {
        bpd = buckets_per_decade;
        hcells = Array.init t.n (fun _ -> H.create ~buckets_per_decade ());
      }
    in
    t.histograms <- (name, hd) :: t.histograms;
    { h_roll = t; h_data = hd }

let epoch_of t now = int_of_float (Float.floor (now /. t.width))

let clear_cell t idx =
  List.iter (fun (_, cells) -> cells.(idx) <- 0) t.counters;
  List.iter (fun (_, hd) -> H.clear hd.hcells.(idx)) t.histograms

let advance t ~now =
  let e = epoch_of t now in
  if not t.started then begin
    t.started <- true;
    t.start <- now;
    t.epoch <- e
  end
  else if e > t.epoch then begin
    (* Clear every bucket the clock skipped over; a jump past the whole
       window wipes all [n] cells and no more. *)
    let steps = min (e - t.epoch) t.n in
    for k = 1 to steps do
      clear_cell t ((t.epoch + k) mod t.n)
    done;
    t.epoch <- e
  end
(* [e < t.epoch] (a clock running backwards) is benign: writes keep landing
   in the freshest bucket. *)

let span t ~now =
  if not t.started then t.width
  else Float.max t.width (Float.min t.window (now -. t.start))

let cell_index t = ((t.epoch mod t.n) + t.n) mod t.n

let add c ~now k =
  advance c.c_roll ~now;
  let i = cell_index c.c_roll in
  c.c_cells.(i) <- c.c_cells.(i) + k

let incr c ~now = add c ~now 1

let total c ~now =
  advance c.c_roll ~now;
  Array.fold_left ( + ) 0 c.c_cells

let rate c ~now = float_of_int (total c ~now) /. span c.c_roll ~now

let observe h ~now x =
  advance h.h_roll ~now;
  H.add h.h_data.hcells.(cell_index h.h_roll) x

let hist_count h ~now =
  advance h.h_roll ~now;
  Array.fold_left (fun acc hist -> acc + H.count hist) 0 h.h_data.hcells

let merged_buckets h =
  let tbl = Hashtbl.create 32 in
  Array.iter
    (fun hist ->
      List.iter
        (fun (i, c) ->
          Hashtbl.replace tbl i
            (c + Option.value ~default:0 (Hashtbl.find_opt tbl i)))
        (H.buckets hist))
    h.h_data.hcells;
  Hashtbl.fold (fun i c acc -> (i, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let quantile h ~now q =
  advance h.h_roll ~now;
  H.quantile_of_buckets ~buckets_per_decade:h.h_data.bpd (merged_buckets h) q

(* ----- snapshot diffing ----- *)

module Delta = struct
  type entry =
    | Dcount of int
    | Dhist of { bpd : int; dbuckets : (int * int) list; dn : int }

  type t = { dt : float; entries : (string * entry) list }

  let diff_buckets earlier later =
    (* Bucket-wise [later - earlier], clamped at zero (a racy snapshot
       pair can transiently run a bucket backwards); both inputs are
       sorted by index, so a single merge pass suffices. *)
    let rec go acc es ls =
      match (es, ls) with
      | _, [] -> List.rev acc
      | [], (i, c) :: ls' -> go (if c > 0 then (i, c) :: acc else acc) [] ls'
      | (ei, ec) :: es', (li, lc) :: ls' ->
        if ei < li then go acc es' ls
        else if ei > li then
          go (if lc > 0 then (li, lc) :: acc else acc) es ls'
        else
          let d = lc - ec in
          go (if d > 0 then (li, d) :: acc else acc) es' ls'
    in
    go [] earlier later

  let diff ~dt ~earlier ~later =
    if dt <= 0.0 then invalid_arg "Rolling.Delta.diff: dt <= 0";
    let entries =
      List.filter_map
        (fun (name, sample) ->
          match (sample, List.assoc_opt name earlier) with
          | Registry.Count b, Some (Registry.Count a) ->
            Some (name, Dcount (max 0 (b - a)))
          | Registry.Count b, (None | Some _) -> Some (name, Dcount (max 0 b))
          | ( Registry.Summary { buckets_per_decade; buckets; _ },
              Some (Registry.Summary { buckets = eb; _ }) ) ->
            let db = diff_buckets eb buckets in
            let dn = List.fold_left (fun acc (_, c) -> acc + c) 0 db in
            Some (name, Dhist { bpd = buckets_per_decade; dbuckets = db; dn })
          | ( Registry.Summary { buckets_per_decade; buckets; n; _ },
              (None | Some _) ) ->
            Some
              ( name,
                Dhist { bpd = buckets_per_decade; dbuckets = buckets; dn = n }
              )
          | Registry.Level _, _ -> None)
        later
    in
    { dt; entries }

  let names t = List.map fst t.entries

  let delta t name =
    match List.assoc_opt name t.entries with
    | Some (Dcount d) -> Some d
    | Some (Dhist _) | None -> None

  let rate t name =
    Option.map (fun d -> float_of_int d /. t.dt) (delta t name)

  let hist_count t name =
    match List.assoc_opt name t.entries with
    | Some (Dhist { dn; _ }) -> Some dn
    | Some (Dcount _) | None -> None

  let quantile t name q =
    match List.assoc_opt name t.entries with
    | Some (Dhist { bpd; dbuckets; _ }) ->
      Some (H.quantile_of_buckets ~buckets_per_decade:bpd dbuckets q)
    | Some (Dcount _) | None -> None
end
