(** Drives a {!Hybrid_policy} over a {!Hybrid_switch} as a lockstep
    {!Smbm_sim.Instance}, exactly like the two single-characteristic
    engines; the value objective lives in [metrics.transmitted_value]. *)

val create :
  ?name:string ->
  ?recorder:Smbm_obs.Recorder.t ->
  Hybrid_config.t ->
  Hybrid_policy.t ->
  Smbm_sim.Instance.t * Hybrid_switch.t
(** [recorder] receives every per-slot event (see
    {!Smbm_sim.Proc_engine.create}). *)

val instance :
  ?name:string ->
  ?recorder:Smbm_obs.Recorder.t ->
  Hybrid_config.t ->
  Hybrid_policy.t ->
  Smbm_sim.Instance.t

val exact_opt : Hybrid_config.t -> Smbm_core.Arrival.t list array -> drain:int -> int
(** Brute-force maximum transmitted value on tiny instances (offline OPT
    never pushes out); ground truth for the combined model's tests. *)
