open Smbm_core
open Smbm_sim

let create ?name ?recorder config (policy : Hybrid_policy.t) =
  let name = Option.value name ~default:policy.name in
  let sw = Hybrid_switch.create config in
  let metrics = Metrics.create () in
  let ports = Port_stats.create ~n:(Hybrid_config.n config) in
  let record =
    match recorder with
    | None -> fun (_ : Smbm_obs.Event.kind) -> ()
    | Some r ->
      fun kind ->
        Smbm_obs.Recorder.record r ~slot:(Hybrid_switch.now sw) ~who:name kind
  in
  (* Events are records: guard construction, not just delivery — an
     untraced run must not allocate an event per arrival. *)
  let recording = Option.is_some recorder in
  let on_transmit (p : Hybrid_switch.packet) =
    let latency = Hybrid_switch.now sw - p.arrival in
    Metrics.record_transmit metrics ~value:p.value
      ~latency:(float_of_int latency);
    Port_stats.record ports ~port:p.dest ~value:p.value;
    if recording then record (Smbm_obs.Event.Transmit { dest = p.dest; value = p.value; latency })
  in
  let arrive_dv ~dest ~value =
    Metrics.record_arrival metrics;
    if recording then record (Smbm_obs.Event.Arrival { dest });
    match policy.admit sw ~dest ~value with
    | Decision.Accept ->
      ignore (Hybrid_switch.accept sw ~dest ~value);
      Metrics.record_accept metrics;
      if recording then record (Smbm_obs.Event.Accept { dest })
    | Decision.Push_out { victim } ->
      if not (Hybrid_switch.is_full sw) then
        invalid_arg (name ^ ": push-out with free space");
      let evicted = Hybrid_switch.push_out sw ~victim in
      Metrics.record_push_out metrics;
      if recording then
        record
          (Smbm_obs.Event.Push_out
           { victim; dest; lost = evicted.Hybrid_switch.value });
      ignore (Hybrid_switch.accept sw ~dest ~value);
      Metrics.record_accept metrics;
      if recording then record (Smbm_obs.Event.Accept { dest })
    | Decision.Drop ->
      Metrics.record_drop metrics;
      if recording then record (Smbm_obs.Event.Drop { dest; value })
  in
  let arrive (a : Arrival.t) = arrive_dv ~dest:a.dest ~value:a.value in
  let inst : Instance.t =
    {
      name;
      arrive;
      arrive_dv;
      arrive_batch = None;
      transmit =
        (fun () -> ignore (Hybrid_switch.transmit_phase sw ~on_transmit));
      end_slot =
        (fun () ->
          let occupancy = Hybrid_switch.occupancy sw in
          Metrics.record_occupancy metrics occupancy;
          if recording then record (Smbm_obs.Event.Slot_end { occupancy });
          Hybrid_switch.advance_slot sw);
      flush =
        (fun () ->
          let count = Hybrid_switch.flush sw in
          Metrics.record_flush metrics count;
          if recording then record (Smbm_obs.Event.Flush { count });
          Metrics.check_conservation metrics);
      occupancy = (fun () -> Hybrid_switch.occupancy sw);
      metrics;
      ports = Some ports;
      check =
        (fun () ->
          Hybrid_switch.check_invariants sw;
          Metrics.check_conservation metrics;
          if Metrics.in_buffer metrics <> Hybrid_switch.occupancy sw then
            invalid_arg (name ^ ": metrics out of sync"));
    }
  in
  (inst, sw)

let instance ?name ?recorder config policy =
  fst (create ?name ?recorder config policy)

(* Brute-force optimum: queues are FIFO lists of (residual, value); only
   accept/drop branches (offline OPT needs no push-out). *)
module State = struct
  type t = { slot : int; idx : int; queues : (int * int) list array }

  let equal a b = a.slot = b.slot && a.idx = b.idx && a.queues = b.queues
  let hash t = Hashtbl.hash (t.slot, t.idx, t.queues)
end

module Tbl = Hashtbl.Make (State)

let exact_opt config trace ~drain =
  if drain < 0 then invalid_arg "Hybrid_engine.exact_opt: negative drain";
  let n = Hybrid_config.n config in
  let buffer = Hybrid_config.buffer config in
  let cycles = config.Hybrid_config.proc.Proc_config.speedup in
  let total_slots = Array.length trace + drain in
  let arrivals_at slot =
    if slot < Array.length trace then Array.of_list trace.(slot) else [||]
  in
  let memo = Tbl.create 4096 in
  let occupancy queues =
    Array.fold_left (fun acc q -> acc + List.length q) 0 queues
  in
  let transmit queues =
    let queues = Array.copy queues in
    let value = ref 0 in
    Array.iteri
      (fun i q ->
        let rec serve budget = function
          | [] -> []
          | (residual, v) :: rest ->
            if budget = 0 then (residual, v) :: rest
            else begin
              let used = min budget residual in
              if residual - used = 0 then begin
                value := !value + v;
                serve (budget - used) rest
              end
              else (residual - used, v) :: rest
            end
        in
        queues.(i) <- serve cycles q)
      queues;
    (queues, !value)
  in
  let rec best (st : State.t) =
    if st.slot >= total_slots then 0
    else
      match Tbl.find_opt memo st with
      | Some v -> v
      | None ->
        let arrivals = arrivals_at st.slot in
        let v =
          if st.idx < Array.length arrivals then begin
            let a = arrivals.(st.idx) in
            let skip = best { st with idx = st.idx + 1 } in
            if occupancy st.queues < buffer then begin
              let queues = Array.copy st.queues in
              queues.(a.Arrival.dest) <-
                queues.(a.Arrival.dest)
                @ [ (Hybrid_config.work config a.Arrival.dest, a.Arrival.value) ];
              max skip (best { st with idx = st.idx + 1; queues })
            end
            else skip
          end
          else begin
            let queues, value = transmit st.queues in
            value + best { slot = st.slot + 1; idx = 0; queues }
          end
        in
        Tbl.add memo st v;
        v
  in
  best { slot = 0; idx = 0; queues = Array.make n [] }
