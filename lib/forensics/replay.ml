module Event = Smbm_obs.Event
module Metrics = Smbm_sim.Metrics

exception
  Divergent of { src : string; lineno : int; slot : int; reason : string }

type status =
  | Verified of { slots : int; checks : int }
  | Unverifiable of { evicted : int; oldest_slot : int }

type t = {
  src : string;
  metrics : Metrics.t;
  events : int;
  slots : int;
  final_fill : int;
  per_port : int array;
  ports_valid : bool;
  status : status;
}

let replay (s : Trace_file.source) =
  let verify = s.evicted = 0 in
  let metrics = Metrics.create () in
  let fill = ref 0 in
  let slots = ref 0 in
  let checks = ref 0 in
  let events = ref 0 in
  let ports = ref [||] in
  let ports_valid = ref true in
  let port_add idx delta =
    if !ports_valid then
      if idx < 0 then ports_valid := false
      else begin
        if idx >= Array.length !ports then begin
          let grown = Array.make (max (idx + 1) (2 * Array.length !ports)) 0 in
          Array.blit !ports 0 grown 0 (Array.length !ports);
          ports := grown
        end;
        !ports.(idx) <- !ports.(idx) + delta;
        (* A queue losing a packet it never held means the index is not a
           port (bag-key victims of the single-PQ reference): the per-port
           projection is meaningless for this stream, the scalar fill and
           all counters remain exact. *)
        if !ports.(idx) < 0 then ports_valid := false
      end
  in
  let diverge lineno slot fmt =
    Printf.ksprintf
      (fun reason -> raise (Divergent { src = s.src; lineno; slot; reason }))
      fmt
  in
  List.iter
    (fun { Trace_file.lineno; event = ev } ->
      incr events;
      let slot = ev.Event.slot in
      match ev.Event.kind with
      | Event.Arrival _ -> Metrics.record_arrival metrics
      | Event.Accept { dest } ->
        Metrics.record_accept metrics;
        incr fill;
        port_add dest 1
      | Event.Push_out { victim; dest = _; lost = _ } ->
        Metrics.record_push_out metrics;
        decr fill;
        port_add victim (-1)
      | Event.Drop _ -> Metrics.record_drop metrics
      | Event.Transmit { dest; value; latency } ->
        Metrics.record_transmit metrics ~value ~latency:(float_of_int latency);
        decr fill;
        port_add dest (-1)
      | Event.Transmit_bulk { dest; count; value } ->
        Metrics.record_transmissions metrics ~count ~value;
        fill := !fill - count;
        if dest < 0 then ports_valid := false else port_add dest (-count)
      | Event.Flush { count } ->
        if verify && count <> !fill then
          diverge lineno slot "flush of %d packets but reconstructed fill is %d"
            count !fill;
        Metrics.record_flush metrics count;
        fill := 0;
        Array.fill !ports 0 (Array.length !ports) 0
      | Event.Slot_end { occupancy } ->
        Metrics.record_occupancy metrics occupancy;
        incr slots;
        if verify then begin
          if occupancy <> !fill then
            diverge lineno slot
              "slot_end occupancy %d but reconstructed fill is %d" occupancy
              !fill;
          (match Metrics.check_conservation metrics with
          | () -> ()
          | exception Invalid_argument msg ->
            diverge lineno slot "conservation violated: %s" msg);
          if Metrics.in_buffer metrics <> !fill then
            diverge lineno slot
              "counters imply %d packets in buffer but reconstructed fill \
               is %d"
              (Metrics.in_buffer metrics)
              !fill;
          incr checks
        end
      | Event.Reconfig _ | Event.Health _ ->
        (* Annotations: a slot-boundary reconfiguration drops no buffered
           packet by contract, and a health transition reports observer
           state — neither touches a counter or the fill. *)
        ()
      | Event.Truncated _ -> ())
    s.lines;
  {
    src = s.src;
    metrics;
    events = !events;
    slots = !slots;
    final_fill = !fill;
    per_port = !ports;
    ports_valid = !ports_valid;
    status =
      (if verify then Verified { slots = !slots; checks = !checks }
       else Unverifiable { evicted = s.evicted; oldest_slot = s.oldest_slot });
  }

let replay_all (file : Trace_file.t) =
  List.map
    (fun (s : Trace_file.source) ->
      ( s.Trace_file.src,
        match replay s with
        | r -> Ok r
        | exception (Divergent _ as e) -> Error e ))
    file.Trace_file.sources

let pp_status ppf = function
  | Verified { slots; checks } ->
    Format.fprintf ppf "verified (%d slots, %d certificates)" slots checks
  | Unverifiable { evicted; oldest_slot } ->
    Format.fprintf ppf
      "unverifiable (ring evicted %d events; slots < %d unknown)" evicted
      oldest_slot
