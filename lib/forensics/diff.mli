(** Decision-level diff of two traces of the same arrival instance.

    Two instances run in lockstep over one workload (the [compare] /
    [figure] setup, or a policy against the [Opt_ref] / [Exact_opt]
    reference) see identical arrival sequences; everything that differs is
    the policies' doing.  The diff parses each stream back into a sequence
    of {e admission decisions} — one per arrival, [Accepted], pushed-out
    ([Pushed]) or [Dropped] — verifies the two streams really are the same
    instance (identical per-slot arrival destinations), and reports the
    first arrival the two policies treated differently plus a per-slot
    divergence timeline. *)

type decision =
  | Accepted
  | Pushed of { victim : int; lost : int }
      (** admitted by evicting from queue [victim] (bag key for single-PQ
          reference traces) at objective cost [lost] *)
  | Dropped of { value : int }  (** rejected, losing objective [value] *)

type admission = { slot : int; index : int; dest : int; decision : decision }
(** [index] numbers the arrivals within a slot, so (slot, index) names one
    arrival across all traces of the instance. *)

type divergence = {
  slot : int;
  index : int;
  dest : int;
  a : decision;
  b : decision;
}

type row = {
  slot : int;
  arrivals : int;
  diffs : int;  (** admissions decided differently in this slot *)
  occ_a : int;
  occ_b : int;
  cum_tx_a : int;  (** cumulative transmitted objective after this slot *)
  cum_tx_b : int;
}

type t = {
  a : string;
  b : string;
  admissions : int;
  first : divergence option;  (** [None]: the decision sequences agree *)
  diffs : int;
  rows : row list;  (** one per slot both traces completed *)
  slots_a : int;
  slots_b : int;
}

val admissions : Trace_file.source -> (admission list, string) result
(** Parse a stream into its admission sequence.  Errors on structurally
    broken streams (decision without an arrival, arrival left unresolved);
    truncated streams are rejected — a diff needs the full prefix. *)

val align :
  a:Trace_file.source -> b:Trace_file.source -> (unit, string) result
(** Check the two streams saw the same per-slot arrival destinations. *)

val diff : a:Trace_file.source -> b:Trace_file.source -> (t, string) result

val decision_to_string : decision -> string
