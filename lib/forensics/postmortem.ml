module Json = Smbm_obs.Json

type meta = {
  reason : string;
  detail : string;
  slot : int;
  model : string;
  src : string;
  policy : string;
  buffer : int;
  evicted : int;
  events : int;
  counters : (string * int) list;
  ports : int array;
  health : (string * bool) list;
}

let version = 1

let trace_path base = base ^ ".trace.bin"
let meta_path base = base ^ ".meta.jsonl"

(* Accept the base or either file path. *)
let base_of path =
  let strip suffix =
    let lp = String.length path and ls = String.length suffix in
    if lp > ls && String.sub path (lp - ls) ls = suffix then
      Some (String.sub path 0 (lp - ls))
    else None
  in
  match strip ".trace.bin" with
  | Some b -> b
  | None -> ( match strip ".meta.jsonl" with Some b -> b | None -> path)

let meta_lines m =
  let header =
    Json.obj
      [
        ("postmortem", Json.Int version);
        ("reason", Json.Str m.reason);
        ("detail", Json.Str m.detail);
        ("slot", Json.Int m.slot);
        ("model", Json.Str m.model);
        ("src", Json.Str m.src);
        ("policy", Json.Str m.policy);
        ("buffer", Json.Int m.buffer);
        ("evicted", Json.Int m.evicted);
        ("events", Json.Int m.events);
      ]
  in
  let counters =
    List.map
      (fun (k, v) -> Json.obj [ ("counter", Json.Str k); ("value", Json.Int v) ])
      m.counters
  in
  let ports =
    List.mapi
      (fun i occ -> Json.obj [ ("port", Json.Int i); ("occupancy", Json.Int occ) ])
      (Array.to_list m.ports)
  in
  let health =
    List.map
      (fun (rule, tripped) ->
        Json.obj [ ("rule", Json.Str rule); ("tripped", Json.Bool tripped) ])
      m.health
  in
  (header :: counters) @ ports @ health

let write ~base meta events =
  match Trace_file.write_binary (trace_path base) events with
  | Error msg -> Error msg
  | Ok () -> (
    match open_out (meta_path base) with
    | exception Sys_error msg -> Error msg
    | oc ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (meta_lines meta);
      (match close_out oc with
      | () -> Ok ()
      | exception Sys_error msg -> Error msg))

let parse_meta path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let lines = ref [] in
    (try
       while true do
         let l = input_line ic in
         if String.trim l <> "" then lines := l :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    let lines = List.rev !lines in
    let parse lineno line =
      match Json.parse_flat line with
      | Ok fields -> Ok fields
      | Error msg -> Error (Printf.sprintf "%s:%d: %s" path lineno msg)
    in
    let int fields k =
      match List.assoc_opt k fields with
      | Some (Json.Int i) -> Some i
      | _ -> None
    in
    let str fields k =
      match List.assoc_opt k fields with
      | Some (Json.Str s) -> Some s
      | _ -> None
    in
    let ( let* ) = Result.bind in
    match lines with
    | [] -> Error (path ^ ": empty postmortem meta")
    | header :: rest ->
      let* h = parse 1 header in
      let req name v =
        match v with
        | Some v -> Ok v
        | None ->
          Error (Printf.sprintf "%s: header missing field %S" path name)
      in
      let* v = req "postmortem" (int h "postmortem") in
      let* () =
        if v = version then Ok ()
        else Error (Printf.sprintf "%s: unknown postmortem version %d" path v)
      in
      let* reason = req "reason" (str h "reason") in
      let* detail = req "detail" (str h "detail") in
      let* slot = req "slot" (int h "slot") in
      let* model = req "model" (str h "model") in
      let* src = req "src" (str h "src") in
      let* policy = req "policy" (str h "policy") in
      let* buffer = req "buffer" (int h "buffer") in
      let* evicted = req "evicted" (int h "evicted") in
      let* events = req "events" (int h "events") in
      let counters = ref [] and ports = ref [] and health = ref [] in
      let* () =
        List.fold_left
          (fun acc (lineno, line) ->
            let* () = acc in
            let* fields = parse lineno line in
            match
              ( List.assoc_opt "counter" fields,
                List.assoc_opt "port" fields,
                List.assoc_opt "rule" fields )
            with
            | Some (Json.Str k), None, None -> (
              match int fields "value" with
              | Some v ->
                counters := (k, v) :: !counters;
                Ok ()
              | None ->
                Error (Printf.sprintf "%s:%d: counter without value" path lineno))
            | None, Some (Json.Int p), None -> (
              match int fields "occupancy" with
              | Some occ ->
                ports := (p, occ) :: !ports;
                Ok ()
              | None ->
                Error (Printf.sprintf "%s:%d: port without occupancy" path lineno))
            | None, None, Some (Json.Str rule) -> (
              match List.assoc_opt "tripped" fields with
              | Some (Json.Bool b) ->
                health := (rule, b) :: !health;
                Ok ()
              | _ ->
                Error (Printf.sprintf "%s:%d: rule without tripped" path lineno))
            | _ ->
              Error (Printf.sprintf "%s:%d: unrecognized meta line" path lineno))
          (Ok ())
          (List.mapi (fun i l -> (i + 2, l)) rest)
      in
      let ports_list = List.rev !ports in
      let n_ports =
        List.fold_left (fun m (p, _) -> max m (p + 1)) 0 ports_list
      in
      let port_arr = Array.make n_ports 0 in
      List.iter (fun (p, occ) -> port_arr.(p) <- occ) ports_list;
      Ok
        {
          reason;
          detail;
          slot;
          model;
          src;
          policy;
          buffer;
          evicted;
          events;
          counters = List.rev !counters;
          ports = port_arr;
          health = List.rev !health;
        }

let load path =
  let base = base_of path in
  match parse_meta (meta_path base) with
  | Error msg -> Error msg
  | Ok meta -> (
    match Trace_file.load (trace_path base) with
    | Error msg -> Error msg
    | Ok trace -> Ok (meta, trace))

type verdict =
  | Certified of { slots : int; events : int; checked : int }
      (** complete window: replayed counters match the snapshot exactly *)
  | Window of { evicted : int; oldest_slot : int }
      (** truncated window: replayed, but counters cover only the tail *)

let counter meta name =
  match List.assoc_opt name meta.counters with Some v -> v | None -> 0

let certify meta trace =
  match Trace_file.find trace meta.src with
  | Error msg -> Error msg
  | Ok source -> (
    match Replay.replay source with
    | exception Replay.Divergent { lineno; slot; reason; _ } ->
      Error
        (Printf.sprintf "replay divergent at event %d (slot %d): %s" lineno
           slot reason)
    | r -> (
      match r.Replay.status with
      | Replay.Unverifiable { evicted; oldest_slot } ->
        Ok (Window { evicted; oldest_slot })
      | Replay.Verified { slots; _ } ->
        let m = r.Replay.metrics in
        let module M = Smbm_sim.Metrics in
        let pairs =
          [
            ("arrivals", M.arrivals m);
            ("accepted", M.accepted m);
            ("dropped", M.dropped m);
            ("pushed_out", M.pushed_out m);
            ("transmitted", M.transmitted m);
            ("transmitted_value", M.transmitted_value m);
            ("flushed", M.flushed m);
            ("in_buffer", M.in_buffer m);
          ]
        in
        let mismatches =
          List.filter_map
            (fun (name, replayed) ->
              let snap = counter meta name in
              if snap <> replayed then
                Some (Printf.sprintf "%s: replay %d vs snapshot %d" name
                        replayed snap)
              else None)
            pairs
        in
        let port_mismatches =
          (* The replay's array grows by doubling, so it may trail zeros
             past the snapshot's port count; a port absent on either side
             holds nothing. *)
          if not r.Replay.ports_valid then []
          else
            let at (a : int array) i = if i < Array.length a then a.(i) else 0 in
            let n = max (Array.length meta.ports) (Array.length r.Replay.per_port) in
            List.filter_map
              (fun i ->
                let replayed = at r.Replay.per_port i
                and snap = at meta.ports i in
                if snap <> replayed then
                  Some
                    (Printf.sprintf "port %d: replay %d vs snapshot %d" i
                       replayed snap)
                else None)
              (List.init n Fun.id)
        in
        match mismatches @ port_mismatches with
        | [] ->
          Ok
            (Certified
               {
                 slots;
                 events = r.Replay.events;
                 checked = List.length pairs + Array.length meta.ports;
               })
        | ms -> Error (String.concat "; " ms)))

let pp_verdict ppf = function
  | Certified { slots; events; checked } ->
    Format.fprintf ppf
      "certified: %d events over %d slots replayed; %d counters match the \
       snapshot"
      events slots checked
  | Window { evicted; oldest_slot } ->
    Format.fprintf ppf
      "window only: ring evicted %d events (state unknown before slot %d); \
       replayed without certification"
      evicted oldest_slot

let pp_meta ppf m =
  Format.fprintf ppf "reason: %s (%s)@," m.reason m.detail;
  Format.fprintf ppf "at slot %d, model %s, src %s@," m.slot m.model m.src;
  Format.fprintf ppf "config: policy %s, buffer %d@," m.policy m.buffer;
  Format.fprintf ppf "flight window: %d events, %d evicted@," m.events
    m.evicted;
  Format.fprintf ppf "counters:";
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%d" k v) m.counters;
  Format.fprintf ppf "@,";
  if Array.length m.ports > 0 then begin
    Format.fprintf ppf "port occupancy:";
    Array.iteri (fun i occ -> Format.fprintf ppf " %d:%d" i occ) m.ports;
    Format.fprintf ppf "@,"
  end;
  if m.health <> [] then begin
    Format.fprintf ppf "health:";
    List.iter
      (fun (rule, tripped) ->
        Format.fprintf ppf " %s=%s" rule (if tripped then "tripped" else "ok"))
      m.health;
    Format.fprintf ppf "@,"
  end
