(** Black-box postmortem dumps: what the serve daemon writes when a health
    watchdog trips, a sink latches an error, or the engine throws.

    A postmortem is a pair of files sharing a base path:

    - [<base>.trace.bin] — the flight ring's last-N events, in the
      standard binary trace encoding ({!Trace_file}), so every forensics
      tool (replay, diff, attribution, validation, conversion) consumes
      it directly;
    - [<base>.meta.jsonl] — a flat-JSONL snapshot of the daemon's state at
      dump time: the trigger, the live config (policy, buffer size), the
      registry counters, per-port occupancy and health rule states.

    {!certify} ties the two together: it replays the dumped window with
    {!Replay} and — when the ring had evicted nothing, so the window is
    the whole run — requires the reconstructed counters and per-port
    occupancy to equal the snapshot exactly. *)

type meta = {
  reason : string;  (** ["health"], ["sink"] or ["exception"] *)
  detail : string;  (** rule and reason, sink error, or exception text *)
  slot : int;  (** slots fully processed when the dump fired *)
  model : string;  (** ["proc"] or ["value"] *)
  src : string;  (** the engine's event source name *)
  policy : string;  (** live policy at dump time *)
  buffer : int;  (** live B at dump time *)
  evicted : int;  (** events the flight ring had overwritten *)
  events : int;  (** events in the dumped trace (markers included) *)
  counters : (string * int) list;  (** registry counters, engine + serve *)
  ports : int array;  (** per-port occupancy at dump time *)
  health : (string * bool) list;  (** per-rule tripped state *)
}

val trace_path : string -> string
(** [base ^ ".trace.bin"] *)

val meta_path : string -> string
(** [base ^ ".meta.jsonl"] *)

val base_of : string -> string
(** The base for a base, trace or meta path (inverse of the two above). *)

val write : base:string -> meta -> Smbm_obs.Event.t list -> (unit, string) result

val load : string -> (meta * Trace_file.t, string) result
(** Load both halves; the argument may be the base or either file path. *)

type verdict =
  | Certified of { slots : int; events : int; checked : int }
      (** complete window: replayed counters match the snapshot exactly *)
  | Window of { evicted : int; oldest_slot : int }
      (** truncated window: replayed, but counters cover only the tail *)

val certify : meta -> Trace_file.t -> (verdict, string) result
(** Replay the dumped engine stream and check it against the snapshot.
    Errors are replay divergence or a counter/occupancy mismatch. *)

val pp_verdict : Format.formatter -> verdict -> unit

val pp_meta : Format.formatter -> meta -> unit
(** Multi-line summary ([@,] separated; wrap in a vbox). *)
