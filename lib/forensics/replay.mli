(** Shadow-state replay: fold one source's event stream back into switch
    state and re-derive every aggregate counter.

    The replayer drives a fresh {!Smbm_sim.Metrics.t} with exactly the
    [record_*] calls, in exactly the order, that the live engine made while
    emitting the events — so for a complete (untruncated) stream the
    reconstructed metrics are {e bit-identical} to the run's, down to the
    float accumulation order of the latency and occupancy statistics.
    Alongside the metrics it maintains the buffer fill and per-port
    occupancy, and certifies at every [slot_end] that

    - the reconstructed fill equals the recorded occupancy,
    - the counters satisfy conservation
      ([arrivals = accepted + dropped], derived in-buffer = fill),

    and at every [flush] that the flushed count equals the fill.  The first
    event breaking any of these raises {!Divergent} with its line number —
    either the trace is corrupted or an engine's accounting is wrong.

    Streams whose recording ring evicted a prefix cannot be certified (the
    fold starts mid-run); they are still folded, but no check is applied and
    the result is marked {!Unverifiable}. *)

exception
  Divergent of { src : string; lineno : int; slot : int; reason : string }

type status =
  | Verified of { slots : int; checks : int }
      (** complete stream: every [slot_end]/[flush] certificate held *)
  | Unverifiable of { evicted : int; oldest_slot : int }
      (** truncated stream: state unknown before [oldest_slot] *)

type t = {
  src : string;
  metrics : Smbm_sim.Metrics.t;  (** reconstructed aggregates *)
  events : int;
  slots : int;  (** [slot_end] events seen *)
  final_fill : int;
  per_port : int array;
      (** final per-port occupancy; meaningful only when [ports_valid] *)
  ports_valid : bool;
      (** false for port-less reference traces ([Transmit_bulk] with
          [dest = -1], bag-key push-out victims) *)
  status : status;
}

val replay : Trace_file.source -> t
(** @raise Divergent on the first event inconsistent with the
    reconstructed state (complete streams only). *)

val replay_all :
  Trace_file.t -> (string * (t, exn) result) list
(** Replay every source, capturing {!Divergent} per source instead of
    raising. *)

val pp_status : Format.formatter -> status -> unit
