(** Loading an event trace from disk into per-source streams.

    A trace file (written by [--trace]) interleaves the event streams of
    several instances, each identified by its [src] field (optionally
    scope-qualified, e.g. ["x=8/LWD"]).  Loading splits the file back into
    one stream per source, keeps original line numbers for error reporting,
    and resolves [Truncated] metadata markers: each marker's [src] is a
    recorder scope, and it covers every source inside that scope, declaring
    how many of their oldest events the recording ring evicted. *)

type line = { lineno : int; event : Smbm_obs.Event.t }

type source = {
  src : string;
  lines : line list;  (** oldest first; [Truncated] markers excluded *)
  evicted : int;
      (** events evicted from this source's scope before the stream starts
          (0 = the stream is complete) *)
  oldest_slot : int;
      (** when [evicted > 0], the oldest slot surviving in the scope: slots
          before it are unverifiable *)
}

type t = {
  path : string;
  line_count : int;
  sources : source list;  (** in order of first appearance *)
  truncations : (string * int * int) list;
      (** (scope, evicted, oldest surviving slot) markers found *)
}

val scope_covers : scope:string -> string -> bool
(** [scope_covers ~scope src]: the empty scope covers everything; otherwise
    [src] is covered when it equals [scope] or starts with [scope ^ "/"]. *)

val load : string -> (t, string) result
(** Load a trace in either encoding, dispatching on the binary {!magic}.
    JSONL is strictly parsed line by line ({!Smbm_obs.Event.of_json}) with
    errors positioned as ["file:line: message"]; binary decode errors are
    positioned by byte offset. *)

(** {2 Encodings}

    A trace is one logical stream of events with two on-disk encodings:
    the JSONL lines [--trace] writes, and a compact binary form (magic
    header, interned string table, one tag byte plus varint fields per
    event — see [doc/trace-format.md]).  Both carry exactly an
    {!Smbm_obs.Event.t} list, so conversion either way is lossless. *)

val magic : string
(** First bytes of a binary trace; the last byte is the format version. *)

val is_binary : string -> bool
(** Whether the file at this path starts with {!magic} (false when it
    cannot be read). *)

val to_binary : Smbm_obs.Event.t list -> string
(** The binary encoding of an event stream, magic included. *)

val write_binary : string -> Smbm_obs.Event.t list -> (unit, string) result

val iter_events :
  string -> f:(lineno:int -> Smbm_obs.Event.t -> unit) -> (int, string) result
(** Stream a trace in either encoding in file order, returning the line
    count ([lineno] is the JSONL line number, or the 1-based event index
    in a binary trace) and stopping at the first malformed event. *)

val read_events : string -> ((int * Smbm_obs.Event.t) list, string) result
(** {!iter_events}, collected. *)

val find : t -> string -> (source, string) result
(** Resolve a source by exact [src], or — when unambiguous — by suffix
    (["LWD"] matches ["x=8/LWD"]).  The error lists the available sources. *)

val source_names : t -> string list
