(** Loading an event trace from disk into per-source streams.

    A trace file (written by [--trace]) interleaves the event streams of
    several instances, each identified by its [src] field (optionally
    scope-qualified, e.g. ["x=8/LWD"]).  Loading splits the file back into
    one stream per source, keeps original line numbers for error reporting,
    and resolves [Truncated] metadata markers: each marker's [src] is a
    recorder scope, and it covers every source inside that scope, declaring
    how many of their oldest events the recording ring evicted. *)

type line = { lineno : int; event : Smbm_obs.Event.t }

type source = {
  src : string;
  lines : line list;  (** oldest first; [Truncated] markers excluded *)
  evicted : int;
      (** events evicted from this source's scope before the stream starts
          (0 = the stream is complete) *)
  oldest_slot : int;
      (** when [evicted > 0], the oldest slot surviving in the scope: slots
          before it are unverifiable *)
}

type t = {
  path : string;
  line_count : int;
  sources : source list;  (** in order of first appearance *)
  truncations : (string * int * int) list;
      (** (scope, evicted, oldest surviving slot) markers found *)
}

val scope_covers : scope:string -> string -> bool
(** [scope_covers ~scope src]: the empty scope covers everything; otherwise
    [src] is covered when it equals [scope] or starts with [scope ^ "/"]. *)

val load : string -> (t, string) result
(** Strictly parse every line ({!Smbm_obs.Event.of_json}); the error is
    positioned as ["file:line: message"]. *)

val find : t -> string -> (source, string) result
(** Resolve a source by exact [src], or — when unambiguous — by suffix
    (["LWD"] matches ["x=8/LWD"]).  The error lists the available sources. *)

val source_names : t -> string list
