module Event = Smbm_obs.Event

type line = { lineno : int; event : Event.t }

type source = {
  src : string;
  lines : line list;
  evicted : int;
  oldest_slot : int;
}

type t = {
  path : string;
  line_count : int;
  sources : source list;
  truncations : (string * int * int) list;
}

let scope_covers ~scope src =
  scope = "" || src = scope
  ||
  let ls = String.length scope in
  String.length src > ls
  && String.sub src 0 ls = scope
  && src.[ls] = '/'

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let buckets : (string, line list ref) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    let truncations = ref [] in
    let lineno = ref 0 in
    let error = ref None in
    (try
       while !error = None do
         let raw = input_line ic in
         incr lineno;
         if String.trim raw <> "" then begin
           match Event.of_json raw with
           | Error msg ->
             error := Some (Printf.sprintf "%s:%d: %s" path !lineno msg)
           | Ok ev -> (
             match ev.Event.kind with
             | Event.Truncated { evicted } ->
               truncations :=
                 (ev.Event.src, evicted, ev.Event.slot) :: !truncations
             | _ ->
               let bucket =
                 match Hashtbl.find_opt buckets ev.Event.src with
                 | Some b -> b
                 | None ->
                   let b = ref [] in
                   Hashtbl.add buckets ev.Event.src b;
                   order := ev.Event.src :: !order;
                   b
               in
               bucket := { lineno = !lineno; event = ev } :: !bucket)
         end
       done
     with End_of_file -> ());
    close_in ic;
    match !error with
    | Some msg -> Error msg
    | None ->
      let truncations = List.rev !truncations in
      let sources =
        List.rev_map
          (fun src ->
            let lines = List.rev !(Hashtbl.find buckets src) in
            (* Several scopes can cover one source (e.g. "" and "x=8");
               their budgets add up, and the tightest oldest-surviving slot
               wins. *)
            let evicted, oldest_slot =
              List.fold_left
                (fun (e, o) (scope, evicted, slot) ->
                  if scope_covers ~scope src then (e + evicted, max o slot)
                  else (e, o))
                (0, 0) truncations
            in
            { src; lines; evicted; oldest_slot })
          !order
      in
      Ok { path; line_count = !lineno; sources; truncations }

let source_names t = List.map (fun s -> s.src) t.sources

let find t name =
  match List.find_opt (fun s -> s.src = name) t.sources with
  | Some s -> Ok s
  | None -> (
    let suffix_matches =
      List.filter
        (fun s ->
          let ls = String.length s.src and ln = String.length name in
          ls > ln + 1
          && String.sub s.src (ls - ln) ln = name
          && s.src.[ls - ln - 1] = '/')
        t.sources
    in
    match suffix_matches with
    | [ s ] -> Ok s
    | [] ->
      Error
        (Printf.sprintf "no source %S in %s (available: %s)" name t.path
           (String.concat ", " (source_names t)))
    | many ->
      Error
        (Printf.sprintf "source %S is ambiguous in %s (matches: %s)" name
           t.path
           (String.concat ", " (List.map (fun s -> s.src) many))))
