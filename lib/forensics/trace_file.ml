module Event = Smbm_obs.Event

type line = { lineno : int; event : Event.t }

type source = {
  src : string;
  lines : line list;
  evicted : int;
  oldest_slot : int;
}

type t = {
  path : string;
  line_count : int;
  sources : source list;
  truncations : (string * int * int) list;
}

let scope_covers ~scope src =
  scope = "" || src = scope
  ||
  let ls = String.length scope in
  String.length src > ls
  && String.sub src 0 ls = scope
  && src.[ls] = '/'

(* ----- binary codec (doc/trace-format.md) -----

   magic (8 bytes, version in the last byte), then an interned string
   table (every [src] plus the payload strings of reconfig/health events),
   then the events in file order: one kind-tag byte, slot and string ids
   as unsigned LEB128 varints, payload ints as zigzag varints in the JSONL
   field order.  The format is self-contained and append-free: readers get
   the whole table up front, so decoding is a single forward pass. *)

let magic = "SMBMTRC\x01"

let tag_of_kind = function
  | Event.Arrival _ -> 0
  | Event.Accept _ -> 1
  | Event.Push_out _ -> 2
  | Event.Drop _ -> 3
  | Event.Transmit _ -> 4
  | Event.Transmit_bulk _ -> 5
  | Event.Flush _ -> 6
  | Event.Slot_end _ -> 7
  | Event.Reconfig _ -> 8
  | Event.Health _ -> 9
  | Event.Truncated _ -> 10

let add_uvarint buf n =
  if n < 0 then invalid_arg "Trace_file: negative unsigned varint";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7F)));
      go (n lsr 7)
    end
  in
  go n

let zigzag n = (n lsl 1) lxor (n asr (Sys.int_size - 1))
let unzigzag n = (n lsr 1) lxor (-(n land 1))

let add_varint buf n = add_uvarint buf (zigzag n)

let to_binary events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  (* Intern every string the events carry, in first-appearance order. *)
  let ids = Hashtbl.create 16 in
  let names = ref [] in
  let n_names = ref 0 in
  let intern s =
    match Hashtbl.find_opt ids s with
    | Some id -> id
    | None ->
      let id = !n_names in
      Hashtbl.add ids s id;
      names := s :: !names;
      incr n_names;
      id
  in
  List.iter
    (fun (e : Event.t) ->
      ignore (intern e.src);
      match e.kind with
      | Event.Reconfig { what; target } ->
        ignore (intern what);
        ignore (intern target)
      | Event.Health { rule; reason; _ } ->
        ignore (intern rule);
        ignore (intern reason)
      | _ -> ())
    events;
  add_uvarint buf !n_names;
  List.iter
    (fun s ->
      add_uvarint buf (String.length s);
      Buffer.add_string buf s)
    (List.rev !names);
  add_uvarint buf (List.length events);
  List.iter
    (fun (e : Event.t) ->
      Buffer.add_char buf (Char.chr (tag_of_kind e.kind));
      add_uvarint buf e.slot;
      add_uvarint buf (intern e.src);
      match e.kind with
      | Event.Arrival { dest } | Event.Accept { dest } -> add_varint buf dest
      | Event.Push_out { victim; dest; lost } ->
        add_varint buf victim;
        add_varint buf dest;
        add_varint buf lost
      | Event.Drop { dest; value } ->
        add_varint buf dest;
        add_varint buf value
      | Event.Transmit { dest; value; latency } ->
        add_varint buf dest;
        add_varint buf value;
        add_varint buf latency
      | Event.Transmit_bulk { dest; count; value } ->
        add_varint buf dest;
        add_varint buf count;
        add_varint buf value
      | Event.Flush { count } -> add_varint buf count
      | Event.Slot_end { occupancy } -> add_varint buf occupancy
      | Event.Reconfig { what; target } ->
        add_uvarint buf (intern what);
        add_uvarint buf (intern target)
      | Event.Health { rule; tripped; reason } ->
        add_uvarint buf (intern rule);
        Buffer.add_char buf (if tripped then '\x01' else '\x00');
        add_uvarint buf (intern reason)
      | Event.Truncated { evicted } -> add_varint buf evicted)
    events;
  Buffer.contents buf

let write_binary path events =
  match open_out_bin path with
  | exception Sys_error msg -> Error msg
  | oc ->
    let r =
      match output_string oc (to_binary events) with
      | () -> Ok ()
      | exception Sys_error msg -> Error msg
    in
    (match close_out oc with
    | () -> r
    | exception Sys_error msg -> (
      match r with Ok () -> Error msg | Error _ -> r))

exception Corrupt of string

let of_binary ~path data =
  let n = String.length data in
  let pos = ref (String.length magic) in
  let corrupt fmt =
    Printf.ksprintf
      (fun msg ->
        raise (Corrupt (Printf.sprintf "%s: byte %d: %s" path !pos msg)))
      fmt
  in
  let byte () =
    if !pos >= n then corrupt "truncated file";
    let b = Char.code data.[!pos] in
    incr pos;
    b
  in
  let uvarint () =
    let rec go shift acc =
      if shift > Sys.int_size - 7 then corrupt "varint overflow";
      let b = byte () in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0
  in
  let varint () = unzigzag (uvarint ()) in
  let n_names = uvarint () in
  let names =
    Array.init n_names (fun _ ->
        let len = uvarint () in
        if !pos + len > n then corrupt "truncated string table";
        let s = String.sub data !pos len in
        pos := !pos + len;
        s)
  in
  let name id =
    if id < 0 || id >= n_names then corrupt "string id %d out of range" id
    else names.(id)
  in
  let n_events = uvarint () in
  (* Every event is at least three bytes (tag, slot, src), so a count
     beyond the remaining bytes is corruption, not a huge allocation. *)
  if n_events > n - !pos then corrupt "event count %d beyond file" n_events;
  let decode_event () =
    let tag = byte () in
        let slot = uvarint () in
        let src = name (uvarint ()) in
        let kind =
          match tag with
          | 0 -> Event.Arrival { dest = varint () }
          | 1 -> Event.Accept { dest = varint () }
          | 2 ->
            let victim = varint () in
            let dest = varint () in
            let lost = varint () in
            Event.Push_out { victim; dest; lost }
          | 3 ->
            let dest = varint () in
            let value = varint () in
            Event.Drop { dest; value }
          | 4 ->
            let dest = varint () in
            let value = varint () in
            let latency = varint () in
            Event.Transmit { dest; value; latency }
          | 5 ->
            let dest = varint () in
            let count = varint () in
            let value = varint () in
            Event.Transmit_bulk { dest; count; value }
          | 6 -> Event.Flush { count = varint () }
          | 7 -> Event.Slot_end { occupancy = varint () }
          | 8 ->
            let what = name (uvarint ()) in
            let target = name (uvarint ()) in
            Event.Reconfig { what; target }
          | 9 ->
            let rule = name (uvarint ()) in
            let tripped =
              match byte () with
              | 0 -> false
              | 1 -> true
              | b -> corrupt "bad health state byte %d" b
            in
            let reason = name (uvarint ()) in
            Event.Health { rule; tripped; reason }
          | 10 -> Event.Truncated { evicted = varint () }
      | t -> corrupt "unknown event tag %d" t
    in
    Event.make ~src ~slot kind
  in
  let events = ref [] in
  for _ = 1 to n_events do
    events := decode_event () :: !events
  done;
  if !pos <> n then corrupt "trailing garbage after %d events" n_events;
  List.rev !events

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let r =
      match really_input_string ic (in_channel_length ic) with
      | data -> Ok data
      | exception Sys_error msg -> Error msg
      | exception End_of_file -> Error (path ^ ": unreadable")
    in
    close_in_noerr ic;
    r

let data_is_binary data =
  String.length data >= String.length magic
  && String.sub data 0 (String.length magic) = magic

let is_binary path =
  match read_file path with
  | Error _ -> false
  | Ok data -> data_is_binary data

(* Iterate events from either format, [lineno] being the JSONL line number
   or the 1-based event index.  Stops at the first malformed event. *)
let iter_events path ~f =
  match read_file path with
  | Error msg -> Error msg
  | Ok data ->
    if data_is_binary data then (
      match of_binary ~path data with
      | exception Corrupt msg -> Error msg
      | events ->
        List.iteri (fun i e -> f ~lineno:(i + 1) e) events;
        Ok (List.length events))
    else begin
      let lineno = ref 0 in
      let error = ref None in
      let lines = String.split_on_char '\n' data in
      List.iter
        (fun raw ->
          if !error = None then begin
            incr lineno;
            if String.trim raw <> "" then
              match Event.of_json raw with
              | Error msg ->
                error := Some (Printf.sprintf "%s:%d: %s" path !lineno msg)
              | Ok ev -> f ~lineno:!lineno ev
          end)
        lines;
      (* A trailing newline splits into a final empty chunk that is not a
         line; don't count it. *)
      let count =
        match List.rev lines with "" :: _ -> !lineno - 1 | _ -> !lineno
      in
      match !error with Some msg -> Error msg | None -> Ok count
    end

let read_events path =
  let acc = ref [] in
  match iter_events path ~f:(fun ~lineno e -> acc := (lineno, e) :: !acc) with
  | Error msg -> Error msg
  | Ok _ -> Ok (List.rev !acc)

let load path =
  let buckets : (string, line list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let truncations = ref [] in
  let on_event ~lineno (ev : Event.t) =
    match ev.Event.kind with
    | Event.Truncated { evicted } ->
      truncations := (ev.Event.src, evicted, ev.Event.slot) :: !truncations
    | _ ->
      let bucket =
        match Hashtbl.find_opt buckets ev.Event.src with
        | Some b -> b
        | None ->
          let b = ref [] in
          Hashtbl.add buckets ev.Event.src b;
          order := ev.Event.src :: !order;
          b
      in
      bucket := { lineno; event = ev } :: !bucket
  in
  match iter_events path ~f:on_event with
  | Error msg -> Error msg
  | Ok line_count ->
    let truncations = List.rev !truncations in
    let sources =
      List.rev_map
        (fun src ->
          let lines = List.rev !(Hashtbl.find buckets src) in
          (* Several scopes can cover one source (e.g. "" and "x=8");
             their budgets add up, and the tightest oldest-surviving slot
             wins. *)
          let evicted, oldest_slot =
            List.fold_left
              (fun (e, o) (scope, evicted, slot) ->
                if scope_covers ~scope src then (e + evicted, max o slot)
                else (e, o))
              (0, 0) truncations
          in
          { src; lines; evicted; oldest_slot })
        !order
    in
    Ok { path; line_count; sources; truncations }

let source_names t = List.map (fun s -> s.src) t.sources

let find t name =
  match List.find_opt (fun s -> s.src = name) t.sources with
  | Some s -> Ok s
  | None -> (
    let suffix_matches =
      List.filter
        (fun s ->
          let ls = String.length s.src and ln = String.length name in
          ls > ln + 1
          && String.sub s.src (ls - ln) ln = name
          && s.src.[ls - ln - 1] = '/')
        t.sources
    in
    match suffix_matches with
    | [ s ] -> Ok s
    | [] ->
      Error
        (Printf.sprintf "no source %S in %s (available: %s)" name t.path
           (String.concat ", " (source_names t)))
    | many ->
      Error
        (Printf.sprintf "source %S is ambiguous in %s (matches: %s)" name
           t.path
           (String.concat ", " (List.map (fun s -> s.src) many))))
