module Event = Smbm_obs.Event

type loss_kind = Drop | Push_out | Flush

type loss = {
  lineno : int;
  slot : int;
  port : int;
  kind : loss_kind;
  capacity : int;
  mutable charged : int;
}

type t = {
  a : string;
  b : string;
  slots : int;
  tx_a : int;
  tx_b : int;
  gap : int;
  charged : int;
  uncharged : int;
  credits : int;
  per_port_mode : bool;
  losses : loss list;
  ranked : loss list;
  regret_series : (int * int) array;
  port_regret : (int * int) list;
}

let kind_to_string = function
  | Drop -> "drop"
  | Push_out -> "push-out"
  | Flush -> "flush"

(* Per-slot, per-port transmitted objective of one stream, plus whether
   every transmission names a real port. *)
let tx_table (s : Trace_file.source) =
  let tbl = Hashtbl.create 256 (* (slot, port) -> objective *) in
  let ports_valid = ref true in
  let slots = ref 0 in
  let add slot port value =
    if port < 0 then ports_valid := false;
    Hashtbl.replace tbl (slot, port)
      (value + Option.value (Hashtbl.find_opt tbl (slot, port)) ~default:0)
  in
  List.iter
    (fun { Trace_file.event = ev; _ } ->
      match ev.Event.kind with
      | Event.Transmit { dest; value; _ } -> add ev.Event.slot dest value
      | Event.Transmit_bulk { dest; count = _; value } ->
        add ev.Event.slot dest value
      | Event.Slot_end _ -> incr slots
      | _ -> ())
    s.Trace_file.lines;
  (tbl, !ports_valid, !slots)

let losses_of (s : Trace_file.source) =
  List.rev
    (List.fold_left
       (fun acc { Trace_file.lineno; event = ev } ->
         let slot = ev.Event.slot in
         match ev.Event.kind with
         | Event.Drop { dest; value } ->
           { lineno; slot; port = dest; kind = Drop; capacity = value; charged = 0 }
           :: acc
         | Event.Push_out { victim; dest = _; lost } ->
           {
             lineno;
             slot;
             port = victim;
             kind = Push_out;
             capacity = lost;
             charged = 0;
           }
           :: acc
         | Event.Flush { count } when count > 0 ->
           { lineno; slot; port = -1; kind = Flush; capacity = count; charged = 0 }
           :: acc
         | _ -> acc)
       [] s.Trace_file.lines)

let attribute ~(a : Trace_file.source) ~(b : Trace_file.source) =
  match Diff.align ~a ~b with
  | Error e -> Error e
  | Ok () ->
    let tx_a, ports_a, slots_a = tx_table a in
    let tx_b, ports_b, slots_b = tx_table b in
    if slots_a <> slots_b then
      Error
        (Printf.sprintf
           "slot counts differ (%S: %d, %S: %d): the runs are not comparable"
           a.Trace_file.src slots_a b.Trace_file.src slots_b)
    else begin
      let slots = slots_a in
      let per_port_mode = ports_a && ports_b in
      let losses = losses_of b in
      (* Partition losses into FIFO lanes.  In aggregate mode every loss,
         flushes included, sits in one lane; in per-port mode each port has
         a lane and flushes form a shared overflow pool. *)
      let lanes : (int, loss Queue.t) Hashtbl.t = Hashtbl.create 64 in
      let lane port =
        match Hashtbl.find_opt lanes port with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Hashtbl.add lanes port q;
          q
      in
      List.iter
        (fun l ->
          let key =
            if not per_port_mode then 0
            else if l.kind = Flush then -1
            else l.port
          in
          Queue.add l (lane key))
        losses;
      (* Charge [amount] FIFO into [q], only consuming losses that already
         happened (slot <= now); returns what could not be absorbed.  Lanes
         are slot-ordered, so exhausted heads can be discarded and the walk
         stops at the first future loss — amortized O(1) per unit. *)
      let charge_lane q ~now amount =
        let rest = ref amount in
        let blocked = ref false in
        while (not !blocked) && !rest > 0 && not (Queue.is_empty q) do
          let l = Queue.peek q in
          if l.slot > now then blocked := true
          else begin
            let take = min !rest (l.capacity - l.charged) in
            l.charged <- l.charged + take;
            rest := !rest - take;
            if l.charged = l.capacity then ignore (Queue.pop q)
          end
        done;
        !rest
      in
      (* Ports present in either table (per-port mode). *)
      let port_set = Hashtbl.create 32 in
      if per_port_mode then begin
        Hashtbl.iter (fun (_, p) _ -> Hashtbl.replace port_set p ()) tx_a;
        Hashtbl.iter (fun (_, p) _ -> Hashtbl.replace port_set p ()) tx_b
      end;
      let ports =
        if per_port_mode then
          List.sort compare
            (Hashtbl.fold (fun p () acc -> p :: acc) port_set [])
        else [ 0 ]
      in
      (* Aggregate mode collapses each table to a per-slot vector up front;
         per-port mode reads the (slot, port) cells directly. *)
      let aggregate tbl =
        let v = Array.make (max slots 1) 0 in
        Hashtbl.iter
          (fun (slot, _) value -> if slot < slots then v.(slot) <- v.(slot) + value)
          tbl;
        v
      in
      let agg_a = if per_port_mode then [||] else aggregate tx_a in
      let agg_b = if per_port_mode then [||] else aggregate tx_b in
      let tx_at tbl agg slot port =
        if per_port_mode then
          Option.value (Hashtbl.find_opt tbl (slot, port)) ~default:0
        else agg.(slot)
      in
      let charged = ref 0
      and uncharged = ref 0
      and credits = ref 0
      and total_a = ref 0
      and total_b = ref 0 in
      let port_regret = Hashtbl.create 32 in
      let cum = ref 0 in
      let sample_every = max 1 (slots / 256) in
      let series = ref [] in
      for slot = 0 to slots - 1 do
        List.iter
          (fun port ->
            let va = tx_at tx_a agg_a slot port
            and vb = tx_at tx_b agg_b slot port in
            total_a := !total_a + va;
            total_b := !total_b + vb;
            let delta = va - vb in
            cum := !cum + delta;
            if per_port_mode then
              Hashtbl.replace port_regret port
                (delta
                + Option.value (Hashtbl.find_opt port_regret port) ~default:0);
            if delta < 0 then credits := !credits - delta
            else if delta > 0 then begin
              let rest = charge_lane (lane (if per_port_mode then port else 0)) ~now:slot delta in
              let rest =
                if per_port_mode && rest > 0 then
                  charge_lane (lane (-1)) ~now:slot rest
                else rest
              in
              charged := !charged + (delta - rest);
              uncharged := !uncharged + rest
            end)
          ports;
        if slot mod sample_every = 0 || slot = slots - 1 then
          series := (slot, !cum) :: !series
      done;
      let gap = !total_a - !total_b in
      (* Arithmetic identity, not an empirical check: every positive delta
         went to charged or uncharged, every negative one to credits. *)
      if !charged + !uncharged - !credits <> gap then
        invalid_arg "Attribution.attribute: internal accounting broken";
      let ranked =
        List.sort
          (fun (x : loss) (y : loss) ->
            match compare y.charged x.charged with
            | 0 -> compare x.slot y.slot
            | c -> c)
          (List.filter (fun (l : loss) -> l.charged > 0) losses)
      in
      Ok
        {
          a = a.Trace_file.src;
          b = b.Trace_file.src;
          slots;
          tx_a = !total_a;
          tx_b = !total_b;
          gap;
          charged = !charged;
          uncharged = !uncharged;
          credits = !credits;
          per_port_mode;
          losses;
          ranked;
          regret_series = Array.of_list (List.rev !series);
          port_regret =
            List.sort
              (fun (_, x) (_, y) -> compare y x)
              (Hashtbl.fold (fun p r acc -> (p, r) :: acc) port_regret []);
        }
    end
