module Event = Smbm_obs.Event

type decision =
  | Accepted
  | Pushed of { victim : int; lost : int }
  | Dropped of { value : int }

type admission = { slot : int; index : int; dest : int; decision : decision }

type divergence = {
  slot : int;
  index : int;
  dest : int;
  a : decision;
  b : decision;
}

type row = {
  slot : int;
  arrivals : int;
  diffs : int;
  occ_a : int;
  occ_b : int;
  cum_tx_a : int;
  cum_tx_b : int;
}

type t = {
  a : string;
  b : string;
  admissions : int;
  first : divergence option;
  diffs : int;
  rows : row list;
  slots_a : int;
  slots_b : int;
}

let decision_to_string = function
  | Accepted -> "accept"
  | Pushed { victim; lost } -> Printf.sprintf "push-out[%d,-%d]" victim lost
  | Dropped { value } -> Printf.sprintf "drop[-%d]" value

(* An engine's arrival phase emits, per arrival and in order:
   [Arrival; (Push_out)?; (Accept | Drop)].  The parser walks that grammar;
   anything else means the stream is structurally broken. *)
let admissions (s : Trace_file.source) =
  if s.Trace_file.evicted > 0 then
    Error
      (Printf.sprintf
         "source %S is truncated (%d events evicted): its decision sequence \
          is incomplete and cannot be diffed"
         s.Trace_file.src s.Trace_file.evicted)
  else begin
    let out = ref [] in
    let pending = ref None (* (slot, index, dest, push-out) *) in
    let cur_slot = ref 0 in
    let cur_index = ref 0 in
    let error = ref None in
    let fail lineno fmt =
      Printf.ksprintf
        (fun msg ->
          if !error = None then
            error :=
              Some (Printf.sprintf "%s: line %d: %s" s.Trace_file.src lineno msg))
        fmt
    in
    List.iter
      (fun { Trace_file.lineno; event = ev } ->
        if !error = None then begin
          let slot = ev.Event.slot in
          match ev.Event.kind with
          | Event.Arrival { dest } ->
            if !pending <> None then fail lineno "arrival left unresolved";
            if slot <> !cur_slot then begin
              cur_slot := slot;
              cur_index := 0
            end;
            pending := Some (slot, !cur_index, dest, None);
            incr cur_index
          | Event.Push_out { victim; dest = _; lost } -> (
            match !pending with
            | Some (pslot, pidx, pdest, None) ->
              pending := Some (pslot, pidx, pdest, Some (victim, lost))
            | Some _ -> fail lineno "second push-out for one arrival"
            | None -> fail lineno "push-out without a pending arrival")
          | Event.Accept _ -> (
            match !pending with
            | Some (pslot, pidx, pdest, push) ->
              let decision =
                match push with
                | Some (victim, lost) -> Pushed { victim; lost }
                | None -> Accepted
              in
              out :=
                { slot = pslot; index = pidx; dest = pdest; decision } :: !out;
              pending := None
            | None -> fail lineno "accept without a pending arrival")
          | Event.Drop { dest = _; value } -> (
            match !pending with
            | Some (pslot, pidx, pdest, None) ->
              out :=
                {
                  slot = pslot;
                  index = pidx;
                  dest = pdest;
                  decision = Dropped { value };
                }
                :: !out;
              pending := None
            | Some _ -> fail lineno "drop after a push-out"
            | None -> fail lineno "drop without a pending arrival")
          | Event.Transmit _ | Event.Transmit_bulk _ | Event.Flush _
          | Event.Slot_end _ | Event.Reconfig _ | Event.Health _
          | Event.Truncated _ ->
            if !pending <> None then fail lineno "arrival left unresolved"
        end)
      s.Trace_file.lines;
    if !error = None && !pending <> None then
      error := Some (s.Trace_file.src ^ ": trailing unresolved arrival");
    match !error with Some e -> Error e | None -> Ok (List.rev !out)
  end

(* Per-slot traversal aggregates: occupancy at slot_end and objective
   transmitted within the slot, indexed by slot. *)
let slot_stats (s : Trace_file.source) =
  let occ = Hashtbl.create 256 in
  let tx = Hashtbl.create 256 in
  let slots = ref 0 in
  List.iter
    (fun { Trace_file.event = ev; _ } ->
      let slot = ev.Event.slot in
      match ev.Event.kind with
      | Event.Slot_end { occupancy } ->
        Hashtbl.replace occ slot occupancy;
        incr slots
      | Event.Transmit { value; _ } | Event.Transmit_bulk { value; _ } ->
        Hashtbl.replace tx slot
          (value + Option.value (Hashtbl.find_opt tx slot) ~default:0)
      | _ -> ())
    s.Trace_file.lines;
  (occ, tx, !slots)

let arrival_signature adms =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun (a : admission) ->
      Hashtbl.replace tbl a.slot
        (a.dest :: Option.value (Hashtbl.find_opt tbl a.slot) ~default:[]))
    adms;
  tbl

let check_alignment ~a_name ~b_name a_adms b_adms =
  let sig_a = arrival_signature a_adms and sig_b = arrival_signature b_adms in
  let mismatch = ref None in
  Hashtbl.iter
    (fun slot dests ->
      match !mismatch with
      | Some _ -> ()
      | None ->
        if Option.value (Hashtbl.find_opt sig_b slot) ~default:[] <> dests
        then mismatch := Some slot)
    sig_a;
  Hashtbl.iter
    (fun slot dests ->
      match !mismatch with
      | Some _ -> ()
      | None ->
        if Option.value (Hashtbl.find_opt sig_a slot) ~default:[] <> dests
        then mismatch := Some slot)
    sig_b;
  match !mismatch with
  | Some slot ->
    Error
      (Printf.sprintf
         "%S and %S are not traces of the same arrival instance: arrival \
          sequences differ at slot %d"
         a_name b_name slot)
  | None -> Ok ()

let align ~(a : Trace_file.source) ~(b : Trace_file.source) =
  match admissions a with
  | Error e -> Error e
  | Ok a_adms -> (
    match admissions b with
    | Error e -> Error e
    | Ok b_adms ->
      check_alignment ~a_name:a.Trace_file.src ~b_name:b.Trace_file.src a_adms
        b_adms)

let diff ~(a : Trace_file.source) ~(b : Trace_file.source) =
  match admissions a with
  | Error e -> Error e
  | Ok a_adms -> (
    match admissions b with
    | Error e -> Error e
    | Ok b_adms -> (
      match
        check_alignment ~a_name:a.Trace_file.src ~b_name:b.Trace_file.src
          a_adms b_adms
      with
      | Error e -> Error e
      | Ok () ->
        (* Same instance: the two admission sequences pair up 1:1. *)
        let first = ref None in
        let diffs = ref 0 in
        let slot_diffs = Hashtbl.create 256 in
        let slot_arrivals = Hashtbl.create 256 in
        List.iter2
          (fun (x : admission) (y : admission) ->
            Hashtbl.replace slot_arrivals x.slot
              (1 + Option.value (Hashtbl.find_opt slot_arrivals x.slot) ~default:0);
            if x.decision <> y.decision then begin
              incr diffs;
              Hashtbl.replace slot_diffs x.slot
                (1 + Option.value (Hashtbl.find_opt slot_diffs x.slot) ~default:0);
              if !first = None then
                first :=
                  Some
                    {
                      slot = x.slot;
                      index = x.index;
                      dest = x.dest;
                      a = x.decision;
                      b = y.decision;
                    }
            end)
          a_adms b_adms;
        let occ_a, tx_a, slots_a = slot_stats a in
        let occ_b, tx_b, slots_b = slot_stats b in
        let rows = ref [] in
        let cum_a = ref 0 and cum_b = ref 0 in
        for slot = 0 to min slots_a slots_b - 1 do
          cum_a := !cum_a + Option.value (Hashtbl.find_opt tx_a slot) ~default:0;
          cum_b := !cum_b + Option.value (Hashtbl.find_opt tx_b slot) ~default:0;
          rows :=
            {
              slot;
              arrivals =
                Option.value (Hashtbl.find_opt slot_arrivals slot) ~default:0;
              diffs = Option.value (Hashtbl.find_opt slot_diffs slot) ~default:0;
              occ_a = Option.value (Hashtbl.find_opt occ_a slot) ~default:0;
              occ_b = Option.value (Hashtbl.find_opt occ_b slot) ~default:0;
              cum_tx_a = !cum_a;
              cum_tx_b = !cum_b;
            }
            :: !rows
        done;
        Ok
          {
            a = a.Trace_file.src;
            b = b.Trace_file.src;
            admissions = List.length a_adms;
            first = !first;
            diffs = !diffs;
            rows = List.rev !rows;
            slots_a;
            slots_b;
          }))
