(** Regret attribution: charge a policy's throughput gap against a better
    run to the concrete decisions that lost the packets.

    Given two traces of the same arrival instance — [a] the reference (the
    winner: OPT, [Exact_opt], or simply the better policy) and [b] the
    policy under scrutiny — every unit of objective (transmission in the
    processing model, value otherwise) that [a] delivered and [b] did not
    is charged to one of [b]'s loss events:

    - walking the slots in order, the per-slot per-port transmission
      surplus [tx_a - tx_b] (positive part) is charged FIFO to [b]'s
      still-uncharged losses on that port up to that slot — drops charge
      the arrival's destination, push-outs the victim queue, flushes a
      global pool;
    - slots/ports where [b] out-transmitted [a] accumulate as [credits];
    - surplus no loss can absorb is left [uncharged] (in the value model a
      flush's objective capacity is under-declared — the event carries the
      packet count, not the flushed value — so late surplus can overflow
      there).

    By construction [charged + uncharged - credits = gap] {e exactly}: the
    attribution is conservative, every lost unit is accounted for.

    When either trace lacks per-port transmissions (single-PQ reference
    traces use [Transmit_bulk] with [dest = -1]), the charge runs in
    aggregate mode: one global bucket instead of per-port lanes. *)

type loss_kind = Drop | Push_out | Flush

type loss = {
  lineno : int;
  slot : int;
  port : int;  (** charged queue; [-1] for flushes *)
  kind : loss_kind;
  capacity : int;  (** objective units this event lost *)
  mutable charged : int;  (** regret units attributed to it *)
}

type t = {
  a : string;
  b : string;
  slots : int;
  tx_a : int;  (** total objective [a] transmitted *)
  tx_b : int;
  gap : int;  (** [tx_a - tx_b] *)
  charged : int;
  uncharged : int;
  credits : int;
  per_port_mode : bool;
  losses : loss list;  (** every loss of [b], stream order *)
  ranked : loss list;  (** losses with [charged > 0], most expensive first *)
  regret_series : (int * int) array;
      (** (slot, cumulative regret), downsampled to <= 256 points *)
  port_regret : (int * int) list;
      (** final per-port regret (per-port mode only), descending *)
}

val attribute :
  a:Trace_file.source -> b:Trace_file.source -> (t, string) result
(** Errors when the traces are not the same arrival instance, a stream is
    truncated or structurally broken, or the slot counts differ. *)

val kind_to_string : loss_kind -> string
