open Smbm_core

(* Internal representation: [fill b i] appends slot [i]'s arrivals onto [b]
   (never clearing it — merged components share one batch).  The slot
   argument is authoritative and always equals the number of slots already
   consumed from this workload; [next]/[next_into] are the only entry points
   and they maintain that invariant, so stateful generators may ignore it
   and pure ones may index with it — the two conventions coincide. *)
type t = {
  fill : Arrival_batch.t -> int -> unit;
  mutable slot : int;
  mean_rate : float option;
  mutable scratch : Arrival_batch.t option;
      (* lazily-created private batch backing the list-compatibility [next] *)
}

let make ?mean_rate fill = { fill; slot = 0; mean_rate; scratch = None }

(* Append one slot of [t] onto [b], advancing [t]'s own counter.  This is
   how combinators consume their children: the child's counter advances in
   lockstep with the parent's, so the slot argument a child's [fill] sees is
   the child's own consumed-slot count, same as at top level. *)
let fill_child t b =
  t.fill b t.slot;
  t.slot <- t.slot + 1

let push_list b arrivals = List.iter (Arrival_batch.push_arrival b) arrivals

let of_sources sources =
  let mean = List.fold_left (fun acc s -> acc +. Source.mean_rate s) 0.0 sources in
  let fill b _ =
    (* Historical order contract: sources prepend-accumulated onto one list,
       so the slot reads as the reverse of the draw sequence.  Append in
       draw order (preserving every RNG stream), then reverse the appended
       segment in place. *)
    let from = Arrival_batch.length b in
    List.iter (fun s -> Source.step_into s ~into:b) sources;
    Arrival_batch.reverse_from b ~from
  in
  make ~mean_rate:mean fill

let of_fun f = make (fun b i -> push_list b (f i))

let of_slots slots =
  make (fun b i -> if i < Array.length slots then push_list b slots.(i))

let of_fun_into f = make f

let merge components =
  let mean_rate =
    List.fold_left
      (fun acc c ->
        match acc, c.mean_rate with
        | Some total, Some r -> Some (total +. r)
        | _, None | None, _ -> None)
      (Some 0.0) components
  in
  { (make (fun b _ -> List.iter (fun c -> fill_child c b) components)) with
    mean_rate }

let map f t =
  let fill b _ =
    let from = Arrival_batch.length b in
    fill_child t b;
    for i = from to Arrival_batch.length b - 1 do
      let a =
        f { Arrival.dest = Arrival_batch.dest b i; value = Arrival_batch.value b i }
      in
      Arrival_batch.set b i ~dest:a.Arrival.dest ~value:a.Arrival.value
    done
  in
  { (make fill) with mean_rate = t.mean_rate }

let take n t =
  { (make (fun b i -> if i < n then fill_child t b)) with mean_rate = t.mean_rate }

let next_into t b =
  Arrival_batch.clear b;
  fill_child t b

let next t =
  let b =
    match t.scratch with
    | Some b -> b
    | None ->
      let b = Arrival_batch.create () in
      t.scratch <- Some b;
      b
  in
  next_into t b;
  Arrival_batch.to_list b

let slot t = t.slot
let mean_rate t = t.mean_rate
