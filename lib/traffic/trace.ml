open Smbm_prelude
open Smbm_core

type t = Arrival.t list array

let record workload ~slots =
  Array.init slots (fun _ -> Workload.next workload)

let of_slots slots = Array.map (fun l -> l) slots
let slots t = Array.length t
let arrivals t = Array.fold_left (fun acc l -> acc + List.length l) 0 t

let get t i =
  if i < 0 || i >= Array.length t then invalid_arg "Trace.get: out of bounds";
  t.(i)

let to_workload t =
  Workload.of_fun (fun i -> if i < Array.length t then t.(i) else [])

let save t oc =
  Array.iter
    (fun arrivals ->
      let cells =
        List.map
          (fun (a : Arrival.t) -> Printf.sprintf "%d:%d" a.dest a.value)
          arrivals
      in
      output_string oc (String.concat " " cells);
      output_char oc '\n')
    t

let parse_line line =
  let line = String.trim line in
  if line = "" then []
  else
    String.split_on_char ' ' line
    |> List.filter (fun s -> s <> "")
    |> List.map (fun cell ->
           match String.split_on_char ':' cell with
           | [ d; v ] -> (
             match int_of_string_opt d, int_of_string_opt v with
             | Some dest, Some value -> Arrival.make ~dest ~value ()
             | None, _ | _, None ->
               failwith ("Trace.load: malformed cell " ^ cell))
           | _ -> failwith ("Trace.load: malformed cell " ^ cell))

let load ic =
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  (* [!lines] is in reverse file order; rev_map restores it. *)
  !lines |> List.rev_map parse_line |> Array.of_list

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun la lb -> List.equal Arrival.equal la lb) a b

module Compact = struct
  type trace = t

  (* The columns are off-heap {!Int_col}s: a compact trace's payload lives
     outside the OCaml heap, so the GC never scans it and several domains
     can replay the same trace (or [pack]ed windows of one shared slab)
     concurrently without copies — compact traces are immutable after
     construction. *)
  type t = {
    offsets : Int_col.t;  (* length slots + 1; slot i spans [offsets.(i), offsets.(i+1)) *)
    dest : Int_col.t;
    value : Int_col.t;
  }

  let slots t = Int_col.length t.offsets - 1
  let arrivals t = Int_col.get t.offsets (Int_col.length t.offsets - 1)

  let of_workload workload ~slots =
    if slots < 0 then invalid_arg "Trace.Compact.of_workload: negative slots";
    (* Build into growable heap arrays, then copy once into the off-heap
       columns at their exact final size. *)
    let offsets = Array.make (slots + 1) 0 in
    let dest = ref (Array.make (max 64 slots) 0) in
    let value = ref (Array.make (max 64 slots) 0) in
    let len = ref 0 in
    let batch = Arrival_batch.create () in
    for i = 0 to slots - 1 do
      Workload.next_into workload batch;
      let n = Arrival_batch.length batch in
      if !len + n > Array.length !dest then begin
        let capacity = max (2 * Array.length !dest) (!len + n) in
        let extend a = Array.append a (Array.make (capacity - Array.length a) 0) in
        dest := extend !dest;
        value := extend !value
      end;
      Arrival_batch.iteri batch ~f:(fun j ~dest:d ~value:v ->
          !dest.(!len + j) <- d;
          !value.(!len + j) <- v);
      len := !len + n;
      offsets.(i + 1) <- !len
    done;
    {
      offsets = Int_col.of_array offsets;
      dest = Int_col.init !len (fun j -> !dest.(j));
      value = Int_col.init !len (fun j -> !value.(j));
    }

  let iter_slot t i ~f =
    if i < 0 || i >= slots t then
      invalid_arg "Trace.Compact.iter_slot: out of bounds";
    (* Offsets are monotone within [0, arrivals] by construction, so the
       column reads inside the segment skip the bounds check. *)
    for j = Int_col.get t.offsets i to Int_col.get t.offsets (i + 1) - 1 do
      f ~dest:(Int_col.unsafe_get t.dest j) ~value:(Int_col.unsafe_get t.value j)
    done

  (* Replay straight out of the flat columns: the filled batch segment is
     one column-to-array copy, no per-packet allocation.  Slots beyond the
     end are empty, matching [to_workload]. *)
  let replay t =
    let n = slots t in
    Workload.of_fun_into (fun b i ->
        if i < n then
          for j = Int_col.get t.offsets i to Int_col.get t.offsets (i + 1) - 1
          do
            Arrival_batch.push b ~dest:(Int_col.unsafe_get t.dest j)
              ~value:(Int_col.unsafe_get t.value j)
          done)

  let of_trace (trace : trace) =
    let slots = Array.length trace in
    let offsets = Array.make (slots + 1) 0 in
    Array.iteri
      (fun i l -> offsets.(i + 1) <- offsets.(i) + List.length l)
      trace;
    let n = offsets.(slots) in
    let dest = Array.make (max n 1) 0 and value = Array.make (max n 1) 0 in
    Array.iteri
      (fun i l ->
        List.iteri
          (fun j (a : Arrival.t) ->
            dest.(offsets.(i) + j) <- a.dest;
            value.(offsets.(i) + j) <- a.value)
          l)
      trace;
    {
      offsets = Int_col.of_array offsets;
      dest = Int_col.init n (fun j -> dest.(j));
      value = Int_col.init n (fun j -> value.(j));
    }

  let to_trace t =
    Array.init (slots t) (fun i ->
        let base = Int_col.get t.offsets i in
        List.init
          (Int_col.get t.offsets (i + 1) - base)
          (fun j ->
            let j = base + j in
            { Arrival.dest = Int_col.get t.dest j; value = Int_col.get t.value j }))

  let equal a b =
    Int_col.equal a.offsets b.offsets
    && Int_col.equal a.dest b.dest
    && Int_col.equal a.value b.value

  (* Deterministic content digest: a fixed-width little-endian serialization
     of (slots, offsets, dest, value) hashed with MD5.  Two compact traces
     have equal signatures iff they are [equal] (modulo MD5 collisions), on
     any platform or OCaml version — and regardless of whether the columns
     own their storage or window a [pack]ed slab. *)
  let signature t =
    let buf =
      Buffer.create
        (8 * (Int_col.length t.offsets + (2 * Int_col.length t.dest)))
    in
    let add c =
      Buffer.add_int64_le buf (Int64.of_int (Int_col.length c));
      for j = 0 to Int_col.length c - 1 do
        Buffer.add_int64_le buf (Int64.of_int (Int_col.get c j))
      done
    in
    add t.offsets;
    add t.dest;
    add t.value;
    Digest.to_hex (Digest.string (Buffer.contents buf))

  (* Consolidate many compact traces into three shared slabs (one per
     column role) and hand back zero-copy windows.  Content-equal to the
     inputs ([equal]/[signature] agree); the point is memory topology: a
     parallel sweep's whole trace working set becomes three off-heap
     allocations that every domain reads through windows, instead of one
     heap triple per trace. *)
  let pack ts =
    match ts with
    | [] | [ _ ] -> ts
    | _ ->
      let total f = List.fold_left (fun acc t -> acc + Int_col.length (f t)) 0 ts in
      let slab_of f =
        let slab = Int_col.create (total f) in
        let pos = ref 0 in
        let windows =
          List.map
            (fun t ->
              let c = f t in
              let len = Int_col.length c in
              Int_col.blit ~src:c ~src_pos:0 ~dst:slab ~dst_pos:!pos ~len;
              let w = Int_col.sub slab ~pos:!pos ~len in
              pos := !pos + len;
              w)
            ts
        in
        windows
      in
      let offsets = slab_of (fun t -> t.offsets)
      and dest = slab_of (fun t -> t.dest)
      and value = slab_of (fun t -> t.value) in
      List.map2
        (fun offsets (dest, value) -> { offsets; dest; value })
        offsets (List.combine dest value)
end
