open Smbm_core

type t = Arrival.t list array

let record workload ~slots =
  Array.init slots (fun _ -> Workload.next workload)

let of_slots slots = Array.map (fun l -> l) slots
let slots t = Array.length t
let arrivals t = Array.fold_left (fun acc l -> acc + List.length l) 0 t

let get t i =
  if i < 0 || i >= Array.length t then invalid_arg "Trace.get: out of bounds";
  t.(i)

let to_workload t =
  Workload.of_fun (fun i -> if i < Array.length t then t.(i) else [])

let save t oc =
  Array.iter
    (fun arrivals ->
      let cells =
        List.map
          (fun (a : Arrival.t) -> Printf.sprintf "%d:%d" a.dest a.value)
          arrivals
      in
      output_string oc (String.concat " " cells);
      output_char oc '\n')
    t

let parse_line line =
  let line = String.trim line in
  if line = "" then []
  else
    String.split_on_char ' ' line
    |> List.filter (fun s -> s <> "")
    |> List.map (fun cell ->
           match String.split_on_char ':' cell with
           | [ d; v ] -> (
             match int_of_string_opt d, int_of_string_opt v with
             | Some dest, Some value -> Arrival.make ~dest ~value ()
             | None, _ | _, None ->
               failwith ("Trace.load: malformed cell " ^ cell))
           | _ -> failwith ("Trace.load: malformed cell " ^ cell))

let load ic =
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  (* [!lines] is in reverse file order; rev_map restores it. *)
  !lines |> List.rev_map parse_line |> Array.of_list

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun la lb -> List.equal Arrival.equal la lb) a b

module Compact = struct
  type trace = t

  type t = {
    offsets : int array;  (* length slots + 1; slot i spans [offsets.(i), offsets.(i+1)) *)
    dest : int array;
    value : int array;
  }

  let slots t = Array.length t.offsets - 1
  let arrivals t = t.offsets.(Array.length t.offsets - 1)

  let of_workload workload ~slots =
    if slots < 0 then invalid_arg "Trace.Compact.of_workload: negative slots";
    let offsets = Array.make (slots + 1) 0 in
    let dest = ref (Array.make (max 64 slots) 0) in
    let value = ref (Array.make (max 64 slots) 0) in
    let len = ref 0 in
    let batch = Arrival_batch.create () in
    for i = 0 to slots - 1 do
      Workload.next_into workload batch;
      let n = Arrival_batch.length batch in
      if !len + n > Array.length !dest then begin
        let capacity = max (2 * Array.length !dest) (!len + n) in
        let extend a = Array.append a (Array.make (capacity - Array.length a) 0) in
        dest := extend !dest;
        value := extend !value
      end;
      Arrival_batch.iteri batch ~f:(fun j ~dest:d ~value:v ->
          !dest.(!len + j) <- d;
          !value.(!len + j) <- v);
      len := !len + n;
      offsets.(i + 1) <- !len
    done;
    {
      offsets;
      dest = Array.sub !dest 0 !len;
      value = Array.sub !value 0 !len;
    }

  let iter_slot t i ~f =
    if i < 0 || i >= slots t then
      invalid_arg "Trace.Compact.iter_slot: out of bounds";
    for j = t.offsets.(i) to t.offsets.(i + 1) - 1 do
      f ~dest:t.dest.(j) ~value:t.value.(j)
    done

  (* Replay straight out of the flat arrays: the filled batch segment is one
     array-to-array copy, no per-packet allocation.  Slots beyond the end
     are empty, matching [to_workload]. *)
  let replay t =
    let n = slots t in
    Workload.of_fun_into (fun b i ->
        if i < n then
          for j = t.offsets.(i) to t.offsets.(i + 1) - 1 do
            Arrival_batch.push b ~dest:t.dest.(j) ~value:t.value.(j)
          done)

  let of_trace (trace : trace) =
    let slots = Array.length trace in
    let offsets = Array.make (slots + 1) 0 in
    Array.iteri
      (fun i l -> offsets.(i + 1) <- offsets.(i) + List.length l)
      trace;
    let n = offsets.(slots) in
    let dest = Array.make (max n 1) 0 and value = Array.make (max n 1) 0 in
    Array.iteri
      (fun i l ->
        List.iteri
          (fun j (a : Arrival.t) ->
            dest.(offsets.(i) + j) <- a.dest;
            value.(offsets.(i) + j) <- a.value)
          l)
      trace;
    { offsets; dest = Array.sub dest 0 n; value = Array.sub value 0 n }

  let to_trace t =
    Array.init (slots t) (fun i ->
        List.init (t.offsets.(i + 1) - t.offsets.(i)) (fun j ->
            let j = t.offsets.(i) + j in
            { Arrival.dest = t.dest.(j); value = t.value.(j) }))

  let equal a b = a.offsets = b.offsets && a.dest = b.dest && a.value = b.value

  (* Deterministic content digest: a fixed-width little-endian serialization
     of (slots, offsets, dest, value) hashed with MD5.  Two compact traces
     have equal signatures iff they are [equal] (modulo MD5 collisions), on
     any platform or OCaml version. *)
  let signature t =
    let buf = Buffer.create (8 * (Array.length t.offsets + 2 * Array.length t.dest)) in
    let add a =
      Buffer.add_int64_le buf (Int64.of_int (Array.length a));
      Array.iter (fun x -> Buffer.add_int64_le buf (Int64.of_int x)) a
    in
    add t.offsets;
    add t.dest;
    add t.value;
    Digest.to_hex (Digest.string (Buffer.contents buf))
end
