(** A workload is the per-slot arrival stream fed to every switch instance
    of an experiment.  Generating it once per slot and fanning it out keeps
    compared instances on byte-identical traffic.

    {2 Slot-argument convention}

    Generator functions ({!of_fun}, {!of_fun_into}) receive a slot index.
    The convention — uniform across every constructor and combinator — is:
    the index always equals the number of slots already consumed {e from
    that workload}, and slots are consumed strictly sequentially (the
    function sees 0, 1, 2, ... in order, exactly once each).  Combinators
    ({!merge}, {!map}, {!take}) advance their children one slot per parent
    slot, so a child's function also sees its own consecutive count.
    Stateful generators may therefore ignore the argument and pure ones may
    index with it; the two styles agree by construction.  (Historically
    [merge]/[map] threaded a private counter while [of_slots]/[take] used
    the argument — observably identical through {!next}, but two
    conventions; there is now one.)

    {2 Batched pipeline}

    {!next_into} fills a caller-supplied {!Smbm_core.Arrival_batch.t} in
    place and is the allocation-free hot path; {!next} is a thin
    compatibility shim over it that converts the slot to a list (backed by
    a private reusable batch, so existing call sites keep working at the
    old cost). *)

open Smbm_core

type t

val of_sources : Source.t list -> t
(** Interleaving of independent sources (the paper's 500-source setup). *)

val of_fun : (int -> Arrival.t list) -> t
(** Arbitrary slot -> arrivals function (slot numbers start at 0); used by
    the adversarial lower-bound constructions. *)

val of_fun_into : (Arrival_batch.t -> int -> unit) -> t
(** Allocation-free generator: [f batch i] appends slot [i]'s arrivals onto
    [batch] (which may already hold arrivals of merged siblings — append,
    never clear).  Used by {!Trace.Compact.replay}. *)

val of_slots : Arrival.t list array -> t
(** Fixed finite schedule; empty after the last slot. *)

val merge : t list -> t
(** Superposition: each slot concatenates the component workloads' arrivals
    (in list order).  Useful for mixing background MMPP traffic with an
    adversarial trickle.  The merged rate is the sum of known rates (known
    only if every component knows its own). *)

val map : (Arrival.t -> Arrival.t) -> t -> t
(** Relabel arrivals on the fly (e.g. remap ports, rescale values). *)

val take : int -> t -> t
(** The first [n] slots of the workload; empty afterwards. *)

val next : t -> Arrival.t list
(** Arrivals of the next slot, in input-port order (compatibility shim;
    allocates the returned list). *)

val next_into : t -> Arrival_batch.t -> unit
(** Clear [batch], then fill it with the next slot's arrivals in input-port
    order.  Consumes the same RNG streams as {!next}: interleaving the two
    on one workload yields the same arrival sequence.  Steady-state cost is
    allocation-free. *)

val slot : t -> int
(** Number of slots already consumed. *)

val mean_rate : t -> float option
(** Long-run packets per slot, when the workload knows it (source-based
    workloads only). *)
