open Smbm_prelude
open Smbm_core

type t = { mmpp : Mmpp.t; label : Label.t; rng : Rng.t }

let create ~mmpp ~label ~rng = { mmpp; label; rng }

let step t ~into =
  let count = Mmpp.step t.mmpp in
  for _ = 1 to count do
    into := t.label t.rng :: !into
  done

(* Same RNG consumption order as [step] (state transition, then one label
   draw per emission), but appending into the batch instead of prepending
   onto a list; callers that owe list order reverse the batch segment. *)
let step_into t ~into =
  let count = Mmpp.step t.mmpp in
  for _ = 1 to count do
    let a = t.label t.rng in
    Arrival_batch.push into ~dest:a.Arrival.dest ~value:a.Arrival.value
  done

let mean_rate t = Mmpp.mean_rate t.mmpp
