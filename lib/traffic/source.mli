(** A traffic source: an MMPP emission process plus a labelling rule. *)

open Smbm_prelude
open Smbm_core

type t

val create : mmpp:Mmpp.t -> label:Label.t -> rng:Rng.t -> t
(** [rng] drives the labelling (the MMPP holds its own stream). *)

val step : t -> into:Arrival.t list ref -> unit
(** Advance one slot, prepending this slot's emissions onto [into]. *)

val step_into : t -> into:Smbm_core.Arrival_batch.t -> unit
(** Advance one slot, appending this slot's emissions onto [into].  Consumes
    the RNG streams exactly as {!step} does, so the two are interchangeable
    mid-run; only the accumulation order differs (append vs prepend). *)

val mean_rate : t -> float
