(** Recorded arrival traces: capture a workload, replay it later, or persist
    it to disk in a one-line-per-slot text format ("dest:value dest:value
    ...", blank line for an idle slot). *)

open Smbm_core

type t

val record : Workload.t -> slots:int -> t
(** Consume [slots] slots of the workload into a trace. *)

val of_slots : Arrival.t list array -> t
val slots : t -> int
val arrivals : t -> int
(** Total packet count. *)

val get : t -> int -> Arrival.t list
(** Arrivals of slot [i].  @raise Invalid_argument out of bounds. *)

val to_workload : t -> Workload.t
(** Replay; slots beyond the end are empty. *)

val save : t -> out_channel -> unit
val load : in_channel -> t
(** @raise Failure on malformed input. *)

val equal : t -> t -> bool

(** A whole run's arrivals materialized as flat struct-of-arrays storage:
    [dest]/[value] columns plus a per-slot offset index.  Built once,
    replayed many times — the sweep trace cache shares one compact trace
    across every instance of a point and across axis values whose traffic
    parameters coincide.  Replay is allocation-free (column reads straight
    into the caller's {!Smbm_core.Arrival_batch.t}).

    The columns live off the OCaml heap ({!Smbm_prelude.Int_col}): compact
    traces are immutable after construction and safe to read concurrently
    from several domains without copying. *)
module Compact : sig
  type trace := t
  type t

  val of_workload : Workload.t -> slots:int -> t
  (** Consume [slots] slots.  The arrival sequence recorded is exactly what
      {!Workload.next}/{!Workload.next_into} would have yielded. *)

  val slots : t -> int
  val arrivals : t -> int

  val iter_slot : t -> int -> f:(dest:int -> value:int -> unit) -> unit
  (** Arrivals of slot [i] in arrival order.
      @raise Invalid_argument out of bounds. *)

  val replay : t -> Workload.t
  (** A workload that replays the trace; slots beyond the end are empty.
      Replaying consumes no RNG and allocates nothing per slot, and the
      replayed stream is bit-identical to the recorded one. *)

  val of_trace : trace -> t
  val to_trace : t -> trace

  val equal : t -> t -> bool

  val signature : t -> string
  (** Deterministic hex digest of the full arrival content; equal
      signatures <=> equal traces (modulo hash collisions).  Stable across
      platforms and runs, so it can key caches and cross-process
      comparisons.  Invariant under {!pack}. *)

  val pack : t list -> t list
  (** Consolidate the traces into one shared off-heap slab per column and
      return zero-copy windows, in order.  Each result is {!equal} to its
      input (same {!signature}); only the memory topology changes — a
      parallel sweep's whole trace working set becomes three allocations
      that every domain reads through windows, instead of one triple of
      columns per trace. *)
end
