(* Compare |Qa|/avg_a > |Qb|/avg_b as |Qa|^2 * sum_b > |Qb|^2 * sum_a, in
   exact integer arithmetic (values and sizes are bounded by B * k, far from
   overflow on 63-bit ints). *)
let ratio_greater ~len_a ~sum_a ~len_b ~sum_b =
  len_a * len_a * sum_b > len_b * len_b * sum_a

(* argmax over eligible queues of the ratio; equal ratios prefer the queue
   with the smaller minimum value, then the larger index.  The exact
   cross-multiplied comparison is a total order on eligible queues, so the
   original left-to-right scan and the indexed read pick the same victim;
   [select_victim_scan] keeps the scan as the reference oracle.  All state
   reads go through the switch's representation-independent accessors so
   either backend serves. *)

let min_of sw i = Value_switch.queue_min_value_or sw i ~default:max_int

let select_victim_scan ?(protect_last = false) sw =
  let min_len = if protect_last then 2 else 1 in
  let best = ref None in
  for j = 0 to Value_switch.n sw - 1 do
    if Value_switch.queue_length sw j >= min_len then begin
      let len = Value_switch.queue_length sw j
      and sum = Value_switch.queue_total_value sw j in
      match !best with
      | None -> best := Some (j, len, sum)
      | Some (bj, blen, bsum) ->
        if ratio_greater ~len_a:len ~sum_a:sum ~len_b:blen ~sum_b:bsum then
          best := Some (j, len, sum)
        else if not (ratio_greater ~len_a:blen ~sum_a:bsum ~len_b:len ~sum_b:sum)
        then begin
          (* Equal ratios: prefer the queue with the smaller minimum value,
             then the larger index. *)
          if min_of sw j <= min_of sw bj then best := Some (j, len, sum)
        end
    end
  done;
  match !best with Some (j, _, _) -> Some j | None -> None

(* Flat backend: the ratio order is not lexicographic, so it gets
   {!Agg_index.create_ratio} — a monomorphic tree comparing the exact
   cross-multiplication over int key columns.  The length key doubles as
   the eligibility flag (-1 = ineligible, ranking below all eligible
   queues); the sum column aliases the live per-port value totals (never
   read for ineligible queues, live for eligible ones); the negated minimum
   is a derived tie key. *)
let index ~protect_last sw =
  let min_len = if protect_last then 2 else 1 in
  let key = if protect_last then "mrd:protect" else "mrd" in
  match Value_switch.flat_view sw with
  | Some v ->
    Value_switch.find_index_with sw ~key (fun ~n ->
        let len = Array.make n (-1) and negmin = Array.make n 0 in
        Agg_index.create_ratio ~n ~len ~sum:v.Value_switch.view_qsum ~negmin
          ~refresh:(fun j ->
            let l = v.Value_switch.view_qlen.(j) in
            if l >= min_len then begin
              len.(j) <- l;
              negmin.(j) <-
                -(Value_switch.view_min_value_or v j ~default:max_int)
            end
            else begin
              len.(j) <- -1;
              negmin.(j) <- 0
            end)
          ())
  | None ->
    Value_switch.find_index sw ~key ~better:(fun a b ->
        let la = Value_switch.queue_length sw a
        and lb = Value_switch.queue_length sw b in
        let ea = la >= min_len and eb = lb >= min_len in
        if ea <> eb then ea
        else if not ea then a > b
        else begin
          let sa = Value_switch.queue_total_value sw a
          and sb = Value_switch.queue_total_value sw b in
          if ratio_greater ~len_a:la ~sum_a:sa ~len_b:lb ~sum_b:sb then true
          else if ratio_greater ~len_a:lb ~sum_a:sb ~len_b:la ~sum_b:sa then
            false
          else begin
            let ma = min_of sw a and mb = min_of sw b in
            ma < mb || (ma = mb && a > b)
          end
        end)

let select_victim_indexed ~protect_last idx sw =
  let min_len = if protect_last then 2 else 1 in
  let c = Agg_index.top idx in
  if c < 0 || Value_switch.queue_length sw c < min_len then None else Some c

let select_victim ?(protect_last = false) sw =
  select_victim_indexed ~protect_last (index ~protect_last sw) sw

let make ?(protect_last = false) ?(impl = `Indexed) _config =
  let name = if protect_last then "MRD1" else "MRD" in
  let backend =
    match impl with `Flat -> `Flat | `Indexed | `Scan -> `Linked
  in
  let cached_index =
    let cache = ref None in
    fun sw ->
      match !cache with
      | Some (sw', idx) when sw' == sw -> idx
      | Some _ | None ->
        let idx = index ~protect_last sw in
        cache := Some (sw, idx);
        idx
  in
  let select =
    match impl with
    | `Scan -> fun sw -> select_victim_scan ~protect_last sw
    | `Indexed | `Flat ->
      fun sw -> select_victim_indexed ~protect_last (cached_index sw) sw
  in
  let admit_batch =
    match impl with
    | `Scan | `Indexed -> None
    | `Flat ->
      Some
        (fun sw batch (c : Admission.counters) ->
          let idx = cached_index sw in
          for i = 0 to Arrival_batch.length batch - 1 do
            let dest = Arrival_batch.unsafe_dest batch i
            and value = Arrival_batch.unsafe_value batch i in
            if not (Value_switch.is_full sw) then begin
              Value_switch.accept_unit sw ~dest ~value;
              c.Admission.accepted <- c.Admission.accepted + 1
            end
            else if
              (* Same drop gate as the per-packet path below, through the
                 allocation-free tracker read (a full buffer is non-empty,
                 so the [max_int] default is never taken). *)
              Value_switch.min_value_or sw ~default:max_int <= value
            then begin
              match select_victim_indexed ~protect_last idx sw with
              | Some victim ->
                ignore (Value_switch.push_out_lost sw ~victim : int);
                Value_switch.accept_unit sw ~dest ~value;
                c.Admission.pushed_out <- c.Admission.pushed_out + 1;
                c.Admission.accepted <- c.Admission.accepted + 1
              | None -> c.Admission.dropped <- c.Admission.dropped + 1
            end
            else c.Admission.dropped <- c.Admission.dropped + 1
          done)
  in
  Value_policy.make ~backend ?admit_batch ~name ~push_out:true
    (fun sw ~dest:_ ~value ->
      match Value_policy.greedy_accept sw with
      | Some d -> d
      | None -> (
        (* The paper drops only when the buffer minimum is strictly bigger
           than the arriving value; on equality MRD pushes out, which is
           what makes it emulate LQD under unit values.  [min_value] is the
           switch's O(1) incremental tracker, so this drop gate no longer
           rescans every queue. *)
        match Value_switch.min_value sw with
        | Some m when m <= value -> (
          match select sw with
          | Some victim -> Decision.Push_out { victim }
          | None -> Decision.Drop)
        | Some _ | None -> Decision.Drop))
