(* Compare |Qa|/avg_a > |Qb|/avg_b as |Qa|^2 * sum_b > |Qb|^2 * sum_a, in
   exact integer arithmetic (values and sizes are bounded by B * k, far from
   overflow on 63-bit ints). *)
let ratio_greater ~len_a ~sum_a ~len_b ~sum_b =
  len_a * len_a * sum_b > len_b * len_b * sum_a

(* argmax over eligible queues of the ratio; equal ratios prefer the queue
   with the smaller minimum value, then the larger index.  The exact
   cross-multiplied comparison is a total order on eligible queues, so the
   original left-to-right scan and the indexed read pick the same victim;
   [select_victim_scan] keeps the scan as the reference oracle.  All state
   reads go through the switch's representation-independent accessors so
   either backend serves. *)

let min_of sw i = Value_switch.queue_min_value_or sw i ~default:max_int

let select_victim_scan ?(protect_last = false) sw =
  let min_len = if protect_last then 2 else 1 in
  let best = ref None in
  for j = 0 to Value_switch.n sw - 1 do
    if Value_switch.queue_length sw j >= min_len then begin
      let len = Value_switch.queue_length sw j
      and sum = Value_switch.queue_total_value sw j in
      match !best with
      | None -> best := Some (j, len, sum)
      | Some (bj, blen, bsum) ->
        if ratio_greater ~len_a:len ~sum_a:sum ~len_b:blen ~sum_b:bsum then
          best := Some (j, len, sum)
        else if not (ratio_greater ~len_a:blen ~sum_a:bsum ~len_b:len ~sum_b:sum)
        then begin
          (* Equal ratios: prefer the queue with the smaller minimum value,
             then the larger index. *)
          if min_of sw j <= min_of sw bj then best := Some (j, len, sum)
        end
    end
  done;
  match !best with Some (j, _, _) -> Some j | None -> None

let index ~protect_last sw =
  let min_len = if protect_last then 2 else 1 in
  Value_switch.find_index sw
    ~key:(if protect_last then "mrd:protect" else "mrd")
    ~better:(fun a b ->
      let la = Value_switch.queue_length sw a
      and lb = Value_switch.queue_length sw b in
      let ea = la >= min_len and eb = lb >= min_len in
      if ea <> eb then ea
      else if not ea then a > b
      else begin
        let sa = Value_switch.queue_total_value sw a
        and sb = Value_switch.queue_total_value sw b in
        if ratio_greater ~len_a:la ~sum_a:sa ~len_b:lb ~sum_b:sb then true
        else if ratio_greater ~len_a:lb ~sum_a:sb ~len_b:la ~sum_b:sa then
          false
        else begin
          let ma = min_of sw a and mb = min_of sw b in
          ma < mb || (ma = mb && a > b)
        end
      end)

let select_victim_indexed ~protect_last idx sw =
  let min_len = if protect_last then 2 else 1 in
  let c = Agg_index.top idx in
  if c < 0 || Value_switch.queue_length sw c < min_len then None else Some c

let select_victim ?(protect_last = false) sw =
  select_victim_indexed ~protect_last (index ~protect_last sw) sw

let make ?(protect_last = false) ?(impl = `Indexed) _config =
  let name = if protect_last then "MRD1" else "MRD" in
  let backend =
    match impl with `Flat -> `Flat | `Indexed | `Scan -> `Linked
  in
  let select =
    match impl with
    | `Scan -> fun sw -> select_victim_scan ~protect_last sw
    | `Indexed | `Flat ->
      let cache = ref None in
      fun sw ->
        let idx =
          match !cache with
          | Some (sw', idx) when sw' == sw -> idx
          | Some _ | None ->
            let idx = index ~protect_last sw in
            cache := Some (sw, idx);
            idx
        in
        select_victim_indexed ~protect_last idx sw
  in
  Value_policy.make ~backend ~name ~push_out:true (fun sw ~dest:_ ~value ->
      match Value_policy.greedy_accept sw with
      | Some d -> d
      | None -> (
        (* The paper drops only when the buffer minimum is strictly bigger
           than the arriving value; on equality MRD pushes out, which is
           what makes it emulate LQD under unit values.  [min_value] is the
           switch's O(1) incremental tracker, so this drop gate no longer
           rescans every queue. *)
        match Value_switch.min_value sw with
        | Some m when m <= value -> (
          match select sw with
          | Some victim -> Decision.Push_out { victim }
          | None -> Decision.Drop)
        | Some _ | None -> Decision.Drop))
