(* Tournament tree over queue indices 0 .. n-1.

   Internal nodes store the *index* of the winning leaf, never a key: the
   comparator reads the live switch state of the two candidates, so the only
   maintenance obligation is to re-run the matches on an element's root path
   after that element's state changes ([invalidate]).  Matches elsewhere in
   the tree compare unchanged elements and therefore keep their outcome.

   [better] must be a strict total order over 0 .. n-1 (callers end every
   comparison chain with an index comparison), which makes the winner of a
   match independent of argument order and the tree's root equal to the
   unique maximum — the same element a left-to-right scan with the matching
   tie convention selects. *)

type t = {
  n : int;
  leaves : int;  (* power of two >= n (>= 1); leaf j lives at [leaves + j] *)
  tree : int array;  (* 2 * leaves slots; root at 1; -1 = no element *)
  better : int -> int -> bool;
}

let combine t a b =
  if a < 0 then b else if b < 0 then a else if t.better a b then a else b

let refresh t =
  for i = t.leaves - 1 downto 1 do
    t.tree.(i) <- combine t t.tree.(2 * i) t.tree.((2 * i) + 1)
  done

let create ~n ~better =
  if n < 1 then invalid_arg "Agg_index.create: n must be >= 1";
  let leaves = ref 1 in
  while !leaves < n do
    leaves := !leaves * 2
  done;
  let leaves = !leaves in
  let tree =
    Array.init (2 * leaves) (fun i ->
        if i >= leaves && i - leaves < n then i - leaves else -1)
  in
  let t = { n; leaves; tree; better } in
  refresh t;
  t

let n t = t.n

let invalidate t j =
  if j < 0 || j >= t.n then invalid_arg "Agg_index.invalidate: bad index";
  let i = ref ((t.leaves + j) / 2) in
  let continue_ = ref true in
  while !continue_ && !i >= 1 do
    let w = combine t t.tree.(2 * !i) t.tree.((2 * !i) + 1) in
    (* Early exit: if the match outcome is unchanged and the winner is not
       the invalidated element, every node above compares the same
       candidates in the same states — their outcomes stand.  (If a node
       above stored [j], then [j] won every match below it, including this
       one, so [w = tree.(i) <> j] rules that out.)  Most mutations leave
       the local winner alone, so this turns the O(log n) climb into O(1)
       amortized — it is the admission hot path's index-maintenance cost. *)
    if w = t.tree.(!i) && w <> j then continue_ := false
    else begin
      t.tree.(!i) <- w;
      i := !i / 2
    end
  done

let top t = t.tree.(1)

let top_excluding t j =
  if j < 0 || j >= t.n then invalid_arg "Agg_index.top_excluding: bad index";
  (* Winner over every leaf except [j]: climb j's root path, folding in the
     sibling subtree's stored winner at each level. *)
  let i = ref (t.leaves + j) in
  let best = ref (-1) in
  while !i > 1 do
    best := combine t !best t.tree.(!i lxor 1);
    i := !i / 2
  done;
  !best

let check t =
  for i = 1 to t.leaves - 1 do
    let w = combine t t.tree.(2 * i) t.tree.((2 * i) + 1) in
    if w <> t.tree.(i) then
      invalid_arg
        (Printf.sprintf
           "Agg_index.check: stale match at node %d (holds %d, expects %d)" i
           t.tree.(i) w)
  done
