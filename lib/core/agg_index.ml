(* Tournament tree over queue indices 0 .. n-1.

   Internal nodes store the *index* of the winning leaf, never a key: the
   comparator reads the live switch state of the two candidates, so the only
   maintenance obligation is to re-run the matches on an element's root path
   after that element's state changes ([invalidate]).  Matches elsewhere in
   the tree compare unchanged elements and therefore keep their outcome.

   The order must be a strict total order (callers end every comparison
   chain with an index comparison), which makes the winner of a match
   independent of argument order and the tree's root equal to the unique
   maximum — the same element a left-to-right scan with the matching tie
   convention selects.

   Three comparator shapes:

   - [Closure]: the original caller-supplied [better] function.  Each match
     pays an indirect call whose body typically re-reads switch accessors —
     fine for the linked backend, where the accessor is the cost anyway.

   - [Lex]: a monomorphic two-key variant for the flat backend.  The keys
     live in caller-owned [int array] columns (often aliases of the flat
     switch's own per-port aggregates), and a match is three unboxed array
     loads and integer compares: k1 desc, then k2 desc, then the index tie.
     Derived keys are recomputed by [refresh_key] once per invalidation —
     O(1) amortized per mutation — instead of once per comparison.

   - [Ratio]: MRD's order, which is not lexicographic: eligible elements
     compare by len^2 * sum cross-multiplication (exact integer arithmetic),
     ties toward the larger [negmin] (the negated queue minimum), then the
     larger index; ineligible elements (len < 0) rank below all eligible
     ones and among themselves by index. *)

type kind =
  | Closure of (int -> int -> bool)
  | Lex of {
      k1 : int array;
      k2 : int array;
      largest_tie : bool;  (* full-key ties keep the largest index? *)
      refresh_key : int -> unit;
    }
  | Ratio of {
      len : int array;  (* -1 = ineligible *)
      sum : int array;
      negmin : int array;
      refresh_key : int -> unit;
    }

type t = {
  n : int;
  leaves : int;  (* power of two >= n (>= 1); leaf j lives at [leaves + j] *)
  tree : int array;  (* 2 * leaves slots; root at 1; -1 = no element *)
  kind : kind;
}

(* The match comparison.  [a]/[b] are in [0, n) whenever this runs (the
   tree stores only valid indices or -1, and [combine] filters the -1s), so
   the key-column accesses skip the bounds check — this is the per-mutation
   hot path of every victim index on the flat backend. *)
let better t a b =
  match t.kind with
  | Closure f -> f a b
  | Lex { k1; k2; largest_tie; _ } ->
    let ka = Array.unsafe_get k1 a and kb = Array.unsafe_get k1 b in
    ka > kb
    || ka = kb
       &&
       let sa = Array.unsafe_get k2 a and sb = Array.unsafe_get k2 b in
       sa > sb || (sa = sb && if largest_tie then a > b else a < b)
  | Ratio { len; sum; negmin; _ } ->
    let la = Array.unsafe_get len a and lb = Array.unsafe_get len b in
    if la >= 0 && lb >= 0 then begin
      let x = la * la * Array.unsafe_get sum b
      and y = lb * lb * Array.unsafe_get sum a in
      x > y
      || x = y
         &&
         let ma = Array.unsafe_get negmin a
         and mb = Array.unsafe_get negmin b in
         ma > mb || (ma = mb && a > b)
    end
    else if la >= 0 then true
    else if lb >= 0 then false
    else a > b

let combine t a b =
  if a < 0 then b else if b < 0 then a else if better t a b then a else b

let refresh_key t j =
  match t.kind with
  | Closure _ -> ()
  | Lex { refresh_key; _ } -> refresh_key j
  | Ratio { refresh_key; _ } -> refresh_key j

let rebuild t =
  for i = t.leaves - 1 downto 1 do
    t.tree.(i) <- combine t t.tree.(2 * i) t.tree.((2 * i) + 1)
  done

let refresh t =
  (match t.kind with
  | Closure _ -> ()
  | Lex _ | Ratio _ ->
    for j = 0 to t.n - 1 do
      refresh_key t j
    done);
  rebuild t

let make ~n kind =
  if n < 1 then invalid_arg "Agg_index: n must be >= 1";
  let leaves = ref 1 in
  while !leaves < n do
    leaves := !leaves * 2
  done;
  let leaves = !leaves in
  let tree =
    Array.init (2 * leaves) (fun i ->
        if i >= leaves && i - leaves < n then i - leaves else -1)
  in
  let t = { n; leaves; tree; kind } in
  refresh t;
  t

let create ~n ~better = make ~n (Closure better)

let check_columns ~n name cols =
  List.iter
    (fun c ->
      if Array.length c < n then
        invalid_arg ("Agg_index." ^ name ^ ": key column shorter than n"))
    cols

let create_lex ~n ?(tie = `Largest_index) ~k1 ~k2 ~refresh () =
  check_columns ~n "create_lex" [ k1; k2 ];
  make ~n (Lex { k1; k2; largest_tie = tie = `Largest_index; refresh_key = refresh })

let create_ratio ~n ~len ~sum ~negmin ~refresh () =
  check_columns ~n "create_ratio" [ len; sum; negmin ];
  make ~n (Ratio { len; sum; negmin; refresh_key = refresh })

let n t = t.n

let invalidate t j =
  if j < 0 || j >= t.n then invalid_arg "Agg_index.invalidate: bad index";
  refresh_key t j;
  let i = ref ((t.leaves + j) / 2) in
  let continue_ = ref true in
  while !continue_ && !i >= 1 do
    let w = combine t t.tree.(2 * !i) t.tree.((2 * !i) + 1) in
    (* Early exit: if the match outcome is unchanged and the winner is not
       the invalidated element, every node above compares the same
       candidates in the same states — their outcomes stand.  (If a node
       above stored [j], then [j] won every match below it, including this
       one, so [w = tree.(i) <> j] rules that out.)  Most mutations leave
       the local winner alone, so this turns the O(log n) climb into O(1)
       amortized — it is the admission hot path's index-maintenance cost. *)
    if w = t.tree.(!i) && w <> j then continue_ := false
    else begin
      t.tree.(!i) <- w;
      i := !i / 2
    end
  done

let top t = t.tree.(1)

let top_excluding t j =
  if j < 0 || j >= t.n then invalid_arg "Agg_index.top_excluding: bad index";
  (* Winner over every leaf except [j]: climb j's root path, folding in the
     sibling subtree's stored winner at each level. *)
  let i = ref (t.leaves + j) in
  let best = ref (-1) in
  while !i > 1 do
    best := combine t !best t.tree.(!i lxor 1);
    i := !i / 2
  done;
  !best

let check t =
  (* Keyed variants first prove no key is stale: recomputing any element's
     keys must be a no-op, or some mutation skipped its [invalidate]. *)
  (match t.kind with
  | Closure _ -> ()
  | Lex { k1; k2; refresh_key; _ } ->
    for j = 0 to t.n - 1 do
      let a = k1.(j) and b = k2.(j) in
      refresh_key j;
      if k1.(j) <> a || k2.(j) <> b then
        invalid_arg
          (Printf.sprintf "Agg_index.check: stale lex key for element %d" j)
    done
  | Ratio { len; sum; negmin; refresh_key } ->
    for j = 0 to t.n - 1 do
      let a = len.(j) and b = sum.(j) and c = negmin.(j) in
      refresh_key j;
      if len.(j) <> a || sum.(j) <> b || negmin.(j) <> c then
        invalid_arg
          (Printf.sprintf "Agg_index.check: stale ratio key for element %d" j)
    done);
  for i = 1 to t.leaves - 1 do
    let w = combine t t.tree.(2 * i) t.tree.((2 * i) + 1) in
    if w <> t.tree.(i) then
      invalid_arg
        (Printf.sprintf
           "Agg_index.check: stale match at node %d (holds %d, expects %d)" i
           t.tree.(i) w)
  done
