open Smbm_prelude

type backend = [ `Linked | `Flat ]

(* Flat backend: one struct-of-arrays slab of [cap] packet slots (columns:
   residual work, arrival slot, packet id) with a free-list stack, and one
   contiguous ring of slot ids per port replacing the boxed
   Packet.Proc.t-in-Deque representation.  A warmed switch performs accept,
   push-out and transmission without allocating: the engine-facing
   [accept_unit]/[push_out_unit]/[transmit_phase_fields] entry points never
   materialize packet records.  The packet-returning API remains available
   on this backend for tests and analyses; it returns fresh snapshot
   records read off the columns.

   The slab columns (indexed by slot id) are off-heap {!Int_col}s: the GC
   never scans them, and they can be shared read-only across domains.  The
   per-port aggregates ([qlen]/[qwork]/[works]) stay ordinary [int array]s —
   they are the key columns the keyed victim indexes (Agg_index.create_lex)
   read directly, and they are n-sized, so scanning cost is nil. *)
type flat = {
  works : int array; (* per-port required work (configuration copy) *)
  mutable cap : int; (* slab capacity; grows with set_buffer, never shrinks *)
  mutable residual : Int_col.t; (* columns, indexed by slot id *)
  mutable arrival : Int_col.t;
  mutable pid : Int_col.t;
  mutable free : Int_col.t; (* stack of free slot ids *)
  mutable free_top : int;
  rings : Int_ring.t array; (* per-port FIFO of occupied slot ids *)
  qlen : int array; (* per-port packet count (= ring length, maintained) *)
  qwork : int array; (* per-port total residual work (W_i) *)
}

type flat_view = {
  view_works : int array;
  view_qlen : int array;
  view_qwork : int array;
}

type repr = Linked of Work_queue.t array | Flat of flat

type t = {
  config : Proc_config.t;
  n : int;
  repr : repr;
  mutable buffer : int;
  mutable occupancy : int;
  mutable occupied_work : int;
  mutable next_id : int;
  mutable now : int;
  mutable indexes : (string * Agg_index.t) list;
}

let create ?(backend = `Linked) (config : Proc_config.t) =
  let n = Proc_config.n config in
  let repr =
    match backend with
    | `Linked ->
      Linked
        (Array.init n (fun i ->
             Work_queue.create ~work:(Proc_config.work config i)))
    | `Flat ->
      let cap = config.Proc_config.buffer in
      Flat
        {
          works = Array.init n (Proc_config.work config);
          cap;
          residual = Int_col.create cap;
          arrival = Int_col.create cap;
          pid = Int_col.create cap;
          free = Int_col.init cap (fun s -> s);
          free_top = cap;
          rings = Array.init n (fun _ -> Int_ring.create ());
          qlen = Array.make n 0;
          qwork = Array.make n 0;
        }
  in
  {
    config;
    n;
    repr;
    buffer = config.Proc_config.buffer;
    occupancy = 0;
    occupied_work = 0;
    next_id = 0;
    now = 0;
    indexes = [];
  }

let config t = t.config
let n t = t.n
let backend t = match t.repr with Linked _ -> `Linked | Flat _ -> `Flat
let buffer t = t.buffer

let grow_flat f cap' =
  let grow c = Int_col.grow c ~len:cap' ~fill:0 in
  f.residual <- grow f.residual;
  f.arrival <- grow f.arrival;
  f.pid <- grow f.pid;
  let free' = Int_col.create cap' in
  Int_col.blit ~src:f.free ~src_pos:0 ~dst:free' ~dst_pos:0 ~len:f.free_top;
  f.free <- free';
  for s = f.cap to cap' - 1 do
    Int_col.set f.free f.free_top s;
    f.free_top <- f.free_top + 1
  done;
  f.cap <- cap'

let set_buffer t b =
  if b < 1 then invalid_arg "Proc_switch.set_buffer: buffer must be >= 1";
  if b < t.occupancy then
    invalid_arg
      "Proc_switch.set_buffer: new buffer smaller than current occupancy";
  (match t.repr with
  | Linked _ -> ()
  | Flat f -> if b > f.cap then grow_flat f b);
  t.buffer <- b

let speedup t = t.config.Proc_config.speedup
let now t = t.now
let advance_slot t = t.now <- t.now + 1
let occupancy t = t.occupancy
let free_space t = buffer t - t.occupancy
let is_full t = t.occupancy >= buffer t

let check_port t i name =
  if i < 0 || i >= t.n then invalid_arg ("Proc_switch." ^ name ^ ": bad port")

let queue t i =
  check_port t i "queue";
  match t.repr with
  | Linked qs -> qs.(i)
  | Flat _ -> invalid_arg "Proc_switch.queue: not available on the flat backend"

let queue_length t i =
  check_port t i "queue_length";
  match t.repr with
  | Linked qs -> Work_queue.length qs.(i)
  | Flat f -> f.qlen.(i)

let queue_work t i =
  check_port t i "queue_work";
  match t.repr with
  | Linked qs -> Work_queue.total_work qs.(i)
  | Flat f -> f.qwork.(i)

let port_work t i = Proc_config.work t.config i
let total_occupied_work t = t.occupied_work

(* ----- victim-selection indexes ----- *)

(* Hand-rolled traversal: [List.iter] with a lambda capturing [i] would
   allocate a closure on every mutation — [touch] runs for each accept,
   push-out and transmission, so that was the hot path's whole minor-heap
   footprint. *)
let rec touch_list indexes i =
  match indexes with
  | [] -> ()
  | (_, idx) :: rest ->
    Agg_index.invalidate idx i;
    touch_list rest i

let touch t i = touch_list t.indexes i

let touch_all t =
  List.iter (fun (_, idx) -> Agg_index.refresh idx) t.indexes

let find_index_with t ~key make =
  match List.assoc_opt key t.indexes with
  | Some idx -> idx
  | None ->
    let idx = make ~n:t.n in
    t.indexes <- (key, idx) :: t.indexes;
    idx

let find_index t ~key ~better =
  find_index_with t ~key (fun ~n -> Agg_index.create ~n ~better)

let flat_view t =
  match t.repr with
  | Linked _ -> None
  | Flat f ->
    Some { view_works = f.works; view_qlen = f.qlen; view_qwork = f.qwork }

(* ----- mutations (every one keeps the aggregates in sync) ----- *)

(* Insert into the flat state and return the slot id.  The caller has
   already validated capacity and the destination port. *)
(* Slot ids and the free stack stay inside [0, cap) / [0, cap] by the slab
   invariants ([check_invariants_flat] proves them), and [dest]/[victim]
   are validated by the public entry points — so the column accesses here
   skip the bounds check.  This is the per-packet hot path. *)
let flat_insert t f ~dest =
  let s = Int_col.unsafe_get f.free (f.free_top - 1) in
  f.free_top <- f.free_top - 1;
  let work = Array.unsafe_get f.works dest in
  Int_col.unsafe_set f.residual s work;
  Int_col.unsafe_set f.arrival s t.now;
  Int_col.unsafe_set f.pid s t.next_id;
  t.next_id <- t.next_id + 1;
  Int_ring.push_back (Array.unsafe_get f.rings dest) s;
  Array.unsafe_set f.qlen dest (Array.unsafe_get f.qlen dest + 1);
  Array.unsafe_set f.qwork dest (Array.unsafe_get f.qwork dest + work);
  t.occupancy <- t.occupancy + 1;
  t.occupied_work <- t.occupied_work + work;
  touch t dest;
  s

let accept_linked t qs ~dest =
  let q = qs.(dest) in
  let p =
    Packet.Proc.make ~id:t.next_id ~dest ~work:(Work_queue.work q)
      ~arrival:t.now
  in
  t.next_id <- t.next_id + 1;
  Work_queue.push q p;
  t.occupancy <- t.occupancy + 1;
  t.occupied_work <- t.occupied_work + p.Packet.Proc.residual;
  touch t dest;
  p

let accept t ~dest =
  if is_full t then invalid_arg "Proc_switch.accept: buffer full";
  check_port t dest "accept";
  match t.repr with
  | Linked qs -> accept_linked t qs ~dest
  | Flat f ->
    let s = flat_insert t f ~dest in
    {
      Packet.Proc.id = Int_col.get f.pid s;
      dest;
      work = f.works.(dest);
      residual = Int_col.get f.residual s;
      arrival = Int_col.get f.arrival s;
    }

let accept_unit t ~dest =
  if is_full t then invalid_arg "Proc_switch.accept_unit: buffer full";
  check_port t dest "accept_unit";
  match t.repr with
  | Linked qs -> ignore (accept_linked t qs ~dest : Packet.Proc.t)
  | Flat f -> ignore (flat_insert t f ~dest : int)

(* Evict the tail slot of [victim]'s ring and return its id; columns stay
   readable until the slot is next handed out by an accept. *)
let flat_evict t f ~victim =
  let ring = Array.unsafe_get f.rings victim in
  if Int_ring.is_empty ring then
    invalid_arg "Proc_switch.push_out: victim queue empty";
  let s = Int_ring.pop_back ring in
  let r = Int_col.unsafe_get f.residual s in
  Array.unsafe_set f.qlen victim (Array.unsafe_get f.qlen victim - 1);
  Array.unsafe_set f.qwork victim (Array.unsafe_get f.qwork victim - r);
  t.occupancy <- t.occupancy - 1;
  t.occupied_work <- t.occupied_work - r;
  Int_col.unsafe_set f.free f.free_top s;
  f.free_top <- f.free_top + 1;
  touch t victim;
  s

let push_out t ~victim =
  check_port t victim "push_out";
  match t.repr with
  | Linked qs ->
    let q = qs.(victim) in
    if Work_queue.is_empty q then
      invalid_arg "Proc_switch.push_out: victim queue empty";
    let p = Work_queue.pop_back q in
    t.occupancy <- t.occupancy - 1;
    t.occupied_work <- t.occupied_work - p.Packet.Proc.residual;
    touch t victim;
    p
  | Flat f ->
    let s = flat_evict t f ~victim in
    {
      Packet.Proc.id = Int_col.get f.pid s;
      dest = victim;
      work = f.works.(victim);
      residual = Int_col.get f.residual s;
      arrival = Int_col.get f.arrival s;
    }

let push_out_unit t ~victim =
  check_port t victim "push_out_unit";
  match t.repr with
  | Linked _ -> ignore (push_out t ~victim : Packet.Proc.t)
  | Flat f -> ignore (flat_evict t f ~victim : int)

let serve_port_linked t qs i ~on_transmit =
  let q = qs.(i) in
  if Work_queue.is_empty q then 0
  else begin
    (* Account each transmission (and re-validate the indexes) *before* the
       user hook runs: a raising hook — a recorder sink error, say — then
       propagates out of a switch whose occupancy, work aggregate and
       indexes all agree with the queues.  The residual-work drain of a
       partially processed head-of-line packet is settled both after normal
       completion and on the exception path.  One closure per served port is
       the price of the callback API; the former [Fun.protect]/[settle]
       closures are folded in (this loop runs for every occupied port of
       every instance every slot). *)
    let before = Work_queue.total_work q in
    let applied = ref 0 in
    let wrapped p =
      t.occupancy <- t.occupancy - 1;
      let drained = before - Work_queue.total_work q in
      t.occupied_work <- t.occupied_work - (drained - !applied);
      applied := drained;
      touch t i;
      on_transmit p
    in
    match Work_queue.process q ~cycles:(speedup t) ~on_transmit:wrapped with
    | sent ->
      let drained = before - Work_queue.total_work q in
      t.occupied_work <- t.occupied_work - (drained - !applied);
      touch t i;
      sent
    | exception e ->
      let drained = before - Work_queue.total_work q in
      t.occupied_work <- t.occupied_work - (drained - !applied);
      touch t i;
      raise e
  end

(* Flat transmission: head-of-line, run-to-completion, all aggregates and
   indexes settled before each hook runs (same exception contract as the
   linked path — a raising hook can only fire immediately after a [touch]).
   Two loops, one per hook shape, so the engines' fields-based hot path
   never builds a packet record or a wrapper closure. *)

let serve_port_flat_fields t f i ~on_transmit =
  let ring = Array.unsafe_get f.rings i in
  if Int_ring.is_empty ring then 0
  else begin
    let budget = ref (speedup t) and sent = ref 0 in
    while !budget > 0 && not (Int_ring.is_empty ring) do
      let s = Int_ring.peek_front ring in
      let r = Int_col.unsafe_get f.residual s in
      let served = if !budget < r then !budget else r in
      Int_col.unsafe_set f.residual s (r - served);
      Array.unsafe_set f.qwork i (Array.unsafe_get f.qwork i - served);
      t.occupied_work <- t.occupied_work - served;
      budget := !budget - served;
      if served = r then begin
        ignore (Int_ring.pop_front ring : int);
        Array.unsafe_set f.qlen i (Array.unsafe_get f.qlen i - 1);
        Int_col.unsafe_set f.free f.free_top s;
        f.free_top <- f.free_top + 1;
        t.occupancy <- t.occupancy - 1;
        incr sent;
        touch t i;
        on_transmit ~dest:i ~arrival:(Int_col.unsafe_get f.arrival s)
      end
    done;
    touch t i;
    !sent
  end

let serve_port_flat t f i ~on_transmit =
  let ring = f.rings.(i) in
  if Int_ring.is_empty ring then 0
  else begin
    let budget = ref (speedup t) and sent = ref 0 in
    while !budget > 0 && not (Int_ring.is_empty ring) do
      let s = Int_ring.peek_front ring in
      let r = Int_col.get f.residual s in
      let served = if !budget < r then !budget else r in
      Int_col.set f.residual s (r - served);
      f.qwork.(i) <- f.qwork.(i) - served;
      t.occupied_work <- t.occupied_work - served;
      budget := !budget - served;
      if served = r then begin
        ignore (Int_ring.pop_front ring : int);
        f.qlen.(i) <- f.qlen.(i) - 1;
        Int_col.set f.free f.free_top s;
        f.free_top <- f.free_top + 1;
        t.occupancy <- t.occupancy - 1;
        incr sent;
        touch t i;
        on_transmit
          {
            Packet.Proc.id = Int_col.get f.pid s;
            dest = i;
            work = f.works.(i);
            residual = 0;
            arrival = Int_col.get f.arrival s;
          }
      end
    done;
    touch t i;
    !sent
  end

let serve_port t i ~on_transmit =
  check_port t i "serve_port";
  match t.repr with
  | Linked qs -> serve_port_linked t qs i ~on_transmit
  | Flat f -> serve_port_flat t f i ~on_transmit

let transmit_phase t ~on_transmit =
  let transmitted = ref 0 in
  (match t.repr with
  | Linked qs ->
    for i = 0 to t.n - 1 do
      transmitted := !transmitted + serve_port_linked t qs i ~on_transmit
    done
  | Flat f ->
    for i = 0 to t.n - 1 do
      transmitted := !transmitted + serve_port_flat t f i ~on_transmit
    done);
  !transmitted

let transmit_phase_fields t ~on_transmit =
  let transmitted = ref 0 in
  (match t.repr with
  | Linked qs ->
    (* Compatibility wrapper: the fields hook fed from the boxed packets.
       Engines running a linked backend use [transmit_phase] directly. *)
    let wrapped (p : Packet.Proc.t) =
      on_transmit ~dest:p.dest ~arrival:p.arrival
    in
    for i = 0 to t.n - 1 do
      transmitted := !transmitted + serve_port_linked t qs i ~on_transmit:wrapped
    done
  | Flat f ->
    for i = 0 to t.n - 1 do
      transmitted := !transmitted + serve_port_flat_fields t f i ~on_transmit
    done);
  !transmitted

let flush t =
  let dropped =
    match t.repr with
    | Linked qs -> Array.fold_left (fun acc q -> acc + Work_queue.clear q) 0 qs
    | Flat f ->
      let dropped = ref 0 in
      for i = 0 to t.n - 1 do
        let ring = f.rings.(i) in
        dropped := !dropped + Int_ring.length ring;
        Int_ring.iter
          (fun s ->
            Int_col.set f.free f.free_top s;
            f.free_top <- f.free_top + 1)
          ring;
        Int_ring.clear ring;
        f.qlen.(i) <- 0;
        f.qwork.(i) <- 0
      done;
      !dropped
  in
  t.occupancy <- t.occupancy - dropped;
  t.occupied_work <- 0;
  (* A real check, not [assert]: release builds compiled with [-noassert]
     must refuse to continue from a corrupted occupancy count too. *)
  if t.occupancy <> 0 then
    invalid_arg "Proc_switch.flush: occupancy out of sync with queue contents";
  touch_all t;
  dropped

let iter_queues f t =
  match t.repr with
  | Linked qs -> Array.iteri f qs
  | Flat _ ->
    invalid_arg "Proc_switch.iter_queues: not available on the flat backend"

let check_invariants_linked t qs =
  let len_sum = Array.fold_left (fun acc q -> acc + Work_queue.length q) 0 qs in
  if len_sum <> t.occupancy then
    invalid_arg "Proc_switch: occupancy out of sync with queue lengths";
  if t.occupancy > buffer t then invalid_arg "Proc_switch: occupancy exceeds B";
  let work_sum =
    Array.fold_left (fun acc q -> acc + Work_queue.total_work q) 0 qs
  in
  if work_sum <> t.occupied_work then
    invalid_arg "Proc_switch: cached occupied work out of sync";
  Array.iter
    (fun q ->
      let recomputed =
        List.fold_left
          (fun acc (p : Packet.Proc.t) -> acc + p.residual)
          0 (Work_queue.to_list q)
      in
      if recomputed <> Work_queue.total_work q then
        invalid_arg "Proc_switch: cached total work out of sync";
      (* Only the head-of-line packet may be partially processed. *)
      List.iteri
        (fun i (p : Packet.Proc.t) ->
          if i > 0 && p.residual <> p.work then
            invalid_arg "Proc_switch: non-HOL packet partially processed")
        (Work_queue.to_list q))
    qs

let check_invariants_flat t f =
  let seen = Array.make f.cap false in
  let len_sum = ref 0 and work_sum = ref 0 in
  for i = 0 to t.n - 1 do
    let ring = f.rings.(i) in
    if f.qlen.(i) <> Int_ring.length ring then
      invalid_arg "Proc_switch(flat): cached queue length out of sync";
    len_sum := !len_sum + Int_ring.length ring;
    let qwork = ref 0 in
    for j = 0 to Int_ring.length ring - 1 do
      let s = Int_ring.get ring j in
      if s < 0 || s >= f.cap then
        invalid_arg "Proc_switch(flat): slot id out of range";
      if seen.(s) then invalid_arg "Proc_switch(flat): slot id used twice";
      seen.(s) <- true;
      let r = Int_col.get f.residual s in
      if r < 1 || r > f.works.(i) then
        invalid_arg "Proc_switch(flat): residual out of range";
      (* Only the head-of-line packet may be partially processed. *)
      if j > 0 && r <> f.works.(i) then
        invalid_arg "Proc_switch(flat): non-HOL packet partially processed";
      qwork := !qwork + r
    done;
    if !qwork <> f.qwork.(i) then
      invalid_arg "Proc_switch(flat): cached per-port work out of sync";
    work_sum := !work_sum + !qwork
  done;
  if !len_sum <> t.occupancy then
    invalid_arg "Proc_switch(flat): occupancy out of sync with ring lengths";
  if t.occupancy > buffer t then
    invalid_arg "Proc_switch(flat): occupancy exceeds B";
  if !work_sum <> t.occupied_work then
    invalid_arg "Proc_switch(flat): cached occupied work out of sync";
  if f.free_top + t.occupancy <> f.cap then
    invalid_arg "Proc_switch(flat): free list out of sync with occupancy";
  for j = 0 to f.free_top - 1 do
    let s = Int_col.get f.free j in
    if s < 0 || s >= f.cap then
      invalid_arg "Proc_switch(flat): free slot id out of range";
    if seen.(s) then
      invalid_arg "Proc_switch(flat): free slot also queued";
    seen.(s) <- true
  done

let check_invariants t =
  (match t.repr with
  | Linked qs -> check_invariants_linked t qs
  | Flat f -> check_invariants_flat t f);
  List.iter (fun (_, idx) -> Agg_index.check idx) t.indexes
