type t = {
  config : Proc_config.t;
  queues : Work_queue.t array;
  mutable buffer : int;
  mutable occupancy : int;
  mutable occupied_work : int;
  mutable next_id : int;
  mutable now : int;
  mutable indexes : (string * Agg_index.t) list;
}

let create (config : Proc_config.t) =
  let queues =
    Array.init (Proc_config.n config) (fun i ->
        Work_queue.create ~work:(Proc_config.work config i))
  in
  {
    config;
    queues;
    buffer = config.Proc_config.buffer;
    occupancy = 0;
    occupied_work = 0;
    next_id = 0;
    now = 0;
    indexes = [];
  }

let config t = t.config
let n t = Array.length t.queues
let buffer t = t.buffer

let set_buffer t b =
  if b < 1 then invalid_arg "Proc_switch.set_buffer: buffer must be >= 1";
  if b < t.occupancy then
    invalid_arg
      "Proc_switch.set_buffer: new buffer smaller than current occupancy";
  t.buffer <- b
let speedup t = t.config.Proc_config.speedup
let now t = t.now
let advance_slot t = t.now <- t.now + 1
let occupancy t = t.occupancy
let free_space t = buffer t - t.occupancy
let is_full t = t.occupancy >= buffer t

let queue t i =
  if i < 0 || i >= n t then invalid_arg "Proc_switch.queue: bad port";
  t.queues.(i)

let queue_length t i = Work_queue.length (queue t i)
let queue_work t i = Work_queue.total_work (queue t i)
let port_work t i = Proc_config.work t.config i
let total_occupied_work t = t.occupied_work

(* ----- victim-selection indexes ----- *)

let touch t i =
  match t.indexes with
  | [] -> ()
  | indexes -> List.iter (fun (_, idx) -> Agg_index.invalidate idx i) indexes

let touch_all t =
  List.iter (fun (_, idx) -> Agg_index.refresh idx) t.indexes

let find_index t ~key ~better =
  match List.assoc_opt key t.indexes with
  | Some idx -> idx
  | None ->
    let idx = Agg_index.create ~n:(n t) ~better in
    t.indexes <- (key, idx) :: t.indexes;
    idx

(* ----- mutations (every one keeps the aggregates in sync) ----- *)

let accept t ~dest =
  if is_full t then invalid_arg "Proc_switch.accept: buffer full";
  let q = queue t dest in
  let p =
    Packet.Proc.make ~id:t.next_id ~dest ~work:(Work_queue.work q)
      ~arrival:t.now
  in
  t.next_id <- t.next_id + 1;
  Work_queue.push q p;
  t.occupancy <- t.occupancy + 1;
  t.occupied_work <- t.occupied_work + p.Packet.Proc.residual;
  touch t dest;
  p

let push_out t ~victim =
  let q = queue t victim in
  if Work_queue.is_empty q then
    invalid_arg "Proc_switch.push_out: victim queue empty";
  let p = Work_queue.pop_back q in
  t.occupancy <- t.occupancy - 1;
  t.occupied_work <- t.occupied_work - p.Packet.Proc.residual;
  touch t victim;
  p

let serve_port t i ~on_transmit =
  let q = queue t i in
  if Work_queue.is_empty q then 0
  else begin
    (* Account each transmission (and re-validate the indexes) *before* the
       user hook runs: a raising hook — a recorder sink error, say — then
       propagates out of a switch whose occupancy, work aggregate and
       indexes all agree with the queues.  The residual-work drain of a
       partially processed head-of-line packet is settled both after normal
       completion and on the exception path.  One closure per served port is
       the price of the callback API; the former [Fun.protect]/[settle]
       closures are folded in (this loop runs for every occupied port of
       every instance every slot). *)
    let before = Work_queue.total_work q in
    let applied = ref 0 in
    let wrapped p =
      t.occupancy <- t.occupancy - 1;
      let drained = before - Work_queue.total_work q in
      t.occupied_work <- t.occupied_work - (drained - !applied);
      applied := drained;
      touch t i;
      on_transmit p
    in
    match Work_queue.process q ~cycles:(speedup t) ~on_transmit:wrapped with
    | sent ->
      let drained = before - Work_queue.total_work q in
      t.occupied_work <- t.occupied_work - (drained - !applied);
      touch t i;
      sent
    | exception e ->
      let drained = before - Work_queue.total_work q in
      t.occupied_work <- t.occupied_work - (drained - !applied);
      touch t i;
      raise e
  end

let transmit_phase t ~on_transmit =
  let transmitted = ref 0 in
  for i = 0 to n t - 1 do
    transmitted := !transmitted + serve_port t i ~on_transmit
  done;
  !transmitted

let flush t =
  let dropped = Array.fold_left (fun acc q -> acc + Work_queue.clear q) 0 t.queues in
  t.occupancy <- t.occupancy - dropped;
  t.occupied_work <- 0;
  assert (t.occupancy = 0);
  touch_all t;
  dropped

let iter_queues f t = Array.iteri f t.queues

let check_invariants t =
  let len_sum = Array.fold_left (fun acc q -> acc + Work_queue.length q) 0 t.queues in
  if len_sum <> t.occupancy then
    invalid_arg "Proc_switch: occupancy out of sync with queue lengths";
  if t.occupancy > buffer t then invalid_arg "Proc_switch: occupancy exceeds B";
  let work_sum =
    Array.fold_left (fun acc q -> acc + Work_queue.total_work q) 0 t.queues
  in
  if work_sum <> t.occupied_work then
    invalid_arg "Proc_switch: cached occupied work out of sync";
  Array.iter
    (fun q ->
      let recomputed =
        List.fold_left
          (fun acc (p : Packet.Proc.t) -> acc + p.residual)
          0 (Work_queue.to_list q)
      in
      if recomputed <> Work_queue.total_work q then
        invalid_arg "Proc_switch: cached total work out of sync";
      (* Only the head-of-line packet may be partially processed. *)
      List.iteri
        (fun i (p : Packet.Proc.t) ->
          if i > 0 && p.residual <> p.work then
            invalid_arg "Proc_switch: non-HOL packet partially processed")
        (Work_queue.to_list q))
    t.queues;
  List.iter (fun (_, idx) -> Agg_index.check idx) t.indexes
