(** Shared-memory switch state for the heterogeneous-value model.

    Holds [n] priority queues (largest value first) drawing on one buffer of
    [B] packet slots.  Transmission sends up to [speedup] packets per
    non-empty queue per slot.  Mechanics only; admission decisions come from
    a {!Value_policy}. *)

type t

val create : Value_config.t -> t

val config : t -> Value_config.t
(** The creation-time configuration.  Its [buffer] field is the {e initial}
    B; after {!set_buffer} the live bound is {!buffer}. *)

val n : t -> int
val k : t -> int
val buffer : t -> int
val speedup : t -> int

val set_buffer : t -> int -> unit
(** Live-resize the shared buffer bound B; see {!Proc_switch.set_buffer}
    for the contract (no buffered packet is ever dropped).
    @raise Invalid_argument if the new bound is [< 1] or smaller than the
    current occupancy. *)

val now : t -> int
val advance_slot : t -> unit

val occupancy : t -> int
val free_space : t -> int
val is_full : t -> bool

val queue : t -> int -> Value_queue.t
val queue_length : t -> int -> int

val min_value : t -> int option
(** Smallest value currently admitted anywhere in the buffer.  O(1): read
    off the switch's incremental minimum tracker rather than rescanned. *)

val min_value_port : t -> int option
(** The port whose queue holds the buffer-wide minimum value; among several,
    the longest such queue (the paper's MVD tie-break), then the smallest
    port index.  Port and value come from one tracker, so
    [min_value_port t] always names a queue whose minimum is
    [min_value t] — the tie choice is pinned and cannot drift from
    {!min_value}.  O(1). *)

val find_index : t -> key:string -> better:(int -> int -> bool) -> Agg_index.t
(** The victim-selection index registered under [key], creating (and
    building) it on first use; see {!Proc_switch.find_index} for the
    contract. *)

val accept : t -> dest:int -> value:int -> Packet.Value.t
(** @raise Invalid_argument if the buffer is full or the value is outside
    [1 .. k]. *)

val push_out : t -> victim:int -> Packet.Value.t
(** Evict the least valuable packet of queue [victim].
    @raise Invalid_argument if that queue is empty. *)

val transmit_phase : t -> on_transmit:(Packet.Value.t -> unit) -> int
(** Every non-empty queue transmits up to [speedup] packets, most valuable
    first.  Returns the number of packets transmitted.  Exception-safe:
    each packet is fully accounted before [on_transmit] sees it, so a
    raising hook propagates out of a consistent switch. *)

val flush : t -> int

val iter_queues : (int -> Value_queue.t -> unit) -> t -> unit

val check_invariants : t -> unit
