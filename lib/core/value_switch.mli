(** Shared-memory switch state for the heterogeneous-value model.

    Holds [n] priority queues (largest value first) drawing on one buffer of
    [B] packet slots.  Transmission sends up to [speedup] packets per
    non-empty queue per slot.  Mechanics only; admission decisions come from
    a {!Value_policy}.

    Two interchangeable state representations sit behind one [t]:
    - [`Linked] (default): one {!Value_queue} of boxed {!Packet.Value}
      records per port — the reference implementation, with [queue]/
      [iter_queues] access for tests and analyses.
    - [`Flat]: struct-of-arrays slab of unboxed int columns with intrusive
      per-(port, value) bucket lists and per-port occupancy bitsets (the
      same 63-levels-per-word layout as {!Value_queue}).  Together with the
      [_unit]/[_lost]/[_fields] entry points below, a warmed flat switch
      runs the whole accept/push-out/transmit cycle without allocating.
      Decision-relevant state — queue lengths, value sums, per-port
      minima/maxima, intra-bucket FIFO order, the buffer-wide minimum
      tracker's tie convention — is maintained bit-identically to the
      linked representation; test/test_victim_oracle.ml fuzzes the two in
      lockstep. *)

type t

type backend = [ `Linked | `Flat ]

type flat_view = {
  view_k : int;  (** number of value levels *)
  view_wpp : int;  (** bitset words per port *)
  view_qlen : int array;  (** live per-port packet counts *)
  view_qsum : int array;  (** live per-port value sums *)
  view_occ : int array;  (** live per-port occupancy bitsets *)
}
(** Read-only aliases of the flat backend's per-port aggregate state.
    Policies hand the arrays to {!Agg_index.create_lex} as key columns and
    read per-port minima through {!view_min_value_or}, so their victim
    indexes compare unboxed ints instead of calling a closure that re-reads
    switch accessors.  The arrays are the switch's own live state: never
    write through them. *)

val view_min_value_or : flat_view -> int -> default:int -> int
(** Smallest value queued at the port, [default] when empty — the same
    bitset scan the switch itself runs, exposed for derived-key refresh
    functions. *)

val create : ?backend:backend -> Value_config.t -> t
(** [backend] defaults to [`Linked]. *)

val backend : t -> backend

val config : t -> Value_config.t
(** The creation-time configuration.  Its [buffer] field is the {e initial}
    B; after {!set_buffer} the live bound is {!buffer}. *)

val n : t -> int
val k : t -> int
val buffer : t -> int
val speedup : t -> int

val set_buffer : t -> int -> unit
(** Live-resize the shared buffer bound B; see {!Proc_switch.set_buffer}
    for the contract (no buffered packet is ever dropped).  On the flat
    backend a grow extends the slot slab; the slab never shrinks.
    @raise Invalid_argument if the new bound is [< 1] or smaller than the
    current occupancy. *)

val now : t -> int
val advance_slot : t -> unit

val occupancy : t -> int
val free_space : t -> int
val is_full : t -> bool

val queue : t -> int -> Value_queue.t
(** Direct access to queue [i] for tests and analyses.
    @raise Invalid_argument on the flat backend, which has no per-queue
    structure to expose — use the [queue_*] accessors below, which dispatch
    on the representation. *)

val queue_length : t -> int -> int

val queue_total_value : t -> int -> int
(** Sum of queued packet values at port [i].  O(1) on both backends. *)

val queue_min_value : t -> int -> int option
(** Smallest value queued at port [i]. *)

val queue_min_value_or : t -> int -> default:int -> int
(** Allocation-free {!queue_min_value}: [default] when the queue is empty.
    Sits on the admission hot path of the value policies. *)

val min_value : t -> int option
(** Smallest value currently admitted anywhere in the buffer.  O(1): read
    off the switch's incremental minimum tracker rather than rescanned. *)

val min_value_or : t -> default:int -> int
(** Allocation-free {!min_value}: [default] when the buffer is empty.  The
    fused admission kernels' drop gate. *)

val min_value_port : t -> int option
(** The port whose queue holds the buffer-wide minimum value; among several,
    the longest such queue (the paper's MVD tie-break), then the smallest
    port index.  Port and value come from one tracker, so
    [min_value_port t] always names a queue whose minimum is
    [min_value t] — the tie choice is pinned and cannot drift from
    {!min_value}.  O(1). *)

val find_index : t -> key:string -> better:(int -> int -> bool) -> Agg_index.t
(** The victim-selection index registered under [key], creating (and
    building) it on first use; see {!Proc_switch.find_index} for the
    contract. *)

val find_index_with :
  t -> key:string -> (n:int -> Agg_index.t) -> Agg_index.t
(** {!find_index} generalized over the index constructor: [make ~n] runs
    only when [key] is not yet registered.  Policies use it to register
    monomorphic keyed indexes ({!Agg_index.create_lex} /
    {!Agg_index.create_ratio}) over a {!flat_view}'s columns. *)

val flat_view : t -> flat_view option
(** [Some] of the live aggregate state on the flat backend, [None] on the
    linked one. *)

val accept : t -> dest:int -> value:int -> Packet.Value.t
(** On the flat backend the returned record is a snapshot of the admitted
    slot (allocated per call — engines use {!accept_unit}).
    @raise Invalid_argument if the buffer is full or the value is outside
    [1 .. k]. *)

val accept_unit : t -> dest:int -> value:int -> unit
(** {!accept} without materializing the packet — allocation-free on the
    flat backend. *)

val push_out : t -> victim:int -> Packet.Value.t
(** Evict the least valuable packet of queue [victim].
    @raise Invalid_argument if that queue is empty. *)

val push_out_lost : t -> victim:int -> int
(** {!push_out} returning only the evicted packet's value (what the
    engines' loss accounting needs) — allocation-free on the flat
    backend. *)

val transmit_phase : t -> on_transmit:(Packet.Value.t -> unit) -> int
(** Every non-empty queue transmits up to [speedup] packets, most valuable
    first.  Returns the number of packets transmitted.  Exception-safe:
    each packet is fully accounted before [on_transmit] sees it, so a
    raising hook propagates out of a consistent switch. *)

val transmit_phase_fields :
  t -> on_transmit:(dest:int -> value:int -> arrival:int -> unit) -> int
(** {!transmit_phase} delivering each transmission as plain fields instead
    of a packet record — allocation-free on the flat backend.  Same
    ordering, accounting and exception contract as {!transmit_phase}. *)

val flush : t -> int
(** Discard all buffered packets; returns how many were discarded.
    @raise Invalid_argument if the occupancy count disagrees with the queue
    contents — state corruption that must not be ignored (a real check, not
    an [assert] stripped under [-noassert]). *)

val iter_queues : (int -> Value_queue.t -> unit) -> t -> unit
(** @raise Invalid_argument on the flat backend (see {!queue}). *)

val check_invariants : t -> unit
