(** Longest-Queue-Drop (LQD), after Aiello et al.

    Greedy push-out policy that ignores processing requirements: when the
    buffer is full, the longest queue — counting the arriving packet as
    virtually added to its destination queue — loses its tail packet.  Ties
    are broken towards the queue with the largest required processing (then
    the largest port index, for determinism).  If the destination queue
    itself is the unique longest, the arrival is dropped.

    2-competitive under homogeneous processing; Theorem 4 shows it is at
    least [sqrt k]-competitive under heterogeneous processing. *)

val make : ?impl:[ `Indexed | `Scan | `Flat ] -> Proc_config.t -> Proc_policy.t
(** [`Indexed] (the default) answers each victim selection in O(log n) from
    the switch's incremental index; [`Scan] keeps the reference O(n) scan.
    Both are decision-identical — [`Scan] exists for differential tests and
    the hot-path benchmark.  [`Flat] is [`Indexed] selection plus a request
    for the switch's flat struct-of-arrays backend (see {!Proc_switch}). *)

val select_victim : Proc_switch.t -> dest:int -> int
(** The queue index LQD would evict from (may equal [dest], meaning drop);
    exposed for tests. *)

val select_victim_scan : Proc_switch.t -> dest:int -> int
(** The original O(n) scan; the oracle the indexed selection is tested
    against. *)
