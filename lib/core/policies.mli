(** Registry of the paper's policies, for CLIs, benches and sweeps.

    Every builder takes [?impl], the victim-selection/backend choice passed
    down to each policy's [make] ([`Flat] additionally requests the flat
    struct-of-arrays switch backend; threshold policies without victim
    selection follow through [with_backend]).  When omitted, the choice
    comes from the [SMBM_BACKEND] environment variable ("flat", "scan", or
    "linked"/"indexed"; default indexed-on-linked) — the seam that lets the
    daemon, sweeps and CLIs switch representation with zero call-site
    changes. *)

val proc : ?impl:[ `Indexed | `Scan | `Flat ] -> Proc_config.t -> Proc_policy.t list
(** All processing-model policies of Section III and V-B, in the paper's
    order: NHST, NEST, NHDT, LQD, BPD, BPD1, LWD. *)

val proc_extended :
  ?impl:[ `Indexed | `Scan | `Flat ] -> Proc_config.t -> Proc_policy.t list
(** The paper's set plus ablation variants: LWD1 (never empties a queue),
    LWD with alternative tie-breaking, sharing-with-reservation at half the
    partition share, and a random-eviction baseline. *)

val proc_find :
  ?impl:[ `Indexed | `Scan | `Flat ] ->
  Proc_config.t ->
  string ->
  Proc_policy.t option
(** Case-insensitive lookup by name (searches the extended set). *)

val value_uniform :
  ?impl:[ `Indexed | `Scan | `Flat ] -> Value_config.t -> Value_policy.t list
(** Value-model policies applicable when values are arbitrary per packet
    (Section V-C, middle row of Fig. 5): Greedy, NEST, LQD, MVD, MVD1,
    MRD. *)

val value_port :
  ?impl:[ `Indexed | `Scan | `Flat ] ->
  port_value:int array ->
  Value_config.t ->
  Value_policy.t list
(** Value-model policies for the value-per-port special case (bottom row of
    Fig. 5): the uniform set plus the reversed-threshold NHST. *)

val value_extended :
  ?impl:[ `Indexed | `Scan | `Flat ] -> Value_config.t -> Value_policy.t list
(** The uniform set plus ablations: MRD1 and a random-eviction baseline. *)

val value_find :
  ?impl:[ `Indexed | `Scan | `Flat ] ->
  ?port_value:int array ->
  Value_config.t ->
  string ->
  Value_policy.t option
