type tie = Largest_work | Smallest_work | Longest_queue

(* argmax over queues of (virtual total work, tie key, index); the virtual
   total counts the arriving packet's full work as already added to
   [dest].

   Tie rule: among queues of equal virtual total work, the larger tie key
   wins, and among fully equal keys the larger port index wins — the scan
   realises this with replacement on [key >= best] while iterating
   j = 0 .. n-1, and every comparison below is an explicit integer
   comparison (no polymorphic compare, no tuple allocation).  The indexed
   path must reproduce this choice bit-for-bit; [select_victim_scan] keeps
   the original O(n) scan as the reference oracle. *)

let tie_key ~tie sw j =
  match tie with
  | Largest_work -> Proc_switch.port_work sw j
  | Smallest_work -> -Proc_switch.port_work sw j
  | Longest_queue -> Proc_switch.queue_length sw j

let select_victim_scan ?(protect_last = false) ?(tie = Largest_work) sw ~dest =
  let min_len = if protect_last then 2 else 1 in
  let best = ref (-1) and best_work = ref min_int and best_tie = ref min_int in
  for j = 0 to Proc_switch.n sw - 1 do
    let eligible =
      (* A queue is an eligible victim if a push-out would be legal (it is
         non-empty, with at least 2 packets under protection) or if it is
         the destination itself (whose selection means "drop"). *)
      j = dest || Proc_switch.queue_length sw j >= min_len
    in
    if eligible then begin
      let work_total =
        Proc_switch.queue_work sw j
        + if j = dest then Proc_switch.port_work sw dest else 0
      in
      let tk = tie_key ~tie sw j + if tie = Longest_queue && j = dest then 1 else 0 in
      if
        work_total > !best_work
        || (work_total = !best_work && tk >= !best_tie)
      then begin
        best := j;
        best_work := work_total;
        best_tie := tk
      end
    end
  done;
  if !best < 0 then None else Some !best

let key_name ~protect_last ~tie =
  match (protect_last, tie) with
  | false, Largest_work -> "lwd"
  | true, Largest_work -> "lwd:protect"
  | false, Smallest_work -> "lwd:small-work"
  | true, Smallest_work -> "lwd:protect:small-work"
  | false, Longest_queue -> "lwd:long-queue"
  | true, Longest_queue -> "lwd:protect:long-queue"

(* Flat backend: keyed lexicographic tree, ineligibility encoded as
   (min_int, 0) — an eligible queue's total work is >= 1 > min_int, so the
   encoding reproduces the closure comparator's order exactly.  Both keys
   are derived (the tie key depends on [tie]), refreshed per invalidation
   from the live aggregate columns. *)
let index ~protect_last ~tie sw =
  let min_len = if protect_last then 2 else 1 in
  let key = key_name ~protect_last ~tie in
  match Proc_switch.flat_view sw with
  | Some v ->
    Proc_switch.find_index_with sw ~key (fun ~n ->
        let k1 = Array.make n 0 and k2 = Array.make n 0 in
        Agg_index.create_lex ~n ~k1 ~k2
          ~refresh:(fun j ->
            if v.Proc_switch.view_qlen.(j) >= min_len then begin
              k1.(j) <- v.Proc_switch.view_qwork.(j);
              k2.(j) <-
                (match tie with
                | Largest_work -> v.Proc_switch.view_works.(j)
                | Smallest_work -> -v.Proc_switch.view_works.(j)
                | Longest_queue -> v.Proc_switch.view_qlen.(j))
            end
            else begin
              k1.(j) <- min_int;
              k2.(j) <- 0
            end)
          ())
  | None ->
    Proc_switch.find_index sw ~key ~better:(fun a b ->
        let ea = Proc_switch.queue_length sw a >= min_len
        and eb = Proc_switch.queue_length sw b >= min_len in
        if ea <> eb then ea
        else if not ea then a > b
        else begin
          let wa = Proc_switch.queue_work sw a
          and wb = Proc_switch.queue_work sw b in
          wa > wb
          || wa = wb
             &&
             let ta = tie_key ~tie sw a and tb = tie_key ~tie sw b in
             ta > tb || (ta = tb && a > b)
        end)

let select_victim_indexed ~protect_last ~tie idx sw ~dest =
  let min_len = if protect_last then 2 else 1 in
  (* The destination is always eligible (selecting it means "drop"), with
     the arriving packet's work virtually added; every other queue competes
     with its actual aggregates via the index. *)
  let dw = Proc_switch.queue_work sw dest + Proc_switch.port_work sw dest in
  let dt =
    tie_key ~tie sw dest + if tie = Longest_queue then 1 else 0
  in
  let c = Agg_index.top_excluding idx dest in
  if c < 0 || Proc_switch.queue_length sw c < min_len then Some dest
  else begin
    let cw = Proc_switch.queue_work sw c in
    if cw > dw then Some c
    else if cw < dw then Some dest
    else begin
      let ct = tie_key ~tie sw c in
      if ct > dt || (ct = dt && c > dest) then Some c else Some dest
    end
  end

let select_victim ?(protect_last = false) ?(tie = Largest_work) sw ~dest =
  select_victim_indexed ~protect_last ~tie (index ~protect_last ~tie sw) sw
    ~dest

let name ~protect_last ~tie =
  let base = if protect_last then "LWD1" else "LWD" in
  match tie with
  | Largest_work -> base
  | Smallest_work -> base ^ "/tie=small-work"
  | Longest_queue -> base ^ "/tie=long-queue"

let make ?(protect_last = false) ?(tie = Largest_work) ?(impl = `Indexed)
    _config =
  let backend =
    match impl with `Flat -> `Flat | `Indexed | `Scan -> `Linked
  in
  let cached_index =
    let cache = ref None in
    fun sw ->
      match !cache with
      | Some (sw', idx) when sw' == sw -> idx
      | Some _ | None ->
        let idx = index ~protect_last ~tie sw in
        cache := Some (sw, idx);
        idx
  in
  let select =
    match impl with
    | `Scan -> fun sw ~dest -> select_victim_scan ~protect_last ~tie sw ~dest
    | `Indexed | `Flat ->
      fun sw ~dest ->
        select_victim_indexed ~protect_last ~tie (cached_index sw) sw ~dest
  in
  let admit_batch =
    match impl with
    | `Scan | `Indexed -> None
    | `Flat ->
      Some
        (fun sw batch (c : Admission.counters) ->
          let idx = cached_index sw in
          for i = 0 to Arrival_batch.length batch - 1 do
            let dest = Arrival_batch.unsafe_dest batch i in
            if not (Proc_switch.is_full sw) then begin
              Proc_switch.accept_unit sw ~dest;
              c.Admission.accepted <- c.Admission.accepted + 1
            end
            else begin
              match select_victim_indexed ~protect_last ~tie idx sw ~dest with
              | Some victim when victim <> dest ->
                Proc_switch.push_out_unit sw ~victim;
                Proc_switch.accept_unit sw ~dest;
                c.Admission.pushed_out <- c.Admission.pushed_out + 1;
                c.Admission.accepted <- c.Admission.accepted + 1
              | Some _ | None ->
                c.Admission.dropped <- c.Admission.dropped + 1
            end
          done)
  in
  Proc_policy.make ~backend ?admit_batch ~name:(name ~protect_last ~tie)
    ~push_out:true (fun sw ~dest ->
      match Proc_policy.greedy_accept sw with
      | Some d -> d
      | None -> (
        match select sw ~dest with
        | Some victim when victim <> dest -> Decision.Push_out { victim }
        | Some _ | None -> Decision.Drop))
