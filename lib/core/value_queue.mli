(** Priority output queue of the value model.

    Packets are kept in non-increasing value order (the paper's most
    favourable per-queue processing order): transmission takes the most
    valuable packet, push-out evicts the least valuable one.  Values live in
    the bounded universe [1 .. k], so the queue is a bucket array paired
    with a bitset of non-empty value levels: pushes, pops and the
    [min_value]/[max_value] reads all cost O(k / 63) word operations — in
    effect constant time, which is what keeps the admission hot path of the
    value policies cheap (see {!Value_switch.find_index}).
    Within a value bucket, transmission is FIFO ([pop_max] takes the oldest
    packet of the maximum bucket) and push-out evicts the most recently
    admitted packet ([pop_min] takes the youngest packet of the minimum
    bucket, "the last packet" of the queue).  This intra-bucket order is a
    pinned part of the contract: the switch-wide cached-minimum tracker
    relies on it to preserve FIFO tie order. *)


type t

val create : k:int -> t
(** Empty queue accepting values in [1 .. k]. *)

val length : t -> int
val is_empty : t -> bool

val total_value : t -> int
(** Sum of queued packet values. *)

val average_value : t -> float
(** [a_j] in the paper's MRD definition; 0 when empty. *)

val min_value : t -> int option
val max_value : t -> int option

val min_value_or : t -> default:int -> int
val max_value_or : t -> default:int -> int
(** Allocation-free {!min_value}/{!max_value}: [default] when empty.  These
    sit on the admission hot path (policy drop gates, the switch-wide
    minimum tracker's comparator runs on every mutation), where a [Some]
    box per read is measurable GC churn. *)

val push : t -> Packet.Value.t -> unit
(** @raise Invalid_argument if the value is outside [1 .. k]. *)

val pop_min : t -> Packet.Value.t
(** Evict the least valuable packet (most recent arrival among ties).
    @raise Invalid_argument on an empty queue. *)

val pop_max : t -> Packet.Value.t
(** Transmit the most valuable packet (earliest arrival among ties).
    @raise Invalid_argument on an empty queue. *)

val iter : (Packet.Value.t -> unit) -> t -> unit
(** In non-increasing value order. *)

val to_list : t -> Packet.Value.t list
(** In non-increasing value order. *)

val clear : t -> int
(** Drop all packets, returning how many were dropped. *)

(** {2 Bitset primitives}

    Shared with {!Value_switch}'s flat backend, which rebuilds the same
    63-levels-per-word occupancy bitsets over its struct-of-arrays columns.
    Both callers require a native int of at least 63 bits; this module
    refuses to initialise on narrower platforms. *)

val bit_index : int -> int
(** Bit index of the single set bit of the operand (callers isolate it with
    [b land -b]). *)

val high_bit_index : int -> int
(** Bit index of the highest set bit of a positive operand. *)
