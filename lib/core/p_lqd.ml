(* argmax over queues of (virtual length, work, index); the virtual length
   counts the arriving packet as already added to [dest].

   The left-to-right scan with replacement on [key >= best] — which keeps
   the largest index among full ties — is the decision contract.  The
   indexed path answers the same argmax in O(log n) from the switch's
   incremental index; [select_victim_scan] keeps the original O(n) scan as
   the reference oracle the differential tests compare against.  All key
   comparisons are explicit integer comparisons (no tuple allocation on the
   hot path). *)

let select_victim_scan sw ~dest =
  let best = ref 0 and best_len = ref min_int and best_work = ref min_int in
  for j = 0 to Proc_switch.n sw - 1 do
    let len = Proc_switch.queue_length sw j + if j = dest then 1 else 0 in
    let work = Proc_switch.port_work sw j in
    (* >= on equal keys keeps the largest index among full ties. *)
    if len > !best_len || (len = !best_len && work >= !best_work) then begin
      best := j;
      best_len := len;
      best_work := work
    end
  done;
  !best

let index sw =
  Proc_switch.find_index sw ~key:"lqd" ~better:(fun a b ->
      let la = Proc_switch.queue_length sw a
      and lb = Proc_switch.queue_length sw b in
      la > lb
      || la = lb
         &&
         let wa = Proc_switch.port_work sw a
         and wb = Proc_switch.port_work sw b in
         wa > wb || (wa = wb && a > b))

let select_victim_indexed idx sw ~dest =
  let c = Agg_index.top_excluding idx dest in
  if c < 0 then dest
  else begin
    let dlen = Proc_switch.queue_length sw dest + 1 in
    let clen = Proc_switch.queue_length sw c in
    if clen > dlen then c
    else if clen < dlen then dest
    else begin
      let cw = Proc_switch.port_work sw c
      and dw = Proc_switch.port_work sw dest in
      if cw > dw || (cw = dw && c > dest) then c else dest
    end
  end

let select_victim sw ~dest = select_victim_indexed (index sw) sw ~dest

let make ?(impl = `Indexed) _config =
  let backend =
    match impl with `Flat -> `Flat | `Indexed | `Scan -> `Linked
  in
  let select =
    match impl with
    | `Scan -> fun sw ~dest -> select_victim_scan sw ~dest
    | `Indexed | `Flat ->
      let cache = ref None in
      fun sw ~dest ->
        let idx =
          match !cache with
          | Some (sw', idx) when sw' == sw -> idx
          | Some _ | None ->
            let idx = index sw in
            cache := Some (sw, idx);
            idx
        in
        select_victim_indexed idx sw ~dest
  in
  Proc_policy.make ~backend ~name:"LQD" ~push_out:true (fun sw ~dest ->
      match Proc_policy.greedy_accept sw with
      | Some d -> d
      | None ->
        let victim = select sw ~dest in
        if victim <> dest then Decision.Push_out { victim } else Decision.Drop)
