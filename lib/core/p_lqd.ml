(* argmax over queues of (virtual length, work, index); the virtual length
   counts the arriving packet as already added to [dest].

   The left-to-right scan with replacement on [key >= best] — which keeps
   the largest index among full ties — is the decision contract.  The
   indexed path answers the same argmax in O(log n) from the switch's
   incremental index; [select_victim_scan] keeps the original O(n) scan as
   the reference oracle the differential tests compare against.  All key
   comparisons are explicit integer comparisons (no tuple allocation on the
   hot path). *)

let select_victim_scan sw ~dest =
  let best = ref 0 and best_len = ref min_int and best_work = ref min_int in
  for j = 0 to Proc_switch.n sw - 1 do
    let len = Proc_switch.queue_length sw j + if j = dest then 1 else 0 in
    let work = Proc_switch.port_work sw j in
    (* >= on equal keys keeps the largest index among full ties. *)
    if len > !best_len || (len = !best_len && work >= !best_work) then begin
      best := j;
      best_len := len;
      best_work := work
    end
  done;
  !best

(* On the flat backend the comparator collapses to a keyed lexicographic
   tree over the switch's own (queue length, port work) aggregate columns —
   no closure, no refresh (both keys alias live state).  The linked backend
   keeps the closure comparator; both express the same order. *)
let index sw =
  match Proc_switch.flat_view sw with
  | Some v ->
    Proc_switch.find_index_with sw ~key:"lqd" (fun ~n ->
        Agg_index.create_lex ~n ~k1:v.Proc_switch.view_qlen
          ~k2:v.Proc_switch.view_works ~refresh:ignore ())
  | None ->
    Proc_switch.find_index sw ~key:"lqd" ~better:(fun a b ->
        let la = Proc_switch.queue_length sw a
        and lb = Proc_switch.queue_length sw b in
        la > lb
        || la = lb
           &&
           let wa = Proc_switch.port_work sw a
           and wb = Proc_switch.port_work sw b in
           wa > wb || (wa = wb && a > b))

let select_victim_indexed idx sw ~dest =
  let c = Agg_index.top_excluding idx dest in
  if c < 0 then dest
  else begin
    let dlen = Proc_switch.queue_length sw dest + 1 in
    let clen = Proc_switch.queue_length sw c in
    if clen > dlen then c
    else if clen < dlen then dest
    else begin
      let cw = Proc_switch.port_work sw c
      and dw = Proc_switch.port_work sw dest in
      if cw > dw || (cw = dw && c > dest) then c else dest
    end
  end

let select_victim sw ~dest = select_victim_indexed (index sw) sw ~dest

let make ?(impl = `Indexed) _config =
  let backend =
    match impl with `Flat -> `Flat | `Indexed | `Scan -> `Linked
  in
  let cached_index =
    let cache = ref None in
    fun sw ->
      match !cache with
      | Some (sw', idx) when sw' == sw -> idx
      | Some _ | None ->
        let idx = index sw in
        cache := Some (sw, idx);
        idx
  in
  let select =
    match impl with
    | `Scan -> fun sw ~dest -> select_victim_scan sw ~dest
    | `Indexed | `Flat ->
      fun sw ~dest -> select_victim_indexed (cached_index sw) sw ~dest
  in
  (* Fused batch kernel (`Flat impl): admit a whole slot's arrivals in one
     pass, resolving the victim index once per batch instead of once per
     packet.  Decision-identical to the per-packet [admit] + engine
     application below — the lockstep fuzz proves it. *)
  let admit_batch =
    match impl with
    | `Scan | `Indexed -> None
    | `Flat ->
      Some
        (fun sw batch (c : Admission.counters) ->
          let idx = cached_index sw in
          for i = 0 to Arrival_batch.length batch - 1 do
            let dest = Arrival_batch.unsafe_dest batch i in
            if not (Proc_switch.is_full sw) then begin
              Proc_switch.accept_unit sw ~dest;
              c.Admission.accepted <- c.Admission.accepted + 1
            end
            else begin
              let victim = select_victim_indexed idx sw ~dest in
              if victim <> dest then begin
                Proc_switch.push_out_unit sw ~victim;
                Proc_switch.accept_unit sw ~dest;
                c.Admission.pushed_out <- c.Admission.pushed_out + 1;
                c.Admission.accepted <- c.Admission.accepted + 1
              end
              else c.Admission.dropped <- c.Admission.dropped + 1
            end
          done)
  in
  Proc_policy.make ~backend ?admit_batch ~name:"LQD" ~push_out:true
    (fun sw ~dest ->
      match Proc_policy.greedy_accept sw with
      | Some d -> d
      | None ->
        let victim = select sw ~dest in
        if victim <> dest then Decision.Push_out { victim } else Decision.Drop)
