(** Biggest-Packet-Drop (BPD).

    Greedy push-out policy that keeps the packets with the smallest
    processing requirements: when the buffer is full, the non-empty queue
    with the largest per-packet work loses its tail, provided the arriving
    packet's port does not come after the victim's in the work-sorted port
    order (the paper's "i <= j" with ports sorted by required work; here
    realised as an explicit comparison on (work, port index)).

    Theorem 5: at least [(ln k + gamma)]-competitive.

    [~protect_last:true] gives the BPD_1 variant of Section V-B that never
    pushes out the last packet of a queue (victims must hold at least two
    packets), avoiding the artificial deactivation of output ports. *)

val make :
  ?protect_last:bool -> ?impl:[ `Indexed | `Scan | `Flat ] -> Proc_config.t ->
  Proc_policy.t
(** [~impl] picks the victim selection: [`Indexed] (default) reads the
    argmax off the switch's incremental index in O(log n); [`Scan] keeps
    the original O(n) rescans.  Both make bit-identical decisions; [`Flat] is [`Indexed] selection plus a request for the switch's flat struct-of-arrays backend (see {!Proc_switch}). *)

val select_victim : protect_last:bool -> Proc_switch.t -> int option
(** The queue BPD would evict from: the non-empty (length >= 2 when
    protecting last packets) queue with maximal work, ties towards the
    longer queue, then the larger index.  Exposed for tests. *)

val select_victim_scan : protect_last:bool -> Proc_switch.t -> int option
(** Reference O(n) scan implementation of {!select_victim}; the
    differential oracle compares the two. *)
