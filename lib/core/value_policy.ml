type t = {
  name : string;
  push_out : bool;
  backend : Value_switch.backend;
  admit : Value_switch.t -> dest:int -> value:int -> Decision.t;
}

let make ?(backend = `Linked) ~name ~push_out admit =
  { name; push_out; backend; admit }

let with_backend backend t = { t with backend }
let admit t sw ~dest ~value = t.admit sw ~dest ~value

let greedy_accept sw =
  if Value_switch.is_full sw then None else Some Decision.Accept
