type t = {
  name : string;
  push_out : bool;
  backend : Value_switch.backend;
  admit : Value_switch.t -> dest:int -> value:int -> Decision.t;
  admit_batch :
    (Value_switch.t -> Arrival_batch.t -> Admission.counters -> unit) option;
}

let make ?(backend = `Linked) ?admit_batch ~name ~push_out admit =
  { name; push_out; backend; admit; admit_batch }

let with_backend backend t = { t with backend }
let admit t sw ~dest ~value = t.admit sw ~dest ~value
let admit_batch t = t.admit_batch

let greedy_accept sw =
  if Value_switch.is_full sw then None else Some Decision.Accept
