open Smbm_prelude

type backend = [ `Linked | `Flat ]

(* Flat backend: one struct-of-arrays slab of [cap] packet slots (columns:
   value, arrival, id, plus intrusive next/prev links) with a free-list
   stack.  Each (port, value-level) bucket is a doubly-linked list threaded
   through the link columns (head = oldest, tail = youngest), and each port
   carries the same 63-levels-per-word occupancy bitset as {!Value_queue}
   (whose exported bit searches are reused), so min/max reads stay O(k/63).
   Together with the [_unit]/[_lost]/[_fields] entry points, a warmed flat
   switch runs accept / push-out / transmit without allocating.

   The slab columns (indexed by slot id) are off-heap {!Int_col}s — never
   scanned by the GC, shareable read-only across domains.  The n-sized
   per-port aggregates ([qlen]/[qsum]) and the bucket/bitset tables stay
   ordinary [int array]s: the aggregates are key columns the keyed victim
   indexes read directly, and the tables are port-indexed bookkeeping. *)
type flat = {
  k : int;
  wpp : int; (* bitset words per port: k/63 + 1 *)
  mutable cap : int; (* slab capacity; grows with set_buffer, never shrinks *)
  mutable value : Int_col.t; (* columns, indexed by slot id *)
  mutable arrival : Int_col.t;
  mutable pid : Int_col.t;
  mutable nxt : Int_col.t; (* intra-bucket links; -1 terminates *)
  mutable prv : Int_col.t;
  mutable free : Int_col.t; (* stack of free slot ids *)
  mutable free_top : int;
  bhead : int array; (* bucket head slot, index [i * k + (v - 1)]; -1 empty *)
  btail : int array;
  occ : int array; (* bitsets, index [i * wpp + v / 63], bit [v mod 63] *)
  qlen : int array; (* per-port packet count *)
  qsum : int array; (* per-port total value *)
}

type flat_view = {
  view_k : int;
  view_wpp : int;
  view_qlen : int array;
  view_qsum : int array;
  view_occ : int array;
}

type repr = Linked of Value_queue.t array | Flat of flat

type t = {
  config : Value_config.t;
  n : int;
  repr : repr;
  mutable buffer : int;
  mutable occupancy : int;
  mutable next_id : int;
  mutable now : int;
  mutable indexes : (string * Agg_index.t) list;
  min_index : Agg_index.t; (* buffer-wide minimum tracker *)
}

(* Per-port min/max reads off the flat bitsets — same word scan + bit
   search as Value_queue.{min,max}_value_or, over this port's slice.
   Parameterized over the raw columns so the same scan serves both the
   switch internals and a policy-held {!flat_view}. *)
let min_scan ~occ ~wpp ~qlen i ~default =
  if Array.unsafe_get qlen i = 0 then default
  else begin
    (* Non-empty queue => some word of this port's slice is non-zero, so
       the scans below stay inside [base, base + wpp); bounds checks are
       skipped on this per-admission path. *)
    let base = i * wpp in
    let w = ref 0 in
    while Array.unsafe_get occ (base + !w) = 0 do
      incr w
    done;
    let bits = Array.unsafe_get occ (base + !w) in
    (!w * 63) + Value_queue.bit_index (bits land -bits)
  end

let flat_min_value_or f i ~default =
  min_scan ~occ:f.occ ~wpp:f.wpp ~qlen:f.qlen i ~default

let view_min_value_or v i ~default =
  min_scan ~occ:v.view_occ ~wpp:v.view_wpp ~qlen:v.view_qlen i ~default

let flat_max_value_or f i ~default =
  if Array.unsafe_get f.qlen i = 0 then default
  else begin
    let base = i * f.wpp in
    let w = ref (f.wpp - 1) in
    while Array.unsafe_get f.occ (base + !w) = 0 do
      decr w
    done;
    (!w * 63) + Value_queue.high_bit_index (Array.unsafe_get f.occ (base + !w))
  end

(* The built-in tracker behind [min_value]/[min_value_port]: argmin over
   queues of (cached minimum value, then the longer queue, then the smaller
   port index) — the documented MVD tie-break, pinned here so the indexed
   reads cannot drift from the one-pass scan they replaced.  Empty queues
   rank last (an occupied queue's minimum is at most k < max_int).  The
   linked backend pays a closure per match; the flat backend runs the same
   order as a keyed lexicographic tree over (negated minimum, queue length)
   with the smaller-index tie — the negated minimum is a derived key
   recomputed once per invalidation, the length column aliases the live
   aggregate. *)
let min_better_linked queues a b =
  let qa = queues.(a) and qb = queues.(b) in
  let ma = Value_queue.min_value_or qa ~default:max_int
  and mb = Value_queue.min_value_or qb ~default:max_int in
  ma < mb
  || (ma = mb
     &&
     let la = Value_queue.length qa and lb = Value_queue.length qb in
     la > lb || (la = lb && a < b))

let create ?(backend = `Linked) (config : Value_config.t) =
  let n = Value_config.n config in
  let k = Value_config.k config in
  let repr =
    match backend with
    | `Linked -> Linked (Array.init n (fun _ -> Value_queue.create ~k))
    | `Flat ->
      let cap = config.Value_config.buffer in
      let wpp = (k / 63) + 1 in
      Flat
        {
          k;
          wpp;
          cap;
          value = Int_col.create cap;
          arrival = Int_col.create cap;
          pid = Int_col.create cap;
          nxt = Int_col.create ~fill:(-1) cap;
          prv = Int_col.create ~fill:(-1) cap;
          free = Int_col.init cap (fun s -> s);
          free_top = cap;
          bhead = Array.make (n * k) (-1);
          btail = Array.make (n * k) (-1);
          occ = Array.make (n * wpp) 0;
          qlen = Array.make n 0;
          qsum = Array.make n 0;
        }
  in
  let min_index =
    match repr with
    | Linked queues -> Agg_index.create ~n ~better:(min_better_linked queues)
    | Flat f ->
      let negmin = Array.make n (-max_int) in
      Agg_index.create_lex ~n ~tie:`Smallest_index ~k1:negmin ~k2:f.qlen
        ~refresh:(fun j ->
          negmin.(j) <- -(flat_min_value_or f j ~default:max_int))
        ()
  in
  {
    config;
    n;
    repr;
    buffer = config.Value_config.buffer;
    occupancy = 0;
    next_id = 0;
    now = 0;
    indexes = [];
    min_index;
  }

let config t = t.config
let n t = t.n
let k t = Value_config.k t.config
let backend t = match t.repr with Linked _ -> `Linked | Flat _ -> `Flat
let buffer t = t.buffer

let grow_flat f cap' =
  f.value <- Int_col.grow f.value ~len:cap' ~fill:0;
  f.arrival <- Int_col.grow f.arrival ~len:cap' ~fill:0;
  f.pid <- Int_col.grow f.pid ~len:cap' ~fill:0;
  f.nxt <- Int_col.grow f.nxt ~len:cap' ~fill:(-1);
  f.prv <- Int_col.grow f.prv ~len:cap' ~fill:(-1);
  let free' = Int_col.create cap' in
  Int_col.blit ~src:f.free ~src_pos:0 ~dst:free' ~dst_pos:0 ~len:f.free_top;
  f.free <- free';
  for s = f.cap to cap' - 1 do
    Int_col.set f.free f.free_top s;
    f.free_top <- f.free_top + 1
  done;
  f.cap <- cap'

let set_buffer t b =
  if b < 1 then invalid_arg "Value_switch.set_buffer: buffer must be >= 1";
  if b < t.occupancy then
    invalid_arg
      "Value_switch.set_buffer: new buffer smaller than current occupancy";
  (match t.repr with
  | Linked _ -> ()
  | Flat f -> if b > f.cap then grow_flat f b);
  t.buffer <- b

let speedup t = t.config.Value_config.speedup
let now t = t.now
let advance_slot t = t.now <- t.now + 1
let occupancy t = t.occupancy
let free_space t = buffer t - t.occupancy
let is_full t = t.occupancy >= buffer t

let check_port t i name =
  if i < 0 || i >= t.n then invalid_arg ("Value_switch." ^ name ^ ": bad port")

let queue t i =
  check_port t i "queue";
  match t.repr with
  | Linked queues -> queues.(i)
  | Flat _ ->
    invalid_arg "Value_switch.queue: not available on the flat backend"

let queue_length t i =
  check_port t i "queue_length";
  match t.repr with
  | Linked queues -> Value_queue.length queues.(i)
  | Flat f -> f.qlen.(i)

let queue_total_value t i =
  check_port t i "queue_total_value";
  match t.repr with
  | Linked queues -> Value_queue.total_value queues.(i)
  | Flat f -> f.qsum.(i)

let queue_min_value_or t i ~default =
  check_port t i "queue_min_value_or";
  match t.repr with
  | Linked queues -> Value_queue.min_value_or queues.(i) ~default
  | Flat f -> flat_min_value_or f i ~default

let queue_min_value t i =
  check_port t i "queue_min_value";
  match t.repr with
  | Linked queues -> Value_queue.min_value queues.(i)
  | Flat f ->
    if f.qlen.(i) = 0 then None else Some (flat_min_value_or f i ~default:0)

(* ----- victim-selection indexes ----- *)

(* Hand-rolled traversal: [List.iter] with a lambda capturing [i] would
   allocate a closure on every mutation — [touch] runs for each accept,
   push-out and transmission, so that was the hot path's whole minor-heap
   footprint. *)
let rec touch_list indexes i =
  match indexes with
  | [] -> ()
  | (_, idx) :: rest ->
    Agg_index.invalidate idx i;
    touch_list rest i

let touch t i =
  Agg_index.invalidate t.min_index i;
  touch_list t.indexes i

let touch_all t =
  Agg_index.refresh t.min_index;
  List.iter (fun (_, idx) -> Agg_index.refresh idx) t.indexes

let find_index_with t ~key make =
  match List.assoc_opt key t.indexes with
  | Some idx -> idx
  | None ->
    let idx = make ~n:t.n in
    t.indexes <- (key, idx) :: t.indexes;
    idx

let find_index t ~key ~better =
  find_index_with t ~key (fun ~n -> Agg_index.create ~n ~better)

let flat_view t =
  match t.repr with
  | Linked _ -> None
  | Flat f ->
    Some
      {
        view_k = f.k;
        view_wpp = f.wpp;
        view_qlen = f.qlen;
        view_qsum = f.qsum;
        view_occ = f.occ;
      }

let min_value_or t ~default =
  if t.occupancy = 0 then default
  else
    let i = Agg_index.top t.min_index in
    match t.repr with
    | Linked queues -> Value_queue.min_value_or queues.(i) ~default
    | Flat f -> flat_min_value_or f i ~default

let min_value t =
  if t.occupancy = 0 then None
  else
    let i = Agg_index.top t.min_index in
    match t.repr with
    | Linked queues -> Value_queue.min_value queues.(i)
    | Flat f -> Some (flat_min_value_or f i ~default:0)

let min_value_port t =
  if t.occupancy = 0 then None else Some (Agg_index.top t.min_index)

(* ----- flat bucket mechanics ----- *)

(* The bucket/bitset indices below are in bounds by construction (ports
   and values validated at the public entry points, slot ids confined to
   [0, cap) by the slab invariants), so these per-packet ops skip the
   bounds check. *)

let flat_mark f i v =
  let w = (i * f.wpp) + (v / 63) in
  Array.unsafe_set f.occ w (Array.unsafe_get f.occ w lor (1 lsl (v mod 63)))

let flat_unmark f i v =
  let w = (i * f.wpp) + (v / 63) in
  Array.unsafe_set f.occ w
    (Array.unsafe_get f.occ w land lnot (1 lsl (v mod 63)))

(* Append slot [s] (already carrying its columns) at the tail (youngest end)
   of bucket (i, v). *)
let flat_bucket_push f i v s =
  let b = (i * f.k) + (v - 1) in
  let tl = Array.unsafe_get f.btail b in
  Int_col.unsafe_set f.prv s tl;
  Int_col.unsafe_set f.nxt s (-1);
  if tl = -1 then begin
    Array.unsafe_set f.bhead b s;
    flat_mark f i v
  end
  else Int_col.unsafe_set f.nxt tl s;
  Array.unsafe_set f.btail b s

(* Remove and return the youngest slot of bucket (i, v) — the push-out end,
   matching Value_queue.pop_min's intra-bucket order. *)
let flat_bucket_pop_tail f i v =
  let b = (i * f.k) + (v - 1) in
  let s = Array.unsafe_get f.btail b in
  let p = Int_col.unsafe_get f.prv s in
  Array.unsafe_set f.btail b p;
  if p = -1 then begin
    Array.unsafe_set f.bhead b (-1);
    flat_unmark f i v
  end
  else Int_col.unsafe_set f.nxt p (-1);
  s

(* Remove and return the oldest slot of bucket (i, v) — the transmission
   end, matching Value_queue.pop_max's intra-bucket order. *)
let flat_bucket_pop_head f i v =
  let b = (i * f.k) + (v - 1) in
  let s = Array.unsafe_get f.bhead b in
  let nx = Int_col.unsafe_get f.nxt s in
  Array.unsafe_set f.bhead b nx;
  if nx = -1 then begin
    Array.unsafe_set f.btail b (-1);
    flat_unmark f i v
  end
  else Int_col.unsafe_set f.prv nx (-1);
  s

(* ----- mutations (every one keeps the aggregates in sync) ----- *)

(* Insert into the flat state and return the slot id.  The caller has
   already validated capacity, the destination port and the value range. *)
let flat_insert t f ~dest ~value =
  let s = Int_col.unsafe_get f.free (f.free_top - 1) in
  f.free_top <- f.free_top - 1;
  Int_col.unsafe_set f.value s value;
  Int_col.unsafe_set f.arrival s t.now;
  Int_col.unsafe_set f.pid s t.next_id;
  t.next_id <- t.next_id + 1;
  flat_bucket_push f dest value s;
  Array.unsafe_set f.qlen dest (Array.unsafe_get f.qlen dest + 1);
  Array.unsafe_set f.qsum dest (Array.unsafe_get f.qsum dest + value);
  t.occupancy <- t.occupancy + 1;
  touch t dest;
  s

let accept_linked t queues ~dest ~value =
  let p = Packet.Value.make ~id:t.next_id ~dest ~value ~arrival:t.now in
  t.next_id <- t.next_id + 1;
  Value_queue.push queues.(dest) p;
  t.occupancy <- t.occupancy + 1;
  touch t dest;
  p

let accept t ~dest ~value =
  if is_full t then invalid_arg "Value_switch.accept: buffer full";
  check_port t dest "accept";
  match t.repr with
  | Linked queues -> accept_linked t queues ~dest ~value
  | Flat f ->
    if value < 1 || value > f.k then
      invalid_arg "Value_switch.accept: value out of range";
    let s = flat_insert t f ~dest ~value in
    {
      Packet.Value.id = Int_col.get f.pid s;
      dest;
      value;
      arrival = Int_col.get f.arrival s;
    }

let accept_unit t ~dest ~value =
  if is_full t then invalid_arg "Value_switch.accept_unit: buffer full";
  check_port t dest "accept_unit";
  match t.repr with
  | Linked queues ->
    ignore (accept_linked t queues ~dest ~value : Packet.Value.t)
  | Flat f ->
    if value < 1 || value > f.k then
      invalid_arg "Value_switch.accept_unit: value out of range";
    ignore (flat_insert t f ~dest ~value : int)

(* Evict the least valuable (youngest among ties) slot of [victim]'s queue
   and return its id; columns stay readable until the slot is next handed
   out by an accept. *)
let flat_evict t f ~victim =
  if Array.unsafe_get f.qlen victim = 0 then
    invalid_arg "Value_switch.push_out: victim queue empty";
  let v = flat_min_value_or f victim ~default:0 in
  let s = flat_bucket_pop_tail f victim v in
  Array.unsafe_set f.qlen victim (Array.unsafe_get f.qlen victim - 1);
  Array.unsafe_set f.qsum victim (Array.unsafe_get f.qsum victim - v);
  t.occupancy <- t.occupancy - 1;
  Int_col.unsafe_set f.free f.free_top s;
  f.free_top <- f.free_top + 1;
  touch t victim;
  s

let push_out t ~victim =
  check_port t victim "push_out";
  match t.repr with
  | Linked queues ->
    let q = queues.(victim) in
    if Value_queue.is_empty q then
      invalid_arg "Value_switch.push_out: victim queue empty";
    let p = Value_queue.pop_min q in
    t.occupancy <- t.occupancy - 1;
    touch t victim;
    p
  | Flat f ->
    let s = flat_evict t f ~victim in
    {
      Packet.Value.id = Int_col.get f.pid s;
      dest = victim;
      value = Int_col.get f.value s;
      arrival = Int_col.get f.arrival s;
    }

let push_out_lost t ~victim =
  check_port t victim "push_out_lost";
  match t.repr with
  | Linked _ -> (push_out t ~victim).Packet.Value.value
  | Flat f ->
    let s = flat_evict t f ~victim in
    Int_col.get f.value s

let transmit_phase t ~on_transmit =
  let budget = speedup t in
  let transmitted = ref 0 in
  (match t.repr with
  | Linked queues ->
    for i = 0 to t.n - 1 do
      let q = queues.(i) in
      let sent = ref 0 in
      while !sent < budget && not (Value_queue.is_empty q) do
        (* Account the transmission before the user hook runs, so a raising
           hook propagates out of a consistent switch. *)
        let p = Value_queue.pop_max q in
        t.occupancy <- t.occupancy - 1;
        touch t i;
        incr sent;
        incr transmitted;
        on_transmit p
      done
    done
  | Flat f ->
    for i = 0 to t.n - 1 do
      let sent = ref 0 in
      while !sent < budget && f.qlen.(i) > 0 do
        let v = flat_max_value_or f i ~default:0 in
        let s = flat_bucket_pop_head f i v in
        f.qlen.(i) <- f.qlen.(i) - 1;
        f.qsum.(i) <- f.qsum.(i) - v;
        t.occupancy <- t.occupancy - 1;
        Int_col.set f.free f.free_top s;
        f.free_top <- f.free_top + 1;
        touch t i;
        incr sent;
        incr transmitted;
        on_transmit
          {
            Packet.Value.id = Int_col.get f.pid s;
            dest = i;
            value = v;
            arrival = Int_col.get f.arrival s;
          }
      done
    done);
  !transmitted

let transmit_phase_fields t ~on_transmit =
  let budget = speedup t in
  let transmitted = ref 0 in
  (match t.repr with
  | Linked queues ->
    (* Compatibility wrapper: the fields hook fed from the boxed packets.
       Engines running a linked backend use [transmit_phase] directly. *)
    for i = 0 to t.n - 1 do
      let q = queues.(i) in
      let sent = ref 0 in
      while !sent < budget && not (Value_queue.is_empty q) do
        let p = Value_queue.pop_max q in
        t.occupancy <- t.occupancy - 1;
        touch t i;
        incr sent;
        incr transmitted;
        on_transmit ~dest:i ~value:p.Packet.Value.value
          ~arrival:p.Packet.Value.arrival
      done
    done
  | Flat f ->
    for i = 0 to t.n - 1 do
      let sent = ref 0 in
      while !sent < budget && Array.unsafe_get f.qlen i > 0 do
        let v = flat_max_value_or f i ~default:0 in
        let s = flat_bucket_pop_head f i v in
        Array.unsafe_set f.qlen i (Array.unsafe_get f.qlen i - 1);
        Array.unsafe_set f.qsum i (Array.unsafe_get f.qsum i - v);
        t.occupancy <- t.occupancy - 1;
        Int_col.unsafe_set f.free f.free_top s;
        f.free_top <- f.free_top + 1;
        touch t i;
        incr sent;
        incr transmitted;
        on_transmit ~dest:i ~value:v ~arrival:(Int_col.unsafe_get f.arrival s)
      done
    done);
  !transmitted

let flush t =
  let dropped =
    match t.repr with
    | Linked queues ->
      Array.fold_left (fun acc q -> acc + Value_queue.clear q) 0 queues
    | Flat f ->
      let dropped = ref 0 in
      for i = 0 to t.n - 1 do
        for v = 1 to f.k do
          let b = (i * f.k) + (v - 1) in
          let s = ref f.bhead.(b) in
          while !s <> -1 do
            incr dropped;
            Int_col.set f.free f.free_top !s;
            f.free_top <- f.free_top + 1;
            s := Int_col.get f.nxt !s
          done;
          f.bhead.(b) <- -1;
          f.btail.(b) <- -1
        done;
        f.qlen.(i) <- 0;
        f.qsum.(i) <- 0
      done;
      Array.fill f.occ 0 (Array.length f.occ) 0;
      !dropped
  in
  t.occupancy <- t.occupancy - dropped;
  (* A real check, not [assert]: release builds compiled with [-noassert]
     must refuse to continue from a corrupted occupancy count too. *)
  if t.occupancy <> 0 then
    invalid_arg "Value_switch.flush: occupancy out of sync with queue contents";
  touch_all t;
  dropped

let iter_queues f t =
  match t.repr with
  | Linked queues -> Array.iteri f queues
  | Flat _ ->
    invalid_arg "Value_switch.iter_queues: not available on the flat backend"

let check_invariants_linked t queues =
  let len_sum =
    Array.fold_left (fun acc q -> acc + Value_queue.length q) 0 queues
  in
  if len_sum <> t.occupancy then
    invalid_arg "Value_switch: occupancy out of sync with queue lengths";
  if t.occupancy > buffer t then
    invalid_arg "Value_switch: occupancy exceeds B";
  Array.iter
    (fun q ->
      let sum =
        List.fold_left
          (fun acc (p : Packet.Value.t) -> acc + p.value)
          0 (Value_queue.to_list q)
      in
      if sum <> Value_queue.total_value q then
        invalid_arg "Value_switch: cached total value out of sync";
      (* to_list is in non-increasing value order by construction. *)
      let rec sorted = function
        | (a : Packet.Value.t) :: (b : Packet.Value.t) :: rest ->
          a.value >= b.value && sorted (b :: rest)
        | [ _ ] | [] -> true
      in
      if not (sorted (Value_queue.to_list q)) then
        invalid_arg "Value_switch: queue not value-sorted")
    queues

let check_invariants_flat t f =
  let seen = Array.make f.cap false in
  let len_sum = ref 0 in
  for i = 0 to t.n - 1 do
    let qlen = ref 0 and qsum = ref 0 in
    for v = 1 to f.k do
      let b = (i * f.k) + (v - 1) in
      let occupied =
        f.occ.(i * f.wpp + (v / 63)) land (1 lsl (v mod 63)) <> 0
      in
      if occupied <> (f.bhead.(b) <> -1) then
        invalid_arg "Value_switch(flat): bitset out of sync with buckets";
      if (f.bhead.(b) = -1) <> (f.btail.(b) = -1) then
        invalid_arg "Value_switch(flat): bucket head/tail out of sync";
      let s = ref f.bhead.(b) and prev = ref (-1) in
      while !s <> -1 do
        if !s < 0 || !s >= f.cap then
          invalid_arg "Value_switch(flat): slot id out of range";
        if seen.(!s) then
          invalid_arg "Value_switch(flat): slot id used twice";
        seen.(!s) <- true;
        if Int_col.get f.value !s <> v then
          invalid_arg "Value_switch(flat): slot in wrong value bucket";
        if Int_col.get f.prv !s <> !prev then
          invalid_arg "Value_switch(flat): broken prev link";
        incr qlen;
        qsum := !qsum + v;
        prev := !s;
        s := Int_col.get f.nxt !s
      done;
      if f.bhead.(b) <> -1 && f.btail.(b) <> !prev then
        invalid_arg "Value_switch(flat): bucket tail out of sync"
    done;
    if !qlen <> f.qlen.(i) then
      invalid_arg "Value_switch(flat): cached queue length out of sync";
    if !qsum <> f.qsum.(i) then
      invalid_arg "Value_switch(flat): cached total value out of sync";
    len_sum := !len_sum + !qlen
  done;
  if !len_sum <> t.occupancy then
    invalid_arg "Value_switch(flat): occupancy out of sync with buckets";
  if t.occupancy > buffer t then
    invalid_arg "Value_switch(flat): occupancy exceeds B";
  if f.free_top + t.occupancy <> f.cap then
    invalid_arg "Value_switch(flat): free list out of sync with occupancy";
  for j = 0 to f.free_top - 1 do
    let s = Int_col.get f.free j in
    if s < 0 || s >= f.cap then
      invalid_arg "Value_switch(flat): free slot id out of range";
    if seen.(s) then invalid_arg "Value_switch(flat): free slot also queued";
    seen.(s) <- true
  done

let check_invariants t =
  (match t.repr with
  | Linked queues -> check_invariants_linked t queues
  | Flat f -> check_invariants_flat t f);
  Agg_index.check t.min_index;
  List.iter (fun (_, idx) -> Agg_index.check idx) t.indexes
