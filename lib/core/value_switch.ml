type t = {
  config : Value_config.t;
  queues : Value_queue.t array;
  mutable buffer : int;
  mutable occupancy : int;
  mutable next_id : int;
  mutable now : int;
  mutable indexes : (string * Agg_index.t) list;
  min_index : Agg_index.t; (* buffer-wide minimum tracker *)
}

(* The built-in tracker behind [min_value]/[min_value_port]: argmin over
   queues of (cached minimum value, then the longer queue, then the smaller
   port index) — the documented MVD tie-break, pinned here so the indexed
   reads cannot drift from the one-pass scan they replaced.  Empty queues
   rank last (an occupied queue's minimum is at most k < max_int). *)
let min_better queues a b =
  let qa = queues.(a) and qb = queues.(b) in
  let ma = Value_queue.min_value_or qa ~default:max_int
  and mb = Value_queue.min_value_or qb ~default:max_int in
  ma < mb
  || (ma = mb
     &&
     let la = Value_queue.length qa and lb = Value_queue.length qb in
     la > lb || (la = lb && a < b))

let create (config : Value_config.t) =
  let queues =
    Array.init (Value_config.n config) (fun _ ->
        Value_queue.create ~k:(Value_config.k config))
  in
  let min_index =
    Agg_index.create ~n:(Array.length queues) ~better:(min_better queues)
  in
  {
    config;
    queues;
    buffer = config.Value_config.buffer;
    occupancy = 0;
    next_id = 0;
    now = 0;
    indexes = [];
    min_index;
  }

let config t = t.config
let n t = Array.length t.queues
let k t = Value_config.k t.config
let buffer t = t.buffer

let set_buffer t b =
  if b < 1 then invalid_arg "Value_switch.set_buffer: buffer must be >= 1";
  if b < t.occupancy then
    invalid_arg
      "Value_switch.set_buffer: new buffer smaller than current occupancy";
  t.buffer <- b
let speedup t = t.config.Value_config.speedup
let now t = t.now
let advance_slot t = t.now <- t.now + 1
let occupancy t = t.occupancy
let free_space t = buffer t - t.occupancy
let is_full t = t.occupancy >= buffer t

let queue t i =
  if i < 0 || i >= n t then invalid_arg "Value_switch.queue: bad port";
  t.queues.(i)

let queue_length t i = Value_queue.length (queue t i)

(* ----- victim-selection indexes ----- *)

let touch t i =
  Agg_index.invalidate t.min_index i;
  match t.indexes with
  | [] -> ()
  | indexes -> List.iter (fun (_, idx) -> Agg_index.invalidate idx i) indexes

let touch_all t =
  Agg_index.refresh t.min_index;
  List.iter (fun (_, idx) -> Agg_index.refresh idx) t.indexes

let find_index t ~key ~better =
  match List.assoc_opt key t.indexes with
  | Some idx -> idx
  | None ->
    let idx = Agg_index.create ~n:(n t) ~better in
    t.indexes <- (key, idx) :: t.indexes;
    idx

let min_value t =
  if t.occupancy = 0 then None
  else Value_queue.min_value t.queues.(Agg_index.top t.min_index)

let min_value_port t =
  if t.occupancy = 0 then None else Some (Agg_index.top t.min_index)

(* ----- mutations (every one keeps the aggregates in sync) ----- *)

let accept t ~dest ~value =
  if is_full t then invalid_arg "Value_switch.accept: buffer full";
  let p = Packet.Value.make ~id:t.next_id ~dest ~value ~arrival:t.now in
  t.next_id <- t.next_id + 1;
  Value_queue.push (queue t dest) p;
  t.occupancy <- t.occupancy + 1;
  touch t dest;
  p

let push_out t ~victim =
  let q = queue t victim in
  if Value_queue.is_empty q then
    invalid_arg "Value_switch.push_out: victim queue empty";
  let p = Value_queue.pop_min q in
  t.occupancy <- t.occupancy - 1;
  touch t victim;
  p

let transmit_phase t ~on_transmit =
  let budget = speedup t in
  let transmitted = ref 0 in
  for i = 0 to n t - 1 do
    let q = t.queues.(i) in
    let sent = ref 0 in
    while !sent < budget && not (Value_queue.is_empty q) do
      (* Account the transmission before the user hook runs, so a raising
         hook propagates out of a consistent switch. *)
      let p = Value_queue.pop_max q in
      t.occupancy <- t.occupancy - 1;
      touch t i;
      incr sent;
      incr transmitted;
      on_transmit p
    done
  done;
  !transmitted

let flush t =
  let dropped = Array.fold_left (fun acc q -> acc + Value_queue.clear q) 0 t.queues in
  t.occupancy <- t.occupancy - dropped;
  assert (t.occupancy = 0);
  touch_all t;
  dropped

let iter_queues f t = Array.iteri f t.queues

let check_invariants t =
  let len_sum = Array.fold_left (fun acc q -> acc + Value_queue.length q) 0 t.queues in
  if len_sum <> t.occupancy then
    invalid_arg "Value_switch: occupancy out of sync with queue lengths";
  if t.occupancy > buffer t then invalid_arg "Value_switch: occupancy exceeds B";
  Array.iter
    (fun q ->
      let sum =
        List.fold_left
          (fun acc (p : Packet.Value.t) -> acc + p.value)
          0 (Value_queue.to_list q)
      in
      if sum <> Value_queue.total_value q then
        invalid_arg "Value_switch: cached total value out of sync";
      (* to_list is in non-increasing value order by construction. *)
      let rec sorted = function
        | (a : Packet.Value.t) :: (b : Packet.Value.t) :: rest ->
          a.value >= b.value && sorted (b :: rest)
        | [ _ ] | [] -> true
      in
      if not (sorted (Value_queue.to_list q)) then
        invalid_arg "Value_switch: queue not value-sorted")
    t.queues;
  Agg_index.check t.min_index;
  List.iter (fun (_, idx) -> Agg_index.check idx) t.indexes
