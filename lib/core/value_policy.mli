(** Buffer-management policies for the value model.

    Like {!Proc_policy}, but the arriving packet additionally carries its
    intrinsic value. *)

type t = {
  name : string;
  push_out : bool;
  backend : Value_switch.backend;
      (** which switch representation engines should create for this policy
          (policies built with [~impl:`Flat] request the flat backend;
          default [`Linked]).  Purely a creation-time hint — policies read
          the switch through representation-independent accessors and work
          on either backend. *)
  admit : Value_switch.t -> dest:int -> value:int -> Decision.t;
  admit_batch :
    (Value_switch.t -> Arrival_batch.t -> Admission.counters -> unit) option;
      (** Fused batch-admission kernel; see {!Proc_policy.admit_batch} for
          the contract.  Only the flat-impl policy variants provide one. *)
}

val make :
  ?backend:Value_switch.backend ->
  ?admit_batch:
    (Value_switch.t -> Arrival_batch.t -> Admission.counters -> unit) ->
  name:string ->
  push_out:bool ->
  (Value_switch.t -> dest:int -> value:int -> Decision.t) ->
  t

val with_backend : Value_switch.backend -> t -> t
(** Same policy, different creation-time backend hint. *)

val admit : t -> Value_switch.t -> dest:int -> value:int -> Decision.t

val admit_batch :
  t ->
  (Value_switch.t -> Arrival_batch.t -> Admission.counters -> unit) option

val greedy_accept : Value_switch.t -> Decision.t option
(** [Some Accept] when the buffer has free space, [None] otherwise. *)
