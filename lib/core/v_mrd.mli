(** Maximal-Ratio-Drop (MRD) — the paper's candidate for constant
    competitiveness in the value model.

    Balances LQD's port-count view against MVD's value view: when the buffer
    is full and the arriving packet is at least as valuable as the cheapest
    admitted packet, the queue maximizing [|Q_j| / a_j] (with [a_j] the
    queue's average value, i.e. maximizing [|Q_j|^2 / total value]) evicts
    its least valuable packet.  Ties go to the queue containing the smaller
    minimum value, then the larger port index.  The paper's drop clause is
    "minimum strictly bigger than the arrival": pushing out on equality is
    exactly what makes MRD emulate LQD under unit values.

    MRD coincides with LQD under unit values (so it is at least
    sqrt(2)-competitive) and is at least 4/3-competitive when each packet's
    value equals its output port label (Theorem 11).  Whether it achieves a
    constant ratio in general is the paper's open conjecture. *)

val make :
  ?protect_last:bool -> ?impl:[ `Indexed | `Scan | `Flat ] -> Value_config.t ->
  Value_policy.t
(** [~protect_last:true] is the MRD_1 ablation that never pushes out a
    queue's only packet (analogous to the paper's BPD_1 and MVD_1).
    [~impl] picks the victim selection: [`Indexed] (default) reads the
    ratio argmax off the switch's incremental index in O(log n); [`Scan]
    keeps the original O(n) rescans.  Both make bit-identical decisions; [`Flat] is [`Indexed] selection plus a request for the switch's flat struct-of-arrays backend (see {!Value_switch}). *)

val select_victim : ?protect_last:bool -> Value_switch.t -> int option
(** The ratio-maximal eligible queue; exposed for tests. *)

val select_victim_scan : ?protect_last:bool -> Value_switch.t -> int option
(** Reference O(n) scan implementation of {!select_victim}; the
    differential oracle compares the two. *)
