(* Two victim selections, one per admission branch, both answered from
   incremental indexes in O(log n) (with the original O(n) scans kept as
   the reference oracle under [~impl:`Scan]):

   - pool branch (arrival's queue at/above its reservation): argmax over
     all queues of (pool overflow with the arrival virtually added to
     [dest], port work, index) — replacement on [key >= best], so full
     ties keep the largest index;

   - reclaim branch (arrival still inside its reservation): argmax over
     queues other than [dest] of (pool overflow, port work), eligible only
     with positive overflow — replacement on strict [key > best] seeded at
     [(0, max_int)], so full ties keep the *smallest* index.

   All comparisons are explicit integer comparisons. *)

(* Pool slots used by queue j: packets above its reservation. *)
let overflow ~reserve sw j ~dest =
  let len = Proc_switch.queue_length sw j + if j = dest then 1 else 0 in
  max 0 (len - reserve)

let select_pool_victim_scan ~reserve sw ~dest =
  let best = ref 0 and best_ov = ref min_int and best_work = ref min_int in
  for j = 0 to Proc_switch.n sw - 1 do
    let ov = overflow ~reserve sw j ~dest
    and work = Proc_switch.port_work sw j in
    if ov > !best_ov || (ov = !best_ov && work >= !best_work) then begin
      best := j;
      best_ov := ov;
      best_work := work
    end
  done;
  !best

let select_reclaim_victim_scan ~reserve sw ~dest =
  let best = ref (-1) and best_ov = ref 0 and best_work = ref max_int in
  for j = 0 to Proc_switch.n sw - 1 do
    if j <> dest then begin
      let ov = overflow ~reserve sw j ~dest
      and work = Proc_switch.port_work sw j in
      if ov > !best_ov || (ov = !best_ov && work > !best_work) then begin
        best := j;
        best_ov := ov;
        best_work := work
      end
    end
  done;
  !best

(* Flat backend: both indexes are keyed lexicographic trees over (derived
   pool overflow, port work), differing only in the index tie — largest for
   the pool branch, smallest for the reclaim branch (matching the strict-[>]
   scan).  The work column aliases the live aggregate; the overflow key is
   refreshed per invalidation. *)
let keyed_overflow_index sw ~key ~reserve ~tie =
  Proc_switch.find_index_with sw ~key (fun ~n ->
      match Proc_switch.flat_view sw with
      | None -> assert false
      | Some v ->
        let k1 = Array.make n 0 in
        Agg_index.create_lex ~n ~tie ~k1 ~k2:v.Proc_switch.view_works
          ~refresh:(fun j ->
            k1.(j) <- max 0 (v.Proc_switch.view_qlen.(j) - reserve))
          ())

let pool_index ~reserve sw =
  let key = Printf.sprintf "rsv:%d" reserve in
  match Proc_switch.flat_view sw with
  | Some _ -> keyed_overflow_index sw ~key ~reserve ~tie:`Largest_index
  | None ->
    Proc_switch.find_index sw ~key ~better:(fun a b ->
        let ova = max 0 (Proc_switch.queue_length sw a - reserve)
        and ovb = max 0 (Proc_switch.queue_length sw b - reserve) in
        ova > ovb
        || ova = ovb
           &&
           let wa = Proc_switch.port_work sw a
           and wb = Proc_switch.port_work sw b in
           wa > wb || (wa = wb && a > b))

let reclaim_index ~reserve sw =
  let key = Printf.sprintf "rsv-reclaim:%d" reserve in
  match Proc_switch.flat_view sw with
  | Some _ -> keyed_overflow_index sw ~key ~reserve ~tie:`Smallest_index
  | None ->
    Proc_switch.find_index sw ~key ~better:(fun a b ->
        let ova = max 0 (Proc_switch.queue_length sw a - reserve)
        and ovb = max 0 (Proc_switch.queue_length sw b - reserve) in
        ova > ovb
        || ova = ovb
           &&
           let wa = Proc_switch.port_work sw a
           and wb = Proc_switch.port_work sw b in
           (* Strict-[>] scan: full ties keep the smallest index. *)
           wa > wb || (wa = wb && a < b))

let select_pool_victim_indexed ~reserve idx sw ~dest =
  let c = Agg_index.top_excluding idx dest in
  if c < 0 then dest
  else begin
    let dov = overflow ~reserve sw dest ~dest
    and cov = max 0 (Proc_switch.queue_length sw c - reserve) in
    if cov > dov then c
    else if cov < dov then dest
    else begin
      let cw = Proc_switch.port_work sw c
      and dw = Proc_switch.port_work sw dest in
      if cw > dw || (cw = dw && c > dest) then c else dest
    end
  end

let select_reclaim_victim_indexed ~reserve idx sw ~dest =
  let c = Agg_index.top_excluding idx dest in
  if c < 0 || max 0 (Proc_switch.queue_length sw c - reserve) = 0 then -1
  else c

let make ~reserve ?(impl = `Indexed) config =
  if reserve < 0 then invalid_arg "P_reserved.make: negative reserve";
  if Proc_config.n config * reserve > config.Proc_config.buffer then
    invalid_arg "P_reserved.make: reservations exceed the buffer";
  let name = Printf.sprintf "RSV(%d)" reserve in
  let backend =
    match impl with `Flat -> `Flat | `Indexed | `Scan -> `Linked
  in
  let cache = ref None in
  let indexes sw =
    match !cache with
    | Some (sw', pool, reclaim) when sw' == sw -> (pool, reclaim)
    | Some _ | None ->
      let pool = pool_index ~reserve sw
      and reclaim = reclaim_index ~reserve sw in
      cache := Some (sw, pool, reclaim);
      (pool, reclaim)
  in
  let select_pool, select_reclaim =
    match impl with
    | `Scan ->
      (select_pool_victim_scan ~reserve, select_reclaim_victim_scan ~reserve)
    | `Indexed | `Flat ->
      ( (fun sw ~dest ->
          let pool, _ = indexes sw in
          select_pool_victim_indexed ~reserve pool sw ~dest),
        fun sw ~dest ->
          let _, reclaim = indexes sw in
          select_reclaim_victim_indexed ~reserve reclaim sw ~dest )
  in
  let admit_batch =
    match impl with
    | `Scan | `Indexed -> None
    | `Flat ->
      Some
        (fun sw batch (c : Admission.counters) ->
          let pool, reclaim = indexes sw in
          for i = 0 to Arrival_batch.length batch - 1 do
            let dest = Arrival_batch.unsafe_dest batch i in
            if not (Proc_switch.is_full sw) then begin
              Proc_switch.accept_unit sw ~dest;
              c.Admission.accepted <- c.Admission.accepted + 1
            end
            else if Proc_switch.queue_length sw dest >= reserve then begin
              let victim = select_pool_victim_indexed ~reserve pool sw ~dest in
              if victim <> dest && overflow ~reserve sw victim ~dest > 0
              then begin
                Proc_switch.push_out_unit sw ~victim;
                Proc_switch.accept_unit sw ~dest;
                c.Admission.pushed_out <- c.Admission.pushed_out + 1;
                c.Admission.accepted <- c.Admission.accepted + 1
              end
              else c.Admission.dropped <- c.Admission.dropped + 1
            end
            else begin
              let victim =
                select_reclaim_victim_indexed ~reserve reclaim sw ~dest
              in
              if victim >= 0 then begin
                Proc_switch.push_out_unit sw ~victim;
                Proc_switch.accept_unit sw ~dest;
                c.Admission.pushed_out <- c.Admission.pushed_out + 1;
                c.Admission.accepted <- c.Admission.accepted + 1
              end
              else c.Admission.dropped <- c.Admission.dropped + 1
            end
          done)
  in
  Proc_policy.make ~backend ?admit_batch ~name ~push_out:true (fun sw ~dest ->
      match Proc_policy.greedy_accept sw with
      | Some d -> d
      | None ->
        (* Buffer full.  The arrival may displace pool usage only while its
           own queue is inside its reservation. *)
        if Proc_switch.queue_length sw dest >= reserve then begin
          (* The arrival itself would take a pool slot: evict from the queue
             using the most pool slots (LQD over the pool, virtual add). *)
          let victim = select_pool sw ~dest in
          if victim <> dest && overflow ~reserve sw victim ~dest > 0 then
            Decision.Push_out { victim }
          else Decision.Drop
        end
        else begin
          (* Reserved slot owed to this arrival: reclaim it from the largest
             pool user (some queue must be above its reservation, since the
             buffer is full and this queue is below). *)
          let victim = select_reclaim sw ~dest in
          if victim >= 0 then Decision.Push_out { victim }
          else Decision.Drop
        end)
