(** Sharing with per-port reservation — a hybrid between the paper's two
    extremes (not itself in the paper; an extension point its introduction
    frames: complete sharing utilizes space but hampers fairness, complete
    partitioning is fair but wasteful).

    Each port owns [reserve] guaranteed buffer slots; the remaining
    [B - n * reserve] slots form a shared pool.  An arrival is admitted if
    its queue is below its reservation (always possible: reserved slots are
    never stolen), or if pool space is free; when the pool is exhausted, the
    queue holding the most pool slots — i.e. the longest queue above its
    reservation, counting the arrival virtually — loses its tail to any
    arrival still inside its reservation.

    [reserve = 0] degenerates to LQD; [reserve = B / n] enforces NEST's
    partition shares (plus reclamation of any transiently stolen
    reservation). *)

val make :
  reserve:int -> ?impl:[ `Indexed | `Scan | `Flat ] -> Proc_config.t -> Proc_policy.t
(** [~impl] picks the victim selection: [`Indexed] (default) answers both
    branches' argmaxes in O(log n) from the switch's incremental indexes;
    [`Scan] keeps the original O(n) rescans.  Both make bit-identical
    decisions; [`Flat] is [`Indexed] selection plus a request for the
    switch's flat struct-of-arrays backend (see {!Proc_switch}).
    @raise Invalid_argument if [reserve < 0] or [n * reserve > B]. *)
