(** Buffer-management policies for the processing model.

    A policy is a pure admission rule: given the current switch state and an
    arriving packet's destination port, it returns a {!Decision.t}.  The
    engine applies the decision; the switch validates it.  Policies with
    per-instance state (none of the paper's need any) can close over it in
    [admit]. *)

type t = {
  name : string;
  push_out : bool;
      (** whether the policy ever evicts admitted packets; informational *)
  backend : Proc_switch.backend;
      (** which switch representation engines should create for this policy
          (policies built with [~impl:`Flat] request the flat backend;
          default [`Linked]).  Purely a creation-time hint — policies read
          the switch through representation-independent accessors and work
          on either backend. *)
  admit : Proc_switch.t -> dest:int -> Decision.t;
  admit_batch :
    (Proc_switch.t -> Arrival_batch.t -> Admission.counters -> unit) option;
      (** Fused batch-admission kernel: admit {e and apply} every arrival of
          a batch in one pass, adding into the counters, with per-batch
          (not per-packet) victim-index resolution.  Must make exactly the
          decisions the per-packet [admit] + engine application would —
          test/test_victim_oracle.ml fuzzes the two in lockstep.  Only the
          flat-impl policy variants provide one; engines fall back to the
          per-packet path when [None] (and whenever per-decision observers —
          recorder, flight recorder — are attached). *)
}

val make :
  ?backend:Proc_switch.backend ->
  ?admit_batch:
    (Proc_switch.t -> Arrival_batch.t -> Admission.counters -> unit) ->
  name:string ->
  push_out:bool ->
  (Proc_switch.t -> dest:int -> Decision.t) ->
  t

val with_backend : Proc_switch.backend -> t -> t
(** Same policy, different creation-time backend hint. *)

val admit : t -> Proc_switch.t -> dest:int -> Decision.t

val admit_batch :
  t -> (Proc_switch.t -> Arrival_batch.t -> Admission.counters -> unit) option

val greedy_accept : Proc_switch.t -> Decision.t option
(** [Some Accept] when the buffer has free space — the shared first clause of
    every greedy policy in the paper — and [None] otherwise. *)
