(** Buffer-management policies for the processing model.

    A policy is a pure admission rule: given the current switch state and an
    arriving packet's destination port, it returns a {!Decision.t}.  The
    engine applies the decision; the switch validates it.  Policies with
    per-instance state (none of the paper's need any) can close over it in
    [admit]. *)

type t = {
  name : string;
  push_out : bool;
      (** whether the policy ever evicts admitted packets; informational *)
  backend : Proc_switch.backend;
      (** which switch representation engines should create for this policy
          (policies built with [~impl:`Flat] request the flat backend;
          default [`Linked]).  Purely a creation-time hint — policies read
          the switch through representation-independent accessors and work
          on either backend. *)
  admit : Proc_switch.t -> dest:int -> Decision.t;
}

val make :
  ?backend:Proc_switch.backend ->
  name:string ->
  push_out:bool ->
  (Proc_switch.t -> dest:int -> Decision.t) ->
  t

val with_backend : Proc_switch.backend -> t -> t
(** Same policy, different creation-time backend hint. *)

val admit : t -> Proc_switch.t -> dest:int -> Decision.t

val greedy_accept : Proc_switch.t -> Decision.t option
(** [Some Accept] when the buffer has free space — the shared first clause of
    every greedy policy in the paper — and [None] otherwise. *)
