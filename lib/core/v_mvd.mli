(** Minimal-Value-Drop (MVD).

    Greedy push-out policy maximizing admitted value: when the buffer is
    full and the arriving packet is strictly more valuable than the cheapest
    admitted packet, that cheapest packet is evicted (ties between queues
    holding the minimum value go to the longest queue, then the larger port
    index).  Equivalent in spirit to BPD of the processing model.

    Theorem 10: at least ((m - 1) / 2)-competitive for m = min(k, B).

    [~protect_last:true] is the MVD_1 variant of Section V-C that never
    pushes out the last packet of a queue. *)

val make :
  ?protect_last:bool -> ?impl:[ `Indexed | `Scan | `Flat ] -> Value_config.t ->
  Value_policy.t
(** [~impl] picks the victim selection: [`Indexed] (default) reads the
    argmin off the switch's incremental index in O(log n); [`Scan] keeps
    the original O(n) rescans.  Both make bit-identical decisions; [`Flat] is [`Indexed] selection plus a request for the switch's flat struct-of-arrays backend (see {!Value_switch}). *)

val select_victim : protect_last:bool -> Value_switch.t -> (int * int) option
(** [(port, min value there)] of the eviction candidate; exposed for
    tests. *)

val select_victim_scan :
  protect_last:bool -> Value_switch.t -> (int * int) option
(** Reference O(n) scan implementation of {!select_victim}; the
    differential oracle compares the two. *)
