open Smbm_prelude

let pick_nonempty rng ~n ~length ~dest =
  (* Reservoir-sample a uniform index among queues that are non-empty or the
     (virtually occupied) destination.

     Deliberately NOT routed through the switch's incremental victim
     indexes: reservoir sampling draws one random number per candidate, so
     the rng stream consumption — and with it every subsequent random
     decision — depends on the number of non-empty queues at each arrival.
     Any O(log n) replacement (e.g. sampling a rank and selecting against a
     count index) would draw differently and change the policy's decision
     trace.  RAND is a baseline, not a hot-path policy; bit-identical
     replay matters more than its scan cost. *)
  let chosen = ref (-1) and seen = ref 0 in
  for j = 0 to n - 1 do
    if length j > 0 || j = dest then begin
      incr seen;
      if Rng.int rng !seen = 0 then chosen := j
    end
  done;
  !chosen

let make ?(seed = 0x5eed) _config =
  let rng = Rng.create ~seed in
  Proc_policy.make ~name:"RAND" ~push_out:true (fun sw ~dest ->
      match Proc_policy.greedy_accept sw with
      | Some d -> d
      | None ->
        let victim =
          pick_nonempty rng ~n:(Proc_switch.n sw)
            ~length:(Proc_switch.queue_length sw)
            ~dest
        in
        if victim <> dest then Decision.Push_out { victim } else Decision.Drop)

let make_value ?(seed = 0x5eed) _config =
  let rng = Rng.create ~seed in
  Value_policy.make ~name:"RAND" ~push_out:true (fun sw ~dest ~value ->
      match Value_policy.greedy_accept sw with
      | Some d -> d
      | None -> (
        match Value_switch.min_value sw with
        | Some m when m <= value ->
          let victim =
            pick_nonempty rng ~n:(Value_switch.n sw)
              ~length:(Value_switch.queue_length sw)
              ~dest
          in
          if victim <> dest && Value_switch.queue_length sw victim > 0 then
            Decision.Push_out { victim }
          else Decision.Drop
        | Some _ | None -> Decision.Drop))
