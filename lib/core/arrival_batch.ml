type t = {
  mutable dest : int array;
  mutable value : int array;
  mutable work : int array;
  mutable len : int;
}

let default_capacity = 64

let create ?(capacity = default_capacity) () =
  let capacity = max capacity 1 in
  {
    dest = Array.make capacity 0;
    value = Array.make capacity 0;
    work = Array.make capacity 0;
    len = 0;
  }

let length t = t.len
let is_empty t = t.len = 0
let clear t = t.len <- 0

let grow t =
  let capacity = 2 * Array.length t.dest in
  let extend a = Array.append a (Array.make (capacity - Array.length a) 0) in
  t.dest <- extend t.dest;
  t.value <- extend t.value;
  t.work <- extend t.work

let push ?(work = 0) t ~dest ~value =
  if t.len = Array.length t.dest then grow t;
  t.dest.(t.len) <- dest;
  t.value.(t.len) <- value;
  t.work.(t.len) <- work;
  t.len <- t.len + 1

let push_arrival t (a : Arrival.t) = push t ~dest:a.dest ~value:a.value

let check_index t i what =
  if i < 0 || i >= t.len then invalid_arg ("Arrival_batch." ^ what ^ ": out of bounds")

let dest t i =
  check_index t i "dest";
  t.dest.(i)

let value t i =
  check_index t i "value";
  t.value.(i)

let work t i =
  check_index t i "work";
  t.work.(i)

let unsafe_dest t i = Array.unsafe_get t.dest i
let unsafe_value t i = Array.unsafe_get t.value i

let set_work t i w =
  check_index t i "set_work";
  t.work.(i) <- w

let set t i ~dest ~value =
  check_index t i "set";
  t.dest.(i) <- dest;
  t.value.(i) <- value

let iter t ~f =
  for i = 0 to t.len - 1 do
    f ~dest:(Array.unsafe_get t.dest i) ~value:(Array.unsafe_get t.value i)
  done

let iteri t ~f =
  for i = 0 to t.len - 1 do
    f i ~dest:(Array.unsafe_get t.dest i) ~value:(Array.unsafe_get t.value i)
  done

(* Reverse the tail [from ..] in place.  Generators that accumulate a slot by
   appending (the struct-of-arrays analogue of prepending onto a list and
   returning it unreversed) use this to restore the historical arrival order
   without allocating. *)
let reverse_from t ~from =
  if from < 0 || from > t.len then
    invalid_arg "Arrival_batch.reverse_from: out of bounds";
  let swap (a : int array) i j =
    let x = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- x
  in
  let i = ref from and j = ref (t.len - 1) in
  while !i < !j do
    swap t.dest !i !j;
    swap t.value !i !j;
    swap t.work !i !j;
    incr i;
    decr j
  done

let to_list t =
  let rec build i acc =
    if i < 0 then acc
    else
      build (i - 1) ({ Arrival.dest = t.dest.(i); value = t.value.(i) } :: acc)
  in
  build (t.len - 1) []

let of_list arrivals =
  let t = create ~capacity:(max default_capacity (List.length arrivals)) () in
  List.iter (push_arrival t) arrivals;
  t
