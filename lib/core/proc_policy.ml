type t = {
  name : string;
  push_out : bool;
  backend : Proc_switch.backend;
  admit : Proc_switch.t -> dest:int -> Decision.t;
}

let make ?(backend = `Linked) ~name ~push_out admit =
  { name; push_out; backend; admit }

let with_backend backend t = { t with backend }
let admit t sw ~dest = t.admit sw ~dest

let greedy_accept sw =
  if Proc_switch.is_full sw then None else Some Decision.Accept
