(* argmax over eligible queues of (per-packet work, length, index); no
   virtual add — BPD's victim does not depend on the arrival.  The scan's
   replacement on [key >= best] keeps the largest index among full ties;
   the indexed path reproduces the same choice from the switch's
   incremental index.  All comparisons are explicit integer comparisons. *)

let select_victim_scan ~protect_last sw =
  let min_len = if protect_last then 2 else 1 in
  let best = ref (-1) and best_work = ref min_int and best_len = ref min_int in
  for j = 0 to Proc_switch.n sw - 1 do
    let len = Proc_switch.queue_length sw j in
    if len >= min_len then begin
      let work = Proc_switch.port_work sw j in
      if work > !best_work || (work = !best_work && len >= !best_len) then begin
        best := j;
        best_work := work;
        best_len := len
      end
    end
  done;
  if !best < 0 then None else Some !best

(* Flat backend: keyed lexicographic tree with ineligibility encoded in the
   keys — an ineligible queue carries (min_int, 0), ranking below every
   eligible one (port work >= 1 > min_int) and among its peers by the index
   tie, exactly the closure comparator's order.  Both keys are derived, so a
   per-invalidation refresh recomputes them from the live aggregates. *)
let index ~protect_last sw =
  let min_len = if protect_last then 2 else 1 in
  let key = if protect_last then "bpd:protect" else "bpd" in
  match Proc_switch.flat_view sw with
  | Some v ->
    Proc_switch.find_index_with sw ~key (fun ~n ->
        let k1 = Array.make n 0 and k2 = Array.make n 0 in
        Agg_index.create_lex ~n ~k1 ~k2
          ~refresh:(fun j ->
            if v.Proc_switch.view_qlen.(j) >= min_len then begin
              k1.(j) <- v.Proc_switch.view_works.(j);
              k2.(j) <- v.Proc_switch.view_qlen.(j)
            end
            else begin
              k1.(j) <- min_int;
              k2.(j) <- 0
            end)
          ())
  | None ->
    Proc_switch.find_index sw ~key ~better:(fun a b ->
        let ea = Proc_switch.queue_length sw a >= min_len
        and eb = Proc_switch.queue_length sw b >= min_len in
        if ea <> eb then ea
        else if not ea then a > b
        else begin
          let wa = Proc_switch.port_work sw a
          and wb = Proc_switch.port_work sw b in
          wa > wb
          || wa = wb
             &&
             let la = Proc_switch.queue_length sw a
             and lb = Proc_switch.queue_length sw b in
             la > lb || (la = lb && a > b)
        end)

let select_victim_indexed ~protect_last idx sw =
  let min_len = if protect_last then 2 else 1 in
  let c = Agg_index.top idx in
  if c < 0 || Proc_switch.queue_length sw c < min_len then None else Some c

let select_victim ~protect_last sw =
  select_victim_indexed ~protect_last (index ~protect_last sw) sw

let make ?(protect_last = false) ?(impl = `Indexed) _config =
  let name = if protect_last then "BPD1" else "BPD" in
  let backend =
    match impl with `Flat -> `Flat | `Indexed | `Scan -> `Linked
  in
  let cached_index =
    let cache = ref None in
    fun sw ->
      match !cache with
      | Some (sw', idx) when sw' == sw -> idx
      | Some _ | None ->
        let idx = index ~protect_last sw in
        cache := Some (sw, idx);
        idx
  in
  let select =
    match impl with
    | `Scan -> select_victim_scan ~protect_last
    | `Indexed | `Flat ->
      fun sw -> select_victim_indexed ~protect_last (cached_index sw) sw
  in
  let admit_batch =
    match impl with
    | `Scan | `Indexed -> None
    | `Flat ->
      Some
        (fun sw batch (c : Admission.counters) ->
          let idx = cached_index sw in
          for i = 0 to Arrival_batch.length batch - 1 do
            let dest = Arrival_batch.unsafe_dest batch i in
            if not (Proc_switch.is_full sw) then begin
              Proc_switch.accept_unit sw ~dest;
              c.Admission.accepted <- c.Admission.accepted + 1
            end
            else begin
              match select_victim_indexed ~protect_last idx sw with
              | None -> c.Admission.dropped <- c.Admission.dropped + 1
              | Some victim ->
                let aw = Proc_switch.port_work sw dest
                and vw = Proc_switch.port_work sw victim in
                if aw < vw || (aw = vw && dest <= victim) then begin
                  Proc_switch.push_out_unit sw ~victim;
                  Proc_switch.accept_unit sw ~dest;
                  c.Admission.pushed_out <- c.Admission.pushed_out + 1;
                  c.Admission.accepted <- c.Admission.accepted + 1
                end
                else c.Admission.dropped <- c.Admission.dropped + 1
            end
          done)
  in
  Proc_policy.make ~backend ?admit_batch ~name ~push_out:true (fun sw ~dest ->
      match Proc_policy.greedy_accept sw with
      | Some d -> d
      | None -> (
        match select sw with
        | None -> Decision.Drop
        | Some victim ->
          (* "i <= j" in the work-sorted port order, i.e. the arriving
             packet's (work, port) does not come after the victim's. *)
          let aw = Proc_switch.port_work sw dest
          and vw = Proc_switch.port_work sw victim in
          if aw < vw || (aw = vw && dest <= victim) then
            Decision.Push_out { victim }
          else Decision.Drop))
