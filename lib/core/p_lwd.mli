(** Longest-Work-Drop (LWD) — the paper's main contribution.

    Greedy push-out policy accounting for processing requirements through
    total per-queue work: when the buffer is full, the queue with the most
    total remaining work — counting the arriving packet's work as virtually
    added to its destination queue — loses its tail packet.  Ties are broken
    towards the queue with the largest per-packet work (then the largest
    port index).  If the destination queue itself wins the argmax, the
    arrival is dropped.

    Theorem 7: LWD is at most 2-competitive; it is at least
    sqrt(2)-competitive (it coincides with LQD under uniform work) and at
    least [(4/3 - 6/B)]-competitive in the contiguous configuration
    (Theorem 6).

    Two ablation knobs (both off by default, i.e. the paper's LWD):
    [~protect_last:true] never pushes out a queue's only packet (the BPD_1 /
    MVD_1 treatment applied to LWD); [~tie] changes the tie-breaking rule
    among equally heavy queues. *)

type tie =
  | Largest_work  (** the paper's rule *)
  | Smallest_work
  | Longest_queue

val make :
  ?protect_last:bool ->
  ?tie:tie ->
  ?impl:[ `Indexed | `Scan | `Flat ] ->
  Proc_config.t ->
  Proc_policy.t
(** The policy is named ["LWD"], ["LWD1"] when protecting last packets, and
    ["LWD/tie=..."] for non-default tie-breaking.  [~impl] picks the victim
    selection: [`Indexed] (default) answers the argmax in O(log n) from the
    switch's incremental index; [`Scan] keeps the original O(n) rescans.
    Both make bit-identical decisions; [`Flat] is [`Indexed] selection plus a request for the switch's flat struct-of-arrays backend (see {!Proc_switch}). *)

val select_victim :
  ?protect_last:bool -> ?tie:tie -> Proc_switch.t -> dest:int -> int option
(** The queue LWD would evict from; [Some dest] means drop, [None] (possible
    only when protecting last packets) means no eligible victim.  Exposed
    for tests. *)

val select_victim_scan :
  ?protect_last:bool -> ?tie:tie -> Proc_switch.t -> dest:int -> int option
(** Reference O(n) scan implementation of {!select_victim}; the
    differential oracle compares the two. *)
