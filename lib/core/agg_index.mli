(** Incremental argmax over queue indices: a tournament tree whose matches
    are decided by a caller-supplied comparator reading live switch state.

    The switches maintain one of these per registered victim-selection key
    (see {!Proc_switch.find_index} / {!Value_switch.find_index}): a queue
    mutation re-runs the O(log n) matches on that queue's root path, and a
    policy reads the argmax — or the argmax excluding the destination
    queue — in O(log n) instead of rescanning all n queues.

    Internal nodes store winner {e indices}, not keys, so the comparator may
    read mutable per-queue aggregates (lengths, total work, cached minimum
    values); the contract is only that after any queue's state changes,
    {!invalidate} is called for it before the next query. *)

type t

val create : n:int -> better:(int -> int -> bool) -> t
(** A tree over elements [0 .. n-1].  [better a b] must implement a strict
    total order (resolve ties by index), so that the tree's winner is the
    unique maximum.  The tree is built immediately from the current state.
    @raise Invalid_argument if [n < 1]. *)

val n : t -> int

val invalidate : t -> int -> unit
(** Re-run the matches on element [j]'s root path after its state changed.
    O(log n). *)

val refresh : t -> unit
(** Re-run every match (after a bulk change such as a flushout).  O(n). *)

val top : t -> int
(** The current overall winner (the unique [better]-maximum). *)

val top_excluding : t -> int -> int
(** The winner among all elements except the given one; [-1] when [n = 1].
    O(log n), read-only. *)

val check : t -> unit
(** Verify every stored match outcome against a fresh comparison — detects
    missed invalidations.  Test hook.
    @raise Invalid_argument on an inconsistency. *)
