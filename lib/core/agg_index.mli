(** Incremental argmax over queue indices: a tournament tree whose matches
    are decided by a comparator reading live switch state.

    The switches maintain one of these per registered victim-selection key
    (see {!Proc_switch.find_index} / {!Value_switch.find_index}): a queue
    mutation re-runs the O(log n) matches on that queue's root path, and a
    policy reads the argmax — or the argmax excluding the destination
    queue — in O(log n) instead of rescanning all n queues.

    Internal nodes store winner {e indices}, not keys, so the comparator may
    read mutable per-queue aggregates (lengths, total work, cached minimum
    values); the contract is only that after any queue's state changes,
    {!invalidate} is called for it before the next query.

    Two comparator families:
    - {!create} takes an arbitrary [better] closure — one indirect call per
      match.
    - {!create_lex} / {!create_ratio} are the flat backend's monomorphic
      variants: matches read unboxed int key columns directly (three array
      loads, no closure), and any {e derived} keys are recomputed once per
      invalidation by a caller-supplied [refresh] instead of once per
      comparison.  Key columns are caller-owned and may alias the switch's
      live per-port aggregate arrays (then [refresh] is [ignore]). *)

type t

val create : n:int -> better:(int -> int -> bool) -> t
(** A tree over elements [0 .. n-1].  [better a b] must implement a strict
    total order (resolve ties by index), so that the tree's winner is the
    unique maximum.  The tree is built immediately from the current state.
    @raise Invalid_argument if [n < 1]. *)

val create_lex :
  n:int ->
  ?tie:[ `Largest_index | `Smallest_index ] ->
  k1:int array ->
  k2:int array ->
  refresh:(int -> unit) ->
  unit ->
  t
(** Monomorphic lexicographic order: larger [k1.(j)] wins, then larger
    [k2.(j)], then the index tie ([`Largest_index] by default).  [refresh j]
    must (re)write element [j]'s keys from live state; it runs for every
    element at creation and once per {!invalidate} — pass [ignore] when both
    columns alias live aggregates.  The columns must have length >= [n].
    @raise Invalid_argument if [n < 1] or a column is shorter than [n]. *)

val create_ratio :
  n:int ->
  len:int array ->
  sum:int array ->
  negmin:int array ->
  refresh:(int -> unit) ->
  unit ->
  t
(** The MRD order, which is not lexicographic: elements with [len.(j) < 0]
    are ineligible and rank below all eligible ones (among themselves by
    larger index); eligible elements compare by the exact cross-multiplied
    ratio [len^2 / sum] (larger wins), ties toward the larger [negmin]
    (negated queue minimum), then the larger index.  Same column-ownership
    and [refresh] contract as {!create_lex}. *)

val n : t -> int

val invalidate : t -> int -> unit
(** Re-run the matches on element [j]'s root path after its state changed
    (for keyed trees, element [j]'s keys are refreshed first).  O(log n),
    O(1) amortized. *)

val refresh : t -> unit
(** Re-run every match (after a bulk change such as a flushout), refreshing
    every key on keyed trees.  O(n). *)

val top : t -> int
(** The current overall winner (the unique maximum). *)

val top_excluding : t -> int -> int
(** The winner among all elements except the given one; [-1] when [n = 1].
    O(log n), read-only. *)

val check : t -> unit
(** Verify every stored match outcome against a fresh comparison — and, on
    keyed trees, that no key column entry is stale — detecting missed
    invalidations.  Test hook.
    @raise Invalid_argument on an inconsistency. *)
