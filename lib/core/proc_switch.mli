(** Shared-memory switch state for the heterogeneous-processing model.

    Holds [n] FIFO work queues drawing on one buffer of [B] packet slots.
    The switch performs mechanics only (admission, push-out, the transmission
    phase); *which* packets are admitted is the policy's job.  All mutating
    operations validate their preconditions and raise [Invalid_argument] on
    misuse, so an engine bug cannot silently corrupt an experiment. *)

type t

val create : Proc_config.t -> t

val config : t -> Proc_config.t
(** The creation-time configuration.  Its [buffer] field is the {e initial}
    B; after {!set_buffer} the live bound is {!buffer}, not
    [(config t).buffer]. *)

val n : t -> int
val buffer : t -> int
val speedup : t -> int

val set_buffer : t -> int -> unit
(** Live-resize the shared buffer bound B.  Admission ([is_full],
    [free_space], [accept]) immediately honours the new bound; buffered
    packets are never dropped, which is why shrinking below the current
    occupancy is refused — the buffer drains down to the new bound through
    normal transmissions.
    @raise Invalid_argument if the new bound is [< 1] or smaller than the
    current occupancy. *)

val now : t -> int
(** Current slot number (starts at 0; advanced by [advance_slot]). *)

val advance_slot : t -> unit

val occupancy : t -> int
val free_space : t -> int
val is_full : t -> bool

val queue : t -> int -> Work_queue.t
(** Direct (read-mostly) access to queue [i]; policies use it to inspect
    lengths and total work. *)

val queue_length : t -> int -> int
val queue_work : t -> int -> int
(** Total residual work [W_i] of queue [i]. *)

val port_work : t -> int -> int
(** Required work per packet of port [i] (from the configuration). *)

val total_occupied_work : t -> int
(** Sum of [W_i] over all queues.  Maintained incrementally: O(1). *)

val find_index : t -> key:string -> better:(int -> int -> bool) -> Agg_index.t
(** The victim-selection index registered under [key], creating (and
    building) it on first use.  [better] must be a strict total order over
    port indices reading this switch's live state (see {!Agg_index}); it is
    only consulted at creation time when [key] is already registered.  The
    switch re-validates every registered index on each mutation, so
    registrations should be few (one per policy variant driving this
    switch). *)

val accept : t -> dest:int -> Packet.Proc.t
(** Admit a fresh packet to [dest]'s queue; assigns the next packet id.
    @raise Invalid_argument if the buffer is full. *)

val push_out : t -> victim:int -> Packet.Proc.t
(** Evict the tail packet of queue [victim] (freeing one slot).
    @raise Invalid_argument if that queue is empty. *)

val transmit_phase : t -> on_transmit:(Packet.Proc.t -> unit) -> int
(** One transmission phase: every non-empty queue receives [speedup]
    processing cycles (head-of-line, run-to-completion).  Returns the number
    of packets transmitted. *)

val serve_port : t -> int -> on_transmit:(Packet.Proc.t -> unit) -> int
(** Give a single port its [speedup] cycles (a transmission phase restricted
    to one queue).  Used by analyses that need the paper's port-by-port
    event ordering.  Returns the number of packets transmitted.

    Exception-safe: each transmitted packet is fully accounted (occupancy,
    work aggregate, indexes) {e before} [on_transmit] sees it, so a raising
    hook propagates out of a switch that still satisfies
    {!check_invariants}. *)

val flush : t -> int
(** Discard all buffered packets (the simulator's periodic flushout);
    returns how many were discarded. *)

val iter_queues : (int -> Work_queue.t -> unit) -> t -> unit

val check_invariants : t -> unit
(** Assert internal consistency (occupancy = sum of queue lengths <= B;
    cached work totals match queue contents).  Test hook. *)
