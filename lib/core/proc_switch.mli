(** Shared-memory switch state for the heterogeneous-processing model.

    Holds [n] FIFO work queues drawing on one buffer of [B] packet slots.
    The switch performs mechanics only (admission, push-out, the transmission
    phase); *which* packets are admitted is the policy's job.  All mutating
    operations validate their preconditions and raise [Invalid_argument] on
    misuse, so an engine bug cannot silently corrupt an experiment.

    Two interchangeable state representations sit behind one [t]:
    - [`Linked] (default): one {!Work_queue} of boxed {!Packet.Proc}
      records per port — the reference implementation, with [queue]/
      [iter_queues] access for tests and analyses.
    - [`Flat]: struct-of-arrays slab of unboxed int columns (residual work,
      arrival, id) with a free-list and one int ring of slot ids per port.
      Together with the [_unit]/[_fields] entry points below, a warmed flat
      switch runs the whole accept/push-out/transmit cycle without
      allocating.  Decision-relevant state (queue lengths, work aggregates,
      ids, FIFO order, tie conventions) is maintained bit-identically to
      the linked representation — test/test_victim_oracle.ml fuzzes the two
      in lockstep. *)

type t

type backend = [ `Linked | `Flat ]

type flat_view = {
  view_works : int array;  (** per-port required work (configuration copy) *)
  view_qlen : int array;  (** live per-port packet counts *)
  view_qwork : int array;  (** live per-port total residual work *)
}
(** Read-only aliases of the flat backend's per-port aggregate columns.
    Policies hand these to {!Agg_index.create_lex} as key columns, so their
    victim indexes compare unboxed ints instead of calling a closure that
    re-reads switch accessors.  The arrays are the switch's own live state:
    never write through them. *)

val create : ?backend:backend -> Proc_config.t -> t
(** [backend] defaults to [`Linked]. *)

val backend : t -> backend

val config : t -> Proc_config.t
(** The creation-time configuration.  Its [buffer] field is the {e initial}
    B; after {!set_buffer} the live bound is {!buffer}, not
    [(config t).buffer]. *)

val n : t -> int
val buffer : t -> int
val speedup : t -> int

val set_buffer : t -> int -> unit
(** Live-resize the shared buffer bound B.  Admission ([is_full],
    [free_space], [accept]) immediately honours the new bound; buffered
    packets are never dropped, which is why shrinking below the current
    occupancy is refused — the buffer drains down to the new bound through
    normal transmissions.  On the flat backend a grow extends the slot slab
    (existing slot ids stay valid); the slab never shrinks.
    @raise Invalid_argument if the new bound is [< 1] or smaller than the
    current occupancy. *)

val now : t -> int
(** Current slot number (starts at 0; advanced by [advance_slot]). *)

val advance_slot : t -> unit

val occupancy : t -> int
val free_space : t -> int
val is_full : t -> bool

val queue : t -> int -> Work_queue.t
(** Direct (read-mostly) access to queue [i]; tests and analyses use it to
    inspect queue contents.
    @raise Invalid_argument on the flat backend, which has no per-queue
    structure to expose — use {!queue_length}/{!queue_work}, which dispatch
    on the representation. *)

val queue_length : t -> int -> int
val queue_work : t -> int -> int
(** Total residual work [W_i] of queue [i]. *)

val port_work : t -> int -> int
(** Required work per packet of port [i] (from the configuration). *)

val total_occupied_work : t -> int
(** Sum of [W_i] over all queues.  Maintained incrementally: O(1). *)

val find_index : t -> key:string -> better:(int -> int -> bool) -> Agg_index.t
(** The victim-selection index registered under [key], creating (and
    building) it on first use.  [better] must be a strict total order over
    port indices reading this switch's live state (see {!Agg_index}); it is
    only consulted at creation time when [key] is already registered.  The
    switch re-validates every registered index on each mutation, so
    registrations should be few (one per policy variant driving this
    switch). *)

val find_index_with :
  t -> key:string -> (n:int -> Agg_index.t) -> Agg_index.t
(** {!find_index} generalized over the index constructor: [make ~n] runs
    only when [key] is not yet registered.  Policies use it to register
    monomorphic keyed indexes ({!Agg_index.create_lex}) over a
    {!flat_view}'s columns. *)

val flat_view : t -> flat_view option
(** [Some] of the live aggregate columns on the flat backend, [None] on
    the linked one. *)

val accept : t -> dest:int -> Packet.Proc.t
(** Admit a fresh packet to [dest]'s queue; assigns the next packet id.
    On the flat backend the returned record is a snapshot of the admitted
    slot (allocated per call — engines use {!accept_unit}).
    @raise Invalid_argument if the buffer is full. *)

val accept_unit : t -> dest:int -> unit
(** {!accept} without materializing the packet — allocation-free on the
    flat backend. *)

val push_out : t -> victim:int -> Packet.Proc.t
(** Evict the tail packet of queue [victim] (freeing one slot).
    @raise Invalid_argument if that queue is empty. *)

val push_out_unit : t -> victim:int -> unit
(** {!push_out} without materializing the evicted packet. *)

val transmit_phase : t -> on_transmit:(Packet.Proc.t -> unit) -> int
(** One transmission phase: every non-empty queue receives [speedup]
    processing cycles (head-of-line, run-to-completion).  Returns the number
    of packets transmitted. *)

val transmit_phase_fields :
  t -> on_transmit:(dest:int -> arrival:int -> unit) -> int
(** {!transmit_phase} delivering each transmission as plain fields instead
    of a packet record — allocation-free on the flat backend.  Same
    ordering, accounting and exception contract as {!transmit_phase}. *)

val serve_port : t -> int -> on_transmit:(Packet.Proc.t -> unit) -> int
(** Give a single port its [speedup] cycles (a transmission phase restricted
    to one queue).  Used by analyses that need the paper's port-by-port
    event ordering.  Returns the number of packets transmitted.

    Exception-safe: each transmitted packet is fully accounted (occupancy,
    work aggregate, indexes) {e before} [on_transmit] sees it, so a raising
    hook propagates out of a switch that still satisfies
    {!check_invariants}. *)

val flush : t -> int
(** Discard all buffered packets (the simulator's periodic flushout);
    returns how many were discarded.
    @raise Invalid_argument if the occupancy count disagrees with the queue
    contents — state corruption that must not be ignored (a real check, not
    an [assert] stripped under [-noassert]). *)

val iter_queues : (int -> Work_queue.t -> unit) -> t -> unit
(** @raise Invalid_argument on the flat backend (see {!queue}). *)

val check_invariants : t -> unit
(** Assert internal consistency (occupancy = sum of queue lengths <= B;
    cached work totals match queue contents; on the flat backend, also
    slab/free-list disjointness and per-slot residual bounds).  Test
    hook. *)
