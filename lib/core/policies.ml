(* The registry is where the backend seam reaches every consumer with zero
   call-site changes: Experiment, the sweeps, the serve daemon and the CLIs
   all build their policies here, so defaulting [?impl] from SMBM_BACKEND
   switches the whole stack (victim selection *and* switch representation)
   from the environment. *)
let default_impl () =
  match Sys.getenv_opt "SMBM_BACKEND" with
  | Some "flat" -> `Flat
  | Some "scan" -> `Scan
  | Some "linked" | Some "indexed" -> `Indexed
  | Some other ->
    invalid_arg
      (Printf.sprintf
         "SMBM_BACKEND=%s: expected flat, scan, linked or indexed" other)
  | None -> `Indexed

(* Threshold policies have no victim selection, hence no [?impl]; they
   follow the backend choice through [with_backend]. *)
let proc_backend = function
  | `Flat -> `Flat
  | `Indexed | `Scan -> `Linked

let proc ?impl config =
  let impl = match impl with Some i -> i | None -> default_impl () in
  let bk = Proc_policy.with_backend (proc_backend impl) in
  [
    bk (P_nhst.make config);
    bk (P_nest.make config);
    bk (P_nhdt.make config);
    P_lqd.make ~impl config;
    P_bpd.make ~impl config;
    P_bpd.make ~protect_last:true ~impl config;
    P_lwd.make ~impl config;
  ]

let proc_extended ?impl config =
  let impl = match impl with Some i -> i | None -> default_impl () in
  let bk = Proc_policy.with_backend (proc_backend impl) in
  let half_partition =
    config.Proc_config.buffer / (2 * Proc_config.n config)
  in
  proc ~impl config
  @ [
      P_lwd.make ~protect_last:true ~impl config;
      P_lwd.make ~tie:P_lwd.Smallest_work ~impl config;
      P_lwd.make ~tie:P_lwd.Longest_queue ~impl config;
      P_reserved.make ~reserve:half_partition ~impl config;
      bk (P_rand.make config);
    ]

let proc_find ?impl config name =
  let name = String.lowercase_ascii name in
  List.find_opt
    (fun (p : Proc_policy.t) -> String.lowercase_ascii p.name = name)
    (proc_extended ?impl config)

let value_uniform ?impl config =
  let impl = match impl with Some i -> i | None -> default_impl () in
  let bk = Value_policy.with_backend (proc_backend impl) in
  [
    bk (V_greedy.make config);
    bk (V_nest.make config);
    V_lqd.make ~impl config;
    V_mvd.make ~impl config;
    V_mvd.make ~protect_last:true ~impl config;
    V_mrd.make ~impl config;
  ]

let value_port ?impl ~port_value config =
  let impl = match impl with Some i -> i | None -> default_impl () in
  let bk = Value_policy.with_backend (proc_backend impl) in
  value_uniform ~impl config @ [ bk (V_nhst.make ~port_value config) ]

let value_extended ?impl config =
  let impl = match impl with Some i -> i | None -> default_impl () in
  let bk = Value_policy.with_backend (proc_backend impl) in
  value_uniform ~impl config
  @ [ V_mrd.make ~protect_last:true ~impl config; bk (P_rand.make_value config) ]

let value_find ?impl ?port_value config name =
  let name = String.lowercase_ascii name in
  let pool =
    (match port_value with
    | Some port_value -> value_port ?impl ~port_value config
    | None -> value_uniform ?impl config)
    @ value_extended ?impl config
  in
  List.find_opt
    (fun (p : Value_policy.t) -> String.lowercase_ascii p.name = name)
    pool
