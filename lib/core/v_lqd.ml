(* argmax over queues of virtual length; ties towards the smaller minimum
   value, then the larger index — lexicographic (length, -min_value, index),
   with the arriving packet counted as already added to [dest].  The scan's
   replacement on [key >= best] keeps the largest index among full ties; the
   indexed path answers the same argmax in O(log n) from the switch's
   incremental index.  All comparisons are explicit integer comparisons
   (minimum values come off the switch's O(1) cached bitsets, through the
   representation-independent accessors so either backend serves). *)

let min_of sw j = Value_switch.queue_min_value_or sw j ~default:max_int

let select_victim_scan sw ~dest =
  let best = ref 0 and best_len = ref min_int and best_min = ref min_int in
  (* [best_min] holds the *negated* minimum so that larger is better. *)
  for j = 0 to Value_switch.n sw - 1 do
    let len = Value_switch.queue_length sw j + if j = dest then 1 else 0 in
    let neg_min = -min_of sw j in
    if len > !best_len || (len = !best_len && neg_min >= !best_min) then begin
      best := j;
      best_len := len;
      best_min := neg_min
    end
  done;
  !best

(* Flat backend: keyed lexicographic tree over (queue length, negated
   per-port minimum) — the length column aliases the live aggregate, the
   negated minimum is a derived key refreshed per invalidation off the
   occupancy bitsets ("smaller minimum wins the tie" becomes "larger
   negated minimum wins"). *)
let index sw =
  match Value_switch.flat_view sw with
  | Some v ->
    Value_switch.find_index_with sw ~key:"lqd" (fun ~n ->
        let negmin = Array.make n (-max_int) in
        Agg_index.create_lex ~n ~k1:v.Value_switch.view_qlen ~k2:negmin
          ~refresh:(fun j ->
            negmin.(j) <- -(Value_switch.view_min_value_or v j ~default:max_int))
          ())
  | None ->
    Value_switch.find_index sw ~key:"lqd" ~better:(fun a b ->
        let la = Value_switch.queue_length sw a
        and lb = Value_switch.queue_length sw b in
        la > lb
        || la = lb
           &&
           let ma = min_of sw a and mb = min_of sw b in
           ma < mb || (ma = mb && a > b))

let select_victim_indexed idx sw ~dest =
  let c = Agg_index.top_excluding idx dest in
  if c < 0 then dest
  else begin
    let dlen = Value_switch.queue_length sw dest + 1
    and clen = Value_switch.queue_length sw c in
    if clen > dlen then c
    else if clen < dlen then dest
    else begin
      let cm = min_of sw c and dm = min_of sw dest in
      if cm < dm || (cm = dm && c > dest) then c else dest
    end
  end

let select_victim sw ~dest = select_victim_indexed (index sw) sw ~dest

let make ?(impl = `Indexed) _config =
  let backend =
    match impl with `Flat -> `Flat | `Indexed | `Scan -> `Linked
  in
  let cached_index =
    let cache = ref None in
    fun sw ->
      match !cache with
      | Some (sw', idx) when sw' == sw -> idx
      | Some _ | None ->
        let idx = index sw in
        cache := Some (sw, idx);
        idx
  in
  let select =
    match impl with
    | `Scan -> fun sw ~dest -> select_victim_scan sw ~dest
    | `Indexed | `Flat ->
      fun sw ~dest -> select_victim_indexed (cached_index sw) sw ~dest
  in
  let admit_batch =
    match impl with
    | `Scan | `Indexed -> None
    | `Flat ->
      Some
        (fun sw batch (c : Admission.counters) ->
          let idx = cached_index sw in
          for i = 0 to Arrival_batch.length batch - 1 do
            let dest = Arrival_batch.unsafe_dest batch i
            and value = Arrival_batch.unsafe_value batch i in
            if not (Value_switch.is_full sw) then begin
              Value_switch.accept_unit sw ~dest ~value;
              c.Admission.accepted <- c.Admission.accepted + 1
            end
            else begin
              let victim = select_victim_indexed idx sw ~dest in
              let victim =
                if victim <> dest then victim
                else if
                  Value_switch.queue_min_value_or sw dest ~default:max_int
                  < value
                then dest
                else -1
              in
              if victim >= 0 then begin
                ignore (Value_switch.push_out_lost sw ~victim : int);
                Value_switch.accept_unit sw ~dest ~value;
                c.Admission.pushed_out <- c.Admission.pushed_out + 1;
                c.Admission.accepted <- c.Admission.accepted + 1
              end
              else c.Admission.dropped <- c.Admission.dropped + 1
            end
          done)
  in
  Value_policy.make ~backend ?admit_batch ~name:"LQD" ~push_out:true
    (fun sw ~dest ~value ->
      match Value_policy.greedy_accept sw with
      | Some d -> d
      | None ->
        let victim = select sw ~dest in
        if victim <> dest then Decision.Push_out { victim }
        else begin
          match Value_switch.queue_min_value sw dest with
          | Some m when m < value -> Decision.Push_out { victim = dest }
          | Some _ | None -> Decision.Drop
        end)
