(** Longest-Queue-Drop for the value model.

    When the buffer is congested, the longest queue — counting the arriving
    packet as virtually added — drops its last (lowest-value) packet.  Ties
    are broken towards the queue holding the smaller minimum value (the
    cheaper eviction), then the larger port index.  When the destination
    queue itself is longest, the arrival replaces the queue's own minimum
    only if it is strictly more valuable; otherwise it is dropped.

    Theorem 9: at least (cube root of k)-competitive. *)

val make : ?impl:[ `Indexed | `Scan | `Flat ] -> Value_config.t -> Value_policy.t
(** [~impl] picks the victim selection: [`Indexed] (default) answers the
    argmax in O(log n) from the switch's incremental index; [`Scan] keeps
    the original O(n) rescans.  Both make bit-identical decisions; [`Flat] is [`Indexed] selection plus a request for the switch's flat struct-of-arrays backend (see {!Value_switch}). *)

val select_victim : Value_switch.t -> dest:int -> int
(** Exposed for tests. *)

val select_victim_scan : Value_switch.t -> dest:int -> int
(** Reference O(n) scan implementation of {!select_victim}; the
    differential oracle compares the two. *)
