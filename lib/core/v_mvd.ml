(* argmin over eligible queues of (minimum value, -length, -index): the
   cheapest admitted packet, ties towards the longer queue, then the larger
   port index.  The scan's replacement on [key <= best] keeps the largest
   index among full ties; the indexed path reads the same argmin in
   O(log n) from the switch's incremental index.  All comparisons are
   explicit integer comparisons, reading through the switch's
   representation-independent accessors so either backend serves. *)

let select_victim_scan ~protect_last sw =
  let min_len = if protect_last then 2 else 1 in
  let best = ref None in
  let best_min = ref max_int and best_len = ref min_int in
  for j = 0 to Value_switch.n sw - 1 do
    let len = Value_switch.queue_length sw j in
    if len >= min_len then begin
      match Value_switch.queue_min_value sw j with
      | None -> ()
      | Some v ->
        if v < !best_min || (v = !best_min && len >= !best_len) then begin
          best := Some (j, v);
          best_min := v;
          best_len := len
        end
    end
  done;
  !best

(* Flat backend: keyed lexicographic tree with ineligibility encoded as
   (min_int, 0); an eligible queue carries (negated minimum, length), and a
   non-empty queue's minimum is in [1, k] so its negation stays above
   min_int.  Among ineligible queues the index tie gives the same order as
   the closure's [a > b] clause.  Both keys are derived, refreshed per
   invalidation off the live aggregates and occupancy bitsets. *)
let index ~protect_last sw =
  let min_len = if protect_last then 2 else 1 in
  let key = if protect_last then "mvd:protect" else "mvd" in
  match Value_switch.flat_view sw with
  | Some v ->
    Value_switch.find_index_with sw ~key (fun ~n ->
        let k1 = Array.make n 0 and k2 = Array.make n 0 in
        Agg_index.create_lex ~n ~k1 ~k2
          ~refresh:(fun j ->
            if v.Value_switch.view_qlen.(j) >= min_len then begin
              k1.(j) <- -(Value_switch.view_min_value_or v j ~default:max_int);
              k2.(j) <- v.Value_switch.view_qlen.(j)
            end
            else begin
              k1.(j) <- min_int;
              k2.(j) <- 0
            end)
          ())
  | None ->
    Value_switch.find_index sw ~key ~better:(fun a b ->
        let la = Value_switch.queue_length sw a
        and lb = Value_switch.queue_length sw b in
        let ea = la >= min_len and eb = lb >= min_len in
        if ea <> eb then ea
        else if not ea then a > b
        else begin
          let ma = Value_switch.queue_min_value_or sw a ~default:max_int
          and mb = Value_switch.queue_min_value_or sw b ~default:max_int in
          ma < mb || (ma = mb && (la > lb || (la = lb && a > b)))
        end)

let select_victim_indexed ~protect_last idx sw =
  let min_len = if protect_last then 2 else 1 in
  let c = Agg_index.top idx in
  if c < 0 then None
  else if Value_switch.queue_length sw c < min_len then None
  else
    match Value_switch.queue_min_value sw c with
    | Some v -> Some (c, v)
    | None -> None

let select_victim ~protect_last sw =
  select_victim_indexed ~protect_last (index ~protect_last sw) sw

let make ?(protect_last = false) ?(impl = `Indexed) _config =
  let name = if protect_last then "MVD1" else "MVD" in
  let backend =
    match impl with `Flat -> `Flat | `Indexed | `Scan -> `Linked
  in
  let cached_index =
    let cache = ref None in
    fun sw ->
      match !cache with
      | Some (sw', idx) when sw' == sw -> idx
      | Some _ | None ->
        let idx = index ~protect_last sw in
        cache := Some (sw, idx);
        idx
  in
  let select =
    match impl with
    | `Scan -> select_victim_scan ~protect_last
    | `Indexed | `Flat ->
      fun sw -> select_victim_indexed ~protect_last (cached_index sw) sw
  in
  let admit_batch =
    match impl with
    | `Scan | `Indexed -> None
    | `Flat ->
      Some
        (fun sw batch (c : Admission.counters) ->
          let idx = cached_index sw in
          for i = 0 to Arrival_batch.length batch - 1 do
            let dest = Arrival_batch.unsafe_dest batch i
            and value = Arrival_batch.unsafe_value batch i in
            if not (Value_switch.is_full sw) then begin
              Value_switch.accept_unit sw ~dest ~value;
              c.Admission.accepted <- c.Admission.accepted + 1
            end
            else begin
              match select_victim_indexed ~protect_last idx sw with
              | Some (victim, min_v) when min_v < value ->
                ignore (Value_switch.push_out_lost sw ~victim : int);
                Value_switch.accept_unit sw ~dest ~value;
                c.Admission.pushed_out <- c.Admission.pushed_out + 1;
                c.Admission.accepted <- c.Admission.accepted + 1
              | Some _ | None ->
                c.Admission.dropped <- c.Admission.dropped + 1
            end
          done)
  in
  Value_policy.make ~backend ?admit_batch ~name ~push_out:true
    (fun sw ~dest:_ ~value ->
      match Value_policy.greedy_accept sw with
      | Some d -> d
      | None -> (
        match select sw with
        | Some (victim, min_v) when min_v < value -> Decision.Push_out { victim }
        | Some _ | None -> Decision.Drop))
