open Smbm_prelude

(* Buckets are paired with a bitset of non-empty value levels (63 levels per
   word), so [min_value]/[max_value] cost a couple of word tests plus a
   6-step bit search instead of walking up to k deque headers — these two
   reads sit on the admission hot path of every value policy (the MRD/MVD
   drop gates and the switch-wide minimum tracker).

   Layout contract (shared with Value_switch's flat backend, which builds
   the same bitsets over its SoA columns): value level v occupies bit
   [v mod 63] of word [v / 63] — 63 levels per word, never 64, so the top
   bit of every word stays clear and [lsl]/[land -b] never touch the sign
   bit.  [bit_index]/[high_bit_index] assume the operand fits 63 bits and
   take 32-bit-wide first steps, so the whole scheme requires OCaml's
   native int to be at least 63 bits wide; the init-time check below turns
   a silently corrupting 32-bit build into an immediate error. *)

let () =
  if Sys.int_size < 63 then
    failwith
      (Printf.sprintf
         "Value_queue: native int is %d bits, but the occupancy bitset packs \
          63 value levels per word and its bit searches step by 32 bits — \
          32-bit platforms are unsupported"
         Sys.int_size)

type t = {
  k : int;
  buckets : Packet.Value.t Deque.t array; (* index by value; slot 0 unused *)
  occupied : int array; (* bit [v mod 63] of word [v / 63]: bucket v non-empty *)
  mutable size : int;
  mutable sum : int;
}

let create ~k =
  if k < 1 then invalid_arg "Value_queue.create: k must be >= 1";
  {
    k;
    buckets = Array.init (k + 1) (fun _ -> Deque.create ());
    occupied = Array.make ((k / 63) + 1) 0;
    size = 0;
    sum = 0;
  }

let length t = t.size
let is_empty t = t.size = 0
let total_value t = t.sum

let average_value t =
  if t.size = 0 then 0.0 else float_of_int t.sum /. float_of_int t.size

(* Bit index of the single set bit of [b]. *)
let bit_index b =
  let i = ref 0 and b = ref b in
  if !b land 0xFFFFFFFF = 0 then begin i := 32; b := !b lsr 32 end;
  if !b land 0xFFFF = 0 then begin i := !i + 16; b := !b lsr 16 end;
  if !b land 0xFF = 0 then begin i := !i + 8; b := !b lsr 8 end;
  if !b land 0xF = 0 then begin i := !i + 4; b := !b lsr 4 end;
  if !b land 0x3 = 0 then begin i := !i + 2; b := !b lsr 2 end;
  if !b land 0x1 = 0 then incr i;
  !i

(* Bit index of the highest set bit of [b > 0]. *)
let high_bit_index b =
  let i = ref 0 and b = ref b in
  if !b lsr 32 <> 0 then begin i := 32; b := !b lsr 32 end;
  if !b lsr 16 <> 0 then begin i := !i + 16; b := !b lsr 16 end;
  if !b lsr 8 <> 0 then begin i := !i + 8; b := !b lsr 8 end;
  if !b lsr 4 <> 0 then begin i := !i + 4; b := !b lsr 4 end;
  if !b lsr 2 <> 0 then begin i := !i + 2; b := !b lsr 2 end;
  if !b lsr 1 <> 0 then incr i;
  !i

(* Allocation-free variants: the admission hot path (policy gates, the
   switch-wide minimum tracker's comparator) calls these on every buffer
   mutation, where a [Some] box per read is measurable churn. *)
let min_value_or t ~default =
  if t.size = 0 then default
  else begin
    (* plain loop, not a local [rec]: a closure per read is hot-path churn *)
    let w = ref 0 in
    while t.occupied.(!w) = 0 do
      incr w
    done;
    let bits = t.occupied.(!w) in
    (!w * 63) + bit_index (bits land -bits)
  end

let max_value_or t ~default =
  if t.size = 0 then default
  else begin
    let w = ref (Array.length t.occupied - 1) in
    while t.occupied.(!w) = 0 do
      decr w
    done;
    (!w * 63) + high_bit_index t.occupied.(!w)
  end

let min_value t = if t.size = 0 then None else Some (min_value_or t ~default:0)
let max_value t = if t.size = 0 then None else Some (max_value_or t ~default:0)

let mark t v = t.occupied.(v / 63) <- t.occupied.(v / 63) lor (1 lsl (v mod 63))

let unmark_if_empty t v =
  if Deque.is_empty t.buckets.(v) then
    t.occupied.(v / 63) <- t.occupied.(v / 63) land lnot (1 lsl (v mod 63))

let push t (p : Packet.Value.t) =
  if p.value < 1 || p.value > t.k then
    invalid_arg "Value_queue.push: value out of range";
  Deque.push_back t.buckets.(p.value) p;
  mark t p.value;
  t.size <- t.size + 1;
  t.sum <- t.sum + p.value

let pop_min t =
  if t.size = 0 then invalid_arg "Value_queue.pop_min: empty";
  let v = min_value_or t ~default:0 in
  let p = Deque.pop_back t.buckets.(v) in
  unmark_if_empty t v;
  t.size <- t.size - 1;
  t.sum <- t.sum - v;
  p

let pop_max t =
  if t.size = 0 then invalid_arg "Value_queue.pop_max: empty";
  let v = max_value_or t ~default:0 in
  let p = Deque.pop_front t.buckets.(v) in
  unmark_if_empty t v;
  t.size <- t.size - 1;
  t.sum <- t.sum - v;
  p

let iter f t =
  for v = t.k downto 1 do
    Deque.iter f t.buckets.(v)
  done

let to_list t =
  let acc = ref [] in
  for v = 1 to t.k do
    Deque.iter (fun p -> acc := p :: !acc) t.buckets.(v)
  done;
  !acc

let clear t =
  let dropped = t.size in
  Array.iter Deque.clear t.buckets;
  Array.fill t.occupied 0 (Array.length t.occupied) 0;
  t.size <- 0;
  t.sum <- 0;
  dropped
