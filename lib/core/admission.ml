(* Per-batch admission counters for the fused kernels.

   A policy's [admit_batch] adds into one of these instead of returning a
   per-packet [Decision.t]; the engine folds the counts into its metrics
   once per batch.  Mutable record, allocated once per instance and reset
   per batch — no per-packet allocation. *)

type counters = {
  mutable accepted : int;
  mutable pushed_out : int;
  mutable dropped : int;
}

let counters () = { accepted = 0; pushed_out = 0; dropped = 0 }

let reset c =
  c.accepted <- 0;
  c.pushed_out <- 0;
  c.dropped <- 0
