(** A reusable struct-of-arrays batch of one slot's arrivals.

    The per-slot hot path of the evaluation pipeline used to allocate a fresh
    [Arrival.t list] every slot (plus intermediate lists in the workload
    combinators).  An [Arrival_batch.t] replaces those lists with flat [int]
    arrays ([dest]/[value]/[work]) plus a length, growing on demand and
    reused across slots, so a steady-state slot loop allocates nothing.

    Iteration order is arrival order: index 0 is the first packet offered to
    a switch.  The [work] column is an annotation slot for consumers that
    precompute per-packet cost (the processing model derives work from the
    destination port); workloads leave it 0. *)

type t

val create : ?capacity:int -> unit -> t
(** Empty batch; [capacity] (default 64) is only the initial allocation. *)

val length : t -> int
val is_empty : t -> bool

val clear : t -> unit
(** Reset the length to 0; keeps the arrays (no allocation). *)

val push : ?work:int -> t -> dest:int -> value:int -> unit
(** Append one arrival; amortized O(1), allocates only when growing. *)

val push_arrival : t -> Arrival.t -> unit

val dest : t -> int -> int
val value : t -> int -> int
val work : t -> int -> int
(** Indexed access.  @raise Invalid_argument out of bounds. *)

val unsafe_dest : t -> int -> int
val unsafe_value : t -> int -> int
(** Unchecked indexed access for batch kernels whose loop bound is
    [length t]. *)

val set_work : t -> int -> int -> unit
(** [set_work b i w] annotates arrival [i] with per-packet work [w]. *)

val set : t -> int -> dest:int -> value:int -> unit
(** Overwrite arrival [i] in place (in-place relabelling). *)

val iter : t -> f:(dest:int -> value:int -> unit) -> unit
(** In arrival order; no allocation. *)

val iteri : t -> f:(int -> dest:int -> value:int -> unit) -> unit

val reverse_from : t -> from:int -> unit
(** Reverse the segment [\[from, length)] in place: generators that append
    draws and owe the caller prepend-accumulation order (the historical
    [Source.step] list convention) fix the segment up with one O(n) pass.
    @raise Invalid_argument if [from] is outside [\[0, length\]]. *)

val to_list : t -> Arrival.t list
(** Fresh list in iteration order (the compatibility shim's conversion). *)

val of_list : Arrival.t list -> t
