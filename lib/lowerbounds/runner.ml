open Smbm_sim

type measured = {
  alg_throughput : int;
  opt_throughput : int;
  ratio : float;
}

let episodic ~episode ~burst ~trickle slot =
  let t = slot mod episode in
  if t = 0 then burst else trickle t

let burst h a = List.init h (fun _ -> a)

let measure ~objective ~(alg : Instance.t) ~(opt : Instance.t) =
  let alg_throughput = Metrics.throughput_of objective alg.metrics
  and opt_throughput = Metrics.throughput_of objective opt.metrics in
  let ratio =
    if alg_throughput = 0 then
      if opt_throughput = 0 then 1.0 else infinity
    else float_of_int opt_throughput /. float_of_int alg_throughput
  in
  { alg_throughput; opt_throughput; ratio }

let params ~slots ~flush_every =
  { Experiment.slots; flush_every; check_every = None }

let run_proc ~config ~alg ~opt ~trace ~slots ?flush_every () =
  let alg = Proc_engine.instance config alg
  and opt = Proc_engine.instance ~name:"OPT*" config opt in
  let workload = Smbm_traffic.Workload.of_fun trace in
  Experiment.run ~params:(params ~slots ~flush_every) ~workload [ alg; opt ];
  measure ~objective:`Packets ~alg ~opt

let run_value ~config ~alg ~opt ~trace ~slots ?flush_every () =
  let alg = Value_engine.instance config alg
  and opt = Value_engine.instance ~name:"OPT*" config opt in
  let workload = Smbm_traffic.Workload.of_fun trace in
  Experiment.run ~params:(params ~slots ~flush_every) ~workload [ alg; opt ];
  measure ~objective:`Value ~alg ~opt

let measure_many ?jobs ?on_tick measures =
  let jobs =
    match jobs with Some j -> j | None -> Smbm_par.Pool.default_jobs ()
  in
  Smbm_par.Pool.with_pool ?on_tick ~jobs (fun pool ->
      Smbm_par.Pool.map pool (fun f -> f ()) measures)
