(* Growable circular buffer of unboxed ints.

   Capacity is always a power of two so position arithmetic is a mask, not a
   division; the buffer doubles when full and never shrinks, so a warmed ring
   performs every operation allocation-free.  Front/back access makes it a
   deque: the flat switch backends use [push_back]/[pop_front] for FIFO
   service and [pop_back] for tail eviction. *)

type t = { mutable buf : int array; mutable head : int; mutable len : int }

let create ?(capacity = 8) () =
  let cap = ref 2 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  { buf = Array.make !cap 0; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0
let capacity t = Array.length t.buf

let grow t =
  let cap = Array.length t.buf in
  let buf = Array.make (2 * cap) 0 in
  (* Re-linearize: logical order front .. back becomes physical 0 .. len-1. *)
  let tail = cap - t.head in
  Array.blit t.buf t.head buf 0 (min t.len tail);
  if t.len > tail then Array.blit t.buf 0 buf tail (t.len - tail);
  t.buf <- buf;
  t.head <- 0

(* Masked positions are in bounds by construction (capacity is a power of
   two and the mask is capacity - 1), so the accesses below skip the bounds
   check — these are the per-packet ops of the flat switch backends. *)

let push_back t x =
  if t.len = Array.length t.buf then grow t;
  Array.unsafe_set t.buf ((t.head + t.len) land (Array.length t.buf - 1)) x;
  t.len <- t.len + 1

let peek_front t =
  if t.len = 0 then invalid_arg "Int_ring.peek_front: empty";
  Array.unsafe_get t.buf t.head

let pop_front t =
  if t.len = 0 then invalid_arg "Int_ring.pop_front: empty";
  let x = Array.unsafe_get t.buf t.head in
  t.head <- (t.head + 1) land (Array.length t.buf - 1);
  t.len <- t.len - 1;
  x

let pop_back t =
  if t.len = 0 then invalid_arg "Int_ring.pop_back: empty";
  t.len <- t.len - 1;
  Array.unsafe_get t.buf ((t.head + t.len) land (Array.length t.buf - 1))

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Int_ring.get: out of range";
  Array.unsafe_get t.buf ((t.head + i) land (Array.length t.buf - 1))

let clear t =
  t.head <- 0;
  t.len <- 0

let iter f t =
  let mask = Array.length t.buf - 1 in
  for i = 0 to t.len - 1 do
    f t.buf.((t.head + i) land mask)
  done
