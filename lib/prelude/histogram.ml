type t = {
  max_value : float;
  buckets_per_decade : int;
  counts : int array; (* counts.(0) is the [0, 1) bucket *)
  mutable total : int;
  mutable sum : float;
  mutable max_seen : float;
}

let bucket_count ~max_value ~buckets_per_decade =
  (* One bucket for [0, 1), then buckets_per_decade per decade above 1. *)
  1 + int_of_float (ceil (log10 max_value *. float_of_int buckets_per_decade))

let create ?(max_value = 1e9) ?(buckets_per_decade = 10) () =
  if max_value <= 1.0 then invalid_arg "Histogram.create: max_value <= 1";
  if buckets_per_decade < 1 then
    invalid_arg "Histogram.create: buckets_per_decade < 1";
  {
    max_value;
    buckets_per_decade;
    counts = Array.make (bucket_count ~max_value ~buckets_per_decade + 1) 0;
    total = 0;
    sum = 0.0;
    max_seen = 0.0;
  }

let index t x =
  if x < 1.0 then 0
  else
    let i = 1 + int_of_float (log10 x *. float_of_int t.buckets_per_decade) in
    min i (Array.length t.counts - 1)

(* Lower edge of bucket i (inverse of [index]). *)
let lower_edge t i =
  if i = 0 then 0.0
  else Float.pow 10.0 (float_of_int (i - 1) /. float_of_int t.buckets_per_decade)

let upper_edge t i =
  if i = 0 then 1.0
  else Float.pow 10.0 (float_of_int i /. float_of_int t.buckets_per_decade)

let add t x =
  if x < 0.0 then invalid_arg "Histogram.add: negative sample";
  let i = index t x in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. x;
  if x > t.max_seen then t.max_seen <- x

let count t = t.total
let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total
let max_seen t = t.max_seen
let buckets_per_decade t = t.buckets_per_decade

let buckets t =
  let acc = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (i, t.counts.(i)) :: !acc
  done;
  !acc

let bucket_bounds ~buckets_per_decade i =
  if buckets_per_decade < 1 then
    invalid_arg "Histogram.bucket_bounds: buckets_per_decade < 1";
  if i < 0 then invalid_arg "Histogram.bucket_bounds: negative index";
  if i = 0 then (0.0, 1.0)
  else
    let edge j = Float.pow 10.0 (float_of_int j /. float_of_int buckets_per_decade) in
    (edge (i - 1), edge i)

(* Quantile over externally held (index, count) buckets — the same
   interpolation as [quantile], but usable on the {e difference} of two
   cumulative snapshots, where no [max_seen] exists to clamp against.
   Buckets must be sorted by index; non-positive counts are skipped (a
   racy snapshot pair can transiently produce them). *)
let quantile_of_buckets ~buckets_per_decade buckets q =
  if q < 0.0 || q > 1.0 then
    invalid_arg "Histogram.quantile_of_buckets: q outside [0, 1]";
  let total =
    List.fold_left (fun acc (_, c) -> if c > 0 then acc + c else acc) 0 buckets
  in
  if total = 0 then 0.0
  else begin
    let rank = q *. float_of_int total in
    let rec scan seen = function
      | [] -> (
        (* rank = total exactly: the last bucket's upper edge. *)
        match List.rev buckets with
        | (i, _) :: _ -> snd (bucket_bounds ~buckets_per_decade i)
        | [] -> 0.0)
      | (i, c) :: rest ->
        if c <= 0 then scan seen rest
        else
          let seen' = seen + c in
          if float_of_int seen' >= rank then begin
            let inside = rank -. float_of_int seen in
            let frac = inside /. float_of_int c in
            let lo, hi = bucket_bounds ~buckets_per_decade i in
            lo +. (frac *. (hi -. lo))
          end
          else scan seen' rest
    in
    scan 0 buckets
  end

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q outside [0, 1]";
  if t.total = 0 then 0.0
  else if t.total = 1 then
    (* The one sample is [max_seen] itself; interpolating inside its bucket
       would report a value strictly below it for any q < 1. *)
    t.max_seen
  else begin
    let rank = q *. float_of_int t.total in
    let rec scan i seen =
      if i >= Array.length t.counts then t.max_seen
      else
        let seen' = seen + t.counts.(i) in
        if float_of_int seen' >= rank && t.counts.(i) > 0 then begin
          (* Interpolate within the bucket. *)
          let inside = rank -. float_of_int seen in
          let frac = inside /. float_of_int t.counts.(i) in
          let lo = lower_edge t i and hi = Float.min (upper_edge t i) t.max_seen in
          Float.min (lo +. (frac *. (hi -. lo))) t.max_seen
        end
        else scan (i + 1) seen'
    in
    scan 0 0
  end

let merge a b =
  if
    a.max_value <> b.max_value || a.buckets_per_decade <> b.buckets_per_decade
  then invalid_arg "Histogram.merge: incompatible bucketing";
  let counts = Array.mapi (fun i c -> c + b.counts.(i)) a.counts in
  {
    a with
    counts;
    total = a.total + b.total;
    sum = a.sum +. b.sum;
    max_seen = Float.max a.max_seen b.max_seen;
  }

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0;
  t.sum <- 0.0;
  t.max_seen <- 0.0

let pp ppf t =
  if t.total = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.3g p50=%.3g p90=%.3g p99=%.3g max=%.3g"
      t.total (mean t) (quantile t 0.5) (quantile t 0.9) (quantile t 0.99)
      t.max_seen
