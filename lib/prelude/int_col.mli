(** Off-heap int column: a [Bigarray.Array1] of native ints, C layout.

    Backs the flat switch slabs and {e compact trace} payloads: the data
    lives outside the OCaml heap (never scanned by the GC) and [sub] hands
    out zero-copy windows over one shared allocation, so read-only columns
    can be shared across domains without copying.  The [unsafe_*] accessors
    skip the bounds check — callers keep indices in range by their own
    invariants (the flat switches prove theirs in [check_invariants]). *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : ?fill:int -> int -> t
(** [create ?fill len]: a column of [len] slots, all [fill] (default 0).
    @raise Invalid_argument on a negative length. *)

val init : int -> (int -> int) -> t
val length : t -> int

val get : t -> int -> int
val set : t -> int -> int -> unit

val unsafe_get : t -> int -> int
val unsafe_set : t -> int -> int -> unit

val fill : t -> int -> unit

val blit :
  src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit

val grow : t -> len:int -> fill:int -> t
(** A fresh column of [len] slots carrying the old contents, tail [fill]ed.
    @raise Invalid_argument if [len] is smaller than the current length. *)

val sub : t -> pos:int -> len:int -> t
(** Zero-copy window sharing the backing storage. *)

val of_array : int array -> t
val to_array : t -> int array
val equal : t -> t -> bool
