(** Log-bucketed histogram for non-negative samples (latencies, queue
    depths).  Buckets grow geometrically, so the histogram spans
    microsecond-to-hour-like ranges with bounded memory and small relative
    error; quantiles are interpolated within buckets. *)

type t

val create : ?max_value:float -> ?buckets_per_decade:int -> unit -> t
(** [create ()] covers [0, max_value] (default 1e9) with
    [buckets_per_decade] buckets per power of ten (default 10; relative
    error ~ 26%/buckets_per_decade). *)

val add : t -> float -> unit
(** Negative samples raise [Invalid_argument]; samples above the cap are
    clamped into the last bucket. *)

val count : t -> int

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0, 1]; 0 when empty, and exactly the sample
    when only one has been added (every quantile of a single observation is
    that observation — no in-bucket interpolation below it).
    @raise Invalid_argument for [q] outside [0, 1]. *)

val mean : t -> float

val max_seen : t -> float
(** Largest sample added; 0 when empty. *)

val buckets_per_decade : t -> int

val buckets : t -> (int * int) list
(** Non-empty buckets as [(index, count)], sorted by index.  Together with
    {!buckets_per_decade} this is the histogram's full shape — two
    cumulative snapshots of the same instrument can be subtracted bucket by
    bucket to recover the distribution of a time window. *)

val bucket_bounds : buckets_per_decade:int -> int -> float * float
(** [(lower, upper)] edges of bucket [index] under the given bucketing
    (bucket 0 is [0, 1)).
    @raise Invalid_argument on a negative index or bucketing < 1. *)

val quantile_of_buckets :
  buckets_per_decade:int -> (int * int) list -> float -> float
(** {!quantile}'s interpolation over externally held [(index, count)]
    buckets (sorted by index; non-positive counts ignored) — for windowed
    quantiles reconstructed from snapshot differences, where no [max_seen]
    is available to clamp against.
    @raise Invalid_argument for [q] outside [0, 1]. *)

val merge : t -> t -> t
(** Histogram of the union; both operands must share the same bucketing.
    @raise Invalid_argument otherwise. *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** One-line summary: count, mean, p50/p90/p99, max. *)
