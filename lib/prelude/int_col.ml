(* Off-heap int column: a Bigarray.Array1 of native ints, C layout.

   The flat switch backends and Trace.Compact keep their slab columns in
   these instead of [int array] for two reasons.  First, the payload lives
   outside the OCaml heap, so the GC never scans it — a multi-million-slot
   trace costs the collector nothing.  Second, Bigarray proxies are
   reference-counted views over one shared allocation: [sub] hands out a
   zero-copy window, which is how parallel sweeps give every domain a slice
   of one shared trace slab instead of a private copy.  Sharing read-only
   columns across domains is safe — immutable-after-build data needs no
   synchronization, and there are no GC headers to race on.

   The [unsafe_*] accessors sit on the per-packet hot paths of the flat
   switches; indices there are in bounds by the slab invariants the
   switches' [check_invariants] prove. *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let create ?(fill = 0) len =
  if len < 0 then invalid_arg "Int_col.create: negative length";
  let c = Bigarray.Array1.create Bigarray.int Bigarray.c_layout len in
  Bigarray.Array1.fill c fill;
  c

let init len f =
  if len < 0 then invalid_arg "Int_col.init: negative length";
  let c = Bigarray.Array1.create Bigarray.int Bigarray.c_layout len in
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set c i (f i)
  done;
  c

let length (t : t) = Bigarray.Array1.dim t
let get (t : t) i = Bigarray.Array1.get t i
let set (t : t) i x = Bigarray.Array1.set t i x

let unsafe_get (t : t) i = Bigarray.Array1.unsafe_get t i [@@inline]
let unsafe_set (t : t) i x = Bigarray.Array1.unsafe_set t i x [@@inline]

let fill (t : t) x = Bigarray.Array1.fill t x

let blit ~src ~src_pos ~dst ~dst_pos ~len =
  if len < 0 then invalid_arg "Int_col.blit: negative length";
  if len > 0 then
    Bigarray.Array1.blit
      (Bigarray.Array1.sub src src_pos len)
      (Bigarray.Array1.sub dst dst_pos len)

(* A fresh column of [len] slots carrying the old contents; the tail is
   [fill]ed.  The slabs only ever grow, so there is no shrink path. *)
let grow (t : t) ~len ~fill:x =
  if len < length t then invalid_arg "Int_col.grow: shrinking";
  let c = create ~fill:x len in
  blit ~src:t ~src_pos:0 ~dst:c ~dst_pos:0 ~len:(length t);
  c

let sub (t : t) ~pos ~len : t = Bigarray.Array1.sub t pos len

let of_array a = init (Array.length a) (Array.unsafe_get a)
let to_array (t : t) = Array.init (length t) (Bigarray.Array1.unsafe_get t)

let equal (a : t) (b : t) =
  length a = length b
  &&
  let n = length a in
  let rec go i =
    i >= n
    || Bigarray.Array1.unsafe_get a i = Bigarray.Array1.unsafe_get b i
       && go (i + 1)
  in
  go 0
