(** Growable circular buffer of unboxed ints.

    A deque restricted to [int] elements: FIFO via [push_back]/[pop_front],
    tail eviction via [pop_back], O(1) random access from the front.
    Capacity is a power of two (position arithmetic is a mask) that doubles
    on demand and never shrinks, so a warmed ring runs allocation-free —
    the property the flat switch backends rely on for their per-port
    queues. *)

type t

val create : ?capacity:int -> unit -> t
(** Empty ring; [capacity] (default 8) is rounded up to a power of two. *)

val length : t -> int
val is_empty : t -> bool

val capacity : t -> int
(** Current physical capacity (for tests and memory accounting). *)

val push_back : t -> int -> unit
(** Append at the back, doubling the buffer if full. *)

val peek_front : t -> int
(** Front element without removing it.
    @raise Invalid_argument when empty. *)

val pop_front : t -> int
(** Remove and return the front (oldest) element.
    @raise Invalid_argument when empty. *)

val pop_back : t -> int
(** Remove and return the back (youngest) element.
    @raise Invalid_argument when empty. *)

val get : t -> int -> int
(** [get t i] is the [i]-th element counted from the front.
    @raise Invalid_argument when out of range. *)

val clear : t -> unit

val iter : (int -> unit) -> t -> unit
(** Front to back. *)
