(* Quickstart: build a shared-memory switch, feed it bursty traffic, and
   compare the paper's LWD policy against LQD and the single-priority-queue
   OPT reference.

   Run with: dune exec examples/quickstart.exe *)

open Smbm_core
open Smbm_traffic
open Smbm_sim

let () =
  (* A switch with 8 output ports requiring 1..8 processing cycles, a shared
     buffer of 32 packets, one core per queue. *)
  let config = Proc_config.contiguous ~k:8 ~buffer:32 () in

  (* Bursty MMPP traffic at twice the switch capacity. *)
  let workload =
    Scenario.proc_workload
      ~mmpp:{ Scenario.default_mmpp with sources = 100 }
      ~config ~load:2.0 ~seed:7 ()
  in

  (* Three instances stepped in lockstep over the same arrivals. *)
  let lwd = Proc_engine.instance config (P_lwd.make config) in
  let lqd = Proc_engine.instance config (P_lqd.make config) in
  let opt = Opt_ref.proc_instance config in
  Experiment.run
    ~params:{ Experiment.slots = 50_000; flush_every = Some 5_000; check_every = None }
    ~workload [ lwd; lqd; opt ];

  List.iter
    (fun (i : Instance.t) ->
      Printf.printf "%-4s transmitted %d packets (dropped %d, pushed out %d)\n"
        i.name (Metrics.transmitted i.metrics) (Metrics.dropped i.metrics)
        (Metrics.pushed_out i.metrics))
    [ lwd; lqd; opt ];

  Printf.printf "\nempirical competitive ratios (lower is better):\n";
  List.iter
    (fun (name, r) -> Printf.printf "  %-4s %.3f\n" name r)
    (Experiment.ratios ~objective:`Packets ~opt ~algs:[ lwd; lqd ]);
  print_endline "\nLWD is the paper's 2-competitive policy (Theorem 7)."
