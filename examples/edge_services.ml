(* The paper's Fig. 1 motivation: a network-edge box running three services
   with very different per-packet costs -

     firewall filtering   ~  1 cycle per packet
     SSL termination      ~  6 cycles per packet
     IPsec encryption     ~ 20 cycles per packet

   Each service gets its own output queue and core, all drawing on one
   shared buffer (the bottom architecture of Fig. 1).  The example compares
   the buffer-management policies on the two fronts the paper cares about:
   total throughput, and starvation of individual services.

   Run with: dune exec examples/edge_services.exe *)

open Smbm_core
open Smbm_traffic
open Smbm_sim
open Smbm_report

let service_names = [| "firewall"; "ssl"; "ipsec" |]
let works = [| 1; 6; 20 |]
let weights = [| 0.70; 0.20; 0.10 |]
let buffer = 48
let slots = 60_000

let make_workload () =
  let rng = Smbm_prelude.Rng.create ~seed:11 in
  let mmpp = { Scenario.default_mmpp with sources = 200 } in
  let label = Label.weighted_port ~weights () in
  (* Offered work ~ 1.8x the three-core capacity. *)
  let mean_work =
    Array.to_seq weights
    |> Seq.zip (Array.to_seq works)
    |> Seq.fold_left (fun acc (w, p) -> acc +. (p *. float_of_int w)) 0.0
  in
  let aggregate = 1.8 *. 3.0 /. mean_work in
  let rate =
    aggregate /. (float_of_int mmpp.sources *. Scenario.duty_cycle mmpp)
  in
  Workload.of_sources (Scenario.sources ~mmpp ~label ~rate_per_source:rate ~rng)

let () =
  let config = Proc_config.make ~works ~buffer () in
  let policies = Policies.proc config in

  (* One tally of per-service transmissions per policy, via the engine's
     observe hook; all instances run in lockstep on identical traffic. *)
  let tallies =
    List.map (fun (p : Proc_policy.t) -> (p.name, Array.make 3 0)) policies
  in
  let instances =
    Opt_ref.proc_instance config
    :: List.map
         (fun (p : Proc_policy.t) ->
           let tally = List.assoc p.name tallies in
           Proc_engine.instance
             ~observe:(fun pkt -> tally.(pkt.dest) <- tally.(pkt.dest) + 1)
             config p)
         policies
  in
  Experiment.run
    ~params:{ Experiment.slots = slots; flush_every = Some 6_000; check_every = None }
    ~workload:(make_workload ()) instances;

  match instances with
  | opt :: algs ->
    Printf.printf
      "Edge services (%s requiring %s cycles), shared buffer of %d packets:\n\n"
      (String.concat " / " (Array.to_list service_names))
      (String.concat " / " (Array.to_list (Array.map string_of_int works)))
      buffer;
    let rows =
      List.map
        (fun (i : Instance.t) ->
          let m = i.metrics in
          let tally = List.assoc i.name tallies in
          [
            i.name;
            string_of_int (Metrics.transmitted m);
            Table.float_cell (Experiment.ratio ~objective:`Packets ~opt ~alg:i);
            string_of_int tally.(0);
            string_of_int tally.(1);
            string_of_int tally.(2);
            Table.float_cell ~digits:1
              (Smbm_prelude.Running_stats.mean (Metrics.latency_stats m));
          ])
        algs
    in
    print_string
      (Table.render
         ~headers:
           [ "policy"; "total"; "ratio"; "firewall"; "ssl"; "ipsec"; "latency" ]
         ~rows ());
    print_endline
      "\nBPD starves the IPsec service outright (it always evicts the most\n\
       expensive queue); LWD bounds every queue's share by its total work,\n\
       keeping all three services alive at the best overall throughput.";
    print_endline
      "Because each core runs a single service out of its own FIFO queue,\n\
       no priority-queue processing order is needed (Fig. 1, bottom)."
  | [] -> ()
