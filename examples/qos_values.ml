(* Value model (Section IV): QoS classes with intrinsic packet values.

   A provider runs bronze / silver / gold / platinum service classes, one
   output port per class, values 1 / 3 / 6 / 10, all sharing one buffer.
   The example compares the value-model policies in two traffic regimes:

   - a balanced regime, where every class receives the same packet rate;
   - a cheap-flood regime, where bronze traffic floods the switch - the
     "distributions that prioritize certain values at specific queues" for
     which the paper says MRD's advantage over LQD grows.

   Run with: dune exec examples/qos_values.exe *)

open Smbm_core
open Smbm_traffic
open Smbm_sim
open Smbm_report

let class_names = [| "bronze"; "silver"; "gold"; "platinum" |]
let class_values = [| 1; 3; 6; 10 |]
let buffer = 32
let slots = 60_000

let make_workload ~weights ~seed =
  let rng = Smbm_prelude.Rng.create ~seed in
  let mmpp = { Scenario.default_mmpp with sources = 200 } in
  let label =
    Label.weighted_port ~weights ~value_of_port:(fun i -> class_values.(i)) ()
  in
  (* Packets per slot ~ 1.6x the four-port transmission capacity. *)
  let aggregate = 1.6 *. 4.0 in
  let rate =
    aggregate /. (float_of_int mmpp.sources *. Scenario.duty_cycle mmpp)
  in
  Workload.of_sources (Scenario.sources ~mmpp ~label ~rate_per_source:rate ~rng)

let run_regime ~title ~weights =
  let config =
    Value_config.make ~ports:4
      ~max_value:(Array.fold_left max 1 class_values)
      ~buffer ()
  in
  let policies = Policies.value_port ~port_value:class_values config in
  let tallies =
    List.map (fun (p : Value_policy.t) -> (p.name, Array.make 4 0)) policies
  in
  let instances =
    Opt_ref.value_instance config
    :: List.map
         (fun (p : Value_policy.t) ->
           let tally = List.assoc p.name tallies in
           Value_engine.instance
             ~observe:(fun pkt -> tally.(pkt.dest) <- tally.(pkt.dest) + 1)
             config p)
         policies
  in
  Experiment.run
    ~params:{ Experiment.slots = slots; flush_every = Some 6_000; check_every = None }
    ~workload:(make_workload ~weights ~seed:23) instances;
  match instances with
  | opt :: algs ->
    Printf.printf "%s\n\n" title;
    let rows =
      List.map
        (fun (i : Instance.t) ->
          let tally = List.assoc i.name tallies in
          [
            i.name;
            string_of_int (Metrics.transmitted_value i.metrics);
            Table.float_cell (Experiment.ratio ~objective:`Value ~opt ~alg:i);
            string_of_int tally.(0);
            string_of_int tally.(1);
            string_of_int tally.(2);
            string_of_int tally.(3);
          ])
        algs
    in
    print_string
      (Table.render
         ~headers:
           ("policy" :: "value" :: "ratio" :: Array.to_list class_names)
         ~rows ());
    print_newline ()
  | [] -> ()

let () =
  run_regime
    ~title:"Balanced classes (equal packet rates, values 1/3/6/10):"
    ~weights:[| 1.0; 1.0; 1.0; 1.0 |];
  run_regime
    ~title:"Bronze flood (cheap traffic dominates 8:2:1:1):"
    ~weights:[| 8.0; 2.0; 1.0; 1.0 |];
  print_endline
    "MVD maximizes admitted value but deactivates the cheap ports entirely;\n\
     LQD is value-blind; MRD balances both, and its edge over LQD grows when\n\
     cheap traffic floods the buffer (the paper's open conjecture is that\n\
     MRD is constant-competitive)."
