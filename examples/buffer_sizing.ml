(* Complete sharing vs complete partitioning (Section I).

   "Complete sharing utilizes the entire buffer space but can hamper
   fairness [...]. Complete partitioning ensures fairness but may lead to
   significantly underutilized buffer space."

   NEST *is* complete partitioning (every port gets B/n dedicated slots);
   the push-out policies implement complete sharing with different eviction
   rules.  Sweeping the buffer size shows the trade-off: partitioning wastes
   most of a small buffer, while naive sharing lets heavy queues monopolize
   it - and LWD gets the best of both worlds.

   Run with: dune exec examples/buffer_sizing.exe *)

open Smbm_sim
open Smbm_report

let buffers = [ 16; 32; 64; 128; 256; 512; 1024 ]

let () =
  let base =
    {
      Sweep.default_base with
      Sweep.k = 16;
      load = 1.5;
      slots = 30_000;
      flush_every = Some 3_000;
      mmpp = { Smbm_traffic.Scenario.default_mmpp with sources = 200 };
    }
  in
  let points =
    List.map
      (fun b -> (b, Sweep.run_point ~base ~model:Sweep.Proc ~axis:Sweep.B ~x:b ()))
      buffers
  in
  let interesting = [ "NEST"; "LQD"; "LWD"; "BPD" ] in
  let headers = "B" :: interesting in
  let rows =
    List.map
      (fun (b, ratios) ->
        string_of_int b
        :: List.map
             (fun name -> Table.float_cell (List.assoc name ratios))
             interesting)
      points
  in
  print_endline
    "Competitive ratio vs buffer size (k = 16 ports, load 1.5):\n";
  print_string (Table.render ~headers ~rows ());
  let series =
    List.map
      (fun name ->
        Series.of_ints ~name
          ~points:(List.map (fun (b, r) -> (b, List.assoc name r)) points))
      interesting
  in
  print_string
    (Ascii_plot.render ~title:"sharing vs partitioning" ~x_label:"B"
       ~log_x:true series);
  print_endline
    "\nSmall buffers: NEST (complete partitioning) wastes its per-port\n\
     reservations while the sharing policies soak up bursts.  Large buffers:\n\
     congestion fades and everyone converges.  LWD dominates throughout -\n\
     shared space, but no queue may hold more than its fair share of WORK."
