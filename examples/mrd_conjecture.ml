(* Probing the paper's open conjecture: is MRD constant-competitive?

   "It remains an interesting open problem to show whether MRD has a
   constant competitive ratio in the worst case."  (Section IV-B)

   This example searches for bad inputs: thousands of random small traces
   are solved EXACTLY (brute-force clairvoyant optimum over all admission
   decisions) and compared against MRD.  The largest ratio found is a lower
   bound on MRD's competitive ratio; the conjecture predicts it stays below
   some constant no matter how long we search.  The known constructions
   (Theorem 11's 4/3; LQD-emulation's sqrt 2) set the bar.

   Run with: dune exec examples/mrd_conjecture.exe [trials]
   (default 3000 random trials; also replays structured burst patterns) *)

open Smbm_prelude
open Smbm_core
open Smbm_traffic
open Smbm_sim

let ratio_on config trace =
  let slots_count = Array.length trace in
  let drain = config.Value_config.buffer + 2 in
  let exact = Exact_opt.value config trace ~drain in
  let mrd = Value_engine.instance config (V_mrd.make config) in
  Experiment.run
    ~params:
      {
        Experiment.slots = slots_count + drain;
        flush_every = None;
        check_every = None;
      }
    ~workload:
      (Workload.of_fun (fun i -> if i < slots_count then trace.(i) else []))
    [ mrd ];
  let got = (Metrics.transmitted_value mrd.Instance.metrics) in
  if got = 0 then if exact = 0 then 1.0 else infinity
  else float_of_int exact /. float_of_int got

let random_case rng =
  let ports = Rng.int_in rng 1 3 in
  let k = Rng.int_in rng 2 6 in
  let buffer = Rng.int_in rng 1 4 in
  let config = Value_config.make ~ports ~max_value:k ~buffer () in
  let slots_count = Rng.int_in rng 1 4 in
  let trace =
    Array.init slots_count (fun _ ->
        List.init (Rng.int_in rng 0 4) (fun _ ->
            Arrival.make ~dest:(Rng.int rng ports) ~value:(Rng.int_in rng 1 k) ()))
  in
  (config, trace)

(* Structured families in the spirit of Theorem 11: a big burst of one value
   per port, then starve the most valuable port. *)
let structured_cases =
  let mk ~values ~buffer =
    let ports = Array.length values in
    let config =
      Value_config.make ~ports ~max_value:(Array.fold_left max 1 values)
        ~buffer ()
    in
    let burst =
      List.concat
        (List.init ports (fun i ->
             List.init buffer (fun _ ->
                 Arrival.make ~dest:i ~value:values.(i) ())))
    in
    let trickle =
      List.init (ports - 1) (fun i -> Arrival.make ~dest:i ~value:values.(i) ())
    in
    let trace = Array.init 6 (fun t -> if t = 0 then burst else trickle) in
    (config, trace)
  in
  [
    ("thm11-like {1,2,3,6} B=12", mk ~values:[| 1; 2; 3; 6 |] ~buffer:12);
    ("two-tier {1,6} B=6", mk ~values:[| 1; 6 |] ~buffer:6);
    ("three-tier {1,2,4} B=9", mk ~values:[| 1; 2; 4 |] ~buffer:9);
  ]

let () =
  let trials =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 3_000
  in
  let rng = Rng.create ~seed:2014 in
  let worst = ref 1.0 in
  let worst_desc = ref "none" in
  for trial = 1 to trials do
    let config, trace = random_case rng in
    let r = ratio_on config trace in
    if r > !worst then begin
      worst := r;
      worst_desc :=
        Printf.sprintf "random trial %d (n=%d k=%d B=%d, %d slots)" trial
          (Value_config.n config) (Value_config.k config)
          config.Value_config.buffer (Array.length trace)
    end
  done;
  Printf.printf
    "Random search (%d exact-solved trials): worst exact-OPT/MRD = %.4f\n  at %s\n\n"
    trials !worst !worst_desc;
  print_endline "Structured burst-and-starve families:";
  List.iter
    (fun (name, (config, trace)) ->
      Printf.printf "  %-28s ratio %.4f\n" name (ratio_on config trace))
    structured_cases;
  Printf.printf
    "\nKnown analytic lower bounds: 4/3 (Theorem 11, value = port), sqrt 2\n\
     (unit values, via LQD emulation).  Nothing found above ~%.2f supports\n\
     the conjecture that MRD is constant-competitive - the open problem the\n\
     paper leaves for the value model.\n"
    (Float.max !worst 1.42)
