(* Transient dynamics: what actually happens inside the buffer when a
   mega-burst hits, policy by policy.

   One burst of 3x the buffer, followed by silence: the time-series recorder
   samples occupancy and throughput every slot, making the drain profiles
   visible - LWD spreads the buffer across ports and drains fast; BPD
   hoards small packets and leaves expensive ports idle.

   Run with: dune exec examples/burst_dynamics.exe *)

open Smbm_core
open Smbm_traffic
open Smbm_sim
open Smbm_report

let () =
  let k = 8 and buffer = 32 in
  let config = Proc_config.contiguous ~k ~buffer () in
  let rng = Smbm_prelude.Rng.create ~seed:99 in
  let burst =
    List.init (3 * buffer) (fun _ ->
        Arrival.make ~dest:(Smbm_prelude.Rng.int rng k) ())
  in
  let slots = 120 in
  let run policy =
    let inst, ts =
      Timeseries.attach ~every:4 (Proc_engine.instance config policy)
    in
    Experiment.run
      ~params:{ Experiment.slots = slots; flush_every = None; check_every = None }
      ~workload:(Workload.of_slots [| burst |])
      [ inst ];
    (inst, ts)
  in
  let lwd_inst, lwd_ts = run (P_lwd.make config) in
  let bpd_inst, bpd_ts = run (P_bpd.make config) in

  print_endline
    "A 96-packet burst into a 32-slot buffer (8 ports, works 1..8), then\n\
     silence.  Buffer occupancy as the backlog drains:\n";
  print_string
    (Ascii_plot.render ~height:12 ~title:"occupancy after the burst"
       ~x_label:"slot"
       [ Timeseries.occupancy lwd_ts; Timeseries.occupancy bpd_ts ]);
  Printf.printf
    "\nBoth policies keep exactly %d packets (a lone burst can only fill the\n\
     buffer once) - the difference is how fast they clear it.  BPD admits\n\
     only the smallest packets, so a single cheap port does all the work\n\
     while seven cores idle; LWD balances WORK across ports and drains in a\n\
     fraction of the time.  Under sustained traffic that drain-rate gap IS\n\
     the throughput gap of Fig. 5.\n"
    (Metrics.transmitted lwd_inst.Instance.metrics);
  Printf.printf
    "Mean latency of delivered packets: LWD %.1f slots, BPD %.1f slots.\n"
    (Smbm_prelude.Running_stats.mean (Metrics.latency_stats lwd_inst.Instance.metrics))
    (Smbm_prelude.Running_stats.mean (Metrics.latency_stats bpd_inst.Instance.metrics));
  ignore bpd_inst
