(* The combined model: packets that are BOTH expensive to process and
   unequally valuable — the direction the paper's conclusion points at.

   Scenario: four services whose processing costs are 1/2/4/8 cycles, and
   whose traffic value runs AGAINST the cost (the heavy ports carry the
   cheap bulk traffic; think: expensive DPI applied to low-priority flows).
   Which eviction rule should the shared buffer run?

   Run with: dune exec examples/hybrid_switch.exe *)

open Smbm_core
open Smbm_traffic
open Smbm_hybrid
open Smbm_report

let works = [| 1; 2; 4; 8 |]
let buffer = 24

let trace_at ~lambda ~slots =
  let module R = Smbm_prelude.Rng in
  let rng = R.create ~seed:42 in
  Array.init slots (fun _ ->
      List.init (R.poisson rng ~lambda) (fun _ ->
          let dest = R.int rng 4 in
          let value = 1 + R.int rng (9 - works.(dest)) in
          Arrival.make ~dest ~value ()))

let () =
  let cfg =
    Hybrid_config.make ~proc:(Proc_config.make ~works ~buffer ()) ~max_value:8
  in
  let policies = Hybrid_policy.all cfg in
  let run trace (p : Hybrid_policy.t) =
    let inst = Hybrid_engine.instance cfg p in
    Smbm_sim.Experiment.run
      ~params:
        {
          Smbm_sim.Experiment.slots = Array.length trace + 100;
          flush_every = None;
          check_every = None;
        }
      ~workload:
        (Workload.of_fun (fun i ->
             if i < Array.length trace then trace.(i) else []))
      [ inst ];
    let m = inst.Smbm_sim.Instance.metrics in
    ((Smbm_sim.Metrics.transmitted_value m), (Smbm_sim.Metrics.transmitted m))
  in
  print_endline
    "Combined work + value model: works 1/2/4/8, value anti-correlated\n\
     with work, shared buffer of 24.\n";
  List.iter
    (fun lambda ->
      let trace = trace_at ~lambda ~slots:6_000 in
      Printf.printf "arrival rate %.0f packets/slot:\n" lambda;
      let rows =
        List.map
          (fun (p : Hybrid_policy.t) ->
            let value, packets = run trace p in
            [ p.name; string_of_int value; string_of_int packets ])
          policies
      in
      print_string (Table.render ~headers:[ "policy"; "value"; "packets" ] ~rows ());
      print_newline ())
    [ 2.0; 8.0 ];
  print_endline
    "At moderate load the paper's value-blind LWD is already excellent; at\n\
     extreme load the value view (MVD) takes over, and the naive\n\
     work-per-value aggregate (WVD) collapses by monopolizing the buffer\n\
     for the lightest port.  Pricing BOTH characteristics at once - the\n\
     open design problem this library leaves where the paper left its MRD\n\
     conjecture."
