(* Benchmark harness: regenerates every evaluation artifact of the paper.

     dune exec bench/main.exe              -- everything (quick profile)
     dune exec bench/main.exe fig5         -- the nine panels of Fig. 5
     dune exec bench/main.exe lowerbounds  -- the Thm 1-6 / 9-11 table
     dune exec bench/main.exe fairness     -- Jain / starvation / latency
     dune exec bench/main.exe ablations    -- LWD variants, RSV, RAND,
                                              heavy tails, config families
     dune exec bench/main.exe flood        -- MRD vs LQD, skewed regime
     dune exec bench/main.exe hybrid       -- combined work+value extension
     dune exec bench/main.exe certificate  -- Theorem 7's proof, live
     dune exec bench/main.exe micro        -- Bechamel micro-benchmarks

   Scaling knobs (environment):
     SMBM_BENCH_SLOTS    slots per sweep point   (default 20_000)
     SMBM_BENCH_SOURCES  MMPP sources            (default 100)
     SMBM_BENCH_FULL=1   paper scale: 2_000_000 slots, 500 sources
     SMBM_JOBS           worker domains (also: -j N; default: all cores)

   Independent simulations (Fig. 5 sweep points, lower-bound constructions)
   are sharded across an Smbm_par.Pool of OCaml domains.  Output is
   bit-identical for every job count; only the [time] lines differ.

   The quick profile finishes in a few minutes and already reproduces the
   qualitative shape of every panel; the full profile matches the paper's
   simulation length. *)

open Smbm_core
open Smbm_sim
open Smbm_report

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let full = Sys.getenv_opt "SMBM_BENCH_FULL" = Some "1"
let slots = if full then 2_000_000 else env_int "SMBM_BENCH_SLOTS" 20_000
let sources = if full then 500 else env_int "SMBM_BENCH_SOURCES" 100

(* [section] is the first non-flag argument; [-j N] overrides SMBM_JOBS. *)
let section, jobs =
  let rec parse section jobs = function
    | [] -> (section, jobs)
    | "-j" :: n :: rest -> parse section (int_of_string_opt n) rest
    | arg :: rest ->
      parse (if section = None then Some arg else section) jobs rest
  in
  let section, jobs = parse None None (List.tl (Array.to_list Sys.argv)) in
  ( Option.value section ~default:"all",
    match jobs with
    | Some j when j >= 0 -> j
    | Some _ | None -> Smbm_par.Pool.default_jobs () )

(* Wall and CPU time for each phase, via the shared span timer.  Wall time
   is what parallelism improves; CPU time (all domains summed) is what
   [Sys.time] alone used to over-report as if it were elapsed time.  The
   [time] prefix lets determinism checks strip these lines (they are the
   only schedule-dependent output). *)
let timed name f =
  let r, span = Smbm_obs.Span.timed name f in
  Printf.printf "[time] %s: wall %.1fs, cpu %.1fs, jobs %d\n" name
    span.Smbm_obs.Span.wall span.Smbm_obs.Span.cpu jobs;
  r

(* Progress ticks go to stderr so stdout stays diffable. *)
let progress label total = Smbm_obs.Progress.make ~label ~total ()

(* Pool utilization behind the same strippable prefix. *)
let pool_timing name tm =
  Format.printf "[time] %s pool: %a@." name Smbm_par.Pool.pp_timing tm

let base =
  {
    Sweep.default_base with
    Sweep.slots;
    flush_every = Some (max 1 (slots / 20));
    mmpp = { Smbm_traffic.Scenario.default_mmpp with sources };
  }

(* ----- Fig. 5 ----- *)

let panel_description = function
  | 1 -> "processing model: ratio vs maximal work k"
  | 2 -> "processing model: ratio vs buffer size B"
  | 3 -> "processing model: ratio vs speedup C"
  | 4 -> "value model (uniform port and value): ratio vs k"
  | 5 -> "value model (uniform port and value): ratio vs B"
  | 6 -> "value model (uniform port and value): ratio vs C"
  | 7 -> "value model (value = port): ratio vs k"
  | 8 -> "value model (value = port): ratio vs B"
  | _ -> "value model (value = port): ratio vs C"

let print_panel (outcome : Sweep.outcome) =
  let n = outcome.Sweep.panel.Sweep.number in
  let points = outcome.Sweep.points in
  let names =
    match points with p :: _ -> List.map fst p.Sweep.ratios | [] -> []
  in
  let axis =
    match outcome.Sweep.panel.Sweep.axis with
    | Sweep.K -> "k"
    | Sweep.B -> "B"
    | Sweep.C -> "C"
  in
  Printf.printf "--- Fig. 5 (%d): %s ---\n" n (panel_description n);
  let headers = axis :: names in
  let rows =
    List.map
      (fun (p : Sweep.point) ->
        string_of_int p.x
        :: List.map (fun (_, r) -> Table.float_cell r) p.ratios)
      points
  in
  print_string (Table.render ~headers ~rows ());
  let series =
    List.map
      (fun name ->
        Series.of_ints ~name
          ~points:
            (List.map
               (fun (p : Sweep.point) -> (p.x, List.assoc name p.ratios))
               points))
      names
  in
  print_string
    (Ascii_plot.render ~height:12
       ~title:(Printf.sprintf "competitive ratio vs %s" axis)
       ~x_label:axis ~log_x:true series);
  print_newline ()

let fig5 () =
  Printf.printf
    "=== Fig. 5: empirical competitive ratios (%d slots, %d sources) ===\n\n"
    slots sources;
  let numbers = [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ] in
  let total =
    List.fold_left
      (fun acc n -> acc + List.length (Sweep.panel n).Sweep.xs)
      0 numbers
  in
  (* All nine panels' points sharded across one pool: the unit of work is a
     single sweep-point simulation, so the pool stays busy even when panels
     have few points. *)
  let outcomes =
    Smbm_par.Par_sweep.run_panels ~jobs ~on_tick:(progress "fig5" total)
      ~on_timing:(pool_timing "fig5") ~base numbers
  in
  List.iter print_panel outcomes

(* ----- Lower bounds ----- *)

let lowerbounds () =
  print_endline "=== Lower-bound constructions (Theorems 1-6, 9-11) ===\n";
  let all = Smbm_lowerbounds.Constructions.all in
  let measures =
    Smbm_lowerbounds.Runner.measure_many ~jobs
      ~on_tick:(progress "lowerbounds" (List.length all))
      (List.map
         (fun (c : Smbm_lowerbounds.Constructions.t) -> c.measure)
         all)
  in
  let rows =
    List.map2
      (fun (c : Smbm_lowerbounds.Constructions.t)
           (m : Smbm_lowerbounds.Runner.measured) ->
        [
          c.theorem;
          c.policy;
          (match c.model with `Proc -> "proc" | `Value -> "value");
          c.bound_text;
          Table.float_cell m.Smbm_lowerbounds.Runner.ratio;
          Table.float_cell c.finite_bound;
          Table.float_cell c.asymptotic_bound;
        ])
      all measures
  in
  print_string
    (Table.render
       ~headers:
         [
           "theorem"; "policy"; "model"; "bound"; "measured"; "finite";
           "asymptotic";
         ]
       ~rows ());
  print_endline
    "\n(measured should track the finite column: each construction achieves\n\
     its proof's episode ratio at these finite parameters)\n"

(* ----- Fairness detail (Fig. 5 (1) base point, extra dimensions) ----- *)

let fairness () =
  print_endline
    "=== Fairness and latency detail at the congested base point\n\
     (k = 32, processing model) ===\n";
  let details =
    Sweep.run_point_detailed ~base ~model:Sweep.Proc ~axis:Sweep.K ~x:32
  in
  let rows =
    List.map
      (fun (name, (d : Sweep.detail)) ->
        [
          name;
          Table.float_cell d.ratio;
          Table.float_cell d.jain;
          string_of_int d.starved;
          Table.float_cell ~digits:1 d.mean_latency;
          Table.float_cell ~digits:1 d.p99_latency;
          Table.float_cell ~digits:4 d.drop_rate;
        ])
      details
  in
  print_string
    (Table.render
       ~headers:
         [ "policy"; "ratio"; "jain"; "starved"; "lat-mean"; "lat-p99"; "drop" ]
       ~rows ());
  print_endline
    "\n(the paper's fairness motivation made quantitative: value-blind\n\
     sharing lets heavy queues crowd the buffer; BPD trades fairness for\n\
     small packets)\n"

(* ----- Ablations ----- *)

let ablation_point ~instances ~workload ~objective =
  Experiment.run
    ~params:
      {
        Experiment.slots = slots / 2;
        flush_every = Some (max 1 (slots / 40));
        check_every = None;
      }
    ~workload instances;
  match instances with
  | opt :: algs -> Experiment.ratios ~objective ~opt ~algs
  | [] -> []

let ablations () =
  print_endline
    "=== Ablations: LWD design choices and baselines (not in the paper) ===\n";
  let config =
    Proc_config.contiguous ~k:32 ~buffer:base.Sweep.buffer
      ~speedup:base.Sweep.speedup ()
  in
  let workload =
    Smbm_traffic.Scenario.proc_workload ~mmpp:base.Sweep.mmpp
      ~reference:
        (Proc_config.contiguous ~k:base.Sweep.k ~buffer:base.Sweep.buffer
           ~speedup:base.Sweep.speedup ())
      ~config ~load:base.Sweep.load ~seed:base.Sweep.seed ()
  in
  let instances =
    Opt_ref.proc_instance config
    :: List.map (Proc_engine.instance config) (Policies.proc_extended config)
  in
  let ratios = ablation_point ~instances ~workload ~objective:`Packets in
  print_endline "processing model, k = 32 (paper set + variants):";
  print_string
    (Table.render ~headers:[ "policy"; "ratio" ]
       ~rows:(List.map (fun (n, r) -> [ n; Table.float_cell r ]) ratios)
       ());
  let vconfig =
    Value_config.make ~ports:16 ~max_value:16 ~buffer:base.Sweep.buffer ()
  in
  let vworkload =
    Smbm_traffic.Scenario.value_uniform_workload ~mmpp:base.Sweep.mmpp
      ~config:vconfig ~load:base.Sweep.load ~seed:base.Sweep.seed ()
  in
  let vinstances =
    Opt_ref.value_instance vconfig
    :: List.map
         (Value_engine.instance vconfig)
         (Policies.value_extended vconfig)
  in
  let vratios =
    ablation_point ~instances:vinstances ~workload:vworkload ~objective:`Value
  in
  print_endline "\nvalue model (uniform), k = 16 (uniform set + variants):";
  print_string
    (Table.render ~headers:[ "policy"; "ratio" ]
       ~rows:(List.map (fun (n, r) -> [ n; Table.float_cell r ]) vratios)
       ());
  print_endline
    "\n(LWD's tie-breaking barely matters; protecting a queue's last packet\n\
     is mostly neutral for LWD; random eviction marks the floor structured\n\
     eviction must beat)\n";
  (* Traffic ablation: heavy-tailed (Pareto) batch sizes at the same mean
     load, the self-similar-looking regime real switches face. *)
  let ht_workload =
    Smbm_traffic.Scenario.proc_heavy_tail_workload ~mmpp:base.Sweep.mmpp
      ~reference:
        (Proc_config.contiguous ~k:base.Sweep.k ~buffer:base.Sweep.buffer
           ~speedup:base.Sweep.speedup ())
      ~config ~load:base.Sweep.load ~seed:base.Sweep.seed ()
  in
  let ht_instances =
    Opt_ref.proc_instance config
    :: List.map (Proc_engine.instance config) (Policies.proc config)
  in
  let ht_ratios =
    ablation_point ~instances:ht_instances ~workload:ht_workload
      ~objective:`Packets
  in
  print_endline
    "processing model, k = 32, heavy-tailed (Pareto alpha = 1.2) bursts at\n\
     the same mean load:";
  print_string
    (Table.render ~headers:[ "policy"; "ratio" ]
       ~rows:(List.map (fun (n, r) -> [ n; Table.float_cell r ]) ht_ratios)
       ());
  print_endline
    "(the ordering survives self-similar-looking traffic; LWD stays in\n\
     front)\n";
  (* Configuration-family ablation: the theory covers ANY assignment of
     works to ports, not just the contiguous one used in Fig. 5. *)
  let families =
    [
      ("contiguous 1..32", Proc_config.contiguous ~k:32 ~buffer:base.Sweep.buffer ());
      ("uniform x16", Proc_config.uniform ~n:32 ~work:16 ~buffer:base.Sweep.buffer ());
      ( "bimodal 1|31 (8 hot ports)",
        Proc_config.bimodal ~n:32 ~cheap:1 ~expensive:31 ~buffer:base.Sweep.buffer () );
      ("geometric 1,2,..,32", Proc_config.geometric ~n:6 ~buffer:base.Sweep.buffer ());
    ]
  in
  let names =
    List.map (fun (p : Smbm_core.Proc_policy.t) -> p.name)
      (Policies.proc (snd (List.hd families)))
  in
  let rows =
    List.map
      (fun (label, config) ->
        let workload =
          Smbm_traffic.Scenario.proc_workload ~mmpp:base.Sweep.mmpp ~config
            ~load:base.Sweep.load ~seed:base.Sweep.seed ()
        in
        let instances =
          Opt_ref.proc_instance config
          :: List.map (Proc_engine.instance config) (Policies.proc config)
        in
        let ratios = ablation_point ~instances ~workload ~objective:`Packets in
        label :: List.map (fun (_, r) -> Table.float_cell r) ratios)
      families
  in
  print_endline
    "configuration families (same normalized load, paper policy set):";
  print_string (Table.render ~headers:("configuration" :: names) ~rows ());
  print_endline
    "(LWD's lead is not an artifact of the contiguous configuration; under\n\
     uniform works LWD tracks LQD to within head-of-line tie-breaking - the\n\
     residual work of a partially served packet is the only thing the two\n\
     argmaxes can disagree on)\n"

(* ----- MRD vs LQD in the skewed regime the paper points at ----- *)

let flood () =
  print_endline
    "=== MRD vs LQD under a cheap-traffic flood (the paper: \"[MRD's]\n\
     advantage grows for distributions that prioritize certain values at\n\
     specific queues\") ===\n";
  let config = Value_config.make ~ports:16 ~max_value:16 ~buffer:64 () in
  let rows =
    List.map
      (fun load ->
        let run policy =
          let workload =
            Smbm_traffic.Scenario.value_port_flood_workload
              ~mmpp:base.Sweep.mmpp ~config ~load ~seed:base.Sweep.seed ()
          in
          let alg = Value_engine.instance config policy in
          let opt = Opt_ref.value_instance config in
          Experiment.run
            ~params:
              {
                Experiment.slots = slots;
                flush_every = Some (max 1 (slots / 10));
                check_every = None;
              }
            ~workload [ alg; opt ];
          Experiment.ratio ~objective:`Value ~opt ~alg
        in
        [
          Printf.sprintf "%.1f" load;
          Table.float_cell (run (V_lqd.make config));
          Table.float_cell (run (V_mrd.make config));
        ])
      [ 1.0; 1.5; 2.0 ]
  in
  print_string (Table.render ~headers:[ "load"; "LQD"; "MRD" ] ~rows ());
  print_endline
    "\n(port weights proportional to (n - i)^2: low-value ports flood the\n\
     buffer; MRD's protection of valuable queues beats LQD's balance at\n\
     every load here, while under uniform overload the two tie - see\n\
     EXPERIMENTS.md)\n"

(* ----- Hybrid (work + value) extension model ----- *)

let hybrid () =
  print_endline
    "=== Extension: the combined work + value model (the paper's stated\n\
     future direction) ===\n";
  let works = [| 1; 2; 4; 8 |] in
  let cfg =
    Smbm_hybrid.Hybrid_config.make
      ~proc:(Proc_config.make ~works ~buffer:24 ())
      ~max_value:8
  in
  let module R = Smbm_prelude.Rng in
  let trace_at lambda =
    let rng = R.create ~seed:base.Sweep.seed in
    Array.init (min slots 8_000) (fun _ ->
        List.init (R.poisson rng ~lambda) (fun _ ->
            let dest = R.int rng 4 in
            (* Values anti-correlated with work: the heavy ports carry the
               cheap traffic. *)
            let value = 1 + R.int rng (9 - works.(dest)) in
            Arrival.make ~dest ~value ()))
  in
  let run trace (p : Smbm_hybrid.Hybrid_policy.t) =
    let inst = Smbm_hybrid.Hybrid_engine.instance cfg p in
    Experiment.run
      ~params:
        {
          Experiment.slots = Array.length trace + 100;
          flush_every = None;
          check_every = None;
        }
      ~workload:
        (Smbm_traffic.Workload.of_fun (fun i ->
             if i < Array.length trace then trace.(i) else []))
      [ inst ];
    (Metrics.transmitted_value inst.Instance.metrics)
  in
  let policies = Smbm_hybrid.Hybrid_policy.all cfg in
  let names = List.map (fun (p : Smbm_hybrid.Hybrid_policy.t) -> p.name) policies in
  let rows =
    List.map
      (fun lambda ->
        let trace = trace_at lambda in
        Printf.sprintf "%.0f" lambda
        :: List.map (fun p -> string_of_int (run trace p)) policies)
      [ 2.0; 4.0; 8.0 ]
  in
  print_endline
    "transmitted value, works {1,2,4,8}, values anti-correlated with work,\n\
     B = 24 (higher is better):";
  print_string (Table.render ~headers:("lambda" :: names) ~rows ());
  print_endline
    "\n(no naive combination dominates: the value-blind LWD holds moderate\n\
     congestion, MVD's keep-the-valuable-tails wins extreme congestion, and\n\
     the queue-aggregate WVD collapses there - port monopolization, BPD's\n\
     pathology in a new coat.  The combined model's 'ideal policy' question\n\
     is genuinely open.)\n"

(* ----- Theorem 7 mapping certificate ----- *)

let certificate () =
  print_endline
    "=== Theorem 7's proof, executed: the Fig. 3 mapping routine run live\n\
     (LWD vs a greedy opponent on bursty traffic) ===\n";
  let config = Proc_config.contiguous ~k:8 ~buffer:32 () in
  let greedy =
    Proc_policy.make ~name:"greedy" ~push_out:false (fun sw ~dest:_ ->
        if Proc_switch.is_full sw then Decision.Drop else Decision.Accept)
  in
  let workload =
    Smbm_traffic.Scenario.proc_workload
      ~mmpp:{ base.Sweep.mmpp with sources = min sources 100 }
      ~config ~load:2.5 ~seed:base.Sweep.seed ()
  in
  let r =
    Smbm_analysis.Mapping_certifier.run ~config ~opponent:greedy
      ~trace:(fun _ -> Smbm_traffic.Workload.next workload)
      ~slots:(min slots 5_000) ()
  in
  Format.printf "  %a@." Smbm_analysis.Mapping_certifier.pp_report r;
  print_endline
    "\n(zero violations = a machine-checked run of the 2-competitiveness\n\
     charging argument on this input; strict_a0_mismatches counts failures\n\
     of the paper's literal Lemma 8 invariant, whose gap and repair are\n\
     documented in EXPERIMENTS.md)\n"

(* ----- Micro-benchmarks ----- *)

(* [fill] of the 256-slot buffer: 256 exercises the push-out / threshold
   rejection path, 180 the open-buffer path of the non-push-out policies. *)
let prepared_proc_switch ?(fill = 256) () =
  let config = Proc_config.contiguous ~k:16 ~buffer:256 () in
  let sw = Proc_switch.create config in
  let rng = Smbm_prelude.Rng.create ~seed:5 in
  while Proc_switch.occupancy sw < fill do
    ignore (Proc_switch.accept sw ~dest:(Smbm_prelude.Rng.int rng 16))
  done;
  (config, sw, rng)

let prepared_value_switch ?(fill = 256) () =
  let config = Value_config.make ~ports:16 ~max_value:16 ~buffer:256 () in
  let sw = Value_switch.create config in
  let rng = Smbm_prelude.Rng.create ~seed:5 in
  while Value_switch.occupancy sw < fill do
    ignore
      (Value_switch.accept sw
         ~dest:(Smbm_prelude.Rng.int rng 16)
         ~value:(1 + Smbm_prelude.Rng.int rng 16))
  done;
  (config, sw, rng)

let micro () =
  let open Bechamel in
  print_endline
    "=== Micro-benchmarks: decision cost on a full 16-port, 256-slot\n\
     switch (ns per operation) ===\n";
  let proc_tests_at tag fill =
    let config, sw, rng = prepared_proc_switch ~fill () in
    List.map
      (fun (p : Proc_policy.t) ->
        Test.make
          ~name:(Printf.sprintf "proc-admit-%s/%s" tag p.name)
          (Staged.stage (fun () ->
               let dest = Smbm_prelude.Rng.int rng 16 in
               ignore (Proc_policy.admit p sw ~dest))))
      (Policies.proc config)
  in
  let value_tests_at tag fill =
    let config, sw, rng = prepared_value_switch ~fill () in
    List.map
      (fun (p : Value_policy.t) ->
        Test.make
          ~name:(Printf.sprintf "value-admit-%s/%s" tag p.name)
          (Staged.stage (fun () ->
               let dest = Smbm_prelude.Rng.int rng 16 in
               let value = 1 + Smbm_prelude.Rng.int rng 16 in
               ignore (Value_policy.admit p sw ~dest ~value))))
      (Policies.value_port ~port_value:(Array.init 16 (fun i -> i + 1)) config)
  in
  let proc_tests = proc_tests_at "full" 256 @ proc_tests_at "open" 180 in
  let value_tests = value_tests_at "full" 256 @ value_tests_at "open" 180 in
  let machinery_tests =
    let config, sw, _ = prepared_proc_switch () in
    let _vconfig, vsw, _ = prepared_value_switch () in
    let opt = Opt_ref.proc_instance config in
    [
      Test.make ~name:"switch/proc-transmit-phase"
        (Staged.stage (fun () ->
             ignore (Proc_switch.transmit_phase sw ~on_transmit:(fun _ -> ()));
             (* Top the switch back up so the workload stays stable. *)
             while not (Proc_switch.is_full sw) do
               ignore (Proc_switch.accept sw ~dest:0)
             done));
      Test.make ~name:"switch/value-transmit-phase"
        (Staged.stage (fun () ->
             ignore (Value_switch.transmit_phase vsw ~on_transmit:(fun _ -> ()));
             while not (Value_switch.is_full vsw) do
               ignore (Value_switch.accept vsw ~dest:0 ~value:1)
             done));
      Test.make ~name:"opt-ref/arrive+transmit"
        (Staged.stage (fun () ->
             opt.Instance.arrive (Arrival.make ~dest:7 ());
             opt.Instance.transmit ()));
    ]
  in
  let grouped =
    Test.make_grouped ~name:"smbm" (proc_tests @ value_tests @ machinery_tests)
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> Table.float_cell ~digits:1 t
          | Some [] | None -> "?"
        in
        [ name; ns ] :: acc)
      results []
    |> List.sort compare
  in
  print_string (Table.render ~headers:[ "operation"; "ns/op" ] ~rows ());
  print_newline ()

let () =
  match section with
  | "fig5" -> timed "fig5" fig5
  | "lowerbounds" -> timed "lowerbounds" lowerbounds
  | "fairness" -> timed "fairness" fairness
  | "ablations" -> timed "ablations" ablations
  | "hybrid" -> timed "hybrid" hybrid
  | "flood" -> timed "flood" flood
  | "certificate" -> timed "certificate" certificate
  | "micro" -> timed "micro" micro
  | "all" ->
    timed "lowerbounds" lowerbounds;
    timed "fig5" fig5;
    timed "fairness" fairness;
    timed "ablations" ablations;
    timed "flood" flood;
    timed "hybrid" hybrid;
    timed "certificate" certificate;
    timed "micro" micro
  | other ->
    Printf.eprintf
      "unknown section %S (expected \
       fig5|lowerbounds|fairness|ablations|flood|hybrid|certificate|micro|all)\n"
      other;
    exit 2
