(* Admission hot-path throughput: arrivals/sec per push-out policy with the
   buffer held at capacity — every arrival exercises victim selection — for
   all three implementations ([`Scan]: the original O(n) rescans;
   [`Indexed]: incremental O(log n) indexes over the linked queues;
   [`Flat]: the same indexed selection over the struct-of-arrays backend).

     dune exec bench/hotpath.exe -- [--arrivals N] [--repeats R] [--out FILE]

   A fourth arm ([fused]) drives the flat backend through the policy's
   [admit_batch] kernel over 1024-arrival batches — the whole-batch fused
   admission path the engines take — under .../fused.  Two ratios describe
   it: .../fused/speedup (fused over the per-packet flat loop: the marginal
   value of batch fusion alone) and .../fused/total (fused over the linked
   indexed path: the whole fused-flat stack — unboxed columns, monomorphic
   comparators, batch kernel — against the default backend the sweeps ran
   on before it existed).

   Emits one gauge per (model, policy, n, impl) plus four ratios —
   indexed/scan under .../speedup, flat/indexed under .../flat/speedup,
   fused/flat under .../fused/speedup and fused/indexed under .../fused/total
   (all auto-gated by bench-diff) — as JSONL (Smbm_obs.Registry) to FILE.
   The committed repo-root BENCH_hotpath.json is this file at the default
   scale; CI regenerates it at reduced scale and diffs the ratios with
   `smbm_cli bench-diff` (ratios, unlike raw arrivals/sec, transfer
   between machines).

   All implementations see the identical arrival stream (a private LCG,
   fixed seed) and make bit-identical decisions — the oracle and lockstep
   suites prove that — so the ratios isolate selection and representation
   cost.  The admission loop runs through the policy layer, whose decision
   arithmetic is shared by all arms, so the flat ratios here are diluted
   end-to-end numbers; bench/e2e.ml's flat family isolates the bare
   backend cost. *)

open Smbm_core

let arrivals = ref 100_000
let repeats = ref 5
let out = ref "BENCH_hotpath.json"

let () =
  Arg.parse
    [
      ("--arrivals", Arg.Set_int arrivals, "N  admissions per timed batch");
      ( "--repeats",
        Arg.Set_int repeats,
        "R  timed batches per cell (the best rate is kept)" );
      ("--out", Arg.Set_string out, "FILE  JSONL output path");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "hotpath [--arrivals N] [--repeats R] [--out FILE]"

let sizes = [ 16; 64; 256 ]

(* Deterministic per-run arrival stream; both impls replay the same one. *)
let lcg seed =
  let s = ref seed in
  fun bound ->
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    !s mod bound

(* --- processing model --- *)

(* Compact the heap, warm up untimed, then time [!repeats] batches of
   [!arrivals] admissions and keep the best rate — the compaction gives
   every cell the same heap shape regardless of which cells ran before it,
   and best-of filters GC pauses and scheduler noise out of the short, fast
   cells.  Together they make the emitted speedup ratios stable enough to
   gate CI on. *)
let best_of ~batch =
  Gc.compact ();
  batch ~count:(!arrivals / 10);
  let best = ref 0.0 in
  for _ = 1 to !repeats do
    let _, span =
      Smbm_obs.Span.timed "batch" (fun () -> batch ~count:!arrivals)
    in
    let rate = float_of_int !arrivals /. span.Smbm_obs.Span.wall in
    if rate > !best then best := rate
  done;
  !best

let run_proc ~n ~impl mk =
  let config = Proc_config.contiguous ~k:n ~buffer:(4 * n) () in
  let policy = mk impl config in
  let sw = Proc_switch.create ~backend:policy.Proc_policy.backend config in
  let next = lcg 0x5eed in
  let fill () =
    while not (Proc_switch.is_full sw) do
      Proc_switch.accept_unit sw ~dest:(next n)
    done
  in
  fill ();
  best_of ~batch:(fun ~count ->
      for i = 1 to count do
        let dest = next n in
        (match Proc_policy.admit policy sw ~dest with
        | Decision.Accept -> Proc_switch.accept_unit sw ~dest
        | Decision.Push_out { victim } ->
          Proc_switch.push_out_unit sw ~victim;
          Proc_switch.accept_unit sw ~dest
        | Decision.Drop -> ());
        if i land 1023 = 0 then begin
          ignore
            (Proc_switch.transmit_phase_fields sw
               ~on_transmit:(fun ~dest:_ ~arrival:_ -> ()));
          fill ()
        end
      done)

(* Fused arm: the same full-buffer admission load, but offered to the flat
   backend as whole [Arrival_batch]es through the policy's [admit_batch]
   kernel — the path the engines take for untraced runs.  Batch assembly
   (LCG draw + column write per arrival) is inside the timed region, so the
   fused/flat ratio is an honest end-to-end comparison against the
   per-packet loop above. *)
let batch_len = 1024

let run_proc_fused ~n mk =
  let config = Proc_config.contiguous ~k:n ~buffer:(4 * n) () in
  let policy = mk `Flat config in
  match Proc_policy.admit_batch policy with
  | None -> nan
  | Some kernel ->
    let sw = Proc_switch.create ~backend:policy.Proc_policy.backend config in
    let next = lcg 0x5eed in
    let fill () =
      while not (Proc_switch.is_full sw) do
        Proc_switch.accept_unit sw ~dest:(next n)
      done
    in
    fill ();
    let batch = Arrival_batch.create ~capacity:batch_len () in
    let counters = Admission.counters () in
    best_of ~batch:(fun ~count ->
        let remaining = ref count in
        while !remaining > 0 do
          let len = min batch_len !remaining in
          Arrival_batch.clear batch;
          for _ = 1 to len do
            Arrival_batch.push batch ~dest:(next n) ~value:1
          done;
          Admission.reset counters;
          kernel sw batch counters;
          ignore
            (Proc_switch.transmit_phase_fields sw
               ~on_transmit:(fun ~dest:_ ~arrival:_ -> ()));
          fill ();
          remaining := !remaining - len
        done)

(* --- value model --- *)

let run_value ~n ~impl mk =
  let config = Value_config.make ~ports:n ~max_value:16 ~buffer:(4 * n) () in
  let policy = mk impl config in
  let sw = Value_switch.create ~backend:policy.Value_policy.backend config in
  let next = lcg 0x5eed in
  let fill () =
    while not (Value_switch.is_full sw) do
      Value_switch.accept_unit sw ~dest:(next n) ~value:(next 16 + 1)
    done
  in
  fill ();
  best_of ~batch:(fun ~count ->
      for i = 1 to count do
        let dest = next n and value = next 16 + 1 in
        (match Value_policy.admit policy sw ~dest ~value with
        | Decision.Accept -> Value_switch.accept_unit sw ~dest ~value
        | Decision.Push_out { victim } ->
          ignore (Value_switch.push_out_lost sw ~victim : int);
          Value_switch.accept_unit sw ~dest ~value
        | Decision.Drop -> ());
        if i land 1023 = 0 then begin
          ignore
            (Value_switch.transmit_phase_fields sw
               ~on_transmit:(fun ~dest:_ ~value:_ ~arrival:_ -> ()));
          fill ()
        end
      done)

let run_value_fused ~n mk =
  let config = Value_config.make ~ports:n ~max_value:16 ~buffer:(4 * n) () in
  let policy = mk `Flat config in
  match Value_policy.admit_batch policy with
  | None -> nan
  | Some kernel ->
    let sw = Value_switch.create ~backend:policy.Value_policy.backend config in
    let next = lcg 0x5eed in
    let fill () =
      while not (Value_switch.is_full sw) do
        Value_switch.accept_unit sw ~dest:(next n) ~value:(next 16 + 1)
      done
    in
    fill ();
    let batch = Arrival_batch.create ~capacity:batch_len () in
    let counters = Admission.counters () in
    best_of ~batch:(fun ~count ->
        let remaining = ref count in
        while !remaining > 0 do
          let len = min batch_len !remaining in
          Arrival_batch.clear batch;
          for _ = 1 to len do
            Arrival_batch.push batch ~dest:(next n) ~value:(next 16 + 1)
          done;
          Admission.reset counters;
          kernel sw batch counters;
          ignore
            (Value_switch.transmit_phase_fields sw
               ~on_transmit:(fun ~dest:_ ~value:_ ~arrival:_ -> ()));
          fill ();
          remaining := !remaining - len
        done)

let proc_policies =
  [
    ("LQD", fun impl c -> P_lqd.make ~impl c);
    ("LWD", fun impl c -> P_lwd.make ~impl c);
    ("BPD", fun impl c -> P_bpd.make ~impl c);
    ("RSV2", fun impl c -> P_reserved.make ~reserve:2 ~impl c);
  ]

let value_policies =
  [
    ("LQD", fun impl c -> V_lqd.make ~impl c);
    ("MVD", fun impl c -> V_mvd.make ~impl c);
    ("MRD", fun impl c -> V_mrd.make ~impl c);
  ]

let () =
  let reg = Smbm_obs.Registry.create () in
  let record ~model ~name ~n ~rate_scan ~rate_indexed ~rate_flat ~rate_fused =
    let base = Printf.sprintf "hotpath/%s/%s/n%d" model name n in
    Smbm_obs.Registry.set (Smbm_obs.Registry.gauge reg (base ^ "/scan")) rate_scan;
    Smbm_obs.Registry.set
      (Smbm_obs.Registry.gauge reg (base ^ "/indexed"))
      rate_indexed;
    Smbm_obs.Registry.set (Smbm_obs.Registry.gauge reg (base ^ "/flat")) rate_flat;
    Smbm_obs.Registry.set (Smbm_obs.Registry.gauge reg (base ^ "/fused")) rate_fused;
    Smbm_obs.Registry.set
      (Smbm_obs.Registry.gauge reg (base ^ "/speedup"))
      (rate_indexed /. rate_scan);
    Smbm_obs.Registry.set
      (Smbm_obs.Registry.gauge reg (base ^ "/flat/speedup"))
      (rate_flat /. rate_indexed);
    Smbm_obs.Registry.set
      (Smbm_obs.Registry.gauge reg (base ^ "/fused/speedup"))
      (rate_fused /. rate_flat);
    Smbm_obs.Registry.set
      (Smbm_obs.Registry.gauge reg (base ^ "/fused/total"))
      (rate_fused /. rate_indexed);
    Printf.printf
      "%-28s scan %10.0f/s   indexed %10.0f/s (%.2fx)   flat %10.0f/s \
       (%.2fx)   fused %10.0f/s (%.2fx, total %.2fx)\n\
       %!"
      base rate_scan rate_indexed
      (rate_indexed /. rate_scan)
      rate_flat
      (rate_flat /. rate_indexed)
      rate_fused
      (rate_fused /. rate_flat)
      (rate_fused /. rate_indexed)
  in
  List.iter
    (fun n ->
      List.iter
        (fun (name, mk) ->
          let rate_scan = run_proc ~n ~impl:`Scan mk in
          let rate_indexed = run_proc ~n ~impl:`Indexed mk in
          let rate_flat = run_proc ~n ~impl:`Flat mk in
          let rate_fused = run_proc_fused ~n mk in
          record ~model:"proc" ~name ~n ~rate_scan ~rate_indexed ~rate_flat
            ~rate_fused)
        proc_policies;
      List.iter
        (fun (name, mk) ->
          let rate_scan = run_value ~n ~impl:`Scan mk in
          let rate_indexed = run_value ~n ~impl:`Indexed mk in
          let rate_flat = run_value ~n ~impl:`Flat mk in
          let rate_fused = run_value_fused ~n mk in
          record ~model:"value" ~name ~n ~rate_scan ~rate_indexed ~rate_flat
            ~rate_fused)
        value_policies)
    sizes;
  let oc = open_out !out in
  List.iter
    (fun line -> output_string oc (line ^ "\n"))
    (Smbm_obs.Registry.to_jsonl
       ~labels:[ ("arrivals", string_of_int !arrivals) ]
       reg);
  close_out oc;
  Printf.printf "wrote %s\n" !out
