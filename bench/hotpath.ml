(* Admission hot-path throughput: arrivals/sec per push-out policy with the
   buffer held at capacity — every arrival exercises victim selection — for
   all three implementations ([`Scan]: the original O(n) rescans;
   [`Indexed]: incremental O(log n) indexes over the linked queues;
   [`Flat]: the same indexed selection over the struct-of-arrays backend).

     dune exec bench/hotpath.exe -- [--arrivals N] [--repeats R] [--out FILE]

   Emits one gauge per (model, policy, n, impl) plus two ratios —
   indexed/scan under .../speedup and flat/indexed under .../flat/speedup
   (both auto-gated by bench-diff) — as JSONL (Smbm_obs.Registry) to FILE.
   The committed repo-root BENCH_hotpath.json is this file at the default
   scale; CI regenerates it at reduced scale and diffs the ratios with
   `smbm_cli bench-diff` (ratios, unlike raw arrivals/sec, transfer
   between machines).

   All implementations see the identical arrival stream (a private LCG,
   fixed seed) and make bit-identical decisions — the oracle and lockstep
   suites prove that — so the ratios isolate selection and representation
   cost.  The admission loop runs through the policy layer, whose decision
   arithmetic is shared by all arms, so the flat ratios here are diluted
   end-to-end numbers; bench/e2e.ml's flat family isolates the bare
   backend cost. *)

open Smbm_core

let arrivals = ref 100_000
let repeats = ref 5
let out = ref "BENCH_hotpath.json"

let () =
  Arg.parse
    [
      ("--arrivals", Arg.Set_int arrivals, "N  admissions per timed batch");
      ( "--repeats",
        Arg.Set_int repeats,
        "R  timed batches per cell (the best rate is kept)" );
      ("--out", Arg.Set_string out, "FILE  JSONL output path");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "hotpath [--arrivals N] [--repeats R] [--out FILE]"

let sizes = [ 16; 64; 256 ]

(* Deterministic per-run arrival stream; both impls replay the same one. *)
let lcg seed =
  let s = ref seed in
  fun bound ->
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    !s mod bound

(* --- processing model --- *)

(* Warm up untimed, then time [!repeats] batches of [!arrivals] admissions
   and keep the best rate — best-of filters GC pauses and scheduler noise
   out of the short, fast cells, which is what makes the emitted speedup
   ratios stable enough to gate CI on. *)
let best_of ~batch =
  batch ~count:(!arrivals / 10);
  let best = ref 0.0 in
  for _ = 1 to !repeats do
    let _, span =
      Smbm_obs.Span.timed "batch" (fun () -> batch ~count:!arrivals)
    in
    let rate = float_of_int !arrivals /. span.Smbm_obs.Span.wall in
    if rate > !best then best := rate
  done;
  !best

let run_proc ~n ~impl mk =
  let config = Proc_config.contiguous ~k:n ~buffer:(4 * n) () in
  let policy = mk impl config in
  let sw = Proc_switch.create ~backend:policy.Proc_policy.backend config in
  let next = lcg 0x5eed in
  let fill () =
    while not (Proc_switch.is_full sw) do
      Proc_switch.accept_unit sw ~dest:(next n)
    done
  in
  fill ();
  best_of ~batch:(fun ~count ->
      for i = 1 to count do
        let dest = next n in
        (match Proc_policy.admit policy sw ~dest with
        | Decision.Accept -> Proc_switch.accept_unit sw ~dest
        | Decision.Push_out { victim } ->
          Proc_switch.push_out_unit sw ~victim;
          Proc_switch.accept_unit sw ~dest
        | Decision.Drop -> ());
        if i land 1023 = 0 then begin
          ignore
            (Proc_switch.transmit_phase_fields sw
               ~on_transmit:(fun ~dest:_ ~arrival:_ -> ()));
          fill ()
        end
      done)

(* --- value model --- *)

let run_value ~n ~impl mk =
  let config = Value_config.make ~ports:n ~max_value:16 ~buffer:(4 * n) () in
  let policy = mk impl config in
  let sw = Value_switch.create ~backend:policy.Value_policy.backend config in
  let next = lcg 0x5eed in
  let fill () =
    while not (Value_switch.is_full sw) do
      Value_switch.accept_unit sw ~dest:(next n) ~value:(next 16 + 1)
    done
  in
  fill ();
  best_of ~batch:(fun ~count ->
      for i = 1 to count do
        let dest = next n and value = next 16 + 1 in
        (match Value_policy.admit policy sw ~dest ~value with
        | Decision.Accept -> Value_switch.accept_unit sw ~dest ~value
        | Decision.Push_out { victim } ->
          ignore (Value_switch.push_out_lost sw ~victim : int);
          Value_switch.accept_unit sw ~dest ~value
        | Decision.Drop -> ());
        if i land 1023 = 0 then begin
          ignore
            (Value_switch.transmit_phase_fields sw
               ~on_transmit:(fun ~dest:_ ~value:_ ~arrival:_ -> ()));
          fill ()
        end
      done)

let proc_policies =
  [
    ("LQD", fun impl c -> P_lqd.make ~impl c);
    ("LWD", fun impl c -> P_lwd.make ~impl c);
    ("BPD", fun impl c -> P_bpd.make ~impl c);
    ("RSV2", fun impl c -> P_reserved.make ~reserve:2 ~impl c);
  ]

let value_policies =
  [
    ("LQD", fun impl c -> V_lqd.make ~impl c);
    ("MVD", fun impl c -> V_mvd.make ~impl c);
    ("MRD", fun impl c -> V_mrd.make ~impl c);
  ]

let () =
  let reg = Smbm_obs.Registry.create () in
  let record ~model ~name ~n ~rate_scan ~rate_indexed ~rate_flat =
    let base = Printf.sprintf "hotpath/%s/%s/n%d" model name n in
    Smbm_obs.Registry.set (Smbm_obs.Registry.gauge reg (base ^ "/scan")) rate_scan;
    Smbm_obs.Registry.set
      (Smbm_obs.Registry.gauge reg (base ^ "/indexed"))
      rate_indexed;
    Smbm_obs.Registry.set (Smbm_obs.Registry.gauge reg (base ^ "/flat")) rate_flat;
    Smbm_obs.Registry.set
      (Smbm_obs.Registry.gauge reg (base ^ "/speedup"))
      (rate_indexed /. rate_scan);
    Smbm_obs.Registry.set
      (Smbm_obs.Registry.gauge reg (base ^ "/flat/speedup"))
      (rate_flat /. rate_indexed);
    Printf.printf
      "%-28s scan %10.0f/s   indexed %10.0f/s (%.2fx)   flat %10.0f/s \
       (%.2fx)\n\
       %!"
      base rate_scan rate_indexed
      (rate_indexed /. rate_scan)
      rate_flat
      (rate_flat /. rate_indexed)
  in
  List.iter
    (fun n ->
      List.iter
        (fun (name, mk) ->
          let rate_scan = run_proc ~n ~impl:`Scan mk in
          let rate_indexed = run_proc ~n ~impl:`Indexed mk in
          let rate_flat = run_proc ~n ~impl:`Flat mk in
          record ~model:"proc" ~name ~n ~rate_scan ~rate_indexed ~rate_flat)
        proc_policies;
      List.iter
        (fun (name, mk) ->
          let rate_scan = run_value ~n ~impl:`Scan mk in
          let rate_indexed = run_value ~n ~impl:`Indexed mk in
          let rate_flat = run_value ~n ~impl:`Flat mk in
          record ~model:"value" ~name ~n ~rate_scan ~rate_indexed ~rate_flat)
        value_policies)
    sizes;
  let oc = open_out !out in
  List.iter
    (fun line -> output_string oc (line ^ "\n"))
    (Smbm_obs.Registry.to_jsonl
       ~labels:[ ("arrivals", string_of_int !arrivals) ]
       reg);
  close_out oc;
  Printf.printf "wrote %s\n" !out
