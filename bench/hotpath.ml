(* Admission hot-path throughput: arrivals/sec per push-out policy with the
   buffer held at capacity — every arrival exercises victim selection — for
   both victim-selection implementations ([`Scan]: the original O(n)
   rescans; [`Indexed]: the switches' incremental O(log n) indexes).

     dune exec bench/hotpath.exe -- [--arrivals N] [--repeats R] [--out FILE]

   Emits one gauge per (model, policy, n, impl) plus the indexed/scan
   speedup ratio, as JSONL (Smbm_obs.Registry) to FILE — the committed
   repo-root BENCH_hotpath.json is this file at the default scale; CI
   regenerates it at reduced scale and diffs the speedup ratios with
   `smbm_cli bench-diff` (ratios, unlike raw arrivals/sec, transfer
   between machines).

   Both implementations see the identical arrival stream (a private LCG,
   fixed seed) and make bit-identical decisions — the oracle suite proves
   that — so the ratio isolates selection cost. *)

open Smbm_core

let arrivals = ref 100_000
let repeats = ref 5
let out = ref "BENCH_hotpath.json"

let () =
  Arg.parse
    [
      ("--arrivals", Arg.Set_int arrivals, "N  admissions per timed batch");
      ( "--repeats",
        Arg.Set_int repeats,
        "R  timed batches per cell (the best rate is kept)" );
      ("--out", Arg.Set_string out, "FILE  JSONL output path");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "hotpath [--arrivals N] [--repeats R] [--out FILE]"

let sizes = [ 16; 64; 256 ]

(* Deterministic per-run arrival stream; both impls replay the same one. *)
let lcg seed =
  let s = ref seed in
  fun bound ->
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    !s mod bound

(* --- processing model --- *)

(* Warm up untimed, then time [!repeats] batches of [!arrivals] admissions
   and keep the best rate — best-of filters GC pauses and scheduler noise
   out of the short, fast cells, which is what makes the emitted speedup
   ratios stable enough to gate CI on. *)
let best_of ~batch =
  batch ~count:(!arrivals / 10);
  let best = ref 0.0 in
  for _ = 1 to !repeats do
    let _, span =
      Smbm_obs.Span.timed "batch" (fun () -> batch ~count:!arrivals)
    in
    let rate = float_of_int !arrivals /. span.Smbm_obs.Span.wall in
    if rate > !best then best := rate
  done;
  !best

let run_proc ~n ~impl mk =
  let config = Proc_config.contiguous ~k:n ~buffer:(4 * n) () in
  let policy = mk impl config in
  let sw = Proc_switch.create config in
  let next = lcg 0x5eed in
  let fill () =
    while not (Proc_switch.is_full sw) do
      ignore (Proc_switch.accept sw ~dest:(next n))
    done
  in
  fill ();
  best_of ~batch:(fun ~count ->
      for i = 1 to count do
        let dest = next n in
        (match Proc_policy.admit policy sw ~dest with
        | Decision.Accept -> ignore (Proc_switch.accept sw ~dest)
        | Decision.Push_out { victim } ->
          ignore (Proc_switch.push_out sw ~victim);
          ignore (Proc_switch.accept sw ~dest)
        | Decision.Drop -> ());
        if i land 1023 = 0 then begin
          ignore (Proc_switch.transmit_phase sw ~on_transmit:ignore);
          fill ()
        end
      done)

(* --- value model --- *)

let run_value ~n ~impl mk =
  let config = Value_config.make ~ports:n ~max_value:16 ~buffer:(4 * n) () in
  let policy = mk impl config in
  let sw = Value_switch.create config in
  let next = lcg 0x5eed in
  let fill () =
    while not (Value_switch.is_full sw) do
      ignore (Value_switch.accept sw ~dest:(next n) ~value:(next 16 + 1))
    done
  in
  fill ();
  best_of ~batch:(fun ~count ->
      for i = 1 to count do
        let dest = next n and value = next 16 + 1 in
        (match Value_policy.admit policy sw ~dest ~value with
        | Decision.Accept -> ignore (Value_switch.accept sw ~dest ~value)
        | Decision.Push_out { victim } ->
          ignore (Value_switch.push_out sw ~victim);
          ignore (Value_switch.accept sw ~dest ~value)
        | Decision.Drop -> ());
        if i land 1023 = 0 then begin
          ignore (Value_switch.transmit_phase sw ~on_transmit:ignore);
          fill ()
        end
      done)

let proc_policies =
  [
    ("LQD", fun impl c -> P_lqd.make ~impl c);
    ("LWD", fun impl c -> P_lwd.make ~impl c);
    ("BPD", fun impl c -> P_bpd.make ~impl c);
    ("RSV2", fun impl c -> P_reserved.make ~reserve:2 ~impl c);
  ]

let value_policies =
  [
    ("LQD", fun impl c -> V_lqd.make ~impl c);
    ("MVD", fun impl c -> V_mvd.make ~impl c);
    ("MRD", fun impl c -> V_mrd.make ~impl c);
  ]

let () =
  let reg = Smbm_obs.Registry.create () in
  let record ~model ~name ~n ~rate_scan ~rate_indexed =
    let base = Printf.sprintf "hotpath/%s/%s/n%d" model name n in
    Smbm_obs.Registry.set (Smbm_obs.Registry.gauge reg (base ^ "/scan")) rate_scan;
    Smbm_obs.Registry.set
      (Smbm_obs.Registry.gauge reg (base ^ "/indexed"))
      rate_indexed;
    Smbm_obs.Registry.set
      (Smbm_obs.Registry.gauge reg (base ^ "/speedup"))
      (rate_indexed /. rate_scan);
    Printf.printf "%-28s scan %10.0f/s   indexed %10.0f/s   speedup %.2fx\n%!"
      base rate_scan rate_indexed
      (rate_indexed /. rate_scan)
  in
  List.iter
    (fun n ->
      List.iter
        (fun (name, mk) ->
          let rate_scan = run_proc ~n ~impl:`Scan mk in
          let rate_indexed = run_proc ~n ~impl:`Indexed mk in
          record ~model:"proc" ~name ~n ~rate_scan ~rate_indexed)
        proc_policies;
      List.iter
        (fun (name, mk) ->
          let rate_scan = run_value ~n ~impl:`Scan mk in
          let rate_indexed = run_value ~n ~impl:`Indexed mk in
          record ~model:"value" ~name ~n ~rate_scan ~rate_indexed)
        value_policies)
    sizes;
  let oc = open_out !out in
  List.iter
    (fun line -> output_string oc (line ^ "\n"))
    (Smbm_obs.Registry.to_jsonl
       ~labels:[ ("arrivals", string_of_int !arrivals) ]
       reg);
  close_out oc;
  Printf.printf "wrote %s\n" !out
