(* End-to-end throughput of the sweep machinery: slots/sec and GC minor
   words per slot, batched slot loop + compact trace cache versus the
   historical per-slot list loop with per-point live generation.

     dune exec bench/e2e.exe -- [--slots N] [--sources S] [--repeats R]
                                [--out FILE]

   Two cell families, emitted as JSONL gauges (Smbm_obs.Registry):

   - e2e/point/<model>/{list,batched}/{slots_per_sec,minor_words_per_slot}
     e2e/point/<model>/speedup
     One full sweep point (OPT reference plus every policy of the model,
     i.e. exactly what one Fig. 5 simulation runs) under `Batched versus
     `List.  Both arms run the same engines over the same live workload, so
     this isolates the slot-loop representation cost on top of the full
     simulation — an honest end-to-end number, dominated by engine work.

   - e2e/pipeline/<model>/{list,batched}/{slots_per_sec,minor_words_per_slot}
     e2e/pipeline/<model>/speedup
     e2e/pipeline/<model>/alloc_improvement
     A full 7-point B-axis panel's worth of arrival traffic delivered to
     sink instances (arrival counting only, no switch).  The list arm does
     what run_panel did before the trace cache: regenerate the traffic live
     at every point and deliver it as per-slot lists.  The batched arm does
     what run_panel does now: materialize one compact trace and replay it
     through the reusable struct-of-arrays batch at every point.  This is
     the arrival pipeline itself — generation, representation, delivery —
     the part this bench gates (speedup >= 2x, allocation >= 5x lower).

   The committed repo-root BENCH_e2e.json is this file at the default
   scale; CI regenerates it at the same scale and gates with
   `smbm_cli bench-diff` on the speedup ratios, the alloc_improvement
   floor, and minor_words_per_slot regressions (allocation counts are
   deterministic and machine-transferable, unlike raw rates).

   Both pipelines consume the workload's RNG streams identically and make
   bit-identical decisions (the equivalence suite proves that), so every
   ratio here is a cost comparison of equal work. *)

open Smbm_sim

let slots = ref 4_000
let sources = ref 50
let repeats = ref 3
let out = ref "BENCH_e2e.json"

let () =
  Arg.parse
    [
      ("--slots", Arg.Set_int slots, "N  slots per timed run");
      ("--sources", Arg.Set_int sources, "S  MMPP sources feeding the point");
      ( "--repeats",
        Arg.Set_int repeats,
        "R  timed runs per cell (the best rate is kept)" );
      ("--out", Arg.Set_string out, "FILE  JSONL output path");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "e2e [--slots N] [--sources S] [--repeats R] [--out FILE]"

let base () =
  {
    Sweep.default_base with
    slots = !slots;
    flush_every = Some (max 1 (!slots / 20));
    mmpp =
      { Smbm_traffic.Scenario.default_mmpp with sources = !sources };
  }

let models =
  [
    ("proc", Sweep.Proc);
    ("value_uniform", Sweep.Value_uniform);
    ("value_port", Sweep.Value_port);
  ]

(* Best-of-[repeats] rate (filters GC pauses and scheduler noise) and the
   last minor-word count (allocation is deterministic, the last stands).
   [run] returns how many slots it stepped. *)
let measure run =
  ignore (run ());
  let best_rate = ref 0.0 and words_per_slot = ref 0.0 in
  for _ = 1 to !repeats do
    Gc.full_major ();
    let words0 = Gc.minor_words () in
    let n, span = Smbm_obs.Span.timed "run" (fun () -> run ()) in
    let words = Gc.minor_words () -. words0 in
    let n = float_of_int n in
    let rate = n /. span.Smbm_obs.Span.wall in
    if rate > !best_rate then best_rate := rate;
    words_per_slot := words /. n
  done;
  (!best_rate, !words_per_slot)

(* ----- point cells: one full sweep point, real engines ----- *)

let point_cell ~model ~pipeline =
  let base = base () in
  let params =
    {
      Experiment.slots = base.Sweep.slots;
      flush_every = base.Sweep.flush_every;
      check_every = None;
    }
  in
  measure (fun () ->
      (* Fresh workload + instances every run: the RNG streams are consumed
         by the run. *)
      let workload, instances = Sweep.setup model base in
      Experiment.run ~params ~pipeline ~workload instances;
      base.Sweep.slots)

(* ----- pipeline cells: a full B panel of traffic into sinks ----- *)

(* A sink accepts arrivals (counting them, so delivery is not dead code)
   and does nothing else: what remains is exactly the arrival pipeline. *)
let sink name =
  let count = ref 0 in
  {
    Instance.name;
    arrive = (fun (_ : Smbm_core.Arrival.t) -> incr count);
    arrive_dv = (fun ~dest:_ ~value:_ -> incr count);
    transmit = ignore;
    end_slot = ignore;
    flush = ignore;
    occupancy = (fun () -> 0);
    metrics = Metrics.create ();
    ports = None;
    check = ignore;
  }

let b_axis_xs = [ 16; 32; 64; 128; 256; 512; 1024 ]

let pipeline_cell ~model ~pipeline =
  let base = base () in
  let params =
    {
      Experiment.slots = base.Sweep.slots;
      flush_every = base.Sweep.flush_every;
      check_every = None;
    }
  in
  let n_instances = List.length (Sweep.policy_names model base) + 1 in
  let sinks () = List.init n_instances (fun i -> sink (string_of_int i)) in
  let total_slots = List.length b_axis_xs * base.Sweep.slots in
  match pipeline with
  | `List ->
    (* Pre-cache behaviour: every point of the panel regenerates the same
       traffic and delivers it as freshly consed per-slot lists. *)
    measure (fun () ->
        List.iter
          (fun _x ->
            let workload, _ = Sweep.setup model base in
            Experiment.run ~params ~pipeline:`List ~workload (sinks ()))
          b_axis_xs;
        total_slots)
  | `Batched ->
    (* Cached behaviour: generate once into a compact trace, replay it
       through the reusable batch at every point. *)
    measure (fun () ->
        let trace =
          Sweep.materialize_trace ~base ~model ~axis:Sweep.B
            ~x:(List.hd b_axis_xs)
        in
        List.iter
          (fun _x ->
            let workload = Smbm_traffic.Trace.Compact.replay trace in
            Experiment.run ~params ~pipeline:`Batched ~workload (sinks ()))
          b_axis_xs;
        total_slots)

let () =
  let reg = Smbm_obs.Registry.create () in
  let gauge name v = Smbm_obs.Registry.set (Smbm_obs.Registry.gauge reg name) v in
  let family label cell =
    List.iter
      (fun (name, model) ->
        let list_rate, list_words = cell ~model ~pipeline:`List in
        let batched_rate, batched_words = cell ~model ~pipeline:`Batched in
        let prefix = "e2e/" ^ label ^ "/" ^ name in
        gauge (prefix ^ "/list/slots_per_sec") list_rate;
        gauge (prefix ^ "/batched/slots_per_sec") batched_rate;
        gauge (prefix ^ "/list/minor_words_per_slot") list_words;
        gauge (prefix ^ "/batched/minor_words_per_slot") batched_words;
        gauge (prefix ^ "/speedup") (batched_rate /. list_rate);
        let alloc = list_words /. Float.max batched_words 1e-9 in
        if label = "pipeline" then gauge (prefix ^ "/alloc_improvement") alloc;
        Printf.printf
          "%-28s list %8.0f slots/s %8.1f w/slot   batched %8.0f slots/s \
           %8.1f w/slot   speedup %.2fx  alloc %.1fx lower\n\
           %!"
          (label ^ "/" ^ name) list_rate list_words batched_rate batched_words
          (batched_rate /. list_rate)
          alloc)
      models
  in
  family "point" point_cell;
  family "pipeline" pipeline_cell;
  let oc = open_out !out in
  List.iter
    (fun line -> output_string oc (line ^ "\n"))
    (Smbm_obs.Registry.to_jsonl
       ~labels:
         [
           ("slots", string_of_int !slots); ("sources", string_of_int !sources);
         ]
       reg);
  close_out oc;
  Printf.printf "wrote %s\n" !out
