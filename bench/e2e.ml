(* End-to-end throughput of the sweep machinery: slots/sec and GC minor
   words per slot, batched slot loop + compact trace cache versus the
   historical per-slot list loop with per-point live generation.

     dune exec bench/e2e.exe -- [--slots N] [--sources S] [--repeats R]
                                [--out FILE]

   Two cell families, emitted as JSONL gauges (Smbm_obs.Registry):

   - e2e/point/<model>/{list,batched}/{slots_per_sec,minor_words_per_slot}
     e2e/point/<model>/speedup
     One full sweep point (OPT reference plus every policy of the model,
     i.e. exactly what one Fig. 5 simulation runs) under `Batched versus
     `List.  Both arms run the same engines over the same live workload, so
     this isolates the slot-loop representation cost on top of the full
     simulation — an honest end-to-end number, dominated by engine work.

   - e2e/pipeline/<model>/{list,batched}/{slots_per_sec,minor_words_per_slot}
     e2e/pipeline/<model>/speedup
     e2e/pipeline/<model>/alloc_improvement
     A full 7-point B-axis panel's worth of arrival traffic delivered to
     sink instances (arrival counting only, no switch).  The list arm does
     what run_panel did before the trace cache: regenerate the traffic live
     at every point and deliver it as per-slot lists.  The batched arm does
     what run_panel does now: materialize one compact trace and replay it
     through the reusable struct-of-arrays batch at every point.  This is
     the arrival pipeline itself — generation, representation, delivery —
     the part this bench gates (speedup >= 2x, allocation >= 5x lower).

   - e2e/flat/<model>/<size>/{linked,flat}/{slots_per_sec,minor_words_per_slot}
     e2e/flat/<model>/<size>/speedup     sizes n4, n64, n256, n1024
     e2e/flat/proc/target_slots_per_sec  (the 10M hot-cell target)
     The raw switch slot loop — occupancy-conserving fuzzed arrivals,
     fields-based transmission, slot advance — on the linked versus the
     flat struct-of-arrays backend, across a size panel from the paper's
     contiguous 4-port switch (the hot cell, where the flat backend must
     clear the recorded 10M slots/s target) up to 1024 unit-work ports.
     Nothing sits between the loop and the switch — no workload
     generation, no metrics, no policy admission (whose shared threshold
     arithmetic is identical on both arms and is priced by the point
     cells and bench/hotpath.ml) — so this is the representation cost
     itself: where the linked backend pays a packet record plus a queue
     node per arrival and pointer-chases cold heap nodes at scale, the
     flat backend re-links integer slots in place.  CI gates the
     flat/linked ratio (floor 3x on proc at n256), every speedup against
     the committed baseline, and the near-zero flat minor words/slot.

   - e2e/flight/proc/{off,on}/{slots_per_sec,minor_words_per_slot}
     e2e/flight/proc/overhead
     The flat proc hot cell again, with the engine's per-event flight
     recording (Smbm_obs.Flight) inlined at the same sites — arrival,
     transmit, slot end.  The loop underneath runs at ~10M slots/s, so
     any per-event recording cost shows up undiluted: this is the worst
     case for the always-on black box.  `overhead` is on/off (closer to
     1.0 is cheaper); CI gates it with an absolute floor of 0.8 — the
     always-on ring must keep at least 80% of tracing-off throughput.

   The committed repo-root BENCH_e2e.json is this file at the default
   scale; CI regenerates it at the same scale and gates with
   `smbm_cli bench-diff` on the speedup ratios, the alloc_improvement
   floor, the flight overhead floor, and minor_words_per_slot
   regressions (allocation counts are deterministic and
   machine-transferable, unlike raw rates).

   Both pipelines consume the workload's RNG streams identically and make
   bit-identical decisions (the equivalence suite proves that), so every
   ratio here is a cost comparison of equal work. *)

open Smbm_sim

let slots = ref 4_000
let sources = ref 50
let repeats = ref 3
let flat_scale = ref 1.0
let out = ref "BENCH_e2e.json"

let () =
  Arg.parse
    [
      ("--slots", Arg.Set_int slots, "N  slots per timed run");
      ("--sources", Arg.Set_int sources, "S  MMPP sources feeding the point");
      ( "--repeats",
        Arg.Set_int repeats,
        "R  timed runs per cell (the best rate is kept)" );
      ( "--flat-scale",
        Arg.Set_float flat_scale,
        "X  multiplier on the flat-backend cells' slot counts" );
      ("--out", Arg.Set_string out, "FILE  JSONL output path");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "e2e [--slots N] [--sources S] [--repeats R] [--flat-scale X] [--out FILE]"

let base () =
  {
    Sweep.default_base with
    slots = !slots;
    flush_every = Some (max 1 (!slots / 20));
    mmpp =
      { Smbm_traffic.Scenario.default_mmpp with sources = !sources };
  }

let models =
  [
    ("proc", Sweep.Proc);
    ("value_uniform", Sweep.Value_uniform);
    ("value_port", Sweep.Value_port);
  ]

(* Best-of-[repeats] rate (filters GC pauses and scheduler noise) and the
   last minor-word count (allocation is deterministic, the last stands).
   [run] returns how many slots it stepped.  The untimed warmup run sits
   after a full compaction so every cell starts from the same heap shape
   regardless of which cells ran before it. *)
let measure run =
  Gc.compact ();
  ignore (run ());
  let best_rate = ref 0.0 and words_per_slot = ref 0.0 in
  for _ = 1 to !repeats do
    Gc.full_major ();
    let words0 = Gc.minor_words () in
    let n, span = Smbm_obs.Span.timed "run" (fun () -> run ()) in
    let words = Gc.minor_words () -. words0 in
    let n = float_of_int n in
    let rate = n /. span.Smbm_obs.Span.wall in
    if rate > !best_rate then best_rate := rate;
    words_per_slot := words /. n
  done;
  (!best_rate, !words_per_slot)

(* ----- point cells: one full sweep point, real engines ----- *)

let point_cell ~model ~pipeline =
  let base = base () in
  let params =
    {
      Experiment.slots = base.Sweep.slots;
      flush_every = base.Sweep.flush_every;
      check_every = None;
    }
  in
  measure (fun () ->
      (* Fresh workload + instances every run: the RNG streams are consumed
         by the run. *)
      let workload, instances = Sweep.setup model base in
      Experiment.run ~params ~pipeline ~workload instances;
      base.Sweep.slots)

(* ----- pipeline cells: a full B panel of traffic into sinks ----- *)

(* A sink accepts arrivals (counting them, so delivery is not dead code)
   and does nothing else: what remains is exactly the arrival pipeline. *)
let sink name =
  let count = ref 0 in
  {
    Instance.name;
    arrive = (fun (_ : Smbm_core.Arrival.t) -> incr count);
    arrive_dv = (fun ~dest:_ ~value:_ -> incr count);
    arrive_batch = None;
    transmit = ignore;
    end_slot = ignore;
    flush = ignore;
    occupancy = (fun () -> 0);
    metrics = Metrics.create ();
    ports = None;
    check = ignore;
  }

let b_axis_xs = [ 16; 32; 64; 128; 256; 512; 1024 ]

let pipeline_cell ~model ~pipeline =
  let base = base () in
  let params =
    {
      Experiment.slots = base.Sweep.slots;
      flush_every = base.Sweep.flush_every;
      check_every = None;
    }
  in
  let n_instances = List.length (Sweep.policy_names model base) + 1 in
  let sinks () = List.init n_instances (fun i -> sink (string_of_int i)) in
  let total_slots = List.length b_axis_xs * base.Sweep.slots in
  match pipeline with
  | `List ->
    (* Pre-cache behaviour: every point of the panel regenerates the same
       traffic and delivers it as freshly consed per-slot lists. *)
    measure (fun () ->
        List.iter
          (fun _x ->
            let workload, _ = Sweep.setup model base in
            Experiment.run ~params ~pipeline:`List ~workload (sinks ()))
          b_axis_xs;
        total_slots)
  | `Batched ->
    (* Cached behaviour: generate once into a compact trace, replay it
       through the reusable batch at every point. *)
    measure (fun () ->
        let trace =
          Sweep.materialize_trace ~base ~model ~axis:Sweep.B
            ~x:(List.hd b_axis_xs)
        in
        List.iter
          (fun _x ->
            let workload = Smbm_traffic.Trace.Compact.replay trace in
            Experiment.run ~params ~pipeline:`Batched ~workload (sinks ()))
          b_axis_xs;
        total_slots)

(* ----- flat cells: the raw switch slot loop across a size panel ----- *)

(* Deterministic private arrival stream; both backends replay the same
   sequence (the three-way lockstep suite proves the states stay
   bit-identical, so equal work is being timed). *)
let lcg seed =
  let s = ref seed in
  fun bound ->
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    !s mod bound

(* (row label, ports, buffer, timed slots).  The n4 row is the hot cell;
   the scale rows grow the working set past cache so the linked backend's
   pointer-chasing shows its real cost. *)
let flat_sizes =
  [
    ("n4", 4, 64, 600_000);
    ("n64", 64, 16_384, 20_000);
    ("n256", 256, 65_536, 6_000);
    ("n1024", 1024, 262_144, 1_000);
  ]

let flat_row_slots slots =
  max 1 (int_of_float (float_of_int slots *. !flat_scale))

(* One switch per cell, filled once; the timed loop re-accepts exactly
   what each slot transmitted, so occupancy is conserved and every repeat
   times the same steady-state churn (fill and flush stay outside). *)
let flat_proc_cell ~n ~buffer ~slots ~backend =
  (* The hot cell runs the paper's contiguous configuration (works 1..4);
     the scale rows run unit works — the classical shared-memory switch —
     so every port completes a packet every slot, maximizing churn. *)
  let config =
    if n <= 4 then Smbm_core.Proc_config.contiguous ~k:n ~buffer ()
    else Smbm_core.Proc_config.uniform ~n ~work:1 ~buffer ()
  in
  let sw = Smbm_core.Proc_switch.create ~backend config in
  let next = lcg 0x5eed in
  let d = ref 0 in
  while not (Smbm_core.Proc_switch.is_full sw) do
    Smbm_core.Proc_switch.accept_unit sw ~dest:(!d mod n);
    incr d
  done;
  measure (fun () ->
      for _ = 1 to slots do
        let freed =
          Smbm_core.Proc_switch.transmit_phase_fields sw
            ~on_transmit:(fun ~dest:_ ~arrival:_ -> ())
        in
        Smbm_core.Proc_switch.advance_slot sw;
        for _ = 1 to freed do
          Smbm_core.Proc_switch.accept_unit sw ~dest:(next n)
        done
      done;
      slots)

let flat_value_cell ~n ~buffer ~slots ~backend =
  let k = 16 in
  let config =
    Smbm_core.Value_config.make ~ports:n ~max_value:k ~buffer ()
  in
  let sw = Smbm_core.Value_switch.create ~backend config in
  let next = lcg 0x5eed in
  let d = ref 0 in
  while not (Smbm_core.Value_switch.is_full sw) do
    Smbm_core.Value_switch.accept_unit sw ~dest:(!d mod n)
      ~value:(next k + 1);
    incr d
  done;
  measure (fun () ->
      for _ = 1 to slots do
        let freed =
          Smbm_core.Value_switch.transmit_phase_fields sw
            ~on_transmit:(fun ~dest:_ ~value:_ ~arrival:_ -> ())
        in
        Smbm_core.Value_switch.advance_slot sw;
        for _ = 1 to freed do
          Smbm_core.Value_switch.accept_unit sw ~dest:(next n)
            ~value:(next k + 1)
        done
      done;
      slots)

(* ----- flight cells: the always-on black box priced on the hot loop ----- *)

(* The flat hot cell's loop with the engine's flight-recording seam:
   per-packet transmit and arrival events plus a slot_end, guarded by the
   same option match the engines compile.  [flight = None] is the
   tracing-off arm; [Some ring] is always-on recording into a wrapped
   ring. *)
let flight_cell ~flight =
  let n = 4 and buffer = 64 in
  let slots = flat_row_slots 600_000 in
  let config = Smbm_core.Proc_config.contiguous ~k:n ~buffer () in
  let sw = Smbm_core.Proc_switch.create ~backend:`Flat config in
  let fsrc =
    match flight with Some f -> Smbm_obs.Flight.intern f "hot" | None -> 0
  in
  let next = lcg 0x5eed in
  let d = ref 0 in
  while not (Smbm_core.Proc_switch.is_full sw) do
    Smbm_core.Proc_switch.accept_unit sw ~dest:(!d mod n);
    incr d
  done;
  measure (fun () ->
      for _ = 1 to slots do
        let now = Smbm_core.Proc_switch.now sw in
        let freed =
          Smbm_core.Proc_switch.transmit_phase_fields sw
            ~on_transmit:(fun ~dest ~arrival ->
              match flight with
              | None -> ()
              | Some f ->
                Smbm_obs.Flight.transmit f ~slot:now ~src:fsrc ~dest ~value:1
                  ~latency:(now - arrival))
        in
        Smbm_core.Proc_switch.advance_slot sw;
        for _ = 1 to freed do
          let dest = next n in
          (match flight with
          | None -> ()
          | Some f -> Smbm_obs.Flight.arrival f ~slot:now ~src:fsrc ~dest);
          Smbm_core.Proc_switch.accept_unit sw ~dest
        done;
        match flight with
        | None -> ()
        | Some f ->
          Smbm_obs.Flight.slot_end f ~slot:now ~src:fsrc
            ~occupancy:(Smbm_core.Proc_switch.occupancy sw)
      done;
      slots)

let () =
  let reg = Smbm_obs.Registry.create () in
  let gauge name v = Smbm_obs.Registry.set (Smbm_obs.Registry.gauge reg name) v in
  let family label cell =
    List.iter
      (fun (name, model) ->
        let list_rate, list_words = cell ~model ~pipeline:`List in
        let batched_rate, batched_words = cell ~model ~pipeline:`Batched in
        let prefix = "e2e/" ^ label ^ "/" ^ name in
        gauge (prefix ^ "/list/slots_per_sec") list_rate;
        gauge (prefix ^ "/batched/slots_per_sec") batched_rate;
        gauge (prefix ^ "/list/minor_words_per_slot") list_words;
        gauge (prefix ^ "/batched/minor_words_per_slot") batched_words;
        gauge (prefix ^ "/speedup") (batched_rate /. list_rate);
        let alloc = list_words /. Float.max batched_words 1e-9 in
        if label = "pipeline" then gauge (prefix ^ "/alloc_improvement") alloc;
        Printf.printf
          "%-28s list %8.0f slots/s %8.1f w/slot   batched %8.0f slots/s \
           %8.1f w/slot   speedup %.2fx  alloc %.1fx lower\n\
           %!"
          (label ^ "/" ^ name) list_rate list_words batched_rate batched_words
          (batched_rate /. list_rate)
          alloc)
      models
  in
  family "point" point_cell;
  family "pipeline" pipeline_cell;
  List.iter
    (fun (name, cell) ->
      List.iter
        (fun (size, n, buffer, slots) ->
          let slots = flat_row_slots slots in
          let linked_rate, linked_words = cell ~n ~buffer ~slots ~backend:`Linked in
          let flat_rate, flat_words = cell ~n ~buffer ~slots ~backend:`Flat in
          let prefix = "e2e/flat/" ^ name ^ "/" ^ size in
          gauge (prefix ^ "/linked/slots_per_sec") linked_rate;
          gauge (prefix ^ "/flat/slots_per_sec") flat_rate;
          gauge (prefix ^ "/linked/minor_words_per_slot") linked_words;
          gauge (prefix ^ "/flat/minor_words_per_slot") flat_words;
          gauge (prefix ^ "/speedup") (flat_rate /. linked_rate);
          Printf.printf
            "%-28s linked %8.0f slots/s %8.1f w/slot   flat %8.0f slots/s \
             %8.2f w/slot   speedup %.2fx\n\
             %!"
            ("flat/" ^ name ^ "/" ^ size)
            linked_rate linked_words flat_rate flat_words
            (flat_rate /. linked_rate))
        flat_sizes)
    [ ("proc", flat_proc_cell); ("value", flat_value_cell) ];
  gauge "e2e/flat/proc/target_slots_per_sec" 10_000_000.0;
  (let off_rate, off_words = flight_cell ~flight:None in
   let ring = Smbm_obs.Flight.create ~cap:65536 () in
   let on_rate, on_words = flight_cell ~flight:(Some ring) in
   gauge "e2e/flight/proc/off/slots_per_sec" off_rate;
   gauge "e2e/flight/proc/on/slots_per_sec" on_rate;
   gauge "e2e/flight/proc/off/minor_words_per_slot" off_words;
   gauge "e2e/flight/proc/on/minor_words_per_slot" on_words;
   gauge "e2e/flight/proc/overhead" (on_rate /. off_rate);
   Printf.printf
     "%-28s off %8.0f slots/s %8.2f w/slot   on %8.0f slots/s %8.2f w/slot   \
      overhead %.2fx (%d events)\n\
      %!"
     "flight/proc" off_rate off_words on_rate on_words (on_rate /. off_rate)
     (Smbm_obs.Flight.total ring));
  let oc = open_out !out in
  List.iter
    (fun line -> output_string oc (line ^ "\n"))
    (Smbm_obs.Registry.to_jsonl
       ~labels:
         [
           ("slots", string_of_int !slots); ("sources", string_of_int !sources);
         ]
       reg);
  close_out oc;
  Printf.printf "wrote %s\n" !out
