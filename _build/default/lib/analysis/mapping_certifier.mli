(** Executable version of the paper's mapping routine (its Fig. 3) — the
    machinery behind Theorem 7 ("LWD is at most 2-competitive").

    The proof maintains, at every instant, a mapping from OPT's packets to
    LWD's packets such that (the paper's Lemma 8): the l-th *eligible*
    packet of an OPT queue maps to the l-th packet of the same LWD queue
    when it exists (step A0) with [lat_OPT >= lat_LWD]; otherwise it holds
    an explicit latency-dominating assignment to an LWD packet carrying no
    other one (step A1); push-outs reassign (A2), LWD acceptances release
    stale A1 assignments (A3); and when LWD transmits a packet, the OPT
    packets mapped to it become ineligible — charged to it, at most two per
    LWD packet (T0), which yields the factor 2.

    Running the routine mechanically exposed a gap in the paper's Lemma 8:
    after an LWD push-out empties a queue, the opponent keeps serving its
    own copy and gets a processing cycle ahead; when both then accept fresh
    packets, the new positional pair violates the latency constraint
    (case (4) of the paper's induction asserts it cannot).  The minimal
    trace is two ports with works {1, 2} and B = 2 — see
    [test_mapping_certifier.ml].  The *theorem* survives: this module
    implements a repaired charging scheme — A0 is an explicit mapping
    created only when the latency constraint actually holds, and an
    eligible OPT packet transmitted before its image is charged to that
    image within the same transmission phase (its image's latency can be at
    most its own, so the image must complete in the same phase) — which
    certifies [opponent <= 2 x LWD] packet-by-packet on every run.  The
    literal positional invariant is still tracked and reported separately
    as [strict_a0_mismatches].

    Restrictions, as in the theorem's setting: speedup 1, and the opponent
    never pushes out (the clairvoyant optimum needs no push-out; an opponent
    [Push_out] decision is reported as a misuse violation). *)

type report = {
  events : int;  (** mapping-relevant events processed *)
  violations : string list;  (** first few violation descriptions, oldest first *)
  violation_count : int;
  strict_a0_mismatches : int;
      (** events where the paper's literal positional invariant (Lemma 8)
          failed even though the repaired accounting stayed sound *)
  opt_transmitted : int;
  lwd_transmitted : int;
  max_images : int;
      (** largest number of OPT packets charged to one LWD packet (the
          routine promises <= 2) *)
}

val run :
  config:Smbm_core.Proc_config.t ->
  opponent:Smbm_core.Proc_policy.t ->
  trace:(int -> Smbm_core.Arrival.t list) ->
  slots:int ->
  ?check_every_event:bool ->
  unit ->
  report
(** Run the certifier for [slots] slots.  [check_every_event] (default
    true) verifies the mapping invariants after every arrival; latency
    constraints are checked at transmission-phase boundaries, where both
    buffers have absorbed the same number of service cycles.
    @raise Invalid_argument if [config] has speedup <> 1. *)

val pp_report : Format.formatter -> report -> unit
