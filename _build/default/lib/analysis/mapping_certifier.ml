open Smbm_core

type report = {
  events : int;
  violations : string list;
  violation_count : int;
  strict_a0_mismatches : int;
  opt_transmitted : int;
  lwd_transmitted : int;
  max_images : int;
}

type state = {
  lwd_sw : Proc_switch.t;
  opt_sw : Proc_switch.t;
  lwd : Proc_policy.t;
  opponent : Proc_policy.t;
  (* OPT packet id -> transmitted LWD packet id it is charged to. *)
  ineligible : (int, int) Hashtbl.t;
  (* Explicit mappings, OPT id <-> buffered LWD id; each LWD packet carries
     at most one image of each kind. *)
  a0 : (int, int) Hashtbl.t;
  a0_inv : (int, int) Hashtbl.t;
  a1 : (int, int) Hashtbl.t;
  a1_inv : (int, int) Hashtbl.t;
  (* Buffered LWD id -> OPT ids already transmitted this phase and waiting
     for their image to complete (it must, within the same phase). *)
  pending : (int, int list) Hashtbl.t;
  (* Transmitted LWD id -> number of OPT packets charged to it. *)
  absorbed : (int, int) Hashtbl.t;
  lwd_done : (int, unit) Hashtbl.t;  (* transmitted LWD ids *)
  mutable events : int;
  mutable violations : string list; (* newest first *)
  mutable violation_count : int;
  mutable strict_a0_mismatches : int;
  mutable opt_transmitted : int;
  mutable lwd_transmitted : int;
  mutable max_images : int;
}

let violate st fmt =
  Printf.ksprintf
    (fun msg ->
      st.violation_count <- st.violation_count + 1;
      if st.violation_count <= 10 then st.violations <- msg :: st.violations)
    fmt

(* Packets of a queue with their physical latencies (prefix sums of residual
   work: the number of transmission phases until each one completes). *)
let with_latencies q =
  let _, packets =
    List.fold_left
      (fun (acc_lat, acc) (p : Packet.Proc.t) ->
        let lat = acc_lat + p.residual in
        (lat, (p, lat) :: acc))
      (0, [])
      (Work_queue.to_list q)
  in
  List.rev packets

let lwd_queue_packets st i = with_latencies (Proc_switch.queue st.lwd_sw i)

let opt_eligible_packets st i =
  List.filter
    (fun ((p : Packet.Proc.t), _) -> not (Hashtbl.mem st.ineligible p.id))
    (with_latencies (Proc_switch.queue st.opt_sw i))

let lwd_all_packets st =
  let acc = ref [] in
  for i = 0 to Proc_switch.n st.lwd_sw - 1 do
    acc := lwd_queue_packets st i @ !acc
  done;
  !acc

let lwd_latency_of st lwd_id =
  List.find_map
    (fun ((q : Packet.Proc.t), lat) -> if q.id = lwd_id then Some lat else None)
    (lwd_all_packets st)

let image_of st opt_id =
  match Hashtbl.find_opt st.a0 opt_id with
  | Some q -> Some (`A0, q)
  | None -> (
    match Hashtbl.find_opt st.a1 opt_id with
    | Some q -> Some (`A1, q)
    | None -> None)

let clear_mapping st opt_id =
  (match Hashtbl.find_opt st.a0 opt_id with
  | Some q ->
    Hashtbl.remove st.a0 opt_id;
    Hashtbl.remove st.a0_inv q
  | None -> ());
  match Hashtbl.find_opt st.a1 opt_id with
  | Some q ->
    Hashtbl.remove st.a1 opt_id;
    Hashtbl.remove st.a1_inv q
  | None -> ()

(* Step A1 (also A2's reassignment): bind an eligible OPT packet to some LWD
   buffered packet carrying no A1 image, latency-dominated; take the
   largest-latency feasible candidate, leaving low-latency packets free for
   tighter future constraints. *)
let assign_a1 st ~context (p : Packet.Proc.t) ~lat_p =
  let best = ref None in
  List.iter
    (fun ((q : Packet.Proc.t), lat_q) ->
      if (not (Hashtbl.mem st.a1_inv q.id)) && lat_q <= lat_p then
        match !best with
        | Some (_, best_lat) when best_lat >= lat_q -> ()
        | Some _ | None -> best := Some (q, lat_q))
    (lwd_all_packets st);
  match !best with
  | Some (q, _) ->
    Hashtbl.replace st.a1 p.id q.id;
    Hashtbl.replace st.a1_inv q.id p.id
  | None ->
    violate st "%s: no A1 target for OPT packet #%d (lat %d)" context p.id
      lat_p

(* Charge one transmitted-or-doomed OPT packet to the transmitted LWD packet
   [q_id]. *)
let charge st q_id opt_id =
  let n = 1 + Option.value ~default:0 (Hashtbl.find_opt st.absorbed q_id) in
  Hashtbl.replace st.absorbed q_id n;
  if n > st.max_images then st.max_images <- n;
  if n > 2 then
    violate st "T0: LWD packet #%d absorbed %d OPT packets" q_id n;
  Hashtbl.replace st.ineligible opt_id q_id

(* The paper's literal Lemma 8 positional invariant, tracked separately. *)
let count_strict_mismatches st =
  for i = 0 to Proc_switch.n st.opt_sw - 1 do
    let lwd = Array.of_list (lwd_queue_packets st i) in
    List.iteri
      (fun l ((_ : Packet.Proc.t), lat_p) ->
        if l < Array.length lwd then begin
          let _, lat_q = lwd.(l) in
          if lat_p < lat_q then
            st.strict_a0_mismatches <- st.strict_a0_mismatches + 1
        end)
      (opt_eligible_packets st i)
  done

(* Repaired-scheme invariants: every eligible OPT packet carries exactly one
   explicit image with a live, latency-dominated target. *)
let check st ~context ~latencies =
  for i = 0 to Proc_switch.n st.opt_sw - 1 do
    List.iter
      (fun ((p : Packet.Proc.t), lat_p) ->
        match image_of st p.id with
        | None ->
          violate st "%s: eligible OPT packet #%d (Q%d) unmapped" context p.id
            i
        | Some (kind, q_id) -> (
          let kind = match kind with `A0 -> "A0" | `A1 -> "A1" in
          match lwd_latency_of st q_id with
          | None ->
            violate st "%s: %s target #%d of OPT #%d left the buffer" context
              kind q_id p.id
          | Some lat_q ->
            if latencies && lat_p < lat_q then
              violate st "%s: %s latency violated: OPT #%d lat %d < LWD #%d lat %d"
                context kind p.id lat_p q_id lat_q))
      (opt_eligible_packets st i)
  done

(* One processing cycle for a port of one switch (speedup is 1); returns the
   transmitted packet, if any. *)
let serve sw i =
  let sent = ref None in
  ignore (Proc_switch.serve_port sw i ~on_transmit:(fun p -> sent := Some p));
  !sent

let run ~config ~opponent ~trace ~slots ?(check_every_event = true) () =
  if config.Proc_config.speedup <> 1 then
    invalid_arg "Mapping_certifier.run: Theorem 7's setting has speedup 1";
  let st =
    {
      lwd_sw = Proc_switch.create config;
      opt_sw = Proc_switch.create config;
      lwd = P_lwd.make config;
      opponent;
      ineligible = Hashtbl.create 1024;
      a0 = Hashtbl.create 256;
      a0_inv = Hashtbl.create 256;
      a1 = Hashtbl.create 256;
      a1_inv = Hashtbl.create 256;
      pending = Hashtbl.create 64;
      absorbed = Hashtbl.create 1024;
      lwd_done = Hashtbl.create 1024;
      events = 0;
      violations = [];
      violation_count = 0;
      strict_a0_mismatches = 0;
      opt_transmitted = 0;
      lwd_transmitted = 0;
      max_images = 0;
    }
  in
  (* The paper's induction is per mapping change, so the literal Lemma 8
     counter runs at every latency-coherent event (arrivals and phase
     boundaries), not only at slot ends. *)
  let event ?(latencies = true) context =
    st.events <- st.events + 1;
    if check_every_event then check st ~context ~latencies;
    if latencies then count_strict_mismatches st
  in
  (* Step T0: LWD transmitted [q]. *)
  let on_lwd_transmit (q : Packet.Proc.t) =
    st.lwd_transmitted <- st.lwd_transmitted + 1;
    Hashtbl.replace st.lwd_done q.id ();
    (match Hashtbl.find_opt st.a0_inv q.id with
    | Some opt_id ->
      Hashtbl.remove st.a0_inv q.id;
      Hashtbl.remove st.a0 opt_id;
      charge st q.id opt_id
    | None -> ());
    (match Hashtbl.find_opt st.a1_inv q.id with
    | Some opt_id ->
      Hashtbl.remove st.a1_inv q.id;
      Hashtbl.remove st.a1 opt_id;
      charge st q.id opt_id
    | None -> ());
    match Hashtbl.find_opt st.pending q.id with
    | Some opt_ids ->
      Hashtbl.remove st.pending q.id;
      List.iter (charge st q.id) opt_ids
    | None -> ()
  in
  (* The opponent transmitted [p]. *)
  let on_opt_transmit (p : Packet.Proc.t) =
    st.opt_transmitted <- st.opt_transmitted + 1;
    if Hashtbl.mem st.ineligible p.id then Hashtbl.remove st.ineligible p.id
    else begin
      match image_of st p.id with
      | None ->
        violate st
          "transmission: eligible OPT packet #%d transmitted while unmapped"
          p.id
      | Some (_, q_id) ->
        clear_mapping st p.id;
        if Hashtbl.mem st.lwd_done q_id then charge st q_id p.id
        else
          (* The image's latency is at most [p]'s, so it must complete
             before this transmission phase ends; defer the charge. *)
          Hashtbl.replace st.pending q_id
            (p.id :: Option.value ~default:[] (Hashtbl.find_opt st.pending q_id))
    end
  in
  let handle_arrival (a : Arrival.t) =
    (* LWD first ("q can be p" in the paper's step A0). *)
    (match Proc_policy.admit st.lwd st.lwd_sw ~dest:a.dest with
    | Decision.Accept ->
      let q = Proc_switch.accept st.lwd_sw ~dest:a.dest in
      (* Repaired step A3 / proof case (4): the newly covered OPT packet
         trades its A1 assignment for the positional pairing — but only
         when the latency constraint actually holds (the uncovered gap:
         after a push-out the opponent can be a cycle ahead, and the fresh
         positional pair is invalid; such packets keep their A1). *)
      let l = Proc_switch.queue_length st.lwd_sw a.dest in
      (match List.nth_opt (opt_eligible_packets st a.dest) (l - 1) with
      | Some (p, lat_p) when not (Hashtbl.mem st.a0 p.id) ->
        let lat_q =
          Option.value ~default:max_int (lwd_latency_of st q.id)
        in
        if lat_p >= lat_q && not (Hashtbl.mem st.a0_inv q.id) then begin
          clear_mapping st p.id;
          Hashtbl.replace st.a0 p.id q.id;
          Hashtbl.replace st.a0_inv q.id p.id
        end
      | Some _ | None -> ())
    | Decision.Push_out { victim } ->
      let p' = Proc_switch.push_out st.lwd_sw ~victim in
      (* Step A2: collect and reassign the OPT packets mapped to p'. *)
      let orphans = ref [] in
      (match Hashtbl.find_opt st.a0_inv p'.id with
      | Some opt_id ->
        Hashtbl.remove st.a0_inv p'.id;
        Hashtbl.remove st.a0 opt_id;
        orphans := opt_id :: !orphans
      | None -> ());
      (match Hashtbl.find_opt st.a1_inv p'.id with
      | Some opt_id ->
        Hashtbl.remove st.a1_inv p'.id;
        Hashtbl.remove st.a1 opt_id;
        orphans := opt_id :: !orphans
      | None -> ());
      ignore (Proc_switch.accept st.lwd_sw ~dest:a.dest);
      List.iter
        (fun opt_id ->
          for i = 0 to Proc_switch.n st.opt_sw - 1 do
            List.iter
              (fun ((p : Packet.Proc.t), lat_p) ->
                if p.id = opt_id then assign_a1 st ~context:"A2" p ~lat_p)
              (opt_eligible_packets st i)
          done)
        !orphans
    | Decision.Drop -> ());
    (* Opponent side (non-push-out). *)
    (match Proc_policy.admit st.opponent st.opt_sw ~dest:a.dest with
    | Decision.Accept ->
      let p = Proc_switch.accept st.opt_sw ~dest:a.dest in
      let eligible = opt_eligible_packets st a.dest in
      let l = List.length eligible in
      let lat_p = match List.nth_opt eligible (l - 1) with
        | Some (_, lat) -> lat
        | None -> assert false
      in
      (* Step A0 at acceptance: positional partner, if the constraint and
         availability allow; A1 otherwise. *)
      let partner = List.nth_opt (lwd_queue_packets st a.dest) (l - 1) in
      (match partner with
      | Some (q, lat_q)
        when lat_p >= lat_q && not (Hashtbl.mem st.a0_inv q.id) ->
        Hashtbl.replace st.a0 p.id q.id;
        Hashtbl.replace st.a0_inv q.id p.id
      | Some _ | None -> assign_a1 st ~context:"A1(arrival)" p ~lat_p)
    | Decision.Push_out _ ->
      violate st "opponent pushed out: not a valid Theorem 7 opponent"
    | Decision.Drop -> ());
    event "arrival"
  in
  let transmission_phase () =
    let opt_served = Array.make (Proc_config.n config) false in
    for i = 0 to Proc_config.n config - 1 do
      if not (Work_queue.is_empty (Proc_switch.queue st.lwd_sw i)) then begin
        (match serve st.lwd_sw i with
        | Some q -> on_lwd_transmit q
        | None -> ());
        if not (Work_queue.is_empty (Proc_switch.queue st.opt_sw i)) then begin
          opt_served.(i) <- true;
          match serve st.opt_sw i with
          | Some p -> on_opt_transmit p
          | None -> ()
        end;
        event ~latencies:false "transmission(lwd port)"
      end
    done;
    for i = 0 to Proc_config.n config - 1 do
      if
        (not opt_served.(i))
        && not (Work_queue.is_empty (Proc_switch.queue st.opt_sw i))
      then begin
        (match serve st.opt_sw i with
        | Some p -> on_opt_transmit p
        | None -> ());
        event ~latencies:false "transmission(opt port)"
      end
    done;
    (* Deferred charges must have resolved within the phase. *)
    Hashtbl.iter
      (fun q_id opt_ids ->
        violate st
          "end of phase: OPT packet(s) %s transmitted but their image #%d \
           did not complete in the same phase"
          (String.concat "," (List.map string_of_int opt_ids))
          q_id)
      st.pending;
    Hashtbl.reset st.pending;
    event "end of transmission phase"
  in
  for slot = 0 to slots - 1 do
    List.iter handle_arrival (trace slot);
    transmission_phase ();
    Proc_switch.advance_slot st.lwd_sw;
    Proc_switch.advance_slot st.opt_sw
  done;
  {
    events = st.events;
    violations = List.rev st.violations;
    violation_count = st.violation_count;
    strict_a0_mismatches = st.strict_a0_mismatches;
    opt_transmitted = st.opt_transmitted;
    lwd_transmitted = st.lwd_transmitted;
    max_images = st.max_images;
  }

let pp_report ppf (r : report) =
  Format.fprintf ppf
    "events=%d violations=%d strict_a0_mismatches=%d opt=%d lwd=%d \
     max_images=%d"
    r.events r.violation_count r.strict_a0_mismatches r.opt_transmitted
    r.lwd_transmitted r.max_images;
  List.iter (fun v -> Format.fprintf ppf "@.  %s" v) r.violations
