lib/analysis/mapping_certifier.mli: Format Smbm_core
