lib/analysis/mapping_certifier.ml: Array Arrival Decision Format Hashtbl List Option P_lwd Packet Printf Proc_config Proc_policy Proc_switch Smbm_core String Work_queue
