type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float; (* sum of squared deviations from the running mean *)
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let clear t =
  t.n <- 0;
  t.mean <- 0.0;
  t.m2 <- 0.0;
  t.min <- infinity;
  t.max <- neg_infinity

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)

let min t =
  if t.n = 0 then invalid_arg "Running_stats.min: no samples";
  t.min

let max t =
  if t.n = 0 then invalid_arg "Running_stats.max: no samples";
  t.max

let sum t = t.mean *. float_of_int t.n

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let nf = float_of_int n in
    let mean = a.mean +. (delta *. float_of_int b.n /. nf) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. nf)
    in
    {
      n;
      mean;
      m2;
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
    }
  end

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" t.n (mean t)
      (stddev t) t.min t.max
