type t = {
  k : int;
  counts : int array; (* counts.(i) = multiplicity of key i, index 0 unused *)
  mutable size : int;
  mutable sum : int;
}

let create ~k =
  if k <= 0 then invalid_arg "Count_multiset.create: k must be positive";
  { k; counts = Array.make (k + 1) 0; size = 0; sum = 0 }

let k t = t.k
let size t = t.size
let is_empty t = t.size = 0

let check_key t key =
  if key < 1 || key > t.k then invalid_arg "Count_multiset: key out of range"

let count t key =
  check_key t key;
  t.counts.(key)

let add t key =
  check_key t key;
  t.counts.(key) <- t.counts.(key) + 1;
  t.size <- t.size + 1;
  t.sum <- t.sum + key

let remove t key =
  check_key t key;
  if t.counts.(key) = 0 then invalid_arg "Count_multiset.remove: absent key";
  t.counts.(key) <- t.counts.(key) - 1;
  t.size <- t.size - 1;
  t.sum <- t.sum - key

let min_key t =
  let rec scan i = if i > t.k then None else if t.counts.(i) > 0 then Some i else scan (i + 1) in
  scan 1

let max_key t =
  let rec scan i = if i < 1 then None else if t.counts.(i) > 0 then Some i else scan (i - 1) in
  scan t.k

let remove_min t =
  match min_key t with
  | None -> None
  | Some key ->
    remove t key;
    Some key

let remove_max t =
  match max_key t with
  | None -> None
  | Some key ->
    remove t key;
    Some key

let sum t = t.sum

let fold f acc t =
  let acc = ref acc in
  for key = 1 to t.k do
    if t.counts.(key) > 0 then acc := f !acc ~key ~count:t.counts.(key)
  done;
  !acc

let clear t =
  Array.fill t.counts 0 (t.k + 1) 0;
  t.size <- 0;
  t.sum <- 0

let decrement_smallest t ~budget =
  (* Scan keys upward; moved elements land on key-1, which has already been
     scanned, so no element is served twice within one call. *)
  let remaining = ref (min budget t.size) in
  let transmitted = ref 0 in
  let key = ref 1 in
  while !remaining > 0 && !key <= t.k do
    let take = min t.counts.(!key) !remaining in
    if take > 0 then begin
      t.counts.(!key) <- t.counts.(!key) - take;
      t.sum <- t.sum - take;
      remaining := !remaining - take;
      if !key = 1 then begin
        (* Served elements complete and leave. *)
        t.size <- t.size - take;
        transmitted := !transmitted + take
      end
      else t.counts.(!key - 1) <- t.counts.(!key - 1) + take
    end;
    incr key
  done;
  !transmitted

let serve_srpt t ~budget =
  let budget = ref budget in
  let transmitted = ref 0 in
  let continue = ref true in
  while !continue && !budget > 0 && t.size > 0 do
    match min_key t with
    | None -> continue := false
    | Some r ->
      if !budget >= r then begin
        (* Complete as many key-r elements as the budget allows. *)
        let complete = min t.counts.(r) (!budget / r) in
        t.counts.(r) <- t.counts.(r) - complete;
        t.size <- t.size - complete;
        t.sum <- t.sum - (complete * r);
        transmitted := !transmitted + complete;
        budget := !budget - (complete * r);
        if t.counts.(r) > 0 then begin
          (* Partial service of one more key-r element. *)
          if !budget > 0 then begin
            t.counts.(r) <- t.counts.(r) - 1;
            t.counts.(r - !budget) <- t.counts.(r - !budget) + 1;
            t.sum <- t.sum - !budget;
            budget := 0
          end
          else continue := false
        end
      end
      else begin
        t.counts.(r) <- t.counts.(r) - 1;
        t.counts.(r - !budget) <- t.counts.(r - !budget) + 1;
        t.sum <- t.sum - !budget;
        budget := 0
      end
  done;
  !transmitted

let remove_largest t ~budget =
  let remaining = ref (min budget t.size) in
  let value = ref 0 in
  let key = ref t.k in
  while !remaining > 0 && !key >= 1 do
    let take = min t.counts.(!key) !remaining in
    if take > 0 then begin
      t.counts.(!key) <- t.counts.(!key) - take;
      t.size <- t.size - take;
      t.sum <- t.sum - (take * !key);
      value := !value + (take * !key);
      remaining := !remaining - take
    end;
    decr key
  done;
  !value
