(** Harmonic numbers [H_n = 1 + 1/2 + ... + 1/n], memoized.

    The paper's NHDT thresholds and several closed-form lower bounds are
    stated in terms of harmonic numbers. *)

val euler_gamma : float
(** The Euler–Mascheroni constant (0.5772...). *)

val h : int -> float
(** [h n] is [H_n]; [h 0 = 0].  Values are memoized in a growable table.
    @raise Invalid_argument for negative [n]. *)

val h_range : int -> int -> float
(** [h_range lo hi] is [1/lo + 1/(lo+1) + ... + 1/hi] (0 when [lo > hi]).
    Requires [lo >= 1]. *)

val approx : int -> float
(** [approx n] is the asymptotic [ln n + gamma + 1/(2n)]; useful for
    cross-checking at very large [n]. *)
