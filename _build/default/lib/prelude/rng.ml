type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let float t =
  (* 53 high bits scaled to [0, 1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r bound64 in
    if Int64.sub r v > Int64.sub Int64.max_int (Int64.sub bound64 1L) then draw ()
    else Int64.to_int v
  in
  draw ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t ~p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t < p

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  let u = 1.0 -. float t in
  -.log u /. rate

(* Standard normal via Box-Muller; one value per call is plenty here. *)
let normal t =
  let u1 = 1.0 -. float t and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let poisson t ~lambda =
  if lambda < 0.0 then invalid_arg "Rng.poisson: lambda must be non-negative";
  if lambda = 0.0 then 0
  else if lambda < 30.0 then begin
    (* Knuth's product method. *)
    let limit = exp (-.lambda) in
    let rec loop k prod =
      let prod = prod *. float t in
      if prod <= limit then k else loop (k + 1) prod
    in
    loop 0 1.0
  end
  else begin
    (* Normal approximation with continuity correction; adequate for traffic
       generation at large means. *)
    let x = (normal t *. sqrt lambda) +. lambda +. 0.5 in
    if x < 0.0 then 0 else int_of_float x
  end

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0, 1]";
  if p = 1.0 then 0
  else
    let u = 1.0 -. float t in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let pareto_int t ~alpha ~max:cap =
  if alpha <= 0.0 then invalid_arg "Rng.pareto_int: alpha must be positive";
  if cap < 1 then invalid_arg "Rng.pareto_int: max must be >= 1";
  let u = 1.0 -. float t in
  let x = Float.pow u (-1.0 /. alpha) in
  if x >= float_of_int cap then cap else int_of_float x

let pareto_int_mean ~alpha ~max:cap =
  if alpha <= 0.0 then invalid_arg "Rng.pareto_int_mean: alpha must be positive";
  if cap < 1 then invalid_arg "Rng.pareto_int_mean: max must be >= 1";
  (* E[X] = sum_(x=1..max) P(X >= x) = sum x^(-alpha). *)
  let mean = ref 0.0 in
  for x = 1 to cap do
    mean := !mean +. Float.pow (float_of_int x) (-.alpha)
  done;
  !mean

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))
