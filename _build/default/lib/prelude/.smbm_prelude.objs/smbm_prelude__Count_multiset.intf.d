lib/prelude/count_multiset.mli:
