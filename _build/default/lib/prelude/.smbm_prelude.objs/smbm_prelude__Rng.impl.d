lib/prelude/rng.ml: Array Float Int64
