lib/prelude/histogram.ml: Array Float Format
