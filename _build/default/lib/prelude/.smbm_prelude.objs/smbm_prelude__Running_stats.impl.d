lib/prelude/running_stats.ml: Float Format
