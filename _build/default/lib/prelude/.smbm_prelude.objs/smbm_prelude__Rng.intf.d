lib/prelude/rng.mli:
