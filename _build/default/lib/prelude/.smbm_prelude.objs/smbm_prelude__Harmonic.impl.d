lib/prelude/harmonic.ml: Array
