lib/prelude/deque.mli:
