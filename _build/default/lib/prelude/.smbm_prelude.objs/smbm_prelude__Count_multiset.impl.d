lib/prelude/count_multiset.ml: Array
