lib/prelude/running_stats.mli: Format
