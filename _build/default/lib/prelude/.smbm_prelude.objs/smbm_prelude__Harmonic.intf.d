lib/prelude/harmonic.mli:
