lib/prelude/deque.ml: Array List
