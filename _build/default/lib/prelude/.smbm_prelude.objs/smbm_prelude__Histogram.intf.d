lib/prelude/histogram.mli: Format
