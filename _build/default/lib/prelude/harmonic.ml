let euler_gamma = 0.57721566490153286

(* Memo table: table.(i) = H_i.  Grows by doubling. *)
let table = ref [| 0.0 |]
let filled = ref 1 (* number of valid entries in [table] *)

let ensure n =
  let cap = Array.length !table in
  if n + 1 > cap then begin
    let cap' = max (n + 1) (2 * cap) in
    let t = Array.make cap' 0.0 in
    Array.blit !table 0 t 0 !filled;
    table := t
  end;
  if n + 1 > !filled then begin
    let t = !table in
    for i = !filled to n do
      t.(i) <- t.(i - 1) +. (1.0 /. float_of_int i)
    done;
    filled := n + 1
  end

let h n =
  if n < 0 then invalid_arg "Harmonic.h: negative";
  ensure n;
  !table.(n)

let h_range lo hi =
  if lo < 1 then invalid_arg "Harmonic.h_range: lo must be >= 1";
  if lo > hi then 0.0 else h hi -. h (lo - 1)

let approx n =
  let nf = float_of_int n in
  log nf +. euler_gamma +. (1.0 /. (2.0 *. nf))
