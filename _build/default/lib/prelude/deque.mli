(** Mutable double-ended queue backed by a growable circular array.

    All operations are amortized O(1) except [iter]/[fold]/[to_list]/[get],
    which are linear or constant as expected.  The deque is the backing store
    of every per-port queue in the switch models, so it is written for
    predictable allocation behaviour: the ring only grows (by doubling) and is
    never shrunk. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ()] is an empty deque.  [capacity] is the initial ring size
    (default 16, rounded up to at least 1). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Remove all elements.  Keeps the allocated ring. *)

val push_front : 'a t -> 'a -> unit

val push_back : 'a t -> 'a -> unit

val pop_front : 'a t -> 'a
(** @raise Invalid_argument on an empty deque. *)

val pop_back : 'a t -> 'a
(** @raise Invalid_argument on an empty deque. *)

val peek_front : 'a t -> 'a
(** @raise Invalid_argument on an empty deque. *)

val peek_back : 'a t -> 'a
(** @raise Invalid_argument on an empty deque. *)

val get : 'a t -> int -> 'a
(** [get d i] is the [i]-th element counting from the front (0-based).
    @raise Invalid_argument if [i] is out of bounds. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Front-to-back iteration. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Front-to-back fold. *)

val to_list : 'a t -> 'a list
(** Front-to-back element list. *)

val of_list : 'a list -> 'a t
(** Deque whose front is the head of the list. *)
