(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic component of the simulator draws from an explicit [Rng.t]
    so that experiments are reproducible from a single seed and independent
    streams can be split off for independent traffic sources. *)

type t

val create : seed:int -> t
(** A fresh generator.  Equal seeds yield equal streams. *)

val split : t -> t
(** A statistically independent generator derived from [t]'s stream.
    Advances [t]. *)

val copy : t -> t
(** A generator with identical future output to [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound).  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on [lo, hi] inclusive.  Requires [lo <= hi]. *)

val float : t -> float
(** Uniform on [0, 1). *)

val bool : t -> bool

val bernoulli : t -> p:float -> bool
(** [true] with probability [p] (clamped to [0, 1]). *)

val exponential : t -> rate:float -> float
(** Exponential variate with the given rate (mean [1 /. rate]).
    [rate] must be positive. *)

val poisson : t -> lambda:float -> int
(** Poisson variate.  Uses Knuth's product method for small means and a
    normal approximation for large ones.  [lambda] must be non-negative. *)

val geometric : t -> p:float -> int
(** Number of failures before the first success, [p] in (0, 1]. *)

val pareto_int : t -> alpha:float -> max:int -> int
(** Heavy-tailed integer on [1, max]: [floor(U^(-1/alpha))] clamped, so
    [P(X >= x) = x^(-alpha)] below the cap.  [alpha] must be positive,
    [max >= 1]. *)

val pareto_int_mean : alpha:float -> max:int -> float
(** Exact mean of {!pareto_int}: [sum_(x=1..max) x^(-alpha)]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
