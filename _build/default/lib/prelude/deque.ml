type 'a t = {
  mutable ring : 'a option array;
  mutable head : int; (* index of the front element when len > 0 *)
  mutable len : int;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { ring = Array.make capacity None; head = 0; len = 0 }

let length d = d.len
let is_empty d = d.len = 0

let clear d =
  Array.fill d.ring 0 (Array.length d.ring) None;
  d.head <- 0;
  d.len <- 0

let capacity d = Array.length d.ring

(* Physical index of the [i]-th logical element. *)
let index d i = (d.head + i) mod capacity d

let grow d =
  let old = d.ring in
  let n = Array.length old in
  let ring = Array.make (2 * n) None in
  for i = 0 to d.len - 1 do
    ring.(i) <- old.(index d i)
  done;
  d.ring <- ring;
  d.head <- 0

let push_back d x =
  if d.len = capacity d then grow d;
  d.ring.(index d d.len) <- Some x;
  d.len <- d.len + 1

let push_front d x =
  if d.len = capacity d then grow d;
  let head = (d.head - 1 + capacity d) mod capacity d in
  d.ring.(head) <- Some x;
  d.head <- head;
  d.len <- d.len + 1

let unsome = function
  | Some x -> x
  | None -> assert false

let pop_front d =
  if d.len = 0 then invalid_arg "Deque.pop_front: empty";
  let x = unsome d.ring.(d.head) in
  d.ring.(d.head) <- None;
  d.head <- (d.head + 1) mod capacity d;
  d.len <- d.len - 1;
  x

let pop_back d =
  if d.len = 0 then invalid_arg "Deque.pop_back: empty";
  let i = index d (d.len - 1) in
  let x = unsome d.ring.(i) in
  d.ring.(i) <- None;
  d.len <- d.len - 1;
  x

let peek_front d =
  if d.len = 0 then invalid_arg "Deque.peek_front: empty";
  unsome d.ring.(d.head)

let peek_back d =
  if d.len = 0 then invalid_arg "Deque.peek_back: empty";
  unsome d.ring.(index d (d.len - 1))

let get d i =
  if i < 0 || i >= d.len then invalid_arg "Deque.get: out of bounds";
  unsome d.ring.(index d i)

let iter f d =
  for i = 0 to d.len - 1 do
    f (unsome d.ring.(index d i))
  done

let fold f acc d =
  let acc = ref acc in
  iter (fun x -> acc := f !acc x) d;
  !acc

let to_list d = List.rev (fold (fun acc x -> x :: acc) [] d)

let of_list xs =
  let d = create ~capacity:(max 1 (List.length xs)) () in
  List.iter (push_back d) xs;
  d
