(** Multiset over the bounded integer universe [1..k], stored as counts.

    This is the buffer representation of the single-priority-queue reference
    algorithm used as the paper's stand-in for OPT: packets there are
    exchangeable given their key (residual work, or value), so per-key counts
    suffice and every operation is O(k). *)

type t

val create : k:int -> t
(** Empty multiset over keys [1..k].  [k] must be positive. *)

val k : t -> int

val size : t -> int
(** Total number of elements. *)

val is_empty : t -> bool

val count : t -> int -> int
(** [count t key] for [key] in [1..k]. *)

val add : t -> int -> unit
(** @raise Invalid_argument if the key is outside [1..k]. *)

val remove : t -> int -> unit
(** Remove one occurrence. @raise Invalid_argument if the key is absent. *)

val min_key : t -> int option
val max_key : t -> int option

val remove_min : t -> int option
(** Remove and return one occurrence of the smallest key. *)

val remove_max : t -> int option
(** Remove and return one occurrence of the largest key. *)

val sum : t -> int
(** Sum of all elements (keys weighted by multiplicity). *)

val fold : ('acc -> key:int -> count:int -> 'acc) -> 'acc -> t -> 'acc
(** Fold over keys with non-zero count, in increasing key order. *)

val clear : t -> unit

val decrement_smallest : t -> budget:int -> int
(** [decrement_smallest t ~budget] gives one unit of service to each of the
    [min budget (size t)] smallest elements: each selected element's key drops
    by one, and elements reaching key 0 leave the multiset.  Returns the
    number of elements that reached 0 (were "transmitted").  Elements already
    served in this call are not served twice. *)

val remove_largest : t -> budget:int -> int
(** [remove_largest t ~budget] removes the [min budget (size t)] largest
    elements outright and returns the sum of their keys.  This is the value
    model's transmission step (largest values first, unit work). *)

val serve_srpt : t -> budget:int -> int
(** [serve_srpt t ~budget] spends up to [budget] work units on the smallest
    elements, shortest-remaining-first and run-to-completion: the smallest
    element is worked on (and removed at key 0) before any budget goes to
    the next one.  Returns the number of completed elements.  Unlike
    {!decrement_smallest}, several units may go into one element within a
    single call — this upper-bounds any switch schedule whose queues apply
    multiple cycles per slot (speedup [C > 1]). *)
