(** Streaming first- and second-moment statistics (Welford's algorithm).

    Used by the simulator to accumulate occupancy and latency statistics
    without storing samples. *)

type t

val create : unit -> t

val clear : t -> unit

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0 when no samples have been added. *)

val variance : t -> float
(** Unbiased sample variance; 0 for fewer than two samples. *)

val stddev : t -> float

val min : t -> float
(** @raise Invalid_argument when no samples have been added. *)

val max : t -> float
(** @raise Invalid_argument when no samples have been added. *)

val sum : t -> float

val merge : t -> t -> t
(** Statistics of the union of the two sample streams. *)

val pp : Format.formatter -> t -> unit
