open Smbm_core

let finite_bound ~k = float_of_int k
let asymptotic_bound ~k = finite_bound ~k

let measure ?(k = 16) ?(buffer = 160) ?(episodes = 5) () =
  let config = Proc_config.contiguous ~k ~buffer () in
  let episode = buffer in
  let trace =
    Runner.episodic ~episode
      ~burst:(Runner.burst buffer (Arrival.make ~dest:0 ()))
      ~trickle:(fun _ -> [])
  in
  Runner.run_proc ~config ~alg:(P_nest.make config)
    ~opt:(Quota.proc ~quota:(fun _ -> buffer) ())
    ~trace ~slots:(episodes * episode) ()
