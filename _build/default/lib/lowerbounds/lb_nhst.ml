open Smbm_prelude
open Smbm_core

let finite_bound ~k = float_of_int k *. Harmonic.h k
let asymptotic_bound ~k = finite_bound ~k

let measure ?(k = 8) ?(buffer = 400) ?(episodes = 2) () =
  let config = Proc_config.contiguous ~k ~buffer () in
  let episode = k * buffer in
  let trace =
    Runner.episodic ~episode
      ~burst:(Runner.burst buffer (Arrival.make ~dest:(k - 1) ()))
      ~trickle:(fun _ -> [])
  in
  Runner.run_proc ~config ~alg:(P_nhst.make config)
    ~opt:(Quota.proc ~quota:(fun _ -> buffer) ())
    ~trace ~slots:(episodes * episode) ()
