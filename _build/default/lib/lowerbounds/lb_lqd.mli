(** Theorem 4: LQD is at least [sqrt k]-competitive under heterogeneous
    processing.

    Construction (contiguous configuration): a burst of [B] work-1 packets
    plus [B] packets of each heavy work [k, k-1, .., k-m+1] ([m = sqrt k]).
    LQD balances queue lengths, keeping only [~B/(m+1)] of the valuable 1s;
    the scripted OPT keeps one packet per heavy queue and [B - m] 1s.
    Heavy trickles keep OPT's heavy ports busy; episodes of [B] slots with
    flushouts. *)

val choose_m : k:int -> int
(** [round(sqrt k)], clamped to [1 .. k]. *)

val finite_bound : k:int -> buffer:int -> float
(** The proof's episode ratio
    [1 + ((m-1)/m - m/B) / (1/m + (1 - m/B) beta_{k,m})] with
    [beta_{k,m} = 1/k + .. + 1/(k-m+1)]. *)

val asymptotic_bound : k:int -> float

val measure :
  ?k:int -> ?buffer:int -> ?episodes:int -> unit -> Runner.measured
(** Defaults: k = 64, B = 1024, 5 episodes. *)
