open Smbm_core

let finite_bound ~buffer =
  let b = float_of_int buffer in
  12.0 *. (b -. 3.0) /. ((9.0 *. b) -. 18.0)

let asymptotic_bound () = 4.0 /. 3.0

let values = [ 1; 2; 3; 6 ]

let measure ?(buffer = 1200) ?(episodes = 5) () =
  if buffer mod 12 <> 0 then
    invalid_arg "Lb_mrd.measure: buffer must be divisible by 12";
  let config = Value_config.make ~ports:6 ~max_value:6 ~buffer () in
  let burst =
    List.concat_map
      (fun v -> Runner.burst buffer (Arrival.make ~dest:(v - 1) ~value:v ()))
      values
  in
  let trickle _t =
    List.filter_map
      (fun v ->
        if v < 6 then Some (Arrival.make ~dest:(v - 1) ~value:v ()) else None)
      values
  in
  let episode = buffer in
  let trace = Runner.episodic ~episode ~burst ~trickle in
  let quota dest =
    if dest = 5 then buffer - 3
    else if List.mem (dest + 1) values then 1
    else 0
  in
  Runner.run_value ~config ~alg:(V_mrd.make config)
    ~opt:(Quota.value ~quota ()) ~trace ~slots:(episodes * episode)
    ~flush_every:episode ()
