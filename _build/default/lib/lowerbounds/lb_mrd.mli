(** Theorem 11: MRD is at least 4/3-competitive when each packet's value
    equals its output port label.

    Construction over ports with values {1, 2, 3, 6}: a burst of [B] packets
    of each value.  Balancing [|Q| / average], MRD keeps [B/12] 1s, [B/6]
    2s, [B/4] 3s and [B/2] 6s; the scripted OPT keeps [B - 3] 6s and one of
    each other value.  Values 1-3 keep trickling; episodes of [B] slots
    with flushouts. *)

val finite_bound : buffer:int -> float
(** [12(B-3) / (9B - 18)]. *)

val asymptotic_bound : unit -> float
(** 4/3. *)

val measure : ?buffer:int -> ?episodes:int -> unit -> Runner.measured
(** Defaults: B = 1200 (must be divisible by 12), 5 episodes. *)
