(** Theorem 10: MVD is at least [(m-1)/2]-competitive for [m = min(k, B)].

    Construction with value = port label: every slot, [B] packets of every
    value [1 .. m] arrive.  MVD keeps only value-m packets and transmits one
    per slot (value m), while the scripted OPT holds one packet of every
    value and transmits total value [m(m+1)/2] per slot. *)

val finite_bound : k:int -> buffer:int -> float
(** The exact steady-state ratio [(m+1)/2]. *)

val asymptotic_bound : k:int -> buffer:int -> float
(** The paper's stated [(m-1)/2]. *)

val measure : ?k:int -> ?buffer:int -> ?slots:int -> unit -> Runner.measured
(** Defaults: k = 12, B = 12, 600 slots. *)
