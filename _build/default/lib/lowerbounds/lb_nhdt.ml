open Smbm_prelude
open Smbm_core

let choose_m ~k =
  let kf = float_of_int k in
  let m = kf -. sqrt (kf /. log kf) in
  max 1 (min (k - 1) (int_of_float (Float.round m)))

let finite_bound ~k ~buffer =
  let m = choose_m ~k in
  let b = float_of_int buffer in
  let a = b /. Harmonic.h k in
  let active = b -. float_of_int k +. float_of_int m in
  let hk_hm = Harmonic.h k -. Harmonic.h m in
  active *. (1.0 +. hk_hm)
  /. ((active *. hk_hm) +. (a /. float_of_int (k - m + 1)))

let asymptotic_bound ~k =
  let kf = float_of_int k in
  0.5 *. sqrt (kf *. log kf)

let measure ?(k = 64) ?(buffer = 2048) ?(episodes = 3) () =
  let m = choose_m ~k in
  let config = Proc_config.contiguous ~k ~buffer () in
  (* Heavy kinds: the k - m largest works k, k-1, .., m+1 (port w-1 requires
     work w); the proof's split leaves only sqrt(k / ln k) of them, so both
     algorithms process heavies at a trickle of H_k - H_m packets per slot
     and the ratio is decided by who holds the 1s. *)
  let heavy_works = List.init (k - m) (fun i -> k - i) in
  let burst =
    List.concat_map
      (fun w -> Runner.burst buffer (Arrival.make ~dest:(w - 1) ()))
      heavy_works
    @ Runner.burst buffer (Arrival.make ~dest:0 ())
  in
  let trickle t =
    List.filter_map
      (fun w ->
        if t mod w = 0 then Some (Arrival.make ~dest:(w - 1) ()) else None)
      heavy_works
  in
  let episode = buffer in
  let trace = Runner.episodic ~episode ~burst ~trickle in
  let quota dest =
    if dest = 0 then buffer - (k - m)
    else if dest >= m then 1
    else 0
  in
  Runner.run_proc ~config ~alg:(P_nhdt.make config)
    ~opt:(Quota.proc ~quota ()) ~trace ~slots:(episodes * episode)
    ~flush_every:episode ()
