open Smbm_core

let m_of ~k ~buffer = min k buffer
let finite_bound ~k ~buffer = float_of_int (m_of ~k ~buffer + 1) /. 2.0
let asymptotic_bound ~k ~buffer = float_of_int (m_of ~k ~buffer - 1) /. 2.0

let measure ?(k = 12) ?(buffer = 12) ?(slots = 600) () =
  let m = m_of ~k ~buffer in
  let config = Value_config.make ~ports:k ~max_value:k ~buffer () in
  let full_set =
    List.concat_map
      (fun v -> Runner.burst buffer (Arrival.make ~dest:(v - 1) ~value:v ()))
      (List.init m (fun i -> i + 1))
  in
  let trace _slot = full_set in
  Runner.run_value ~config ~alg:(V_mvd.make config)
    ~opt:(Quota.value ~quota:(fun dest -> if dest < m then 1 else 0) ())
    ~trace ~slots ()
