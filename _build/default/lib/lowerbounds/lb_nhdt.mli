(** Theorem 3: NHDT is at least [1/2 sqrt(k ln k)]-competitive.

    Construction (contiguous configuration, B >> k): a descending burst of
    [B] packets of each of the [k - m] heaviest works [k, k-1, .., m+1],
    then [B] work-1 packets.  NHDT's harmonic thresholds admit [A/i] packets
    of the i-th kind ([A = B / H_k]), starving the 1s; the scripted OPT
    keeps one packet per heavy queue and fills the rest with 1s.  Heavy packets trickle in (one
    per queue per service period) to keep OPT's heavy ports busy; the
    episode repeats every [B] slots with a flushout. *)

val choose_m : k:int -> int
(** The proof's optimizing split [m = k - sqrt(k / ln k)], clamped to
    [1 .. k-1]. *)

val finite_bound : k:int -> buffer:int -> float
(** The episode ratio from the proof at finite (k, B), with [H] in place of
    [ln]:
    [(B-k+m)(1 + H_k - H_m) / ((B-k+m)(H_k - H_m) + A / (k-m+1))]. *)

val asymptotic_bound : k:int -> float
(** [1/2 sqrt(k ln k)]. *)

val measure :
  ?k:int -> ?buffer:int -> ?episodes:int -> unit -> Runner.measured
(** Defaults: k = 64, B = 2048, 3 episodes. *)
