(** Registry of all adversarial lower-bound constructions (Theorems 1-6 of
    the processing model, 9-11 of the value model, plus Section IV-B's
    greedy non-push-out remark), each paired with its closed-form bound so
    that benches and tests can compare measured against theory at one
    place. *)

type t = {
  theorem : string;  (** e.g. "Thm 4" *)
  policy : string;  (** the policy under attack *)
  model : [ `Proc | `Value ];
  bound_text : string;  (** human-readable asymptotic bound *)
  finite_bound : float;
      (** the proof's episode ratio at this entry's default parameters *)
  asymptotic_bound : float;
  measure : unit -> Runner.measured;
      (** run the construction at the default parameters *)
}

val all : t list

val find : theorem:string -> t option
(** Lookup by theorem label, case-insensitive ("thm 4" or "Thm 4"). *)
