open Smbm_prelude
open Smbm_core

let finite_bound ~k = Harmonic.h k
let asymptotic_bound ~k = log (float_of_int k) +. Harmonic.euler_gamma

let measure ?(k = 10) ?(buffer = 60) ?(slots = 1000) () =
  if buffer < k * (k + 1) / 2 then
    invalid_arg "Lb_bpd.measure: requires B >= k(k+1)/2";
  let config = Proc_config.contiguous ~k ~buffer () in
  let full_set =
    List.concat_map
      (fun w -> Runner.burst buffer (Arrival.make ~dest:(w - 1) ()))
      (List.init k (fun i -> i + 1))
  in
  let trace _slot = full_set in
  Runner.run_proc ~config ~alg:(P_bpd.make config)
    ~opt:(Quota.proc ~quota:(fun _ -> buffer / k) ())
    ~trace ~slots ()
