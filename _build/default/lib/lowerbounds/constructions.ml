type t = {
  theorem : string;
  policy : string;
  model : [ `Proc | `Value ];
  bound_text : string;
  finite_bound : float;
  asymptotic_bound : float;
  measure : unit -> Runner.measured;
}

let all =
  [
    {
      theorem = "Thm 1";
      policy = "NHST";
      model = `Proc;
      bound_text = "kZ";
      finite_bound = Lb_nhst.finite_bound ~k:8;
      asymptotic_bound = Lb_nhst.asymptotic_bound ~k:8;
      measure = (fun () -> Lb_nhst.measure ());
    };
    {
      theorem = "Thm 2";
      policy = "NEST";
      model = `Proc;
      bound_text = "n";
      finite_bound = Lb_nest.finite_bound ~k:16;
      asymptotic_bound = Lb_nest.asymptotic_bound ~k:16;
      measure = (fun () -> Lb_nest.measure ());
    };
    {
      theorem = "Thm 3";
      policy = "NHDT";
      model = `Proc;
      bound_text = "1/2 sqrt(k ln k)";
      finite_bound = Lb_nhdt.finite_bound ~k:64 ~buffer:2048;
      asymptotic_bound = Lb_nhdt.asymptotic_bound ~k:64;
      measure = (fun () -> Lb_nhdt.measure ());
    };
    {
      theorem = "Thm 4";
      policy = "LQD";
      model = `Proc;
      bound_text = "sqrt k";
      finite_bound = Lb_lqd.finite_bound ~k:64 ~buffer:1024;
      asymptotic_bound = Lb_lqd.asymptotic_bound ~k:64;
      measure = (fun () -> Lb_lqd.measure ());
    };
    {
      theorem = "Thm 5";
      policy = "BPD";
      model = `Proc;
      bound_text = "ln k + gamma";
      finite_bound = Lb_bpd.finite_bound ~k:10;
      asymptotic_bound = Lb_bpd.asymptotic_bound ~k:10;
      measure = (fun () -> Lb_bpd.measure ());
    };
    {
      theorem = "Thm 6";
      policy = "LWD";
      model = `Proc;
      bound_text = "4/3 - 6/B";
      finite_bound = Lb_lwd.finite_bound ~buffer:1200;
      asymptotic_bound = Lb_lwd.asymptotic_bound ();
      measure = (fun () -> Lb_lwd.measure ());
    };
    {
      theorem = "SIV-B";
      policy = "Greedy";
      model = `Value;
      bound_text = "k (non-push-out remark)";
      finite_bound = Lb_greedy_value.finite_bound ~k:16;
      asymptotic_bound = Lb_greedy_value.asymptotic_bound ~k:16;
      measure = (fun () -> Lb_greedy_value.measure ());
    };
    {
      theorem = "Thm 9";
      policy = "LQD";
      model = `Value;
      bound_text = "k^(1/3)";
      finite_bound = Lb_lqd_value.finite_bound ~k:27;
      asymptotic_bound = Lb_lqd_value.asymptotic_bound ~k:27;
      measure = (fun () -> Lb_lqd_value.measure ());
    };
    {
      theorem = "Thm 10";
      policy = "MVD";
      model = `Value;
      bound_text = "(m-1)/2, m = min(k, B)";
      finite_bound = Lb_mvd.finite_bound ~k:12 ~buffer:12;
      asymptotic_bound = Lb_mvd.asymptotic_bound ~k:12 ~buffer:12;
      measure = (fun () -> Lb_mvd.measure ());
    };
    {
      theorem = "Thm 11";
      policy = "MRD";
      model = `Value;
      bound_text = "4/3";
      finite_bound = Lb_mrd.finite_bound ~buffer:1200;
      asymptotic_bound = Lb_mrd.asymptotic_bound ();
      measure = (fun () -> Lb_mrd.measure ());
    };
  ]

let find ~theorem =
  let wanted = String.lowercase_ascii theorem in
  List.find_opt (fun t -> String.lowercase_ascii t.theorem = wanted) all
