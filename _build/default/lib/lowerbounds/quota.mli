(** Static per-queue quota policies.

    The scripted OPT strategies in the paper's lower-bound proofs all take
    the same form: reserve a fixed number of buffer slots per queue (for
    example "one packet for each heavy queue, the rest for the 1s") and
    never push out.  A quota policy accepts an arrival iff its destination
    queue is below its quota and the buffer has space. *)

open Smbm_core

val proc : ?name:string -> quota:(int -> int) -> unit -> Proc_policy.t
(** [quota port] is that port's reserved slot count. *)

val value : ?name:string -> quota:(int -> int) -> unit -> Value_policy.t
