(** Shared machinery for running an adversarial construction: a trace, the
    policy under attack, and the proof's scripted OPT strategy, stepped in
    lockstep. *)

open Smbm_core

type measured = {
  alg_throughput : int;
  opt_throughput : int;
  ratio : float;  (** scripted-OPT throughput / policy throughput *)
}

val episodic :
  episode:int ->
  burst:Arrival.t list ->
  trickle:(int -> Arrival.t list) ->
  int ->
  Arrival.t list
(** [episodic ~episode ~burst ~trickle slot]: the burst arrives on the first
    slot of each [episode]-slot period; on within-episode slot [t > 0] the
    arrivals are [trickle t].  Apply partially to get a workload function. *)

val burst : int -> Arrival.t -> Arrival.t list
(** [burst h a] is [h] copies of arrival [a] (the paper's "h x w"). *)

val run_proc :
  config:Proc_config.t ->
  alg:Proc_policy.t ->
  opt:Proc_policy.t ->
  trace:(int -> Arrival.t list) ->
  slots:int ->
  ?flush_every:int ->
  unit ->
  measured
(** Objective: transmitted packets. *)

val run_value :
  config:Value_config.t ->
  alg:Value_policy.t ->
  opt:Value_policy.t ->
  trace:(int -> Arrival.t list) ->
  slots:int ->
  ?flush_every:int ->
  unit ->
  measured
(** Objective: transmitted value. *)

val measure_many :
  ?jobs:int ->
  ?on_tick:(int -> unit) ->
  (unit -> measured) list ->
  measured list
(** Run independent constructions (e.g. the [measure] thunks of
    {!Constructions.all}) sharded across a {!Smbm_par.Pool}, results in
    input order.  Each construction builds its own switches and scripted
    OPT, so runs are bit-identical to the sequential [List.map].  [jobs]
    defaults to {!Smbm_par.Pool.default_jobs}; [0] runs inline. *)
