open Smbm_core

let proc ?(name = "OPT*") ~quota () =
  Proc_policy.make ~name ~push_out:false (fun sw ~dest ->
      if Proc_switch.is_full sw then Decision.Drop
      else if Proc_switch.queue_length sw dest < quota dest then Decision.Accept
      else Decision.Drop)

let value ?(name = "OPT*") ~quota () =
  Value_policy.make ~name ~push_out:false (fun sw ~dest ~value:_ ->
      if Value_switch.is_full sw then Decision.Drop
      else if Value_switch.queue_length sw dest < quota dest then
        Decision.Accept
      else Decision.Drop)
