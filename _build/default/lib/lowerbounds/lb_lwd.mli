(** Theorem 6: LWD is at least [(4/3 - 6/B)]-competitive (contiguous case,
    [k >= 6]).

    Construction over ports with works {1, 2, 3, 6}: a burst of [B] 1s,
    [B/4] 2s, [B/6] 3s and [B/12] 6s.  LWD equalizes total work per queue,
    keeping only [B/2] of the 1s; the scripted OPT keeps one packet of each
    larger work and [B - 3] 1s.  Works 2, 3 and 6 trickle in to keep OPT's
    queues busy; episodes of [B] slots with flushouts. *)

val finite_bound : buffer:int -> float
(** [(2B - 9) / (3B/2) = 4/3 - 6/B]. *)

val asymptotic_bound : unit -> float
(** 4/3. *)

val measure : ?buffer:int -> ?episodes:int -> unit -> Runner.measured
(** Defaults: B = 1200 (must be divisible by 12), 5 episodes. *)
