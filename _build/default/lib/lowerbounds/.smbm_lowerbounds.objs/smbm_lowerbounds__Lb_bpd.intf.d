lib/lowerbounds/lb_bpd.mli: Runner
