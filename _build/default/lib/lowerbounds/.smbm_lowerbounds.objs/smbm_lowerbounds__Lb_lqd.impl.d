lib/lowerbounds/lb_lqd.ml: Arrival Float Harmonic List P_lqd Proc_config Quota Runner Smbm_core Smbm_prelude
