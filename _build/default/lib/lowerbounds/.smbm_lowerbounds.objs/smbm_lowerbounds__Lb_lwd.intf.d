lib/lowerbounds/lb_lwd.mli: Runner
