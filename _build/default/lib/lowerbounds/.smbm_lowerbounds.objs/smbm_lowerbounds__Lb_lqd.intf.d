lib/lowerbounds/lb_lqd.mli: Runner
