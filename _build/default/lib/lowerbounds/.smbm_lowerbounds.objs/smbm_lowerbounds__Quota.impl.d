lib/lowerbounds/quota.ml: Decision Proc_policy Proc_switch Smbm_core Value_policy Value_switch
