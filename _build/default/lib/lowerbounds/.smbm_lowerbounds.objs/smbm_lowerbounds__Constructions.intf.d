lib/lowerbounds/constructions.mli: Runner
