lib/lowerbounds/lb_nest.mli: Runner
