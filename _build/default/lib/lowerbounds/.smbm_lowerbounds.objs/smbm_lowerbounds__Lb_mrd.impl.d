lib/lowerbounds/lb_mrd.ml: Arrival List Quota Runner Smbm_core V_mrd Value_config
