lib/lowerbounds/lb_greedy_value.ml: Arrival Decision Quota Runner Smbm_core Value_config Value_policy Value_switch
