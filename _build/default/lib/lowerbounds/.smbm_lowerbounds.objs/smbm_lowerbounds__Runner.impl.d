lib/lowerbounds/runner.ml: Experiment Instance List Metrics Proc_engine Smbm_par Smbm_sim Smbm_traffic Value_engine
