lib/lowerbounds/quota.mli: Proc_policy Smbm_core Value_policy
