lib/lowerbounds/constructions.ml: Lb_bpd Lb_greedy_value Lb_lqd Lb_lqd_value Lb_lwd Lb_mrd Lb_mvd Lb_nest Lb_nhdt Lb_nhst List Runner String
