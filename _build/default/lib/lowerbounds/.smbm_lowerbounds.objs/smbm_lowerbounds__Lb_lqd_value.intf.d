lib/lowerbounds/lb_lqd_value.mli: Runner
