lib/lowerbounds/lb_bpd.ml: Arrival Harmonic List P_bpd Proc_config Quota Runner Smbm_core Smbm_prelude
