lib/lowerbounds/lb_greedy_value.mli: Runner
