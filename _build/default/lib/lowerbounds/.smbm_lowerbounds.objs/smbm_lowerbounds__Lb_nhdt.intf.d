lib/lowerbounds/lb_nhdt.mli: Runner
