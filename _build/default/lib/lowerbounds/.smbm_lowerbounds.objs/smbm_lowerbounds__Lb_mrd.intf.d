lib/lowerbounds/lb_mrd.mli: Runner
