lib/lowerbounds/lb_nhst.mli: Runner
