lib/lowerbounds/lb_lwd.ml: Array Arrival List P_lwd Proc_config Quota Runner Smbm_core
