lib/lowerbounds/lb_nest.ml: Arrival P_nest Proc_config Quota Runner Smbm_core
