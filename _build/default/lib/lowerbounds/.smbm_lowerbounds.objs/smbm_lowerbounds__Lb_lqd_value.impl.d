lib/lowerbounds/lb_lqd_value.ml: Arrival Float List Quota Runner Smbm_core V_lqd Value_config
