lib/lowerbounds/lb_nhdt.ml: Arrival Float Harmonic List P_nhdt Proc_config Quota Runner Smbm_core Smbm_prelude
