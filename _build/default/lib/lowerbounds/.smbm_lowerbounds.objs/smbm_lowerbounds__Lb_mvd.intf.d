lib/lowerbounds/lb_mvd.mli: Runner
