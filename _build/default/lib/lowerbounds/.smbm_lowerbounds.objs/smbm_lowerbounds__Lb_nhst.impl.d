lib/lowerbounds/lb_nhst.ml: Arrival Harmonic P_nhst Proc_config Quota Runner Smbm_core Smbm_prelude
