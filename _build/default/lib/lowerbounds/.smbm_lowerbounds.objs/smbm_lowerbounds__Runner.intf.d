lib/lowerbounds/runner.mli: Arrival Proc_config Proc_policy Smbm_core Value_config Value_policy
