lib/lowerbounds/lb_mvd.ml: Arrival List Quota Runner Smbm_core V_mvd Value_config
