open Smbm_core

let finite_bound ~buffer =
  let b = float_of_int buffer in
  ((2.0 *. b) -. 9.0) /. (1.5 *. b)

let asymptotic_bound () = 4.0 /. 3.0

let works = [| 1; 2; 3; 6 |]

let measure ?(buffer = 1200) ?(episodes = 5) () =
  if buffer mod 12 <> 0 then
    invalid_arg "Lb_lwd.measure: buffer must be divisible by 12";
  let config = Proc_config.make ~works ~buffer () in
  (* B x [1], B/4 x [2], B/6 x [3], B/12 x [6]: every queue ends up with
     total work B/2 under LWD. *)
  let burst =
    Runner.burst buffer (Arrival.make ~dest:0 ())
    @ Runner.burst (buffer / 4) (Arrival.make ~dest:1 ())
    @ Runner.burst (buffer / 6) (Arrival.make ~dest:2 ())
    @ Runner.burst (buffer / 12) (Arrival.make ~dest:3 ())
  in
  let trickle t =
    List.filteri (fun i _ -> i > 0 && t mod works.(i) = 0)
      [ Arrival.make ~dest:0 (); Arrival.make ~dest:1 ();
        Arrival.make ~dest:2 (); Arrival.make ~dest:3 () ]
  in
  let episode = buffer in
  let trace = Runner.episodic ~episode ~burst ~trickle in
  let quota dest = if dest = 0 then buffer - 3 else 1 in
  Runner.run_proc ~config ~alg:(P_lwd.make config)
    ~opt:(Quota.proc ~quota ()) ~trace ~slots:(episodes * episode)
    ~flush_every:episode ()
