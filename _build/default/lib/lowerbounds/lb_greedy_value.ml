open Smbm_core

let finite_bound ~k = float_of_int k
let asymptotic_bound ~k = float_of_int k

let measure ?(k = 16) ?(buffer = 64) ?(episodes = 5) () =
  let config = Value_config.make ~ports:2 ~max_value:k ~buffer () in
  let burst =
    Runner.burst buffer (Arrival.make ~dest:0 ~value:1 ())
    @ Runner.burst buffer (Arrival.make ~dest:1 ~value:k ())
  in
  let episode = buffer in
  let trace = Runner.episodic ~episode ~burst ~trickle:(fun _ -> []) in
  let greedy =
    Value_policy.make ~name:"Greedy" ~push_out:false (fun sw ~dest:_ ~value:_ ->
        if Value_switch.is_full sw then Decision.Drop else Decision.Accept)
  in
  let quota dest = if dest = 1 then buffer else 0 in
  Runner.run_value ~config ~alg:greedy ~opt:(Quota.value ~quota ()) ~trace
    ~slots:(episodes * episode) ~flush_every:episode ()
