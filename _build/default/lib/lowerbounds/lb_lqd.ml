open Smbm_prelude
open Smbm_core

let choose_m ~k =
  max 1 (min k (int_of_float (Float.round (sqrt (float_of_int k)))))

let finite_bound ~k ~buffer =
  let m = choose_m ~k in
  let mf = float_of_int m and b = float_of_int buffer in
  let beta = Harmonic.h_range (k - m + 1) k in
  1.0
  +. (((mf -. 1.0) /. mf) -. (mf /. b))
     /. ((1.0 /. mf) +. ((1.0 -. (mf /. b)) *. beta))

let asymptotic_bound ~k = sqrt (float_of_int k)

let measure ?(k = 64) ?(buffer = 1024) ?(episodes = 5) () =
  let m = choose_m ~k in
  let config = Proc_config.contiguous ~k ~buffer () in
  let heavy_works = List.init m (fun i -> k - i) in
  let burst =
    Runner.burst buffer (Arrival.make ~dest:0 ())
    @ List.concat_map
        (fun w -> Runner.burst buffer (Arrival.make ~dest:(w - 1) ()))
        heavy_works
  in
  let trickle t =
    List.filter_map
      (fun w ->
        if t mod w = 0 then Some (Arrival.make ~dest:(w - 1) ()) else None)
      heavy_works
  in
  let episode = buffer in
  let trace = Runner.episodic ~episode ~burst ~trickle in
  let quota dest =
    if dest = 0 then buffer - m else if dest >= k - m then 1 else 0
  in
  Runner.run_proc ~config ~alg:(P_lqd.make config)
    ~opt:(Quota.proc ~quota ()) ~trace ~slots:(episodes * episode)
    ~flush_every:episode ()
