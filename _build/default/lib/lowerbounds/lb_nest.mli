(** Theorem 2: NEST is at least n-competitive.

    Construction: the whole burst of [B] work-1 packets targets a single
    port; NEST's equal thresholds admit only [B / n] of them while a greedy
    OPT admits all [B].  The burst repeats every [B] slots. *)

val finite_bound : k:int -> float
(** n (= k in the contiguous configuration). *)

val asymptotic_bound : k:int -> float

val measure :
  ?k:int -> ?buffer:int -> ?episodes:int -> unit -> Runner.measured
(** Defaults: k = 16, B = 160, 5 episodes. *)
