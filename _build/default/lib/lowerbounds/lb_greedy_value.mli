(** Section IV-B's opening remark: any greedy non-push-out policy is at
    least k-competitive in the value model — "fill the buffer with 1s, then
    send in the ks".

    Construction over two ports carrying values 1 and k: a burst of [B]
    value-1 packets fills the greedy buffer an instant before [B] value-k
    packets it can no longer accept; the scripted OPT reserves its whole
    buffer for the ks.  Both drain in [B] slots (one active port each), so
    the per-episode value ratio is exactly [k B / B = k]. *)

val finite_bound : k:int -> float
(** [k] exactly. *)

val asymptotic_bound : k:int -> float
(** [k]. *)

val measure :
  ?k:int -> ?buffer:int -> ?episodes:int -> unit -> Runner.measured
(** Defaults: k = 16, B = 64, 5 episodes. *)
