(** Theorem 5: BPD is at least [(ln k + gamma)]-competitive (for
    [B >= k(k+1)/2]).

    Construction (contiguous configuration): every slot a full set of
    [B] packets of every work [1 .. k] arrives.  BPD locks its buffer onto
    the work-1 packets and transmits one packet per slot, while the scripted
    OPT spreads the buffer over all queues and transmits [H_k] packets per
    slot. *)

val finite_bound : k:int -> float
(** [H_k]. *)

val asymptotic_bound : k:int -> float
(** [ln k + gamma]. *)

val measure : ?k:int -> ?buffer:int -> ?slots:int -> unit -> Runner.measured
(** Defaults: k = 10, B = 60, 1000 slots.
    @raise Invalid_argument if [buffer < k(k+1)/2]. *)
