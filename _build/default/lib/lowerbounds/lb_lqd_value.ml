open Smbm_core

let choose_a ~k =
  max 1
    (min k (int_of_float (Float.round (Float.pow (float_of_int k) (1. /. 3.)))))

let finite_bound ~k =
  let a = choose_a ~k in
  let af = float_of_int a and kf = float_of_int k in
  let half = af *. (af -. 1.0) /. 2.0 in
  (half +. kf) /. (half +. (kf /. af))

let asymptotic_bound ~k = Float.pow (float_of_int k) (1. /. 3.)

let measure ?(k = 27) ?(buffer = 270) ?(episodes = 5) () =
  let a = choose_a ~k in
  let config = Value_config.make ~ports:k ~max_value:k ~buffer () in
  let small = List.init a (fun i -> i + 1) in
  let burst =
    List.concat_map
      (fun v -> Runner.burst buffer (Arrival.make ~dest:(v - 1) ~value:v ()))
      small
    @ Runner.burst buffer (Arrival.make ~dest:(k - 1) ~value:k ())
  in
  let trickle _t =
    List.map (fun v -> Arrival.make ~dest:(v - 1) ~value:v ()) small
  in
  let episode = buffer in
  let trace = Runner.episodic ~episode ~burst ~trickle in
  let quota dest =
    if dest = k - 1 then buffer - a else if dest < a then 1 else 0
  in
  Runner.run_value ~config ~alg:(V_lqd.make config)
    ~opt:(Quota.value ~quota ()) ~trace ~slots:(episodes * episode)
    ~flush_every:episode ()
