(** Theorem 9: value-model LQD is at least (cube root of k)-competitive.

    Construction with value = port label: a burst of [B] packets of every
    value [1 .. a] plus [B] packets of value [k] ([a = cube root of k]).
    LQD balances queue lengths, keeping only [B/(a+1)] of the value-k
    packets; the scripted OPT dedicates its buffer to value [k] and serves
    the trickling small values straight through.  Episodes of [B] slots
    with flushouts. *)

val choose_a : k:int -> int
(** [round(k^(1/3))], clamped to [1 .. k]. *)

val finite_bound : k:int -> float
(** [(a(a-1)/2 + k) / (a(a-1)/2 + k/a)]. *)

val asymptotic_bound : k:int -> float

val measure :
  ?k:int -> ?buffer:int -> ?episodes:int -> unit -> Runner.measured
(** Defaults: k = 27, B = 270, 5 episodes. *)
