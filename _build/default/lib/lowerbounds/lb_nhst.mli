(** Theorem 1: NHST is at least kZ-competitive (Z = sum of inverse works).

    Construction: in the contiguous configuration, a burst of [B] packets
    with work [k] arrives; NHST's static threshold admits only
    [B / (k * H_k)] of them while a greedy OPT admits all [B].  Once
    everything is processed (k * B slots later) the burst repeats. *)

val finite_bound : k:int -> float
(** kZ = k * H_k in the contiguous configuration. *)

val asymptotic_bound : k:int -> float

val measure :
  ?k:int -> ?buffer:int -> ?episodes:int -> unit -> Runner.measured
(** Defaults: k = 8, B = 400, 2 episodes. *)
