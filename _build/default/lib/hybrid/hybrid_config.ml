open Smbm_core

type t = { proc : Proc_config.t; max_value : int }

let make ~proc ~max_value =
  if max_value < 1 then invalid_arg "Hybrid_config.make: max_value must be >= 1";
  { proc; max_value }

let contiguous ~k ~max_value ~buffer ?speedup () =
  make ~proc:(Proc_config.contiguous ~k ~buffer ?speedup ()) ~max_value

let n t = Proc_config.n t.proc
let buffer t = t.proc.Proc_config.buffer
let work t i = Proc_config.work t.proc i
