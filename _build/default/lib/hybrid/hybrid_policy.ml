open Smbm_core

type t = {
  name : string;
  push_out : bool;
  admit : Hybrid_switch.t -> dest:int -> value:int -> Decision.t;
}

let greedy_accept sw =
  if Hybrid_switch.is_full sw then None else Some Decision.Accept

let greedy =
  {
    name = "Greedy";
    push_out = false;
    admit =
      (fun sw ~dest:_ ~value:_ ->
        match greedy_accept sw with Some d -> d | None -> Decision.Drop);
  }

let nest config =
  let n = Hybrid_config.n config in
  let b = Hybrid_config.buffer config in
  {
    name = "NEST";
    push_out = false;
    admit =
      (fun sw ~dest ~value:_ ->
        if Hybrid_switch.is_full sw then Decision.Drop
        else if Hybrid_switch.queue_length sw dest * n < b then Decision.Accept
        else Decision.Drop);
  }

let lqd =
  {
    name = "LQD";
    push_out = true;
    admit =
      (fun sw ~dest ~value:_ ->
        match greedy_accept sw with
        | Some d -> d
        | None ->
          let best = ref 0 and best_key = ref (min_int, min_int) in
          for j = 0 to Hybrid_switch.n sw - 1 do
            let len =
              Hybrid_switch.queue_length sw j + if j = dest then 1 else 0
            in
            let key = (len, Hybrid_switch.port_work sw j) in
            if key >= !best_key then begin
              best := j;
              best_key := key
            end
          done;
          if !best <> dest then Decision.Push_out { victim = !best }
          else Decision.Drop);
  }

let lwd =
  {
    name = "LWD";
    push_out = true;
    admit =
      (fun sw ~dest ~value:_ ->
        match greedy_accept sw with
        | Some d -> d
        | None ->
          let best = ref 0 and best_key = ref (min_int, min_int) in
          for j = 0 to Hybrid_switch.n sw - 1 do
            let w =
              Hybrid_switch.queue_work sw j
              + if j = dest then Hybrid_switch.port_work sw dest else 0
            in
            let key = (w, Hybrid_switch.port_work sw j) in
            if key >= !best_key then begin
              best := j;
              best_key := key
            end
          done;
          if !best <> dest then Decision.Push_out { victim = !best }
          else Decision.Drop);
  }

let mvd =
  {
    name = "MVD";
    push_out = true;
    admit =
      (fun sw ~dest:_ ~value ->
        match greedy_accept sw with
        | Some d -> d
        | None ->
          (* Only FIFO tails are evictable; find the cheapest one. *)
          let best = ref None in
          for j = 0 to Hybrid_switch.n sw - 1 do
            match Hybrid_switch.tail_value sw j with
            | Some v -> (
              match !best with
              | Some (_, bv) when bv <= v -> ()
              | Some _ | None -> best := Some (j, v))
            | None -> ()
          done;
          (match !best with
          | Some (victim, v) when v < value -> Decision.Push_out { victim }
          | Some _ | None -> Decision.Drop));
  }

(* W_a / V_a > W_b / V_b as W_a * V_b > W_b * V_a; empty queues compare as
   ratio 0 (never chosen over any non-empty queue). *)
let ratio_greater ~work_a ~value_a ~work_b ~value_b =
  work_a * value_b > work_b * value_a

let wvd =
  {
    name = "WVD";
    push_out = true;
    admit =
      (fun sw ~dest ~value ->
        match greedy_accept sw with
        | Some d -> d
        | None ->
          let stats j =
            let virtual_w =
              if j = dest then Hybrid_switch.port_work sw dest else 0
            in
            let virtual_v = if j = dest then value else 0 in
            ( Hybrid_switch.queue_work sw j + virtual_w,
              Hybrid_switch.queue_value sw j + virtual_v )
          in
          let best = ref None in
          for j = 0 to Hybrid_switch.n sw - 1 do
            let w, v = stats j in
            if w > 0 then
              match !best with
              | None -> best := Some (j, w, v)
              | Some (_, bw, bv) ->
                if ratio_greater ~work_a:w ~value_a:v ~work_b:bw ~value_b:bv
                then best := Some (j, w, v)
          done;
          (match !best with
          | Some (victim, _, _) when victim <> dest ->
            Decision.Push_out { victim }
          | Some _ | None -> Decision.Drop));
  }

(* Density comparisons v_a / w_a <= v_b / w_b as v_a * w_b <= v_b * w_a. *)
let dpk =
  {
    name = "DPK";
    push_out = true;
    admit =
      (fun sw ~dest ~value ->
        match greedy_accept sw with
        | Some d -> d
        | None ->
          (* The evictable packet with the worst value-per-cycle. *)
          let best = ref None in
          for j = 0 to Hybrid_switch.n sw - 1 do
            match Hybrid_switch.tail_value sw j with
            | Some v -> (
              let w = Hybrid_switch.port_work sw j in
              match !best with
              | Some (_, bv, bw) when bv * w <= v * bw -> ()
              | Some _ | None -> best := Some (j, v, w))
            | None -> ()
          done;
          (match !best with
          | Some (victim, bv, bw)
            when value * bw > bv * Hybrid_switch.port_work sw dest ->
            Decision.Push_out { victim }
          | Some _ | None -> Decision.Drop));
  }

let all config = [ greedy; nest config; lqd; lwd; mvd; wvd; dpk ]

let find config name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun p -> String.lowercase_ascii p.name = name) (all config)
