open Smbm_prelude

type packet = {
  id : int;
  dest : int;
  work : int;
  mutable residual : int;
  value : int;
  arrival : int;
}

type queue = {
  work : int;
  packets : packet Deque.t;
  mutable total_work : int;
  mutable total_value : int;
}

type t = {
  config : Hybrid_config.t;
  queues : queue array;
  mutable occupancy : int;
  mutable next_id : int;
  mutable now : int;
}

let create config =
  {
    config;
    queues =
      Array.init (Hybrid_config.n config) (fun i ->
          {
            work = Hybrid_config.work config i;
            packets = Deque.create ();
            total_work = 0;
            total_value = 0;
          });
    occupancy = 0;
    next_id = 0;
    now = 0;
  }

let config t = t.config
let n t = Array.length t.queues
let buffer t = Hybrid_config.buffer t.config
let now t = t.now
let advance_slot t = t.now <- t.now + 1
let occupancy t = t.occupancy
let is_full t = t.occupancy >= buffer t

let queue t i =
  if i < 0 || i >= n t then invalid_arg "Hybrid_switch: bad port";
  t.queues.(i)

let queue_length t i = Deque.length (queue t i).packets
let queue_work t i = (queue t i).total_work
let queue_value t i = (queue t i).total_value

let tail_value t i =
  let q = queue t i in
  if Deque.is_empty q.packets then None
  else Some (Deque.peek_back q.packets).value

let port_work t i = (queue t i).work
let queue_packets t i = Deque.to_list (queue t i).packets

let accept t ~dest ~value =
  if is_full t then invalid_arg "Hybrid_switch.accept: buffer full";
  if value < 1 || value > t.config.Hybrid_config.max_value then
    invalid_arg "Hybrid_switch.accept: value out of range";
  let q = queue t dest in
  let p =
    {
      id = t.next_id;
      dest;
      work = q.work;
      residual = q.work;
      value;
      arrival = t.now;
    }
  in
  t.next_id <- t.next_id + 1;
  Deque.push_back q.packets p;
  q.total_work <- q.total_work + p.residual;
  q.total_value <- q.total_value + p.value;
  t.occupancy <- t.occupancy + 1;
  p

let push_out t ~victim =
  let q = queue t victim in
  if Deque.is_empty q.packets then
    invalid_arg "Hybrid_switch.push_out: victim queue empty";
  let p = Deque.pop_back q.packets in
  q.total_work <- q.total_work - p.residual;
  q.total_value <- q.total_value - p.value;
  t.occupancy <- t.occupancy - 1;
  p

let transmit_phase t ~on_transmit =
  let cycles = t.config.Hybrid_config.proc.Smbm_core.Proc_config.speedup in
  let transmitted = ref 0 in
  Array.iter
    (fun q ->
      let budget = ref cycles in
      while !budget > 0 && not (Deque.is_empty q.packets) do
        let hol = Deque.peek_front q.packets in
        let served = min !budget hol.residual in
        hol.residual <- hol.residual - served;
        q.total_work <- q.total_work - served;
        budget := !budget - served;
        if hol.residual = 0 then begin
          let p = Deque.pop_front q.packets in
          q.total_value <- q.total_value - p.value;
          incr transmitted;
          on_transmit p
        end
      done)
    t.queues;
  t.occupancy <- t.occupancy - !transmitted;
  !transmitted

let flush t =
  let dropped = t.occupancy in
  Array.iter
    (fun q ->
      Deque.clear q.packets;
      q.total_work <- 0;
      q.total_value <- 0)
    t.queues;
  t.occupancy <- 0;
  dropped

let check_invariants t =
  let len_sum =
    Array.fold_left (fun acc q -> acc + Deque.length q.packets) 0 t.queues
  in
  if len_sum <> t.occupancy then
    invalid_arg "Hybrid_switch: occupancy out of sync";
  if t.occupancy > buffer t then invalid_arg "Hybrid_switch: overflow";
  Array.iter
    (fun q ->
      let work = Deque.fold (fun acc p -> acc + p.residual) 0 q.packets in
      let value = Deque.fold (fun acc p -> acc + p.value) 0 q.packets in
      if work <> q.total_work then
        invalid_arg "Hybrid_switch: cached work out of sync";
      if value <> q.total_value then
        invalid_arg "Hybrid_switch: cached value out of sync";
      (* Only the head-of-line packet may be partially served. *)
      let i = ref 0 in
      Deque.iter
        (fun p ->
          if !i > 0 && p.residual <> p.work then
            invalid_arg "Hybrid_switch: non-HOL packet partially served";
          incr i)
        q.packets)
    t.queues
