(** Configuration of the combined model — the paper's future-work direction
    of packets that carry BOTH heterogeneous processing requirements and
    intrinsic values.

    Structure: a processing-model switch (per-port works, shared buffer,
    speedup) whose unit-sized packets additionally carry a value in
    [1 .. max_value]; queues stay FIFO (the run-to-completion constraint of
    Section I applies regardless of values), and the objective is the total
    transmitted value. *)

type t = private { proc : Smbm_core.Proc_config.t; max_value : int }

val make : proc:Smbm_core.Proc_config.t -> max_value:int -> t
(** @raise Invalid_argument if [max_value < 1]. *)

val contiguous :
  k:int -> max_value:int -> buffer:int -> ?speedup:int -> unit -> t

val n : t -> int
val buffer : t -> int
val work : t -> int -> int
