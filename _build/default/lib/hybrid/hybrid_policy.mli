(** Policies for the combined work + value model, and the candidates this
    library proposes in the spirit of the paper's LWD and MRD.

    The design question the paper's two halves pose jointly: an eviction
    rule must price a queue's claim on the buffer by the *work* it ties up
    (Section III's lesson) AND by the *value* it withholds (Section IV's
    lesson).  The natural combination is the work-to-value ratio
    [W_j / V_j] — evict where the most processing buys the least value. *)

type t = {
  name : string;
  push_out : bool;
  admit : Hybrid_switch.t -> dest:int -> value:int -> Smbm_core.Decision.t;
}

val greedy : t
(** Accept while there is space; never push out. *)

val nest : Hybrid_config.t -> t
(** Equal static thresholds [B / n]. *)

val lqd : t
(** Longest queue drops its tail (value- and work-blind). *)

val lwd : t
(** The paper's LWD verbatim: most total residual work drops its tail
    (value-blind). *)

val mvd : t
(** Value view only: evict the cheapest *tail* packet in the buffer if
    strictly cheaper than the arrival (FIFO order means only tails are
    evictable, unlike Section IV's sorted queues). *)

val wvd : t
(** Work-per-Value-Drop — the naive queue-aggregate combination: evict the
    tail of the queue maximizing [W_j / V_j] (most work held per unit of
    value), the arrival's own queue counted virtually.  Reduces to LWD
    under uniform values.  Empirically it inherits BPD's pathology taken to
    the limit: under extreme congestion it prunes the expensive ports until
    the lightest queue monopolizes the buffer and throughput collapses
    (see the bench's hybrid section) — a negative result worth keeping. *)

val dpk : t
(** Densest-Packet-Keep — the per-packet density combination: evict the
    evictable (tail) packet with the smallest value-per-cycle [v / w], and
    only for an arrival with strictly better density.  Behaves like MVD
    skewed by work; competitive at extreme congestion, a little behind LWD
    at moderate congestion. *)

val all : Hybrid_config.t -> t list
val find : Hybrid_config.t -> string -> t option
