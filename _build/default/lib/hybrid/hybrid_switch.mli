(** Shared-memory switch state for the combined model: FIFO queues of
    packets that carry residual work AND intrinsic value, one shared buffer.
    Transmission is the processing model's (speedup cycles per queue,
    head-of-line, run-to-completion); the objective tracked downstream is
    transmitted value. *)

type packet = {
  id : int;
  dest : int;
  work : int;
  mutable residual : int;
  value : int;
  arrival : int;
}

type t

val create : Hybrid_config.t -> t

val config : t -> Hybrid_config.t
val n : t -> int
val buffer : t -> int
val now : t -> int
val advance_slot : t -> unit

val occupancy : t -> int
val is_full : t -> bool

val queue_length : t -> int -> int

val queue_work : t -> int -> int
(** Total residual work [W_i]. *)

val queue_value : t -> int -> int
(** Total intrinsic value [V_i]. *)

val tail_value : t -> int -> int option
(** Value of the packet a push-out would evict (the FIFO tail). *)

val port_work : t -> int -> int

val queue_packets : t -> int -> packet list
(** Front to back (test hook). *)

val accept : t -> dest:int -> value:int -> packet
(** @raise Invalid_argument if full or the value is out of range. *)

val push_out : t -> victim:int -> packet
(** Evict the tail packet of [victim].
    @raise Invalid_argument on an empty victim queue. *)

val transmit_phase : t -> on_transmit:(packet -> unit) -> int

val flush : t -> int

val check_invariants : t -> unit
