lib/hybrid/hybrid_policy.ml: Decision Hybrid_config Hybrid_switch List Smbm_core String
