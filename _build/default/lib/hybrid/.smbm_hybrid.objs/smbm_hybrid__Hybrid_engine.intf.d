lib/hybrid/hybrid_engine.mli: Hybrid_config Hybrid_policy Hybrid_switch Smbm_core Smbm_sim
