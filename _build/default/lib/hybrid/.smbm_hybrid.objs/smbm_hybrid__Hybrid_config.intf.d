lib/hybrid/hybrid_config.mli: Smbm_core
