lib/hybrid/hybrid_policy.mli: Hybrid_config Hybrid_switch Smbm_core
