lib/hybrid/hybrid_config.ml: Proc_config Smbm_core
