lib/hybrid/hybrid_switch.mli: Hybrid_config
