lib/hybrid/hybrid_switch.ml: Array Deque Hybrid_config Smbm_core Smbm_prelude
