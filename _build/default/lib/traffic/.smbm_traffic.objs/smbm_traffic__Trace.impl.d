lib/traffic/trace.ml: Array Arrival List Printf Smbm_core String Workload
