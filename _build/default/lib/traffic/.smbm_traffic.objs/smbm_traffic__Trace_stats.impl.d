lib/traffic/trace_stats.ml: Arrival Format Hashtbl List Option Proc_config Running_stats Smbm_core Smbm_prelude Trace
