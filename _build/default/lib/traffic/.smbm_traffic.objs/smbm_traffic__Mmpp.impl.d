lib/traffic/mmpp.ml: Printf Rng Smbm_prelude
