lib/traffic/mmpp.mli: Rng Smbm_prelude
