lib/traffic/trace_stats.mli: Format Proc_config Smbm_core Trace
