lib/traffic/scenario.mli: Label Rng Smbm_core Smbm_prelude Source Workload
