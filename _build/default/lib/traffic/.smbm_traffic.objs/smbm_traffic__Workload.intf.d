lib/traffic/workload.mli: Arrival Smbm_core Source
