lib/traffic/source.ml: Label Mmpp Rng Smbm_prelude
