lib/traffic/trace.mli: Arrival Smbm_core Workload
