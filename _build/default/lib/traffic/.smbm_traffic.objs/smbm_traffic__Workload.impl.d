lib/traffic/workload.ml: Array Arrival List Smbm_core Source
