lib/traffic/label.mli: Arrival Rng Smbm_core Smbm_prelude
