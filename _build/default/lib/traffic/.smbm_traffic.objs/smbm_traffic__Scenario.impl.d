lib/traffic/scenario.ml: Array Float Label List Mmpp Option Proc_config Rng Smbm_core Smbm_prelude Source Value_config Workload
