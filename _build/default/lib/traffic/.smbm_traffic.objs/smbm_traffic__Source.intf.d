lib/traffic/source.mli: Arrival Label Mmpp Rng Smbm_core Smbm_prelude
