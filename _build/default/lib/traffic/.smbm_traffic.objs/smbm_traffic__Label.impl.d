lib/traffic/label.ml: Array Arrival Rng Smbm_core Smbm_prelude
