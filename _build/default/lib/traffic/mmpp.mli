(** Markov-modulated Poisson on-off source (Section V-A).

    A two-state Markov chain toggles the source between "on" and "off" each
    slot; while on, the source emits a Poisson-distributed number of packets
    per slot with mean [rate_on]; while off, it is silent. *)

open Smbm_prelude

type t

val create :
  rng:Rng.t ->
  p_on_to_off:float ->
  p_off_to_on:float ->
  rate_on:float ->
  ?start_on:bool ->
  unit ->
  t
(** Transition probabilities must lie in [0, 1]; [rate_on] must be
    non-negative.  The initial state is drawn from the stationary
    distribution unless [start_on] is given. *)

val create_batch :
  rng:Rng.t ->
  p_on_to_off:float ->
  p_off_to_on:float ->
  sample:(Rng.t -> int) ->
  mean:float ->
  ?start_on:bool ->
  unit ->
  t
(** Like {!create} but with an arbitrary per-slot batch-size distribution in
    the on state ([sample], with the declared [mean] used for rate
    accounting) — e.g. {!Smbm_prelude.Rng.pareto_int} for heavy-tailed
    bursts. *)

val step : t -> int
(** Advance one slot: sample the state transition, then return the number of
    packets emitted during this slot. *)

val is_on : t -> bool

val duty_cycle : t -> float
(** Stationary probability of the "on" state. *)

val mean_rate : t -> float
(** Long-run packets per slot: [duty_cycle * rate_on]. *)
