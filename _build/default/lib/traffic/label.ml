open Smbm_prelude
open Smbm_core

type t = Rng.t -> Arrival.t

let uniform_port ~n rng = Arrival.make ~dest:(Rng.int rng n) ()

let uniform_port_and_value ~n ~k rng =
  Arrival.make ~dest:(Rng.int rng n) ~value:(Rng.int_in rng 1 k) ()

let value_equals_port ~n rng =
  let dest = Rng.int rng n in
  Arrival.make ~dest ~value:(dest + 1) ()

let fixed_port ~dest ?(value = 1) () _rng = Arrival.make ~dest ~value ()

let weighted_port ~weights ?(value_of_port = fun _ -> 1) () =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if Array.length weights = 0 then invalid_arg "Label.weighted_port: empty";
  Array.iter
    (fun w -> if w < 0.0 then invalid_arg "Label.weighted_port: negative weight")
    weights;
  if total <= 0.0 then invalid_arg "Label.weighted_port: all weights zero";
  fun rng ->
    let x = Rng.float rng *. total in
    let rec pick i acc =
      if i = Array.length weights - 1 then i
      else
        let acc = acc +. weights.(i) in
        if x < acc then i else pick (i + 1) acc
    in
    let dest = pick 0 0.0 in
    Arrival.make ~dest ~value:(value_of_port dest) ()
