open Smbm_core

type t = {
  next_slot : int -> Arrival.t list;
  mutable slot : int;
  mean_rate : float option;
}

let of_sources sources =
  let mean = List.fold_left (fun acc s -> acc +. Source.mean_rate s) 0.0 sources in
  let next_slot _ =
    let into = ref [] in
    List.iter (fun s -> Source.step s ~into) sources;
    !into
  in
  { next_slot; slot = 0; mean_rate = Some mean }

let of_fun f = { next_slot = f; slot = 0; mean_rate = None }

let of_slots slots =
  let next_slot i = if i < Array.length slots then slots.(i) else [] in
  { next_slot; slot = 0; mean_rate = None }

let merge components =
  let mean_rate =
    List.fold_left
      (fun acc c ->
        match acc, c.mean_rate with
        | Some total, Some r -> Some (total +. r)
        | _, None | None, _ -> None)
      (Some 0.0) components
  in
  {
    next_slot =
      (fun _ ->
        List.concat_map
          (fun c ->
            let arrivals = c.next_slot c.slot in
            c.slot <- c.slot + 1;
            arrivals)
          components);
    slot = 0;
    mean_rate;
  }

let map f t =
  {
    next_slot =
      (fun _ ->
        let arrivals = t.next_slot t.slot in
        t.slot <- t.slot + 1;
        List.map f arrivals);
    slot = 0;
    mean_rate = t.mean_rate;
  }

let take n t =
  {
    next_slot =
      (fun i ->
        if i >= n then []
        else begin
          let arrivals = t.next_slot t.slot in
          t.slot <- t.slot + 1;
          arrivals
        end);
    slot = 0;
    mean_rate = t.mean_rate;
  }

let next t =
  let arrivals = t.next_slot t.slot in
  t.slot <- t.slot + 1;
  arrivals

let slot t = t.slot
let mean_rate t = t.mean_rate
