open Smbm_prelude

type emission = Poisson of float | Batch of { sample : Rng.t -> int; mean : float }

type t = {
  rng : Rng.t;
  p_on_to_off : float;
  p_off_to_on : float;
  emission : emission;
  mutable on : bool;
}

let stationary_on ~p_on_to_off ~p_off_to_on =
  if p_on_to_off +. p_off_to_on = 0.0 then 0.5
  else p_off_to_on /. (p_on_to_off +. p_off_to_on)

let check_probabilities ~p_on_to_off ~p_off_to_on =
  let check p what =
    if p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Mmpp.create: %s must be in [0, 1]" what)
  in
  check p_on_to_off "p_on_to_off";
  check p_off_to_on "p_off_to_on"

let make ~rng ~p_on_to_off ~p_off_to_on ~emission ~start_on =
  check_probabilities ~p_on_to_off ~p_off_to_on;
  let on =
    match start_on with
    | Some b -> b
    | None -> Rng.bernoulli rng ~p:(stationary_on ~p_on_to_off ~p_off_to_on)
  in
  { rng; p_on_to_off; p_off_to_on; emission; on }

let create ~rng ~p_on_to_off ~p_off_to_on ~rate_on ?start_on () =
  if rate_on < 0.0 then invalid_arg "Mmpp.create: rate_on must be >= 0";
  make ~rng ~p_on_to_off ~p_off_to_on ~emission:(Poisson rate_on) ~start_on

let create_batch ~rng ~p_on_to_off ~p_off_to_on ~sample ~mean ?start_on () =
  if mean < 0.0 then invalid_arg "Mmpp.create_batch: mean must be >= 0";
  make ~rng ~p_on_to_off ~p_off_to_on ~emission:(Batch { sample; mean })
    ~start_on

let step t =
  let flip_p = if t.on then t.p_on_to_off else t.p_off_to_on in
  if Rng.bernoulli t.rng ~p:flip_p then t.on <- not t.on;
  if t.on then
    match t.emission with
    | Poisson lambda -> Rng.poisson t.rng ~lambda
    | Batch { sample; _ } ->
      let n = sample t.rng in
      if n < 0 then invalid_arg "Mmpp.step: batch sampler returned negative"
      else n
  else 0

let is_on t = t.on

let duty_cycle t =
  stationary_on ~p_on_to_off:t.p_on_to_off ~p_off_to_on:t.p_off_to_on

let mean_rate t =
  let on_mean =
    match t.emission with Poisson lambda -> lambda | Batch { mean; _ } -> mean
  in
  duty_cycle t *. on_mean
