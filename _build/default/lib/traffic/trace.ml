open Smbm_core

type t = Arrival.t list array

let record workload ~slots =
  Array.init slots (fun _ -> Workload.next workload)

let of_slots slots = Array.map (fun l -> l) slots
let slots t = Array.length t
let arrivals t = Array.fold_left (fun acc l -> acc + List.length l) 0 t

let get t i =
  if i < 0 || i >= Array.length t then invalid_arg "Trace.get: out of bounds";
  t.(i)

let to_workload t =
  Workload.of_fun (fun i -> if i < Array.length t then t.(i) else [])

let save t oc =
  Array.iter
    (fun arrivals ->
      let cells =
        List.map
          (fun (a : Arrival.t) -> Printf.sprintf "%d:%d" a.dest a.value)
          arrivals
      in
      output_string oc (String.concat " " cells);
      output_char oc '\n')
    t

let parse_line line =
  let line = String.trim line in
  if line = "" then []
  else
    String.split_on_char ' ' line
    |> List.filter (fun s -> s <> "")
    |> List.map (fun cell ->
           match String.split_on_char ':' cell with
           | [ d; v ] -> (
             match int_of_string_opt d, int_of_string_opt v with
             | Some dest, Some value -> Arrival.make ~dest ~value ()
             | None, _ | _, None ->
               failwith ("Trace.load: malformed cell " ^ cell))
           | _ -> failwith ("Trace.load: malformed cell " ^ cell))

let load ic =
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  (* [!lines] is in reverse file order; rev_map restores it. *)
  !lines |> List.rev_map parse_line |> Array.of_list

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun la lb -> List.equal Arrival.equal la lb) a b
