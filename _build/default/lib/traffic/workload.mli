(** A workload is the per-slot arrival stream fed to every switch instance
    of an experiment.  Generating it once per slot and fanning it out keeps
    compared instances on byte-identical traffic. *)

open Smbm_core

type t

val of_sources : Source.t list -> t
(** Interleaving of independent sources (the paper's 500-source setup). *)

val of_fun : (int -> Arrival.t list) -> t
(** Arbitrary slot -> arrivals function (slot numbers start at 0); used by
    the adversarial lower-bound constructions. *)

val of_slots : Arrival.t list array -> t
(** Fixed finite schedule; empty after the last slot. *)

val merge : t list -> t
(** Superposition: each slot concatenates the component workloads' arrivals
    (in list order).  Useful for mixing background MMPP traffic with an
    adversarial trickle.  The merged rate is the sum of known rates (known
    only if every component knows its own). *)

val map : (Arrival.t -> Arrival.t) -> t -> t
(** Relabel arrivals on the fly (e.g. remap ports, rescale values). *)

val take : int -> t -> t
(** The first [n] slots of the workload; empty afterwards. *)

val next : t -> Arrival.t list
(** Arrivals of the next slot, in input-port order. *)

val slot : t -> int
(** Number of slots already consumed. *)

val mean_rate : t -> float option
(** Long-run packets per slot, when the workload knows it (source-based
    workloads only). *)
