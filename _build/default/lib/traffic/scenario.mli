(** Workload presets for the paper's simulation study (Section V-A).

    Traffic is the interleaving of [sources] independent MMPP on-off
    processes.  The paper does not print its MMPP parameters; here the
    burstiness knobs are explicit and the per-source emission rate is derived
    from a normalized [load]:

    - processing model: [load] = offered work per slot / (n * C), where
      offered work counts each arrival at its port's required work;
    - value model: [load] = offered packets per slot / (n * C).

    [load > 1] congests the switch in expectation; bursty on-periods congest
    it locally even at lower loads. *)

open Smbm_prelude

type mmpp_params = {
  sources : int;  (** number of interleaved sources (paper: 500) *)
  p_on_to_off : float;  (** per-slot on->off probability *)
  p_off_to_on : float;  (** per-slot off->on probability *)
}

val default_mmpp : mmpp_params
(** 500 sources, mean on-period 10 slots, mean off-period 30 slots
    (duty cycle 0.25). *)

val duty_cycle : mmpp_params -> float

val sources :
  mmpp:mmpp_params -> label:Label.t -> rate_per_source:float -> rng:Rng.t ->
  Source.t list
(** Build the source set; [rate_per_source] is each source's on-state
    emission rate. *)

val proc_workload :
  ?mmpp:mmpp_params ->
  ?reference:Smbm_core.Proc_config.t ->
  config:Smbm_core.Proc_config.t ->
  load:float ->
  seed:int ->
  unit ->
  Workload.t
(** Uniform destination ports; per-source rate derived from [load] against
    [reference]'s capacity (default: [config] itself).  Passing a fixed
    [reference] across a sweep holds the absolute traffic intensity constant
    while k, B or C vary, as in the paper's Fig. 5. *)

val value_uniform_workload :
  ?mmpp:mmpp_params ->
  ?reference:Smbm_core.Value_config.t ->
  config:Smbm_core.Value_config.t ->
  load:float ->
  seed:int ->
  unit ->
  Workload.t
(** Destination and value independently uniform (Fig. 5 panels 4-6). *)

val value_port_workload :
  ?mmpp:mmpp_params ->
  ?reference:Smbm_core.Value_config.t ->
  config:Smbm_core.Value_config.t ->
  load:float ->
  seed:int ->
  unit ->
  Workload.t
(** Value = port label + 1 (Fig. 5 panels 7-9).  Requires n <= k. *)

val value_port_flood_workload :
  ?mmpp:mmpp_params ->
  ?skew:float ->
  config:Smbm_core.Value_config.t ->
  load:float ->
  seed:int ->
  unit ->
  Workload.t
(** Value = port label + 1 with traffic skewed towards low-value ports
    (weight of port [i] proportional to [(n - i) ^ skew], default skew 2) —
    cheap traffic floods the switch.  This is the regime the paper points at
    with "[MRD's] advantage grows for distributions that prioritize certain
    values at specific queues".  Requires n <= k. *)

val proc_heavy_tail_workload :
  ?mmpp:mmpp_params ->
  ?alpha:float ->
  ?max_batch:int ->
  ?reference:Smbm_core.Proc_config.t ->
  config:Smbm_core.Proc_config.t ->
  load:float ->
  seed:int ->
  unit ->
  Workload.t
(** Like {!proc_workload} but with heavy-tailed (Pareto, tail index
    [alpha], capped at [max_batch]) per-slot batch sizes instead of Poisson
    emissions — self-similar-looking traffic that stresses buffer sharing
    far harder at the same mean rate. *)

val port_values : Smbm_core.Value_config.t -> int array
(** The per-port value assignment of {!value_port_workload}:
    [port_values cfg .(i) = i + 1]. *)
