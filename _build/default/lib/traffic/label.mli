(** Packet-labelling rules: how an emitted packet gets its output port and
    (in the value model) its intrinsic value. *)

open Smbm_prelude
open Smbm_core

type t = Rng.t -> Arrival.t

val uniform_port : n:int -> t
(** Destination uniform on [0, n); value 1 (processing model: the port
    determines the work). *)

val uniform_port_and_value : n:int -> k:int -> t
(** Destination uniform on [0, n), value uniform on [1, k], independently
    (Fig. 5 panels 4-6). *)

val value_equals_port : n:int -> t
(** Destination uniform on [0, n); value = port index + 1, so each port
    carries exactly one value (Fig. 5 panels 7-9). *)

val fixed_port : dest:int -> ?value:int -> unit -> t

val weighted_port : weights:float array -> ?value_of_port:(int -> int) -> unit -> t
(** Destination drawn proportionally to [weights]; value given by
    [value_of_port] (default 1).
    @raise Invalid_argument if weights are empty, negative or all zero. *)
