open Smbm_prelude
open Smbm_core

type t = {
  slots : int;
  arrivals : int;
  per_port : (int * int) list;
  mean_rate : float;
  rate_variance : float;
  burstiness : float;
  peak_rate : int;
  busy_slots : int;
  total_value : int;
}

let analyze trace =
  let slots = Trace.slots trace in
  let rate_stats = Running_stats.create () in
  let per_port = Hashtbl.create 16 in
  let arrivals = ref 0 in
  let peak = ref 0 in
  let busy = ref 0 in
  let total_value = ref 0 in
  for slot = 0 to slots - 1 do
    let batch = Trace.get trace slot in
    let count = List.length batch in
    Running_stats.add rate_stats (float_of_int count);
    arrivals := !arrivals + count;
    if count > !peak then peak := count;
    if count > 0 then incr busy;
    List.iter
      (fun (a : Arrival.t) ->
        total_value := !total_value + a.value;
        Hashtbl.replace per_port a.dest
          (1 + Option.value ~default:0 (Hashtbl.find_opt per_port a.dest)))
      batch
  done;
  let mean_rate = Running_stats.mean rate_stats in
  let rate_variance = Running_stats.variance rate_stats in
  {
    slots;
    arrivals = !arrivals;
    per_port =
      Hashtbl.fold (fun port n acc -> (port, n) :: acc) per_port []
      |> List.sort compare;
    mean_rate;
    rate_variance;
    burstiness = (if mean_rate = 0.0 then 0.0 else rate_variance /. mean_rate);
    peak_rate = !peak;
    busy_slots = !busy;
    total_value = !total_value;
  }

let offered_work config trace =
  let n = Proc_config.n config in
  let work = ref 0 in
  for slot = 0 to Trace.slots trace - 1 do
    List.iter
      (fun (a : Arrival.t) ->
        if a.dest >= n then
          invalid_arg "Trace_stats.offered_work: destination has no port";
        work := !work + Proc_config.work config a.dest)
      (Trace.get trace slot)
  done;
  !work

let offered_load config trace =
  let slots = Trace.slots trace in
  if slots = 0 then 0.0
  else
    let capacity =
      slots * Proc_config.n config * config.Proc_config.speedup
    in
    float_of_int (offered_work config trace) /. float_of_int capacity

let pp ppf t =
  Format.fprintf ppf
    "slots=%d arrivals=%d mean_rate=%.3f burstiness=%.2f peak=%d busy=%d%%"
    t.slots t.arrivals t.mean_rate t.burstiness t.peak_rate
    (if t.slots = 0 then 0 else 100 * t.busy_slots / t.slots)
