(** Descriptive statistics of an arrival trace: per-port composition,
    rate moments and burstiness.  Used to sanity-check synthetic workloads
    against their intended intensity before spending simulation time. *)

open Smbm_core

type t = {
  slots : int;
  arrivals : int;
  per_port : (int * int) list;  (** (port, packets), ports seen only *)
  mean_rate : float;  (** packets per slot *)
  rate_variance : float;  (** unbiased variance of per-slot counts *)
  burstiness : float;
      (** index of dispersion (variance / mean); 1 for Poisson, larger for
          bursty on-off traffic; 0 for an empty trace *)
  peak_rate : int;  (** largest per-slot packet count *)
  busy_slots : int;  (** slots with at least one arrival *)
  total_value : int;
}

val analyze : Trace.t -> t

val offered_work : Proc_config.t -> Trace.t -> int
(** Total processing cycles the trace demands under the given port-to-work
    assignment.
    @raise Invalid_argument if a destination has no port. *)

val offered_load : Proc_config.t -> Trace.t -> float
(** [offered_work / (slots * n * C)] — fraction of the switch's total
    processing capacity the trace demands (can exceed 1). *)

val pp : Format.formatter -> t -> unit
