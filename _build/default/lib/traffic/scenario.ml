open Smbm_prelude
open Smbm_core

type mmpp_params = {
  sources : int;
  p_on_to_off : float;
  p_off_to_on : float;
}

let default_mmpp =
  { sources = 500; p_on_to_off = 0.1; p_off_to_on = 1.0 /. 30.0 }

let duty_cycle p =
  if p.p_on_to_off +. p.p_off_to_on = 0.0 then 0.5
  else p.p_off_to_on /. (p.p_on_to_off +. p.p_off_to_on)

let sources_with ~mmpp ~label ~make_process ~rng =
  List.init mmpp.sources (fun _ ->
      let mmpp_rng = Rng.split rng and label_rng = Rng.split rng in
      Source.create ~mmpp:(make_process mmpp_rng) ~label ~rng:label_rng)

let sources ~mmpp ~label ~rate_per_source ~rng =
  let make_process mmpp_rng =
    Mmpp.create ~rng:mmpp_rng ~p_on_to_off:mmpp.p_on_to_off
      ~p_off_to_on:mmpp.p_off_to_on ~rate_on:rate_per_source ()
  in
  sources_with ~mmpp ~label ~make_process ~rng

(* Per-source on-state rate yielding an aggregate packet rate of
   [aggregate] packets per slot. *)
let rate_for ~mmpp ~aggregate =
  aggregate /. (float_of_int mmpp.sources *. duty_cycle mmpp)

let proc_workload ?(mmpp = default_mmpp) ?reference ~config ~load ~seed () =
  let reference = Option.value reference ~default:config in
  let n = Proc_config.n reference in
  let mean_work =
    float_of_int (Array.fold_left ( + ) 0 reference.Proc_config.works)
    /. float_of_int n
  in
  let capacity = float_of_int (n * reference.Proc_config.speedup) in
  let aggregate = load *. capacity /. mean_work in
  let rng = Rng.create ~seed in
  let label = Label.uniform_port ~n:(Proc_config.n config) in
  Workload.of_sources
    (sources ~mmpp ~label ~rate_per_source:(rate_for ~mmpp ~aggregate) ~rng)

let value_workload ~mmpp ~reference ~config ~load ~seed ~label =
  let reference = Option.value reference ~default:config in
  let capacity =
    float_of_int (Value_config.n reference * reference.Value_config.speedup)
  in
  let aggregate = load *. capacity in
  let rng = Rng.create ~seed in
  Workload.of_sources
    (sources ~mmpp ~label ~rate_per_source:(rate_for ~mmpp ~aggregate) ~rng)

let value_uniform_workload ?(mmpp = default_mmpp) ?reference ~config ~load
    ~seed () =
  let label =
    Label.uniform_port_and_value ~n:(Value_config.n config)
      ~k:(Value_config.k config)
  in
  value_workload ~mmpp ~reference ~config ~load ~seed ~label

let value_port_workload ?(mmpp = default_mmpp) ?reference ~config ~load ~seed
    () =
  if Value_config.n config > Value_config.k config then
    invalid_arg "Scenario.value_port_workload: requires n <= k";
  let label = Label.value_equals_port ~n:(Value_config.n config) in
  value_workload ~mmpp ~reference ~config ~load ~seed ~label

let value_port_flood_workload ?(mmpp = default_mmpp) ?(skew = 2.0) ~config
    ~load ~seed () =
  if Value_config.n config > Value_config.k config then
    invalid_arg "Scenario.value_port_flood_workload: requires n <= k";
  let n = Value_config.n config in
  let weights =
    Array.init n (fun i -> Float.pow (float_of_int (n - i)) skew)
  in
  let label =
    Label.weighted_port ~weights ~value_of_port:(fun i -> i + 1) ()
  in
  value_workload ~mmpp ~reference:None ~config ~load ~seed ~label

(* Per-on-slot batch sampler with heavy (Pareto) tail and the given mean:
   thinned when the raw Pareto mean exceeds the target, topped up with an
   independent Poisson stream otherwise. *)
let heavy_batch ~alpha ~max_batch ~mean =
  let raw_mean = Rng.pareto_int_mean ~alpha ~max:max_batch in
  if mean <= raw_mean then begin
    let p = mean /. raw_mean in
    fun rng ->
      if Rng.bernoulli rng ~p then Rng.pareto_int rng ~alpha ~max:max_batch
      else 0
  end
  else
    fun rng ->
      Rng.pareto_int rng ~alpha ~max:max_batch
      + Rng.poisson rng ~lambda:(mean -. raw_mean)

let proc_heavy_tail_workload ?(mmpp = default_mmpp) ?(alpha = 1.2)
    ?(max_batch = 1000) ?reference ~config ~load ~seed () =
  let reference = Option.value reference ~default:config in
  let n = Proc_config.n reference in
  let mean_work =
    float_of_int (Array.fold_left ( + ) 0 reference.Proc_config.works)
    /. float_of_int n
  in
  let capacity = float_of_int (n * reference.Proc_config.speedup) in
  let aggregate = load *. capacity /. mean_work in
  let per_source_on = rate_for ~mmpp ~aggregate in
  let sample = heavy_batch ~alpha ~max_batch ~mean:per_source_on in
  let rng = Rng.create ~seed in
  let label = Label.uniform_port ~n:(Proc_config.n config) in
  let make_process mmpp_rng =
    Mmpp.create_batch ~rng:mmpp_rng ~p_on_to_off:mmpp.p_on_to_off
      ~p_off_to_on:mmpp.p_off_to_on ~sample ~mean:per_source_on ()
  in
  Workload.of_sources (sources_with ~mmpp ~label ~make_process ~rng)

let port_values config = Array.init (Value_config.n config) (fun i -> i + 1)
