open Smbm_prelude
type t = { mmpp : Mmpp.t; label : Label.t; rng : Rng.t }

let create ~mmpp ~label ~rng = { mmpp; label; rng }

let step t ~into =
  let count = Mmpp.step t.mmpp in
  for _ = 1 to count do
    into := t.label t.rng :: !into
  done

let mean_rate t = Mmpp.mean_rate t.mmpp
