(** Recorded arrival traces: capture a workload, replay it later, or persist
    it to disk in a one-line-per-slot text format ("dest:value dest:value
    ...", blank line for an idle slot). *)

open Smbm_core

type t

val record : Workload.t -> slots:int -> t
(** Consume [slots] slots of the workload into a trace. *)

val of_slots : Arrival.t list array -> t
val slots : t -> int
val arrivals : t -> int
(** Total packet count. *)

val get : t -> int -> Arrival.t list
(** Arrivals of slot [i].  @raise Invalid_argument out of bounds. *)

val to_workload : t -> Workload.t
(** Replay; slots beyond the end are empty. *)

val save : t -> out_channel -> unit
val load : in_channel -> t
(** @raise Failure on malformed input. *)

val equal : t -> t -> bool
