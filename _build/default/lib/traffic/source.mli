(** A traffic source: an MMPP emission process plus a labelling rule. *)

open Smbm_prelude
open Smbm_core

type t

val create : mmpp:Mmpp.t -> label:Label.t -> rng:Rng.t -> t
(** [rng] drives the labelling (the MMPP holds its own stream). *)

val step : t -> into:Arrival.t list ref -> unit
(** Advance one slot, prepending this slot's emissions onto [into]. *)

val mean_rate : t -> float
