(** Terminal line plots: several series on one character grid, with a
    per-series marker legend.  Good enough to eyeball the shape of a Fig. 5
    panel without leaving the terminal. *)

val render :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  ?x_label:string ->
  ?y_label:string ->
  ?log_x:bool ->
  Series.t list ->
  string
(** [width] and [height] are the plotting area in characters (defaults 64 and
    16).  [log_x] spaces x logarithmically (natural for doubling sweeps).
    Non-finite y values are skipped. *)
