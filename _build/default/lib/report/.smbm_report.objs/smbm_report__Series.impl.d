lib/report/series.ml: Float List
