lib/report/table.ml: Float List Printf String
