lib/report/series.mli:
