lib/report/table.mli:
