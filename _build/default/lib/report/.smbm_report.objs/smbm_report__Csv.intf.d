lib/report/csv.mli:
