lib/report/csv.ml: Buffer List String
