(** A named sequence of (x, y) points — one plotted line of a figure. *)

type t = { name : string; points : (float * float) list }

val make : name:string -> points:(float * float) list -> t

val of_ints : name:string -> points:(int * float) list -> t

val y_range : t list -> float * float
(** (min, max) over all finite y values; (0, 1) when there are none. *)

val x_range : t list -> float * float
