let markers = "ox+*#@%&=~^"

let render ?(width = 64) ?(height = 16) ?title ?x_label ?y_label
    ?(log_x = false) series =
  let width = max width 8 and height = max height 4 in
  let tx x = if log_x then log x else x in
  let x_lo, x_hi = Series.x_range series in
  let x_lo, x_hi = (tx x_lo, tx x_hi) in
  let y_lo, y_hi = Series.y_range series in
  (* Pad degenerate ranges so a flat series still renders. *)
  let pad lo hi = if hi -. lo < 1e-9 then (lo -. 1.0, hi +. 1.0) else (lo, hi) in
  let x_lo, x_hi = pad x_lo x_hi and y_lo, y_hi = pad y_lo y_hi in
  let grid = Array.make_matrix height width ' ' in
  let col x =
    let f = (tx x -. x_lo) /. (x_hi -. x_lo) in
    min (width - 1) (max 0 (int_of_float (f *. float_of_int (width - 1) +. 0.5)))
  in
  let row y =
    let f = (y -. y_lo) /. (y_hi -. y_lo) in
    let r = int_of_float (f *. float_of_int (height - 1) +. 0.5) in
    height - 1 - min (height - 1) (max 0 r)
  in
  List.iteri
    (fun i (s : Series.t) ->
      let marker = markers.[i mod String.length markers] in
      List.iter
        (fun (x, y) ->
          if Float.is_finite y && Float.is_finite (tx x) then
            grid.(row y).(col x) <- marker)
        s.points)
    series;
  let buf = Buffer.create (width * height * 2) in
  (match title with
  | Some t ->
    Buffer.add_string buf t;
    Buffer.add_char buf '\n'
  | None -> ());
  (match y_label with
  | Some l ->
    Buffer.add_string buf l;
    Buffer.add_char buf '\n'
  | None -> ());
  let y_tick r =
    (* y value at grid row r *)
    y_lo +. ((y_hi -. y_lo) *. float_of_int (height - 1 - r) /. float_of_int (height - 1))
  in
  Array.iteri
    (fun r line ->
      let label =
        if r = 0 || r = height - 1 || r = height / 2 then
          Printf.sprintf "%8.3f |" (y_tick r)
        else Printf.sprintf "%8s |" ""
      in
      Buffer.add_string buf label;
      Buffer.add_string buf (String.init width (fun c -> line.(c)));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (Printf.sprintf "%8s +%s\n" "" (String.make width '-'));
  Buffer.add_string buf
    (Printf.sprintf "%8s  %-*.4g%*.4g\n" "" (width / 2)
       (if log_x then exp x_lo else x_lo)
       (width - (width / 2))
       (if log_x then exp x_hi else x_hi));
  (match x_label with
  | Some l ->
    Buffer.add_string buf (Printf.sprintf "%8s  x: %s\n" "" l)
  | None -> ());
  let legend =
    List.mapi
      (fun i (s : Series.t) ->
        Printf.sprintf "%c=%s" markers.[i mod String.length markers] s.name)
      series
  in
  Buffer.add_string buf (Printf.sprintf "%8s  %s\n" "" (String.concat "  " legend));
  Buffer.contents buf
