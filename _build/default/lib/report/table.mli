(** Column-aligned plain-text tables. *)

type align = Left | Right

val render :
  ?align:align list ->
  headers:string list ->
  rows:string list list ->
  unit ->
  string
(** Monospace table with a header separator.  [align] gives per-column
    alignment (default: first column left, rest right).  Short rows are
    padded with empty cells.
    @raise Invalid_argument if a row is longer than the header. *)

val float_cell : ?digits:int -> float -> string
(** Fixed-point rendering with [digits] decimals (default 3); infinities
    render as "inf". *)
