let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let row fields = String.concat "," (List.map escape fields)

let write oc rows =
  List.iter
    (fun r ->
      output_string oc (row r);
      output_char oc '\n')
    rows

let of_table ~headers ~rows =
  String.concat "\n" (List.map row (headers :: rows)) ^ "\n"
