type align = Left | Right

let float_cell ?(digits = 3) v =
  if Float.is_nan v then "nan"
  else if v = infinity then "inf"
  else if v = neg_infinity then "-inf"
  else Printf.sprintf "%.*f" digits v

let pad align width s =
  let missing = width - String.length s in
  if missing <= 0 then s
  else
    match align with
    | Left -> s ^ String.make missing ' '
    | Right -> String.make missing ' ' ^ s

let render ?align ~headers ~rows () =
  let columns = List.length headers in
  List.iter
    (fun row ->
      if List.length row > columns then
        invalid_arg "Table.render: row longer than header")
    rows;
  let aligns =
    match align with
    | Some a ->
      if List.length a <> columns then
        invalid_arg "Table.render: align length mismatch"
      else a
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) headers
  in
  let fill row = row @ List.init (columns - List.length row) (fun _ -> "") in
  let all = headers :: List.map fill rows in
  let width i =
    List.fold_left (fun w row -> max w (String.length (List.nth row i))) 0 all
  in
  let widths = List.init columns width in
  let render_row row =
    List.map2 (fun (a, w) cell -> pad a w cell) (List.combine aligns widths) row
    |> String.concat "  "
  in
  let sep =
    List.map (fun w -> String.make w '-') widths |> String.concat "  "
  in
  String.concat "\n"
    (render_row headers :: sep :: List.map render_row (List.map fill rows))
  ^ "\n"
