type t = { name : string; points : (float * float) list }

let make ~name ~points = { name; points }

let of_ints ~name ~points =
  { name; points = List.map (fun (x, y) -> (float_of_int x, y)) points }

let finite_fold f init series select =
  List.fold_left
    (fun acc s ->
      List.fold_left
        (fun acc p ->
          let v = select p in
          if Float.is_finite v then f acc v else acc)
        acc s.points)
    init series

let range series select =
  let lo = finite_fold Float.min infinity series select in
  let hi = finite_fold Float.max neg_infinity series select in
  if lo > hi then (0.0, 1.0) else (lo, hi)

let y_range series = range series snd
let x_range series = range series fst
