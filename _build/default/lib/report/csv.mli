(** Minimal RFC-4180-style CSV writing (quoting of commas, quotes and
    newlines), for exporting sweep results to external plotting tools. *)

val escape : string -> string
(** Quote a field if it contains a comma, a double quote or a newline. *)

val row : string list -> string
(** One CSV line (no trailing newline). *)

val write : out_channel -> string list list -> unit
(** Write rows, one per line. *)

val of_table : headers:string list -> rows:string list list -> string
(** Full document with a header line. *)
