open Smbm_sim

let split_seeds ~seed n =
  let module Rng = Smbm_prelude.Rng in
  let parent = Rng.create ~seed in
  List.init n (fun _ -> Int64.to_int (Rng.bits64 (Rng.split parent)))

let with_pool ?jobs ?on_tick f =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  Pool.with_pool ?on_tick ~jobs f

let run_points ?jobs ?on_tick ~base ~model ~axis ~xs () =
  with_pool ?jobs ?on_tick (fun pool ->
      Pool.map pool (fun x -> (x, Sweep.run_point ~base ~model ~axis ~x)) xs)

let panel_of ?base ?xs number =
  let base = Option.value base ~default:Sweep.default_base in
  let panel = Sweep.panel number in
  let panel = match xs with Some xs -> { panel with Sweep.xs } | None -> panel in
  (base, panel)

let run_panel ?jobs ?on_tick ?base ?xs number =
  let base, panel = panel_of ?base ?xs number in
  let points =
    run_points ?jobs ?on_tick ~base ~model:panel.Sweep.model
      ~axis:panel.Sweep.axis ~xs:panel.Sweep.xs ()
    |> List.map (fun (x, ratios) -> { Sweep.x; ratios })
  in
  { Sweep.panel; points }

let run_panels ?jobs ?on_tick ?base numbers =
  let panels = List.map (fun n -> snd (panel_of ?base n)) numbers in
  let base = Option.value base ~default:Sweep.default_base in
  let tasks =
    List.concat_map
      (fun (p : Sweep.panel) -> List.map (fun x -> (p, x)) p.Sweep.xs)
      panels
  in
  let points =
    with_pool ?jobs ?on_tick (fun pool ->
        Pool.map pool
          (fun ((p : Sweep.panel), x) ->
            {
              Sweep.x;
              ratios =
                Sweep.run_point ~base ~model:p.Sweep.model ~axis:p.Sweep.axis
                  ~x;
            })
          tasks)
  in
  (* Results come back in submission order: peel each panel's slice off the
     front. *)
  let rec reassemble panels points =
    match panels with
    | [] -> []
    | (p : Sweep.panel) :: rest ->
      let n = List.length p.Sweep.xs in
      let mine = List.filteri (fun i _ -> i < n) points in
      let others = List.filteri (fun i _ -> i >= n) points in
      { Sweep.panel = p; points = mine } :: reassemble rest others
  in
  reassemble panels points

let run_point_replicated ?jobs ?on_tick ~base ~model ~axis ~x ~seeds () =
  if seeds = [] then invalid_arg "Par_sweep.run_point_replicated: no seeds";
  let per_seed =
    with_pool ?jobs ?on_tick (fun pool ->
        Pool.map pool
          (fun seed ->
            Sweep.run_point ~base:{ base with Sweep.seed } ~model ~axis ~x)
          seeds)
  in
  Sweep.aggregate_replicates per_seed
