lib/par/pool.ml: Array Atomic Condition Domain Fun List Mutex Printexc Queue String Sys
