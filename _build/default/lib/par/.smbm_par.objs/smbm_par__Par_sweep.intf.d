lib/par/par_sweep.mli: Smbm_sim Sweep
