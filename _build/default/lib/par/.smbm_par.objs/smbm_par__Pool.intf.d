lib/par/pool.mli:
