lib/par/par_sweep.ml: Int64 List Option Pool Smbm_prelude Smbm_sim Sweep
