type t = {
  jobs : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  progress : int Atomic.t;
  on_tick : (int -> unit) option;
}

(* Workers drain the queue even while stopping, so shutdown is graceful:
   every task submitted before [shutdown] runs to completion. *)
let rec worker t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.work_available t.mutex
  done;
  match Queue.take_opt t.queue with
  | None ->
    (* stopping and drained *)
    Mutex.unlock t.mutex
  | Some task ->
    Mutex.unlock t.mutex;
    task ();
    worker t

let create ?on_tick ~jobs () =
  if jobs < 0 then invalid_arg "Pool.create: jobs must be non-negative";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      domains = [];
      progress = Atomic.make 0;
      on_tick;
    }
  in
  t.domains <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker t));
  t

let jobs t = t.jobs
let completed t = Atomic.get t.progress

let tick t =
  let n = Atomic.fetch_and_add t.progress 1 + 1 in
  match t.on_tick with None -> () | Some f -> f n

let mapi t f items =
  let items = Array.of_list items in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    (* Per-batch completion latch; [results] and [errors] are published to
       the caller through it (task writes happen-before the decrement, the
       caller reads after observing zero under the same mutex). *)
    let remaining = ref n in
    let batch_mutex = Mutex.create () in
    let batch_done = Condition.create () in
    let task i () =
      (match f i items.(i) with
      | v -> results.(i) <- Some v
      | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
      tick t;
      Mutex.lock batch_mutex;
      decr remaining;
      if !remaining = 0 then Condition.signal batch_done;
      Mutex.unlock batch_mutex
    in
    if t.jobs = 0 then begin
      if t.stopping then invalid_arg "Pool: pool has been shut down";
      for i = 0 to n - 1 do
        task i ()
      done
    end
    else begin
      Mutex.lock t.mutex;
      if t.stopping then begin
        Mutex.unlock t.mutex;
        invalid_arg "Pool: pool has been shut down"
      end;
      for i = 0 to n - 1 do
        Queue.add (task i) t.queue
      done;
      Condition.broadcast t.work_available;
      Mutex.unlock t.mutex;
      Mutex.lock batch_mutex;
      while !remaining > 0 do
        Condition.wait batch_done batch_mutex
      done;
      Mutex.unlock batch_mutex
    end;
    (* Deterministic failure attribution: earliest submitted task wins. *)
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.to_list
      (Array.map
         (function
           | Some v -> v
           | None -> assert false (* no error => every slot was filled *))
         results)
  end

let map t f items = mapi t (fun _ x -> f x) items

let map_reduce t ~map:f ~reduce ~init items =
  List.fold_left reduce init (map t f items)

let shutdown t =
  Mutex.lock t.mutex;
  if t.stopping then Mutex.unlock t.mutex
  else begin
    t.stopping <- true;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_pool ?on_tick ~jobs f =
  let t = create ?on_tick ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let default_jobs () =
  match Sys.getenv_opt "SMBM_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j > 0 -> j
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()
