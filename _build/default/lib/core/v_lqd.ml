(* argmax over queues of virtual length; ties towards the smaller minimum
   value, then the larger index.  Encoded as a lexicographic key
   (length, -min_value, index). *)
let select_victim sw ~dest =
  let best = ref 0 and best_key = ref (min_int, min_int) in
  for j = 0 to Value_switch.n sw - 1 do
    let len = Value_switch.queue_length sw j + if j = dest then 1 else 0 in
    let min_v =
      match Value_queue.min_value (Value_switch.queue sw j) with
      | Some v -> v
      | None -> max_int
    in
    let key = (len, -min_v) in
    if key >= !best_key then begin
      best := j;
      best_key := key
    end
  done;
  !best

let make _config =
  Value_policy.make ~name:"LQD" ~push_out:true (fun sw ~dest ~value ->
      match Value_policy.greedy_accept sw with
      | Some d -> d
      | None ->
        let victim = select_victim sw ~dest in
        if victim <> dest then Decision.Push_out { victim }
        else begin
          match Value_queue.min_value (Value_switch.queue sw dest) with
          | Some m when m < value -> Decision.Push_out { victim = dest }
          | Some _ | None -> Decision.Drop
        end)
