(* argmax over queues of (virtual length, work, index); the virtual length
   counts the arriving packet as already added to [dest]. *)
let select_victim sw ~dest =
  let best = ref 0 and best_key = ref (min_int, min_int) in
  for j = 0 to Proc_switch.n sw - 1 do
    let len =
      Proc_switch.queue_length sw j + if j = dest then 1 else 0
    in
    let key = (len, Proc_switch.port_work sw j) in
    (* Strict >= on equal keys keeps the largest index among full ties. *)
    if key >= !best_key then begin
      best := j;
      best_key := key
    end
  done;
  !best

let make _config =
  Proc_policy.make ~name:"LQD" ~push_out:true (fun sw ~dest ->
      match Proc_policy.greedy_accept sw with
      | Some d -> d
      | None ->
        let victim = select_victim sw ~dest in
        if victim <> dest then Decision.Push_out { victim } else Decision.Drop)
