let select_victim ~protect_last sw =
  let min_len = if protect_last then 2 else 1 in
  let best = ref None in
  (* argmin over eligible queues of (min value, -length, -index). *)
  let best_key = ref (max_int, max_int) in
  for j = 0 to Value_switch.n sw - 1 do
    let q = Value_switch.queue sw j in
    if Value_queue.length q >= min_len then begin
      match Value_queue.min_value q with
      | None -> ()
      | Some v ->
        let key = (v, -Value_queue.length q) in
        if key <= !best_key then begin
          best := Some (j, v);
          best_key := key
        end
    end
  done;
  !best

let make ?(protect_last = false) _config =
  let name = if protect_last then "MVD1" else "MVD" in
  Value_policy.make ~name ~push_out:true (fun sw ~dest:_ ~value ->
      match Value_policy.greedy_accept sw with
      | Some d -> d
      | None -> (
        match select_victim ~protect_last sw with
        | Some (victim, min_v) when min_v < value -> Decision.Push_out { victim }
        | Some _ | None -> Decision.Drop))
