(** Switch configuration for the heterogeneous-processing model.

    An [l x n] shared-memory switch is described by its per-port processing
    requirements (the "configuration" of Section III-B: the assignment of
    required work to output ports), the shared buffer size [B], and the
    per-queue speedup [C] (number of cores serving each queue, Section V-A).
    The number of input ports [l] plays no role in buffer management and is
    not modelled. *)

type t = private {
  works : int array;  (** [works.(i)] is the required work of port [i] *)
  buffer : int;  (** shared buffer size [B], in packets *)
  speedup : int;  (** processing cycles per queue per slot [C] *)
}

val make : works:int array -> buffer:int -> ?speedup:int -> unit -> t
(** @raise Invalid_argument unless all works are >= 1, [buffer >= 1] and
    [speedup >= 1].  The paper additionally assumes [B >= n]; this is not
    enforced so that corner cases remain testable. *)

val contiguous : k:int -> buffer:int -> ?speedup:int -> unit -> t
(** The paper's contiguous configuration: [k] ports with works [1, 2, .., k].
    All lower-bound constructions of Section III-B use this configuration. *)

val uniform : n:int -> work:int -> buffer:int -> ?speedup:int -> unit -> t
(** [n] ports that all require [work] cycles (the classical shared-memory
    switch of Aiello et al. when [work = 1]). *)

val bimodal :
  n:int -> cheap:int -> expensive:int -> ?expensive_ports:int ->
  buffer:int -> ?speedup:int -> unit -> t
(** A two-class configuration: the last [expensive_ports] ports (default
    [n / 4], at least 1) require [expensive] cycles, the rest [cheap] — the
    firewall-vs-IPsec shape of the paper's Fig. 1 motivation.
    @raise Invalid_argument unless [1 <= expensive_ports <= n]. *)

val geometric : n:int -> ?base:int -> buffer:int -> ?speedup:int -> unit -> t
(** Works [base^0, base^1, .., base^(n-1)] (default base 2): a heavy-tailed
    spread of processing requirements. *)

val n : t -> int
(** Number of output ports. *)

val k : t -> int
(** Maximum required work over all ports. *)

val work : t -> int -> int
(** [work t i] is the required work of port [i]. *)

val inverse_work_sum : t -> float
(** [Z = sum_i 1 / w_i], the normalizer of the NHST thresholds. *)

val pp : Format.formatter -> t -> unit
