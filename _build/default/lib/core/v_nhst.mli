(** Harmonic static thresholds for the value model.

    Meaningful in configurations where each port is associated with a value
    (the value-equals-port special case of Section V-C).  The direct variant
    reuses the processing-model thresholds [B / (v_i * Z)]; since high-value
    packets are now the desirable ones, the paper instead reverses the
    thresholds to [B / ((k - v_i + 1) * H_k)], giving high-value ports the
    large shares. *)

val make :
  ?reversed:bool -> port_value:int array -> Value_config.t -> Value_policy.t
(** [port_value.(i)] is the value associated with port [i].
    [reversed] defaults to [true] (the variant the paper simulates). *)

val threshold :
  reversed:bool -> port_value:int array -> buffer:int -> int -> float
(** Admission threshold of port [i]; exposed for tests. *)
