let make config =
  let n = Value_config.n config in
  let b = config.Value_config.buffer in
  Value_policy.make ~name:"NEST" ~push_out:false (fun sw ~dest ~value:_ ->
      if Value_switch.is_full sw then Decision.Drop
      else if Value_switch.queue_length sw dest * n < b then Decision.Accept
      else Decision.Drop)
