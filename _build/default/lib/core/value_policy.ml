type t = {
  name : string;
  push_out : bool;
  admit : Value_switch.t -> dest:int -> value:int -> Decision.t;
}

let make ~name ~push_out admit = { name; push_out; admit }
let admit t sw ~dest ~value = t.admit sw ~dest ~value

let greedy_accept sw =
  if Value_switch.is_full sw then None else Some Decision.Accept
