(** Admission decision returned by a buffer-management policy for one
    arriving packet. *)

type t =
  | Accept  (** admit into the destination queue; requires free buffer space *)
  | Push_out of { victim : int }
      (** evict the tail packet of queue [victim], then admit; only
          meaningful when the buffer is full *)
  | Drop  (** reject the arriving packet *)

val is_drop : t -> bool
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
