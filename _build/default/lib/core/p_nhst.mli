(** Non-Push-Out-Harmonic-Static-Threshold (NHST).

    Accept an arrival for port [i] iff [|Q_i| < B / (w_i * Z)] where
    [Z = sum_j 1/w_j] — static per-queue thresholds inversely proportional to
    required processing.  Theorem 1: (kZ + o(kZ))-competitive. *)

val make : Proc_config.t -> Proc_policy.t

val threshold : Proc_config.t -> int -> float
(** The (real-valued) admission threshold of port [i]; exposed for tests. *)
