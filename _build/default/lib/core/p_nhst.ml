let threshold config i =
  let z = Proc_config.inverse_work_sum config in
  float_of_int config.Proc_config.buffer
  /. (float_of_int (Proc_config.work config i) *. z)

let make config =
  let thresholds =
    Array.init (Proc_config.n config) (fun i -> threshold config i)
  in
  Proc_policy.make ~name:"NHST" ~push_out:false (fun sw ~dest ->
      if Proc_switch.is_full sw then Decision.Drop
      else if float_of_int (Proc_switch.queue_length sw dest) < thresholds.(dest)
      then Decision.Accept
      else Decision.Drop)
