open Smbm_prelude

type t = {
  work : int;
  packets : Packet.Proc.t Deque.t;
  mutable total_work : int;
}

let create ~work =
  if work < 1 then invalid_arg "Work_queue.create: work must be >= 1";
  { work; packets = Deque.create (); total_work = 0 }

let work t = t.work
let length t = Deque.length t.packets
let is_empty t = Deque.is_empty t.packets
let total_work t = t.total_work

let hol_residual t =
  if is_empty t then 0 else (Deque.peek_front t.packets).Packet.Proc.residual

let push t (p : Packet.Proc.t) =
  if p.work <> t.work then
    invalid_arg "Work_queue.push: packet work does not match port work";
  Deque.push_back t.packets p;
  t.total_work <- t.total_work + p.residual

let pop_back t =
  if is_empty t then invalid_arg "Work_queue.pop_back: empty";
  let p = Deque.pop_back t.packets in
  t.total_work <- t.total_work - p.Packet.Proc.residual;
  p

let process t ~cycles ~on_transmit =
  let budget = ref cycles in
  let transmitted = ref 0 in
  while !budget > 0 && not (is_empty t) do
    let hol = Deque.peek_front t.packets in
    let served = min !budget hol.Packet.Proc.residual in
    hol.residual <- hol.residual - served;
    t.total_work <- t.total_work - served;
    budget := !budget - served;
    if hol.residual = 0 then begin
      let p = Deque.pop_front t.packets in
      incr transmitted;
      on_transmit p
    end
  done;
  !transmitted

let iter f t = Deque.iter f t.packets
let to_list t = Deque.to_list t.packets

let clear t =
  let dropped = length t in
  Deque.clear t.packets;
  t.total_work <- 0;
  dropped
