(** Packets of the two switch models.

    Both models use unit-sized packets (one buffer slot each).  In the
    processing model a packet carries required work in cycles; in the value
    model it carries an intrinsic value and requires a single cycle. *)

(** Processing-model packet (Section III of the paper). *)
module Proc : sig
  type t = {
    id : int;  (** unique within a switch instance, in admission order *)
    dest : int;  (** output port, [0 .. n-1] *)
    work : int;  (** required work in cycles, [1 .. k] *)
    mutable residual : int;  (** remaining work; transmitted at 0 *)
    arrival : int;  (** slot of admission *)
  }

  val make : id:int -> dest:int -> work:int -> arrival:int -> t
  val pp : Format.formatter -> t -> unit
end

(** Value-model packet (Section IV of the paper). *)
module Value : sig
  type t = {
    id : int;
    dest : int;
    value : int;  (** intrinsic value, [1 .. k] *)
    arrival : int;
  }

  val make : id:int -> dest:int -> value:int -> arrival:int -> t
  val pp : Format.formatter -> t -> unit
end
