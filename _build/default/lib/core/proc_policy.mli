(** Buffer-management policies for the processing model.

    A policy is a pure admission rule: given the current switch state and an
    arriving packet's destination port, it returns a {!Decision.t}.  The
    engine applies the decision; the switch validates it.  Policies with
    per-instance state (none of the paper's need any) can close over it in
    [admit]. *)

type t = {
  name : string;
  push_out : bool;
      (** whether the policy ever evicts admitted packets; informational *)
  admit : Proc_switch.t -> dest:int -> Decision.t;
}

val make :
  name:string -> push_out:bool -> (Proc_switch.t -> dest:int -> Decision.t) -> t

val admit : t -> Proc_switch.t -> dest:int -> Decision.t

val greedy_accept : Proc_switch.t -> Decision.t option
(** [Some Accept] when the buffer has free space — the shared first clause of
    every greedy policy in the paper — and [None] otherwise. *)
