type t = {
  config : Value_config.t;
  queues : Value_queue.t array;
  mutable occupancy : int;
  mutable next_id : int;
  mutable now : int;
}

let create (config : Value_config.t) =
  let queues =
    Array.init (Value_config.n config) (fun _ ->
        Value_queue.create ~k:(Value_config.k config))
  in
  { config; queues; occupancy = 0; next_id = 0; now = 0 }

let config t = t.config
let n t = Array.length t.queues
let k t = Value_config.k t.config
let buffer t = t.config.Value_config.buffer
let speedup t = t.config.Value_config.speedup
let now t = t.now
let advance_slot t = t.now <- t.now + 1
let occupancy t = t.occupancy
let free_space t = buffer t - t.occupancy
let is_full t = t.occupancy >= buffer t

let queue t i =
  if i < 0 || i >= n t then invalid_arg "Value_switch.queue: bad port";
  t.queues.(i)

let queue_length t i = Value_queue.length (queue t i)

let min_value t =
  Array.fold_left
    (fun acc q ->
      match Value_queue.min_value q with
      | None -> acc
      | Some v -> ( match acc with None -> Some v | Some m -> Some (min m v)))
    None t.queues

let min_value_port t =
  match min_value t with
  | None -> None
  | Some m ->
    let best = ref (-1) in
    Array.iteri
      (fun i q ->
        if Value_queue.min_value q = Some m then
          if
            !best < 0
            || Value_queue.length q > Value_queue.length t.queues.(!best)
          then best := i)
      t.queues;
    Some !best

let accept t ~dest ~value =
  if is_full t then invalid_arg "Value_switch.accept: buffer full";
  let p = Packet.Value.make ~id:t.next_id ~dest ~value ~arrival:t.now in
  t.next_id <- t.next_id + 1;
  Value_queue.push (queue t dest) p;
  t.occupancy <- t.occupancy + 1;
  p

let push_out t ~victim =
  let q = queue t victim in
  if Value_queue.is_empty q then
    invalid_arg "Value_switch.push_out: victim queue empty";
  let p = Value_queue.pop_min q in
  t.occupancy <- t.occupancy - 1;
  p

let transmit_phase t ~on_transmit =
  let budget = speedup t in
  let transmitted = ref 0 in
  Array.iter
    (fun q ->
      let sent = ref 0 in
      while !sent < budget && not (Value_queue.is_empty q) do
        on_transmit (Value_queue.pop_max q);
        incr sent
      done;
      transmitted := !transmitted + !sent)
    t.queues;
  t.occupancy <- t.occupancy - !transmitted;
  !transmitted

let flush t =
  let dropped = Array.fold_left (fun acc q -> acc + Value_queue.clear q) 0 t.queues in
  t.occupancy <- t.occupancy - dropped;
  assert (t.occupancy = 0);
  dropped

let iter_queues f t = Array.iteri f t.queues

let check_invariants t =
  let len_sum = Array.fold_left (fun acc q -> acc + Value_queue.length q) 0 t.queues in
  if len_sum <> t.occupancy then
    invalid_arg "Value_switch: occupancy out of sync with queue lengths";
  if t.occupancy > buffer t then invalid_arg "Value_switch: occupancy exceeds B";
  Array.iter
    (fun q ->
      let sum =
        List.fold_left
          (fun acc (p : Packet.Value.t) -> acc + p.value)
          0 (Value_queue.to_list q)
      in
      if sum <> Value_queue.total_value q then
        invalid_arg "Value_switch: cached total value out of sync";
      (* to_list is in non-increasing value order by construction. *)
      let rec sorted = function
        | (a : Packet.Value.t) :: (b : Packet.Value.t) :: rest ->
          a.value >= b.value && sorted (b :: rest)
        | [ _ ] | [] -> true
      in
      if not (sorted (Value_queue.to_list q)) then
        invalid_arg "Value_switch: queue not value-sorted")
    t.queues
