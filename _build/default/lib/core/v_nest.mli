(** Equal static thresholds (NEST) for the value model: accept an arrival
    for port [i] iff [|Q_i| < B / n].  Complete partitioning, value-blind. *)

val make : Value_config.t -> Value_policy.t
