(** Priority output queue of the value model.

    Packets are kept in non-increasing value order (the paper's most
    favourable per-queue processing order): transmission takes the most
    valuable packet, push-out evicts the least valuable one.  Values live in
    the bounded universe [1 .. k], so the queue is a bucket array — every
    operation is O(k) worst case and O(1) amortized under stable value mixes.
    Within a value bucket, transmission is FIFO and push-out evicts the most
    recently admitted packet ("the last packet" of the queue). *)


type t

val create : k:int -> t
(** Empty queue accepting values in [1 .. k]. *)

val length : t -> int
val is_empty : t -> bool

val total_value : t -> int
(** Sum of queued packet values. *)

val average_value : t -> float
(** [a_j] in the paper's MRD definition; 0 when empty. *)

val min_value : t -> int option
val max_value : t -> int option

val push : t -> Packet.Value.t -> unit
(** @raise Invalid_argument if the value is outside [1 .. k]. *)

val pop_min : t -> Packet.Value.t
(** Evict the least valuable packet (most recent arrival among ties).
    @raise Invalid_argument on an empty queue. *)

val pop_max : t -> Packet.Value.t
(** Transmit the most valuable packet (earliest arrival among ties).
    @raise Invalid_argument on an empty queue. *)

val iter : (Packet.Value.t -> unit) -> t -> unit
(** In non-increasing value order. *)

val to_list : t -> Packet.Value.t list
(** In non-increasing value order. *)

val clear : t -> int
(** Drop all packets, returning how many were dropped. *)
