type t = Accept | Push_out of { victim : int } | Drop

let is_drop = function Drop -> true | Accept | Push_out _ -> false

let pp ppf = function
  | Accept -> Format.pp_print_string ppf "accept"
  | Push_out { victim } -> Format.fprintf ppf "push-out(Q%d)" victim
  | Drop -> Format.pp_print_string ppf "drop"

let equal a b =
  match a, b with
  | Accept, Accept | Drop, Drop -> true
  | Push_out { victim = v1 }, Push_out { victim = v2 } -> v1 = v2
  | (Accept | Push_out _ | Drop), _ -> false
