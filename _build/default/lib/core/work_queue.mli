(** FIFO output queue of the processing model.

    Every packet admitted to a queue has the same required work (the port's
    traffic type); only the head-of-line packet may be partially processed.
    The queue maintains its total remaining work [W_i] incrementally — the
    quantity the LWD policy compares across queues. *)


type t

val create : work:int -> t
(** An empty queue for a port whose packets require [work] cycles. *)

val work : t -> int
(** Per-packet required work of this port. *)

val length : t -> int
val is_empty : t -> bool

val total_work : t -> int
(** Sum of residual works of all queued packets ([W_i] in the paper). *)

val hol_residual : t -> int
(** Residual work of the head-of-line packet; 0 when empty. *)

val push : t -> Packet.Proc.t -> unit
(** Append at the tail.
    @raise Invalid_argument if the packet's work differs from the port's. *)

val pop_back : t -> Packet.Proc.t
(** Remove the tail packet (the one a push-out policy evicts).
    @raise Invalid_argument on an empty queue. *)

val process : t -> cycles:int -> on_transmit:(Packet.Proc.t -> unit) -> int
(** Apply up to [cycles] processing cycles, head-of-line first and
    run-to-completion: when a packet finishes mid-budget the remaining cycles
    continue with the next packet.  Calls [on_transmit] on each completed
    packet and returns the number transmitted. *)

val iter : (Packet.Proc.t -> unit) -> t -> unit
(** Front-to-back. *)

val to_list : t -> Packet.Proc.t list

val clear : t -> int
(** Drop all packets, returning how many were dropped. *)
