(** Non-Push-Out-Equal-Static-Threshold (NEST).

    Accept an arrival for port [i] iff [|Q_i| < B / n] — complete
    partitioning of the buffer into equal shares.  Theorem 2:
    (n + o(n))-competitive. *)

val make : Proc_config.t -> Proc_policy.t
