let proc config =
  [
    P_nhst.make config;
    P_nest.make config;
    P_nhdt.make config;
    P_lqd.make config;
    P_bpd.make config;
    P_bpd.make ~protect_last:true config;
    P_lwd.make config;
  ]

let proc_extended config =
  let half_partition =
    config.Proc_config.buffer / (2 * Proc_config.n config)
  in
  proc config
  @ [
      P_lwd.make ~protect_last:true config;
      P_lwd.make ~tie:P_lwd.Smallest_work config;
      P_lwd.make ~tie:P_lwd.Longest_queue config;
      P_reserved.make ~reserve:half_partition config;
      P_rand.make config;
    ]

let proc_find config name =
  let name = String.lowercase_ascii name in
  List.find_opt
    (fun (p : Proc_policy.t) -> String.lowercase_ascii p.name = name)
    (proc_extended config)

let value_uniform config =
  [
    V_greedy.make config;
    V_nest.make config;
    V_lqd.make config;
    V_mvd.make config;
    V_mvd.make ~protect_last:true config;
    V_mrd.make config;
  ]

let value_port ~port_value config =
  value_uniform config @ [ V_nhst.make ~port_value config ]

let value_extended config =
  value_uniform config
  @ [ V_mrd.make ~protect_last:true config; P_rand.make_value config ]

let value_find ?port_value config name =
  let name = String.lowercase_ascii name in
  let pool =
    (match port_value with
    | Some port_value -> value_port ~port_value config
    | None -> value_uniform config)
    @ value_extended config
  in
  List.find_opt
    (fun (p : Value_policy.t) -> String.lowercase_ascii p.name = name)
    pool
