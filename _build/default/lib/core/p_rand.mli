(** Random-Queue-Drop: a seeded baseline that, when the buffer is full,
    pushes out the tail of a uniformly random non-empty queue (the
    destination counts with its virtual packet; choosing it drops the
    arrival).

    Not from the paper — an ablation control: any structured eviction rule
    should beat it, and it separates "push-out at all" from "push out
    *what*" in the Fig. 5-style comparisons. *)

val make : ?seed:int -> Proc_config.t -> Proc_policy.t

val make_value : ?seed:int -> Value_config.t -> Value_policy.t
(** Value-model variant: evicts the least valuable packet of a random
    non-empty queue; drops arrivals strictly below the buffer minimum. *)
