(** Switch configuration for the heterogeneous-value model (Section IV).

    Packets require a single processing cycle; each carries a value in
    [1 .. k].  [speedup] is the number of packets each queue may transmit per
    slot (Section V-A's per-queue core count [C]). *)

type t = private {
  ports : int;  (** number of output ports [n] *)
  max_value : int;  (** maximum packet value [k] *)
  buffer : int;  (** shared buffer size [B] *)
  speedup : int;  (** packets transmittable per queue per slot [C] *)
}

val make : ports:int -> max_value:int -> buffer:int -> ?speedup:int -> unit -> t
(** @raise Invalid_argument unless all of [ports], [max_value], [buffer],
    [speedup] are >= 1. *)

val n : t -> int
val k : t -> int

val pp : Format.formatter -> t -> unit
