type t = { works : int array; buffer : int; speedup : int }

let make ~works ~buffer ?(speedup = 1) () =
  if Array.length works = 0 then invalid_arg "Proc_config.make: no ports";
  Array.iter
    (fun w -> if w < 1 then invalid_arg "Proc_config.make: work must be >= 1")
    works;
  if buffer < 1 then invalid_arg "Proc_config.make: buffer must be >= 1";
  if speedup < 1 then invalid_arg "Proc_config.make: speedup must be >= 1";
  { works = Array.copy works; buffer; speedup }

let contiguous ~k ~buffer ?speedup () =
  if k < 1 then invalid_arg "Proc_config.contiguous: k must be >= 1";
  make ~works:(Array.init k (fun i -> i + 1)) ~buffer ?speedup ()

let uniform ~n ~work ~buffer ?speedup () =
  if n < 1 then invalid_arg "Proc_config.uniform: n must be >= 1";
  make ~works:(Array.make n work) ~buffer ?speedup ()

let bimodal ~n ~cheap ~expensive ?expensive_ports ~buffer ?speedup () =
  if n < 1 then invalid_arg "Proc_config.bimodal: n must be >= 1";
  let expensive_ports =
    match expensive_ports with Some e -> e | None -> max 1 (n / 4)
  in
  if expensive_ports < 1 || expensive_ports > n then
    invalid_arg "Proc_config.bimodal: expensive_ports out of range";
  let works =
    Array.init n (fun i -> if i >= n - expensive_ports then expensive else cheap)
  in
  make ~works ~buffer ?speedup ()

let geometric ~n ?(base = 2) ~buffer ?speedup () =
  if n < 1 then invalid_arg "Proc_config.geometric: n must be >= 1";
  if base < 2 then invalid_arg "Proc_config.geometric: base must be >= 2";
  let works =
    Array.init n (fun i ->
        let rec pow acc j = if j = 0 then acc else pow (acc * base) (j - 1) in
        pow 1 i)
  in
  make ~works ~buffer ?speedup ()

let n t = Array.length t.works
let k t = Array.fold_left max 1 t.works
let work t i = t.works.(i)

let inverse_work_sum t =
  Array.fold_left (fun z w -> z +. (1.0 /. float_of_int w)) 0.0 t.works

let pp ppf t =
  Format.fprintf ppf "n=%d B=%d C=%d works=[%s]" (n t) t.buffer t.speedup
    (String.concat ";" (Array.to_list (Array.map string_of_int t.works)))
