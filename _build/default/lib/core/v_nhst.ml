let share ~reversed ~k v =
  if reversed then k - v + 1 else v

let threshold ~reversed ~port_value ~buffer i =
  let k = Array.fold_left max 1 port_value in
  let z =
    Array.fold_left
      (fun acc v -> acc +. (1.0 /. float_of_int (share ~reversed ~k v)))
      0.0 port_value
  in
  float_of_int buffer /. (float_of_int (share ~reversed ~k port_value.(i)) *. z)

let make ?(reversed = true) ~port_value config =
  if Array.length port_value <> Value_config.n config then
    invalid_arg "V_nhst.make: port_value size mismatch";
  let buffer = config.Value_config.buffer in
  let thresholds =
    Array.init (Array.length port_value) (fun i ->
        threshold ~reversed ~port_value ~buffer i)
  in
  let name = if reversed then "NHST" else "NHST-direct" in
  Value_policy.make ~name ~push_out:false (fun sw ~dest ~value:_ ->
      if Value_switch.is_full sw then Decision.Drop
      else if float_of_int (Value_switch.queue_length sw dest) < thresholds.(dest)
      then Decision.Accept
      else Decision.Drop)
