open Smbm_prelude

let admits ~buffer ~lengths ~dest =
  let n = Array.length lengths in
  let li = lengths.(dest) in
  let m = ref 0 and sum = ref 0 in
  Array.iter
    (fun l ->
      if l >= li then begin
        incr m;
        sum := !sum + l
      end)
    lengths;
  float_of_int !sum < float_of_int buffer /. Harmonic.h n *. Harmonic.h !m

let make config =
  let n = Proc_config.n config in
  let buffer = config.Proc_config.buffer in
  let lengths = Array.make n 0 in
  Proc_policy.make ~name:"NHDT" ~push_out:false (fun sw ~dest ->
      if Proc_switch.is_full sw then Decision.Drop
      else begin
        for i = 0 to n - 1 do
          lengths.(i) <- Proc_switch.queue_length sw i
        done;
        if admits ~buffer ~lengths ~dest then Decision.Accept else Decision.Drop
      end)
