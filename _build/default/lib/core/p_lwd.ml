type tie = Largest_work | Smallest_work | Longest_queue

(* argmax over queues of (virtual total work, tie key, index); the virtual
   total counts the arriving packet's full work as already added to
   [dest]. *)
let select_victim ?(protect_last = false) ?(tie = Largest_work) sw ~dest =
  let best = ref None and best_key = ref (min_int, min_int) in
  for j = 0 to Proc_switch.n sw - 1 do
    let eligible =
      (* A queue is an eligible victim if a push-out would be legal (it is
         non-empty, with at least 2 packets under protection) or if it is
         the destination itself (whose selection means "drop"). *)
      j = dest
      || Proc_switch.queue_length sw j >= if protect_last then 2 else 1
    in
    if eligible then begin
      let work_total =
        Proc_switch.queue_work sw j
        + if j = dest then Proc_switch.port_work sw dest else 0
      in
      let tie_key =
        match tie with
        | Largest_work -> Proc_switch.port_work sw j
        | Smallest_work -> -Proc_switch.port_work sw j
        | Longest_queue ->
          Proc_switch.queue_length sw j + if j = dest then 1 else 0
      in
      let key = (work_total, tie_key) in
      if key >= !best_key then begin
        best := Some j;
        best_key := key
      end
    end
  done;
  !best

let name ~protect_last ~tie =
  let base = if protect_last then "LWD1" else "LWD" in
  match tie with
  | Largest_work -> base
  | Smallest_work -> base ^ "/tie=small-work"
  | Longest_queue -> base ^ "/tie=long-queue"

let make ?(protect_last = false) ?(tie = Largest_work) _config =
  Proc_policy.make ~name:(name ~protect_last ~tie) ~push_out:true
    (fun sw ~dest ->
      match Proc_policy.greedy_accept sw with
      | Some d -> d
      | None -> (
        match select_victim ~protect_last ~tie sw ~dest with
        | Some victim when victim <> dest -> Decision.Push_out { victim }
        | Some _ | None -> Decision.Drop))
