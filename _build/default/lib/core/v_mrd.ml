(* Compare |Qa|/avg_a > |Qb|/avg_b as |Qa|^2 * sum_b > |Qb|^2 * sum_a, in
   exact integer arithmetic (values and sizes are bounded by B * k, far from
   overflow on 63-bit ints). *)
let ratio_greater ~len_a ~sum_a ~len_b ~sum_b =
  len_a * len_a * sum_b > len_b * len_b * sum_a

let select_victim ?(protect_last = false) sw =
  let min_len = if protect_last then 2 else 1 in
  let best = ref None in
  for j = 0 to Value_switch.n sw - 1 do
    let q = Value_switch.queue sw j in
    if Value_queue.length q >= min_len then begin
      let len = Value_queue.length q and sum = Value_queue.total_value q in
      match !best with
      | None -> best := Some (j, len, sum)
      | Some (bj, blen, bsum) ->
        if ratio_greater ~len_a:len ~sum_a:sum ~len_b:blen ~sum_b:bsum then
          best := Some (j, len, sum)
        else if not (ratio_greater ~len_a:blen ~sum_a:bsum ~len_b:len ~sum_b:sum)
        then begin
          (* Equal ratios: prefer the queue with the smaller minimum value,
             then the larger index. *)
          let min_of i =
            match Value_queue.min_value (Value_switch.queue sw i) with
            | Some v -> v
            | None -> max_int
          in
          if min_of j <= min_of bj then best := Some (j, len, sum)
        end
    end
  done;
  match !best with Some (j, _, _) -> Some j | None -> None

let make ?(protect_last = false) _config =
  let name = if protect_last then "MRD1" else "MRD" in
  Value_policy.make ~name ~push_out:true (fun sw ~dest:_ ~value ->
      match Value_policy.greedy_accept sw with
      | Some d -> d
      | None -> (
        (* The paper drops only when the buffer minimum is strictly bigger
           than the arriving value; on equality MRD pushes out, which is
           what makes it emulate LQD under unit values. *)
        match Value_switch.min_value sw with
        | Some m when m <= value -> (
          match select_victim ~protect_last sw with
          | Some victim -> Decision.Push_out { victim }
          | None -> Decision.Drop)
        | Some _ | None -> Decision.Drop))
