open Smbm_prelude

type t = {
  k : int;
  buckets : Packet.Value.t Deque.t array; (* index by value; slot 0 unused *)
  mutable size : int;
  mutable sum : int;
}

let create ~k =
  if k < 1 then invalid_arg "Value_queue.create: k must be >= 1";
  { k; buckets = Array.init (k + 1) (fun _ -> Deque.create ()); size = 0; sum = 0 }

let length t = t.size
let is_empty t = t.size = 0
let total_value t = t.sum

let average_value t =
  if t.size = 0 then 0.0 else float_of_int t.sum /. float_of_int t.size

let min_value t =
  let rec scan v =
    if v > t.k then None
    else if not (Deque.is_empty t.buckets.(v)) then Some v
    else scan (v + 1)
  in
  scan 1

let max_value t =
  let rec scan v =
    if v < 1 then None
    else if not (Deque.is_empty t.buckets.(v)) then Some v
    else scan (v - 1)
  in
  scan t.k

let push t (p : Packet.Value.t) =
  if p.value < 1 || p.value > t.k then
    invalid_arg "Value_queue.push: value out of range";
  Deque.push_back t.buckets.(p.value) p;
  t.size <- t.size + 1;
  t.sum <- t.sum + p.value

let pop_min t =
  match min_value t with
  | None -> invalid_arg "Value_queue.pop_min: empty"
  | Some v ->
    let p = Deque.pop_back t.buckets.(v) in
    t.size <- t.size - 1;
    t.sum <- t.sum - v;
    p

let pop_max t =
  match max_value t with
  | None -> invalid_arg "Value_queue.pop_max: empty"
  | Some v ->
    let p = Deque.pop_front t.buckets.(v) in
    t.size <- t.size - 1;
    t.sum <- t.sum - v;
    p

let iter f t =
  for v = t.k downto 1 do
    Deque.iter f t.buckets.(v)
  done

let to_list t =
  let acc = ref [] in
  for v = 1 to t.k do
    Deque.iter (fun p -> acc := p :: !acc) t.buckets.(v)
  done;
  !acc

let clear t =
  let dropped = t.size in
  Array.iter Deque.clear t.buckets;
  t.size <- 0;
  t.sum <- 0;
  dropped
