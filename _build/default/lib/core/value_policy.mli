(** Buffer-management policies for the value model.

    Like {!Proc_policy}, but the arriving packet additionally carries its
    intrinsic value. *)

type t = {
  name : string;
  push_out : bool;
  admit : Value_switch.t -> dest:int -> value:int -> Decision.t;
}

val make :
  name:string ->
  push_out:bool ->
  (Value_switch.t -> dest:int -> value:int -> Decision.t) ->
  t

val admit : t -> Value_switch.t -> dest:int -> value:int -> Decision.t

val greedy_accept : Value_switch.t -> Decision.t option
(** [Some Accept] when the buffer has free space, [None] otherwise. *)
