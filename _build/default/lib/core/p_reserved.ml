let make ~reserve config =
  if reserve < 0 then invalid_arg "P_reserved.make: negative reserve";
  if Proc_config.n config * reserve > config.Proc_config.buffer then
    invalid_arg "P_reserved.make: reservations exceed the buffer";
  let name = Printf.sprintf "RSV(%d)" reserve in
  (* Pool slots used by queue j: packets above its reservation. *)
  let overflow sw j ~dest =
    let len = Proc_switch.queue_length sw j + if j = dest then 1 else 0 in
    max 0 (len - reserve)
  in
  Proc_policy.make ~name ~push_out:true (fun sw ~dest ->
      match Proc_policy.greedy_accept sw with
      | Some d -> d
      | None ->
        (* Buffer full.  The arrival may displace pool usage only while its
           own queue is inside its reservation. *)
        if Proc_switch.queue_length sw dest >= reserve then begin
          (* The arrival itself would take a pool slot: evict from the queue
             using the most pool slots (LQD over the pool, virtual add). *)
          let best = ref 0 and best_key = ref (min_int, min_int) in
          for j = 0 to Proc_switch.n sw - 1 do
            let key = (overflow sw j ~dest, Proc_switch.port_work sw j) in
            if key >= !best_key then begin
              best := j;
              best_key := key
            end
          done;
          let victim = !best in
          if victim <> dest && overflow sw victim ~dest > 0 then
            Decision.Push_out { victim }
          else Decision.Drop
        end
        else begin
          (* Reserved slot owed to this arrival: reclaim it from the largest
             pool user (some queue must be above its reservation, since the
             buffer is full and this queue is below). *)
          (* Only queues strictly above their reservation are eligible:
             (0, max_int) is beaten only by keys with positive overflow. *)
          let best = ref (-1) and best_key = ref (0, max_int) in
          for j = 0 to Proc_switch.n sw - 1 do
            if j <> dest then begin
              let key = (overflow sw j ~dest, Proc_switch.port_work sw j) in
              if key > !best_key then begin
                best := j;
                best_key := key
              end
            end
          done;
          if !best >= 0 then Decision.Push_out { victim = !best }
          else Decision.Drop
        end)
