let select_victim ~protect_last sw =
  let min_len = if protect_last then 2 else 1 in
  let best = ref None and best_key = ref (min_int, min_int) in
  for j = 0 to Proc_switch.n sw - 1 do
    let len = Proc_switch.queue_length sw j in
    if len >= min_len then begin
      let key = (Proc_switch.port_work sw j, len) in
      if key >= !best_key then begin
        best := Some j;
        best_key := key
      end
    end
  done;
  !best

let make ?(protect_last = false) _config =
  let name = if protect_last then "BPD1" else "BPD" in
  Proc_policy.make ~name ~push_out:true (fun sw ~dest ->
      match Proc_policy.greedy_accept sw with
      | Some d -> d
      | None -> (
        match select_victim ~protect_last sw with
        | None -> Decision.Drop
        | Some victim ->
          (* "i <= j" in the work-sorted port order. *)
          let arriving = (Proc_switch.port_work sw dest, dest)
          and target = (Proc_switch.port_work sw victim, victim) in
          if arriving <= target then Decision.Push_out { victim }
          else Decision.Drop))
