type t = {
  name : string;
  push_out : bool;
  admit : Proc_switch.t -> dest:int -> Decision.t;
}

let make ~name ~push_out admit = { name; push_out; admit }
let admit t sw ~dest = t.admit sw ~dest

let greedy_accept sw =
  if Proc_switch.is_full sw then None else Some Decision.Accept
