(** Greedy non-push-out baseline for the value model: accept whenever there
    is free buffer space.  At least k-competitive (fill the buffer with 1s,
    then send in the ks) — the paper's reason to consider only push-out
    policies in the value model. *)

val make : Value_config.t -> Value_policy.t
