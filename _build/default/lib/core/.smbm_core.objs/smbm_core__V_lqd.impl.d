lib/core/v_lqd.ml: Decision Value_policy Value_queue Value_switch
