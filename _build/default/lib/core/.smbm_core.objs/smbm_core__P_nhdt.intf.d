lib/core/p_nhdt.mli: Proc_config Proc_policy
