lib/core/p_reserved.ml: Decision Printf Proc_config Proc_policy Proc_switch
