lib/core/work_queue.mli: Packet
