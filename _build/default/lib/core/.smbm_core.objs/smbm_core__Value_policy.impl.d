lib/core/value_policy.ml: Decision Value_switch
