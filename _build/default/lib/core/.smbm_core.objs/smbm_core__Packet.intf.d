lib/core/packet.mli: Format
