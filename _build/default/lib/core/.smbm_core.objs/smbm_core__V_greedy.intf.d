lib/core/v_greedy.mli: Value_config Value_policy
