lib/core/arrival.mli: Format
