lib/core/value_config.mli: Format
