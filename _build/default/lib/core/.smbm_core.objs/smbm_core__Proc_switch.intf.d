lib/core/proc_switch.mli: Packet Proc_config Work_queue
