lib/core/v_mvd.mli: Value_config Value_policy Value_switch
