lib/core/work_queue.ml: Deque Packet Smbm_prelude
