lib/core/v_mrd.mli: Value_config Value_policy Value_switch
