lib/core/v_greedy.ml: Decision Value_policy
