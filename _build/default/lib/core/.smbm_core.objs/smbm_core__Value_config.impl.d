lib/core/value_config.ml: Format
