lib/core/p_nest.mli: Proc_config Proc_policy
