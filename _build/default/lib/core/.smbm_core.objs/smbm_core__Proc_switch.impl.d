lib/core/proc_switch.ml: Array List Packet Proc_config Work_queue
