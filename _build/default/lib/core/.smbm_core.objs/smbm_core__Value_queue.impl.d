lib/core/value_queue.ml: Array Deque Packet Smbm_prelude
