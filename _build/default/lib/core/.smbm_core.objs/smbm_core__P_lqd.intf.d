lib/core/p_lqd.mli: Proc_config Proc_policy Proc_switch
