lib/core/p_reserved.mli: Proc_config Proc_policy
