lib/core/v_nest.mli: Value_config Value_policy
