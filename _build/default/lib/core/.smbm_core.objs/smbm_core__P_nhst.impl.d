lib/core/p_nhst.ml: Array Decision Proc_config Proc_policy Proc_switch
