lib/core/p_rand.mli: Proc_config Proc_policy Value_config Value_policy
