lib/core/p_bpd.ml: Decision Proc_policy Proc_switch
