lib/core/proc_config.mli: Format
