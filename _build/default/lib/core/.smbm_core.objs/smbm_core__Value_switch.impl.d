lib/core/value_switch.ml: Array List Packet Value_config Value_queue
