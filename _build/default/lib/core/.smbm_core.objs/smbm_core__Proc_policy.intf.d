lib/core/proc_policy.mli: Decision Proc_switch
