lib/core/decision.ml: Format
