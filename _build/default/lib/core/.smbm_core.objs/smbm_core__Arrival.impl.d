lib/core/arrival.ml: Format
