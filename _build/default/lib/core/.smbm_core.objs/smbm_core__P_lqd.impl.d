lib/core/p_lqd.ml: Decision Proc_policy Proc_switch
