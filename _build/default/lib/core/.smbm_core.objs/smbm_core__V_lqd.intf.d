lib/core/v_lqd.mli: Value_config Value_policy Value_switch
