lib/core/proc_policy.ml: Decision Proc_switch
