lib/core/v_mvd.ml: Decision Value_policy Value_queue Value_switch
