lib/core/p_lwd.ml: Decision Proc_policy Proc_switch
