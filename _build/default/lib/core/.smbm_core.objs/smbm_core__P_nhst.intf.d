lib/core/p_nhst.mli: Proc_config Proc_policy
