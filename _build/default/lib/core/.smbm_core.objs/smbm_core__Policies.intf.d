lib/core/policies.mli: Proc_config Proc_policy Value_config Value_policy
