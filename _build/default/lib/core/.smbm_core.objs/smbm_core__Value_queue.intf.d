lib/core/value_queue.mli: Packet
