lib/core/v_nhst.mli: Value_config Value_policy
