lib/core/value_policy.mli: Decision Value_switch
