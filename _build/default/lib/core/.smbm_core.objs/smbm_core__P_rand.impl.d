lib/core/p_rand.ml: Decision Proc_policy Proc_switch Rng Smbm_prelude Value_policy Value_switch
