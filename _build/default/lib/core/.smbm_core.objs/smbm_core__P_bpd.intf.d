lib/core/p_bpd.mli: Proc_config Proc_policy Proc_switch
