lib/core/v_mrd.ml: Decision Value_policy Value_queue Value_switch
