lib/core/policies.ml: List P_bpd P_lqd P_lwd P_nest P_nhdt P_nhst P_rand P_reserved Proc_config Proc_policy String V_greedy V_lqd V_mrd V_mvd V_nest V_nhst Value_policy
