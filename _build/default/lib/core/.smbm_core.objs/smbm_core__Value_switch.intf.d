lib/core/value_switch.mli: Packet Value_config Value_queue
