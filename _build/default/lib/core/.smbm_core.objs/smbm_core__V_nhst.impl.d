lib/core/v_nhst.ml: Array Decision Value_config Value_policy Value_switch
