lib/core/p_nest.ml: Decision Proc_config Proc_policy Proc_switch
