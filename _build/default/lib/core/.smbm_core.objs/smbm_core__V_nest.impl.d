lib/core/v_nest.ml: Decision Value_config Value_policy Value_switch
