lib/core/decision.mli: Format
