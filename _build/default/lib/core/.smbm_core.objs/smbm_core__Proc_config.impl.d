lib/core/proc_config.ml: Array Format String
