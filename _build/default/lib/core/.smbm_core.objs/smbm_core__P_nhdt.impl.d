lib/core/p_nhdt.ml: Array Decision Harmonic Proc_config Proc_policy Proc_switch Smbm_prelude
