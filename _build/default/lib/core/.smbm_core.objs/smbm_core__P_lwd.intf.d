lib/core/p_lwd.mli: Proc_config Proc_policy Proc_switch
