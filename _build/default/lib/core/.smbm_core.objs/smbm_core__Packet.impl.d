lib/core/packet.ml: Format
