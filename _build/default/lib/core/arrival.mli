(** Policy-independent description of one arriving packet.

    Traffic generators and traces speak in arrivals; each switch instance
    turns an arrival into its own packet on admission.  In the processing
    model the packet's work is determined by the destination port and
    [value] is ignored; in the value model [value] is the packet's intrinsic
    value. *)

type t = { dest : int; value : int }

val make : ?value:int -> dest:int -> unit -> t
(** [value] defaults to 1. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
