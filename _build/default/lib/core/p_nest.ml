let make config =
  let n = Proc_config.n config in
  let b = config.Proc_config.buffer in
  Proc_policy.make ~name:"NEST" ~push_out:false (fun sw ~dest ->
      if Proc_switch.is_full sw then Decision.Drop
        (* |Q_i| < B / n, in exact integer arithmetic *)
      else if Proc_switch.queue_length sw dest * n < b then Decision.Accept
      else Decision.Drop)
