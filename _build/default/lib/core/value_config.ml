type t = { ports : int; max_value : int; buffer : int; speedup : int }

let make ~ports ~max_value ~buffer ?(speedup = 1) () =
  if ports < 1 then invalid_arg "Value_config.make: ports must be >= 1";
  if max_value < 1 then invalid_arg "Value_config.make: max_value must be >= 1";
  if buffer < 1 then invalid_arg "Value_config.make: buffer must be >= 1";
  if speedup < 1 then invalid_arg "Value_config.make: speedup must be >= 1";
  { ports; max_value; buffer; speedup }

let n t = t.ports
let k t = t.max_value

let pp ppf t =
  Format.fprintf ppf "n=%d k=%d B=%d C=%d" t.ports t.max_value t.buffer
    t.speedup
