type t = { dest : int; value : int }

let make ?(value = 1) ~dest () =
  if dest < 0 then invalid_arg "Arrival.make: negative dest";
  if value < 1 then invalid_arg "Arrival.make: value must be >= 1";
  { dest; value }

let pp ppf a = Format.fprintf ppf "->%d v=%d" a.dest a.value
let equal a b = a.dest = b.dest && a.value = b.value
