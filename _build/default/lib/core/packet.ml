module Proc = struct
  type t = {
    id : int;
    dest : int;
    work : int;
    mutable residual : int;
    arrival : int;
  }

  let make ~id ~dest ~work ~arrival =
    if work < 1 then invalid_arg "Packet.Proc.make: work must be >= 1";
    { id; dest; work; residual = work; arrival }

  let pp ppf p =
    Format.fprintf ppf "#%d->%d w=%d r=%d" p.id p.dest p.work p.residual
end

module Value = struct
  type t = { id : int; dest : int; value : int; arrival : int }

  let make ~id ~dest ~value ~arrival =
    if value < 1 then invalid_arg "Packet.Value.make: value must be >= 1";
    { id; dest; value; arrival }

  let pp ppf p = Format.fprintf ppf "#%d->%d v=%d" p.id p.dest p.value
end
