let make _config =
  Value_policy.make ~name:"Greedy" ~push_out:false (fun sw ~dest:_ ~value:_ ->
      match Value_policy.greedy_accept sw with
      | Some d -> d
      | None -> Decision.Drop)
