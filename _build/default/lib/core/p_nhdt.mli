(** Non-Push-Out-Harmonic-Dynamic-Threshold (NHDT), after Kesselman &
    Mansour.

    On an arrival for port [i], let [j_1 .. j_m] be the queues with
    [|Q_j| >= |Q_i|] (port [i] among them); accept iff
    [sum_s |Q_{j_s}| < (B / H_n) * H_m].  The idea: for each [m], the [m]
    fullest queues together hold at most [(B / H_n) * H_m] packets.

    O(log n)-competitive under homogeneous processing; Theorem 3 shows it is
    at least [~ 1/2 sqrt(k ln k)]-competitive under heterogeneous processing.

    The harmonic normalizer uses [H_n] over the number of ports, which equals
    the paper's [H_k] in its contiguous configuration. *)

val make : Proc_config.t -> Proc_policy.t

val admits :
  buffer:int -> lengths:int array -> dest:int -> bool
(** Pure form of the admission predicate, exposed for tests: would NHDT
    (with normalizer [H_(Array.length lengths)]) accept an arrival for port
    [dest] given current queue [lengths]? Ignores buffer fullness. *)
