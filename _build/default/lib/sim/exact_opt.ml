open Smbm_core

(* ----- processing model -----

   Packets within a queue are identical (same required work), so a queue is
   fully described by (length, head-of-line residual); the whole buffer by
   the array of those pairs. *)

module Proc_state = struct
  type t = { slot : int; idx : int; queues : (int * int) array }

  let equal a b = a.slot = b.slot && a.idx = b.idx && a.queues = b.queues

  let hash t = Hashtbl.hash (t.slot, t.idx, t.queues)
end

module Proc_tbl = Hashtbl.Make (Proc_state)

let proc config trace ~drain =
  if drain < 0 then invalid_arg "Exact_opt.proc: negative drain";
  let n = Proc_config.n config in
  let buffer = config.Proc_config.buffer in
  let cycles = config.Proc_config.speedup in
  let total_slots = Array.length trace + drain in
  let arrivals_at slot =
    if slot < Array.length trace then Array.of_list trace.(slot) else [||]
  in
  let memo = Proc_tbl.create 4096 in
  let occupancy queues =
    Array.fold_left (fun acc (len, _) -> acc + len) 0 queues
  in
  (* Deterministic transmission phase on a queue-state copy; returns the
     packets transmitted. *)
  let transmit queues =
    let queues = Array.copy queues in
    let sent = ref 0 in
    Array.iteri
      (fun i (len, hol) ->
        if len > 0 then begin
          let work = Proc_config.work config i in
          let len = ref len and hol = ref hol and budget = ref cycles in
          while !budget > 0 && !len > 0 do
            let served = min !budget !hol in
            hol := !hol - served;
            budget := !budget - served;
            if !hol = 0 then begin
              incr sent;
              decr len;
              hol := work
            end
          done;
          queues.(i) <- (!len, if !len = 0 then 0 else !hol)
        end)
      queues;
    (queues, !sent)
  in
  let rec best (st : Proc_state.t) =
    if st.slot >= total_slots then 0
    else
      match Proc_tbl.find_opt memo st with
      | Some v -> v
      | None ->
        let arrivals = arrivals_at st.slot in
        let v =
          if st.idx < Array.length arrivals then begin
            let a = arrivals.(st.idx) in
            let skip = best { st with idx = st.idx + 1 } in
            if occupancy st.queues < buffer then begin
              let queues = Array.copy st.queues in
              let len, hol = queues.(a.Arrival.dest) in
              let work = Proc_config.work config a.Arrival.dest in
              queues.(a.Arrival.dest) <-
                (len + 1, if len = 0 then work else hol);
              max skip (best { st with idx = st.idx + 1; queues })
            end
            else skip
          end
          else begin
            let queues, sent = transmit st.queues in
            sent + best { slot = st.slot + 1; idx = 0; queues }
          end
        in
        Proc_tbl.add memo st v;
        v
  in
  best { slot = 0; idx = 0; queues = Array.make n (0, 0) }

(* ----- value model -----

   A queue is a descending-sorted list of values; transmission pops the
   head of every non-empty queue [speedup] times. *)

module Value_state = struct
  type t = { slot : int; idx : int; queues : int list array }

  let equal a b = a.slot = b.slot && a.idx = b.idx && a.queues = b.queues
  let hash t = Hashtbl.hash (t.slot, t.idx, t.queues)
end

module Value_tbl = Hashtbl.Make (Value_state)

let value config trace ~drain =
  if drain < 0 then invalid_arg "Exact_opt.value: negative drain";
  let n = Value_config.n config in
  let buffer = config.Value_config.buffer in
  let per_slot = config.Value_config.speedup in
  let total_slots = Array.length trace + drain in
  let arrivals_at slot =
    if slot < Array.length trace then Array.of_list trace.(slot) else [||]
  in
  let memo = Value_tbl.create 4096 in
  let occupancy queues =
    Array.fold_left (fun acc q -> acc + List.length q) 0 queues
  in
  let rec insert_desc v = function
    | [] -> [ v ]
    | x :: rest when x >= v -> x :: insert_desc v rest
    | rest -> v :: rest
  in
  let transmit queues =
    let queues = Array.copy queues in
    let value = ref 0 in
    Array.iteri
      (fun i q ->
        let rec take budget = function
          | v :: rest when budget > 0 ->
            value := !value + v;
            take (budget - 1) rest
          | rest -> rest
        in
        queues.(i) <- take per_slot q)
      queues;
    (queues, !value)
  in
  let rec best (st : Value_state.t) =
    if st.slot >= total_slots then 0
    else
      match Value_tbl.find_opt memo st with
      | Some v -> v
      | None ->
        let arrivals = arrivals_at st.slot in
        let v =
          if st.idx < Array.length arrivals then begin
            let a = arrivals.(st.idx) in
            let skip = best { st with idx = st.idx + 1 } in
            if occupancy st.queues < buffer then begin
              let queues = Array.copy st.queues in
              queues.(a.Arrival.dest) <-
                insert_desc a.Arrival.value queues.(a.Arrival.dest);
              max skip (best { st with idx = st.idx + 1; queues })
            end
            else skip
          end
          else begin
            let queues, sent = transmit st.queues in
            sent + best { slot = st.slot + 1; idx = 0; queues }
          end
        in
        Value_tbl.add memo st v;
        v
  in
  best { slot = 0; idx = 0; queues = Array.make n [] }
