open Smbm_prelude
open Smbm_core

let create ?name ?(observe = fun (_ : Packet.Proc.t) -> ()) config
    (policy : Proc_policy.t) =
  let name = Option.value name ~default:policy.name in
  let sw = Proc_switch.create config in
  let metrics = Metrics.create () in
  let ports = Port_stats.create ~n:(Proc_config.n config) in
  let on_transmit (p : Packet.Proc.t) =
    metrics.transmitted <- metrics.transmitted + 1;
    metrics.transmitted_value <- metrics.transmitted_value + 1;
    let latency = float_of_int (Proc_switch.now sw - p.arrival) in
    Running_stats.add metrics.latency latency;
    Histogram.add metrics.latency_hist latency;
    Port_stats.record ports ~port:p.dest ~value:1;
    observe p
  in
  let arrive (a : Arrival.t) =
    metrics.arrivals <- metrics.arrivals + 1;
    match Proc_policy.admit policy sw ~dest:a.dest with
    | Decision.Accept ->
      ignore (Proc_switch.accept sw ~dest:a.dest);
      metrics.accepted <- metrics.accepted + 1
    | Decision.Push_out { victim } ->
      if not (Proc_switch.is_full sw) then
        invalid_arg
          (name ^ ": push-out decision while the buffer has free space");
      ignore (Proc_switch.push_out sw ~victim);
      metrics.pushed_out <- metrics.pushed_out + 1;
      ignore (Proc_switch.accept sw ~dest:a.dest);
      metrics.accepted <- metrics.accepted + 1
    | Decision.Drop -> metrics.dropped <- metrics.dropped + 1
  in
  let transmit () = ignore (Proc_switch.transmit_phase sw ~on_transmit) in
  let end_slot () =
    Running_stats.add metrics.occupancy (float_of_int (Proc_switch.occupancy sw));
    Proc_switch.advance_slot sw
  in
  let flush () = metrics.flushed <- metrics.flushed + Proc_switch.flush sw in
  let check () =
    Proc_switch.check_invariants sw;
    Metrics.check_conservation metrics;
    if Metrics.in_buffer metrics <> Proc_switch.occupancy sw then
      invalid_arg (name ^ ": metrics in-buffer count out of sync with switch")
  in
  let inst : Instance.t =
    {
      name;
      arrive;
      transmit;
      end_slot;
      flush;
      occupancy = (fun () -> Proc_switch.occupancy sw);
      metrics;
      ports = Some ports;
      check;
    }
  in
  (inst, sw)

let instance ?name ?observe config policy =
  fst (create ?name ?observe config policy)
