(** Periodic sampling of a running instance into plottable series: buffer
    occupancy, cumulative throughput rate, drops.  Wraps an {!Instance} so
    the experiment loop needs no changes. *)

type t

val attach : every:int -> Instance.t -> Instance.t * t
(** [attach ~every inst] returns an instance behaving exactly like [inst]
    that additionally records a sample every [every] slots, and the handle
    to read the series back.  [every] must be positive. *)

val samples : t -> int

val occupancy : t -> Smbm_report.Series.t
(** (slot, buffer occupancy) at each sample point. *)

val throughput : t -> Smbm_report.Series.t
(** (slot, packets transmitted per slot since the previous sample). *)

val drop_rate : t -> Smbm_report.Series.t
(** (slot, dropped / arrivals since the previous sample; 0 when idle). *)

val to_csv : t -> string
(** "slot,occupancy,throughput,drop_rate" document. *)
