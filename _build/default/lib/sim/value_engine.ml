open Smbm_prelude
open Smbm_core

let create ?name ?(observe = fun (_ : Packet.Value.t) -> ()) config
    (policy : Value_policy.t) =
  let name = Option.value name ~default:policy.name in
  let sw = Value_switch.create config in
  let metrics = Metrics.create () in
  let ports = Port_stats.create ~n:(Value_config.n config) in
  let on_transmit (p : Packet.Value.t) =
    metrics.transmitted <- metrics.transmitted + 1;
    metrics.transmitted_value <- metrics.transmitted_value + p.value;
    let latency = float_of_int (Value_switch.now sw - p.arrival) in
    Running_stats.add metrics.latency latency;
    Histogram.add metrics.latency_hist latency;
    Port_stats.record ports ~port:p.dest ~value:p.value;
    observe p
  in
  let arrive (a : Arrival.t) =
    metrics.arrivals <- metrics.arrivals + 1;
    match Value_policy.admit policy sw ~dest:a.dest ~value:a.value with
    | Decision.Accept ->
      ignore (Value_switch.accept sw ~dest:a.dest ~value:a.value);
      metrics.accepted <- metrics.accepted + 1
    | Decision.Push_out { victim } ->
      if not (Value_switch.is_full sw) then
        invalid_arg
          (name ^ ": push-out decision while the buffer has free space");
      ignore (Value_switch.push_out sw ~victim);
      metrics.pushed_out <- metrics.pushed_out + 1;
      ignore (Value_switch.accept sw ~dest:a.dest ~value:a.value);
      metrics.accepted <- metrics.accepted + 1
    | Decision.Drop -> metrics.dropped <- metrics.dropped + 1
  in
  let transmit () = ignore (Value_switch.transmit_phase sw ~on_transmit) in
  let end_slot () =
    Running_stats.add metrics.occupancy
      (float_of_int (Value_switch.occupancy sw));
    Value_switch.advance_slot sw
  in
  let flush () = metrics.flushed <- metrics.flushed + Value_switch.flush sw in
  let check () =
    Value_switch.check_invariants sw;
    Metrics.check_conservation metrics;
    if Metrics.in_buffer metrics <> Value_switch.occupancy sw then
      invalid_arg (name ^ ": metrics in-buffer count out of sync with switch")
  in
  let inst : Instance.t =
    {
      name;
      arrive;
      transmit;
      end_slot;
      flush;
      occupancy = (fun () -> Value_switch.occupancy sw);
      metrics;
      ports = Some ports;
      check;
    }
  in
  (inst, sw)

let instance ?name ?observe config policy =
  fst (create ?name ?observe config policy)
