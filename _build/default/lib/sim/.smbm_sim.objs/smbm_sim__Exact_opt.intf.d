lib/sim/exact_opt.mli: Arrival Proc_config Smbm_core Value_config
