lib/sim/opt_ref.mli: Instance Proc_config Smbm_core Value_config
