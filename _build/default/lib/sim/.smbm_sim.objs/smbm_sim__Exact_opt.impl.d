lib/sim/exact_opt.ml: Array Arrival Hashtbl List Proc_config Smbm_core Value_config
