lib/sim/sweep.mli: Smbm_traffic
