lib/sim/experiment.mli: Instance Smbm_traffic
