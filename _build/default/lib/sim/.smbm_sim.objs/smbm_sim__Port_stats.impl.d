lib/sim/port_stats.ml: Array Format
