lib/sim/competitive_check.mli: Instance Smbm_core Smbm_traffic
