lib/sim/value_engine.ml: Arrival Decision Histogram Instance Metrics Option Packet Port_stats Running_stats Smbm_core Smbm_prelude Value_config Value_policy Value_switch
