lib/sim/competitive_check.ml: Instance Metrics Proc_engine Smbm_core Smbm_traffic
