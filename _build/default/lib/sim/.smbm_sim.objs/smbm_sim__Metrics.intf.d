lib/sim/metrics.mli: Format Histogram Running_stats Smbm_prelude
