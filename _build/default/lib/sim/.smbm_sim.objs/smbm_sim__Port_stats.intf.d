lib/sim/port_stats.mli: Format
