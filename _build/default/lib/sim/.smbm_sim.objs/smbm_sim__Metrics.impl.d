lib/sim/metrics.ml: Format Histogram Running_stats Smbm_prelude
