lib/sim/sweep.ml: Experiment Float Instance List Metrics Opt_ref Option Policies Port_stats Proc_config Proc_engine Scenario Smbm_core Smbm_prelude Smbm_traffic Value_config Value_engine
