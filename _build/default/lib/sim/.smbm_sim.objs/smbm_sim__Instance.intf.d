lib/sim/instance.mli: Arrival Metrics Port_stats Smbm_core
