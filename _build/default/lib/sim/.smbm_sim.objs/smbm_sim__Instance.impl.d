lib/sim/instance.ml: Arrival List Metrics Port_stats Smbm_core
