lib/sim/proc_engine.mli: Instance Packet Proc_config Proc_policy Proc_switch Smbm_core
