lib/sim/value_engine.mli: Instance Packet Smbm_core Value_config Value_policy Value_switch
