lib/sim/experiment.ml: Instance List Metrics Smbm_traffic
