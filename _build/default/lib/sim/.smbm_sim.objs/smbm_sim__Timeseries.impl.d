lib/sim/timeseries.ml: Instance List Metrics Printf Smbm_report
