lib/sim/proc_engine.ml: Arrival Decision Histogram Instance Metrics Option Packet Port_stats Proc_config Proc_policy Proc_switch Running_stats Smbm_core Smbm_prelude
