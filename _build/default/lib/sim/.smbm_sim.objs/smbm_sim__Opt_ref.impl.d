lib/sim/opt_ref.ml: Arrival Count_multiset Instance Metrics Proc_config Running_stats Smbm_core Smbm_prelude Value_config
