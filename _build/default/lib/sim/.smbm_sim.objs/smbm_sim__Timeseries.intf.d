lib/sim/timeseries.mli: Instance Smbm_report
