(** Per-output-port transmission counters and fairness summaries.

    The paper's introduction frames buffer sharing as a fairness problem
    ("a single output port may monopolize the shared memory"); these
    counters make that visible: per-port throughput, the share of idle
    ports, and Jain's fairness index over per-port service. *)

type t

val create : n:int -> t

val n : t -> int

val record : t -> port:int -> value:int -> unit
(** Account one transmitted packet of the given intrinsic value. *)

val transmitted : t -> int -> int
(** Packets transmitted by port [i]. *)

val transmitted_value : t -> int -> int

val total : t -> int

val jain_index : t -> objective:[ `Packets | `Value ] -> float
(** Jain's fairness index [(sum x)^2 / (n * sum x^2)] over per-port
    throughput: 1 when all ports receive equal service, 1/n when a single
    port monopolizes the switch.  1 when nothing was transmitted. *)

val starved_ports : t -> int
(** Ports that transmitted nothing. *)

val min_max_share : t -> float * float
(** Smallest and largest per-port share of total transmitted packets;
    (0, 0) when nothing was transmitted. *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
