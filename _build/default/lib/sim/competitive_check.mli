(** Runtime certificate for LWD's 2-competitiveness (Theorem 7).

    The paper proves Theorem 7 with a mapping routine (its Fig. 3) that at
    every instant maps each packet OPT has transmitted to a packet LWD has
    transmitted, at most two OPT packets per LWD packet.  A direct, sharp
    consequence — checkable without reconstructing the mapping — is the
    prefix invariant

      for every slot t:  opponent_transmitted(t) <= 2 * lwd_transmitted(t)

    valid against ANY algorithm (the clairvoyant optimum included, hence any
    opponent we can actually run).  This module executes a policy under
    certification against an opponent in lockstep and checks the invariant
    after every slot.

    A violation against *some* opponent would disprove the policy's
    2-competitiveness on that trace — which is how the module doubles as a
    falsification harness: running LQD under certification on the Theorem 4
    construction finds violations, running LWD never does. *)

type outcome = {
  slots : int;
  violations : int;  (** slots where the prefix invariant failed *)
  first_violation : int option;  (** earliest violating slot *)
  max_prefix_ratio : float;
      (** max over slots of opponent / policy transmissions (0/0 counts
          as 1) *)
  final_policy : int;
  final_opponent : int;
}

val run :
  factor:float ->
  ?objective:[ `Packets | `Value ] ->
  workload:Smbm_traffic.Workload.t ->
  slots:int ->
  ?flush_every:int ->
  policy:Instance.t ->
  opponent:Instance.t ->
  unit ->
  outcome
(** Step both instances over the shared workload, checking
    [opponent <= factor * policy] on the cumulative objective
    (default [`Packets]; use [`Value] to track value-model envelopes, e.g.
    exploring the MRD conjecture) after every slot.  [factor] is 2 for
    Theorem 7; pass [infinity] to only record the max prefix ratio. *)

val certify_lwd :
  ?factor:float ->
  config:Smbm_core.Proc_config.t ->
  workload:Smbm_traffic.Workload.t ->
  slots:int ->
  ?flush_every:int ->
  opponent:Smbm_core.Proc_policy.t ->
  unit ->
  outcome
(** Convenience wrapper: LWD under certification against a processing-model
    opponent policy on the given workload. *)
