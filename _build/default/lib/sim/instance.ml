open Smbm_core

type t = {
  name : string;
  arrive : Arrival.t -> unit;
  transmit : unit -> unit;
  end_slot : unit -> unit;
  flush : unit -> unit;
  occupancy : unit -> int;
  metrics : Metrics.t;
  ports : Port_stats.t option;
  check : unit -> unit;
}

let step_slot t ~arrivals =
  List.iter t.arrive arrivals;
  t.transmit ();
  t.end_slot ()
