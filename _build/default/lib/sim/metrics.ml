open Smbm_prelude

type t = {
  mutable arrivals : int;
  mutable accepted : int;
  mutable dropped : int;
  mutable pushed_out : int;
  mutable transmitted : int;
  mutable transmitted_value : int;
  mutable flushed : int;
  latency : Running_stats.t;
  latency_hist : Histogram.t;
  occupancy : Running_stats.t;
}

let create () =
  {
    arrivals = 0;
    accepted = 0;
    dropped = 0;
    pushed_out = 0;
    transmitted = 0;
    transmitted_value = 0;
    flushed = 0;
    latency = Running_stats.create ();
    latency_hist = Histogram.create ~max_value:1e7 ();
    occupancy = Running_stats.create ();
  }

let clear t =
  t.arrivals <- 0;
  t.accepted <- 0;
  t.dropped <- 0;
  t.pushed_out <- 0;
  t.transmitted <- 0;
  t.transmitted_value <- 0;
  t.flushed <- 0;
  Running_stats.clear t.latency;
  Histogram.clear t.latency_hist;
  Running_stats.clear t.occupancy

let in_buffer t = t.accepted - t.transmitted - t.pushed_out - t.flushed

let check_conservation t =
  if t.arrivals <> t.accepted + t.dropped then
    invalid_arg "Metrics: arrivals <> accepted + dropped";
  if in_buffer t < 0 then
    invalid_arg "Metrics: negative in-buffer population"

let throughput_of objective t =
  match objective with
  | `Packets -> t.transmitted
  | `Value -> t.transmitted_value

let pp ppf t =
  Format.fprintf ppf
    "arrivals=%d accepted=%d dropped=%d pushed_out=%d transmitted=%d \
     value=%d flushed=%d buffered=%d"
    t.arrivals t.accepted t.dropped t.pushed_out t.transmitted
    t.transmitted_value t.flushed (in_buffer t)
