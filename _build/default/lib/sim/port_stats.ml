type t = { packets : int array; values : int array }

let create ~n =
  if n < 1 then invalid_arg "Port_stats.create: n must be >= 1";
  { packets = Array.make n 0; values = Array.make n 0 }

let n t = Array.length t.packets

let record t ~port ~value =
  t.packets.(port) <- t.packets.(port) + 1;
  t.values.(port) <- t.values.(port) + value

let transmitted t i = t.packets.(i)
let transmitted_value t i = t.values.(i)
let total t = Array.fold_left ( + ) 0 t.packets

let jain_index t ~objective =
  let xs = match objective with `Packets -> t.packets | `Value -> t.values in
  let sum = Array.fold_left (fun acc x -> acc +. float_of_int x) 0.0 xs in
  if sum = 0.0 then 1.0
  else
    let sum_sq =
      Array.fold_left
        (fun acc x -> acc +. (float_of_int x *. float_of_int x))
        0.0 xs
    in
    sum *. sum /. (float_of_int (Array.length xs) *. sum_sq)

let starved_ports t =
  Array.fold_left (fun acc x -> if x = 0 then acc + 1 else acc) 0 t.packets

let min_max_share t =
  let total = total t in
  if total = 0 then (0.0, 0.0)
  else
    let lo = Array.fold_left min max_int t.packets
    and hi = Array.fold_left max 0 t.packets in
    (float_of_int lo /. float_of_int total, float_of_int hi /. float_of_int total)

let clear t =
  Array.fill t.packets 0 (Array.length t.packets) 0;
  Array.fill t.values 0 (Array.length t.values) 0

let pp ppf t =
  Format.fprintf ppf "jain=%.3f starved=%d/%d"
    (jain_index t ~objective:`Packets)
    (starved_ports t) (n t)
