(** Counters accumulated by one switch instance over a run.

    Conservation invariant (checked by {!check_conservation}):
    [arrivals = accepted + dropped] and
    [accepted = transmitted + pushed_out + flushed + in_buffer]. *)

open Smbm_prelude

type t = {
  mutable arrivals : int;  (** packets offered to the instance *)
  mutable accepted : int;  (** packets admitted to the buffer *)
  mutable dropped : int;  (** packets rejected on arrival *)
  mutable pushed_out : int;  (** admitted packets later evicted *)
  mutable transmitted : int;  (** packets fully processed and sent *)
  mutable transmitted_value : int;
      (** total intrinsic value sent (equals [transmitted] when values are
          uniform) *)
  mutable flushed : int;  (** packets discarded by periodic flushouts *)
  latency : Running_stats.t;
      (** admission-to-transmission delay in slots, over transmitted
          packets *)
  latency_hist : Histogram.t;
      (** same samples, log-bucketed for quantiles (p50/p90/p99) *)
  occupancy : Running_stats.t;  (** buffer occupancy sampled once per slot *)
}

val create : unit -> t
val clear : t -> unit

val in_buffer : t -> int
(** Packets still buffered, derived from the counters. *)

val check_conservation : t -> unit
(** @raise Invalid_argument when the counters are inconsistent. *)

val throughput_of : [ `Packets | `Value ] -> t -> int
val pp : Format.formatter -> t -> unit
