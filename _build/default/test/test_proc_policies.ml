open Smbm_core

(* Build a switch and fill queues by accepting packets; [lengths.(i)] packets
   go to port i. *)
let switch ?(buffer = 8) ?(speedup = 1) ~works ~lengths () =
  let config = Proc_config.make ~works ~buffer ~speedup () in
  let sw = Proc_switch.create config in
  Array.iteri
    (fun dest n ->
      for _ = 1 to n do
        ignore (Proc_switch.accept sw ~dest)
      done)
    lengths;
  (config, sw)

let decision = Alcotest.testable Decision.pp Decision.equal

(* The paper's Fig. 2 setting: maximal work 3, four ports, two of which share
   work 2, shared buffer of size 8. *)
let fig2_works = [| 1; 2; 2; 3 |]

let test_nhst_thresholds () =
  let config = Proc_config.make ~works:fig2_works ~buffer:8 () in
  (* Z = 1 + 1/2 + 1/2 + 1/3 = 7/3; thresholds 24/7, 12/7, 12/7, 8/7. *)
  Alcotest.(check (float 1e-9)) "t0" (24.0 /. 7.0) (P_nhst.threshold config 0);
  Alcotest.(check (float 1e-9)) "t3" (8.0 /. 7.0) (P_nhst.threshold config 3)

let test_nhst_admission () =
  let _, sw = switch ~works:fig2_works ~lengths:[| 3; 0; 0; 1 |] () in
  let p = P_nhst.make (Proc_switch.config sw) in
  (* |Q_0| = 3 < 24/7: accept; |Q_3| = 1 >= 8/7 - no: 1 < 8/7 so accept;
     after another packet |Q_3| = 2 >= 8/7: drop. *)
  Alcotest.check decision "port 0 under threshold" Decision.Accept
    (Proc_policy.admit p sw ~dest:0);
  Alcotest.check decision "port 3 under threshold" Decision.Accept
    (Proc_policy.admit p sw ~dest:3);
  ignore (Proc_switch.accept sw ~dest:3);
  Alcotest.check decision "port 3 over threshold" Decision.Drop
    (Proc_policy.admit p sw ~dest:3);
  (* Port 0 at threshold: 24/7 = 3.43, length 4 > threshold. *)
  ignore (Proc_switch.accept sw ~dest:0);
  Alcotest.check decision "port 0 over threshold" Decision.Drop
    (Proc_policy.admit p sw ~dest:0)

let test_nest_admission () =
  let _, sw = switch ~works:fig2_works ~lengths:[| 1; 2; 0; 0 |] () in
  let p = P_nest.make (Proc_switch.config sw) in
  (* B/n = 2. *)
  Alcotest.check decision "below share" Decision.Accept
    (Proc_policy.admit p sw ~dest:0);
  Alcotest.check decision "at share" Decision.Drop
    (Proc_policy.admit p sw ~dest:1);
  Alcotest.check decision "empty queue" Decision.Accept
    (Proc_policy.admit p sw ~dest:3)

let test_nest_respects_full_buffer () =
  let _, sw = switch ~works:[| 1; 1 |] ~buffer:2 ~lengths:[| 1; 1 |] () in
  let p = P_nest.make (Proc_switch.config sw) in
  Alcotest.check decision "full buffer" Decision.Drop
    (Proc_policy.admit p sw ~dest:0)

let test_nhdt_pure_predicate () =
  (* B = 8, n = 4, H_4 = 25/12.  Arrival for the (only) longest queue:
     m = 1, threshold B/H_4 = 3.84. *)
  Alcotest.(check bool) "longest under its share" true
    (P_nhdt.admits ~buffer:8 ~lengths:[| 3; 0; 0; 0 |] ~dest:0);
  (* sum of lengths >= |Q_0| is 4 >= 3.84: reject. *)
  Alcotest.(check bool) "longest over its share" false
    (P_nhdt.admits ~buffer:8 ~lengths:[| 4; 0; 0; 0 |] ~dest:0);
  (* Arrival for an empty queue counts every queue: m = 4, threshold = B. *)
  Alcotest.(check bool) "empty queue sees whole buffer" true
    (P_nhdt.admits ~buffer:8 ~lengths:[| 4; 2; 1; 0 |] ~dest:3)

let test_nhdt_admission_matches_predicate () =
  let _, sw = switch ~works:fig2_works ~lengths:[| 3; 1; 0; 0 |] () in
  let p = P_nhdt.make (Proc_switch.config sw) in
  let expected =
    if P_nhdt.admits ~buffer:8 ~lengths:[| 3; 1; 0; 0 |] ~dest:1 then
      Decision.Accept
    else Decision.Drop
  in
  Alcotest.check decision "policy matches predicate" expected
    (Proc_policy.admit p sw ~dest:1)

let test_lqd_accepts_when_space () =
  let _, sw = switch ~works:fig2_works ~lengths:[| 4; 2; 1; 0 |] () in
  let p = P_lqd.make (Proc_switch.config sw) in
  Alcotest.check decision "greedy accept" Decision.Accept
    (Proc_policy.admit p sw ~dest:3)

let test_lqd_pushes_longest () =
  (* Full buffer: Q0 has 4, Q1 has 2, Q2 has 1, Q3 has 1.  An arrival for
     port 3 pushes out from Q0. *)
  let _, sw = switch ~works:fig2_works ~lengths:[| 4; 2; 1; 1 |] () in
  let p = P_lqd.make (Proc_switch.config sw) in
  Alcotest.check decision "push longest" (Decision.Push_out { victim = 0 })
    (Proc_policy.admit p sw ~dest:3)

let test_lqd_drop_when_own_longest () =
  let _, sw = switch ~works:fig2_works ~lengths:[| 4; 2; 1; 1 |] () in
  let p = P_lqd.make (Proc_switch.config sw) in
  (* Arrival for port 0: virtually 5, still the unique longest: drop. *)
  Alcotest.check decision "drop into own longest" Decision.Drop
    (Proc_policy.admit p sw ~dest:0)

let test_lqd_tie_break_largest_work () =
  (* Q1 (work 2) and Q3 (work 3) both have 4 packets; the arrival for port 0
     pushes out from Q3, the tied queue with the larger work. *)
  let _, sw = switch ~works:fig2_works ~lengths:[| 0; 4; 0; 4 |] () in
  let p = P_lqd.make (Proc_switch.config sw) in
  Alcotest.check decision "tie towards larger work"
    (Decision.Push_out { victim = 3 })
    (Proc_policy.admit p sw ~dest:0)

let test_lqd_virtual_add_wins_tie () =
  (* Q0 and Q1 both hold 4; arrival for port 1 makes Q1 virtually 5: push
     from Q1 means drop is wrong - j* = dest, so the packet is dropped. *)
  let _, sw = switch ~works:fig2_works ~lengths:[| 4; 4; 0; 0 |] () in
  let p = P_lqd.make (Proc_switch.config sw) in
  Alcotest.check decision "virtual add makes own queue longest" Decision.Drop
    (Proc_policy.admit p sw ~dest:1)

let test_bpd_pushes_biggest_work () =
  (* Full buffer with packets in Q1 (work 2) and Q3 (work 3): an arrival for
     port 0 (work 1) pushes out from Q3. *)
  let _, sw = switch ~works:fig2_works ~lengths:[| 0; 4; 0; 4 |] () in
  let p = P_bpd.make (Proc_switch.config sw) in
  Alcotest.check decision "evict biggest work"
    (Decision.Push_out { victim = 3 })
    (Proc_policy.admit p sw ~dest:0)

let test_bpd_drops_bigger_arrival () =
  (* Buffer full of work-1 packets; a work-3 arrival comes after the victim
     in the work order: drop. *)
  let _, sw = switch ~works:fig2_works ~lengths:[| 8; 0; 0; 0 |] () in
  let p = P_bpd.make (Proc_switch.config sw) in
  Alcotest.check decision "bigger than biggest" Decision.Drop
    (Proc_policy.admit p sw ~dest:3);
  (* Equal works: port 1 arrival with only Q2 (same work 2) occupied; (2, 1)
     <= (2, 2) in the sorted order, so it may push out. *)
  let _, sw = switch ~works:fig2_works ~lengths:[| 0; 0; 8; 0 |] () in
  Alcotest.check decision "equal work earlier port pushes"
    (Decision.Push_out { victim = 2 })
    (Proc_policy.admit p sw ~dest:1)

let test_bpd1_protects_last_packet () =
  (* Q3 has exactly one packet, Q1 has the rest: BPD would evict from Q3
     (largest work) but BPD1 must pick Q1. *)
  let _, sw = switch ~works:fig2_works ~lengths:[| 0; 7; 0; 1 |] () in
  let config = Proc_switch.config sw in
  let bpd = P_bpd.make config in
  let bpd1 = P_bpd.make ~protect_last:true config in
  Alcotest.check decision "BPD evicts the single packet"
    (Decision.Push_out { victim = 3 })
    (Proc_policy.admit bpd sw ~dest:0);
  Alcotest.check decision "BPD1 protects it"
    (Decision.Push_out { victim = 1 })
    (Proc_policy.admit bpd1 sw ~dest:0)

let test_bpd1_drops_when_all_queues_singletons () =
  let _, sw = switch ~works:[| 1; 2 |] ~buffer:2 ~lengths:[| 1; 1 |] () in
  let p = P_bpd.make ~protect_last:true (Proc_switch.config sw) in
  Alcotest.check decision "no eligible victim" Decision.Drop
    (Proc_policy.admit p sw ~dest:0)

let test_lwd_pushes_most_work () =
  (* Q0: 6 x work 1 = 6 cycles; Q3: 2 x work 3 = 6 cycles; tie on total work
     broken towards the larger per-packet work (Q3). *)
  let _, sw = switch ~works:fig2_works ~lengths:[| 6; 0; 0; 2 |] () in
  let p = P_lwd.make (Proc_switch.config sw) in
  Alcotest.check decision "tie towards larger work"
    (Decision.Push_out { victim = 3 })
    (Proc_policy.admit p sw ~dest:1)

let test_lwd_differs_from_lqd () =
  (* Q0 holds 5 work-1 packets (W=5), Q3 holds 3 work-3 packets (W=9): LQD
     evicts from the longest queue Q0, LWD from the heaviest queue Q3. *)
  let _, sw = switch ~works:fig2_works ~lengths:[| 5; 0; 0; 3 |] () in
  let config = Proc_switch.config sw in
  Alcotest.check decision "LQD evicts longest" (Decision.Push_out { victim = 0 })
    (Proc_policy.admit (P_lqd.make config) sw ~dest:1);
  Alcotest.check decision "LWD evicts most work"
    (Decision.Push_out { victim = 3 })
    (Proc_policy.admit (P_lwd.make config) sw ~dest:1)

let test_lwd_virtual_add () =
  (* Q0: W = 7; Q3: W = 3.  An arrival for port 3 counts its own work 3:
     virtual W_3 = 6 < 7, so Q0 is still the victim. *)
  let _, sw = switch ~works:fig2_works ~buffer:8 ~lengths:[| 7; 0; 0; 1 |] () in
  let p = P_lwd.make (Proc_switch.config sw) in
  Alcotest.check decision "other queue heavier"
    (Decision.Push_out { victim = 0 })
    (Proc_policy.admit p sw ~dest:3);
  (* Make Q3 virtually heaviest: Q0 = 5, Q3 = 1x3 + virtual 3 = 6 > 5. *)
  let _, sw = switch ~works:fig2_works ~buffer:6 ~lengths:[| 5; 0; 0; 1 |] () in
  Alcotest.check decision "own queue virtually heaviest drops" Decision.Drop
    (Proc_policy.admit p sw ~dest:3)

let test_lwd_accounts_residual_work () =
  (* Two work-3 packets in Q3 (W=6) vs 5 work-1 in Q0 (W=5); after two
     processing cycles Q3's HOL is down to 1 (W=4) while Q0 is at 3 (W=3).
     An arrival for port 1 must now evict from Q3 only before processing. *)
  let _, sw = switch ~works:fig2_works ~buffer:7 ~lengths:[| 5; 0; 0; 2 |] () in
  let p = P_lwd.make (Proc_switch.config sw) in
  Alcotest.check decision "before processing"
    (Decision.Push_out { victim = 3 })
    (Proc_policy.admit p sw ~dest:1);
  (* Two transmission phases: Q0 transmits 2 (W=3), Q3 works down to W=4. *)
  ignore (Proc_switch.transmit_phase sw ~on_transmit:(fun _ -> ()));
  ignore (Proc_switch.transmit_phase sw ~on_transmit:(fun _ -> ()));
  Alcotest.(check int) "W0" 3 (Proc_switch.queue_work sw 0);
  Alcotest.(check int) "W3" 4 (Proc_switch.queue_work sw 3);
  Alcotest.(check bool) "buffer not full now" false (Proc_switch.is_full sw)

(* Generic policy laws, checked across all registered policies. *)

let random_switch_gen =
  QCheck2.Gen.(
    let* n = int_range 1 4 in
    let* works = array_size (pure n) (int_range 1 5) in
    let* buffer = int_range n 10 in
    let* fill = list_size (int_range 0 20) (int_range 0 (n - 1)) in
    let* dest = int_range 0 (n - 1) in
    pure (works, buffer, fill, dest))

let build (works, buffer, fill, dest) =
  let config = Proc_config.make ~works ~buffer () in
  let sw = Proc_switch.create config in
  List.iter
    (fun d -> if not (Proc_switch.is_full sw) then ignore (Proc_switch.accept sw ~dest:d))
    fill;
  (config, sw, dest)

let prop_all_policies_legal =
  QCheck2.Test.make
    ~name:"every policy returns a legal decision on random states" ~count:500
    random_switch_gen (fun input ->
      let config, sw, dest = build input in
      List.for_all
        (fun (p : Proc_policy.t) ->
          match Proc_policy.admit p sw ~dest with
          | Decision.Accept -> not (Proc_switch.is_full sw)
          | Decision.Push_out { victim } ->
            Proc_switch.is_full sw
            && p.push_out
            && Proc_switch.queue_length sw victim > 0
          | Decision.Drop -> true)
        (Policies.proc config))

let prop_push_out_policies_greedy =
  QCheck2.Test.make
    ~name:"push-out policies accept whenever the buffer has space" ~count:500
    random_switch_gen (fun input ->
      let config, sw, dest = build input in
      Proc_switch.is_full sw
      || List.for_all
           (fun (p : Proc_policy.t) ->
             (not p.push_out)
             || Proc_policy.admit p sw ~dest = Decision.Accept)
           (Policies.proc config))

(* Note: the equivalence is exact only while no packet is partially served
   (fresh buffers, as generated here); mid-stream, LWD's residual-work
   argmax can tie-break differently from LQD's length argmax when two
   queues have equal lengths but differently served head-of-line packets. *)
let prop_lwd_equals_lqd_uniform_work =
  QCheck2.Test.make
    ~name:"LWD coincides with LQD under uniform work (unserved buffers)"
    ~count:500
    QCheck2.Gen.(
      let* n = int_range 1 4 in
      let* work = int_range 1 4 in
      let* buffer = int_range n 8 in
      let* fill = list_size (int_range 0 16) (int_range 0 (n - 1)) in
      let* dest = int_range 0 (n - 1) in
      pure (n, work, buffer, fill, dest))
    (fun (n, work, buffer, fill, dest) ->
      let config = Proc_config.uniform ~n ~work ~buffer () in
      let sw = Proc_switch.create config in
      List.iter
        (fun d ->
          if not (Proc_switch.is_full sw) then
            ignore (Proc_switch.accept sw ~dest:d))
        fill;
      Decision.equal
        (Proc_policy.admit (P_lwd.make config) sw ~dest)
        (Proc_policy.admit (P_lqd.make config) sw ~dest))

let test_registry () =
  let config = Proc_config.contiguous ~k:3 ~buffer:6 () in
  let names = List.map (fun (p : Proc_policy.t) -> p.name) (Policies.proc config) in
  Alcotest.(check (list string)) "registry order"
    [ "NHST"; "NEST"; "NHDT"; "LQD"; "BPD"; "BPD1"; "LWD" ]
    names;
  Alcotest.(check bool) "find is case-insensitive" true
    (Option.is_some (Policies.proc_find config "lwd"));
  Alcotest.(check bool) "unknown name" true
    (Option.is_none (Policies.proc_find config "nope"))

let suite =
  [
    Alcotest.test_case "NHST thresholds" `Quick test_nhst_thresholds;
    Alcotest.test_case "NHST admission" `Quick test_nhst_admission;
    Alcotest.test_case "NEST admission" `Quick test_nest_admission;
    Alcotest.test_case "NEST at full buffer" `Quick
      test_nest_respects_full_buffer;
    Alcotest.test_case "NHDT predicate" `Quick test_nhdt_pure_predicate;
    Alcotest.test_case "NHDT policy matches predicate" `Quick
      test_nhdt_admission_matches_predicate;
    Alcotest.test_case "LQD greedy accept" `Quick test_lqd_accepts_when_space;
    Alcotest.test_case "LQD pushes longest" `Quick test_lqd_pushes_longest;
    Alcotest.test_case "LQD drops into own longest" `Quick
      test_lqd_drop_when_own_longest;
    Alcotest.test_case "LQD tie-break" `Quick test_lqd_tie_break_largest_work;
    Alcotest.test_case "LQD virtual add" `Quick test_lqd_virtual_add_wins_tie;
    Alcotest.test_case "BPD pushes biggest" `Quick test_bpd_pushes_biggest_work;
    Alcotest.test_case "BPD work ordering" `Quick test_bpd_drops_bigger_arrival;
    Alcotest.test_case "BPD1 protects last packet" `Quick
      test_bpd1_protects_last_packet;
    Alcotest.test_case "BPD1 drops among singletons" `Quick
      test_bpd1_drops_when_all_queues_singletons;
    Alcotest.test_case "LWD tie towards larger work" `Quick
      test_lwd_pushes_most_work;
    Alcotest.test_case "LWD differs from LQD" `Quick test_lwd_differs_from_lqd;
    Alcotest.test_case "LWD virtual add" `Quick test_lwd_virtual_add;
    Alcotest.test_case "LWD tracks residual work" `Quick
      test_lwd_accounts_residual_work;
    Alcotest.test_case "registry" `Quick test_registry;
    Qc.to_alcotest prop_all_policies_legal;
    Qc.to_alcotest prop_push_out_policies_greedy;
    Qc.to_alcotest prop_lwd_equals_lqd_uniform_work;
  ]
