open Smbm_prelude

let test_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 16 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_copy_independent () =
  let a = Rng.create ~seed:3 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues stream" (Rng.bits64 a) (Rng.bits64 b);
  ignore (Rng.bits64 a);
  (* b is now one draw behind a; advancing b must not affect a. *)
  let next_a = Rng.bits64 (Rng.copy a) in
  ignore (Rng.bits64 b);
  Alcotest.(check int64) "streams independent" next_a (Rng.bits64 a)

let test_split_differs () =
  let a = Rng.create ~seed:11 in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "split stream is distinct" true (!same < 4)

let test_int_bounds () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 7 in
    if x < 0 || x >= 7 then Alcotest.fail "Rng.int out of bounds"
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_int_in_bounds () =
  let rng = Rng.create ~seed:5 in
  let seen = Array.make 5 false in
  for _ = 1 to 2_000 do
    let x = Rng.int_in rng 3 7 in
    if x < 3 || x > 7 then Alcotest.fail "Rng.int_in out of bounds";
    seen.(x - 3) <- true
  done;
  Alcotest.(check bool) "all values in range reachable" true
    (Array.for_all Fun.id seen);
  Alcotest.check_raises "inverted range" (Invalid_argument "Rng.int_in: lo > hi")
    (fun () -> ignore (Rng.int_in rng 7 3))

let test_float_unit_interval () =
  let rng = Rng.create ~seed:13 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    if x < 0.0 || x >= 1.0 then Alcotest.fail "Rng.float out of [0, 1)"
  done

let mean_of n f =
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. f ()
  done;
  !total /. float_of_int n

let test_float_mean () =
  let rng = Rng.create ~seed:17 in
  let mean = mean_of 50_000 (fun () -> Rng.float rng) in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.01)

let test_bernoulli () =
  let rng = Rng.create ~seed:19 in
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng ~p:0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng ~p:1.0);
  let mean =
    mean_of 50_000 (fun () -> if Rng.bernoulli rng ~p:0.3 then 1.0 else 0.0)
  in
  Alcotest.(check bool) "p=0.3 frequency" true (abs_float (mean -. 0.3) < 0.01)

let test_poisson_mean_small () =
  let rng = Rng.create ~seed:23 in
  let lambda = 2.5 in
  let mean = mean_of 50_000 (fun () -> float_of_int (Rng.poisson rng ~lambda)) in
  Alcotest.(check bool) "small-lambda mean" true
    (abs_float (mean -. lambda) < 0.05);
  Alcotest.(check int) "lambda=0" 0 (Rng.poisson rng ~lambda:0.0)

let test_poisson_mean_large () =
  let rng = Rng.create ~seed:29 in
  let lambda = 80.0 in
  let mean = mean_of 20_000 (fun () -> float_of_int (Rng.poisson rng ~lambda)) in
  Alcotest.(check bool) "large-lambda mean" true
    (abs_float (mean -. lambda) /. lambda < 0.01)

let test_exponential_mean () =
  let rng = Rng.create ~seed:31 in
  let mean = mean_of 50_000 (fun () -> Rng.exponential rng ~rate:2.0) in
  Alcotest.(check bool) "exponential mean 1/rate" true
    (abs_float (mean -. 0.5) < 0.01)

let test_geometric () =
  let rng = Rng.create ~seed:37 in
  Alcotest.(check int) "p=1 is 0" 0 (Rng.geometric rng ~p:1.0);
  let mean =
    mean_of 50_000 (fun () -> float_of_int (Rng.geometric rng ~p:0.25))
  in
  (* failures before success: mean (1-p)/p = 3 *)
  Alcotest.(check bool) "geometric mean" true (abs_float (mean -. 3.0) < 0.1)

let test_choose () =
  let rng = Rng.create ~seed:41 in
  let arr = [| 'a'; 'b'; 'c' |] in
  for _ = 1 to 100 do
    let c = Rng.choose rng arr in
    if not (Array.mem c arr) then Alcotest.fail "choose outside array"
  done;
  Alcotest.check_raises "empty array"
    (Invalid_argument "Rng.choose: empty array") (fun () ->
      ignore (Rng.choose rng [||]))

let prop_int_uniformity =
  QCheck2.Test.make ~name:"Rng.int covers its range" ~count:50
    QCheck2.Gen.(int_range 2 40)
    (fun bound ->
      let rng = Rng.create ~seed:bound in
      let seen = Array.make bound false in
      for _ = 1 to bound * 200 do
        seen.(Rng.int rng bound) <- true
      done;
      Array.for_all Fun.id seen)

(* The parallel subsystem (Smbm_par) derives per-task seeds by splitting:
   its determinism-and-independence contract rests on split children not
   replaying each other's outputs.  SplitMix64 children are shifted copies
   of one 2^64-periodic permutation, so overlap over a prefix would require
   two child states to land within N gammas of each other — this property
   pins that down empirically for many parents and fans. *)
let prop_split_no_overlap =
  QCheck2.Test.make ~name:"Rng.split children pairwise non-overlapping"
    ~count:25
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 2 8))
    (fun (seed, children) ->
      let draws = 512 in
      let parent = Rng.create ~seed in
      let seen = Hashtbl.create (children * draws) in
      let ok = ref true in
      for child = 0 to children - 1 do
        let rng = Rng.split parent in
        for _ = 1 to draws do
          let v = Rng.bits64 rng in
          (match Hashtbl.find_opt seen v with
          | Some other when other <> child -> ok := false
          | Some _ | None -> ());
          Hashtbl.replace seen v child
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "determinism by seed" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy preserves stream" `Quick test_copy_independent;
    Alcotest.test_case "split gives distinct stream" `Quick test_split_differs;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int_in bounds" `Quick test_int_in_bounds;
    Alcotest.test_case "float in unit interval" `Quick test_float_unit_interval;
    Alcotest.test_case "float mean" `Quick test_float_mean;
    Alcotest.test_case "bernoulli" `Quick test_bernoulli;
    Alcotest.test_case "poisson small lambda" `Quick test_poisson_mean_small;
    Alcotest.test_case "poisson large lambda" `Quick test_poisson_mean_large;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "geometric" `Quick test_geometric;
    Alcotest.test_case "choose" `Quick test_choose;
    Qc.to_alcotest prop_int_uniformity;
    Qc.to_alcotest prop_split_no_overlap;
  ]
