open Smbm_prelude

let check_float = Alcotest.(check (float 1e-9))

let test_base_cases () =
  check_float "H_0" 0.0 (Harmonic.h 0);
  check_float "H_1" 1.0 (Harmonic.h 1);
  check_float "H_2" 1.5 (Harmonic.h 2);
  check_float "H_4" (25.0 /. 12.0) (Harmonic.h 4)

let test_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Harmonic.h: negative")
    (fun () -> ignore (Harmonic.h (-1)))

let test_memo_growth () =
  (* Ask out of order to exercise table growth and reuse. *)
  let h1000 = Harmonic.h 1000 in
  let h10 = Harmonic.h 10 in
  check_float "H_10 after H_1000" 2.9289682539682538 h10;
  Alcotest.(check bool) "monotone" true (h1000 > h10)

let test_h_range () =
  check_float "range 1..4 = H_4" (Harmonic.h 4) (Harmonic.h_range 1 4);
  check_float "range 3..5" ((1.0 /. 3.0) +. 0.25 +. 0.2) (Harmonic.h_range 3 5);
  check_float "empty range" 0.0 (Harmonic.h_range 5 4);
  Alcotest.check_raises "lo < 1"
    (Invalid_argument "Harmonic.h_range: lo must be >= 1") (fun () ->
      ignore (Harmonic.h_range 0 3))

let test_approx_close () =
  let n = 10_000 in
  let exact = Harmonic.h n and approx = Harmonic.approx n in
  Alcotest.(check bool) "asymptotic approximation" true
    (abs_float (exact -. approx) < 1e-6)

let prop_recurrence =
  QCheck2.Test.make ~name:"H_n = H_(n-1) + 1/n" ~count:100
    QCheck2.Gen.(int_range 1 5000)
    (fun n ->
      abs_float (Harmonic.h n -. Harmonic.h (n - 1) -. (1.0 /. float_of_int n))
      < 1e-12)

let suite =
  [
    Alcotest.test_case "base cases" `Quick test_base_cases;
    Alcotest.test_case "negative input" `Quick test_negative;
    Alcotest.test_case "memo growth" `Quick test_memo_growth;
    Alcotest.test_case "h_range" `Quick test_h_range;
    Alcotest.test_case "asymptotic approximation" `Quick test_approx_close;
    Qc.to_alcotest prop_recurrence;
  ]
