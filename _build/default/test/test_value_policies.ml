open Smbm_core

(* Build a value switch and fill it; [fill] is a list of (dest, value). *)
let switch ?(ports = 4) ?(max_value = 4) ?(buffer = 8) ~fill () =
  let config = Value_config.make ~ports ~max_value ~buffer () in
  let sw = Value_switch.create config in
  List.iter (fun (dest, value) -> ignore (Value_switch.accept sw ~dest ~value)) fill;
  (config, sw)

let decision = Alcotest.testable Decision.pp Decision.equal

(* The paper's Fig. 4 setting: maximal value 4, four output ports, shared
   buffer of size 8. *)

let test_greedy () =
  let config, sw = switch ~fill:[ (0, 1) ] () in
  let p = V_greedy.make config in
  Alcotest.check decision "accept with space" Decision.Accept
    (Value_policy.admit p sw ~dest:1 ~value:1);
  let config, sw =
    switch ~fill:(List.init 8 (fun i -> (i mod 4, 1))) ()
  in
  let p = V_greedy.make config in
  Alcotest.check decision "drop when full" Decision.Drop
    (Value_policy.admit p sw ~dest:0 ~value:4)

let test_nest () =
  let config, sw = switch ~fill:[ (0, 1); (0, 2); (1, 3) ] () in
  let p = V_nest.make config in
  (* B/n = 2 *)
  Alcotest.check decision "at share" Decision.Drop
    (Value_policy.admit p sw ~dest:0 ~value:4);
  Alcotest.check decision "below share" Decision.Accept
    (Value_policy.admit p sw ~dest:1 ~value:1)

let test_nhst_reversed_thresholds () =
  (* 4 ports with value = port + 1; reversed shares (k - v + 1) = 4,3,2,1 and
     Z = 1/4 + 1/3 + 1/2 + 1 = 25/12; threshold of the value-4 port is
     B / (1 * Z) = 96/25 - the most valuable port gets the largest share. *)
  let port_value = [| 1; 2; 3; 4 |] in
  Alcotest.(check (float 1e-9)) "value-4 port share" (96.0 /. 25.0)
    (V_nhst.threshold ~reversed:true ~port_value ~buffer:8 3);
  Alcotest.(check (float 1e-9)) "value-1 port share" (24.0 /. 25.0)
    (V_nhst.threshold ~reversed:true ~port_value ~buffer:8 0);
  (* Direct thresholds mirror the processing model: value-1 port largest. *)
  Alcotest.(check (float 1e-9)) "direct value-1 port share" (96.0 /. 25.0)
    (V_nhst.threshold ~reversed:false ~port_value ~buffer:8 0)

let test_nhst_policy () =
  let config, sw = switch ~fill:[ (3, 4); (3, 4); (3, 4); (0, 1) ] () in
  let p = V_nhst.make ~port_value:[| 1; 2; 3; 4 |] config in
  (* Port 3 threshold 3.84: at length 3 accept, at 4 drop. *)
  Alcotest.check decision "below" Decision.Accept
    (Value_policy.admit p sw ~dest:3 ~value:4);
  ignore (Value_switch.accept sw ~dest:3 ~value:4);
  Alcotest.check decision "above" Decision.Drop
    (Value_policy.admit p sw ~dest:3 ~value:4);
  (* Port 0 threshold 0.96: one packet is already over. *)
  Alcotest.check decision "low-value port starved" Decision.Drop
    (Value_policy.admit p sw ~dest:0 ~value:1)

let test_lqd_pushes_longest_min () =
  (* Full: Q0 = [4;3;2;1] (4 packets), Q1 = [2;2], Q2 = [3], Q3 = [4].
     Arrival for port 2: Q0 longest, evict its min. *)
  let config, sw =
    switch
      ~fill:[ (0, 4); (0, 3); (0, 2); (0, 1); (1, 2); (1, 2); (2, 3); (3, 4) ]
      ()
  in
  let p = V_lqd.make config in
  Alcotest.check decision "push from longest" (Decision.Push_out { victim = 0 })
    (Value_policy.admit p sw ~dest:2 ~value:1)

let test_lqd_own_queue_replace () =
  (* Q0 holds the whole buffer; an arrival for port 0 with a higher value
     replaces Q0's minimum; with value 1 (not above min) it is dropped. *)
  let config, sw =
    switch ~fill:(List.init 8 (fun i -> (0, 1 + (i mod 2)))) ()
  in
  let p = V_lqd.make config in
  Alcotest.check decision "better packet replaces own min"
    (Decision.Push_out { victim = 0 })
    (Value_policy.admit p sw ~dest:0 ~value:4);
  Alcotest.check decision "equal-or-worse packet dropped" Decision.Drop
    (Value_policy.admit p sw ~dest:0 ~value:1)

let test_lqd_tie_break_cheaper_min () =
  (* Q1 = [4;4], Q2 = [4;1]: both length 2 and an arrival for port 0 sees
     both at virtual length 2 vs its own 1: victim is Q2 (cheaper min). *)
  let config, sw =
    switch ~buffer:4 ~fill:[ (1, 4); (1, 4); (2, 4); (2, 1) ] ()
  in
  let p = V_lqd.make config in
  Alcotest.check decision "tie towards cheaper eviction"
    (Decision.Push_out { victim = 2 })
    (Value_policy.admit p sw ~dest:0 ~value:3)

let test_mvd_basic () =
  (* Full buffer; minimum value 1 lives in Q1. *)
  let config, sw =
    switch ~buffer:4 ~fill:[ (0, 4); (1, 1); (2, 3); (3, 2) ] ()
  in
  let p = V_mvd.make config in
  Alcotest.check decision "more valuable arrival evicts min"
    (Decision.Push_out { victim = 1 })
    (Value_policy.admit p sw ~dest:0 ~value:3);
  Alcotest.check decision "equal value dropped" Decision.Drop
    (Value_policy.admit p sw ~dest:0 ~value:1)

let test_mvd_tie_break_longest () =
  (* Minimum value 1 in Q0 (length 1) and Q2 (length 3): evict from Q2. *)
  let config, sw =
    switch ~buffer:4 ~fill:[ (0, 1); (2, 1); (2, 2); (2, 4) ] ()
  in
  let p = V_mvd.make config in
  Alcotest.check decision "longest min queue"
    (Decision.Push_out { victim = 2 })
    (Value_policy.admit p sw ~dest:1 ~value:4)

let test_mvd1_protects_singletons () =
  (* Min value 1 is alone in Q0; MVD1 must evict the cheapest packet among
     queues with >= 2 packets, i.e. Q2's 2. *)
  let config, sw =
    switch ~buffer:4 ~fill:[ (0, 1); (2, 2); (2, 4); (3, 3) ] ()
  in
  let mvd = V_mvd.make config in
  let mvd1 = V_mvd.make ~protect_last:true config in
  Alcotest.check decision "MVD takes the singleton"
    (Decision.Push_out { victim = 0 })
    (Value_policy.admit mvd sw ~dest:1 ~value:4);
  Alcotest.check decision "MVD1 spares it"
    (Decision.Push_out { victim = 2 })
    (Value_policy.admit mvd1 sw ~dest:1 ~value:4);
  (* All queues singletons: MVD1 drops. *)
  let config, sw =
    switch ~buffer:4 ~fill:[ (0, 1); (1, 1); (2, 1); (3, 1) ] ()
  in
  let mvd1 = V_mvd.make ~protect_last:true config in
  Alcotest.check decision "no eligible victim" Decision.Drop
    (Value_policy.admit mvd1 sw ~dest:0 ~value:4)

let test_mrd_ratio_selection () =
  (* Q0 = four 1s: ratio 4/1 = 4; Q3 = four 4s: ratio 4/4 = 1.
     MRD evicts from Q0 when a better packet arrives. *)
  let config, sw =
    switch ~fill:[ (0, 1); (0, 1); (0, 1); (0, 1); (3, 4); (3, 4); (3, 4); (3, 4) ]
      ()
  in
  let p = V_mrd.make config in
  Alcotest.check decision "max ratio queue evicted"
    (Decision.Push_out { victim = 0 })
    (Value_policy.admit p sw ~dest:1 ~value:2);
  (* An arrival equal to the buffer minimum still pushes out (the behaviour
     that makes MRD emulate LQD under unit values). *)
  Alcotest.check decision "equal value pushes out"
    (Decision.Push_out { victim = 0 })
    (Value_policy.admit p sw ~dest:1 ~value:1)

let test_mrd_drops_below_min () =
  (* Buffer minimum is 2; a value-1 arrival is strictly worse: drop. *)
  let config, sw = switch ~buffer:2 ~fill:[ (0, 2); (1, 3) ] () in
  let p = V_mrd.make config in
  Alcotest.check decision "worse than min" Decision.Drop
    (Value_policy.admit p sw ~dest:2 ~value:1)

let test_mrd_drop_condition_is_global_min () =
  (* The push-out *condition* looks at the global minimum but the *victim*
     is the ratio-maximal queue: Q0 = [2;2;2;2] (ratio 16/8 = 2) beats
     Q1 = [1] (ratio 1), so the arrival admitted thanks to Q1's cheap packet
     actually evicts one of Q0's 2s. *)
  let config, sw =
    switch ~buffer:5 ~fill:[ (0, 2); (0, 2); (0, 2); (0, 2); (1, 1) ] ()
  in
  let p = V_mrd.make config in
  Alcotest.check decision "condition global, victim ratio-maximal"
    (Decision.Push_out { victim = 0 })
    (Value_policy.admit p sw ~dest:2 ~value:3)

let test_mrd_selects_higher_ratio () =
  (* Q0 = [1;1] ratio 2/1 = 2; Q1 = [4;4] ratio 2/4 = 0.5. *)
  let config, sw = switch ~buffer:4 ~fill:[ (0, 1); (0, 1); (1, 4); (1, 4) ] () in
  let p = V_mrd.make config in
  Alcotest.check decision "higher ratio wins" (Decision.Push_out { victim = 0 })
    (Value_policy.admit p sw ~dest:2 ~value:3)

(* Generic laws. *)

let random_state_gen =
  QCheck2.Gen.(
    let* ports = int_range 1 4 in
    let* k = int_range 1 5 in
    let* buffer = int_range ports 8 in
    let* fill =
      list_size (int_range 0 16) (pair (int_range 0 (ports - 1)) (int_range 1 k))
    in
    let* dest = int_range 0 (ports - 1) in
    let* value = int_range 1 k in
    pure (ports, k, buffer, fill, dest, value))

let build (ports, k, buffer, fill, dest, value) =
  let config = Value_config.make ~ports ~max_value:k ~buffer () in
  let sw = Value_switch.create config in
  List.iter
    (fun (d, v) ->
      if not (Value_switch.is_full sw) then
        ignore (Value_switch.accept sw ~dest:d ~value:v))
    fill;
  (config, sw, dest, value)

let all_policies config =
  Policies.value_port
    ~port_value:(Array.init (Value_config.n config) (fun i ->
        1 + (i mod Value_config.k config)))
    config

let prop_all_policies_legal =
  QCheck2.Test.make
    ~name:"every value policy returns a legal decision on random states"
    ~count:500 random_state_gen (fun input ->
      let config, sw, dest, value = build input in
      List.for_all
        (fun (p : Value_policy.t) ->
          match Value_policy.admit p sw ~dest ~value with
          | Decision.Accept -> not (Value_switch.is_full sw)
          | Decision.Push_out { victim } ->
            Value_switch.is_full sw
            && p.push_out
            && Value_switch.queue_length sw victim > 0
          | Decision.Drop -> true)
        (all_policies config))

let prop_push_out_policies_greedy =
  QCheck2.Test.make
    ~name:"value push-out policies accept whenever there is space" ~count:500
    random_state_gen (fun input ->
      let config, sw, dest, value = build input in
      Value_switch.is_full sw
      || List.for_all
           (fun (p : Value_policy.t) ->
             (not p.push_out)
             || Value_policy.admit p sw ~dest ~value = Decision.Accept)
           (all_policies config))

(* The queue-length vector that results from applying a decision to the
   current lengths. *)
let resulting_lengths sw ~dest decision =
  let lengths =
    Array.init (Value_switch.n sw) (Value_switch.queue_length sw)
  in
  (match decision with
  | Decision.Accept -> lengths.(dest) <- lengths.(dest) + 1
  | Decision.Push_out { victim } ->
    lengths.(victim) <- lengths.(victim) - 1;
    lengths.(dest) <- lengths.(dest) + 1
  | Decision.Drop -> ());
  lengths

let prop_mrd_emulates_lqd_unit_values =
  QCheck2.Test.make
    ~name:"MRD emulates LQD under unit values (up to tie-breaking)"
    ~count:500
    QCheck2.Gen.(
      let* ports = int_range 1 4 in
      let* buffer = int_range ports 8 in
      let* fill = list_size (int_range 0 16) (int_range 0 (ports - 1)) in
      let* dest = int_range 0 (ports - 1) in
      pure (ports, buffer, fill, dest))
    (fun (ports, buffer, fill, dest) ->
      let config = Value_config.make ~ports ~max_value:1 ~buffer () in
      let sw = Value_switch.create config in
      List.iter
        (fun d ->
          if not (Value_switch.is_full sw) then
            ignore (Value_switch.accept sw ~dest:d ~value:1))
        fill;
      let lengths = Array.init ports (Value_switch.queue_length sw) in
      let max_len = Array.fold_left max 0 lengths in
      let tied =
        Array.fold_left (fun n l -> if l = max_len then n + 1 else n) 0 lengths
        > 1
        || lengths.(dest) + 1 = max_len
      in
      tied
      ||
      let mrd =
        resulting_lengths sw ~dest
          (Value_policy.admit (V_mrd.make config) sw ~dest ~value:1)
      and lqd =
        resulting_lengths sw ~dest
          (Value_policy.admit (V_lqd.make config) sw ~dest ~value:1)
      in
      mrd = lqd)

let prop_mvd_never_evicts_better =
  QCheck2.Test.make
    ~name:"MVD only pushes out strictly less valuable packets" ~count:500
    random_state_gen (fun input ->
      let config, sw, dest, value = build input in
      match Value_policy.admit (V_mvd.make config) sw ~dest ~value with
      | Decision.Push_out { victim } -> (
        match Value_queue.min_value (Value_switch.queue sw victim) with
        | Some m ->
          m < value && Value_switch.min_value sw = Some m
        | None -> false)
      | Decision.Accept | Decision.Drop -> true)

let test_registry () =
  let config = Value_config.make ~ports:4 ~max_value:4 ~buffer:8 () in
  let names =
    List.map (fun (p : Value_policy.t) -> p.name) (Policies.value_uniform config)
  in
  Alcotest.(check (list string)) "uniform registry"
    [ "Greedy"; "NEST"; "LQD"; "MVD"; "MVD1"; "MRD" ]
    names;
  let port_names =
    List.map (fun (p : Value_policy.t) -> p.name)
      (Policies.value_port ~port_value:[| 1; 2; 3; 4 |] config)
  in
  Alcotest.(check bool) "port registry adds NHST" true
    (List.mem "NHST" port_names);
  Alcotest.(check bool) "find" true
    (Option.is_some (Policies.value_find config "mrd"))

let suite =
  [
    Alcotest.test_case "greedy baseline" `Quick test_greedy;
    Alcotest.test_case "NEST" `Quick test_nest;
    Alcotest.test_case "NHST reversed thresholds" `Quick
      test_nhst_reversed_thresholds;
    Alcotest.test_case "NHST policy" `Quick test_nhst_policy;
    Alcotest.test_case "LQD pushes longest" `Quick test_lqd_pushes_longest_min;
    Alcotest.test_case "LQD own-queue replacement" `Quick
      test_lqd_own_queue_replace;
    Alcotest.test_case "LQD tie-break" `Quick test_lqd_tie_break_cheaper_min;
    Alcotest.test_case "MVD basics" `Quick test_mvd_basic;
    Alcotest.test_case "MVD tie-break" `Quick test_mvd_tie_break_longest;
    Alcotest.test_case "MVD1 protects singletons" `Quick
      test_mvd1_protects_singletons;
    Alcotest.test_case "MRD ratio selection" `Quick test_mrd_ratio_selection;
    Alcotest.test_case "MRD global-min drop condition" `Quick
      test_mrd_drop_condition_is_global_min;
    Alcotest.test_case "MRD drops below min" `Quick test_mrd_drops_below_min;
    Alcotest.test_case "MRD higher ratio wins" `Quick
      test_mrd_selects_higher_ratio;
    Alcotest.test_case "registry" `Quick test_registry;
    Qc.to_alcotest prop_all_policies_legal;
    Qc.to_alcotest prop_push_out_policies_greedy;
    Qc.to_alcotest prop_mrd_emulates_lqd_unit_values;
    Qc.to_alcotest prop_mvd_never_evicts_better;
  ]
