open Smbm_core
open Smbm_traffic

let trace_of slots = Trace.of_slots (Array.of_list slots)

let test_empty () =
  let s = Trace_stats.analyze (trace_of []) in
  Alcotest.(check int) "arrivals" 0 s.Trace_stats.arrivals;
  Alcotest.(check (float 1e-9)) "burstiness" 0.0 s.Trace_stats.burstiness

let test_counts () =
  let a d = Arrival.make ~dest:d () in
  let s = Trace_stats.analyze (trace_of [ [ a 0; a 1 ]; []; [ a 0 ] ]) in
  Alcotest.(check int) "slots" 3 s.Trace_stats.slots;
  Alcotest.(check int) "arrivals" 3 s.Trace_stats.arrivals;
  Alcotest.(check (float 1e-9)) "mean rate" 1.0 s.Trace_stats.mean_rate;
  Alcotest.(check int) "peak" 2 s.Trace_stats.peak_rate;
  Alcotest.(check int) "busy slots" 2 s.Trace_stats.busy_slots;
  Alcotest.(check (list (pair int int))) "per port" [ (0, 2); (1, 1) ]
    s.Trace_stats.per_port

let test_burstiness_orders_traffic () =
  (* A constant-rate trace has dispersion 0; an on-off trace with the same
     mean has dispersion > 1. *)
  let a = Arrival.make ~dest:0 () in
  let steady = trace_of (List.init 40 (fun _ -> [ a ])) in
  let bursty =
    trace_of (List.init 40 (fun i -> if i mod 4 = 0 then [ a; a; a; a ] else []))
  in
  let s1 = Trace_stats.analyze steady and s2 = Trace_stats.analyze bursty in
  Alcotest.(check (float 1e-9)) "same mean" s1.Trace_stats.mean_rate
    s2.Trace_stats.mean_rate;
  Alcotest.(check (float 1e-9)) "steady dispersion" 0.0
    s1.Trace_stats.burstiness;
  Alcotest.(check bool) "bursty dispersion > 1" true
    (s2.Trace_stats.burstiness > 1.0)

let test_offered_work_and_load () =
  let config = Proc_config.contiguous ~k:3 ~buffer:6 () in
  let a d = Arrival.make ~dest:d () in
  (* Works 1, 2, 3: one packet each = 6 cycles over 2 slots of 3-cycle
     capacity. *)
  let trace = trace_of [ [ a 0; a 1 ]; [ a 2 ] ] in
  Alcotest.(check int) "offered work" 6 (Trace_stats.offered_work config trace);
  Alcotest.(check (float 1e-9)) "offered load" 1.0
    (Trace_stats.offered_load config trace);
  let bad = trace_of [ [ a 7 ] ] in
  match Trace_stats.offered_work config bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown port accepted"

let test_total_value () =
  let v d value = Arrival.make ~dest:d ~value () in
  let s = Trace_stats.analyze (trace_of [ [ v 0 5; v 1 2 ] ]) in
  Alcotest.(check int) "total value" 7 s.Trace_stats.total_value

let test_mmpp_workload_is_bursty () =
  (* The MMPP scenario must produce over-dispersed traffic (that is its
     purpose); a dispersion index well above 1 confirms it. *)
  (* Aggregate dispersion of independent MMPP sources is roughly
     1 + rate_on * (1 - duty): it takes few, hot sources to be visibly
     bursty (the index is invariant under splitting the same aggregate rate
     across more sources). *)
  let config = Proc_config.contiguous ~k:8 ~buffer:32 () in
  let w =
    Scenario.proc_workload
      ~mmpp:{ Scenario.default_mmpp with sources = 5 }
      ~config ~load:1.5 ~seed:9 ()
  in
  let trace = Trace.record w ~slots:20_000 in
  let s = Trace_stats.analyze trace in
  Alcotest.(check bool) "over-dispersed" true (s.Trace_stats.burstiness > 1.5)

let suite =
  [
    Alcotest.test_case "empty trace" `Quick test_empty;
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "burstiness orders traffic" `Quick
      test_burstiness_orders_traffic;
    Alcotest.test_case "offered work and load" `Quick
      test_offered_work_and_load;
    Alcotest.test_case "total value" `Quick test_total_value;
    Alcotest.test_case "MMPP workload is bursty" `Quick
      test_mmpp_workload_is_bursty;
  ]
