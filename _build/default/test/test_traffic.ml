open Smbm_prelude
open Smbm_core
open Smbm_traffic

(* --- MMPP --- *)

let test_mmpp_off_emits_nothing () =
  let rng = Rng.create ~seed:1 in
  let m =
    Mmpp.create ~rng ~p_on_to_off:0.0 ~p_off_to_on:0.0 ~rate_on:5.0
      ~start_on:false ()
  in
  for _ = 1 to 50 do
    Alcotest.(check int) "silent when off" 0 (Mmpp.step m)
  done

let test_mmpp_always_on_rate () =
  let rng = Rng.create ~seed:2 in
  let m =
    Mmpp.create ~rng ~p_on_to_off:0.0 ~p_off_to_on:1.0 ~rate_on:3.0
      ~start_on:true ()
  in
  let total = ref 0 in
  let slots = 20_000 in
  for _ = 1 to slots do
    total := !total + Mmpp.step m
  done;
  let mean = float_of_int !total /. float_of_int slots in
  Alcotest.(check bool) "mean close to rate" true (abs_float (mean -. 3.0) < 0.1)

let test_mmpp_duty_cycle () =
  let rng = Rng.create ~seed:3 in
  let m = Mmpp.create ~rng ~p_on_to_off:0.1 ~p_off_to_on:0.3 ~rate_on:1.0 () in
  Alcotest.(check (float 1e-9)) "stationary on-probability" 0.75
    (Mmpp.duty_cycle m);
  Alcotest.(check (float 1e-9)) "mean rate" 0.75 (Mmpp.mean_rate m);
  (* Empirical duty cycle over a long run. *)
  let on = ref 0 in
  let slots = 50_000 in
  for _ = 1 to slots do
    ignore (Mmpp.step m);
    if Mmpp.is_on m then incr on
  done;
  let freq = float_of_int !on /. float_of_int slots in
  Alcotest.(check bool) "empirical duty cycle" true (abs_float (freq -. 0.75) < 0.02)

let test_mmpp_validation () =
  let rng = Rng.create ~seed:4 in
  (match Mmpp.create ~rng ~p_on_to_off:1.5 ~p_off_to_on:0.1 ~rate_on:1.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad probability accepted");
  match Mmpp.create ~rng ~p_on_to_off:0.1 ~p_off_to_on:0.1 ~rate_on:(-1.0) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative rate accepted"

(* --- Labels --- *)

let test_uniform_port_label () =
  let rng = Rng.create ~seed:5 in
  let label = Label.uniform_port ~n:4 in
  let seen = Array.make 4 false in
  for _ = 1 to 500 do
    let a = label rng in
    Alcotest.(check int) "unit value" 1 a.Arrival.value;
    seen.(a.Arrival.dest) <- true
  done;
  Alcotest.(check bool) "all ports seen" true (Array.for_all Fun.id seen)

let test_value_equals_port_label () =
  let rng = Rng.create ~seed:6 in
  let label = Label.value_equals_port ~n:5 in
  for _ = 1 to 200 do
    let a = label rng in
    Alcotest.(check int) "value is port + 1" (a.Arrival.dest + 1)
      a.Arrival.value
  done

let test_uniform_port_and_value_label () =
  let rng = Rng.create ~seed:7 in
  let label = Label.uniform_port_and_value ~n:3 ~k:6 in
  for _ = 1 to 200 do
    let a = label rng in
    if a.Arrival.dest < 0 || a.Arrival.dest >= 3 then Alcotest.fail "bad dest";
    if a.Arrival.value < 1 || a.Arrival.value > 6 then Alcotest.fail "bad value"
  done

let test_weighted_port_label () =
  let rng = Rng.create ~seed:8 in
  let label = Label.weighted_port ~weights:[| 0.0; 1.0; 3.0 |] () in
  let counts = Array.make 3 0 in
  for _ = 1 to 8_000 do
    let a = label rng in
    counts.(a.Arrival.dest) <- counts.(a.Arrival.dest) + 1
  done;
  Alcotest.(check int) "zero-weight port unused" 0 counts.(0);
  let frac = float_of_int counts.(2) /. 8000.0 in
  Alcotest.(check bool) "weights respected" true (abs_float (frac -. 0.75) < 0.03);
  match Label.weighted_port ~weights:[| 0.0 |] () rng with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "all-zero weights accepted"

(* --- Workload --- *)

let test_workload_of_slots () =
  let a0 = Arrival.make ~dest:0 () and a1 = Arrival.make ~dest:1 () in
  let w = Workload.of_slots [| [ a0 ]; []; [ a1; a0 ] |] in
  Alcotest.(check int) "slot 0 size" 1 (List.length (Workload.next w));
  Alcotest.(check int) "slot 1 empty" 0 (List.length (Workload.next w));
  Alcotest.(check int) "slot 2 size" 2 (List.length (Workload.next w));
  Alcotest.(check int) "beyond end" 0 (List.length (Workload.next w));
  Alcotest.(check int) "slot counter" 4 (Workload.slot w)

let test_workload_of_fun () =
  let w =
    Workload.of_fun (fun slot -> List.init slot (fun _ -> Arrival.make ~dest:0 ()))
  in
  Alcotest.(check int) "slot 0" 0 (List.length (Workload.next w));
  Alcotest.(check int) "slot 1" 1 (List.length (Workload.next w));
  Alcotest.(check int) "slot 2" 2 (List.length (Workload.next w))

let test_workload_of_sources_deterministic () =
  let build seed =
    let rng = Rng.create ~seed in
    Scenario.sources
      ~mmpp:{ Scenario.sources = 10; p_on_to_off = 0.2; p_off_to_on = 0.2 }
      ~label:(Label.uniform_port ~n:3) ~rate_per_source:0.5 ~rng
    |> Workload.of_sources
  in
  let w1 = build 99 and w2 = build 99 in
  for _ = 1 to 200 do
    let a1 = Workload.next w1 and a2 = Workload.next w2 in
    if not (List.equal Arrival.equal a1 a2) then
      Alcotest.fail "same seed produced different traffic"
  done

let test_workload_merge () =
  let a = Workload.of_slots [| [ Arrival.make ~dest:0 () ]; [] |] in
  let b =
    Workload.of_fun (fun _ -> [ Arrival.make ~dest:1 (); Arrival.make ~dest:2 () ])
  in
  let m = Workload.merge [ a; b ] in
  let slot0 = Workload.next m in
  Alcotest.(check (list int)) "superposition, order preserved" [ 0; 1; 2 ]
    (List.map (fun (x : Arrival.t) -> x.dest) slot0);
  Alcotest.(check int) "second slot" 2 (List.length (Workload.next m));
  Alcotest.(check bool) "rate unknown when a component's is" true
    (Workload.mean_rate m = None)

let test_workload_merge_rates () =
  let mk rate =
    let rng = Rng.create ~seed:1 in
    Scenario.sources
      ~mmpp:{ Scenario.sources = 4; p_on_to_off = 0.0; p_off_to_on = 1.0 }
      ~label:(Label.uniform_port ~n:2) ~rate_per_source:rate ~rng
    |> Workload.of_sources
  in
  match Workload.mean_rate (Workload.merge [ mk 0.5; mk 0.25 ]) with
  | Some r -> Alcotest.(check (float 1e-9)) "rates add" 3.0 r
  | None -> Alcotest.fail "merged rate lost"

let test_workload_map_and_take () =
  let w =
    Workload.of_fun (fun _ -> [ Arrival.make ~dest:0 ~value:1 () ])
    |> Workload.map (fun (a : Arrival.t) ->
           Arrival.make ~dest:(a.dest + 1) ~value:(a.value * 5) ())
    |> Workload.take 2
  in
  let slot0 = Workload.next w in
  (match slot0 with
  | [ a ] ->
    Alcotest.(check int) "dest remapped" 1 a.Arrival.dest;
    Alcotest.(check int) "value rescaled" 5 a.Arrival.value
  | _ -> Alcotest.fail "unexpected arrivals");
  ignore (Workload.next w);
  Alcotest.(check int) "empty after take" 0 (List.length (Workload.next w))

(* --- Trace --- *)

let test_trace_record_replay () =
  let w =
    Workload.of_fun (fun slot ->
        if slot mod 2 = 0 then [ Arrival.make ~dest:(slot mod 3) ~value:2 () ]
        else [])
  in
  let trace = Trace.record w ~slots:10 in
  Alcotest.(check int) "slots" 10 (Trace.slots trace);
  Alcotest.(check int) "arrivals" 5 (Trace.arrivals trace);
  let replay = Trace.to_workload trace in
  for slot = 0 to 9 do
    let expected = Trace.get trace slot in
    if not (List.equal Arrival.equal expected (Workload.next replay)) then
      Alcotest.fail "replay diverged"
  done;
  Alcotest.(check int) "replay beyond end" 0 (List.length (Workload.next replay))

let test_trace_save_load_roundtrip () =
  let trace =
    Trace.of_slots
      [|
        [ Arrival.make ~dest:0 ~value:3 (); Arrival.make ~dest:2 () ];
        [];
        [ Arrival.make ~dest:1 ~value:7 () ];
      |]
  in
  let path = Filename.temp_file "smbm_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Trace.save trace oc;
      close_out oc;
      let ic = open_in path in
      let loaded = Trace.load ic in
      close_in ic;
      Alcotest.(check bool) "roundtrip" true (Trace.equal trace loaded))

let test_trace_load_rejects_garbage () =
  let path = Filename.temp_file "smbm_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "0:1 junk\n";
      close_out oc;
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          match Trace.load ic with
          | exception Failure _ -> ()
          | _ -> Alcotest.fail "garbage accepted"))

(* --- Scenario --- *)

let test_scenario_rate_calibration () =
  (* A proc workload built for a given load must deliver approximately
     load * n * C / mean_work packets per slot in the long run. *)
  let config = Proc_config.contiguous ~k:8 ~buffer:32 () in
  let w =
    Scenario.proc_workload
      ~mmpp:{ Scenario.default_mmpp with sources = 100 }
      ~config ~load:2.0 ~seed:7 ()
  in
  let expected = 2.0 *. 8.0 /. 4.5 in
  (match Workload.mean_rate w with
  | Some r -> Alcotest.(check (float 1e-6)) "declared mean rate" expected r
  | None -> Alcotest.fail "source workload must know its rate");
  let slots = 30_000 in
  let total = ref 0 in
  for _ = 1 to slots do
    total := !total + List.length (Workload.next w)
  done;
  let mean = float_of_int !total /. float_of_int slots in
  Alcotest.(check bool) "empirical rate near declared" true
    (abs_float (mean -. expected) /. expected < 0.1)

let test_scenario_value_port_labels () =
  let config = Value_config.make ~ports:6 ~max_value:6 ~buffer:24 () in
  let w = Scenario.value_port_workload ~config ~load:1.0 ~seed:3 () in
  for _ = 1 to 500 do
    List.iter
      (fun (a : Arrival.t) ->
        if a.value <> a.dest + 1 then Alcotest.fail "value must equal port + 1")
      (Workload.next w)
  done

let test_scenario_value_port_requires_n_le_k () =
  let config = Value_config.make ~ports:6 ~max_value:3 ~buffer:24 () in
  match Scenario.value_port_workload ~config ~load:1.0 ~seed:3 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n > k accepted"

let test_port_values () =
  let config = Value_config.make ~ports:4 ~max_value:4 ~buffer:8 () in
  Alcotest.(check (list int)) "identity assignment" [ 1; 2; 3; 4 ]
    (Array.to_list (Scenario.port_values config))

let suite =
  [
    Alcotest.test_case "MMPP off emits nothing" `Quick test_mmpp_off_emits_nothing;
    Alcotest.test_case "MMPP always-on rate" `Quick test_mmpp_always_on_rate;
    Alcotest.test_case "MMPP duty cycle" `Quick test_mmpp_duty_cycle;
    Alcotest.test_case "MMPP validation" `Quick test_mmpp_validation;
    Alcotest.test_case "uniform port label" `Quick test_uniform_port_label;
    Alcotest.test_case "value-equals-port label" `Quick
      test_value_equals_port_label;
    Alcotest.test_case "uniform port and value label" `Quick
      test_uniform_port_and_value_label;
    Alcotest.test_case "weighted port label" `Quick test_weighted_port_label;
    Alcotest.test_case "workload of slots" `Quick test_workload_of_slots;
    Alcotest.test_case "workload of function" `Quick test_workload_of_fun;
    Alcotest.test_case "source workload determinism" `Quick
      test_workload_of_sources_deterministic;
    Alcotest.test_case "workload merge" `Quick test_workload_merge;
    Alcotest.test_case "merged rates add" `Quick test_workload_merge_rates;
    Alcotest.test_case "workload map and take" `Quick
      test_workload_map_and_take;
    Alcotest.test_case "trace record and replay" `Quick test_trace_record_replay;
    Alcotest.test_case "trace save/load roundtrip" `Quick
      test_trace_save_load_roundtrip;
    Alcotest.test_case "trace load rejects garbage" `Quick
      test_trace_load_rejects_garbage;
    Alcotest.test_case "scenario rate calibration" `Quick
      test_scenario_rate_calibration;
    Alcotest.test_case "value-port scenario labels" `Quick
      test_scenario_value_port_labels;
    Alcotest.test_case "value-port scenario validation" `Quick
      test_scenario_value_port_requires_n_le_k;
    Alcotest.test_case "port values" `Quick test_port_values;
  ]
