open Smbm_prelude

let check_int = Alcotest.(check int)
let check_list = Alcotest.(check (list int))

let test_empty () =
  let d = Deque.create () in
  check_int "length" 0 (Deque.length d);
  Alcotest.(check bool) "is_empty" true (Deque.is_empty d);
  check_list "to_list" [] (Deque.to_list d);
  Alcotest.check_raises "pop_front" (Invalid_argument "Deque.pop_front: empty")
    (fun () -> ignore (Deque.pop_front d));
  Alcotest.check_raises "pop_back" (Invalid_argument "Deque.pop_back: empty")
    (fun () -> ignore (Deque.pop_back d));
  Alcotest.check_raises "peek_front"
    (Invalid_argument "Deque.peek_front: empty") (fun () ->
      ignore (Deque.peek_front d));
  Alcotest.check_raises "peek_back" (Invalid_argument "Deque.peek_back: empty")
    (fun () -> ignore (Deque.peek_back d))

let test_push_pop_back () =
  let d = Deque.create () in
  Deque.push_back d 1;
  Deque.push_back d 2;
  Deque.push_back d 3;
  check_list "order" [ 1; 2; 3 ] (Deque.to_list d);
  check_int "peek_front" 1 (Deque.peek_front d);
  check_int "peek_back" 3 (Deque.peek_back d);
  check_int "pop_back" 3 (Deque.pop_back d);
  check_int "pop_front" 1 (Deque.pop_front d);
  check_list "remaining" [ 2 ] (Deque.to_list d)

let test_push_front () =
  let d = Deque.create () in
  Deque.push_front d 1;
  Deque.push_front d 2;
  Deque.push_front d 3;
  check_list "order" [ 3; 2; 1 ] (Deque.to_list d)

let test_mixed_ends () =
  let d = Deque.create ~capacity:2 () in
  Deque.push_back d 2;
  Deque.push_front d 1;
  Deque.push_back d 3;
  Deque.push_front d 0;
  check_list "order" [ 0; 1; 2; 3 ] (Deque.to_list d)

let test_growth_preserves_order () =
  let d = Deque.create ~capacity:2 () in
  (* Force wraparound before growth. *)
  Deque.push_back d 0;
  ignore (Deque.pop_front d);
  for i = 1 to 100 do
    Deque.push_back d i
  done;
  check_list "order after growth" (List.init 100 (fun i -> i + 1))
    (Deque.to_list d)

let test_get () =
  let d = Deque.of_list [ 10; 20; 30 ] in
  check_int "get 0" 10 (Deque.get d 0);
  check_int "get 2" 30 (Deque.get d 2);
  Alcotest.check_raises "get oob" (Invalid_argument "Deque.get: out of bounds")
    (fun () -> ignore (Deque.get d 3));
  Alcotest.check_raises "get neg" (Invalid_argument "Deque.get: out of bounds")
    (fun () -> ignore (Deque.get d (-1)))

let test_clear () =
  let d = Deque.of_list [ 1; 2; 3 ] in
  Deque.clear d;
  check_int "length" 0 (Deque.length d);
  Deque.push_back d 9;
  check_list "usable after clear" [ 9 ] (Deque.to_list d)

let test_iter_fold () =
  let d = Deque.of_list [ 1; 2; 3; 4 ] in
  let sum = Deque.fold ( + ) 0 d in
  check_int "fold sum" 10 sum;
  let seen = ref [] in
  Deque.iter (fun x -> seen := x :: !seen) d;
  check_list "iter order" [ 4; 3; 2; 1 ] !seen

(* Model-based property test: a deque driven by a random operation sequence
   agrees with a plain list. *)
let ops_gen =
  QCheck2.Gen.(
    list
      (oneof
         [
           map (fun x -> `Push_back x) small_int;
           map (fun x -> `Push_front x) small_int;
           pure `Pop_back;
           pure `Pop_front;
         ]))

let prop_matches_list_model =
  QCheck2.Test.make ~name:"deque agrees with list model" ~count:500 ops_gen
    (fun ops ->
      let d = Deque.create ~capacity:1 () in
      let model = ref [] in
      List.iter
        (fun op ->
          match op with
          | `Push_back x ->
            Deque.push_back d x;
            model := !model @ [ x ]
          | `Push_front x ->
            Deque.push_front d x;
            model := x :: !model
          | `Pop_back -> (
            match List.rev !model with
            | [] -> ()
            | last :: rest_rev ->
              model := List.rev rest_rev;
              if Deque.pop_back d <> last then failwith "pop_back mismatch")
          | `Pop_front -> (
            match !model with
            | [] -> ()
            | first :: rest ->
              model := rest;
              if Deque.pop_front d <> first then failwith "pop_front mismatch"))
        ops;
      Deque.to_list d = !model && Deque.length d = List.length !model)

let suite =
  [
    Alcotest.test_case "empty deque" `Quick test_empty;
    Alcotest.test_case "push/pop back and front" `Quick test_push_pop_back;
    Alcotest.test_case "push_front order" `Quick test_push_front;
    Alcotest.test_case "mixed ends" `Quick test_mixed_ends;
    Alcotest.test_case "growth preserves order" `Quick
      test_growth_preserves_order;
    Alcotest.test_case "get by index" `Quick test_get;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "iter and fold" `Quick test_iter_fold;
    Qc.to_alcotest prop_matches_list_model;
  ]
