open Smbm_core

let packet ?(id = 0) ~value () = Packet.Value.make ~id ~dest:0 ~value ~arrival:0

let test_empty () =
  let q = Value_queue.create ~k:4 in
  Alcotest.(check int) "length" 0 (Value_queue.length q);
  Alcotest.(check (option int)) "min" None (Value_queue.min_value q);
  Alcotest.(check (option int)) "max" None (Value_queue.max_value q);
  Alcotest.(check (float 1e-9)) "avg" 0.0 (Value_queue.average_value q)

let test_push_and_aggregates () =
  let q = Value_queue.create ~k:10 in
  List.iter (fun v -> Value_queue.push q (packet ~value:v ())) [ 4; 9; 1; 4 ];
  Alcotest.(check int) "length" 4 (Value_queue.length q);
  Alcotest.(check int) "total" 18 (Value_queue.total_value q);
  Alcotest.(check (float 1e-9)) "avg" 4.5 (Value_queue.average_value q);
  Alcotest.(check (option int)) "min" (Some 1) (Value_queue.min_value q);
  Alcotest.(check (option int)) "max" (Some 9) (Value_queue.max_value q)

let test_value_range () =
  let q = Value_queue.create ~k:3 in
  match Value_queue.push q (packet ~value:4 ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "out-of-range value accepted"

let test_pop_max_is_fifo_within_value () =
  let q = Value_queue.create ~k:5 in
  Value_queue.push q (packet ~id:1 ~value:5 ());
  Value_queue.push q (packet ~id:2 ~value:5 ());
  Value_queue.push q (packet ~id:3 ~value:2 ());
  let p = Value_queue.pop_max q in
  Alcotest.(check int) "value" 5 p.Packet.Value.value;
  Alcotest.(check int) "earliest of the ties" 1 p.Packet.Value.id

let test_pop_min_is_lifo_within_value () =
  let q = Value_queue.create ~k:5 in
  Value_queue.push q (packet ~id:1 ~value:2 ());
  Value_queue.push q (packet ~id:2 ~value:2 ());
  Value_queue.push q (packet ~id:3 ~value:5 ());
  let p = Value_queue.pop_min q in
  Alcotest.(check int) "value" 2 p.Packet.Value.value;
  Alcotest.(check int) "most recent of the ties" 2 p.Packet.Value.id

let test_pop_empty () =
  let q = Value_queue.create ~k:2 in
  (match Value_queue.pop_min q with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "pop_min on empty");
  match Value_queue.pop_max q with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "pop_max on empty"

let test_to_list_sorted_descending () =
  let q = Value_queue.create ~k:9 in
  List.iter (fun v -> Value_queue.push q (packet ~value:v ())) [ 3; 8; 1; 8; 5 ];
  let values =
    List.map (fun (p : Packet.Value.t) -> p.value) (Value_queue.to_list q)
  in
  Alcotest.(check (list int)) "non-increasing" [ 8; 8; 5; 3; 1 ] values

let test_clear () =
  let q = Value_queue.create ~k:4 in
  Value_queue.push q (packet ~value:2 ());
  Alcotest.(check int) "dropped" 1 (Value_queue.clear q);
  Alcotest.(check int) "total" 0 (Value_queue.total_value q);
  Alcotest.(check int) "length" 0 (Value_queue.length q)

let prop_model =
  QCheck2.Test.make ~name:"value queue agrees with sorted-list model"
    ~count:300
    QCheck2.Gen.(
      pair (int_range 1 8)
        (list (oneof [ map (fun v -> `Push v) (int_range 1 8); pure `Pop_min; pure `Pop_max ])))
    (fun (k, ops) ->
      let q = Value_queue.create ~k in
      (* Model: descending-sorted list of values. *)
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | `Push v ->
            if v <= k then begin
              Value_queue.push q (packet ~value:v ());
              model := List.sort (fun a b -> compare b a) (v :: !model)
            end
          | `Pop_min -> (
            match List.rev !model with
            | [] -> ()
            | v :: rest_rev ->
              if (Value_queue.pop_min q).Packet.Value.value <> v then
                ok := false;
              model := List.rev rest_rev)
          | `Pop_max -> (
            match !model with
            | [] -> ()
            | v :: rest ->
              if (Value_queue.pop_max q).Packet.Value.value <> v then
                ok := false;
              model := rest))
        ops;
      !ok
      && Value_queue.length q = List.length !model
      && Value_queue.total_value q = List.fold_left ( + ) 0 !model)

let suite =
  [
    Alcotest.test_case "empty queue" `Quick test_empty;
    Alcotest.test_case "aggregates" `Quick test_push_and_aggregates;
    Alcotest.test_case "value range" `Quick test_value_range;
    Alcotest.test_case "pop_max FIFO within value" `Quick
      test_pop_max_is_fifo_within_value;
    Alcotest.test_case "pop_min LIFO within value" `Quick
      test_pop_min_is_lifo_within_value;
    Alcotest.test_case "pop on empty" `Quick test_pop_empty;
    Alcotest.test_case "to_list descending" `Quick
      test_to_list_sorted_descending;
    Alcotest.test_case "clear" `Quick test_clear;
    Qc.to_alcotest prop_model;
  ]
