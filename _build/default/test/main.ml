let () =
  Alcotest.run "smbm"
    [
      ("deque", Test_deque.suite);
      ("rng", Test_rng.suite);
      ("running-stats", Test_running_stats.suite);
      ("harmonic", Test_harmonic.suite);
      ("count-multiset", Test_count_multiset.suite);
      ("histogram", Test_histogram.suite);
      ("config", Test_config.suite);
      ("work-queue", Test_work_queue.suite);
      ("value-queue", Test_value_queue.suite);
      ("proc-switch", Test_proc_switch.suite);
      ("switch-oracle", Test_switch_oracle.suite);
      ("value-switch", Test_value_switch.suite);
      ("proc-policies", Test_proc_policies.suite);
      ("value-policies", Test_value_policies.suite);
      ("traffic", Test_traffic.suite);
      ("sim", Test_sim.suite);
      ("port-stats", Test_port_stats.suite);
      ("trace-stats", Test_trace_stats.suite);
      ("heavy-tail", Test_heavy_tail.suite);
      ("ablations", Test_ablations.suite);
      ("reserved", Test_reserved.suite);
      ("sweep-extensions", Test_sweep_extensions.suite);
      ("timeseries", Test_timeseries.suite);
      ("exact-opt", Test_exact_opt.suite);
      ("competitive-check", Test_competitive_check.suite);
      ("mapping-certifier", Test_mapping_certifier.suite);
      ("lower-bounds", Test_lowerbounds.suite);
      ("report", Test_report.suite);
      ("printers", Test_printers.suite);
      ("hybrid", Test_hybrid.suite);
      ("engine-fuzz", Test_engine_fuzz.suite);
      ("golden", Test_golden.suite);
      ("integration", Test_integration.suite);
    ]
