test/test_sweep_extensions.ml: Alcotest List Smbm_sim Smbm_traffic Sweep
