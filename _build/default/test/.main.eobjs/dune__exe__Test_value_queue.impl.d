test/test_value_queue.ml: Alcotest List Packet QCheck2 Qc Smbm_core Value_queue
