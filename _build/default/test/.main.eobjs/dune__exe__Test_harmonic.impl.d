test/test_harmonic.ml: Alcotest Harmonic QCheck2 Qc Smbm_prelude
