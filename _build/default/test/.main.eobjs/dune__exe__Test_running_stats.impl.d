test/test_running_stats.ml: Alcotest List QCheck2 Qc Running_stats Smbm_prelude
