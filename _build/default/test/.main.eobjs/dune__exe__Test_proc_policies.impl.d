test/test_proc_policies.ml: Alcotest Array Decision List Option P_bpd P_lqd P_lwd P_nest P_nhdt P_nhst Policies Proc_config Proc_policy Proc_switch QCheck2 Qc Smbm_core
