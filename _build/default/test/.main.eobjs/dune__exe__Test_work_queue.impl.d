test/test_work_queue.ml: Alcotest List Packet QCheck2 Qc Smbm_core Work_queue
