test/test_par_pool.ml: Alcotest Atomic Fun List Pool Smbm_par Smbm_prelude
