test/test_trace_stats.ml: Alcotest Array Arrival List Proc_config Scenario Smbm_core Smbm_traffic Trace Trace_stats
