test/test_traffic.ml: Alcotest Array Arrival Filename Fun Label List Mmpp Proc_config Rng Scenario Smbm_core Smbm_prelude Smbm_traffic Sys Trace Value_config Workload
