test/test_par_sweep.ml: Alcotest Fmt Int64 List Par_sweep Printf Smbm_par Smbm_sim Smbm_traffic Sweep
