test/qc.ml: QCheck_alcotest Random
