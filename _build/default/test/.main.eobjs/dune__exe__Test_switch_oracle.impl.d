test/test_switch_oracle.ml: Array List Packet Proc_config Proc_switch QCheck2 Qc Smbm_core Value_config Value_queue Value_switch
