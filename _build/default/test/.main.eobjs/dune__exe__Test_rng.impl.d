test/test_rng.ml: Alcotest Array Fun Hashtbl QCheck2 Qc Rng Smbm_prelude
