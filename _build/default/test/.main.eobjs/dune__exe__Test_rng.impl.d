test/test_rng.ml: Alcotest Array Fun QCheck2 Qc Rng Smbm_prelude
