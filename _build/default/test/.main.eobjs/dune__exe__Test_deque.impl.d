test/test_deque.ml: Alcotest Deque List QCheck2 Qc Smbm_prelude
