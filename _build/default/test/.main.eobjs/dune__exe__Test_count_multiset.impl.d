test/test_count_multiset.ml: Alcotest Count_multiset List QCheck2 Qc Smbm_prelude
