test/main.mli:
