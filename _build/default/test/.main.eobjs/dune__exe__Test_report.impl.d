test/test_report.ml: Alcotest Ascii_plot Csv Float List Series Smbm_report String Table
