test/test_value_policies.ml: Alcotest Array Decision List Option Policies QCheck2 Qc Smbm_core V_greedy V_lqd V_mrd V_mvd V_nest V_nhst Value_config Value_policy Value_queue Value_switch
