test/test_timeseries.ml: Alcotest Arrival Experiment Instance List Metrics P_lwd Proc_config Proc_engine Smbm_core Smbm_report Smbm_sim Smbm_traffic String Timeseries Workload
