test/test_golden.ml: Alcotest List Smbm_lowerbounds Smbm_sim Smbm_traffic Sweep
