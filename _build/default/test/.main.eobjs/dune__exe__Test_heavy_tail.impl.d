test/test_heavy_tail.ml: Alcotest Experiment Float Instance List Metrics Mmpp P_lwd Proc_config Proc_engine Rng Scenario Smbm_core Smbm_prelude Smbm_sim Smbm_traffic Trace Trace_stats
