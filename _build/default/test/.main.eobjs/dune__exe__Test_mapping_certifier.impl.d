test/test_mapping_certifier.ml: Alcotest Array Arrival Decision List Mapping_certifier P_lqd Proc_config Proc_policy Proc_switch QCheck2 Qc Scenario Smbm_analysis Smbm_core Smbm_traffic Workload
