test/test_proc_switch.ml: Alcotest Array List Packet Proc_config Proc_switch QCheck2 Qc Smbm_core Work_queue
