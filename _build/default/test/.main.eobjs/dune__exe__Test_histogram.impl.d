test/test_histogram.ml: Alcotest Histogram List QCheck2 Qc Rng Smbm_prelude
