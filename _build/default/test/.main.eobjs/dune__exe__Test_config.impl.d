test/test_config.ml: Alcotest Array Arrival List Packet Proc_config Smbm_core Smbm_prelude Value_config
