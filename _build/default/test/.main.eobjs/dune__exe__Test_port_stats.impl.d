test/test_port_stats.ml: Alcotest Arrival Experiment Instance Opt_ref P_lwd Port_stats Proc_config Proc_engine Smbm_core Smbm_sim Smbm_traffic
