test/test_value_switch.ml: Alcotest List Option Packet QCheck2 Qc Smbm_core Value_config Value_switch
