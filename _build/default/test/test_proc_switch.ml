open Smbm_core

let config ?(buffer = 4) ?(speedup = 1) works =
  Proc_config.make ~works ~buffer ~speedup ()

let test_accept_and_occupancy () =
  let sw = Proc_switch.create (config ~buffer:2 [| 1; 2 |]) in
  Alcotest.(check int) "free" 2 (Proc_switch.free_space sw);
  let p = Proc_switch.accept sw ~dest:1 in
  Alcotest.(check int) "work from port" 2 p.Packet.Proc.work;
  Alcotest.(check int) "occupancy" 1 (Proc_switch.occupancy sw);
  ignore (Proc_switch.accept sw ~dest:0);
  Alcotest.(check bool) "full" true (Proc_switch.is_full sw);
  match Proc_switch.accept sw ~dest:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accept on full buffer"

let test_ids_are_unique_and_ordered () =
  let sw = Proc_switch.create (config ~buffer:3 [| 1 |]) in
  let a = Proc_switch.accept sw ~dest:0 in
  let b = Proc_switch.accept sw ~dest:0 in
  Alcotest.(check bool) "increasing ids" true (b.Packet.Proc.id > a.Packet.Proc.id)

let test_push_out () =
  let sw = Proc_switch.create (config ~buffer:2 [| 1; 2 |]) in
  ignore (Proc_switch.accept sw ~dest:1);
  ignore (Proc_switch.accept sw ~dest:1);
  let victim = Proc_switch.push_out sw ~victim:1 in
  Alcotest.(check int) "tail (most recent) popped" 1 victim.Packet.Proc.id;
  Alcotest.(check int) "occupancy back to 1" 1 (Proc_switch.occupancy sw);
  match Proc_switch.push_out sw ~victim:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "push_out of empty queue"

let test_transmit_phase_each_queue () =
  (* Ports with works 1 and 2: the work-1 port transmits every slot, the
     work-2 port every other slot. *)
  let sw = Proc_switch.create (config ~buffer:4 [| 1; 2 |]) in
  ignore (Proc_switch.accept sw ~dest:0);
  ignore (Proc_switch.accept sw ~dest:1);
  let sent = Proc_switch.transmit_phase sw ~on_transmit:(fun _ -> ()) in
  Alcotest.(check int) "first slot: work-1 done" 1 sent;
  let sent = Proc_switch.transmit_phase sw ~on_transmit:(fun _ -> ()) in
  Alcotest.(check int) "second slot: work-2 done" 1 sent;
  Alcotest.(check int) "empty" 0 (Proc_switch.occupancy sw)

let test_transmit_speedup () =
  (* Speedup 3 on a work-2 port: one packet completes and the next is half
     processed within a single slot. *)
  let sw = Proc_switch.create (config ~buffer:4 ~speedup:3 [| 2 |]) in
  ignore (Proc_switch.accept sw ~dest:0);
  ignore (Proc_switch.accept sw ~dest:0);
  let sent = Proc_switch.transmit_phase sw ~on_transmit:(fun _ -> ()) in
  Alcotest.(check int) "one completed" 1 sent;
  Alcotest.(check int) "next half done" 1
    (Work_queue.hol_residual (Proc_switch.queue sw 0))

let test_total_work_view () =
  let sw = Proc_switch.create (config ~buffer:4 [| 1; 3 |]) in
  ignore (Proc_switch.accept sw ~dest:1);
  ignore (Proc_switch.accept sw ~dest:1);
  Alcotest.(check int) "W_1" 6 (Proc_switch.queue_work sw 1);
  Alcotest.(check int) "total" 6 (Proc_switch.total_occupied_work sw);
  ignore (Proc_switch.transmit_phase sw ~on_transmit:(fun _ -> ()));
  Alcotest.(check int) "after one cycle" 5 (Proc_switch.queue_work sw 1)

let test_flush () =
  let sw = Proc_switch.create (config ~buffer:4 [| 1; 2 |]) in
  ignore (Proc_switch.accept sw ~dest:0);
  ignore (Proc_switch.accept sw ~dest:1);
  Alcotest.(check int) "flushed count" 2 (Proc_switch.flush sw);
  Alcotest.(check int) "occupancy" 0 (Proc_switch.occupancy sw);
  Proc_switch.check_invariants sw

let test_clock () =
  let sw = Proc_switch.create (config [| 1 |]) in
  Alcotest.(check int) "starts at 0" 0 (Proc_switch.now sw);
  Proc_switch.advance_slot sw;
  Proc_switch.advance_slot sw;
  Alcotest.(check int) "advanced" 2 (Proc_switch.now sw);
  let p = Proc_switch.accept sw ~dest:0 in
  Alcotest.(check int) "arrival stamped" 2 p.Packet.Proc.arrival

let test_invariants_pass () =
  let sw = Proc_switch.create (config ~buffer:8 [| 1; 2; 3 |]) in
  for _ = 1 to 5 do
    ignore (Proc_switch.accept sw ~dest:1)
  done;
  ignore (Proc_switch.transmit_phase sw ~on_transmit:(fun _ -> ()));
  Proc_switch.check_invariants sw

let prop_fifo_order =
  QCheck2.Test.make
    ~name:"packets transmit in FIFO order per queue under random driving"
    ~count:200
    QCheck2.Gen.(list (int_range 0 2))
    (fun dests ->
      let sw = Proc_switch.create (config ~buffer:6 [| 1; 2; 3 |]) in
      let last_sent = Array.make 3 (-1) in
      let ok = ref true in
      let on_transmit (p : Packet.Proc.t) =
        if p.id <= last_sent.(p.dest) then ok := false;
        last_sent.(p.dest) <- p.id
      in
      List.iter
        (fun dest ->
          if not (Proc_switch.is_full sw) then
            ignore (Proc_switch.accept sw ~dest);
          ignore (Proc_switch.transmit_phase sw ~on_transmit);
          Proc_switch.advance_slot sw)
        dests;
      for _ = 1 to 20 do
        ignore (Proc_switch.transmit_phase sw ~on_transmit)
      done;
      !ok && Proc_switch.occupancy sw = 0)

let suite =
  [
    Alcotest.test_case "accept and occupancy" `Quick test_accept_and_occupancy;
    Alcotest.test_case "unique ids" `Quick test_ids_are_unique_and_ordered;
    Alcotest.test_case "push_out" `Quick test_push_out;
    Alcotest.test_case "transmit phase per queue" `Quick
      test_transmit_phase_each_queue;
    Alcotest.test_case "transmit with speedup" `Quick test_transmit_speedup;
    Alcotest.test_case "total work view" `Quick test_total_work_view;
    Alcotest.test_case "flush" `Quick test_flush;
    Alcotest.test_case "slot clock" `Quick test_clock;
    Alcotest.test_case "invariants pass" `Quick test_invariants_pass;
    Qc.to_alcotest prop_fifo_order;
  ]
