open Smbm_prelude

let test_basic () =
  let m = Count_multiset.create ~k:5 in
  Alcotest.(check bool) "empty" true (Count_multiset.is_empty m);
  Count_multiset.add m 3;
  Count_multiset.add m 3;
  Count_multiset.add m 1;
  Alcotest.(check int) "size" 3 (Count_multiset.size m);
  Alcotest.(check int) "count 3" 2 (Count_multiset.count m 3);
  Alcotest.(check int) "sum" 7 (Count_multiset.sum m);
  Alcotest.(check (option int)) "min" (Some 1) (Count_multiset.min_key m);
  Alcotest.(check (option int)) "max" (Some 3) (Count_multiset.max_key m)

let test_key_range () =
  let m = Count_multiset.create ~k:4 in
  Alcotest.check_raises "key 0" (Invalid_argument "Count_multiset: key out of range")
    (fun () -> Count_multiset.add m 0);
  Alcotest.check_raises "key k+1"
    (Invalid_argument "Count_multiset: key out of range") (fun () ->
      Count_multiset.add m 5);
  Alcotest.check_raises "remove absent"
    (Invalid_argument "Count_multiset.remove: absent key") (fun () ->
      Count_multiset.remove m 2)

let test_remove_min_max () =
  let m = Count_multiset.create ~k:9 in
  List.iter (Count_multiset.add m) [ 4; 7; 2; 7 ];
  Alcotest.(check (option int)) "remove_min" (Some 2)
    (Count_multiset.remove_min m);
  Alcotest.(check (option int)) "remove_max" (Some 7)
    (Count_multiset.remove_max m);
  Alcotest.(check int) "size" 2 (Count_multiset.size m);
  Alcotest.(check int) "sum" 11 (Count_multiset.sum m);
  ignore (Count_multiset.remove_min m);
  ignore (Count_multiset.remove_min m);
  Alcotest.(check (option int)) "empty remove" None
    (Count_multiset.remove_min m)

let test_decrement_smallest () =
  let m = Count_multiset.create ~k:5 in
  (* {1, 1, 3, 5} with budget 3: the two 1s complete, one 3 becomes a 2. *)
  List.iter (Count_multiset.add m) [ 1; 1; 3; 5 ];
  let sent = Count_multiset.decrement_smallest m ~budget:3 in
  Alcotest.(check int) "transmitted" 2 sent;
  Alcotest.(check int) "size" 2 (Count_multiset.size m);
  Alcotest.(check int) "count 2" 1 (Count_multiset.count m 2);
  Alcotest.(check int) "count 5" 1 (Count_multiset.count m 5);
  Alcotest.(check int) "sum" 7 (Count_multiset.sum m)

let test_decrement_no_double_service () =
  let m = Count_multiset.create ~k:3 in
  (* One packet of work 2 and budget 2: it must NOT complete in one call
     (one cycle per element per slot). *)
  Count_multiset.add m 2;
  let sent = Count_multiset.decrement_smallest m ~budget:2 in
  Alcotest.(check int) "not transmitted yet" 0 sent;
  Alcotest.(check int) "moved to key 1" 1 (Count_multiset.count m 1);
  let sent = Count_multiset.decrement_smallest m ~budget:2 in
  Alcotest.(check int) "transmitted on second slot" 1 sent;
  Alcotest.(check bool) "empty" true (Count_multiset.is_empty m)

let test_decrement_budget_exceeds_size () =
  let m = Count_multiset.create ~k:4 in
  List.iter (Count_multiset.add m) [ 1; 2 ];
  let sent = Count_multiset.decrement_smallest m ~budget:100 in
  Alcotest.(check int) "only size served" 1 sent;
  Alcotest.(check int) "remaining" 1 (Count_multiset.size m)

let test_remove_largest () =
  let m = Count_multiset.create ~k:9 in
  List.iter (Count_multiset.add m) [ 9; 1; 5; 9 ];
  let value = Count_multiset.remove_largest m ~budget:3 in
  Alcotest.(check int) "value of 3 largest" 23 value;
  Alcotest.(check int) "left" 1 (Count_multiset.size m);
  Alcotest.(check (option int)) "left key" (Some 1) (Count_multiset.min_key m)

let test_fold_and_clear () =
  let m = Count_multiset.create ~k:5 in
  List.iter (Count_multiset.add m) [ 2; 2; 5 ];
  let pairs =
    Count_multiset.fold (fun acc ~key ~count -> (key, count) :: acc) [] m
  in
  Alcotest.(check (list (pair int int))) "fold ascending" [ (5, 1); (2, 2) ]
    pairs;
  Count_multiset.clear m;
  Alcotest.(check int) "cleared" 0 (Count_multiset.size m);
  Alcotest.(check int) "sum cleared" 0 (Count_multiset.sum m)

(* Property: sum/size/min/max always agree with a reference list under random
   operations. *)
let prop_model =
  QCheck2.Test.make ~name:"count multiset agrees with sorted-list model"
    ~count:300
    QCheck2.Gen.(
      pair (int_range 1 10)
        (list
           (oneof
              [
                map (fun v -> `Add v) (int_range 1 10);
                pure `Remove_min;
                pure `Remove_max;
                map (fun b -> `Serve b) (int_range 0 5);
              ])))
    (fun (k, ops) ->
      let m = Count_multiset.create ~k in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | `Add v ->
            if v <= k then begin
              Count_multiset.add m v;
              model := List.sort compare (v :: !model)
            end
          | `Remove_min -> (
            match !model with
            | [] -> if Count_multiset.remove_min m <> None then ok := false
            | x :: rest ->
              if Count_multiset.remove_min m <> Some x then ok := false;
              model := rest)
          | `Remove_max -> (
            match List.rev !model with
            | [] -> if Count_multiset.remove_max m <> None then ok := false
            | x :: rest_rev ->
              if Count_multiset.remove_max m <> Some x then ok := false;
              model := List.rev rest_rev)
          | `Serve budget ->
            let served = min budget (List.length !model) in
            let head = List.filteri (fun i _ -> i < served) !model in
            let tail = List.filteri (fun i _ -> i >= served) !model in
            let sent = List.filter (fun v -> v = 1) head in
            let kept = List.filter_map
                (fun v -> if v > 1 then Some (v - 1) else None)
                head
            in
            let got = Count_multiset.decrement_smallest m ~budget in
            if got <> List.length sent then ok := false;
            model := List.sort compare (kept @ tail))
        ops;
      !ok
      && Count_multiset.size m = List.length !model
      && Count_multiset.sum m = List.fold_left ( + ) 0 !model
      && Count_multiset.min_key m
         = (match !model with [] -> None | x :: _ -> Some x)
      && Count_multiset.max_key m
         = (match List.rev !model with [] -> None | x :: _ -> Some x))

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basic;
    Alcotest.test_case "key range validation" `Quick test_key_range;
    Alcotest.test_case "remove min/max" `Quick test_remove_min_max;
    Alcotest.test_case "decrement_smallest" `Quick test_decrement_smallest;
    Alcotest.test_case "no double service per slot" `Quick
      test_decrement_no_double_service;
    Alcotest.test_case "budget exceeds size" `Quick
      test_decrement_budget_exceeds_size;
    Alcotest.test_case "remove_largest" `Quick test_remove_largest;
    Alcotest.test_case "fold and clear" `Quick test_fold_and_clear;
    Qc.to_alcotest prop_model;
  ]
