(* Differential testing: the optimized switch implementations (ring-buffer
   deques with cached aggregates; value buckets with cached sums) against
   deliberately naive list-based oracles, under long random operation
   sequences. *)

open Smbm_core

(* --- processing-model oracle: queues as lists of residuals --- *)

module Proc_oracle = struct
  type t = {
    works : int array;
    buffer : int;
    speedup : int;
    mutable queues : int list array;  (* residuals, head first *)
  }

  let create ~works ~buffer ~speedup =
    { works; buffer; speedup; queues = Array.make (Array.length works) [] }

  let occupancy t =
    Array.fold_left (fun acc q -> acc + List.length q) 0 t.queues

  let accept t ~dest = t.queues.(dest) <- t.queues.(dest) @ [ t.works.(dest) ]

  let push_out t ~victim =
    match List.rev t.queues.(victim) with
    | [] -> invalid_arg "oracle: empty victim"
    | _ :: rest_rev -> t.queues.(victim) <- List.rev rest_rev

  let transmit t =
    let sent = ref 0 in
    Array.iteri
      (fun i q ->
        let budget = ref t.speedup in
        let rec serve = function
          | [] -> []
          | hol :: rest ->
            if !budget = 0 then hol :: rest
            else begin
              let used = min !budget hol in
              budget := !budget - used;
              if hol - used = 0 then begin
                incr sent;
                serve rest
              end
              else (hol - used) :: rest
            end
        in
        t.queues.(i) <- serve q)
      t.queues;
    !sent

  let lengths t = Array.map List.length t.queues
  let works_totals t = Array.map (List.fold_left ( + ) 0) t.queues
end

let prop_proc_switch_matches_oracle =
  QCheck2.Test.make ~name:"Proc_switch agrees with a naive list oracle"
    ~count:200
    QCheck2.Gen.(
      let* n = int_range 1 4 in
      let* works = array_size (pure n) (int_range 1 5) in
      let* buffer = int_range 1 6 in
      let* speedup = int_range 1 3 in
      let* ops =
        list_size (int_range 1 60)
          (oneof
             [
               map (fun d -> `Accept d) (int_range 0 (n - 1));
               map (fun v -> `Push_out v) (int_range 0 (n - 1));
               pure `Transmit;
               pure `Flush;
             ])
      in
      pure (works, buffer, speedup, ops))
    (fun (works, buffer, speedup, ops) ->
      let config = Proc_config.make ~works ~buffer ~speedup () in
      let sw = Proc_switch.create config in
      let oracle = Proc_oracle.create ~works ~buffer ~speedup in
      let ok = ref true in
      List.iter
        (fun op ->
          (match op with
          | `Accept dest ->
            if not (Proc_switch.is_full sw) then begin
              ignore (Proc_switch.accept sw ~dest);
              Proc_oracle.accept oracle ~dest
            end
          | `Push_out victim ->
            if Proc_switch.queue_length sw victim > 0 then begin
              ignore (Proc_switch.push_out sw ~victim);
              Proc_oracle.push_out oracle ~victim
            end
          | `Transmit ->
            let a = Proc_switch.transmit_phase sw ~on_transmit:(fun _ -> ()) in
            let b = Proc_oracle.transmit oracle in
            if a <> b then ok := false
          | `Flush ->
            let flushed = Proc_switch.flush sw in
            if flushed <> Proc_oracle.occupancy oracle then ok := false;
            Array.iteri (fun i _ -> oracle.Proc_oracle.queues.(i) <- []) oracle.Proc_oracle.queues);
          Proc_switch.check_invariants sw;
          if Proc_switch.occupancy sw <> Proc_oracle.occupancy oracle then
            ok := false;
          let lengths = Proc_oracle.lengths oracle in
          let totals = Proc_oracle.works_totals oracle in
          Array.iteri
            (fun i l ->
              if Proc_switch.queue_length sw i <> l then ok := false;
              if Proc_switch.queue_work sw i <> totals.(i) then ok := false)
            lengths)
        ops;
      !ok)

(* --- value-model oracle: queues as descending-sorted value lists --- *)

module Value_oracle = struct
  type t = { speedup : int; mutable queues : int list array }

  let create ~n ~speedup = { speedup; queues = Array.make n [] }

  let occupancy t =
    Array.fold_left (fun acc q -> acc + List.length q) 0 t.queues

  let accept t ~dest ~value =
    t.queues.(dest) <-
      List.sort (fun a b -> compare b a) (value :: t.queues.(dest))

  let push_out t ~victim =
    match List.rev t.queues.(victim) with
    | [] -> invalid_arg "oracle: empty victim"
    | v :: rest_rev ->
      t.queues.(victim) <- List.rev rest_rev;
      v

  let transmit t =
    let value = ref 0 and count = ref 0 in
    Array.iteri
      (fun i q ->
        let rec take budget = function
          | v :: rest when budget > 0 ->
            value := !value + v;
            incr count;
            take (budget - 1) rest
          | rest -> rest
        in
        t.queues.(i) <- take t.speedup q)
      t.queues;
    (!count, !value)
end

let prop_value_switch_matches_oracle =
  QCheck2.Test.make ~name:"Value_switch agrees with a naive list oracle"
    ~count:200
    QCheck2.Gen.(
      let* n = int_range 1 4 in
      let* k = int_range 1 6 in
      let* buffer = int_range 1 6 in
      let* speedup = int_range 1 3 in
      let* ops =
        list_size (int_range 1 60)
          (oneof
             [
               map2 (fun d v -> `Accept (d, v)) (int_range 0 (n - 1)) (int_range 1 k);
               map (fun v -> `Push_out v) (int_range 0 (n - 1));
               pure `Transmit;
             ])
      in
      pure (n, k, buffer, speedup, ops))
    (fun (n, k, buffer, speedup, ops) ->
      let config = Value_config.make ~ports:n ~max_value:k ~buffer ~speedup () in
      let sw = Value_switch.create config in
      let oracle = Value_oracle.create ~n ~speedup in
      let ok = ref true in
      List.iter
        (fun op ->
          (match op with
          | `Accept (dest, value) ->
            if not (Value_switch.is_full sw) then begin
              ignore (Value_switch.accept sw ~dest ~value);
              Value_oracle.accept oracle ~dest ~value
            end
          | `Push_out victim ->
            if Value_switch.queue_length sw victim > 0 then begin
              let p = Value_switch.push_out sw ~victim in
              let v = Value_oracle.push_out oracle ~victim in
              if p.Packet.Value.value <> v then ok := false
            end
          | `Transmit ->
            let value = ref 0 and count = ref 0 in
            ignore
              (Value_switch.transmit_phase sw ~on_transmit:(fun p ->
                   value := !value + p.Packet.Value.value;
                   incr count));
            let c, v = Value_oracle.transmit oracle in
            if !count <> c || !value <> v then ok := false);
          Value_switch.check_invariants sw;
          if Value_switch.occupancy sw <> Value_oracle.occupancy oracle then
            ok := false;
          Array.iteri
            (fun i q ->
              if Value_switch.queue_length sw i <> List.length q then
                ok := false;
              let min_v = match List.rev q with [] -> None | v :: _ -> Some v in
              if Value_queue.min_value (Value_switch.queue sw i) <> min_v then
                ok := false)
            oracle.Value_oracle.queues)
        ops;
      !ok)

let suite =
  [
    Qc.to_alcotest prop_proc_switch_matches_oracle;
    Qc.to_alcotest prop_value_switch_matches_oracle;
  ]
