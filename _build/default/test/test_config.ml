open Smbm_core

let test_proc_make () =
  let c = Proc_config.make ~works:[| 2; 1; 3 |] ~buffer:10 () in
  Alcotest.(check int) "n" 3 (Proc_config.n c);
  Alcotest.(check int) "k" 3 (Proc_config.k c);
  Alcotest.(check int) "work 0" 2 (Proc_config.work c 0);
  Alcotest.(check int) "default speedup" 1 c.Proc_config.speedup

let test_proc_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  in
  expect_invalid "no ports" (fun () ->
      Proc_config.make ~works:[||] ~buffer:4 ());
  expect_invalid "zero work" (fun () ->
      Proc_config.make ~works:[| 0 |] ~buffer:4 ());
  expect_invalid "zero buffer" (fun () ->
      Proc_config.make ~works:[| 1 |] ~buffer:0 ());
  expect_invalid "zero speedup" (fun () ->
      Proc_config.make ~works:[| 1 |] ~buffer:4 ~speedup:0 ())

let test_proc_copies_works () =
  let works = [| 1; 2 |] in
  let c = Proc_config.make ~works ~buffer:4 () in
  works.(0) <- 99;
  Alcotest.(check int) "defensive copy" 1 (Proc_config.work c 0)

let test_contiguous () =
  let c = Proc_config.contiguous ~k:4 ~buffer:8 () in
  Alcotest.(check int) "n = k" 4 (Proc_config.n c);
  Alcotest.(check (list int)) "works 1..k" [ 1; 2; 3; 4 ]
    (List.init 4 (Proc_config.work c))

let test_uniform () =
  let c = Proc_config.uniform ~n:3 ~work:5 ~buffer:8 () in
  Alcotest.(check int) "k" 5 (Proc_config.k c);
  Alcotest.(check (list int)) "works" [ 5; 5; 5 ]
    (List.init 3 (Proc_config.work c))

let test_bimodal () =
  let c =
    Proc_config.bimodal ~n:8 ~cheap:1 ~expensive:20 ~buffer:16 ()
  in
  (* default expensive_ports = n/4 = 2 *)
  Alcotest.(check (list int)) "works" [ 1; 1; 1; 1; 1; 1; 20; 20 ]
    (List.init 8 (Proc_config.work c));
  let c = Proc_config.bimodal ~n:4 ~cheap:2 ~expensive:9 ~expensive_ports:3 ~buffer:8 () in
  Alcotest.(check (list int)) "explicit split" [ 2; 9; 9; 9 ]
    (List.init 4 (Proc_config.work c));
  match Proc_config.bimodal ~n:2 ~cheap:1 ~expensive:4 ~expensive_ports:3 ~buffer:4 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "too many expensive ports accepted"

let test_geometric () =
  let c = Proc_config.geometric ~n:5 ~buffer:16 () in
  Alcotest.(check (list int)) "powers of two" [ 1; 2; 4; 8; 16 ]
    (List.init 5 (Proc_config.work c));
  let c = Proc_config.geometric ~n:3 ~base:3 ~buffer:16 () in
  Alcotest.(check (list int)) "base 3" [ 1; 3; 9 ]
    (List.init 3 (Proc_config.work c));
  match Proc_config.geometric ~n:3 ~base:1 ~buffer:16 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "base 1 accepted"

let test_inverse_work_sum () =
  let c = Proc_config.contiguous ~k:4 ~buffer:8 () in
  Alcotest.(check (float 1e-9)) "Z = H_4" (Smbm_prelude.Harmonic.h 4)
    (Proc_config.inverse_work_sum c)

let test_value_make () =
  let c = Value_config.make ~ports:3 ~max_value:7 ~buffer:12 ~speedup:2 () in
  Alcotest.(check int) "n" 3 (Value_config.n c);
  Alcotest.(check int) "k" 7 (Value_config.k c);
  Alcotest.(check int) "speedup" 2 c.Value_config.speedup

let test_value_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  in
  expect_invalid "ports" (fun () ->
      Value_config.make ~ports:0 ~max_value:1 ~buffer:1 ());
  expect_invalid "max_value" (fun () ->
      Value_config.make ~ports:1 ~max_value:0 ~buffer:1 ());
  expect_invalid "buffer" (fun () ->
      Value_config.make ~ports:1 ~max_value:1 ~buffer:0 ())

let test_packet_make () =
  let p = Packet.Proc.make ~id:1 ~dest:0 ~work:3 ~arrival:5 in
  Alcotest.(check int) "residual starts at work" 3 p.Packet.Proc.residual;
  (match Packet.Proc.make ~id:1 ~dest:0 ~work:0 ~arrival:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "work 0 accepted");
  let v = Packet.Value.make ~id:2 ~dest:1 ~value:4 ~arrival:0 in
  Alcotest.(check int) "value" 4 v.Packet.Value.value;
  match Packet.Value.make ~id:2 ~dest:1 ~value:0 ~arrival:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "value 0 accepted"

let test_arrival () =
  let a = Arrival.make ~dest:3 () in
  Alcotest.(check int) "default value" 1 a.Arrival.value;
  (match Arrival.make ~dest:(-1) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative dest accepted");
  Alcotest.(check bool) "equal" true
    (Arrival.equal (Arrival.make ~dest:1 ~value:2 ())
       (Arrival.make ~dest:1 ~value:2 ()));
  Alcotest.(check bool) "not equal" false
    (Arrival.equal (Arrival.make ~dest:1 ()) (Arrival.make ~dest:2 ()))

let suite =
  [
    Alcotest.test_case "proc make" `Quick test_proc_make;
    Alcotest.test_case "proc validation" `Quick test_proc_validation;
    Alcotest.test_case "proc defensive copy" `Quick test_proc_copies_works;
    Alcotest.test_case "contiguous configuration" `Quick test_contiguous;
    Alcotest.test_case "uniform configuration" `Quick test_uniform;
    Alcotest.test_case "bimodal configuration" `Quick test_bimodal;
    Alcotest.test_case "geometric configuration" `Quick test_geometric;
    Alcotest.test_case "inverse work sum" `Quick test_inverse_work_sum;
    Alcotest.test_case "value make" `Quick test_value_make;
    Alcotest.test_case "value validation" `Quick test_value_validation;
    Alcotest.test_case "packet constructors" `Quick test_packet_make;
    Alcotest.test_case "arrival spec" `Quick test_arrival;
  ]
