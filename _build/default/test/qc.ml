(* All property tests run with a fixed random seed: failures are
   reproducible and CI is deterministic.  (QCheck still shrinks normally.) *)
let to_alcotest test =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed2024 |]) test
