open Smbm_sim

let test_basic () =
  let s = Port_stats.create ~n:3 in
  Port_stats.record s ~port:0 ~value:5;
  Port_stats.record s ~port:0 ~value:1;
  Port_stats.record s ~port:2 ~value:2;
  Alcotest.(check int) "port 0 packets" 2 (Port_stats.transmitted s 0);
  Alcotest.(check int) "port 0 value" 6 (Port_stats.transmitted_value s 0);
  Alcotest.(check int) "total" 3 (Port_stats.total s);
  Alcotest.(check int) "starved" 1 (Port_stats.starved_ports s)

let test_jain_extremes () =
  let s = Port_stats.create ~n:4 in
  Alcotest.(check (float 1e-9)) "empty is fair" 1.0
    (Port_stats.jain_index s ~objective:`Packets);
  (* Perfect fairness. *)
  for port = 0 to 3 do
    Port_stats.record s ~port ~value:1
  done;
  Alcotest.(check (float 1e-9)) "equal shares" 1.0
    (Port_stats.jain_index s ~objective:`Packets);
  (* One port monopolizes: index tends to 1/n. *)
  let mono = Port_stats.create ~n:4 in
  for _ = 1 to 100 do
    Port_stats.record mono ~port:2 ~value:1
  done;
  Alcotest.(check (float 1e-9)) "monopoly is 1/n" 0.25
    (Port_stats.jain_index mono ~objective:`Packets)

let test_jain_objectives_differ () =
  (* Equal packet counts but skewed values: packet fairness 1, value
     fairness below 1. *)
  let s = Port_stats.create ~n:2 in
  Port_stats.record s ~port:0 ~value:1;
  Port_stats.record s ~port:1 ~value:9;
  Alcotest.(check (float 1e-9)) "packets fair" 1.0
    (Port_stats.jain_index s ~objective:`Packets);
  Alcotest.(check bool) "value unfair" true
    (Port_stats.jain_index s ~objective:`Value < 0.7)

let test_min_max_share () =
  let s = Port_stats.create ~n:2 in
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "empty" (0.0, 0.0)
    (Port_stats.min_max_share s);
  Port_stats.record s ~port:0 ~value:1;
  Port_stats.record s ~port:0 ~value:1;
  Port_stats.record s ~port:1 ~value:1;
  let lo, hi = Port_stats.min_max_share s in
  Alcotest.(check (float 1e-9)) "min share" (1.0 /. 3.0) lo;
  Alcotest.(check (float 1e-9)) "max share" (2.0 /. 3.0) hi

let test_clear () =
  let s = Port_stats.create ~n:2 in
  Port_stats.record s ~port:1 ~value:3;
  Port_stats.clear s;
  Alcotest.(check int) "total" 0 (Port_stats.total s)

let test_engine_integration () =
  (* Two ports, one arrival each per slot: the engine's port stats must
     count both ports evenly. *)
  let open Smbm_core in
  let config = Proc_config.uniform ~n:2 ~work:1 ~buffer:8 () in
  let inst = Proc_engine.instance config (P_lwd.make config) in
  let w =
    Smbm_traffic.Workload.of_fun (fun _ ->
        [ Arrival.make ~dest:0 (); Arrival.make ~dest:1 () ])
  in
  Experiment.run
    ~params:{ Experiment.slots = 20; flush_every = None; check_every = None }
    ~workload:w [ inst ];
  match inst.Instance.ports with
  | Some ports ->
    Alcotest.(check int) "port 0" 20 (Port_stats.transmitted ports 0);
    Alcotest.(check int) "port 1" 20 (Port_stats.transmitted ports 1);
    Alcotest.(check (float 1e-9)) "jain" 1.0
      (Port_stats.jain_index ports ~objective:`Packets)
  | None -> Alcotest.fail "engine instance must expose port stats"

let test_opt_has_no_ports () =
  let open Smbm_core in
  let config = Proc_config.contiguous ~k:2 ~buffer:4 () in
  let opt = Opt_ref.proc_instance config in
  Alcotest.(check bool) "reference has no port structure" true
    (opt.Instance.ports = None)

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basic;
    Alcotest.test_case "jain extremes" `Quick test_jain_extremes;
    Alcotest.test_case "jain objectives" `Quick test_jain_objectives_differ;
    Alcotest.test_case "min/max share" `Quick test_min_max_share;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "engine integration" `Quick test_engine_integration;
    Alcotest.test_case "reference has no ports" `Quick test_opt_has_no_ports;
  ]
