open Smbm_prelude

let check_float = Alcotest.(check (float 1e-9))

let test_empty () =
  let s = Running_stats.create () in
  Alcotest.(check int) "count" 0 (Running_stats.count s);
  check_float "mean" 0.0 (Running_stats.mean s);
  check_float "variance" 0.0 (Running_stats.variance s);
  Alcotest.check_raises "min" (Invalid_argument "Running_stats.min: no samples")
    (fun () -> ignore (Running_stats.min s))

let test_known_values () =
  let s = Running_stats.create () in
  List.iter (Running_stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Running_stats.count s);
  check_float "mean" 5.0 (Running_stats.mean s);
  (* Unbiased sample variance of this classic data set: 32/7. *)
  check_float "variance" (32.0 /. 7.0) (Running_stats.variance s);
  check_float "min" 2.0 (Running_stats.min s);
  check_float "max" 9.0 (Running_stats.max s);
  check_float "sum" 40.0 (Running_stats.sum s)

let test_single_sample () =
  let s = Running_stats.create () in
  Running_stats.add s 3.5;
  check_float "mean" 3.5 (Running_stats.mean s);
  check_float "variance with one sample" 0.0 (Running_stats.variance s);
  check_float "min=max" (Running_stats.min s) (Running_stats.max s)

let test_clear () =
  let s = Running_stats.create () in
  Running_stats.add s 1.0;
  Running_stats.clear s;
  Alcotest.(check int) "count reset" 0 (Running_stats.count s);
  Running_stats.add s 2.0;
  check_float "reusable" 2.0 (Running_stats.mean s)

let test_merge_matches_combined () =
  let a = Running_stats.create ()
  and b = Running_stats.create ()
  and whole = Running_stats.create () in
  let xs = [ 1.0; 2.0; 3.0 ] and ys = [ 10.0; 20.0; 30.0; 40.0 ] in
  List.iter (Running_stats.add a) xs;
  List.iter (Running_stats.add b) ys;
  List.iter (Running_stats.add whole) (xs @ ys);
  let merged = Running_stats.merge a b in
  Alcotest.(check int) "count" (Running_stats.count whole)
    (Running_stats.count merged);
  check_float "mean" (Running_stats.mean whole) (Running_stats.mean merged);
  Alcotest.(check (float 1e-6)) "variance" (Running_stats.variance whole)
    (Running_stats.variance merged);
  check_float "min" (Running_stats.min whole) (Running_stats.min merged);
  check_float "max" (Running_stats.max whole) (Running_stats.max merged)

let test_merge_with_empty () =
  let a = Running_stats.create () and b = Running_stats.create () in
  Running_stats.add a 5.0;
  let m1 = Running_stats.merge a b and m2 = Running_stats.merge b a in
  check_float "a + empty" 5.0 (Running_stats.mean m1);
  check_float "empty + a" 5.0 (Running_stats.mean m2)

let prop_welford_matches_naive =
  QCheck2.Test.make ~name:"Welford matches naive two-pass statistics"
    ~count:200
    QCheck2.Gen.(list_size (int_range 2 50) (float_bound_inclusive 1000.0))
    (fun xs ->
      let s = Running_stats.create () in
      List.iter (Running_stats.add s) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs
        /. (n -. 1.0)
      in
      abs_float (Running_stats.mean s -. mean) < 1e-6
      && abs_float (Running_stats.variance s -. var) < 1e-5)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "known values" `Quick test_known_values;
    Alcotest.test_case "single sample" `Quick test_single_sample;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "merge matches combined stream" `Quick
      test_merge_matches_combined;
    Alcotest.test_case "merge with empty" `Quick test_merge_with_empty;
    Qc.to_alcotest prop_welford_matches_naive;
  ]
