open Smbm_core

let config ?(ports = 3) ?(max_value = 9) ?(buffer = 4) ?(speedup = 1) () =
  Value_config.make ~ports ~max_value ~buffer ~speedup ()

let test_accept_and_occupancy () =
  let sw = Value_switch.create (config ~buffer:2 ()) in
  ignore (Value_switch.accept sw ~dest:0 ~value:5);
  ignore (Value_switch.accept sw ~dest:1 ~value:3);
  Alcotest.(check bool) "full" true (Value_switch.is_full sw);
  (match Value_switch.accept sw ~dest:2 ~value:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accept on full buffer");
  match Value_switch.accept sw ~dest:0 ~value:99 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "value above k accepted"

let test_min_value_views () =
  let sw = Value_switch.create (config ~buffer:6 ()) in
  Alcotest.(check (option int)) "empty min" None (Value_switch.min_value sw);
  ignore (Value_switch.accept sw ~dest:0 ~value:5);
  ignore (Value_switch.accept sw ~dest:1 ~value:2);
  ignore (Value_switch.accept sw ~dest:2 ~value:7);
  Alcotest.(check (option int)) "min" (Some 2) (Value_switch.min_value sw);
  Alcotest.(check (option int)) "min port" (Some 1)
    (Value_switch.min_value_port sw)

let test_min_value_port_tie_breaks_longest () =
  let sw = Value_switch.create (config ~buffer:6 ()) in
  (* Ports 0 and 2 both hold minimum value 1; port 2 is longer. *)
  ignore (Value_switch.accept sw ~dest:0 ~value:1);
  ignore (Value_switch.accept sw ~dest:2 ~value:1);
  ignore (Value_switch.accept sw ~dest:2 ~value:4);
  Alcotest.(check (option int)) "longest min queue" (Some 2)
    (Value_switch.min_value_port sw)

let test_push_out_takes_min () =
  let sw = Value_switch.create (config ~buffer:4 ()) in
  ignore (Value_switch.accept sw ~dest:0 ~value:5);
  ignore (Value_switch.accept sw ~dest:0 ~value:2);
  ignore (Value_switch.accept sw ~dest:0 ~value:8);
  let p = Value_switch.push_out sw ~victim:0 in
  Alcotest.(check int) "least valuable evicted" 2 p.Packet.Value.value;
  Alcotest.(check int) "occupancy" 2 (Value_switch.occupancy sw)

let test_transmit_phase_max_first () =
  let sw = Value_switch.create (config ~buffer:6 ()) in
  ignore (Value_switch.accept sw ~dest:0 ~value:3);
  ignore (Value_switch.accept sw ~dest:0 ~value:9);
  ignore (Value_switch.accept sw ~dest:1 ~value:4);
  let sent = ref [] in
  let n =
    Value_switch.transmit_phase sw ~on_transmit:(fun p ->
        sent := p.Packet.Value.value :: !sent)
  in
  Alcotest.(check int) "one per non-empty queue" 2 n;
  Alcotest.(check (list int)) "each queue sends its max" [ 4; 9 ] !sent

let test_transmit_speedup () =
  let sw = Value_switch.create (config ~buffer:6 ~speedup:2 ()) in
  List.iter (fun v -> ignore (Value_switch.accept sw ~dest:0 ~value:v)) [ 1; 5; 3 ];
  let sent = ref [] in
  ignore
    (Value_switch.transmit_phase sw ~on_transmit:(fun p ->
         sent := p.Packet.Value.value :: !sent));
  Alcotest.(check (list int)) "two best, best first" [ 3; 5 ] !sent;
  Alcotest.(check int) "one left" 1 (Value_switch.occupancy sw)

let test_flush_and_invariants () =
  let sw = Value_switch.create (config ~buffer:6 ()) in
  ignore (Value_switch.accept sw ~dest:0 ~value:3);
  ignore (Value_switch.accept sw ~dest:1 ~value:6);
  Value_switch.check_invariants sw;
  Alcotest.(check int) "flushed" 2 (Value_switch.flush sw);
  Value_switch.check_invariants sw

let prop_occupancy_bounded =
  QCheck2.Test.make ~name:"occupancy never exceeds B under greedy driving"
    ~count:200
    QCheck2.Gen.(list (pair (int_range 0 2) (int_range 1 9)))
    (fun arrivals ->
      let sw = Value_switch.create (config ~buffer:3 ()) in
      List.iter
        (fun (dest, value) ->
          if Value_switch.is_full sw then
            ignore (Value_switch.push_out sw ~victim:(Option.get (Value_switch.min_value_port sw)));
          ignore (Value_switch.accept sw ~dest ~value);
          Value_switch.check_invariants sw)
        arrivals;
      Value_switch.occupancy sw <= 3)

let suite =
  [
    Alcotest.test_case "accept and occupancy" `Quick test_accept_and_occupancy;
    Alcotest.test_case "min-value views" `Quick test_min_value_views;
    Alcotest.test_case "min port tie-break" `Quick
      test_min_value_port_tie_breaks_longest;
    Alcotest.test_case "push_out takes min" `Quick test_push_out_takes_min;
    Alcotest.test_case "transmit max first" `Quick
      test_transmit_phase_max_first;
    Alcotest.test_case "transmit with speedup" `Quick test_transmit_speedup;
    Alcotest.test_case "flush and invariants" `Quick test_flush_and_invariants;
    Qc.to_alcotest prop_occupancy_bounded;
  ]
