open Smbm_lowerbounds

(* Each construction, run at reduced parameters, must achieve at least
   [fraction] of its finite-size bound — and never beat the scripted OPT by
   more than discretization noise allows.  These are real simulations, so
   tolerances are deliberate. *)

let check_measured name ~measured ~bound ~fraction =
  if measured < bound *. fraction then
    Alcotest.failf "%s: measured %.3f below %.2f x bound %.3f" name measured
      fraction bound

let test_quota_policy_proc () =
  let open Smbm_core in
  let config = Proc_config.contiguous ~k:2 ~buffer:4 () in
  let sw = Proc_switch.create config in
  let p = Quota.proc ~quota:(fun dest -> if dest = 0 then 1 else 0) () in
  Alcotest.(check bool) "under quota accepts" true
    (Proc_policy.admit p sw ~dest:0 = Decision.Accept);
  ignore (Proc_switch.accept sw ~dest:0);
  Alcotest.(check bool) "at quota drops" true
    (Proc_policy.admit p sw ~dest:0 = Decision.Drop);
  Alcotest.(check bool) "zero quota drops" true
    (Proc_policy.admit p sw ~dest:1 = Decision.Drop)

let test_quota_policy_value () =
  let open Smbm_core in
  let config = Value_config.make ~ports:2 ~max_value:3 ~buffer:2 () in
  let sw = Value_switch.create config in
  let p = Quota.value ~quota:(fun _ -> 1) () in
  Alcotest.(check bool) "accepts" true
    (Value_policy.admit p sw ~dest:0 ~value:1 = Decision.Accept);
  ignore (Value_switch.accept sw ~dest:0 ~value:1);
  ignore (Value_switch.accept sw ~dest:1 ~value:1);
  Alcotest.(check bool) "full buffer drops" true
    (Value_policy.admit p sw ~dest:0 ~value:3 = Decision.Drop)

let test_episodic_shape () =
  let open Smbm_core in
  let burst = [ Arrival.make ~dest:0 (); Arrival.make ~dest:1 () ] in
  let trickle t = if t = 2 then [ Arrival.make ~dest:0 () ] else [] in
  let trace = Runner.episodic ~episode:4 ~burst ~trickle in
  Alcotest.(check int) "burst at slot 0" 2 (List.length (trace 0));
  Alcotest.(check int) "trickle at 2" 1 (List.length (trace 2));
  Alcotest.(check int) "silent at 3" 0 (List.length (trace 3));
  Alcotest.(check int) "burst repeats at 4" 2 (List.length (trace 4))

let test_nhst_construction () =
  let m = Lb_nhst.measure ~k:6 ~buffer:200 ~episodes:2 () in
  check_measured "NHST" ~measured:m.Runner.ratio
    ~bound:(Lb_nhst.finite_bound ~k:6) ~fraction:0.85

let test_nest_construction () =
  let m = Lb_nest.measure ~k:8 ~buffer:80 ~episodes:3 () in
  Alcotest.(check (float 0.01)) "NEST exactly n" 8.0 m.Runner.ratio

let test_nhdt_construction () =
  let m = Lb_nhdt.measure ~k:32 ~buffer:1024 ~episodes:2 () in
  check_measured "NHDT" ~measured:m.Runner.ratio
    ~bound:(Lb_nhdt.finite_bound ~k:32 ~buffer:1024) ~fraction:0.8

let test_nhdt_grows_with_k () =
  let small = Lb_nhdt.measure ~k:16 ~buffer:512 ~episodes:2 () in
  let large = Lb_nhdt.measure ~k:64 ~buffer:2048 ~episodes:2 () in
  Alcotest.(check bool) "ratio grows with k" true
    (large.Runner.ratio > small.Runner.ratio)

let test_lqd_construction () =
  let m = Lb_lqd.measure ~k:36 ~buffer:720 ~episodes:3 () in
  check_measured "LQD" ~measured:m.Runner.ratio
    ~bound:(Lb_lqd.finite_bound ~k:36 ~buffer:720) ~fraction:0.8

let test_lqd_grows_with_k () =
  let small = Lb_lqd.measure ~k:16 ~buffer:512 ~episodes:2 () in
  let large = Lb_lqd.measure ~k:64 ~buffer:1024 ~episodes:2 () in
  Alcotest.(check bool) "ratio grows with k" true
    (large.Runner.ratio > small.Runner.ratio)

let test_bpd_construction () =
  let m = Lb_bpd.measure ~k:8 ~buffer:40 ~slots:800 () in
  check_measured "BPD" ~measured:m.Runner.ratio
    ~bound:(Lb_bpd.finite_bound ~k:8) ~fraction:0.9;
  match Lb_bpd.measure ~k:8 ~buffer:10 ~slots:10 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "undersized buffer accepted"

let test_lwd_construction () =
  let m = Lb_lwd.measure ~buffer:600 ~episodes:3 () in
  check_measured "LWD" ~measured:m.Runner.ratio
    ~bound:(Lb_lwd.finite_bound ~buffer:600) ~fraction:0.9;
  (* The whole point: LWD's lower bound stays constant, bounded by 2
     (Theorem 7). *)
  Alcotest.(check bool) "below the 2-competitive upper bound" true
    (m.Runner.ratio < 2.0);
  match Lb_lwd.measure ~buffer:100 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-divisible buffer accepted"

let test_lqd_value_construction () =
  let m = Lb_lqd_value.measure ~k:27 ~buffer:135 ~episodes:3 () in
  check_measured "LQD-value" ~measured:m.Runner.ratio
    ~bound:(Lb_lqd_value.finite_bound ~k:27) ~fraction:0.8

let test_mvd_construction () =
  let m = Lb_mvd.measure ~k:8 ~buffer:8 ~slots:400 () in
  check_measured "MVD" ~measured:m.Runner.ratio
    ~bound:(Lb_mvd.finite_bound ~k:8 ~buffer:8) ~fraction:0.9

let test_mvd_grows_linearly () =
  let small = Lb_mvd.measure ~k:6 ~buffer:6 ~slots:300 () in
  let large = Lb_mvd.measure ~k:12 ~buffer:12 ~slots:300 () in
  (* (m+1)/2 doubles-ish from m=6 to m=12. *)
  Alcotest.(check bool) "linear growth" true
    (large.Runner.ratio > 1.7 *. small.Runner.ratio)

let test_mvd_m_is_min_k_buffer () =
  Alcotest.(check (float 1e-9)) "m limited by buffer" 3.0
    (Lb_mvd.finite_bound ~k:100 ~buffer:5);
  Alcotest.(check (float 1e-9)) "m limited by k" 3.0
    (Lb_mvd.finite_bound ~k:5 ~buffer:100)

let test_mrd_construction () =
  let m = Lb_mrd.measure ~buffer:600 ~episodes:3 () in
  check_measured "MRD" ~measured:m.Runner.ratio
    ~bound:(Lb_mrd.finite_bound ~buffer:600) ~fraction:0.9;
  Alcotest.(check bool) "constant-ish, well below MVD's linear bound" true
    (m.Runner.ratio < 2.0)

let test_greedy_value_construction () =
  let m = Lb_greedy_value.measure ~k:12 ~buffer:48 ~episodes:3 () in
  Alcotest.(check (float 0.05)) "greedy is exactly k-competitive here" 12.0
    m.Runner.ratio

let test_choose_m_clamped () =
  Alcotest.(check bool) "nhdt m within range" true
    (let m = Lb_nhdt.choose_m ~k:2 in
     m >= 1 && m < 2);
  Alcotest.(check int) "lqd m = sqrt k" 8 (Lb_lqd.choose_m ~k:64);
  Alcotest.(check int) "lqd value a = cube root" 3 (Lb_lqd_value.choose_a ~k:27)

let test_registry_complete () =
  Alcotest.(check int) "ten constructions" 10 (List.length Constructions.all);
  Alcotest.(check bool) "find Thm 4" true
    (Option.is_some (Constructions.find ~theorem:"thm 4"));
  Alcotest.(check bool) "find unknown" true
    (Option.is_none (Constructions.find ~theorem:"thm 7"))

let test_bounds_ordering () =
  (* The paper's qualitative story: the non-push-out and value-blind
     policies have fast-growing bounds, LWD and MRD constant ones. *)
  let at k =
    ( Lb_nhst.finite_bound ~k,
      Lb_lqd.finite_bound ~k ~buffer:(k * 16),
      Lb_lwd.finite_bound ~buffer:(k * 16) )
  in
  let nhst64, lqd64, lwd64 = at 64 in
  Alcotest.(check bool) "NHST worst" true (nhst64 > lqd64);
  Alcotest.(check bool) "LQD grows past LWD" true (lqd64 > lwd64);
  Alcotest.(check bool) "LWD constant below 4/3" true (lwd64 < 4.0 /. 3.0)

let suite =
  [
    Alcotest.test_case "quota policy (proc)" `Quick test_quota_policy_proc;
    Alcotest.test_case "quota policy (value)" `Quick test_quota_policy_value;
    Alcotest.test_case "episodic trace shape" `Quick test_episodic_shape;
    Alcotest.test_case "Thm 1: NHST" `Quick test_nhst_construction;
    Alcotest.test_case "Thm 2: NEST" `Quick test_nest_construction;
    Alcotest.test_case "Thm 3: NHDT" `Quick test_nhdt_construction;
    Alcotest.test_case "Thm 3: NHDT grows with k" `Quick test_nhdt_grows_with_k;
    Alcotest.test_case "Thm 4: LQD" `Quick test_lqd_construction;
    Alcotest.test_case "Thm 4: LQD grows with k" `Quick test_lqd_grows_with_k;
    Alcotest.test_case "Thm 5: BPD" `Quick test_bpd_construction;
    Alcotest.test_case "Thm 6: LWD" `Quick test_lwd_construction;
    Alcotest.test_case "Thm 9: LQD value" `Quick test_lqd_value_construction;
    Alcotest.test_case "Thm 10: MVD" `Quick test_mvd_construction;
    Alcotest.test_case "Thm 10: m = min(k, B)" `Quick
      test_mvd_m_is_min_k_buffer;
    Alcotest.test_case "Thm 10: linear growth" `Quick test_mvd_grows_linearly;
    Alcotest.test_case "Thm 11: MRD" `Quick test_mrd_construction;
    Alcotest.test_case "SIV-B: greedy k-competitive" `Quick
      test_greedy_value_construction;
    Alcotest.test_case "optimizer clamping" `Quick test_choose_m_clamped;
    Alcotest.test_case "registry" `Quick test_registry_complete;
    Alcotest.test_case "bounds ordering" `Quick test_bounds_ordering;
  ]
