(* Tests for the ablation variants that extend the paper's policy set:
   LWD1 / tie-breaking variants, MRD1, and the random-eviction baseline. *)

open Smbm_core
open Smbm_sim

let decision = Alcotest.testable Decision.pp Decision.equal

let switch ?(buffer = 8) ~works ~lengths () =
  let config = Proc_config.make ~works ~buffer () in
  let sw = Proc_switch.create config in
  Array.iteri
    (fun dest n ->
      for _ = 1 to n do
        ignore (Proc_switch.accept sw ~dest)
      done)
    lengths;
  (config, sw)

let test_lwd1_protects_last_packet () =
  (* Q3 holds one work-3 packet (W=3); Q0 holds 5 work-1 (W=5).  Make Q3 the
     LWD victim by partially draining Q0... simpler: Q3 one packet with the
     largest W: works [1; 6], Q1 = 1 x 6 (W=6), Q0 = 1 x 1 (W=1), B=2.
     Arrival for port 0: LWD evicts Q1's only packet; LWD1 must not. *)
  let _, sw = switch ~buffer:2 ~works:[| 1; 6 |] ~lengths:[| 1; 1 |] () in
  let config = Proc_switch.config sw in
  Alcotest.check decision "LWD evicts the singleton"
    (Decision.Push_out { victim = 1 })
    (Proc_policy.admit (P_lwd.make config) sw ~dest:0);
  Alcotest.check decision "LWD1 drops instead" Decision.Drop
    (Proc_policy.admit (P_lwd.make ~protect_last:true config) sw ~dest:0)

let test_lwd1_still_pushes_long_queues () =
  let _, sw = switch ~buffer:4 ~works:[| 1; 6 |] ~lengths:[| 2; 2 |] () in
  let config = Proc_switch.config sw in
  Alcotest.check decision "eligible victim found"
    (Decision.Push_out { victim = 1 })
    (Proc_policy.admit (P_lwd.make ~protect_last:true config) sw ~dest:0)

let test_lwd_tie_variants_differ () =
  (* Q0: 6 x work 1 (W=6), Q3: 2 x work 3 (W=6): equal work, so the tie rule
     decides.  Largest-work picks Q3, smallest-work picks Q0, longest-queue
     picks Q0 (6 > 2). *)
  let _, sw = switch ~works:[| 1; 2; 2; 3 |] ~lengths:[| 6; 0; 0; 2 |] () in
  let config = Proc_switch.config sw in
  Alcotest.check decision "largest work (paper)"
    (Decision.Push_out { victim = 3 })
    (Proc_policy.admit (P_lwd.make config) sw ~dest:1);
  Alcotest.check decision "smallest work"
    (Decision.Push_out { victim = 0 })
    (Proc_policy.admit (P_lwd.make ~tie:P_lwd.Smallest_work config) sw ~dest:1);
  Alcotest.check decision "longest queue"
    (Decision.Push_out { victim = 0 })
    (Proc_policy.admit (P_lwd.make ~tie:P_lwd.Longest_queue config) sw ~dest:1)

let test_mrd1_protects_singletons () =
  let config = Value_config.make ~ports:3 ~max_value:9 ~buffer:3 () in
  let sw = Value_switch.create config in
  (* Q0 = [1] is both ratio-maximal (1/1) and a singleton; Q1 = [9; 9]
     (ratio 2/9). *)
  ignore (Value_switch.accept sw ~dest:0 ~value:1);
  ignore (Value_switch.accept sw ~dest:1 ~value:9);
  ignore (Value_switch.accept sw ~dest:1 ~value:9);
  Alcotest.check decision "MRD evicts the singleton"
    (Decision.Push_out { victim = 0 })
    (Value_policy.admit (V_mrd.make config) sw ~dest:2 ~value:5);
  Alcotest.check decision "MRD1 falls back to an eligible queue"
    (Decision.Push_out { victim = 1 })
    (Value_policy.admit (V_mrd.make ~protect_last:true config) sw ~dest:2
       ~value:5)

let test_rand_legal_decisions () =
  let config = Proc_config.contiguous ~k:3 ~buffer:4 () in
  let policy = P_rand.make ~seed:7 config in
  let sw = Proc_switch.create config in
  (* Not full: always accept. *)
  Alcotest.check decision "greedy accept" Decision.Accept
    (Proc_policy.admit policy sw ~dest:0);
  for _ = 1 to 4 do
    ignore (Proc_switch.accept sw ~dest:2)
  done;
  for _ = 1 to 50 do
    match Proc_policy.admit policy sw ~dest:1 with
    | Decision.Accept -> Alcotest.fail "accept on full buffer"
    | Decision.Push_out { victim } ->
      if Proc_switch.queue_length sw victim = 0 then
        Alcotest.fail "evicting from empty queue"
    | Decision.Drop -> ()
  done

let test_rand_is_seeded () =
  let config = Proc_config.contiguous ~k:3 ~buffer:3 () in
  let run seed =
    let policy = P_rand.make ~seed config in
    let sw = Proc_switch.create config in
    for _ = 1 to 3 do
      ignore (Proc_switch.accept sw ~dest:2)
    done;
    List.init 20 (fun _ -> Proc_policy.admit policy sw ~dest:0)
  in
  Alcotest.(check bool) "same seed, same decisions" true
    (List.equal Decision.equal (run 1) (run 1));
  Alcotest.(check bool) "different seeds diverge" true
    (not (List.equal Decision.equal (run 1) (run 2)))

let test_extended_registries () =
  let config = Proc_config.contiguous ~k:4 ~buffer:8 () in
  let names =
    List.map (fun (p : Proc_policy.t) -> p.name) (Policies.proc_extended config)
  in
  List.iter
    (fun n ->
      if not (List.mem n names) then Alcotest.failf "missing %s" n)
    [ "LWD"; "LWD1"; "LWD/tie=small-work"; "LWD/tie=long-queue"; "RAND" ];
  let vconfig = Value_config.make ~ports:4 ~max_value:4 ~buffer:8 () in
  let vnames =
    List.map (fun (p : Value_policy.t) -> p.name)
      (Policies.value_extended vconfig)
  in
  List.iter
    (fun n ->
      if not (List.mem n vnames) then Alcotest.failf "missing %s" n)
    [ "MRD"; "MRD1"; "RAND" ];
  Alcotest.(check bool) "find knows ablations" true
    (Option.is_some (Policies.proc_find config "lwd1"))

(* Structured eviction should beat random eviction under congestion. *)
let test_rand_is_a_floor () =
  let config = Proc_config.contiguous ~k:16 ~buffer:64 () in
  let workload =
    Smbm_traffic.Scenario.proc_workload
      ~mmpp:{ Smbm_traffic.Scenario.default_mmpp with sources = 50 }
      ~config ~load:2.5 ~seed:21 ()
  in
  let lwd = Proc_engine.instance config (P_lwd.make config) in
  let rand = Proc_engine.instance config (P_rand.make config) in
  let opt = Opt_ref.proc_instance config in
  Experiment.run
    ~params:
      { Experiment.slots = 15_000; flush_every = Some 1_500; check_every = None }
    ~workload [ lwd; rand; opt ];
  let r name inst = (name, Experiment.ratio ~objective:`Packets ~opt ~alg:inst) in
  let _, lwd_r = r "lwd" lwd and _, rand_r = r "rand" rand in
  Alcotest.(check bool) "LWD beats random eviction" true (lwd_r < rand_r)

let suite =
  [
    Alcotest.test_case "LWD1 protects last packet" `Quick
      test_lwd1_protects_last_packet;
    Alcotest.test_case "LWD1 pushes eligible queues" `Quick
      test_lwd1_still_pushes_long_queues;
    Alcotest.test_case "LWD tie variants" `Quick test_lwd_tie_variants_differ;
    Alcotest.test_case "MRD1 protects singletons" `Quick
      test_mrd1_protects_singletons;
    Alcotest.test_case "RAND makes legal decisions" `Quick
      test_rand_legal_decisions;
    Alcotest.test_case "RAND is seeded" `Quick test_rand_is_seeded;
    Alcotest.test_case "extended registries" `Quick test_extended_registries;
    Alcotest.test_case "RAND is a floor" `Slow test_rand_is_a_floor;
  ]
