open Smbm_report

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let test_table_alignment () =
  let rendered =
    Table.render ~headers:[ "name"; "value" ]
      ~rows:[ [ "a"; "1" ]; [ "longer"; "22" ] ]
      ()
  in
  let lines = String.split_on_char '\n' rendered in
  (match lines with
  | header :: sep :: _ ->
    Alcotest.(check int) "separator matches header width"
      (String.length header) (String.length sep)
  | _ -> Alcotest.fail "too few lines");
  Alcotest.(check bool) "right-aligned numbers" true
    (List.exists (fun l -> String.length l > 0 && l.[String.length l - 1] = '1')
       lines)

let test_table_pads_short_rows () =
  let rendered =
    Table.render ~headers:[ "a"; "b"; "c" ] ~rows:[ [ "x" ] ] ()
  in
  Alcotest.(check bool) "renders" true (String.length rendered > 0)

let test_table_rejects_long_rows () =
  match Table.render ~headers:[ "a" ] ~rows:[ [ "1"; "2" ] ] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "long row accepted"

let test_float_cell () =
  Alcotest.(check string) "fixed point" "1.500" (Table.float_cell 1.5);
  Alcotest.(check string) "digits" "1.50" (Table.float_cell ~digits:2 1.5);
  Alcotest.(check string) "infinity" "inf" (Table.float_cell infinity);
  Alcotest.(check string) "nan" "nan" (Table.float_cell Float.nan)

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Csv.escape "a\nb");
  Alcotest.(check string) "row" "a,\"b,c\",d" (Csv.row [ "a"; "b,c"; "d" ])

let test_csv_of_table () =
  let doc = Csv.of_table ~headers:[ "x"; "y" ] ~rows:[ [ "1"; "2" ] ] in
  Alcotest.(check string) "document" "x,y\n1,2\n" doc

let test_series_ranges () =
  let s1 = Series.make ~name:"a" ~points:[ (1.0, 2.0); (2.0, 8.0) ] in
  let s2 = Series.make ~name:"b" ~points:[ (0.5, 4.0); (3.0, infinity) ] in
  let lo, hi = Series.y_range [ s1; s2 ] in
  Alcotest.(check (float 1e-9)) "y lo skips non-finite" 2.0 lo;
  Alcotest.(check (float 1e-9)) "y hi" 8.0 hi;
  let xlo, xhi = Series.x_range [ s1; s2 ] in
  Alcotest.(check (float 1e-9)) "x lo" 0.5 xlo;
  Alcotest.(check (float 1e-9)) "x hi" 3.0 xhi;
  let lo, hi = Series.y_range [] in
  Alcotest.(check (float 1e-9)) "empty default lo" 0.0 lo;
  Alcotest.(check (float 1e-9)) "empty default hi" 1.0 hi

let test_series_of_ints () =
  let s = Series.of_ints ~name:"a" ~points:[ (1, 2.0); (4, 3.0) ] in
  Alcotest.(check (float 1e-9)) "x converted" 1.0 (fst (List.hd s.Series.points))

let test_ascii_plot_renders () =
  let s =
    Series.make ~name:"LWD" ~points:[ (2.0, 1.1); (4.0, 1.2); (8.0, 1.3) ]
  in
  let out = Ascii_plot.render ~title:"panel" ~x_label:"k" ~log_x:true [ s ] in
  Alcotest.(check bool) "contains title" true
    (String.length out > 0 && String.sub out 0 5 = "panel");
  Alcotest.(check bool) "contains legend" true (contains out "o=LWD");
  Alcotest.(check bool) "contains marker" true (String.contains out 'o')

let test_ascii_plot_flat_series () =
  (* A constant series must not divide by zero. *)
  let s = Series.make ~name:"flat" ~points:[ (1.0, 2.0); (2.0, 2.0) ] in
  let out = Ascii_plot.render [ s ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let suite =
  [
    Alcotest.test_case "table alignment" `Quick test_table_alignment;
    Alcotest.test_case "table pads short rows" `Quick test_table_pads_short_rows;
    Alcotest.test_case "table rejects long rows" `Quick
      test_table_rejects_long_rows;
    Alcotest.test_case "float cells" `Quick test_float_cell;
    Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
    Alcotest.test_case "csv document" `Quick test_csv_of_table;
    Alcotest.test_case "series ranges" `Quick test_series_ranges;
    Alcotest.test_case "series of ints" `Quick test_series_of_ints;
    Alcotest.test_case "ascii plot renders" `Quick test_ascii_plot_renders;
    Alcotest.test_case "ascii plot flat series" `Quick
      test_ascii_plot_flat_series;
  ]
