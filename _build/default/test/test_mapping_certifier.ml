(* The executable Fig. 3 mapping routine: on every tested input the
   certifier must maintain Lemma 8's invariants with zero violations and
   never charge more than two OPT packets to one LWD packet — a
   machine-checked run of Theorem 7's proof on that input. *)

open Smbm_core
open Smbm_traffic
open Smbm_analysis

let greedy =
  Proc_policy.make ~name:"greedy" ~push_out:false (fun sw ~dest:_ ->
      if Proc_switch.is_full sw then Decision.Drop else Decision.Accept)

let quota quotas =
  Proc_policy.make ~name:"quota" ~push_out:false (fun sw ~dest ->
      if Proc_switch.is_full sw then Decision.Drop
      else if Proc_switch.queue_length sw dest < quotas.(dest) then
        Decision.Accept
      else Decision.Drop)

let expect_clean name (r : Mapping_certifier.report) =
  if r.violation_count > 0 then
    Alcotest.failf "%s: %d violations, first: %s" name r.violation_count
      (match r.violations with v :: _ -> v | [] -> "?");
  if r.max_images > 2 then
    Alcotest.failf "%s: a LWD packet absorbed %d OPT packets" name r.max_images;
  if r.opt_transmitted > 2 * r.lwd_transmitted then
    Alcotest.failf "%s: 2-competitiveness violated (%d vs %d)" name
      r.opt_transmitted r.lwd_transmitted

let test_speedup_rejected () =
  let config = Proc_config.contiguous ~k:2 ~buffer:4 ~speedup:2 () in
  match
    Mapping_certifier.run ~config ~opponent:greedy ~trace:(fun _ -> []) ~slots:1 ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "speedup 2 accepted"

let test_pushout_opponent_reported () =
  let config = Proc_config.contiguous ~k:2 ~buffer:1 () in
  let rogue = P_lqd.make config in
  let trace slot =
    if slot = 0 then [ Arrival.make ~dest:1 (); Arrival.make ~dest:0 () ]
    else []
  in
  let r = Mapping_certifier.run ~config ~opponent:rogue ~trace ~slots:3 () in
  Alcotest.(check bool) "push-out flagged" true (r.violation_count > 0)

let test_greedy_on_mmpp () =
  let config = Proc_config.contiguous ~k:8 ~buffer:32 () in
  let workload =
    Scenario.proc_workload
      ~mmpp:{ Scenario.default_mmpp with sources = 30 }
      ~config ~load:2.0 ~seed:3 ()
  in
  let r =
    Mapping_certifier.run ~config ~opponent:greedy
      ~trace:(fun _ -> Workload.next workload)
      ~slots:2_000 ()
  in
  expect_clean "greedy/MMPP" r;
  Alcotest.(check bool) "some pressure was exercised" true
    (r.max_images = 2 && r.opt_transmitted > 0)

let test_quota_on_mmpp () =
  let config = Proc_config.contiguous ~k:6 ~buffer:24 () in
  let workload =
    Scenario.proc_workload
      ~mmpp:{ Scenario.default_mmpp with sources = 30 }
      ~config ~load:2.5 ~seed:9 ()
  in
  (* A quota opponent that hoards the buffer for the two cheapest ports -
     adversarial in spirit (like the proofs' scripted OPTs). *)
  let r =
    Mapping_certifier.run ~config
      ~opponent:(quota [| 20; 4; 0; 0; 0; 0 |])
      ~trace:(fun _ -> Workload.next workload)
      ~slots:2_000 ()
  in
  expect_clean "quota/MMPP" r

let test_thm6_construction () =
  (* The paper's own worst-case input for LWD, with the proof's scripted
     OPT as the opponent: the mapping must survive its full episode. *)
  let buffer = 120 in
  let config = Proc_config.make ~works:[| 1; 2; 3; 6 |] ~buffer () in
  let burst =
    List.concat
      [
        List.init buffer (fun _ -> Arrival.make ~dest:0 ());
        List.init (buffer / 4) (fun _ -> Arrival.make ~dest:1 ());
        List.init (buffer / 6) (fun _ -> Arrival.make ~dest:2 ());
        List.init (buffer / 12) (fun _ -> Arrival.make ~dest:3 ());
      ]
  in
  let trace slot =
    let t = slot mod buffer in
    if t = 0 then burst
    else
      List.filteri
        (fun i _ -> i > 0 && t mod [| 1; 2; 3; 6 |].(i) = 0)
        [ Arrival.make ~dest:0 (); Arrival.make ~dest:1 ();
          Arrival.make ~dest:2 (); Arrival.make ~dest:3 () ]
  in
  let opponent =
    quota [| buffer - 3; 1; 1; 1 |]
  in
  let r =
    Mapping_certifier.run ~config ~opponent ~trace ~slots:(2 * buffer) ()
  in
  expect_clean "Theorem 6 construction" r;
  (* The construction pushes OPT visibly ahead - the mapping explains how
     far ahead it can get. *)
  Alcotest.(check bool) "opponent ahead but within 2x" true
    (r.opt_transmitted > r.lwd_transmitted)

let test_lemma8_gap_reproduced () =
  (* The minimal counterexample to the paper's literal Lemma 8 invariant
     (found mechanically by this certifier): two ports with works {1, 2},
     B = 2, a greedy opponent.  LWD's push-out empties Q1, the opponent
     keeps serving its copy and gets a cycle ahead; when both accept fresh
     work-2 packets in slot 1, the positional pair has OPT latency 1 <
     LWD latency 2.  The repaired accounting (keep the A1 assignment)
     stays sound: zero violations, cap of two respected. *)
  let config = Proc_config.contiguous ~k:2 ~buffer:2 () in
  let trace_arr =
    [|
      [ Arrival.make ~dest:1 (); Arrival.make ~dest:0 (); Arrival.make ~dest:0 () ];
      [ Arrival.make ~dest:1 (); Arrival.make ~dest:1 () ];
      [ Arrival.make ~dest:0 (); Arrival.make ~dest:0 ();
        Arrival.make ~dest:1 (); Arrival.make ~dest:1 () ];
      [ Arrival.make ~dest:1 (); Arrival.make ~dest:0 (); Arrival.make ~dest:1 () ];
    |]
  in
  let trace i = if i < Array.length trace_arr then trace_arr.(i) else [] in
  let r = Mapping_certifier.run ~config ~opponent:greedy ~trace ~slots:12 () in
  expect_clean "Lemma 8 gap trace" r;
  Alcotest.(check bool)
    "the literal positional invariant fails on this trace" true
    (r.strict_a0_mismatches > 0)

let prop_random_traces_random_quotas =
  QCheck2.Test.make
    ~name:"mapping routine survives random traces and quota opponents"
    ~count:120
    QCheck2.Gen.(
      let* k = int_range 1 4 in
      let* buffer = int_range k 8 in
      let* quotas = array_size (pure k) (int_range 0 8) in
      let* dests =
        list_size (int_range 1 15)
          (list_size (int_range 0 4) (int_range 0 (k - 1)))
      in
      pure (k, buffer, quotas, dests))
    (fun (k, buffer, quotas, dests) ->
      let config = Proc_config.contiguous ~k ~buffer () in
      let trace_arr =
        Array.of_list
          (List.map (List.map (fun d -> Arrival.make ~dest:d ())) dests)
      in
      let trace i = if i < Array.length trace_arr then trace_arr.(i) else [] in
      let r =
        Mapping_certifier.run ~config ~opponent:(quota quotas) ~trace
          ~slots:(Array.length trace_arr + (buffer * k) + k)
          ()
      in
      r.violation_count = 0
      && r.max_images <= 2
      && r.opt_transmitted <= 2 * r.lwd_transmitted)

let suite =
  [
    Alcotest.test_case "speedup rejected" `Quick test_speedup_rejected;
    Alcotest.test_case "push-out opponent flagged" `Quick
      test_pushout_opponent_reported;
    Alcotest.test_case "greedy opponent on MMPP" `Slow test_greedy_on_mmpp;
    Alcotest.test_case "hoarding quota opponent on MMPP" `Slow
      test_quota_on_mmpp;
    Alcotest.test_case "Theorem 6 construction" `Quick test_thm6_construction;
    Alcotest.test_case "Lemma 8 gap reproduced, repair sound" `Quick
      test_lemma8_gap_reproduced;
    Qc.to_alcotest prop_random_traces_random_quotas;
  ]
