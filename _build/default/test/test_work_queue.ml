open Smbm_core

let packet ?(id = 0) ~work () = Packet.Proc.make ~id ~dest:0 ~work ~arrival:0

let test_empty () =
  let q = Work_queue.create ~work:3 in
  Alcotest.(check int) "length" 0 (Work_queue.length q);
  Alcotest.(check int) "total work" 0 (Work_queue.total_work q);
  Alcotest.(check int) "hol residual" 0 (Work_queue.hol_residual q)

let test_push_tracks_work () =
  let q = Work_queue.create ~work:3 in
  Work_queue.push q (packet ~id:1 ~work:3 ());
  Work_queue.push q (packet ~id:2 ~work:3 ());
  Alcotest.(check int) "length" 2 (Work_queue.length q);
  Alcotest.(check int) "total work" 6 (Work_queue.total_work q);
  Alcotest.(check int) "hol residual" 3 (Work_queue.hol_residual q)

let test_rejects_mismatched_work () =
  let q = Work_queue.create ~work:3 in
  match Work_queue.push q (packet ~work:2 ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "mismatched work accepted"

let test_pop_back_is_lifo_tail () =
  let q = Work_queue.create ~work:2 in
  Work_queue.push q (packet ~id:1 ~work:2 ());
  Work_queue.push q (packet ~id:2 ~work:2 ());
  let p = Work_queue.pop_back q in
  Alcotest.(check int) "tail id" 2 p.Packet.Proc.id;
  Alcotest.(check int) "total work after pop" 2 (Work_queue.total_work q)

let test_process_single_cycle () =
  let q = Work_queue.create ~work:2 in
  Work_queue.push q (packet ~id:1 ~work:2 ());
  let sent = ref [] in
  let n =
    Work_queue.process q ~cycles:1 ~on_transmit:(fun p ->
        sent := p.Packet.Proc.id :: !sent)
  in
  Alcotest.(check int) "nothing transmitted" 0 n;
  Alcotest.(check int) "hol residual decremented" 1 (Work_queue.hol_residual q);
  Alcotest.(check int) "total work decremented" 1 (Work_queue.total_work q);
  let n = Work_queue.process q ~cycles:1 ~on_transmit:(fun _ -> ()) in
  Alcotest.(check int) "transmitted on completion" 1 n;
  Alcotest.(check int) "queue empty" 0 (Work_queue.length q)

let test_process_run_to_completion () =
  (* Three work-2 packets and 5 cycles: two complete, one is half done. *)
  let q = Work_queue.create ~work:2 in
  List.iter (fun id -> Work_queue.push q (packet ~id ~work:2 ())) [ 1; 2; 3 ];
  let sent = ref [] in
  let n =
    Work_queue.process q ~cycles:5 ~on_transmit:(fun p ->
        sent := p.Packet.Proc.id :: !sent)
  in
  Alcotest.(check int) "two transmitted" 2 n;
  Alcotest.(check (list int)) "FIFO completion order" [ 1; 2 ] (List.rev !sent);
  Alcotest.(check int) "one left" 1 (Work_queue.length q);
  Alcotest.(check int) "hol half processed" 1 (Work_queue.hol_residual q);
  Alcotest.(check int) "total work" 1 (Work_queue.total_work q)

let test_process_budget_left_over () =
  let q = Work_queue.create ~work:1 in
  Work_queue.push q (packet ~work:1 ());
  let n = Work_queue.process q ~cycles:10 ~on_transmit:(fun _ -> ()) in
  Alcotest.(check int) "one transmitted" 1 n;
  Alcotest.(check int) "empty" 0 (Work_queue.length q)

let test_partially_processed_tail_pop () =
  (* Popping the tail of a single partially-processed packet must subtract
     its residual, not its full work. *)
  let q = Work_queue.create ~work:3 in
  Work_queue.push q (packet ~work:3 ());
  ignore (Work_queue.process q ~cycles:2 ~on_transmit:(fun _ -> ()));
  Alcotest.(check int) "residual" 1 (Work_queue.total_work q);
  let p = Work_queue.pop_back q in
  Alcotest.(check int) "popped residual" 1 p.Packet.Proc.residual;
  Alcotest.(check int) "total work zero" 0 (Work_queue.total_work q)

let test_clear () =
  let q = Work_queue.create ~work:2 in
  Work_queue.push q (packet ~work:2 ());
  Work_queue.push q (packet ~work:2 ());
  Alcotest.(check int) "dropped" 2 (Work_queue.clear q);
  Alcotest.(check int) "total work" 0 (Work_queue.total_work q)

let prop_total_work_consistent =
  QCheck2.Test.make
    ~name:"cached total work equals sum of residuals under random ops"
    ~count:300
    QCheck2.Gen.(
      pair (int_range 1 5)
        (list (oneof [ pure `Push; pure `Pop; map (fun c -> `Process c) (int_range 1 4) ])))
    (fun (work, ops) ->
      let q = Work_queue.create ~work in
      let id = ref 0 in
      List.iter
        (fun op ->
          match op with
          | `Push ->
            incr id;
            Work_queue.push q (packet ~id:!id ~work ())
          | `Pop -> if Work_queue.length q > 0 then ignore (Work_queue.pop_back q)
          | `Process c ->
            ignore (Work_queue.process q ~cycles:c ~on_transmit:(fun _ -> ())))
        ops;
      let sum =
        List.fold_left
          (fun acc (p : Packet.Proc.t) -> acc + p.residual)
          0 (Work_queue.to_list q)
      in
      sum = Work_queue.total_work q)

let suite =
  [
    Alcotest.test_case "empty queue" `Quick test_empty;
    Alcotest.test_case "push tracks work" `Quick test_push_tracks_work;
    Alcotest.test_case "rejects mismatched work" `Quick
      test_rejects_mismatched_work;
    Alcotest.test_case "pop_back takes tail" `Quick test_pop_back_is_lifo_tail;
    Alcotest.test_case "single-cycle processing" `Quick
      test_process_single_cycle;
    Alcotest.test_case "run-to-completion speedup" `Quick
      test_process_run_to_completion;
    Alcotest.test_case "budget exceeding queue" `Quick
      test_process_budget_left_over;
    Alcotest.test_case "pop of partially processed tail" `Quick
      test_partially_processed_tail_pop;
    Alcotest.test_case "clear" `Quick test_clear;
    Qc.to_alcotest prop_total_work_consistent;
  ]
