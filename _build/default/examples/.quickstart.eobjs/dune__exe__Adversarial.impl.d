examples/adversarial.ml: Constructions List Runner Smbm_lowerbounds Smbm_report Table
