examples/buffer_sizing.ml: Ascii_plot List Series Smbm_report Smbm_sim Smbm_traffic Sweep Table
