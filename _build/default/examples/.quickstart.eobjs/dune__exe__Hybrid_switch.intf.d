examples/hybrid_switch.mli:
