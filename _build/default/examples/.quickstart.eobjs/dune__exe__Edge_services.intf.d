examples/edge_services.mli:
