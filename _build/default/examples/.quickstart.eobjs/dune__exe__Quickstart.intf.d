examples/quickstart.mli:
