examples/theorem7_certificate.mli:
