examples/adversarial.mli:
