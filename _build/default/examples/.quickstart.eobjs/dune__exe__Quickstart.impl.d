examples/quickstart.ml: Experiment Instance List Metrics Opt_ref P_lqd P_lwd Printf Proc_config Proc_engine Scenario Smbm_core Smbm_sim Smbm_traffic
