examples/mrd_conjecture.ml: Array Arrival Exact_opt Experiment Float Instance List Metrics Printf Rng Smbm_core Smbm_prelude Smbm_sim Smbm_traffic Sys V_mrd Value_config Value_engine Workload
