examples/burst_dynamics.mli:
