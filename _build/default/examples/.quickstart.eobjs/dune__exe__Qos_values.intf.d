examples/qos_values.mli:
