examples/burst_dynamics.ml: Arrival Ascii_plot Experiment Instance List Metrics P_bpd P_lwd Printf Proc_config Proc_engine Smbm_core Smbm_prelude Smbm_report Smbm_sim Smbm_traffic Timeseries Workload
