examples/mrd_conjecture.mli:
