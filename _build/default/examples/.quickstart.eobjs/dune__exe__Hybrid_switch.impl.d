examples/hybrid_switch.ml: Array Arrival Hybrid_config Hybrid_engine Hybrid_policy List Printf Proc_config Smbm_core Smbm_hybrid Smbm_prelude Smbm_report Smbm_sim Smbm_traffic Table Workload
