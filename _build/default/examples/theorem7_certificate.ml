(* Watching Theorem 7 hold (and fail to hold for LQD).

   The paper's main result says LWD never falls behind the clairvoyant
   optimum by more than a factor of two — and since every prefix of a trace
   is a trace, the bound holds cumulatively at EVERY time slot against ANY
   opponent algorithm.  This example runs that certificate live:

   1. LWD against every other policy on bursty MMPP traffic: the opponents
      must stay inside the 2x envelope at all 30 000 slots.
   2. LWD on its own worst known input (the Theorem 6 construction): the
      scripted OPT reaches ~4/3, still inside the envelope.
   3. Negative control: LQD on the Theorem 4 construction sails past 2x -
      LQD is provably NOT 2-competitive under heterogeneous processing.

   Run with: dune exec examples/theorem7_certificate.exe *)

open Smbm_core
open Smbm_traffic
open Smbm_sim
open Smbm_report

let () =
  let config = Proc_config.contiguous ~k:16 ~buffer:64 () in
  print_endline
    "1. LWD vs every policy on bursty traffic (30 000 slots, 2x prefix\n\
    \   envelope checked every slot):\n";
  let rows =
    List.map
      (fun (opponent : Proc_policy.t) ->
        let workload =
          Scenario.proc_workload
            ~mmpp:{ Scenario.default_mmpp with sources = 100 }
            ~config ~load:2.5 ~seed:3 ()
        in
        let o =
          Competitive_check.certify_lwd ~config ~workload ~slots:30_000
            ~flush_every:3_000 ~opponent ()
        in
        [
          opponent.name;
          string_of_int o.Competitive_check.violations;
          Table.float_cell o.Competitive_check.max_prefix_ratio;
        ])
      (Policies.proc_extended config)
  in
  print_string
    (Table.render
       ~headers:[ "opponent"; "violations"; "max prefix ratio" ]
       ~rows ());

  print_endline
    "\n2. LWD on its own lower-bound construction (Theorem 6, B = 1200):";
  let m = Smbm_lowerbounds.Lb_lwd.measure ~buffer:1200 ~episodes:5 () in
  Printf.printf
    "   scripted OPT / LWD = %.3f  (theory: 4/3 - 6/B = %.3f; envelope: 2)\n"
    m.Smbm_lowerbounds.Runner.ratio
    (Smbm_lowerbounds.Lb_lwd.finite_bound ~buffer:1200);

  print_endline
    "\n3. Negative control - LQD on the Theorem 4 construction (k = 64):";
  let m = Smbm_lowerbounds.Lb_lqd.measure ~k:64 ~buffer:1024 ~episodes:5 () in
  Printf.printf
    "   scripted OPT / LQD = %.3f  - far outside the 2x envelope, matching\n\
    \   Theorem 4's sqrt(k) lower bound (finite-size prediction %.3f).\n"
    m.Smbm_lowerbounds.Runner.ratio
    (Smbm_lowerbounds.Lb_lqd.finite_bound ~k:64 ~buffer:1024)
