(* Replaying the paper's lower-bound proofs as executable traffic.

   Every theorem in Sections III-B and IV-B is a constructive statement: a
   concrete adversarial arrival sequence plus a strategy OPT uses on it.
   This example runs all nine constructions and prints the measured ratio
   next to the closed-form bound - theory you can watch happen.

   Run with: dune exec examples/adversarial.exe *)

open Smbm_lowerbounds
open Smbm_report

let () =
  print_endline
    "Adversarial constructions (measured = scripted-OPT / policy on the\n\
     proof's own traffic; finite = the proof's episode ratio at these\n\
     parameters; asymptotic = the headline bound):\n";
  let rows =
    List.map
      (fun (c : Constructions.t) ->
        let m = c.measure () in
        [
          c.theorem;
          c.policy;
          (match c.model with `Proc -> "proc" | `Value -> "value");
          c.bound_text;
          Table.float_cell m.Runner.ratio;
          Table.float_cell c.finite_bound;
          Table.float_cell c.asymptotic_bound;
        ])
      Constructions.all
  in
  print_string
    (Table.render
       ~headers:
         [ "theorem"; "policy"; "model"; "bound"; "measured"; "finite"; "asymptotic" ]
       ~rows ());
  print_endline
    "\nReadings: the classical policies (LQD, NHDT, BPD, MVD, the static\n\
     thresholds) blow up with k, exactly as Theorems 1-5, 9 and 10 predict;\n\
     the paper's LWD and MRD stay at their constant ~4/3 constructions\n\
     (Theorems 6 and 11), consistent with LWD's 2-competitive guarantee\n\
     (Theorem 7) and the conjecture that MRD is constant-competitive."
